(* Tests for the Scheme front end: reader, expander, prelude, interpreter. *)

module Reader = Pcont_syntax.Reader
module Expand = Pcont_syntax.Expand
module Interp = Pcont_syntax.Interp
module Pstack = Pcont_pstack

let datum = Alcotest.testable Reader.pp ( = )

let parse_ok src =
  match Reader.parse src with
  | Ok d -> d
  | Error msg -> Alcotest.failf "parse error: %s" msg

let parse_err src =
  match Reader.parse src with
  | Error msg -> msg
  | Ok d -> Alcotest.failf "expected parse error, got %s" (Reader.to_string d)

(* ---------------- reader ---------------- *)

let test_read_atoms () =
  Alcotest.check datum "int" (Reader.Dint 42) (parse_ok "42");
  Alcotest.check datum "negative" (Reader.Dint (-7)) (parse_ok "-7");
  Alcotest.check datum "plus" (Reader.Dint 7) (parse_ok "+7");
  Alcotest.check datum "true" (Reader.Dbool true) (parse_ok "#t");
  Alcotest.check datum "false" (Reader.Dbool false) (parse_ok "#f");
  Alcotest.check datum "symbol" (Reader.Dsym "foo-bar!") (parse_ok "foo-bar!");
  Alcotest.check datum "minus symbol" (Reader.Dsym "-") (parse_ok "-");
  Alcotest.check datum "arrow symbol" (Reader.Dsym "->x") (parse_ok "->x");
  Alcotest.check datum "char" (Reader.Dchar 'a') (parse_ok "#\\a");
  Alcotest.check datum "space" (Reader.Dchar ' ') (parse_ok "#\\space");
  Alcotest.check datum "newline" (Reader.Dchar '\n') (parse_ok "#\\newline")

let test_read_strings () =
  Alcotest.check datum "plain" (Reader.Dstr "hi") (parse_ok "\"hi\"");
  Alcotest.check datum "escapes" (Reader.Dstr "a\nb\"c\\") (parse_ok "\"a\\nb\\\"c\\\\\"");
  ignore (parse_err "\"unterminated")

let test_read_lists () =
  Alcotest.check datum "flat"
    (Reader.Dlist [ Reader.Dsym "+"; Reader.Dint 1; Reader.Dint 2 ])
    (parse_ok "(+ 1 2)");
  Alcotest.check datum "nested"
    (Reader.Dlist [ Reader.Dlist []; Reader.Dlist [ Reader.Dint 1 ] ])
    (parse_ok "(() (1))");
  Alcotest.check datum "brackets"
    (Reader.Dlist [ Reader.Dsym "x"; Reader.Dint 1 ])
    (parse_ok "[x 1]");
  Alcotest.check datum "dotted"
    (Reader.Ddot ([ Reader.Dint 1; Reader.Dint 2 ], Reader.Dint 3))
    (parse_ok "(1 2 . 3)");
  Alcotest.check datum "quote sugar"
    (Reader.Dlist [ Reader.Dsym "quote"; Reader.Dsym "x" ])
    (parse_ok "'x");
  ignore (parse_err "(1 2");
  ignore (parse_err ")");
  ignore (parse_err "(1 . 2 3)")

let test_read_comments_and_all () =
  Alcotest.check datum "comment skipped" (Reader.Dint 1) (parse_ok "; hello\n 1 ; bye");
  match Reader.parse_all "1 2 (3)" with
  | Ok [ Reader.Dint 1; Reader.Dint 2; Reader.Dlist [ Reader.Dint 3 ] ] -> ()
  | Ok ds -> Alcotest.failf "got %d data" (List.length ds)
  | Error m -> Alcotest.fail m

let test_read_roundtrip () =
  let src = "(define (f x . rest) (if (< x 1) '(a \"s\" #\\c) [g 2]))" in
  let d = parse_ok src in
  let d2 = parse_ok (Reader.to_string d) in
  Alcotest.check datum "print/parse roundtrip" d d2

(* Reader fuzzing: print/parse roundtrip over generated data. *)
let gen_datum =
  let open QCheck.Gen in
  let sym = oneofl [ "a"; "foo"; "set!"; "x-y"; "<=?"; "..." ] in
  let rec go n =
    if n <= 0 then
      oneof
        [
          map (fun i -> Reader.Dint i) small_signed_int;
          map (fun b -> Reader.Dbool b) bool;
          map (fun s -> Reader.Dsym s) sym;
          map (fun s -> Reader.Dstr s) (string_size ~gen:(char_range 'a' 'z') (return 4));
          map (fun c -> Reader.Dchar c) (char_range 'a' 'z');
        ]
    else
      frequency
        [
          (2, go 0);
          (2, map (fun ds -> Reader.Dlist ds) (list_size (int_bound 4) (go (n / 2))));
          (1, let* ds = list_size (int_range 1 3) (go (n / 2)) in
              let* tail = go 0 in
              (* a dotted tail that is itself a list would reparse as a
                 longer proper list; keep tails atomic and non-list *)
              return (Reader.Ddot (ds, tail)));
        ]
  in
  go 6

let prop_reader_roundtrip =
  QCheck.Test.make ~name:"reader print/parse roundtrip" ~count:500
    (QCheck.make gen_datum ~print:Reader.to_string)
    (fun d ->
      match Reader.parse (Reader.to_string d) with
      | Ok d' -> d = d'
      | Error _ -> false)

(* ---------------- expander / evaluation helpers ---------------- *)

let ev ?mode src =
  let t = Interp.create () in
  Interp.eval_value ?mode t src

let check_int ?mode name expect src =
  match ev ?mode src with
  | Pstack.Types.Int n -> Alcotest.(check int) name expect n
  | v -> Alcotest.failf "%s: expected int, got %s" name (Pstack.Value.to_string v)

let check_bool ?mode name expect src =
  match ev ?mode src with
  | Pstack.Types.Bool b -> Alcotest.(check bool) name expect b
  | v -> Alcotest.failf "%s: expected bool, got %s" name (Pstack.Value.to_string v)

let check_str_value ?mode name expect src =
  Alcotest.(check string) name expect (Pstack.Value.to_string (ev ?mode src))

let expand_err src =
  match Expand.parse_program src with
  | Error m -> m
  | Ok _ -> Alcotest.failf "expected expansion error for %s" src

let test_expand_basic_forms () =
  check_int "lambda/app" 3 "((lambda (x y) (+ x y)) 1 2)";
  check_int "variadic" 3 "((lambda args (length args)) 1 2 3)";
  check_int "rest" 2 "((lambda (a . rest) (length rest)) 1 2 3)";
  check_int "begin" 2 "(begin 1 2)";
  check_int "two-armed if" 1 "(if #t 1)";
  check_str_value "one-armed if false" "#!void" "(if #f 1)";
  check_int "let" 3 "(let ([x 1] [y 2]) (+ x y))";
  check_int "let*" 3 "(let* ([x 1] [y (+ x 1)]) (+ x y))";
  check_int "letrec" 120
    "(letrec ([f (lambda (n) (if (zero? n) 1 (* n (f (- n 1)))))]) (f 5))";
  check_int "named let" 55
    "(let loop ([i 0] [acc 0]) (if (> i 10) acc (loop (+ i 1) (+ acc i))))";
  check_int "set!" 9 "(let ([x 1]) (set! x 9) x)"

let test_expand_cond_case () =
  check_int "cond first" 1 "(cond [#t 1] [else 2])";
  check_int "cond else" 2 "(cond [#f 1] [else 2])";
  check_int "cond test-only" 7 "(cond [#f] [7] [else 9])";
  check_str_value "cond empty" "#!void" "(cond [#f 1])";
  check_int "case hit" 2 "(case (+ 1 1) [(1) 1] [(2 3) 2] [else 9])";
  check_int "case else" 9 "(case 42 [(1) 1] [else 9])";
  check_bool "case quoted keys" true "(eq? 'two (case 2 [(1) 'one] [(2) 'two]))"

let test_expand_and_or_when_unless () =
  check_bool "and empty" true "(and)";
  check_int "and value" 3 "(and 1 2 3)";
  check_bool "and short" false "(and #f (error \"not reached\"))";
  check_bool "or empty" false "(or)";
  check_int "or first" 1 "(or 1 (error \"not reached\"))";
  check_int "or skips false" 2 "(or #f 2)";
  check_int "when true" 5 "(when #t 4 5)";
  check_str_value "when false" "#!void" "(when #f 4 5)";
  check_int "unless false" 5 "(unless #f 4 5)"

let test_expand_defines () =
  check_int "define value" 7 "(define x 7) x";
  check_int "define function" 9 "(define (sq n) (* n n)) (sq 3)";
  check_int "define rest" 2 "(define (f . xs) (length xs)) (f 1 2)";
  check_int "internal define" 10 "(define (f) (define a 4) (define b 6) (+ a b)) (f)";
  check_int "internal define recursive" 8
    "(define (f) (define (dbl n) (* 2 n)) (dbl 4)) (f)"

let test_expand_errors () =
  ignore (expand_err "(lambda (x))");
  ignore (expand_err "(if)");
  ignore (expand_err "()");
  ignore (expand_err "(let ([x]) x)");
  ignore (expand_err "(set! 1 2)");
  ignore (expand_err "(define)");
  ignore (expand_err "(quote a b)");
  ignore (expand_err "(cond [else 1] [#t 2])");
  ignore (expand_err "(pcall)")

let test_quote () =
  check_str_value "quoted list" "(1 2 3)" "'(1 2 3)";
  check_str_value "nested" "(a (b c))" "'(a (b c))";
  check_str_value "dotted" "(1 . 2)" "'(1 . 2)";
  check_bool "quote equal" true "(equal? '(1 2) (list 1 2))";
  check_bool "quote fresh per eval" true "(define (f) '(1 2)) (equal? (f) (f))"

(* ---------------- extend-syntax macros ---------------- *)

let eval_err src =
  let t = Interp.create () in
  match List.rev (Interp.eval_string t src) with
  | Interp.Error m :: _ -> m
  | r :: _ -> Alcotest.failf "expected error, got %s" (Interp.result_to_string r)
  | [] -> Alcotest.fail "no results"

let test_macro_paper_let () =
  (* The paper's Section 2 example verbatim: defining let by macro — and it
     shadows the built-in let. *)
  check_int "paper's let" 3
    {|
(extend-syntax (let)
  [(let ([x v] ...) e1 e2 ...)
   ((lambda (x ...) e1 e2 ...) v ...)])
(let ([a 1] [b 2]) (+ a b))
|}

let test_macro_paper_parallel_or () =
  (* The paper's Section 5 extend-syntax definition of parallel-or (named
     apart so it uses the prelude's first-true through the macro). *)
  check_int "macro parallel-or" 17
    ~mode:(Interp.Concurrent Pcont_pstack.Concur.Round_robin)
    {|
(extend-syntax (por)
  [(por e1 e2)
   (first-true (lambda () e1) (lambda () e2))])
(por #f 17)
|}

let test_macro_multi_rule_recursive () =
  check_int "recursive multi-rule" 9
    {|
(extend-syntax (my-or)
  [(my-or) #f]
  [(my-or e) e]
  [(my-or e1 e2 ...) (let ([t e1]) (if t t (my-or e2 ...)))])
(my-or #f #f 9)
|}

let test_macro_keywords () =
  check_str_value "auxiliary keywords" "(10 20 30)"
    {|
(extend-syntax (collect in)
  [(collect e in ls) (map1 (lambda (it) e) ls)])
(collect (* 10 it) in '(1 2 3))
|};
  (* A use where the literal keyword is missing matches no rule. *)
  let msg = eval_err
    {|
(extend-syntax (collect in)
  [(collect e in ls) (map1 (lambda (it) e) ls)])
(collect 1 2 3)
|}
  in
  Alcotest.(check bool) "keyword mismatch errors" true (String.length msg > 0)

let test_macro_nested_ellipsis () =
  check_str_value "nested ellipses" "((1 2) (3 4 5))"
    {|
(extend-syntax (rows)
  [(rows (x ...) ...) (list (list x ...) ...)])
(rows (1 2) (3 4 5))
|}

let test_macro_dotted_pattern () =
  check_int "dotted pattern" 6
    {|
(extend-syntax (app2)
  [(app2 f . args) (f . args)])
(app2 + 1 2 3)
|}

let test_macro_wildcard_and_literals () =
  check_int "wildcard" 1 "(extend-syntax (fst) [(fst a _) a]) (fst 1 2)";
  check_int "literal int in pattern" 99
    {|
(extend-syntax (zero-means)
  [(zero-means 0 e) e]
  [(zero-means n e) n])
(zero-means 0 99)
|}

let test_macro_errors () =
  let m1 = eval_err "(extend-syntax (bad) [(bad x) (bad x)]) (bad 1)" in
  Alcotest.(check bool) "expansion loop detected" true
    (String.length m1 > 0);
  let m2 = eval_err "(extend-syntax (m) [(m x) y ...])" in
  ignore m2;
  let m3 = eval_err "(extend-syntax 42 [(m) 1])" in
  Alcotest.(check bool) "malformed definition" true (String.length m3 > 0);
  (match Expand.parse_program "(extend-syntax (m) [(m a) (list a ...)]) (m 1)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ellipsis depth misuse should error")

let test_macro_table_isolation () =
  let t1 = Interp.create () in
  ignore (Interp.eval_string t1 "(extend-syntax (mmm) [(mmm) 5])");
  (match Interp.eval_value t1 "(mmm)" with
  | Pstack.Types.Int 5 -> ()
  | v -> Alcotest.failf "got %s" (Pstack.Value.to_string v));
  let t2 = Interp.create () in
  match Interp.eval_string t2 "(mmm)" with
  | [ Interp.Error _ ] -> ()
  | _ -> Alcotest.fail "macro leaked across interpreters"

(* ---------------- prelude ---------------- *)

let test_prelude_lists () =
  check_str_value "map1" "(2 4 6)" "(map1 (lambda (x) (* 2 x)) '(1 2 3))";
  check_str_value "map2" "(5 7 9)" "(map + '(1 2 3) '(4 5 6))";
  check_str_value "filter" "(2 4)" "(filter even? '(1 2 3 4 5))";
  check_int "fold-left" 10 "(fold-left + 0 '(1 2 3 4))";
  check_str_value "fold-right cons" "(1 2)" "(fold-right cons '() '(1 2))";
  check_str_value "iota" "(0 1 2 3)" "(iota 4)";
  check_int "last" 3 "(last '(1 2 3))";
  check_str_value "list-tail" "(3 4)" "(list-tail '(1 2 3 4) 2)";
  check_int "for-each effect" 6
    "(define total 0) (for-each (lambda (x) (set! total (+ total x))) '(1 2 3)) total"

let test_prelude_sort () =
  check_str_value "sort ints" "(1 2 3 5 9)" "(sort < '(3 1 9 2 5))";
  check_str_value "sort empty" "()" "(sort < '())";
  check_str_value "sort single" "(7)" "(sort < '(7))";
  check_str_value "sort descending" "(9 5 3 2 1)" "(sort > '(3 1 9 2 5))";
  check_bool "sort is stable" true
    "(equal? (sort (lambda (a b) (< (car a) (car b)))
                   '((1 x) (0 a) (1 y) (0 b)))
             '((0 a) (0 b) (1 x) (1 y)))";
  check_str_value "take/drop" "((1 2) (3 4))" "(list (take '(1 2 3 4) 2) (drop '(1 2 3 4) 2))";
  check_bool "any?" true "(any? even? '(1 3 4))";
  check_bool "every?" false "(every? even? '(2 3))";
  check_str_value "remove" "(1 3)" "(remove even? '(1 2 3 4))"

let test_prelude_make_cell () =
  check_int "cell" 1 "(let ([x (make-cell 0)]) ((cdr x) 1) ((car x)))";
  check_int "cell helpers" 5 "(define c (make-cell 9)) (cell-set! c 5) (cell-ref c)"

let test_prelude_spawn_exit () =
  check_int "spawn/exit aborts" 0 "(spawn/exit (lambda (exit) (+ 1 (exit 0))))";
  check_int "spawn/exit normal" 3 "(spawn/exit (lambda (exit) 3))"

let coroutine_defs =
  {|
(define co
  (make-coroutine
    (lambda (yield i)
      (let* ([j (yield (+ i 1))]
             [k (yield (+ j 10))])
        (+ k 100)))))
|}

let test_prelude_coroutines () =
  check_str_value "first resume" "(yield . 2)" (coroutine_defs ^ "(co 1)");
  check_str_value "full session" "((yield . 2) (yield . 15) (return . 107))"
    (coroutine_defs ^ "(list (co 1) (co 5) (co 7))");
  let t = Interp.create () in
  ignore (Interp.eval_string t coroutine_defs);
  ignore (Interp.eval_string t "(co 1) (co 2) (co 3)");
  match Interp.eval_string t "(co 9)" with
  | [ Interp.Error _ ] -> ()
  | _ -> Alcotest.fail "resuming a finished coroutine should error"

let test_prelude_engines () =
  let defs =
    {|
(define (sum-engine n)
  (make-engine
    (lambda (tick)
      (let loop ([i 0] [acc 0])
        (if (= i n) acc (begin (tick) (loop (+ i 1) (+ acc i))))))))
|}
  in
  check_str_value "finishes with fuel left" "(done 45 90)"
    (defs ^ "((sum-engine 10) 100)");
  check_str_value "expires then finishes" "(done 45 94)"
    (defs
   ^ {|
(let ([r ((sum-engine 10) 3)])
  (if (eq? (car r) 'expired)
      ((cadr r) 100)
      'should-have-expired))
|});
  (* one-shot: running a consumed engine errors *)
  let t = Interp.create () in
  ignore (Interp.eval_string t defs);
  ignore (Interp.eval_string t "(define e (sum-engine 10)) (e 100)");
  match Interp.eval_string t "(e 100)" with
  | [ Interp.Error _ ] -> ()
  | _ -> Alcotest.fail "re-running an engine should error"

let test_prelude_coroutine_same_fringe () =
  (* The classic same-fringe via two Scheme coroutines. *)
  check_bool "same fringe" true
    (coroutine_defs
   ^ {|
(define (fringe-co tree)
  (make-coroutine
    (lambda (yield ignored)
      (define (walk t)
        (if (pair? t) (begin (walk (car t)) (walk (cdr t))) (yield t)))
      (walk tree)
      'done)))
(define (same-fringe? t1 t2)
  (let ([c1 (fringe-co t1)] [c2 (fringe-co t2)])
    (let loop ()
      (let ([r1 (c1 #f)] [r2 (c2 #f)])
        (cond
          [(and (eq? (car r1) 'return) (eq? (car r2) 'return)) #t]
          [(or (eq? (car r1) 'return) (eq? (car r2) 'return)) #f]
          [(equal? (cdr r1) (cdr r2)) (loop)]
          [else #f])))))
(and (same-fringe? '((1 . 2) . 3) '(1 . (2 . 3)))
     (not (same-fringe? '((1 . 2) . 3) '(1 . (9 . 3)))))
|})

(* ---------------- interpreter plumbing ---------------- *)

let test_interp_results () =
  let t = Interp.create () in
  match Interp.eval_string t "(define x 2) (+ x 1) (nonexistent)" with
  | [ Interp.Defined "x"; Interp.Value (Pstack.Types.Int 3); Interp.Error _ ] -> ()
  | rs ->
      Alcotest.failf "unexpected results: %s"
        (String.concat "; " (List.map Interp.result_to_string rs))

let test_interp_stops_at_error () =
  let t = Interp.create () in
  let rs = Interp.eval_string t "(car 1) (define y 1)" in
  Alcotest.(check int) "stops after error" 1 (List.length rs)

let test_interp_no_prelude () =
  let t = Interp.create ~prelude:false () in
  match Interp.eval_string t "(map1 car '())" with
  | [ Interp.Error _ ] -> ()
  | _ -> Alcotest.fail "map1 should be unbound without prelude"

let test_interp_output () =
  let t = Interp.create () in
  ignore (Interp.take_output ());
  ignore (Interp.eval_string t "(display \"a\") (display 1) (newline)");
  Alcotest.(check string) "output" "a1\n" (Interp.take_output ())

let test_interp_persistent_env () =
  let t = Interp.create () in
  ignore (Interp.eval_string t "(define counter 0)");
  ignore (Interp.eval_string t "(set! counter (+ counter 1))");
  match Interp.eval_value t "counter" with
  | Pstack.Types.Int 1 -> ()
  | v -> Alcotest.failf "got %s" (Pstack.Value.to_string v)

(* ---------------- paper programs at the Scheme level ---------------- *)

let product_defs =
  {|
(define product0
  (lambda (ls exit)
    (cond
      [(null? ls) 1]
      [(= (car ls) 0) (exit 0)]
      [else (* (car ls) (product0 (cdr ls) exit))])))
|}

let test_paper_product_callcc () =
  check_int "callcc product" 24
    (product_defs
   ^ "(define (product ls) (call/cc (lambda (exit) (product0 ls exit)))) (product '(1 2 3 4))");
  check_int "callcc zero" 0
    (product_defs
   ^ "(define (product ls) (call/cc (lambda (exit) (product0 ls exit)))) (product '(1 0 4))")

let test_paper_product_spawn_exit () =
  check_int "spawn/exit product" 24
    (product_defs
   ^ "(define (product ls) (spawn/exit (lambda (exit) (product0 ls exit)))) (product '(1 2 3 4))")

let test_paper_validity_examples () =
  let t = Interp.create () in
  (match Interp.eval_string t "((spawn (lambda (c) c)) (lambda (k) k))" with
  | [ Interp.Error _ ] -> ()
  | _ -> Alcotest.fail "escaped controller should error");
  let t = Interp.create () in
  (match
     Interp.eval_string t "(spawn (lambda (c) (c (lambda (k) (c (lambda (k2) k2))))))"
   with
  | [ Interp.Error _ ] -> ()
  | _ -> Alcotest.fail "double use should error");
  check_int "reinstated" 42
    "((spawn (lambda (c) (c (c (lambda (k) (k (lambda (k) (k (lambda (k) k))))))))) 42)"

let test_paper_pk_twice () =
  check_int "multi-shot pk" 12 "(spawn (lambda (c) (+ 1 (c (lambda (k) (* (k 2) (k 3)))))))"

let () =
  Alcotest.run "syntax"
    [
      ( "reader",
        [
          Alcotest.test_case "atoms" `Quick test_read_atoms;
          Alcotest.test_case "strings" `Quick test_read_strings;
          Alcotest.test_case "lists" `Quick test_read_lists;
          Alcotest.test_case "comments / parse_all" `Quick test_read_comments_and_all;
          Alcotest.test_case "roundtrip" `Quick test_read_roundtrip;
          QCheck_alcotest.to_alcotest prop_reader_roundtrip;
        ] );
      ( "expander",
        [
          Alcotest.test_case "basic forms" `Quick test_expand_basic_forms;
          Alcotest.test_case "cond and case" `Quick test_expand_cond_case;
          Alcotest.test_case "and/or/when/unless" `Quick test_expand_and_or_when_unless;
          Alcotest.test_case "defines" `Quick test_expand_defines;
          Alcotest.test_case "errors" `Quick test_expand_errors;
          Alcotest.test_case "quote" `Quick test_quote;
        ] );
      ( "macros",
        [
          Alcotest.test_case "paper's let definition" `Quick test_macro_paper_let;
          Alcotest.test_case "paper's parallel-or" `Quick test_macro_paper_parallel_or;
          Alcotest.test_case "multi-rule recursion" `Quick test_macro_multi_rule_recursive;
          Alcotest.test_case "auxiliary keywords" `Quick test_macro_keywords;
          Alcotest.test_case "nested ellipses" `Quick test_macro_nested_ellipsis;
          Alcotest.test_case "dotted patterns" `Quick test_macro_dotted_pattern;
          Alcotest.test_case "wildcard and literals" `Quick test_macro_wildcard_and_literals;
          Alcotest.test_case "errors" `Quick test_macro_errors;
          Alcotest.test_case "table isolation" `Quick test_macro_table_isolation;
        ] );
      ( "prelude",
        [
          Alcotest.test_case "list library" `Quick test_prelude_lists;
          Alcotest.test_case "sort and friends" `Quick test_prelude_sort;
          Alcotest.test_case "make-cell" `Quick test_prelude_make_cell;
          Alcotest.test_case "spawn/exit" `Quick test_prelude_spawn_exit;
          Alcotest.test_case "coroutines" `Quick test_prelude_coroutines;
          Alcotest.test_case "engines" `Quick test_prelude_engines;
          Alcotest.test_case "same-fringe" `Quick test_prelude_coroutine_same_fringe;
        ] );
      ( "interp",
        [
          Alcotest.test_case "results" `Quick test_interp_results;
          Alcotest.test_case "stops at error" `Quick test_interp_stops_at_error;
          Alcotest.test_case "no prelude" `Quick test_interp_no_prelude;
          Alcotest.test_case "output" `Quick test_interp_output;
          Alcotest.test_case "persistent env" `Quick test_interp_persistent_env;
        ] );
      ( "paper",
        [
          Alcotest.test_case "product via call/cc" `Quick test_paper_product_callcc;
          Alcotest.test_case "product via spawn/exit" `Quick test_paper_product_spawn_exit;
          Alcotest.test_case "Section 4 validity" `Quick test_paper_validity_examples;
          Alcotest.test_case "pk invoked twice" `Quick test_paper_pk_twice;
        ] );
    ]
