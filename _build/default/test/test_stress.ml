(* Stress tests: scale each implementation well past the sizes the unit
   tests use — deep nesting of roots, wide forks, long-running derived
   abstractions — to flush out stack-discipline and accounting bugs. *)

module S = Pcont_sched.Sched
module Ops = Pcont_sched.Ops
module Interp = Pcont_syntax.Interp
module Pstack = Pcont_pstack
module M = Pcont_machine

(* ---------------- native embedding ---------------- *)

let test_native_deep_spawn_nesting () =
  (* 5000 nested roots; the innermost exits through the outermost. *)
  let rec nest outer n =
    if n = 0 then Pcont.Spawn.control outer (fun _k -> 7)
    else Pcont.Spawn.spawn (fun _c -> 1 + nest outer (n - 1))
  in
  let r = Pcont.Spawn.spawn (fun outer -> nest outer 5_000) in
  Alcotest.(check int) "deep exit" 7 r

let test_native_many_sequential_spawns () =
  let total = ref 0 in
  for i = 1 to 100_000 do
    total := !total + Pcont.Spawn.spawn (fun _ -> i mod 3)
  done;
  (* 100000 = 33334 iterations contributing 1, 33333 contributing 2, rest 0 *)
  Alcotest.(check int) "sum" 100_000 !total

let test_native_long_generator () =
  let g = Pcont.Generator.ints () in
  let last = ref 0 in
  for _ = 1 to 200_000 do
    match Pcont.Generator.next g with Some v -> last := v | None -> assert false
  done;
  Alcotest.(check int) "200k yields" 199_999 !last

let test_native_engine_many_slices () =
  let e =
    Pcont.Engine.make (fun ~tick ->
        let acc = ref 0 in
        for i = 1 to 50_000 do
          tick ();
          acc := !acc + i
        done;
        !acc)
  in
  let rec drive e n =
    match Pcont.Engine.run e ~fuel:17 with
    | Pcont.Engine.Done (v, _) -> (v, n)
    | Pcont.Engine.Expired e' -> drive e' (n + 1)
  in
  let v, slices = drive e 1 in
  Alcotest.(check int) "sum" (50_000 * 50_001 / 2) v;
  Alcotest.(check bool) "thousands of slices" true (slices > 2_000)

(* ---------------- native scheduler ---------------- *)

let test_sched_wide_pcall () =
  let r =
    S.run (fun () ->
        let branches = List.init 500 (fun i () -> S.yield (); i) in
        List.fold_left ( + ) 0 (S.pcall branches))
  in
  Alcotest.(check int) "wide fork" (499 * 500 / 2) r

let test_sched_deep_search () =
  let tree = Ops.perfect ~depth:11 (fun i -> i) in
  let matches = S.run (fun () -> Ops.search_all tree (fun x -> x mod 101 = 0)) in
  Alcotest.(check int) "matches" 21 (List.length matches)

let test_sched_many_futures () =
  let r =
    S.run (fun () ->
        let fs = List.init 200 (fun i -> S.future (fun () -> S.yield (); i)) in
        List.fold_left (fun acc f -> acc + S.touch f) 0 fs)
  in
  Alcotest.(check int) "200 futures" (199 * 200 / 2) r

(* ---------------- process-stack machine ---------------- *)

let conc = Interp.Concurrent Pstack.Concur.Round_robin

let test_pstack_deep_recursion () =
  (* 50k pending frames: the explicit stack must not overflow anything. *)
  let t = Interp.create () in
  match
    Interp.eval_value ~fuel:10_000_000 t
      "(define (count n) (if (zero? n) 0 (+ 1 (count (- n 1))))) (count 50000)"
  with
  | Pstack.Types.Int 50_000 -> ()
  | v -> Alcotest.failf "got %s" (Pstack.Value.to_string v)

let test_pstack_deep_spawn_nesting () =
  let t = Interp.create () in
  let depth = 1_000 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "(define (nest n outer) (if (zero? n) (outer 7) (+ 1 (spawn (lambda (c) (nest (- n 1) outer))))))";
  Buffer.add_string buf
    (Printf.sprintf
       "(spawn/exit (lambda (exit) (nest %d exit)))" depth);
  match Interp.eval_value ~fuel:10_000_000 t (Buffer.contents buf) with
  | Pstack.Types.Int 7 -> ()
  | v -> Alcotest.failf "got %s" (Pstack.Value.to_string v)

let test_pstack_wide_concurrent_fork () =
  let t = Interp.create () in
  match
    Interp.eval_value ~mode:conc ~fuel:50_000_000 t
      "(apply + (map1 touch (map1 (lambda (i) (future (* i i))) (iota 100))))"
  with
  | Pstack.Types.Int n -> Alcotest.(check int) "sum of squares" 328_350 n
  | v -> Alcotest.failf "got %s" (Pstack.Value.to_string v)

let test_pstack_big_concurrent_search () =
  let t = Interp.create () in
  let src =
    {|
(define (build d i)
  (if (zero? d) '() (list i (build (- d 1) (* 2 i)) (build (- d 1) (+ 1 (* 2 i))))))
(define (node t) (car t))
(define (left t) (cadr t))
(define (right t) (car (cddr t)))
(define (empty? t) (null? t))
(define parallel-search
  (lambda (tree predicate?)
    (spawn
      (lambda (c)
        (define search
          (lambda (tree)
            (unless (empty? tree)
              (pcall (lambda (x y z) #f)
                (when (predicate? (node tree))
                  (c (lambda (k) (cons (node tree) (lambda () (k #f))))))
                (search (left tree))
                (search (right tree))))))
        (search tree)
        #f))))
(define (search-all tree predicate?)
  (letrec ([collect (lambda (r) (if r (cons (car r) (collect ((cdr r)))) '()))])
    (collect (parallel-search tree predicate?))))
(length (search-all (build 7 1) even?))
|}
  in
  match Interp.eval_value ~mode:conc ~fuel:100_000_000 t src with
  | Pstack.Types.Int n -> Alcotest.(check int) "half the 127 nodes" 63 n
  | v -> Alcotest.failf "got %s" (Pstack.Value.to_string v)

(* ---------------- semantics machine ---------------- *)

let test_machine_large_product () =
  let ns = List.init 300 (fun i -> 1 + (i mod 3)) in
  match M.Eval.eval ~fuel:3_000_000 (M.Examples.product_of (0 :: ns)) with
  | M.Eval.Value (M.Term.Int 0) -> ()
  | _ -> Alcotest.fail "product with leading zero"

let test_machine_deep_nested_spawns () =
  match M.Eval.eval ~fuel:3_000_000 (M.Examples.nested_spawn_depth 200) with
  | M.Eval.Value (M.Term.Int 7) -> ()
  | _ -> Alcotest.fail "deep nested spawns"

let test_zipper_deep_nested_spawns () =
  match M.Zipper.eval ~fuel:9_000_000 (M.Examples.nested_spawn_depth 400) with
  | M.Eval.Value (M.Term.Int 7) -> ()
  | _ -> Alcotest.fail "zipper deep nested spawns"

let () =
  Alcotest.run "stress"
    [
      ( "native",
        [
          Alcotest.test_case "5000 nested roots" `Slow test_native_deep_spawn_nesting;
          Alcotest.test_case "100k sequential spawns" `Slow test_native_many_sequential_spawns;
          Alcotest.test_case "200k generator yields" `Slow test_native_long_generator;
          Alcotest.test_case "engine with ~3000 slices" `Slow test_native_engine_many_slices;
        ] );
      ( "sched",
        [
          Alcotest.test_case "500-way pcall" `Slow test_sched_wide_pcall;
          Alcotest.test_case "search in 2047-node tree" `Slow test_sched_deep_search;
          Alcotest.test_case "200 futures" `Slow test_sched_many_futures;
        ] );
      ( "pstack",
        [
          Alcotest.test_case "50k pending frames" `Slow test_pstack_deep_recursion;
          Alcotest.test_case "1000 nested roots" `Slow test_pstack_deep_spawn_nesting;
          Alcotest.test_case "100 futures" `Slow test_pstack_wide_concurrent_fork;
          Alcotest.test_case "127-node concurrent search" `Slow
            test_pstack_big_concurrent_search;
        ] );
      ( "machine",
        [
          Alcotest.test_case "301-element product" `Slow test_machine_large_product;
          Alcotest.test_case "200 nested spawns" `Slow test_machine_deep_nested_spawns;
          Alcotest.test_case "zipper: 400 nested spawns" `Slow test_zipper_deep_nested_spawns;
        ] );
    ]
