(* Tests for the Section 6 semantics machine: substitution, decomposition,
   the four rewrite rules, and the paper's examples (experiment E9). *)

open Pcont_machine
module T = Term

let value_testable =
  Alcotest.testable (fun ppf t -> Pp.pp_term ppf t) (fun a b -> a = b)

let eval_value t =
  match Eval.eval t with
  | Eval.Value v -> v
  | Eval.Stuck msg -> Alcotest.failf "stuck: %s" msg
  | Eval.Out_of_fuel _ -> Alcotest.fail "out of fuel"

let eval_stuck t =
  match Eval.eval t with
  | Eval.Stuck msg -> msg
  | Eval.Value v -> Alcotest.failf "expected stuck, got %s" (Pp.term_to_string v)
  | Eval.Out_of_fuel _ -> Alcotest.fail "out of fuel"

(* ---------------- term utilities ---------------- *)

let test_is_value () =
  Alcotest.(check bool) "int" true (T.is_value (T.Int 3));
  Alcotest.(check bool) "lam" true (T.is_value (T.Lam ("x", T.Var "x")));
  Alcotest.(check bool) "fix" true (T.is_value (T.Fix ("f", "x", T.Var "x")));
  Alcotest.(check bool) "pair of values" true (T.is_value (T.Pair (T.Int 1, T.Nil)));
  Alcotest.(check bool) "app" false (T.is_value (T.App (T.Int 1, T.Int 2)));
  Alcotest.(check bool) "papp of values" true (T.is_value (T.Papp (T.Add, [ T.Int 1 ])));
  Alcotest.(check bool) "label" false (T.is_value (T.Label (0, T.Int 1)));
  Alcotest.(check bool) "control" false (T.is_value (T.Control (T.Int 1, 0)));
  Alcotest.(check bool) "spawn" false (T.is_value (T.Spawn (T.Int 1)))

let test_subst_basic () =
  Alcotest.check value_testable "replaces" (T.Int 5) (T.subst "x" (T.Int 5) (T.Var "x"));
  Alcotest.check value_testable "other var untouched" (T.Var "y")
    (T.subst "x" (T.Int 5) (T.Var "y"))

let test_subst_shadowing () =
  let e = T.Lam ("x", T.Var "x") in
  Alcotest.check value_testable "bound occurrence not replaced" e
    (T.subst "x" (T.Int 5) e)

let test_subst_capture_avoidance () =
  (* subst y := x  in (λx. y) must not capture: result (λx'. x) *)
  let e = T.Lam ("x", T.Var "y") in
  match T.subst "y" (T.Var "x") e with
  | T.Lam (x', T.Var "x") ->
      Alcotest.(check bool) "binder renamed" true (x' <> "x")
  | other -> Alcotest.failf "unexpected result %s" (Pp.term_to_string other)

let test_subst_fix_capture () =
  (* subst y := f in (rec (f x) y): binder f must be renamed *)
  let e = T.Fix ("f", "x", T.Var "y") in
  match T.subst "y" (T.Var "f") e with
  | T.Fix (f', _, T.Var "f") -> Alcotest.(check bool) "renamed" true (f' <> "f")
  | other -> Alcotest.failf "unexpected result %s" (Pp.term_to_string other)

let test_free_vars () =
  let e = T.App (T.Lam ("x", T.App (T.Var "x", T.Var "y")), T.Var "z") in
  let fv = T.free_vars e in
  Alcotest.(check bool) "y free" true (Hashtbl.mem fv "y");
  Alcotest.(check bool) "z free" true (Hashtbl.mem fv "z");
  Alcotest.(check bool) "x bound" false (Hashtbl.mem fv "x");
  Alcotest.(check bool) "closed" false (T.is_closed e);
  Alcotest.(check bool) "identity closed" true (T.is_closed (T.Lam ("x", T.Var "x")))

let test_labels () =
  let e = T.Label (3, T.Control (T.Label (7, T.Int 1), 5)) in
  Alcotest.(check int) "max" 7 (T.max_label e);
  Alcotest.(check (list int)) "all" [ 3; 5; 7 ] (T.labels_of e);
  Alcotest.(check int) "none" (-1) (T.max_label (T.Int 1))

(* ---------------- contexts ---------------- *)

let test_plug () =
  let c = [ Ctx.Fapp_arg (T.Lam ("x", T.Var "x")); Ctx.Flabel 3 ] in
  Alcotest.check value_testable "plug"
    (T.Label (3, T.App (T.Lam ("x", T.Var "x"), T.Int 9)))
    (Ctx.plug c (T.Int 9))

let test_split_at_label () =
  let c = [ Ctx.Fapp_fun (T.Int 1); Ctx.Flabel 2; Ctx.Fif (T.Int 1, T.Int 2); Ctx.Flabel 5 ] in
  (match Ctx.split_at_label 2 c with
  | Some (inner, outer) ->
      Alcotest.(check int) "inner size" 1 (List.length inner);
      Alcotest.(check int) "outer size" 2 (List.length outer)
  | None -> Alcotest.fail "label 2 should be found");
  (match Ctx.split_at_label 99 c with
  | None -> ()
  | Some _ -> Alcotest.fail "label 99 should be absent");
  (* innermost occurrence wins *)
  let c2 = [ Ctx.Flabel 4; Ctx.Fspawn; Ctx.Flabel 4 ] in
  match Ctx.split_at_label 4 c2 with
  | Some (inner, outer) ->
      Alcotest.(check int) "topmost label" 0 (List.length inner);
      Alcotest.(check int) "rest stays" 2 (List.length outer)
  | None -> Alcotest.fail "should find"

(* ---------------- single steps ---------------- *)

let check_step name expected t =
  match Step.step t with
  | Step.Next (t', rule) ->
      Alcotest.(check string) (name ^ " rule") expected rule;
      t'
  | Step.Finished _ -> Alcotest.failf "%s: unexpectedly finished" name
  | Step.Stuck msg -> Alcotest.failf "%s: stuck (%s)" name msg

let test_step_beta () =
  let t = T.App (T.Lam ("x", T.Var "x"), T.Int 1) in
  let t' = check_step "beta" "beta" t in
  Alcotest.check value_testable "result" (T.Int 1) t'

let test_step_label_return () =
  let t' = check_step "label" "label-return" (T.Label (0, T.Int 7)) in
  Alcotest.check value_testable "result" (T.Int 7) t'

let test_step_if () =
  let t' = check_step "if" "if" (T.If (T.Bool true, T.Int 1, T.Int 2)) in
  Alcotest.check value_testable "then" (T.Int 1) t';
  let t' = check_step "if" "if" (T.If (T.Bool false, T.Int 1, T.Int 2)) in
  Alcotest.check value_testable "else" (T.Int 2) t'

let test_step_spawn_fresh_labels () =
  (* Two spawns in one program must get distinct labels. *)
  let t = T.seq (T.Spawn (T.Lam ("c", T.Int 1))) (T.Spawn (T.Lam ("c", T.Int 2))) in
  match Eval.eval t with
  | Eval.Value (T.Int 2) -> ()
  | other ->
      Alcotest.failf "unexpected outcome %s"
        (match other with
        | Eval.Value v -> Pp.term_to_string v
        | Eval.Stuck m -> "stuck " ^ m
        | Eval.Out_of_fuel _ -> "fuel")

let test_step_spawn_shape () =
  let t' = check_step "spawn" "spawn" (T.Spawn (T.Lam ("c", T.Int 1))) in
  match t' with
  | T.Label (l, T.App (T.Lam ("c", T.Int 1), T.Lam (x, T.Control (T.Var x', l')))) ->
      Alcotest.(check int) "labels match" l l';
      Alcotest.(check string) "controller binder" x x'
  | other -> Alcotest.failf "unexpected shape %s" (Pp.term_to_string other)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_control_requires_label () =
  let t = T.Control (T.Lam ("k", T.Int 1), 42) in
  let msg = eval_stuck t in
  Alcotest.(check bool) "mentions invalid" true (contains ~sub:"invalid" msg)

let test_delta_rules () =
  let checks =
    [
      (T.prim2 T.Add (T.Int 2) (T.Int 3), T.Int 5);
      (T.prim2 T.Sub (T.Int 2) (T.Int 3), T.Int (-1));
      (T.prim2 T.Mul (T.Int 4) (T.Int 3), T.Int 12);
      (T.prim2 T.Div (T.Int 7) (T.Int 2), T.Int 3);
      (T.prim2 T.Eq (T.Int 2) (T.Int 2), T.Bool true);
      (T.prim2 T.Lt (T.Int 1) (T.Int 2), T.Bool true);
      (T.prim2 T.Leq (T.Int 3) (T.Int 2), T.Bool false);
      (T.prim1 T.Not (T.Bool true), T.Bool false);
      (T.prim2 T.Cons (T.Int 1) T.Nil, T.Pair (T.Int 1, T.Nil));
      (T.prim1 T.Car (T.Pair (T.Int 1, T.Nil)), T.Int 1);
      (T.prim1 T.Cdr (T.Pair (T.Int 1, T.Nil)), T.Nil);
      (T.prim1 T.Is_null T.Nil, T.Bool true);
      (T.prim1 T.Is_null (T.Int 1), T.Bool false);
      (T.prim1 T.Is_pair (T.Pair (T.Int 1, T.Nil)), T.Bool true);
      (T.prim1 T.Is_zero (T.Int 0), T.Bool true);
      (T.prim1 T.Is_zero (T.Int 1), T.Bool false);
    ]
  in
  List.iter
    (fun (t, expected) -> Alcotest.check value_testable "delta" expected (eval_value t))
    checks

let test_delta_errors () =
  ignore (eval_stuck (T.prim2 T.Div (T.Int 1) (T.Int 0)));
  ignore (eval_stuck (T.prim1 T.Car (T.Int 1)));
  ignore (eval_stuck (T.prim2 T.Add (T.Bool true) (T.Int 1)));
  ignore (eval_stuck (T.App (T.Int 1, T.Int 2)));
  ignore (eval_stuck (T.If (T.Int 1, T.Int 2, T.Int 3)))

let test_partial_application () =
  (* (+ 1) is a value; applying it completes the addition. *)
  let inc = T.App (T.Prim T.Add, T.Int 1) in
  let t = T.let_ "inc" inc (T.App (T.Var "inc", T.Int 41)) in
  Alcotest.check value_testable "curried prim" (T.Int 42) (eval_value t)

let test_fix_factorial () =
  let fact =
    T.Fix
      ( "fact",
        "n",
        T.If
          ( T.prim1 T.Is_zero (T.Var "n"),
            T.Int 1,
            T.prim2 T.Mul (T.Var "n")
              (T.App (T.Var "fact", T.prim2 T.Sub (T.Var "n") (T.Int 1))) ) )
  in
  Alcotest.check value_testable "5!" (T.Int 120) (eval_value (T.App (fact, T.Int 5)))

(* ---------------- the paper's examples (E9) ---------------- *)

let test_escaping_controller () =
  let msg = eval_stuck Examples.escaping_controller in
  Alcotest.(check bool) "invalid controller" true
    (String.length msg > 0)

let test_double_use () = ignore (eval_stuck Examples.double_use)

let test_reinstated () =
  Alcotest.check value_testable "identity applied" (T.Int 42)
    (eval_value Examples.reinstated_applied)

let test_pk_twice () =
  Alcotest.check value_testable "multi-shot" (T.Int 12) (eval_value Examples.pk_twice)

let test_product () =
  Alcotest.check value_testable "no zero" (T.Int 24)
    (eval_value (Examples.product_of [ 1; 2; 3; 4 ]));
  Alcotest.check value_testable "zero" (T.Int 0)
    (eval_value (Examples.product_of [ 1; 2; 0; 4 ]));
  Alcotest.check value_testable "empty" (T.Int 1) (eval_value (Examples.product_of []));
  Alcotest.check value_testable "zero first" (T.Int 0)
    (eval_value (Examples.product_of [ 0; 1; 2 ]))

let test_product_step_counts () =
  (* Exiting early must take fewer steps than completing the product. *)
  let long = List.init 30 (fun i -> i + 1) in
  let with_zero = 0 :: long in
  let steps_full = Option.get (Eval.steps_to_value (Examples.product_of long)) in
  let steps_zero = Option.get (Eval.steps_to_value (Examples.product_of with_zero)) in
  Alcotest.(check bool) "early exit cheaper" true (steps_zero < steps_full)

let test_nested_spawn () =
  List.iter
    (fun depth ->
      Alcotest.check value_testable
        (Printf.sprintf "depth %d" depth)
        (T.Int 7)
        (eval_value (Examples.nested_spawn_depth depth)))
    [ 1; 2; 3; 5; 8 ]

let test_exit_is_dead_after_return () =
  (* Use spawn/exit to get an exit, let the process return normally, then
     use the exit: invalid. *)
  let t =
    T.let_ "cell"
      (T.prim2 T.Cons T.Nil T.Nil)
      (T.seq
         (T.App
            ( Examples.spawn_exit,
              T.Lam ("exit", T.seq (T.prim2 T.Cons (T.Var "exit") T.Nil) (T.Int 0)) ))
         (T.Int 5))
  in
  (* The exit escapes only via the pair value which is discarded; the
     program itself is fine and returns 5.  Keeping the exit and calling it
     later is the stuck case, tested at the Scheme level. *)
  Alcotest.check value_testable "normal" (T.Int 5) (eval_value t)

let test_trace_rules () =
  let t = T.App (T.Lam ("x", T.Label (0, T.Var "x")), T.Int 3) in
  let steps, outcome = Eval.trace t in
  Alcotest.(check (list string)) "rules" [ "beta"; "label-return" ] (List.map snd steps);
  match outcome with
  | Eval.Value (T.Int 3) -> ()
  | _ -> Alcotest.fail "expected value 3"

let test_out_of_fuel () =
  let omega =
    T.App (T.Lam ("x", T.App (T.Var "x", T.Var "x")), T.Lam ("x", T.App (T.Var "x", T.Var "x")))
  in
  match Eval.eval ~fuel:100 omega with
  | Eval.Out_of_fuel _ -> ()
  | _ -> Alcotest.fail "omega should exhaust fuel"

let test_stats () =
  let stats = Pcont_util.Counters.create () in
  (match Eval.eval ~stats Examples.pk_twice with
  | Eval.Value _ -> ()
  | _ -> Alcotest.fail "pk_twice failed");
  Alcotest.(check int) "one spawn" 1 (Pcont_util.Counters.get stats "spawn");
  Alcotest.(check int) "one control" 1 (Pcont_util.Counters.get stats "control");
  Alcotest.(check bool) "betas happened" true (Pcont_util.Counters.get stats "beta" > 0)

(* ---------------- pretty printing ---------------- *)

let test_pp_term () =
  let check name expect t = Alcotest.(check string) name expect (Pp.term_to_string t) in
  check "int" "42" (T.Int 42);
  check "bools" "#t" (T.Bool true);
  check "nil" "'()" T.Nil;
  check "lam" "(lambda (x) x)" (T.Lam ("x", T.Var "x"));
  check "app" "(f y)" (T.App (T.Var "f", T.Var "y"));
  check "label" "(label 3 1)" (T.Label (3, T.Int 1));
  check "control" "(control f 3)" (T.Control (T.Var "f", 3));
  check "spawn" "(spawn f)" (T.Spawn (T.Var "f"));
  check "prim" "+" (T.Prim T.Add);
  check "fix" "(rec (f x) x)" (T.Fix ("f", "x", T.Var "x"))

let test_pp_ctx () =
  let c = [ Ctx.Flabel 2; Ctx.Fspawn ] in
  let s = Format.asprintf "%a" Ctx.pp c in
  Alcotest.(check bool) "shows label" true (contains ~sub:"label 2" s);
  Alcotest.(check bool) "shows spawn" true (contains ~sub:"spawn" s)

(* ---------------- zipper evaluator ---------------- *)

let test_zipper_examples () =
  let check name term expected =
    match Zipper.eval term with
    | Eval.Value v -> Alcotest.check value_testable name expected v
    | Eval.Stuck m -> Alcotest.failf "%s stuck: %s" name m
    | Eval.Out_of_fuel _ -> Alcotest.failf "%s out of fuel" name
  in
  check "reinstated" Examples.reinstated_applied (T.Int 42);
  check "pk twice" Examples.pk_twice (T.Int 12);
  check "product" (Examples.product_of [ 1; 2; 3; 4 ]) (T.Int 24);
  check "product zero" (Examples.product_of [ 1; 0; 4 ]) (T.Int 0);
  check "nested spawns" (Examples.nested_spawn_depth 5) (T.Int 7);
  (match Zipper.eval Examples.escaping_controller with
  | Eval.Stuck _ -> ()
  | _ -> Alcotest.fail "escaping controller should be stuck");
  match Zipper.eval Examples.double_use with
  | Eval.Stuck _ -> ()
  | _ -> Alcotest.fail "double use should be stuck"

let test_zipper_fuel () =
  let omega =
    T.App
      ( T.Lam ("x", T.App (T.Var "x", T.Var "x")),
        T.Lam ("x", T.App (T.Var "x", T.Var "x")) )
  in
  match Zipper.eval ~fuel:100 omega with
  | Eval.Out_of_fuel _ -> ()
  | _ -> Alcotest.fail "omega should exhaust fuel"

(* ---------------- property-based tests ---------------- *)

(* Generate closed terms over a pure fragment plus label/control pairs that
   are well-formed by construction. *)
let gen_term =
  let open QCheck.Gen in
  let var env = if env = [] then return (T.Int 0) else map (fun x -> T.Var x) (oneofl env) in
  let rec go env n =
    if n <= 0 then
      oneof
        [
          map (fun i -> T.Int i) small_int;
          map (fun b -> T.Bool b) bool;
          var env;
        ]
    else
      frequency
        [
          (2, map (fun i -> T.Int i) small_int);
          (1, var env);
          (3, let* x = oneofl [ "a"; "b"; "c" ] in
              let* body = go (x :: env) (n / 2) in
              return (T.Lam (x, body)));
          (3, let* f = go env (n / 2) in
              let* a = go env (n / 2) in
              return (T.App (f, a)));
          (2, let* c = go env (n / 3) in
              let* t = go env (n / 3) in
              let* e = go env (n / 3) in
              return (T.If (c, t, e)));
          (2, let* a = go env (n / 2) in
              let* b = go env (n / 2) in
              return (T.prim2 T.Add a b));
          (1, let* body = go ("c" :: env) (n / 2) in
              return (T.Spawn (T.Lam ("c", body))));
        ]
  in
  go [] 12

let arb_term =
  QCheck.make gen_term ~print:(fun t -> Pp.term_to_string t)

let prop_step_preserves_closedness =
  QCheck.Test.make ~name:"step preserves closedness" ~count:300 arb_term (fun t ->
      QCheck.assume (T.is_closed t);
      let rec walk fuel t =
        fuel = 0
        ||
        match Step.step t with
        | Step.Next (t', _) -> T.is_closed t' && walk (fuel - 1) t'
        | Step.Finished _ | Step.Stuck _ -> true
      in
      walk 200 t)

(* Fresh binder names carry a global counter suffix ("x%37"); strip the
   digits so two evaluations of the same program compare alpha-blind. *)
let normalize_names s =
  String.to_seq s
  |> Seq.fold_left
       (fun (acc, in_suffix) ch ->
         if in_suffix && ch >= '0' && ch <= '9' then (acc, true)
         else if ch = '%' then (acc ^ "%", true)
         else (acc ^ String.make 1 ch, false))
       ("", false)
  |> fst

let prop_eval_deterministic =
  QCheck.Test.make ~name:"evaluation is deterministic" ~count:200 arb_term (fun t ->
      let run () =
        match Eval.eval ~fuel:2000 t with
        | Eval.Value v -> Some (normalize_names (Pp.term_to_string v))
        | Eval.Stuck m -> Some ("stuck:" ^ normalize_names m)
        | Eval.Out_of_fuel _ -> None
      in
      run () = run ())

let prop_decompose_value_agrees =
  QCheck.Test.make ~name:"decompose Value iff is_value" ~count:300 arb_term (fun t ->
      match Step.decompose t with
      | Step.Value -> T.is_value t
      | Step.Decomp _ | Step.Ill_formed _ -> not (T.is_value t))

(* Observable summary: label identities may legitimately differ between the
   two evaluators, so procedures (which can embed labels) stay opaque. *)
let rec observe = function
  | T.Int n -> string_of_int n
  | T.Bool b -> string_of_bool b
  | T.Unit -> "unit"
  | T.Nil -> "nil"
  | T.Pair (a, d) -> "(" ^ observe a ^ " . " ^ observe d ^ ")"
  | T.Lam _ | T.Fix _ | T.Prim _ | T.Papp _ -> "<procedure>"
  | _ -> "<other>"

let prop_zipper_agrees_with_naive =
  QCheck.Test.make ~name:"zipper evaluator agrees with naive rewriting" ~count:300
    arb_term (fun t ->
      let naive =
        match Eval.eval ~fuel:3000 t with
        | Eval.Value v -> `V (observe v)
        | Eval.Stuck _ -> `S
        | Eval.Out_of_fuel _ -> `F
      in
      let zipper =
        match Zipper.eval ~fuel:9000 t with
        | Eval.Value v -> `V (observe v)
        | Eval.Stuck _ -> `S
        | Eval.Out_of_fuel _ -> `F
      in
      match (naive, zipper) with
      | `F, _ | _, `F -> true (* different step granularity: no verdict *)
      | a, b -> a = b)

let prop_spawn_labels_fresh =
  QCheck.Test.make ~name:"labels stay distinct along traces" ~count:100 arb_term
    (fun t ->
      let rec walk fuel t =
        fuel = 0
        ||
        let ls = T.labels_of t in
        (* labels_of is sorted+dedup; check no label occurs in two Label
           binders at the same position is overkill — instead check the
           spawn rule's guarantee: max_label grows monotonically. *)
        match Step.step t with
        | Step.Next (t', _) -> T.max_label t' >= T.max_label t - 1 && ls = ls && walk (fuel - 1) t'
        | _ -> true
      in
      walk 150 t)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "machine"
    [
      ( "terms",
        [
          Alcotest.test_case "is_value" `Quick test_is_value;
          Alcotest.test_case "subst basic" `Quick test_subst_basic;
          Alcotest.test_case "subst shadowing" `Quick test_subst_shadowing;
          Alcotest.test_case "subst capture avoidance" `Quick test_subst_capture_avoidance;
          Alcotest.test_case "subst fix capture" `Quick test_subst_fix_capture;
          Alcotest.test_case "free_vars" `Quick test_free_vars;
          Alcotest.test_case "labels" `Quick test_labels;
        ] );
      ( "contexts",
        [
          Alcotest.test_case "plug" `Quick test_plug;
          Alcotest.test_case "split_at_label" `Quick test_split_at_label;
        ] );
      ( "steps",
        [
          Alcotest.test_case "beta" `Quick test_step_beta;
          Alcotest.test_case "label-return" `Quick test_step_label_return;
          Alcotest.test_case "if" `Quick test_step_if;
          Alcotest.test_case "spawn freshness" `Quick test_step_spawn_fresh_labels;
          Alcotest.test_case "spawn shape" `Quick test_step_spawn_shape;
          Alcotest.test_case "control without label" `Quick test_control_requires_label;
          Alcotest.test_case "delta rules" `Quick test_delta_rules;
          Alcotest.test_case "delta errors" `Quick test_delta_errors;
          Alcotest.test_case "partial application" `Quick test_partial_application;
          Alcotest.test_case "fix factorial" `Quick test_fix_factorial;
          Alcotest.test_case "trace rules" `Quick test_trace_rules;
          Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "pp",
        [
          Alcotest.test_case "terms" `Quick test_pp_term;
          Alcotest.test_case "contexts" `Quick test_pp_ctx;
        ] );
      ( "zipper",
        [
          Alcotest.test_case "paper examples" `Quick test_zipper_examples;
          Alcotest.test_case "fuel" `Quick test_zipper_fuel;
        ] );
      ( "paper-examples",
        [
          Alcotest.test_case "escaping controller is invalid" `Quick test_escaping_controller;
          Alcotest.test_case "double use is invalid" `Quick test_double_use;
          Alcotest.test_case "reinstated is valid" `Quick test_reinstated;
          Alcotest.test_case "pk invoked twice" `Quick test_pk_twice;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "early exit is cheaper" `Quick test_product_step_counts;
          Alcotest.test_case "nested spawns" `Quick test_nested_spawn;
          Alcotest.test_case "exit after return" `Quick test_exit_is_dead_after_return;
        ] );
      ( "properties",
        qsuite
          [
            prop_step_preserves_closedness;
            prop_eval_deterministic;
            prop_zipper_agrees_with_naive;
            prop_decompose_value_agrees;
            prop_spawn_labels_fresh;
          ] );
    ]
