(* Tests for the utility substrate: ids, queues, PRNG, counters, univ. *)

module Id = Pcont_util.Id
module Fqueue = Pcont_util.Fqueue
module Xorshift = Pcont_util.Xorshift
module Counters = Pcont_util.Counters
module Univ = Pcont_util.Univ

let test_id_sequence () =
  let g = Id.create () in
  Alcotest.(check int) "first" 0 (Id.fresh g);
  Alcotest.(check int) "second" 1 (Id.fresh g);
  Alcotest.(check int) "third" 2 (Id.fresh g);
  Alcotest.(check int) "count" 3 (Id.count g)

let test_id_independent () =
  let g1 = Id.create () and g2 = Id.create () in
  ignore (Id.fresh g1);
  ignore (Id.fresh g1);
  Alcotest.(check int) "g2 unaffected" 0 (Id.fresh g2)

let test_id_fresh_above () =
  let g = Id.create () in
  let a = Id.fresh_above g 10 in
  Alcotest.(check bool) "above 10" true (a > 10);
  let b = Id.fresh g in
  Alcotest.(check bool) "monotone" true (b > a);
  let c = Id.fresh_above g 0 in
  Alcotest.(check bool) "never goes back" true (c > b)

let test_fqueue_fifo () =
  let q = Fqueue.(push 3 (push 2 (push 1 empty))) in
  match Fqueue.pop q with
  | Some (1, q) -> (
      match Fqueue.pop q with
      | Some (2, q) -> (
          match Fqueue.pop q with
          | Some (3, q) ->
              Alcotest.(check bool) "now empty" true (Fqueue.is_empty q)
          | _ -> Alcotest.fail "expected 3")
      | _ -> Alcotest.fail "expected 2")
  | _ -> Alcotest.fail "expected 1"

let test_fqueue_empty () =
  Alcotest.(check bool) "empty pop" true (Fqueue.pop Fqueue.empty = None);
  Alcotest.(check int) "empty length" 0 (Fqueue.length Fqueue.empty)

let test_fqueue_mixed_ops () =
  (* Interleave pushes and pops to exercise the back-list reversal. *)
  let q = Fqueue.(push 2 (push 1 empty)) in
  let x, q = Option.get (Fqueue.pop q) in
  let q = Fqueue.push 3 q in
  let y, q = Option.get (Fqueue.pop q) in
  let z, q = Option.get (Fqueue.pop q) in
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] [ x; y; z ];
  Alcotest.(check bool) "empty" true (Fqueue.is_empty q)

let test_fqueue_fold () =
  let q = Fqueue.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "sum" 10 (Fqueue.fold ( + ) 0 q);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4 ] (Fqueue.to_list q)

let prop_fqueue_roundtrip =
  QCheck.Test.make ~name:"fqueue to_list/of_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Fqueue.to_list (Fqueue.of_list xs) = xs)

let prop_fqueue_length =
  QCheck.Test.make ~name:"fqueue length matches list" ~count:200
    QCheck.(list int)
    (fun xs -> Fqueue.length (Fqueue.of_list xs) = List.length xs)

let prop_fqueue_push_pop =
  QCheck.Test.make ~name:"fqueue drains in push order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let q = List.fold_left (fun q x -> Fqueue.push x q) Fqueue.empty xs in
      let rec drain acc q =
        match Fqueue.pop q with
        | None -> List.rev acc
        | Some (x, q) -> drain (x :: acc) q
      in
      drain [] q = xs)

let test_xorshift_determinism () =
  let a = Xorshift.create 42L and b = Xorshift.create 42L in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Xorshift.next a) (Xorshift.next b)
  done

let test_xorshift_seed_sensitivity () =
  let a = Xorshift.create 1L and b = Xorshift.create 2L in
  Alcotest.(check bool) "different seeds differ" true
    (Xorshift.next a <> Xorshift.next b)

let prop_xorshift_bounds =
  QCheck.Test.make ~name:"xorshift int in bounds" ~count:500
    QCheck.(pair (int_bound 1000) small_int)
    (fun (bound, seed) ->
      let bound = bound + 1 in
      let g = Xorshift.create (Int64.of_int seed) in
      let v = Xorshift.int g bound in
      v >= 0 && v < bound)

let prop_xorshift_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair (list int) small_int)
    (fun (xs, seed) ->
      let a = Array.of_list xs in
      Xorshift.shuffle (Xorshift.create (Int64.of_int seed)) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let test_xorshift_split () =
  let g = Xorshift.create 7L in
  let h = Xorshift.split g in
  (* The split stream differs from the parent's continuation. *)
  Alcotest.(check bool) "independent" true (Xorshift.next h <> Xorshift.next g)

let test_counters_basic () =
  let c = Counters.create () in
  Counters.incr c "a";
  Counters.incr c "a";
  Counters.add c "b" 5;
  Alcotest.(check int) "a" 2 (Counters.get c "a");
  Alcotest.(check int) "b" 5 (Counters.get c "b");
  Alcotest.(check int) "absent" 0 (Counters.get c "zzz")

let test_counters_reset () =
  let c = Counters.create () in
  Counters.add c "x" 3;
  Counters.reset c;
  Alcotest.(check int) "reset to zero" 0 (Counters.get c "x")

let test_counters_to_list_sorted () =
  let c = Counters.create () in
  Counters.incr c "zeta";
  Counters.incr c "alpha";
  Counters.incr c "mid";
  Alcotest.(check (list string)) "sorted names"
    [ "alpha"; "mid"; "zeta" ]
    (List.map fst (Counters.to_list c))

let test_univ_roundtrip () =
  let inj, prj = Univ.embed () in
  Alcotest.(check (option int)) "roundtrip" (Some 42) (prj (inj 42))

let test_univ_cross_pair () =
  let inj1, _ = Univ.embed () in
  let _, prj2 = Univ.embed () in
  Alcotest.(check (option int)) "cross-pair projection fails" None (prj2 (inj1 1))

let test_univ_polymorphic () =
  let inj, prj = Univ.embed () in
  match prj (inj "hello") with
  | Some s -> Alcotest.(check string) "string payload" "hello" s
  | None -> Alcotest.fail "projection failed"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "util"
    [
      ( "id",
        [
          Alcotest.test_case "sequence" `Quick test_id_sequence;
          Alcotest.test_case "independent generators" `Quick test_id_independent;
          Alcotest.test_case "fresh_above" `Quick test_id_fresh_above;
        ] );
      ( "fqueue",
        [
          Alcotest.test_case "fifo order" `Quick test_fqueue_fifo;
          Alcotest.test_case "empty" `Quick test_fqueue_empty;
          Alcotest.test_case "mixed push/pop" `Quick test_fqueue_mixed_ops;
          Alcotest.test_case "fold and to_list" `Quick test_fqueue_fold;
        ]
        @ qsuite [ prop_fqueue_roundtrip; prop_fqueue_length; prop_fqueue_push_pop ] );
      ( "xorshift",
        [
          Alcotest.test_case "determinism" `Quick test_xorshift_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_xorshift_seed_sensitivity;
          Alcotest.test_case "split" `Quick test_xorshift_split;
        ]
        @ qsuite [ prop_xorshift_bounds; prop_xorshift_shuffle_permutes ] );
      ( "counters",
        [
          Alcotest.test_case "incr/add/get" `Quick test_counters_basic;
          Alcotest.test_case "reset" `Quick test_counters_reset;
          Alcotest.test_case "to_list sorted" `Quick test_counters_to_list_sorted;
        ] );
      ( "univ",
        [
          Alcotest.test_case "roundtrip" `Quick test_univ_roundtrip;
          Alcotest.test_case "cross-pair" `Quick test_univ_cross_pair;
          Alcotest.test_case "polymorphic" `Quick test_univ_polymorphic;
        ] );
    ]
