;; Section 8: Multilisp-style futures as independent trees (run with psi -c).
(define fibs
  (map1 (lambda (i)
          (future
            (let fib ([n i])
              (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))))
        (iota 10)))

(display (map1 touch fibs)) (newline)
(display (touch 42)) (newline)
(display (future? (car fibs))) (newline)
