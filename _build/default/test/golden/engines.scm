;; Reference [6]: engines, in the object language.
(define (sum-engine n)
  (make-engine
    (lambda (tick)
      (let loop ([i 0] [acc 0])
        (if (= i n) acc (begin (tick) (loop (+ i 1) (+ acc i))))))))

(define r1 ((sum-engine 10) 100))
(display r1) (newline)

(define r2 ((sum-engine 10) 3))
(display (car r2)) (newline)
(display ((cadr r2) 100)) (newline)

;; Reference [11]: coroutines.
(define co
  (make-coroutine
    (lambda (yield i)
      (let* ([j (yield (+ i 1))]
             [k (yield (+ j 10))])
        (+ k 100)))))
(display (list (co 1) (co 5) (co 7))) (newline)
