;; Section 4: the reinstated-controller example and multi-shot invocation.
(display
  ((spawn (lambda (c) (c (c (lambda (k) (k (lambda (k) (k (lambda (k) k)))))))))
   42))
(newline)
(display (spawn (lambda (c) (+ 1 (c (lambda (k) (* (k 2) (k 3))))))))
(newline)
