;; Section 5: parallel-search over a binary tree (run with psi -c).
(define (node t) (car t))
(define (left t) (cadr t))
(define (right t) (car (cddr t)))
(define (empty? t) (null? t))

(define parallel-search
  (lambda (tree predicate?)
    (spawn
      (lambda (c)
        (define search
          (lambda (tree)
            (unless (empty? tree)
              (pcall
                (lambda (x y z) #f)
                (when (predicate? (node tree))
                  (c (lambda (k)
                       (cons (node tree)
                             (lambda () (k #f))))))
                (search (left tree))
                (search (right tree))))))
        (search tree)
        #f))))

(define search-all
  (lambda (tree predicate?)
    (letrec ([collect (lambda (result)
                        (if result
                            (cons (car result) (collect ((cdr result))))
                            '()))])
      (collect (parallel-search tree predicate?)))))

(define t '(4 (2 (1 () ()) (3 () ())) (6 (5 () ()) (7 () ()))))

(display (sort < (search-all t even?))) (newline)
(display (sort < (search-all t odd?))) (newline)
(display (parallel-or #f 17)) (newline)
(display (parallel-or #f #f)) (newline)
