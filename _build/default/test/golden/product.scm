;; Section 3/5: products with nonlocal exits, three ways.
(define product0
  (lambda (ls exit)
    (cond
      [(null? ls) 1]
      [(= (car ls) 0) (exit 0)]
      [else (* (car ls) (product0 (cdr ls) exit))])))

(define (product-cc ls)
  (call/cc (lambda (exit) (product0 ls exit))))

(define (product-se ls)
  (spawn/exit (lambda (exit) (product0 ls exit))))

(display (product-cc '(1 2 3 4 5))) (newline)
(display (product-cc '(1 2 0 4 5))) (newline)
(display (product-se '(1 2 3 4 5))) (newline)
(display (product-se '(7 0 9))) (newline)
