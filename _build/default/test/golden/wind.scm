;; dynamic-wind with process continuations (the Subcontinuations-1994
;; extension of this paper): winders bracket every exit and re-entry.
(define log '())
(define (note x) (set! log (cons x log)))

(display
  (spawn (lambda (c)
    (dynamic-wind
      (lambda () (note 'in))
      (lambda () (+ 1 (c (lambda (k) (* (k 2) (k 3))))))
      (lambda () (note 'out))))))
(newline)
(display (reverse log)) (newline)
