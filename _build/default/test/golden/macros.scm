;; Section 2: the paper's extend-syntax definition of let, shadowing the
;; built-in, plus a multi-rule recursive macro.
(extend-syntax (let)
  [(let ([x v] ...) e1 e2 ...)
   ((lambda (x ...) e1 e2 ...) v ...)])

(display (let ([a 1] [b 2]) (+ a b))) (newline)

(extend-syntax (my-list)
  [(my-list) '()]
  [(my-list e1 e2 ...) (cons e1 (my-list e2 ...))])

(display (my-list 1 (+ 1 1) 3)) (newline)

(extend-syntax (swap!)
  [(swap! a b) (let ([tmp a]) (set! a b) (set! b tmp))])

(define p 1)
(define q 2)
(swap! p q)
(display (list p q)) (newline)
