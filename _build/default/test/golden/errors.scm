;; Error paths: invalid controller uses report cleanly (and psi exits 1,
;; checked by the dune rule's accepted exit codes).
((spawn (lambda (c) c)) (lambda (k) k))
