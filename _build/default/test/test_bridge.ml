(* Tests for the bridge between the Section 6 calculus and the pstack IR:
   total translation machine->IR, partial translation IR->machine, and
   whole Scheme programs running on the semantics machine. *)

module Bridge = Pcont_bridge.Bridge
module M = Pcont_machine
module T = Pcont_machine.Term
module P = Pcont_pstack
module Interp = Pcont_syntax.Interp

(* Observable summaries, as in test_diff. *)
let rec obs_machine (v : T.term) : string =
  match v with
  | T.Int n -> string_of_int n
  | T.Bool b -> string_of_bool b
  | T.Unit -> "unit"
  | T.Nil -> "nil"
  | T.Pair (a, d) -> "(" ^ obs_machine a ^ " . " ^ obs_machine d ^ ")"
  | T.Lam _ | T.Fix _ | T.Prim _ | T.Papp _ -> "<procedure>"
  | _ -> "<other>"

let rec obs_pstack (v : P.Types.value) : string =
  match v with
  | P.Types.Int n -> string_of_int n
  | P.Types.Bool b -> string_of_bool b
  | P.Types.Unit -> "unit"
  | P.Types.Nil -> "nil"
  | P.Types.Pair { car; cdr } -> "(" ^ obs_pstack car ^ " . " ^ obs_pstack cdr ^ ")"
  | P.Types.Closure _ | P.Types.Prim _ | P.Types.Controller _ | P.Types.Pk _
  | P.Types.Pktree _ | P.Types.Cont _ | P.Types.Fcont _ ->
      "<procedure>"
  | _ -> "<other>"

let machine_value src_term =
  match M.Eval.eval ~fuel:500_000 src_term with
  | M.Eval.Value v -> obs_machine v
  | M.Eval.Stuck m -> Alcotest.failf "machine stuck: %s" m
  | M.Eval.Out_of_fuel _ -> Alcotest.fail "machine out of fuel"

let run_scheme_on_machine src =
  match Bridge.scheme_to_term src with
  | Error m -> Alcotest.failf "translation failed: %s" m
  | Ok term -> machine_value term

(* ---------------- to_term on Scheme sources ---------------- *)

let test_scheme_on_machine_basics () =
  Alcotest.(check string) "arith" "7" (run_scheme_on_machine "(+ 3 4)");
  Alcotest.(check string) "let" "3" (run_scheme_on_machine "(let ([a 1] [b 2]) (+ a b))");
  Alcotest.(check string) "lambda" "25" (run_scheme_on_machine "((lambda (x) (* x x)) 5)");
  Alcotest.(check string) "multi-arg" "9"
    (run_scheme_on_machine "((lambda (x y) (+ x y)) 4 5)");
  Alcotest.(check string) "thunk" "8" (run_scheme_on_machine "((lambda () 8))");
  Alcotest.(check string) "if/cond" "2"
    (run_scheme_on_machine "(cond [(zero? 1) 1] [else 2])");
  Alcotest.(check string) "and/or" "5" (run_scheme_on_machine "(or #f (and #t 5))");
  Alcotest.(check string) "quote" "(1 . (2 . nil))"
    (run_scheme_on_machine "'(1 2)");
  Alcotest.(check string) "begin" "2" (run_scheme_on_machine "(begin 1 2)")

let test_scheme_on_machine_recursion () =
  Alcotest.(check string) "factorial" "120"
    (run_scheme_on_machine
       "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 5)");
  Alcotest.(check string) "named let" "55"
    (run_scheme_on_machine
       "(let loop ([i 0] [acc 0]) (if (< 10 i) acc (loop (+ i 1) (+ acc i))))")

let test_scheme_on_machine_spawn () =
  (* The paper's Section 4 example, from Scheme source to the Section 6
     rewriting machine. *)
  Alcotest.(check string) "reinstated" "42"
    (run_scheme_on_machine
       "((spawn (lambda (c) (c (c (lambda (k) (k (lambda (k) (k (lambda (k) k))))))))) 42)");
  Alcotest.(check string) "pk twice" "12"
    (run_scheme_on_machine
       "(spawn (lambda (c) (+ 1 (c (lambda (k) (* (k 2) (k 3)))))))");
  Alcotest.(check string) "product via spawn" "0"
    (run_scheme_on_machine
       {|
(define (spawn-exit proc)
  (spawn (lambda (c) (proc (lambda (v) (c (lambda (k) v)))))))
(define (product0 ls exit)
  (cond [(null? ls) 1]
        [(zero? (car ls)) (exit 0)]
        [else (* (car ls) (product0 (cdr ls) exit))]))
(spawn-exit (lambda (exit) (product0 '(1 2 0 4) exit)))
|})

let test_to_term_unsupported () =
  let check_err src expect =
    match Bridge.scheme_to_term src with
    | Error m ->
        let contains =
          let n = String.length expect and l = String.length m in
          let rec go i = i + n <= l && (String.sub m i n = expect || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) (src ^ " error mentions " ^ expect) true contains
    | Ok _ -> Alcotest.failf "%s should not translate" src
  in
  check_err "(set! x 1)" "set!";
  check_err "\"str\"" "string";
  check_err "(pcall + 1 2)" "pcall";
  check_err "(future 1)" "future";
  check_err "((lambda args args) 1)" "variadic";
  check_err "'sym" "symbol"

let test_program_folding () =
  (* defines become lets over the remaining forms; intermediate
     expressions are sequenced. *)
  Alcotest.(check string) "defines chain" "30"
    (run_scheme_on_machine "(define a 10) (define b (+ a a)) (+ a b)");
  Alcotest.(check string) "intermediate exprs" "5"
    (run_scheme_on_machine "(+ 1 1) (define x 5) x");
  match Bridge.scheme_to_term "(define x 1)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a program ending in a define has no value"

(* ---------------- roundtrip: term -> IR -> term ---------------- *)

let roundtrip_agree name term =
  let direct = machine_value term in
  match Bridge.to_term (Bridge.of_term term) with
  | Error m -> Alcotest.failf "%s: roundtrip failed: %s" name m
  | Ok term' -> Alcotest.(check string) name direct (machine_value term')

let test_roundtrip_curated () =
  roundtrip_agree "product" (M.Examples.product_of [ 2; 3; 4 ]);
  roundtrip_agree "product zero" (M.Examples.product_of [ 2; 0; 4 ]);
  roundtrip_agree "reinstated" M.Examples.reinstated_applied;
  roundtrip_agree "pk twice" M.Examples.pk_twice;
  roundtrip_agree "nested spawns" (M.Examples.nested_spawn_depth 3)

(* ---------------- random IR -> machine agreement ---------------- *)

(* Pure IR programs in the translatable fragment. *)
let gen_ir =
  let open QCheck.Gen in
  let rec go env n =
    if n <= 0 then
      oneof
        [
          map P.Ir.int small_int;
          map P.Ir.bool bool;
          (if env = [] then map P.Ir.int small_int else map P.Ir.var (oneofl env));
        ]
    else
      frequency
        [
          (2, map P.Ir.int small_int);
          (3, let* x = oneofl [ "p"; "q" ] in
              let* body = go (x :: env) (n / 2) in
              let* arg = go env (n / 2) in
              return (P.Ir.app (P.Ir.lam [ x ] body) [ arg ]));
          (2, let* a = go env (n / 2) in
              let* b = go env (n / 2) in
              let* op = oneofl [ "+"; "-"; "*" ] in
              return (P.Ir.app (P.Ir.var op) [ a; b ]));
          (2, let* c = go env (n / 3) in
              let* a = go env (n / 3) in
              let* b = go env (n / 3) in
              return (P.Ir.if_ (P.Ir.app (P.Ir.var "zero?") [ c ]) a b));
          (1, let* bindings =
                flatten_l
                  [ (let* e = go env (n / 3) in return ("m", e)) ]
              in
              let* body = go ("m" :: env) (n / 2) in
              return (P.Ir.Let (bindings, body)));
          (1, let* body = go ("cc" :: env) (n / 2) in
              return (P.Ir.app (P.Ir.var "spawn") [ P.Ir.lam [ "cc" ] body ]));
        ]
  in
  go [] 10

let arb_ir = QCheck.make gen_ir ~print:P.Ir.to_string

let prop_ir_to_machine_agrees =
  QCheck.Test.make ~name:"IR runs identically on pstack and (via to_term) machine"
    ~count:300 arb_ir (fun ir ->
      match Bridge.to_term ir with
      | Error _ -> true (* outside the fragment: no verdict *)
      | Ok term -> (
          let pstack =
            match P.Run.eval_ir ~fuel:200_000 (P.Prims.base_env ()) ir with
            | P.Run.Value v -> `V (obs_pstack v)
            | P.Run.Error _ -> `E
            | P.Run.Out_of_fuel -> `F
          in
          let machine =
            match M.Eval.eval ~fuel:60_000 term with
            | M.Eval.Value v -> `V (obs_machine v)
            | M.Eval.Stuck _ -> `E
            | M.Eval.Out_of_fuel _ -> `F
          in
          match (pstack, machine) with
          | `F, _ | _, `F -> true
          | a, b -> a = b))

(* of_term must be total on source terms (no labels): reuse the machine
   test generator's shape inline. *)
let gen_src_term =
  let open QCheck.Gen in
  let rec go env n =
    if n <= 0 then
      oneof
        [
          map (fun i -> T.Int i) small_int;
          map (fun b -> T.Bool b) bool;
          (if env = [] then return T.Nil else map (fun x -> T.Var x) (oneofl env));
        ]
    else
      frequency
        [
          (2, map (fun i -> T.Int i) small_int);
          (3, let* x = oneofl [ "a"; "b" ] in
              let* body = go (x :: env) (n / 2) in
              return (T.Lam (x, body)));
          (3, let* f = go env (n / 2) in
              let* a = go env (n / 2) in
              return (T.App (f, a)));
          (2, let* p = oneofl [ T.Add; T.Car; T.Cons; T.Not ] in
              return (T.Prim p));
          (1, let* f = oneofl [ "f" ] in
              let* body = go (f :: "x" :: env) (n / 2) in
              return (T.Fix (f, "x", body)));
          (1, let* e = go env (n / 2) in
              return (T.Spawn e));
          (1, let* c = go env (n / 3) in
              let* a = go env (n / 3) in
              let* b = go env (n / 3) in
              return (T.If (c, a, b)));
        ]
  in
  go [] 12

let prop_of_term_total =
  QCheck.Test.make ~name:"of_term is total on source terms" ~count:500
    (QCheck.make gen_src_term ~print:M.Pp.term_to_string)
    (fun t ->
      match Bridge.of_term t with
      | (_ : P.Ir.t) -> true
      | exception Invalid_argument _ -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "bridge"
    [
      ( "scheme-on-machine",
        [
          Alcotest.test_case "basics" `Quick test_scheme_on_machine_basics;
          Alcotest.test_case "recursion" `Quick test_scheme_on_machine_recursion;
          Alcotest.test_case "spawn programs" `Quick test_scheme_on_machine_spawn;
          Alcotest.test_case "unsupported constructs" `Quick test_to_term_unsupported;
          Alcotest.test_case "program folding" `Quick test_program_folding;
        ] );
      ("roundtrip", [ Alcotest.test_case "curated" `Quick test_roundtrip_curated ]);
      ("random", qsuite [ prop_ir_to_machine_agrees; prop_of_term_total ]);
    ]
