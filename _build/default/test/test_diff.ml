(* Differential testing (experiment E10): the Section 6 semantics machine
   and the Section 7 process-stack machine must agree.

   Machine terms are translated to pstack IR structurally; observable
   results (integers, booleans, unit, nil, lists of those) are compared.
   Random programs cover the functional fragment plus well-formed
   spawn/controller uses; a curated list covers every control pattern from
   the paper. *)

module M = Pcont_machine
module P = Pcont_pstack
module T = Pcont_machine.Term

(* ---------------- translation: machine term -> pstack IR ---------------- *)

let translate = Pcont_bridge.Bridge.of_term

(* ---------------- observation ---------------- *)

(* Observable summary of a machine value. *)
let rec obs_machine (v : T.term) : string =
  match v with
  | T.Int n -> string_of_int n
  | T.Bool b -> string_of_bool b
  | T.Unit -> "unit"
  | T.Nil -> "nil"
  | T.Pair (a, d) -> "(" ^ obs_machine a ^ " . " ^ obs_machine d ^ ")"
  | T.Lam _ | T.Fix _ | T.Prim _ | T.Papp _ -> "<procedure>"
  | _ -> "<other>"

let rec obs_pstack (v : P.Types.value) : string =
  match v with
  | P.Types.Int n -> string_of_int n
  | P.Types.Bool b -> string_of_bool b
  | P.Types.Unit -> "unit"
  | P.Types.Nil -> "nil"
  | P.Types.Pair { car; cdr } -> "(" ^ obs_pstack car ^ " . " ^ obs_pstack cdr ^ ")"
  | P.Types.Closure _ | P.Types.Prim _ | P.Types.Controller _ | P.Types.Pk _
  | P.Types.Pktree _ | P.Types.Cont _ | P.Types.Fcont _ ->
      "<procedure>"
  | _ -> "<other>"

type outcome = Ok_val of string | Failed | Diverged

let run_machine t =
  match M.Eval.eval ~fuel:60_000 t with
  | M.Eval.Value v -> Ok_val (obs_machine v)
  | M.Eval.Stuck _ -> Failed
  | M.Eval.Out_of_fuel _ -> Diverged

let run_pstack t =
  let env = P.Prims.base_env () in
  match P.Run.eval_ir ~fuel:400_000 env (translate t) with
  | P.Run.Value v -> Ok_val (obs_pstack v)
  | P.Run.Error _ -> Failed
  | P.Run.Out_of_fuel -> Diverged

let agree t =
  match (run_machine t, run_pstack t) with
  | Ok_val a, Ok_val b -> a = b
  | Failed, Failed -> true
  (* Fuel is measured in different units; if either diverges, no verdict. *)
  | Diverged, _ | _, Diverged -> true
  | _ -> false

let check_agree name t =
  let a = run_machine t and b = run_pstack t in
  match (a, b) with
  | Ok_val x, Ok_val y -> Alcotest.(check string) name x y
  | Failed, Failed -> ()
  | Diverged, _ | _, Diverged -> Alcotest.fail (name ^ ": diverged")
  | Ok_val x, Failed -> Alcotest.failf "%s: machine %s, pstack failed" name x
  | Failed, Ok_val y -> Alcotest.failf "%s: machine failed, pstack %s" name y

(* ---------------- curated control programs ---------------- *)

let curated : (string * T.term) list =
  let open T in
  [
    ("escaping controller", M.Examples.escaping_controller);
    ("double use", M.Examples.double_use);
    ("reinstated", M.Examples.reinstated_applied);
    ("pk twice", M.Examples.pk_twice);
    ("product [1..5]", M.Examples.product_of [ 1; 2; 3; 4; 5 ]);
    ("product with zero", M.Examples.product_of [ 3; 0; 9 ]);
    ("product empty", M.Examples.product_of []);
    ("nested spawn 1", M.Examples.nested_spawn_depth 1);
    ("nested spawn 4", M.Examples.nested_spawn_depth 4);
    ("spawn normal", Spawn (Lam ("c", Int 11)));
    ("spawn ignores controller", Spawn (Lam ("c", prim2 Add (Int 1) (Int 2))));
    ( "abort pending work",
      Spawn (Lam ("c", prim2 Add (Int 1) (App (Var "c", Lam ("k", Int 10))))) );
    ( "compose once",
      Spawn
        (Lam
           ( "c",
             prim2 Add (Int 1)
               (App
                  ( Var "c",
                    Lam ("k", prim2 Mul (Int 10) (App (Var "k", Int 2))) )) ))
    );
    ( "inner exit via outer",
      Spawn
        (Lam
           ( "c1",
             prim2 Add (Int 100)
               (Spawn
                  (Lam
                     ( "c2",
                       prim2 Add (Int 10) (App (Var "c1", Lam ("k", Int 1))) ))) ))
    );
    ( "controller applied to value-returning body",
      Spawn (Lam ("c", App (Var "c", Lam ("k", App (Var "k", Int 5))))) );
    ( "deep frames then capture",
      Spawn
        (Lam
           ( "c",
             prim2 Add (Int 1)
               (prim2 Add (Int 2)
                  (prim2 Add (Int 3) (App (Var "c", Lam ("k", App (Var "k", Int 4))))))
           )) );
  ]

let test_curated () =
  List.iter (fun (name, t) -> check_agree name t) curated

(* ---------------- random functional programs ---------------- *)

let gen_term =
  let open QCheck.Gen in
  let var env = if env = [] then return (T.Int 1) else map (fun x -> T.Var x) (oneofl env) in
  let rec go env n =
    if n <= 0 then
      oneof [ map (fun i -> T.Int (i mod 100)) small_int; map (fun b -> T.Bool b) bool; var env ]
    else
      frequency
        [
          (2, map (fun i -> T.Int (i mod 100)) small_int);
          (1, var env);
          (3, let* x = oneofl [ "u"; "v"; "w" ] in
              let* body = go (x :: env) (n / 2) in
              let* arg = go env (n / 2) in
              return (T.App (T.Lam (x, body), arg)));
          (2, let* a = go env (n / 2) in
              let* b = go env (n / 2) in
              let* p = oneofl [ T.Add; T.Sub; T.Mul ] in
              return (T.prim2 p a b));
          (2, let* c = go env (n / 3) in
              let* a = go env (n / 3) in
              let* b = go env (n / 3) in
              return (T.If (T.prim1 T.Is_zero c, a, b)));
          (1, let* a = go env (n / 2) in
              let* d = go env (n / 2) in
              return (T.prim2 T.Cons a d));
          (1, let* body = go ("cc" :: env) (n / 2) in
              return (T.Spawn (T.Lam ("cc", body))));
          (1, let* body = go ("cc" :: env) (n / 3) in
              (* a well-formed capture that immediately resumes *)
              let* arg = go env (n / 3) in
              return
                (T.Spawn
                   (T.Lam
                      ( "cc",
                        T.App
                          ( T.Var "cc",
                            T.Lam ("kk", T.App (T.Var "kk", T.App (T.Lam ("cc2", body), arg)))
                          ) ))));
        ]
  in
  go [] 12

let arb_term = QCheck.make gen_term ~print:M.Pp.term_to_string

let prop_machines_agree =
  QCheck.Test.make ~name:"semantics machine and pstack machine agree" ~count:500
    arb_term agree

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "diff"
    [
      ("curated", [ Alcotest.test_case "paper control programs" `Quick test_curated ]);
      ("random", qsuite [ prop_machines_agree ]);
    ]
