test/test_syntax.ml: Alcotest List Pcont_pstack Pcont_syntax QCheck QCheck_alcotest String
