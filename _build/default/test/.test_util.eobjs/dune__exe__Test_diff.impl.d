test/test_diff.ml: Alcotest List Pcont_bridge Pcont_machine Pcont_pstack QCheck QCheck_alcotest
