test/test_machine.ml: Alcotest Ctx Eval Examples Format Hashtbl List Option Pcont_machine Pcont_util Pp Printf QCheck QCheck_alcotest Seq Step String Term Zipper
