test/test_pstack.ml: Alcotest Debug Env Format Ir List Machine Option Pcont_pstack Pcont_syntax Pcont_util Prims Printf QCheck QCheck_alcotest Run String Types Value
