test/test_util.ml: Alcotest Array Int64 List Option Pcont_util QCheck QCheck_alcotest
