test/test_concur.mli:
