test/test_stress.ml: Alcotest Buffer List Pcont Pcont_machine Pcont_pstack Pcont_sched Pcont_syntax Printf
