test/test_sched.ml: Alcotest Hashtbl Int64 List Option Pcont_sched
