test/test_concur.ml: Alcotest Hashtbl Int64 List Pcont_pstack Pcont_syntax Pcont_util QCheck QCheck_alcotest String
