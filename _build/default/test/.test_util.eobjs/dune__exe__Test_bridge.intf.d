test/test_bridge.mli:
