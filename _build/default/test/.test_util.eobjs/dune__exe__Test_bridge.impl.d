test/test_bridge.ml: Alcotest List Pcont_bridge Pcont_machine Pcont_pstack Pcont_syntax QCheck QCheck_alcotest String
