test/test_core.ml: Alcotest Coroutine Engine Exit Fun Generator List Option Pcont Prompt QCheck QCheck_alcotest Spawn String
