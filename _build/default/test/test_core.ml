(* Tests for the direct-style OCaml embedding (effect handlers): Spawn,
   Exit, Coroutine, Generator, Engine — including the paper's Section 4
   validity rules in their typed, one-shot form. *)

open Pcont

(* ---------------- spawn / control / resume ---------------- *)

let test_spawn_transparent () =
  Alcotest.(check int) "normal return" 42 (Spawn.spawn (fun _c -> 42))

let test_control_aborts () =
  (* The pending (+ 1) is aborted; the body's value is the spawn's value. *)
  let r = Spawn.spawn (fun c -> 1 + Spawn.control c (fun _k -> 10)) in
  Alcotest.(check int) "aborted" 10 r

let test_control_composes () =
  let r = Spawn.spawn (fun c -> 1 + Spawn.control c (fun k -> 10 * Spawn.resume k 2)) in
  Alcotest.(check int) "composed" 30 r

let test_control_answer_types () =
  (* A controller can be applied at different answer types: first at int,
     then (after reinstatement) at string. *)
  let r =
    Spawn.spawn (fun c ->
        let n = Spawn.control c (fun k -> Spawn.resume k 5) in
        let s = Spawn.control c (fun k -> Spawn.resume k "x") in
        n + String.length s)
  in
  Alcotest.(check int) "polymorphic controller" 6 r

let test_dead_after_return () =
  let leaked = ref None in
  ignore (Spawn.spawn (fun c -> leaked := Some c; 0));
  match Spawn.control (Option.get !leaked) (fun _k -> 0) with
  | (_ : int) -> Alcotest.fail "expected Dead_controller"
  | exception Spawn.Dead_controller -> ()

let test_dead_after_abort () =
  (* Inside the body, the root has been removed: a second use fails. *)
  let r =
    Spawn.spawn (fun c ->
        Spawn.control c (fun _k ->
            match Spawn.control c (fun _k2 -> 0) with
            | (_ : int) -> -1
            | exception Spawn.Dead_controller -> 99))
  in
  Alcotest.(check int) "second use invalid" 99 r

let test_valid_after_resume () =
  (* Resuming the process continuation reinstates the root, so the
     controller works again — the paper's third Section 4 example, in its
     one-shot typed form. *)
  let r =
    Spawn.spawn (fun c ->
        let a = Spawn.control c (fun k -> Spawn.resume k 1) in
        let b = Spawn.control c (fun k -> Spawn.resume k 2) in
        (10 * a) + b)
  in
  Alcotest.(check int) "controller reusable after reinstatement" 12 r

let test_one_shot () =
  let r =
    Spawn.spawn (fun c ->
        1
        + Spawn.control c (fun k ->
              let first = Spawn.resume k 2 in
              match Spawn.resume k 3 with
              | _ -> -1
              | exception Spawn.Expired_subcont -> 100 + first))
  in
  Alcotest.(check int) "second resume raises" 103 r

let test_is_valid_and_abandon () =
  let r =
    Spawn.spawn (fun c ->
        1
        + Spawn.control c (fun k ->
              Alcotest.(check bool) "valid before" true (Spawn.is_valid k);
              Spawn.abandon k;
              Alcotest.(check bool) "invalid after" false (Spawn.is_valid k);
              Spawn.abandon k (* idempotent *);
              7))
  in
  Alcotest.(check int) "abandoned" 7 r

let test_nested_spawn_outer_exit () =
  let r =
    Spawn.spawn (fun outer ->
        100 + Spawn.spawn (fun _inner -> 10 + Spawn.control outer (fun _k -> 1)))
  in
  Alcotest.(check int) "crossed inner root" 1 r

let test_nested_spawn_inner_exit () =
  let r =
    Spawn.spawn (fun _outer ->
        100 + Spawn.spawn (fun inner -> 10 + Spawn.control inner (fun _k -> 1)))
  in
  Alcotest.(check int) "inner delimits" 101 r

let test_exception_passes_through () =
  match Spawn.spawn (fun _c -> raise Exit) with
  | (_ : int) -> Alcotest.fail "expected exception"
  | exception Exit -> ()

let test_exception_in_resumed_process () =
  (* An exception raised after resumption propagates to the resumer. *)
  let r =
    Spawn.spawn (fun c ->
        let x = Spawn.control c (fun k -> try Spawn.resume k true with Exit -> 5) in
        if x then raise Exit else 0)
  in
  Alcotest.(check int) "caught at resume" 5 r

(* ---------------- exits ---------------- *)

let test_spawn_exit () =
  Alcotest.(check int) "aborts" 0 (Exit.spawn_exit (fun e -> 1 + e.Exit.exit 0));
  Alcotest.(check int) "normal" 5 (Exit.spawn_exit (fun _ -> 5));
  Alcotest.(check int) "with_exit" 3
    (Exit.with_exit (fun exit ->
         exit 3;
         99))

let test_exit_nested () =
  let r =
    Exit.spawn_exit (fun outer ->
        10 + Exit.spawn_exit (fun _inner -> 1 + outer.Exit.exit 7))
  in
  Alcotest.(check int) "outer exit crosses inner" 7 r

let test_exit_dead () =
  let leaked = ref None in
  ignore (Exit.spawn_exit (fun e -> leaked := Some e; 0));
  match (Option.get !leaked).Exit.exit 1 with
  | (_ : int) -> Alcotest.fail "expected Dead_exit"
  | exception Exit.Dead_exit -> ()

let test_exit_unwinds_protect () =
  (* Abandoning the captured continuation unwinds it, so Fun.protect
     finalizers inside the aborted extent run. *)
  let cleaned = ref false in
  let r =
    Exit.spawn_exit (fun e ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> 1 + e.Exit.exit 42))
  in
  Alcotest.(check int) "value" 42 r;
  Alcotest.(check bool) "finalizer ran" true !cleaned

(* ---------------- coroutines ---------------- *)

let test_coroutine_basic () =
  let co =
    Coroutine.create (fun ~yield i ->
        let j = yield (i + 1) in
        let k = yield (j + 10) in
        k + 100)
  in
  (match Coroutine.resume co 1 with
  | Coroutine.Yielded 2 -> ()
  | _ -> Alcotest.fail "first yield");
  (match Coroutine.resume co 5 with
  | Coroutine.Yielded 15 -> ()
  | _ -> Alcotest.fail "second yield");
  (match Coroutine.resume co 7 with
  | Coroutine.Returned 107 -> ()
  | _ -> Alcotest.fail "return");
  Alcotest.(check bool) "finished" true (Coroutine.is_finished co);
  match Coroutine.resume co 0 with
  | _ -> Alcotest.fail "expected Finished"
  | exception Coroutine.Finished -> ()

let test_coroutine_no_yield () =
  let co = Coroutine.create (fun ~yield:_ i -> i * 2) in
  match Coroutine.resume co 21 with
  | Coroutine.Returned 42 -> ()
  | _ -> Alcotest.fail "should return immediately"

let test_coroutine_ping_pong () =
  (* Two coroutines passing a value back and forth via their driver. *)
  let make name =
    Coroutine.create (fun ~yield first ->
        let v2 = yield (name ^ ":" ^ first) in
        let v3 = yield (name ^ ":" ^ v2) in
        name ^ ":" ^ v3)
  in
  let a = make "a" and b = make "b" in
  let step co v =
    match Coroutine.resume co v with
    | Coroutine.Yielded s | Coroutine.Returned s -> s
  in
  let v = step a "0" in
  let v = step b v in
  let v = step a v in
  let v = step b v in
  Alcotest.(check string) "interleaved" "b:a:b:a:0" v

(* ---------------- generators ---------------- *)

let test_generator_finite () =
  let g = Generator.of_list [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "1" (Some 1) (Generator.next g);
  Alcotest.(check (option int)) "2" (Some 2) (Generator.next g);
  Alcotest.(check (option int)) "3" (Some 3) (Generator.next g);
  Alcotest.(check (option int)) "end" None (Generator.next g);
  Alcotest.(check (option int)) "still end" None (Generator.next g)

let test_generator_ops () =
  Alcotest.(check (list int)) "to_list" [ 1; 2 ] (Generator.to_list (Generator.of_list [ 1; 2 ]));
  Alcotest.(check (list int)) "take infinite" [ 0; 1; 2; 3 ]
    (Generator.take 4 (Generator.ints ()));
  Alcotest.(check (list int)) "map" [ 0; 2; 4 ]
    (Generator.take 3 (Generator.map (fun x -> 2 * x) (Generator.ints ())));
  Alcotest.(check (list int)) "filter" [ 0; 3; 6 ]
    (Generator.take 3 (Generator.filter (fun x -> x mod 3 = 0) (Generator.ints ())));
  Alcotest.(check int) "fold" 6 (Generator.fold ( + ) 0 (Generator.of_list [ 1; 2; 3 ]));
  let total = ref 0 in
  Generator.iter (fun x -> total := !total + x) (Generator.of_list [ 4; 5 ]);
  Alcotest.(check int) "iter" 9 !total

let test_generator_incremental_take () =
  let g = Generator.ints ~from:10 () in
  Alcotest.(check (list int)) "first" [ 10; 11 ] (Generator.take 2 g);
  Alcotest.(check (list int)) "continues" [ 12; 13 ] (Generator.take 2 g)

let test_generator_tree_walk () =
  (* Same-fringe style use: stream a tree's leaves lazily. *)
  let module T = struct
    type t = Leaf of int | Node of t * t
  end in
  let rec walk ~yield = function
    | T.Leaf n -> yield n
    | T.Node (l, r) ->
        walk ~yield l;
        walk ~yield r
  in
  let tree = T.Node (T.Node (T.Leaf 1, T.Leaf 2), T.Leaf 3) in
  let g = Generator.create (fun ~yield -> walk ~yield tree) in
  Alcotest.(check (list int)) "fringe" [ 1; 2; 3 ] (Generator.to_list g)

let test_generator_seq_interop () =
  let g = Generator.of_list [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "to_seq" [ 1; 2; 3 ] (List.of_seq (Generator.to_seq g));
  let g2 = Generator.of_seq (List.to_seq [ 4; 5 ]) in
  Alcotest.(check (list int)) "of_seq" [ 4; 5 ] (Generator.to_list g2)

let test_generator_append_zip () =
  Alcotest.(check (list int)) "append" [ 1; 2; 3; 4 ]
    (Generator.to_list (Generator.append (Generator.of_list [ 1; 2 ]) (Generator.of_list [ 3; 4 ])));
  Alcotest.(check (list (pair int string))) "zip" [ (0, "a"); (1, "b") ]
    (Generator.to_list (Generator.zip (Generator.ints ()) (Generator.of_list [ "a"; "b" ])));
  Alcotest.(check (list int)) "take_while" [ 0; 1; 2 ]
    (Generator.take_while (fun x -> x < 3) (Generator.ints ()))

(* ---------------- engines ---------------- *)

let counting_engine n =
  Engine.make (fun ~tick ->
      let total = ref 0 in
      for i = 1 to n do
        tick ();
        total := !total + i
      done;
      !total)

let test_engine_done () =
  match Engine.run (counting_engine 5) ~fuel:100 with
  | Engine.Done (15, left) -> Alcotest.(check int) "fuel left" 95 left
  | _ -> Alcotest.fail "should finish"

let test_engine_expire_and_resume () =
  match Engine.run (counting_engine 100) ~fuel:10 with
  | Engine.Done _ -> Alcotest.fail "should expire"
  | Engine.Expired e -> (
      match Engine.run e ~fuel:1000 with
      | Engine.Done (5050, _) -> ()
      | Engine.Done (v, _) -> Alcotest.failf "wrong value %d" v
      | Engine.Expired _ -> Alcotest.fail "should finish on refuel")

let test_engine_run_to_completion () =
  let v, slices = Engine.run_to_completion ~fuel_per_slice:7 (counting_engine 50) in
  Alcotest.(check int) "value" 1275 v;
  Alcotest.(check bool) "multiple slices" true (slices > 1)

let test_engine_round_robin () =
  let mk tag n =
    Engine.make (fun ~tick ->
        for _ = 1 to n do
          tick ()
        done;
        tag)
  in
  let order = Engine.round_robin [ mk "slow" 30; mk "fast" 3; mk "mid" 12 ] ~fuel:5 in
  Alcotest.(check (list string)) "completion order" [ "fast"; "mid"; "slow" ] order

let test_engine_one_shot () =
  let e = counting_engine 3 in
  ignore (Engine.run e ~fuel:100);
  match Engine.run e ~fuel:100 with
  | _ -> Alcotest.fail "expected Engine_used"
  | exception Engine.Engine_used -> ()

let test_engine_bad_fuel () =
  match Engine.run (counting_engine 1) ~fuel:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_engine_nested () =
  let inner = counting_engine 10 in
  let outer =
    Engine.make (fun ~tick ->
        tick ();
        let v, _ = Engine.run_to_completion ~fuel_per_slice:3 inner in
        tick ();
        v)
  in
  match Engine.run outer ~fuel:50 with
  | Engine.Done (55, _) -> ()
  | _ -> Alcotest.fail "nested engines"

let prop_engine_fuel_conservation =
  QCheck.Test.make ~name:"engine: ticks consumed + fuel left = fuel given" ~count:200
    QCheck.(pair (int_range 1 50) (int_range 1 80))
    (fun (ticks, fuel) ->
      let e =
        Engine.make (fun ~tick ->
            for _ = 1 to ticks do
              tick ()
            done;
            ())
      in
      match Engine.run e ~fuel with
      | Engine.Done ((), left) -> left = fuel - ticks && ticks <= fuel
      | Engine.Expired _ -> ticks >= fuel)

(* ---------------- prompts derived from spawn ---------------- *)

module P = Prompt.Make (struct
  type t = int
end)

let test_prompt_fall_through () =
  Alcotest.(check int) "plain" 9 (P.prompt (fun () -> 9))

let test_prompt_fcontrol_abort () =
  (* fcontrol aborts the pending (+1) up to the prompt. *)
  Alcotest.(check int) "abort" 7 (P.prompt (fun () -> 1 + P.fcontrol (fun _fk -> 7)))

let test_prompt_fcontrol_compose () =
  (* (resume fk 5) = 1 + 5, delivered to the re-established prompt. *)
  Alcotest.(check int) "compose" 6
    (P.prompt (fun () -> 1 + P.fcontrol (fun fk -> P.resume fk 5)))

let test_prompt_shadowing () =
  (* The paper's complaint: the INNER prompt shadows the outer one, so the
     outer pending (+100) survives the capture. *)
  Alcotest.(check int) "inner shadows" 107
    (P.prompt (fun () ->
         100 + P.prompt (fun () -> 1 + P.fcontrol (fun _fk -> 7))))

let test_prompt_sequential () =
  (* Once the inner prompt's extent ends, the next fcontrol sees the outer
     prompt: it aborts the rest of the outer extent (including the pending
     use of [a]) and delivers 20. *)
  Alcotest.(check int) "sequential prompts" 20
    (P.prompt (fun () ->
         let a = P.prompt (fun () -> P.fcontrol (fun _ -> 10)) in
         let b = P.fcontrol (fun _ -> 20) in
         a + b + 1000))

let test_prompt_resume_carries_no_prompt () =
  (* The captured continuation is prompt-free: an fcontrol performed inside
     the resumed extent captures to the prompt re-established around the
     BODY, not to a prompt inside the continuation. *)
  Alcotest.(check int) "composition is transparent" 42
    (P.prompt (fun () -> 2 + P.fcontrol (fun fk -> P.resume fk 40)))

let test_no_prompt () =
  match P.fcontrol (fun _ -> 0) with
  | _ -> Alcotest.fail "expected No_prompt"
  | exception Prompt.No_prompt -> ()

let () =
  Alcotest.run "core"
    [
      ( "spawn",
        [
          Alcotest.test_case "transparent" `Quick test_spawn_transparent;
          Alcotest.test_case "control aborts" `Quick test_control_aborts;
          Alcotest.test_case "control composes" `Quick test_control_composes;
          Alcotest.test_case "polymorphic answer types" `Quick test_control_answer_types;
          Alcotest.test_case "dead after return" `Quick test_dead_after_return;
          Alcotest.test_case "dead after abort" `Quick test_dead_after_abort;
          Alcotest.test_case "valid after resume" `Quick test_valid_after_resume;
          Alcotest.test_case "one-shot" `Quick test_one_shot;
          Alcotest.test_case "is_valid / abandon" `Quick test_is_valid_and_abandon;
          Alcotest.test_case "outer exit crosses roots" `Quick test_nested_spawn_outer_exit;
          Alcotest.test_case "inner exit delimits" `Quick test_nested_spawn_inner_exit;
          Alcotest.test_case "exceptions pass through" `Quick test_exception_passes_through;
          Alcotest.test_case "exception after resume" `Quick test_exception_in_resumed_process;
        ] );
      ( "exit",
        [
          Alcotest.test_case "spawn_exit" `Quick test_spawn_exit;
          Alcotest.test_case "nested exits" `Quick test_exit_nested;
          Alcotest.test_case "dead exit" `Quick test_exit_dead;
          Alcotest.test_case "unwinds protect" `Quick test_exit_unwinds_protect;
        ] );
      ( "coroutine",
        [
          Alcotest.test_case "basic" `Quick test_coroutine_basic;
          Alcotest.test_case "no yield" `Quick test_coroutine_no_yield;
          Alcotest.test_case "ping pong" `Quick test_coroutine_ping_pong;
        ] );
      ( "generator",
        [
          Alcotest.test_case "finite" `Quick test_generator_finite;
          Alcotest.test_case "combinators" `Quick test_generator_ops;
          Alcotest.test_case "incremental take" `Quick test_generator_incremental_take;
          Alcotest.test_case "tree fringe" `Quick test_generator_tree_walk;
          Alcotest.test_case "Seq interop" `Quick test_generator_seq_interop;
          Alcotest.test_case "append/zip/take_while" `Quick test_generator_append_zip;
        ] );
      ("engine-properties", [ QCheck_alcotest.to_alcotest prop_engine_fuel_conservation ]);
      ( "prompt",
        [
          Alcotest.test_case "fall through" `Quick test_prompt_fall_through;
          Alcotest.test_case "fcontrol aborts" `Quick test_prompt_fcontrol_abort;
          Alcotest.test_case "fcontrol composes" `Quick test_prompt_fcontrol_compose;
          Alcotest.test_case "shadowing" `Quick test_prompt_shadowing;
          Alcotest.test_case "sequential prompts" `Quick test_prompt_sequential;
          Alcotest.test_case "prompt-free continuation" `Quick
            test_prompt_resume_carries_no_prompt;
          Alcotest.test_case "no prompt" `Quick test_no_prompt;
        ] );
      ( "engine",
        [
          Alcotest.test_case "done" `Quick test_engine_done;
          Alcotest.test_case "expire and resume" `Quick test_engine_expire_and_resume;
          Alcotest.test_case "run_to_completion" `Quick test_engine_run_to_completion;
          Alcotest.test_case "round robin" `Quick test_engine_round_robin;
          Alcotest.test_case "one-shot" `Quick test_engine_one_shot;
          Alcotest.test_case "bad fuel" `Quick test_engine_bad_fuel;
          Alcotest.test_case "nested" `Quick test_engine_nested;
        ] );
    ]
