(* pstep — step through the Section 6 rewriting semantics.

   Shows every rewrite of a program, labeled with the rule that fired
   (beta, delta, label-return, control, spawn, ...), so the paper's
   rules can be watched operating on real programs.

     dune exec bin/pstep.exe -- -e '(spawn (lambda (c) (+ 1 (c (lambda (k) (k 5))))))'
     dune exec bin/pstep.exe -- --example reinstated
     dune exec bin/pstep.exe -- --example pk-twice --rules control,spawn *)

module M = Pcont_machine
module Bridge = Pcont_bridge.Bridge

let examples =
  [
    ("escaping", M.Examples.escaping_controller);
    ("double-use", M.Examples.double_use);
    ("reinstated", M.Examples.reinstated_applied);
    ("pk-twice", M.Examples.pk_twice);
    ("product", M.Examples.product_of [ 1; 2; 3; 4 ]);
    ("product-zero", M.Examples.product_of [ 1; 0; 4 ]);
    ("nested-spawns", M.Examples.nested_spawn_depth 3);
  ]

let run term max_steps rules_filter quiet =
  let filter rule =
    match rules_filter with [] -> true | rs -> List.mem rule rs
  in
  let shown = ref 0 in
  let rec go n term =
    if n > max_steps then begin
      Printf.printf "... stopped after %d steps\n" max_steps;
      1
    end
    else
      match M.Step.step term with
      | M.Step.Finished v ->
          Printf.printf "%4d steps => %s\n" n (M.Pp.term_to_string v);
          0
      | M.Step.Stuck msg ->
          Printf.printf "%4d steps => STUCK: %s\n" n msg;
          1
      | M.Step.Next (term', rule) ->
          if (not quiet) && filter rule then begin
            incr shown;
            Printf.printf "%4d %-14s %s\n" (n + 1) ("[" ^ rule ^ "]")
              (M.Pp.term_to_string term')
          end;
          go (n + 1) term'
  in
  Printf.printf "     %-14s %s\n" "[start]" (M.Pp.term_to_string term);
  go 0 term

let main expr example max_steps rules quiet =
  let rules_filter =
    match rules with
    | None -> []
    | Some s -> String.split_on_char ',' s |> List.map String.trim
  in
  match (expr, example) with
  | Some src, None -> (
      match Bridge.scheme_to_term src with
      | Ok term -> run term max_steps rules_filter quiet
      | Error m ->
          Printf.eprintf "pstep: %s\n" m;
          2)
  | None, Some name -> (
      match List.assoc_opt name examples with
      | Some term -> run term max_steps rules_filter quiet
      | None ->
          Printf.eprintf "pstep: unknown example %S (have: %s)\n" name
            (String.concat ", " (List.map fst examples));
          2)
  | Some _, Some _ ->
      Printf.eprintf "pstep: give either -e or --example, not both\n";
      2
  | None, None ->
      Printf.eprintf "pstep: nothing to step (use -e EXPR or --example NAME)\n";
      2

open Cmdliner

let expr =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "eval" ] ~docv:"EXPR"
        ~doc:"Scheme expression to translate and step (pure fragment + spawn).")

let example =
  Arg.(
    value
    & opt (some string) None
    & info [ "example" ] ~docv:"NAME" ~doc:"Step a built-in paper example.")

let max_steps =
  Arg.(value & opt int 500 & info [ "max" ] ~docv:"N" ~doc:"Stop after $(docv) rewrites.")

let rules =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"R1,R2"
        ~doc:"Show only these rules (beta, delta, if, fix, partial, label-return, control, spawn).")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Print only the final result and step count.")

let cmd =
  let doc = "step through the Section 6 rewriting semantics" in
  Cmd.v
    (Cmd.info "pstep" ~version:"1.0.0" ~doc)
    Term.(const main $ expr $ example $ max_steps $ rules $ quiet)

let () = exit (Cmd.eval' cmd)
