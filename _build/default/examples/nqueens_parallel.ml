(* Parallel backtracking search with process-tree control: N-queens.

   The board columns are explored as concurrent branches of the process
   tree (pcall).  Two control regimes, both straight from Section 5:

   - count all solutions: plain tree-structured fork/join;
   - find ONE solution: a spawn/exit above the whole tree aborts every
     other branch the moment any branch completes a placement — the
     "abandoning evaluation of any remaining arguments" behaviour of
     parallel-or, at problem scale.

   Run with:  dune exec examples/nqueens_parallel.exe *)

module S = Pcont_sched.Sched
module Ops = Pcont_sched.Ops

let safe placed row =
  let rec ok dist = function
    | [] -> true
    | r :: rest -> r <> row && abs (r - row) <> dist && ok (dist + 1) rest
  in
  ok 1 placed

(* Count all solutions, exploring each candidate row in parallel. *)
let count_all n =
  S.run (fun () ->
      let rec go placed col =
        if col = n then 1
        else begin
          S.yield ();
          let candidates = List.init n (fun row -> row) in
          let branches =
            List.map
              (fun row () -> if safe placed row then go (row :: placed) (col + 1) else 0)
              candidates
          in
          List.fold_left ( + ) 0 (S.pcall branches)
        end
      in
      go [] 0)

(* Find one solution: every branch shares a single exit; the first branch
   to complete a full placement aborts the entire search tree. *)
let find_one n =
  S.run (fun () ->
      Ops.spawn_exit (fun e ->
          let rec go placed col =
            if col = n then e.Ops.exit (Some (List.rev placed))
            else begin
              S.yield ();
              let branches =
                List.map
                  (fun row () -> if safe placed row then go (row :: placed) (col + 1))
                  (List.init n (fun row -> row))
              in
              ignore (S.pcall branches)
            end
          in
          go [] 0;
          None))

let render n solution =
  List.iteri
    (fun _col row ->
      for r = 0 to n - 1 do
        print_string (if r = row then " Q" else " .")
      done;
      print_newline ())
    solution

let () =
  List.iter
    (fun n -> Printf.printf "%d-queens solutions: %d\n" n (count_all n))
    [ 4; 5; 6 ];
  let n = 6 in
  match find_one n with
  | Some solution ->
      Printf.printf "\nfirst %d-queens solution found (search aborted early):\n" n;
      render n solution
  | None -> Printf.printf "no %d-queens solution\n" n
