(* The paper's Section 5 finale: parallel-search.

   A binary tree is searched with its branches evaluated as concurrent
   processes (pcall).  When a branch finds a node satisfying the predicate,
   it invokes the process controller, which suspends the ENTIRE search —
   all branches, wherever they are — and returns the match together with a
   thunk that grafts the suspended search back and continues it.

   Run with:  dune exec examples/parallel_search.exe *)

module S = Pcont_sched.Sched
module Ops = Pcont_sched.Ops

let () =
  (* A perfect tree of depth 5 holding 31 integers. *)
  let tree = Ops.perfect ~depth:5 (fun i -> i) in

  print_endline "streaming multiples of 3, one suspension at a time:";
  S.run (fun () ->
      let rec drain n stream =
        match stream with
        | Ops.Snil -> Printf.printf "  search exhausted after %d matches\n" n
        | Ops.Scons (v, rest) ->
            Printf.printf "  found %d (search suspended; resuming...)\n" v;
            drain (n + 1) (rest ())
      in
      drain 0 (Ops.parallel_search tree (fun x -> x mod 3 = 0)));

  (* search_first abandons the suspended search: only the first answer is
     paid for.  The pruned subtree is simply dropped. *)
  let first =
    S.run (fun () -> Ops.search_first tree (fun x -> x mod 7 = 6))
  in
  (match first with
  | Some v -> Printf.printf "first x = 6 (mod 7): %d\n" v
  | None -> print_endline "no match");

  (* search_all drains the stream. *)
  let all = S.run (fun () -> Ops.search_all tree (fun x -> x mod 2 = 1)) in
  Printf.printf "all odd nodes (%d): %s\n" (List.length all)
    (String.concat " " (List.map string_of_int (List.sort compare all)));

  (* The same derived operators give parallel-or: the first branch to
     produce a true value wins and the other branches are abandoned,
     including branches that would diverge. *)
  let diverge () =
    let rec loop () =
      S.yield ();
      loop ()
    in
    loop ()
  in
  let won =
    S.run (fun () ->
        Ops.parallel_or
          [ diverge; (fun () -> S.yield (); true); diverge ])
  in
  Printf.printf "parallel-or with two divergent branches: %b\n" won
