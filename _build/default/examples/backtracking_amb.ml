(* McCarthy's amb via MULTI-SHOT process continuations.

   The paper cites amb as tree-based concurrency; a classic sequential
   realisation of amb is backtracking, which requires invoking the same
   continuation several times — once per alternative.  OCaml's native
   effect continuations are one-shot, so this example runs on the
   process-stack machine, whose process continuations are immutable data
   and can be invoked any number of times (Section 4: "process
   continuations can be applied more than once").

   amb is implemented in Scheme, on top of spawn alone:

   - (amb-run thunk) spawns a process whose controller is the backtrack
     point;
   - (amb choices) captures the process continuation k (the rest of the
     search) and re-invokes it once per choice, collecting every success.

   Run with:  dune exec examples/backtracking_amb.exe *)

module Interp = Pcont_syntax.Interp

let amb_library =
  {|
;; The controller of the enclosing amb-collect: the root every choice
;; point captures back to.
(define amb-root (make-cell #f))

;; (amb-collect thunk) returns the list of all values (thunk) can produce
;; under amb choices.  A successful run contributes a singleton; choice
;; points splice together the contributions of every alternative.
(define (amb-collect thunk)
  (spawn
    (lambda (c)
      (cell-set! amb-root c)
      (list (thunk)))))

;; (fail) abandons the current alternative: it aborts back to the collect
;; root, contributing no successes, and discards the process continuation.
(define (fail)
  ((cell-ref amb-root) (lambda (k) '())))

;; (amb-choose xs) picks an element of xs, MULTI-SHOT: the captured
;; process continuation k is the whole rest of the search (up to and
;; including the collect root), and it is invoked once per alternative;
;; each invocation reinstates the root, so nested choices capture the
;; topmost reinstated occurrence — exactly the paper's innermost-label
;; rule.  The per-alternative success lists are appended.
(define (amb-choose xs)
  ((cell-ref amb-root)
   (lambda (k)
     (fold-right append '() (map1 k xs)))))

;; (require p) kills the current alternative unless p holds.
(define (require p)
  (unless p (fail)))
|}

let () =
  let t = Interp.create () in
  (match Interp.eval_string t amb_library with
  | rs when List.for_all (function Interp.Error _ -> false | _ -> true) rs -> ()
  | rs ->
      List.iter (fun r -> print_endline (Interp.result_to_string r)) rs;
      failwith "amb library failed to load");

  let show title src =
    Printf.printf "\n== %s ==\n%s\n" title (String.trim src);
    List.iter
      (fun r -> Printf.printf "  => %s\n" (Interp.result_to_string r))
      (Interp.eval_string t src)
  in

  show "Pythagorean triples with legs up to 15"
    {|
(amb-collect
  (lambda ()
    (let* ([a (amb-choose (map1 1+ (iota 15)))]
           [b (amb-choose (map1 1+ (iota 15)))]
           [c (amb-choose (map1 1+ (iota 20)))])
      (require (< a b))
      (require (= (+ (* a a) (* b b)) (* c c)))
      (list a b c))))
|};

  show "two-digit numbers equal to twice the product of their digits (36 only)"
    {|
(amb-collect
  (lambda ()
    (let* ([d1 (amb-choose (map1 1+ (iota 9)))]
           [d2 (amb-choose (iota 10))])
      (require (= (+ (* 10 d1) d2) (* 2 (* d1 d2))))
      (list d1 d2))))
|};

  show "all subsets of (1 2 3) summing to an even number"
    {|
(amb-collect
  (lambda ()
    (let* ([take1 (amb-choose '(#t #f))]
           [take2 (amb-choose '(#t #f))]
           [take3 (amb-choose '(#t #f))]
           [subset (append (if take1 '(1) '())
                           (append (if take2 '(2) '()) (if take3 '(3) '())))])
      (require (even? (fold-left + 0 subset)))
      subset)))
|}
