examples/nqueens_parallel.ml: List Pcont_sched Printf
