examples/nqueens_parallel.mli:
