examples/pipeline.ml: List Pcont_sched Printf String
