examples/quickstart.mli:
