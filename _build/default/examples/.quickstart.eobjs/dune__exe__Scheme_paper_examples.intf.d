examples/scheme_paper_examples.mli:
