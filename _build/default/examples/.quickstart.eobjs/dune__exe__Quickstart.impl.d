examples/quickstart.ml: Engine Exit Generator List Option Pcont Printf Spawn String
