examples/futures_forest.mli:
