examples/engines_timeshare.mli:
