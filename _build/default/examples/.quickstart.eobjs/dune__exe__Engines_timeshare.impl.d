examples/engines_timeshare.ml: Engine List Pcont Printf
