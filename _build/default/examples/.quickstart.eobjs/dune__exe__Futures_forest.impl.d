examples/futures_forest.ml: List Option Pcont_pstack Pcont_sched Pcont_syntax Printf String
