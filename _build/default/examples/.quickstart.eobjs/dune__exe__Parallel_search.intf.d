examples/parallel_search.mli:
