examples/parallel_search.ml: List Pcont_sched Printf String
