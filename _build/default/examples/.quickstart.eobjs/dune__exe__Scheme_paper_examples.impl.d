examples/scheme_paper_examples.ml: List Pcont_pstack Pcont_syntax Printf String
