examples/backtracking_amb.ml: List Pcont_syntax Printf String
