examples/pipeline.mli:
