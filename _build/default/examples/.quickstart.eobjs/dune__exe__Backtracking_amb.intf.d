examples/backtracking_amb.mli:
