(* Every Scheme program from the paper, run through the interpreter on the
   process-stack machine — sequentially and, where the program is
   concurrent, under the tree-of-stacks scheduler.

   Run with:  dune exec examples/scheme_paper_examples.exe *)

module Interp = Pcont_syntax.Interp

let banner title = Printf.printf "\n== %s ==\n" title

let show ?(mode = Interp.Sequential) title src =
  banner title;
  print_endline (String.trim src);
  let t = Interp.create () in
  List.iter
    (fun r -> Printf.printf "  => %s\n" (Interp.result_to_string r))
    (List.filter
       (function Interp.Defined _ -> false | _ -> true)
       (Interp.eval_string ~mode t src))

let () =
  show "Section 2: make-cell"
    {|
(let ([x (make-cell 0)]) ((cdr x) 1) ((car x)))
|};

  show "Section 3: product via call/cc"
    {|
(define product0
  (lambda (ls exit)
    (cond
      [(null? ls) 1]
      [(= (car ls) 0) (exit 0)]
      [else (* (car ls) (product0 (cdr ls) exit))])))
(define product
  (lambda (ls)
    (call/cc (lambda (exit) (product0 ls exit)))))
(product '(1 2 3 4 5))
(product '(1 2 0 4 5))
|};

  show "Section 4: an escaped controller is invalid"
    {|
((spawn (lambda (c) c)) (lambda (k) k))
|};

  show "Section 4: a controller cannot be used twice without reinstatement"
    {|
(spawn (lambda (c) (c (lambda (k) (c (lambda (k2) k2))))))
|};

  show "Section 4: reinstating the process continuation revalidates it"
    {|
((spawn (lambda (c) (c (c (lambda (k) (k (lambda (k) (k (lambda (k) k))))))))) 42)
|};

  show "Section 5: product via spawn/exit (delimited, resumable-free exit)"
    {|
(define product0
  (lambda (ls exit)
    (cond
      [(null? ls) 1]
      [(= (car ls) 0) (exit 0)]
      [else (* (car ls) (product0 (cdr ls) exit))])))
(define product
  (lambda (ls) (spawn/exit (lambda (exit) (product0 ls exit)))))
(product '(1 2 3 4 5))
(product '(7 0 9))
|};

  show ~mode:(Interp.Concurrent Pcont_pstack.Concur.Round_robin)
    "Section 5: adding concurrently-computed products (exit inside each arm)"
    {|
(define product0
  (lambda (ls exit)
    (cond
      [(null? ls) 1]
      [(= (car ls) 0) (exit 0)]
      [else (* (car ls) (product0 (cdr ls) exit))])))
(define product
  (lambda (ls) (spawn/exit (lambda (exit) (product0 ls exit)))))
(pcall + (product '(1 2 0)) (product '(4 5 6)))
|};

  show ~mode:(Interp.Concurrent Pcont_pstack.Concur.Round_robin)
    "Section 5: multiplying products, aborting BOTH arms on a zero"
    {|
(define product0
  (lambda (ls exit)
    (cond
      [(null? ls) 1]
      [(= (car ls) 0) (exit 0)]
      [else (* (car ls) (product0 (cdr ls) exit))])))
(spawn/exit
  (lambda (exit)
    (pcall * (product0 '(1 2 0 4) exit) (product0 '(5 6 7) exit))))
|};

  show ~mode:(Interp.Concurrent Pcont_pstack.Concur.Round_robin)
    "Section 5: parallel-or (via first-true, as in the paper)"
    {|
(parallel-or #f 17)
(parallel-or (quote yes) #f)
(parallel-or #f #f)
|};

  show ~mode:(Interp.Concurrent Pcont_pstack.Concur.Round_robin)
    "Section 5: parallel-search and search-all"
    {|
(define (node t) (car t))
(define (left t) (cadr t))
(define (right t) (car (cddr t)))
(define (empty? t) (null? t))

(define parallel-search
  (lambda (tree predicate?)
    (spawn
      (lambda (c)
        (define search
          (lambda (tree)
            (unless (empty? tree)
              (pcall
                (lambda (x y z) #f)
                (when (predicate? (node tree))
                  (c (lambda (k)
                       (cons (node tree)
                             (lambda () (k #f))))))
                (search (left tree))
                (search (right tree))))))
        (search tree)
        #f))))

(define search-all
  (lambda (tree predicate?)
    (letrec ([collect (lambda (result)
                        (if result
                            (cons (car result) (collect ((cdr result))))
                            '()))])
      (collect (parallel-search tree predicate?)))))

(define t
  '(4 (2 (1 () ()) (3 () ())) (6 (5 () ()) (7 () ()))))

(search-all t even?)
(search-all t odd?)
|}
