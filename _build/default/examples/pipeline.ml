(* A three-stage pipeline over the process-tree scheduler.

   Channels are user-level code on top of the paper's primitives: blocking
   is a cooperative yield loop, so stages compose with pcall (all stages
   return when the stream ends), with spawn_exit (abort the WHOLE pipeline
   from any stage), and with futures (a producer in an independent tree).

   Run with:  dune exec examples/pipeline.exe *)

module S = Pcont_sched.Sched
module Ops = Pcont_sched.Ops
module Ch = Pcont_sched.Channel

let () =
  (* numbers -> squares -> running sum, as three pcall branches *)
  let total =
    S.run (fun () ->
        let nums = Ch.create ~capacity:4 () in
        let squares = Ch.create ~capacity:4 () in
        match
          S.pcall
            [
              (fun () ->
                for i = 1 to 10 do
                  Ch.send nums i
                done;
                Ch.close nums;
                0);
              (fun () ->
                Ch.iter (fun n -> Ch.send squares (n * n)) nums;
                Ch.close squares;
                0);
              (fun () ->
                let acc = ref 0 in
                Ch.iter (fun s -> acc := !acc + s) squares;
                !acc);
            ]
        with
        | [ _; _; sum ] -> sum
        | _ -> assert false)
  in
  Printf.printf "sum of squares 1..10 via pipeline: %d\n" total;

  (* A stage can abort the whole pipeline with a nonlocal exit: stop at the
     first square exceeding 50; the producer and mapper are pruned. *)
  let early =
    S.run (fun () ->
        Ops.with_exit (fun exit ->
            let nums = Ch.create () in
            let squares = Ch.create () in
            ignore
              (S.pcall
                 [
                   (fun () ->
                     let i = ref 0 in
                     while true do
                       incr i;
                       Ch.send nums !i
                     done);
                   (fun () -> Ch.iter (fun n -> Ch.send squares (n * n)) nums);
                   (fun () ->
                     Ch.iter (fun s -> if s > 50 then exit s) squares);
                 ]);
            -1))
  in
  Printf.printf "first square over 50 (infinite producer pruned): %d\n" early;

  (* A producer in an independent tree (future) feeding the main tree. *)
  let from_future =
    S.run (fun () ->
        let ch =
          Ch.of_producer (fun ~send ->
              List.iter
                (fun w ->
                  S.yield ();
                  send w)
                [ "process"; "continuations"; "and"; "concurrency" ])
        in
        let words = ref [] in
        Ch.iter (fun w -> words := w :: !words) ch;
        String.concat " " (List.rev !words))
  in
  Printf.printf "words streamed from a future: %s\n" from_future
