(* Quickstart: the process-continuation API in five minutes.

   Run with:  dune exec examples/quickstart.exe *)

open Pcont

(* 1. A process that returns normally: spawn is transparent. *)
let ex_normal () = Spawn.spawn (fun _c -> 2 * 21)

(* 2. Nonlocal exit: the paper's product example.  Multiplying a list of
   numbers, aborting the whole traversal as soon as a zero is seen. *)
let product ls =
  Exit.spawn_exit (fun e ->
      let rec go = function
        | [] -> 1
        | 0 :: _ -> e.Exit.exit 0
        | x :: rest -> x * go rest
      in
      go ls)

(* 3. Capture and compose: control captures the rest of the process, and
   resuming it later composes it onto the current continuation.  Here the
   capture point sits under "1 + []", so resuming with 2 and observing the
   result shows the continuation at work. *)
let ex_compose () =
  Spawn.spawn (fun c ->
      1 + Spawn.control c (fun k -> 10 * Spawn.resume k 2))
(* control's body runs OUTSIDE the root: resume k 2 makes the capture point
   return 2, so the process finishes with 1 + 2 = 3, and the body returns
   10 * 3 = 30 as the value of the whole spawn. *)

(* 4. Generators: streams from iteration, built on process continuations. *)
let squares = Generator.map (fun n -> n * n) (Generator.ints ())

(* 5. Engines: fuel-bounded execution (Dybvig & Hieb 1989). *)
let sum_engine n =
  Engine.make (fun ~tick ->
      let total = ref 0 in
      for i = 1 to n do
        tick ();
        total := !total + i
      done;
      !total)

let () =
  Printf.printf "normal return:        %d\n" (ex_normal ());
  Printf.printf "product [1;2;3;4]:    %d\n" (product [ 1; 2; 3; 4 ]);
  Printf.printf "product [1;2;0;4]:    %d\n" (product [ 1; 2; 0; 4 ]);
  Printf.printf "capture/compose:      %d\n" (ex_compose ());
  Printf.printf "first five squares:   %s\n"
    (String.concat ", " (List.map string_of_int (Generator.take 5 squares)));
  let e = sum_engine 1000 in
  let rec drive e slices =
    match Engine.run e ~fuel:300 with
    | Engine.Done (v, left) ->
        Printf.printf "engine finished:      %d (slices %d, fuel left %d)\n" v slices left
    | Engine.Expired e' -> drive e' (slices + 1)
  in
  drive e 1;
  (* Controller validity: once the process has returned, its controller is
     dead — exactly the paper's first Section 4 example. *)
  let escaped = ref None in
  ignore (Spawn.spawn (fun c -> escaped := Some c; 0));
  (match Spawn.control (Option.get !escaped) (fun _k -> 0) with
  | (_ : int) -> assert false
  | exception Spawn.Dead_controller ->
      print_endline "escaped controller:   Dead_controller (as the paper requires)")
