(* Section 8: combining dependent and independent concurrency as a FOREST
   of process trees.

   "Some programming languages also provide operations to create
   independent parallel processes... One possibility is to treat such
   combinations of dependent and independent processes as a forest of
   trees, in which control operations affect only the tree in which they
   occur."

   Both the native scheduler and the Scheme machine implement exactly
   this: [future] plants an independent tree; [touch] waits for its value;
   a controller can never capture across a tree boundary, and pruning the
   subtree that created a future does not disturb the future.

   Run with:  dune exec examples/futures_forest.exe *)

module S = Pcont_sched.Sched
module Ops = Pcont_sched.Ops
module Interp = Pcont_syntax.Interp

let native () =
  print_endline "== native scheduler: futures alongside pcall ==";
  let r =
    S.run (fun () ->
        (* Three independent background computations... *)
        let squares =
          List.init 3 (fun i ->
              S.future (fun () ->
                  S.yield ();
                  (i + 1) * (i + 1)))
        in
        (* ...while the main tree does tree-structured work... *)
        let a, b = S.pcall2 (fun () -> 10) (fun () -> 20) in
        (* ...and finally joins the forest. *)
        a + b + List.fold_left (fun acc f -> acc + S.touch f) 0 squares)
  in
  Printf.printf "pcall sum + future squares = %d\n" r;

  (* The forest rule: a controller from the main tree is dead inside a
     future's tree. *)
  let isolated =
    S.run (fun () ->
        S.spawn (fun c ->
            S.touch
              (S.future (fun () ->
                   try S.control c (fun _pk -> -1)
                   with S.Dead_controller -> 0))))
  in
  Printf.printf "controller crossing a tree boundary: %s\n"
    (if isolated = 0 then "Dead_controller (forest rule holds)" else "BUG");

  (* Pruning the subtree that created a future leaves the future alive. *)
  let pruned =
    S.run (fun () ->
        let cell = ref None in
        let v =
          Ops.with_exit (fun exit ->
              let vs =
                S.pcall
                  [
                    (fun () ->
                      cell := Some (S.future (fun () -> S.yield (); 30));
                      S.yield ();
                      exit 12;
                      0);
                    (fun () -> 999);
                  ]
              in
              List.fold_left ( + ) 0 vs)
        in
        v + S.touch (Option.get !cell))
  in
  Printf.printf "exit pruned the branch, future survived: %d\n" pruned

let interpreted () =
  print_endline "\n== Scheme machine: Multilisp-style future/touch ==";
  let t = Interp.create () in
  let mode = Interp.Concurrent Pcont_pstack.Concur.Round_robin in
  let show src =
    Printf.printf "%s\n  => %s\n" (String.trim src)
      (Pcont_pstack.Value.to_string (Interp.eval_value ~mode t src))
  in
  show "(define fibs (map1 (lambda (i) (future (let fib ([n i]) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))) (iota 10)))
(map1 touch fibs)";
  show "(touch 42)  ; touching a non-future returns it (Halstead's rule)";
  show "(future? (car fibs))"

let () =
  native ();
  interpreted ()
