(* Engines from process continuations (reference [6] of the paper).

   Three long-running computations are timeshared by running each as an
   engine with a fixed fuel quantum in round-robin: a cooperative scheduler
   in ~15 lines of user code, with the suspend/resume machinery provided
   entirely by process continuations.

   Run with:  dune exec examples/engines_timeshare.exe *)

open Pcont

(* A "job": sums the first [n] integers, ticking once per addition and
   logging its progress so the interleaving is visible. *)
let job name n =
  Engine.make (fun ~tick ->
      let total = ref 0 in
      for i = 1 to n do
        tick ();
        total := !total + i;
        if i mod 25 = 0 then Printf.printf "  [%s] reached %d\n" name i
      done;
      (name, !total))

let () =
  print_endline "round-robin timesharing of three engines (fuel 40 per turn):";
  let jobs = [ job "alpha" 60; job "beta" 120; job "gamma" 30 ] in
  let finished = Engine.round_robin jobs ~fuel:40 in
  print_endline "completion order:";
  List.iter (fun (name, total) -> Printf.printf "  %s: sum = %d\n" name total) finished;

  (* Engines nest: an engine can itself run engines.  The inner engine's
     controller captures only the inner extent — the precise delimiting
     that Section 4 argues call/cc cannot provide. *)
  let inner = job "inner" 20 in
  let outer =
    Engine.make (fun ~tick ->
        tick ();
        let (_, total), slices = Engine.run_to_completion ~fuel_per_slice:7 inner in
        tick ();
        (total, slices))
  in
  match Engine.run outer ~fuel:1000 with
  | Engine.Done ((total, slices), _) ->
      Printf.printf "nested engines: inner sum = %d in %d slices\n" total slices
  | Engine.Expired _ -> print_endline "nested engines: expired (unexpected)"
