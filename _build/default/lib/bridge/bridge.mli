(** Translations between the Section 6 term calculus and the process-stack
    IR, so the same program can run on every implementation.

    [of_term] is total: every machine term has an IR image (machine
    primitives are curried, IR primitives are n-ary, so primitive spines
    are reassociated and under-applications eta-expanded).

    [to_term] is partial: it covers the pure fragment plus [spawn] — which
    is exactly the Section 6 language — and reports the first unsupported
    construct otherwise (strings, vectors, [set!], [call/cc], [pcall],
    [future], variadic procedures).

    [program_to_term] additionally folds a whole top-level program into one
    closed term, turning each [(define x e)] into a [let] over the
    remaining forms, so the paper's multi-form Scheme examples run
    unchanged on the semantics machine. *)

module T := Pcont_machine.Term
module Ir := Pcont_pstack.Ir

val of_term : T.term -> Ir.t
(** Total translation machine → IR.
    @raise Invalid_argument on terms containing labels, which occur only
    during machine execution, never in source programs. *)

val to_term : Ir.t -> (T.term, string) result
(** Partial translation IR → machine. *)

val program_to_term : Pcont_syntax.Expand.top list -> (T.term, string) result
(** Whole-program translation; the last form must be an expression. *)

val scheme_to_term : string -> (T.term, string) result
(** Read, expand and translate a Scheme program for the machine. *)
