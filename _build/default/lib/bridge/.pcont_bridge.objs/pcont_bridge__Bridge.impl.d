lib/bridge/bridge.ml: Format Hashtbl List Pcont_machine Pcont_pstack Pcont_syntax Printf
