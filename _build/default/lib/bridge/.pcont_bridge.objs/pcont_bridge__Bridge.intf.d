lib/bridge/bridge.mli: Pcont_machine Pcont_pstack Pcont_syntax
