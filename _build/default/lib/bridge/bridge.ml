module T = Pcont_machine.Term
module Ir = Pcont_pstack.Ir
module Expand = Pcont_syntax.Expand

(* ------------------------------------------------------------------ *)
(* machine term -> IR (total)                                          *)
(* ------------------------------------------------------------------ *)

let prim_var (p : T.prim) = Ir.var (T.prim_name p)

(* Machine primitives are curried; IR primitives are n-ary.  Translate a
   primitive applied to [seen] (already translated) arguments into an
   exact-arity application, eta-expanding under-application. *)
let prim_app (p : T.prim) (seen : Ir.t list) : Ir.t =
  let arity = T.prim_arity p in
  let missing = arity - List.length seen in
  if missing = 0 then Ir.app (prim_var p) seen
  else begin
    assert (missing > 0);
    let extras = List.init missing (fun i -> Printf.sprintf "%%eta%d" i) in
    Ir.lam extras (Ir.app (prim_var p) (seen @ List.map Ir.var extras))
  end

let rec of_term (t : T.term) : Ir.t =
  match t with
  | T.Int n -> Ir.int n
  | T.Bool b -> Ir.bool b
  | T.Unit -> Ir.Const Ir.Cunit
  | T.Nil -> Ir.Const Ir.Cnil
  | T.Prim p -> prim_app p []
  | T.Papp (p, args) -> prim_app p (List.map of_term args)
  | T.Pair (a, d) -> Ir.app (Ir.var "cons") [ of_term a; of_term d ]
  | T.Var x -> Ir.var x
  | T.Lam (x, body) -> Ir.lam [ x ] (of_term body)
  | T.Fix (f, x, body) -> Ir.Letrec ([ (f, Ir.lam [ x ] (of_term body)) ], Ir.var f)
  | T.App _ -> of_app t
  | T.If (c, a, b) -> Ir.if_ (of_term c) (of_term a) (of_term b)
  | T.Spawn e -> Ir.app (Ir.var "spawn") [ of_term e ]
  | T.Label _ | T.Control _ ->
      invalid_arg "Bridge.of_term: labeled term (an execution intermediate)"

(* Flatten an application spine; a primitive head absorbs exactly its
   arity, anything beyond is applied one argument at a time (and fails on
   both machines alike). *)
and of_app t =
  let rec spine t args =
    match t with T.App (f, a) -> spine f (a :: args) | head -> (head, args)
  in
  let head, args = spine t [] in
  let targs = List.map of_term args in
  match head with
  | T.Prim p ->
      let arity = T.prim_arity p in
      if List.length targs <= arity then prim_app p targs
      else
        let rec take n = function
          | x :: rest when n > 0 ->
              let first, leftover = take (n - 1) rest in
              (x :: first, leftover)
          | rest -> ([], rest)
        in
        let first, leftover = take arity targs in
        List.fold_left (fun acc a -> Ir.app acc [ a ]) (prim_app p first) leftover
  | _ -> List.fold_left (fun acc a -> Ir.app acc [ a ]) (of_term head) targs

(* ------------------------------------------------------------------ *)
(* IR -> machine term (partial)                                        *)
(* ------------------------------------------------------------------ *)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

let prim_of_name = function
  | "+" -> Some T.Add
  | "-" -> Some T.Sub
  | "*" -> Some T.Mul
  | "quotient" -> Some T.Div
  | "=" -> Some T.Eq
  | "<" -> Some T.Lt
  | "<=" -> Some T.Leq
  | "not" -> Some T.Not
  | "cons" -> Some T.Cons
  | "car" -> Some T.Car
  | "cdr" -> Some T.Cdr
  | "null?" -> Some T.Is_null
  | "pair?" -> Some T.Is_pair
  | "zero?" -> Some T.Is_zero
  | _ -> None

let rec quoted_term : Ir.quoted -> T.term = function
  | Ir.Qint n -> T.Int n
  | Ir.Qbool b -> T.Bool b
  | Ir.Qnil -> T.Nil
  | Ir.Qlist qs -> List.fold_right (fun q acc -> T.Pair (quoted_term q, acc)) qs T.Nil
  | Ir.Qdot (qs, tail) ->
      List.fold_right (fun q acc -> T.Pair (quoted_term q, acc)) qs (quoted_term tail)
  | Ir.Qstr _ -> unsupported "quoted string"
  | Ir.Qsym _ -> unsupported "quoted symbol"
  | Ir.Qchar _ -> unsupported "quoted character"

(* Zero-argument procedures become unit-taking; applications follow. *)
let rec term_of (ir : Ir.t) : T.term =
  match ir with
  | Ir.Const (Ir.Cint n) -> T.Int n
  | Ir.Const (Ir.Cbool b) -> T.Bool b
  | Ir.Const Ir.Cnil -> T.Nil
  | Ir.Const Ir.Cunit -> T.Unit
  | Ir.Const (Ir.Cstr _) -> unsupported "string literal"
  | Ir.Const (Ir.Csym _) -> unsupported "symbol literal"
  | Ir.Const (Ir.Cchar _) -> unsupported "character literal"
  | Ir.Quoted q -> quoted_term q
  | Ir.Var x -> (
      match prim_of_name x with Some p -> T.Prim p | None -> T.Var x)
  | Ir.Lam { rest = Some _; _ } -> unsupported "variadic procedure"
  | Ir.Lam { params = []; rest = None; body } -> T.Lam ("_", term_of body)
  | Ir.Lam { params; rest = None; body } ->
      List.fold_right (fun x acc -> T.Lam (x, acc)) params (term_of body)
  | Ir.App (f, []) -> T.App (term_of f, T.Unit)
  | Ir.App (Ir.Var "spawn", [ e ]) -> T.Spawn (term_of e)
  | Ir.App (f, args) ->
      List.fold_left (fun acc a -> T.App (acc, term_of a)) (term_of f) args
  | Ir.If (c, a, b) -> T.If (term_of c, term_of a, term_of b)
  | Ir.Seq [] -> T.Unit
  | Ir.Seq [ e ] -> term_of e
  | Ir.Seq (e :: rest) -> T.seq (term_of e) (term_of (Ir.Seq rest))
  | Ir.Let (bindings, body) ->
      (* parallel let = application of an abstraction, as in the paper §2 *)
      let names = List.map fst bindings in
      let inits = List.map (fun (_, e) -> term_of e) bindings in
      let lam = List.fold_right (fun x acc -> T.Lam (x, acc)) names (term_of body) in
      List.fold_left (fun acc a -> T.App (acc, a)) lam inits
  | Ir.Letrec ([ (f, Ir.Lam { params = [ x ]; rest = None; body = fb }) ], body) ->
      T.let_ f (T.Fix (f, x, term_of fb)) (term_of body)
  | Ir.Letrec ([ (f, Ir.Lam { params = x :: more; rest = None; body = fb }) ], body)
    ->
      (* curry extra parameters under the fixpoint *)
      let inner = List.fold_right (fun y acc -> T.Lam (y, acc)) more (term_of fb) in
      T.let_ f (T.Fix (f, x, inner)) (term_of body)
  | Ir.Letrec _ -> unsupported "letrec (only a single recursive procedure is supported)"
  | Ir.Set _ -> unsupported "set!"
  | Ir.Future _ -> unsupported "future"
  | Ir.Pcall _ -> unsupported "pcall"

let to_term ir = match term_of ir with t -> Ok t | exception Unsupported m -> Error m

let program_to_term tops =
  let rec fold = function
    | [] -> Error "program has no final expression"
    | [ Expand.Expr ir ] -> to_term ir
    | Expand.Expr ir :: rest -> (
        (* an intermediate expression: evaluate for effect and discard *)
        match (to_term ir, fold rest) with
        | Ok t, Ok body -> Ok (T.seq t body)
        | Error m, _ | _, Error m -> Error m)
    | Expand.Define (x, ir) :: rest -> (
        match (to_term ir, fold rest) with
        | Ok t, Ok body ->
            (* A define whose right-hand side mentions itself is recursive:
               tie the knot with the machine's fixpoint value. *)
            if Hashtbl.mem (T.free_vars t) x then
              match t with
              | T.Lam (y, b) -> Ok (T.let_ x (T.Fix (x, y, b)) body)
              | _ -> Error ("recursive define of a non-procedure: " ^ x)
            else Ok (T.let_ x t body)
        | Error m, _ | _, Error m -> Error m)
    | Expand.Defsyntax _ :: rest -> fold rest
  in
  fold tops

let scheme_to_term src =
  match Expand.parse_program src with
  | Error m -> Error ("read/expand error: " ^ m)
  | Ok tops -> program_to_term tops
