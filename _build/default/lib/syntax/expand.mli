(** Expansion of surface Scheme into the core IR.

    Handled forms: [quote], [lambda] (fixed, variadic and rest parameters),
    [if], [begin], [let] (including named [let]), [let*], [letrec],
    [letrec*], [set!], [cond], [case], [when], [unless], [and], [or],
    [pcall], and [parallel-or] (expanded to [first-true] exactly as the
    paper's [extend-syntax] definition does).  Bodies may begin with
    internal [define]s, which expand to [letrec] — the paper's
    [parallel-search] relies on this.

    Top-level [(extend-syntax (name kw ...) [pattern template] ...)] forms
    define pattern-matching macros (see {!Macro}); user macros are
    consulted {e before} the built-in forms, so the paper's Section 2
    definition of [let] can actually replace [let].

    Everything else is an application. *)

type top =
  | Define of string * Pcont_pstack.Ir.t  (** top-level [(define x e)] *)
  | Defsyntax of string  (** top-level [extend-syntax]; carries the name *)
  | Expr of Pcont_pstack.Ir.t

val expand_expr : ?macros:Macro.table -> Reader.datum -> (Pcont_pstack.Ir.t, string) result

val expand_top : ?macros:Macro.table -> Reader.datum -> (top, string) result
(** Like {!expand_expr} but also accepts top-level [define] forms
    (including the [(define (f . args) body ...)] shorthand) and
    [extend-syntax] forms, which are registered into [macros]. *)

val expand_program : ?macros:Macro.table -> Reader.datum list -> (top list, string) result
(** Expands a whole program with a shared macro table (a fresh one if none
    is supplied), so macros defined early are available to later forms. *)

val parse_expr : ?macros:Macro.table -> string -> (Pcont_pstack.Ir.t, string) result
(** Read and expand a single expression. *)

val parse_program : ?macros:Macro.table -> string -> (top list, string) result
(** Read and expand a whole program. *)
