let source =
  {prelude|
;; ------------------------------------------------------------------
;; List utilities
;; ------------------------------------------------------------------

(define (map1 f ls)
  (if (null? ls) '() (cons (f (car ls)) (map1 f (cdr ls)))))

(define (map f . lists)
  (define (any-null? ls)
    (if (null? ls) #f (if (null? (car ls)) #t (any-null? (cdr ls)))))
  (define (heads ls) (map1 car ls))
  (define (tails ls) (map1 cdr ls))
  (define (go lists)
    (if (any-null? lists)
        '()
        (cons (apply f (heads lists)) (go (tails lists)))))
  (go lists))

(define (for-each f ls)
  (unless (null? ls)
    (f (car ls))
    (for-each f (cdr ls))))

(define (filter pred ls)
  (cond
    [(null? ls) '()]
    [(pred (car ls)) (cons (car ls) (filter pred (cdr ls)))]
    [else (filter pred (cdr ls))]))

(define (fold-left f acc ls)
  (if (null? ls) acc (fold-left f (f acc (car ls)) (cdr ls))))

(define (fold-right f acc ls)
  (if (null? ls) acc (f (car ls) (fold-right f acc (cdr ls)))))

(define (iota n)
  (define (go i) (if (= i n) '() (cons i (go (+ i 1)))))
  (go 0))

(define (list-tail ls k)
  (if (zero? k) ls (list-tail (cdr ls) (- k 1))))

(define (last ls)
  (if (null? (cdr ls)) (car ls) (last (cdr ls))))

(define (take ls n)
  (if (or (zero? n) (null? ls)) '() (cons (car ls) (take (cdr ls) (- n 1)))))

(define (drop ls n)
  (if (or (zero? n) (null? ls)) ls (drop (cdr ls) (- n 1))))

(define (any? pred ls)
  (cond [(null? ls) #f] [(pred (car ls)) #t] [else (any? pred (cdr ls))]))

(define (every? pred ls)
  (cond [(null? ls) #t] [(pred (car ls)) (every? pred (cdr ls))] [else #f]))

(define (remove pred ls)
  (filter (lambda (x) (not (pred x))) ls))

;; stable merge sort
(define (merge less? a b)
  (cond [(null? a) b]
        [(null? b) a]
        [(less? (car b) (car a)) (cons (car b) (merge less? a (cdr b)))]
        [else (cons (car a) (merge less? (cdr a) b))]))

(define (sort less? ls)
  (let ([n (length ls)])
    (if (< n 2)
        ls
        (let ([half (quotient n 2)])
          (merge less? (sort less? (take ls half)) (sort less? (drop ls half)))))))

;; ------------------------------------------------------------------
;; Section 2 of the paper: make-cell
;; ------------------------------------------------------------------

(define make-cell
  (lambda (x)
    (cons (lambda () x)
          (lambda (v) (set! x v)))))

(define (cell-ref cell) ((car cell)))
(define (cell-set! cell v) ((cdr cell) v))

;; ------------------------------------------------------------------
;; Section 5 of the paper: spawn/exit and first-true
;; ------------------------------------------------------------------

;; spawn/exit gives its argument a restricted controller usable only to
;; abort the spawned process and return a value: the real controller is
;; invoked with a procedure that throws away the process continuation.
(define spawn/exit
  (lambda (proc)
    (spawn
      (lambda (c)
        (proc (lambda (exit-value)
                (c (lambda (k) exit-value))))))))

;; ------------------------------------------------------------------
;; Coroutines (paper reference [11]) from spawn alone.
;;
;; (make-coroutine body) with body : (lambda (yield input) ...) returns a
;; resume procedure; (resume v) evaluates to (yield . x) when the body
;; yields x, or (return . r) when it returns r.  The controller captures
;; exactly the coroutine's own extent — the delimiting call/cc cannot do.
;; ------------------------------------------------------------------

(define (make-coroutine body)
  (let ([state (make-cell (cons 'unstarted body))])
    (lambda (input)
      (let ([st (cell-ref state)])
        (cond
          [(eq? st 'done) (error "coroutine finished")]
          [(eq? (car st) 'unstarted)
           (let ([b (cdr st)])
             (spawn
               (lambda (c)
                 (let ([yield
                        (lambda (v)
                          (c (lambda (k)
                               (cell-set! state (cons 'suspended k))
                               (cons 'yield v))))])
                   (let ([r (b yield input)])
                     (cell-set! state 'done)
                     (cons 'return r))))))]
          [else
           (let ([k (cdr st)])
             (cell-set! state 'running)
             (k input))])))))

;; ------------------------------------------------------------------
;; Engines (paper reference [6]) from spawn alone.
;;
;; (make-engine body) with body : (lambda (tick) ...) returns an engine;
;; (engine fuel) evaluates to (done value fuel-left) or (expired engine').
;; Fuel is consumed by explicit (tick) calls.
;; ------------------------------------------------------------------

(define (make-engine body)
  (define (engine-of state fuel-cell)
    (lambda (fuel)
      (cell-set! fuel-cell fuel)
      (let ([st (cell-ref state)])
        (cond
          [(eq? st 'consumed) (error "engine already run")]
          [(eq? (car st) 'unstarted)
           (let ([b (cdr st)])
             (cell-set! state 'consumed)
             (spawn
               (lambda (c)
                 (let ([tick
                        (lambda ()
                          (if (zero? (cell-ref fuel-cell))
                              (c (lambda (k)
                                   (let ([st2 (make-cell (cons 'suspended k))])
                                     (list 'expired (engine-of st2 fuel-cell)))))
                              (cell-set! fuel-cell (- (cell-ref fuel-cell) 1))))])
                   (let ([v (b tick)])
                     (list 'done v (cell-ref fuel-cell)))))))]
          [else
           (let ([k (cdr st)])
             (cell-set! state 'consumed)
             (k #f))]))))
  (engine-of (make-cell (cons 'unstarted body)) (make-cell 0)))

;; first-true applies two procedures concurrently and returns the value of
;; the first to return a true value, or #f if neither does.  If either
;; branch produces a true value the controller aborts the whole process;
;; otherwise the operator branch returns an identity procedure and the
;; argument branch returns #f, so the pcall application yields #f.
(define first-true
  (lambda (proc1 proc2)
    (spawn
      (lambda (c)
        (pcall
          (let ([v (proc1)])
            (if v (c (lambda (k) v)) (lambda (x) x)))
          (let ([v (proc2)])
            (if v (c (lambda (k) v)) #f)))))))
|prelude}

let forms () = Expand.parse_program source
