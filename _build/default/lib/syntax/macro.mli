(** [extend-syntax]: pattern-matching macros (non-hygienic).

    The paper defines [let] and [parallel-or] with Chez-style
    [extend-syntax]:

    {v
(extend-syntax (let)
  [(let ([x v] ...) e1 e2 ...)
   ((lambda (x ...) e1 e2 ...) v ...)])
    v}

    A definition names the macro keyword (plus optional auxiliary literal
    keywords) and gives rewrite rules: a use is matched against each rule's
    pattern in turn and rewritten by the matching rule's template.

    Pattern language: a symbol in the keyword list matches only itself;
    [_] matches anything without binding; any other symbol is a pattern
    variable; a subpattern followed by [...] matches any number of
    repetitions (ellipses nest; at most one ellipsis per list level);
    literals match themselves; dotted patterns match dotted data.
    Templates substitute pattern variables; [t ...] in a template splices
    the repetitions of the variables occurring in [t]. *)

type table

val create : unit -> table

val define : table -> Reader.datum -> (string, string) result
(** [define tbl d] processes an [(extend-syntax (name kw ...) rule ...)]
    form, registering (or replacing) the macro; returns its name. *)

val is_defined : table -> string -> bool

val try_expand : table -> Reader.datum -> (Reader.datum option, string) result
(** [try_expand tbl d] rewrites [d] once if it is a use of a defined macro
    ([Some rewritten]); [None] if [d]'s head is not a defined macro.
    Errors when a use matches no rule or a template is ill-formed. *)

val names : table -> string list
