(** S-expression reader.

    Supports the lexical subset the paper's programs use: integers,
    booleans ([#t]/[#f]), characters ([#\c], [#\space], [#\newline]),
    strings with the usual escapes, symbols, proper and dotted lists with
    [()] or [\[\]] brackets, [']-quotation (read as [(quote x)]), and [;]
    line comments. *)

type datum =
  | Dint of int
  | Dbool of bool
  | Dstr of string
  | Dsym of string
  | Dchar of char
  | Dlist of datum list
  | Ddot of datum list * datum  (** improper list: at least one element *)

val pp : Format.formatter -> datum -> unit

val to_string : datum -> string

val parse : string -> (datum, string) result
(** Parse exactly one datum (trailing whitespace/comments allowed). *)

val parse_all : string -> (datum list, string) result
(** Parse a whole program: a sequence of data. *)
