(** The Scheme-level standard prelude.

    Library procedures written in the object language itself, loaded into a
    fresh interpreter: list utilities ([map], [filter], [fold-left],
    [fold-right], [for-each], [iota], …), the paper's Section 2 [make-cell],
    and — directly transcribed from Section 5 of the paper — [spawn/exit]
    and [first-true], on which [parallel-or] expands. *)

val source : string
(** The prelude program text. *)

val forms : unit -> (Expand.top list, string) result
(** The prelude parsed and expanded. *)
