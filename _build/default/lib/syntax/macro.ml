open Reader

type rule = { pattern : datum; template : datum }

type def = { keywords : string list; rules : rule list }

type table = (string, def) Hashtbl.t

let create () : table = Hashtbl.create 16

let is_defined tbl name = Hashtbl.mem tbl name

let names tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Pattern matching                                                    *)
(* ------------------------------------------------------------------ *)

(* A variable binds either a single datum or, under an ellipsis, the list
   of its bindings across the repetitions (nesting once per ellipsis). *)
type binding = Bone of datum | Bmany of binding list

type env = (string * binding) list

let is_ellipsis = function Dsym "..." -> true | _ -> false

(* Variables of a pattern (w.r.t. the keyword list). *)
let rec pattern_vars keywords acc = function
  | Dsym "..." | Dsym "_" -> acc
  | Dsym s -> if List.mem s keywords then acc else s :: acc
  | Dlist ds -> List.fold_left (pattern_vars keywords) acc ds
  | Ddot (ds, tail) ->
      pattern_vars keywords (List.fold_left (pattern_vars keywords) acc ds) tail
  | Dint _ | Dbool _ | Dstr _ | Dchar _ -> acc

let rec match_pat keywords pat d (env : env) : env option =
  match (pat, d) with
  | Dsym "_", _ -> Some env
  | Dsym s, _ when List.mem s keywords ->
      if d = Dsym s then Some env else None
  | Dsym s, _ -> Some ((s, Bone d) :: env)
  | (Dint _ | Dbool _ | Dstr _ | Dchar _), _ -> if pat = d then Some env else None
  | Dlist ps, Dlist ds -> match_seq keywords ps ds env
  | Dlist _, _ -> None
  | Ddot (ps, ptail), _ -> (
      (* peel the fixed prefix, then match the tail pattern *)
      match (ps, d) with
      | [], _ -> match_pat keywords ptail d env
      | p :: prest, Dlist (x :: xs) -> (
          match match_pat keywords p x env with
          | Some env -> match_pat keywords (Ddot (prest, ptail)) (Dlist xs) env
          | None -> None)
      | p :: prest, Ddot (x :: xs, dtail) -> (
          match match_pat keywords p x env with
          | Some env ->
              let rest = match xs with [] -> dtail | _ -> Ddot (xs, dtail) in
              match_pat keywords (Ddot (prest, ptail)) rest env
          | None -> None)
      | _ -> None)

(* Match a list of patterns (with at most one ellipsis at this level)
   against a list of data. *)
and match_seq keywords ps ds env =
  let rec split_at_ellipsis pre = function
    | p :: e :: post when is_ellipsis e -> Some (List.rev pre, p, post)
    | p :: rest -> split_at_ellipsis (p :: pre) rest
    | [] -> None
  in
  match split_at_ellipsis [] ps with
  | None ->
      (* plain positional match *)
      let rec go ps ds env =
        match (ps, ds) with
        | [], [] -> Some env
        | p :: ps, d :: ds -> (
            match match_pat keywords p d env with
            | Some env -> go ps ds env
            | None -> None)
        | _ -> None
      in
      go ps ds env
  | Some (pre, rep, post) ->
      let npre = List.length pre and npost = List.length post in
      if List.length ds < npre + npost then None
      else begin
        let rec take n xs acc =
          if n = 0 then (List.rev acc, xs)
          else match xs with x :: rest -> take (n - 1) rest (x :: acc) | [] -> assert false
        in
        let ds_pre, rest = take npre ds [] in
        let nmid = List.length rest - npost in
        let ds_mid, ds_post = take nmid rest [] in
        match match_seq keywords pre ds_pre env with
        | None -> None
        | Some env -> (
            (* Each repetition matches in a fresh sub-environment; the
               repeated variables then bind Bmany of their sequences. *)
            let vars = List.sort_uniq compare (pattern_vars keywords [] rep) in
            let rec reps acc = function
              | [] -> Some (List.rev acc)
              | d :: ds -> (
                  match match_pat keywords rep d [] with
                  | Some sub -> reps (sub :: acc) ds
                  | None -> None)
            in
            match reps [] ds_mid with
            | None -> None
            | Some subs ->
                let env =
                  List.fold_left
                    (fun env v ->
                      let per_rep =
                        List.map
                          (fun sub ->
                            match List.assoc_opt v sub with
                            | Some b -> b
                            | None -> Bone (Dsym v) (* unreachable: v ∈ vars *))
                          subs
                      in
                      (v, Bmany per_rep) :: env)
                    env vars
                in
                match_seq keywords post ds_post env)
      end

(* ------------------------------------------------------------------ *)
(* Template expansion                                                  *)
(* ------------------------------------------------------------------ *)

exception Template_error of string

let tfail fmt = Format.kasprintf (fun m -> raise (Template_error m)) fmt

(* Template variables that are bound in the environment. *)
let rec template_vars env acc = function
  | Dsym s -> if List.mem_assoc s env then s :: acc else acc
  | Dlist ds -> List.fold_left (template_vars env) acc ds
  | Ddot (ds, tail) -> template_vars env (List.fold_left (template_vars env) acc ds) tail
  | Dint _ | Dbool _ | Dstr _ | Dchar _ -> acc

let rec subst env = function
  | Dsym s as d -> (
      match List.assoc_opt s env with
      | Some (Bone d') -> d'
      | Some (Bmany _) -> tfail "pattern variable %s used at the wrong ellipsis depth" s
      | None -> d)
  | (Dint _ | Dbool _ | Dstr _ | Dchar _) as d -> d
  | Dlist ts -> Dlist (subst_seq env ts)
  | Ddot (ts, tail) -> (
      (* Normalize: a dotted template whose tail substitutes to a list is a
         proper list, e.g. the template (f . args) with args = (1 2 3). *)
      let front = subst_seq env ts in
      match (front, subst env tail) with
      | [], tail -> tail
      | front, Dlist ds -> Dlist (front @ ds)
      | front, Ddot (ds, t) -> Ddot (front @ ds, t)
      | front, tail -> Ddot (front, tail))

and subst_seq env = function
  | [] -> []
  | t :: e :: rest when is_ellipsis e ->
      let vars =
        List.sort_uniq compare (template_vars env [] t)
        |> List.filter (fun v ->
               match List.assoc_opt v env with Some (Bmany _) -> true | _ -> false)
      in
      if vars = [] then tfail "ellipsis template with no repeated variables";
      let lengths =
        List.map
          (fun v ->
            match List.assoc v env with Bmany bs -> List.length bs | Bone _ -> assert false)
          vars
      in
      let n = List.hd lengths in
      if not (List.for_all (( = ) n) lengths) then
        tfail "ellipsis variables repeat a different number of times";
      let expansions =
        List.init n (fun i ->
            let env_i =
              List.map
                (fun (v, b) ->
                  match b with
                  | Bmany bs when List.mem v vars -> (v, List.nth bs i)
                  | _ -> (v, b))
                env
            in
            subst env_i t)
      in
      expansions @ subst_seq env rest
  | t :: rest -> subst env t :: subst_seq env rest

(* ------------------------------------------------------------------ *)
(* Definition and use                                                  *)
(* ------------------------------------------------------------------ *)

let parse_rule = function
  | Dlist [ pattern; template ] -> Ok { pattern; template }
  | d -> Error ("extend-syntax: bad rule " ^ Reader.to_string d)

let define tbl = function
  | Dlist (Dsym "extend-syntax" :: Dlist (Dsym name :: kws) :: rule_data)
    when rule_data <> [] -> (
      let keywords =
        List.fold_left
          (fun acc k -> match (acc, k) with
            | Ok ks, Dsym s -> Ok (s :: ks)
            | Ok _, d -> Error ("extend-syntax: bad keyword " ^ Reader.to_string d)
            | (Error _ as e), _ -> e)
          (Ok [ name ]) kws
      in
      match keywords with
      | Error e -> Error e
      | Ok keywords -> (
          let rec rules acc = function
            | [] -> Ok (List.rev acc)
            | d :: rest -> (
                match parse_rule d with
                | Ok r -> rules (r :: acc) rest
                | Error e -> Error e)
          in
          match rules [] rule_data with
          | Error e -> Error e
          | Ok rules ->
              Hashtbl.replace tbl name { keywords; rules };
              Ok name))
  | d -> Error ("malformed extend-syntax: " ^ Reader.to_string d)

let try_expand tbl d =
  match d with
  | Dlist (Dsym name :: _) -> (
      match Hashtbl.find_opt tbl name with
      | None -> Ok None
      | Some { keywords; rules } ->
          let rec go = function
            | [] ->
                Error
                  (Printf.sprintf "%s: no extend-syntax rule matches %s" name
                     (Reader.to_string d))
            | { pattern; template } :: rest -> (
                match match_pat keywords pattern d [] with
                | Some env -> (
                    match subst env template with
                    | t -> Ok (Some t)
                    | exception Template_error m -> Error (name ^ ": " ^ m))
                | None -> go rest)
          in
          go rules)
  | _ -> Ok None
