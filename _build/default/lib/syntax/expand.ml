module Ir = Pcont_pstack.Ir
open Reader

type top = Define of string * Ir.t | Defsyntax of string | Expr of Ir.t

exception Expand_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Expand_error msg)) fmt

let gensym_counter = ref 0

let gensym base =
  incr gensym_counter;
  Printf.sprintf "%s~%d" base !gensym_counter

(* Bound on user-macro rewrites along one expression's expansion, so a
   self-reproducing extend-syntax rule errors instead of looping. *)
let max_macro_depth = 500

let rec quoted_of_datum : datum -> Ir.quoted = function
  | Dint n -> Ir.Qint n
  | Dbool b -> Ir.Qbool b
  | Dstr s -> Ir.Qstr s
  | Dsym s -> Ir.Qsym s
  | Dchar c -> Ir.Qchar c
  | Dlist [] -> Ir.Qnil
  | Dlist ds -> Ir.Qlist (List.map quoted_of_datum ds)
  | Ddot (ds, tail) -> Ir.Qdot (List.map quoted_of_datum ds, quoted_of_datum tail)

let sym_of = function
  | Dsym s -> s
  | d -> fail "expected an identifier, got %s" (Reader.to_string d)

let params_of = function
  | Dsym r -> ([], Some r)
  | Dlist ds -> (List.map sym_of ds, None)
  | Ddot (ds, Dsym r) -> (List.map sym_of ds, Some r)
  | d -> fail "bad parameter list: %s" (Reader.to_string d)

let binding_of = function
  | Dlist [ Dsym x; init ] -> (x, init)
  | d -> fail "bad binding: %s" (Reader.to_string d)

(* Recognize a define form and return (name, rhs-as-datum). *)
let as_define = function
  | Dlist (Dsym "define" :: Dsym x :: rhs) -> (
      match rhs with
      | [ e ] -> Some (x, e)
      | [] -> Some (x, Dlist [ Dsym "void" ])
      | _ -> fail "define: too many expressions")
  | Dlist (Dsym "define" :: Dlist (Dsym f :: params) :: body) ->
      Some (f, Dlist (Dsym "lambda" :: Dlist params :: body))
  | Dlist (Dsym "define" :: Ddot (Dsym f :: params, rest) :: body) ->
      Some (f, Dlist (Dsym "lambda" :: Ddot (params, rest) :: body))
  | Dlist (Dsym "define" :: _) -> fail "malformed define"
  | _ -> None

(* The expander proper, closed over a macro table.  User macros are
   consulted first, so extend-syntax can redefine the built-in forms —
   exactly what the paper's Section 2 definition of let does. *)
let make_expander (mt : Macro.table) =
  let rec expr depth (d : datum) : Ir.t =
    match d with
    | Dint n -> Ir.int n
    | Dbool b -> Ir.bool b
    | Dstr s -> Ir.str s
    | Dchar c -> Ir.Const (Ir.Cchar c)
    | Dsym x -> Ir.var x
    | Ddot _ -> fail "unexpected dotted list in expression position"
    | Dlist [] -> fail "empty application"
    | Dlist (head :: rest) -> (
        match Macro.try_expand mt d with
        | Error msg -> fail "%s" msg
        | Ok (Some d') ->
            if depth >= max_macro_depth then
              fail "macro expansion exceeded depth %d (loop?)" max_macro_depth
            else expr (depth + 1) d'
        | Ok None -> (
            match head with
            | Dsym "quote" -> (
                match rest with
                | [ q ] -> Ir.Quoted (quoted_of_datum q)
                | _ -> fail "quote: expects exactly one datum")
            | Dsym "lambda" -> (
                match rest with
                | params :: body when body <> [] ->
                    let params, rest_param = params_of params in
                    Ir.Lam { params; rest = rest_param; body = body_of depth body }
                | _ -> fail "lambda: expects a parameter list and a body")
            | Dsym "if" -> (
                match rest with
                | [ c; t ] -> Ir.if_ (expr depth c) (expr depth t) (Ir.Const Ir.Cunit)
                | [ c; t; e ] -> Ir.if_ (expr depth c) (expr depth t) (expr depth e)
                | _ -> fail "if: expects two or three subexpressions")
            | Dsym "begin" -> Ir.seq (List.map (expr depth) rest)
            | Dsym "let" -> expand_let depth rest
            | Dsym "let*" -> expand_let_star depth rest
            | Dsym ("letrec" | "letrec*") -> (
                match rest with
                | bindings :: body when body <> [] ->
                    Ir.Letrec (bindings_of depth bindings, body_of depth body)
                | _ -> fail "letrec: expects bindings and a body")
            | Dsym "set!" -> (
                match rest with
                | [ Dsym x; e ] -> Ir.Set (x, expr depth e)
                | _ -> fail "set!: expects an identifier and an expression")
            | Dsym "cond" -> expand_cond depth rest
            | Dsym "case" -> expand_case depth rest
            | Dsym "when" -> (
                match rest with
                | test :: body when body <> [] ->
                    Ir.if_ (expr depth test)
                      (Ir.seq (List.map (expr depth) body))
                      (Ir.Const Ir.Cunit)
                | _ -> fail "when: expects a test and a body")
            | Dsym "unless" -> (
                match rest with
                | test :: body when body <> [] ->
                    Ir.if_ (expr depth test) (Ir.Const Ir.Cunit)
                      (Ir.seq (List.map (expr depth) body))
                | _ -> fail "unless: expects a test and a body")
            | Dsym "and" -> expand_and depth rest
            | Dsym "or" -> expand_or depth rest
            | Dsym "future" -> (
                match rest with
                | [ e ] -> Ir.Future (expr depth e)
                | _ -> fail "future: expects exactly one expression")
            | Dsym "pcall" ->
                if rest = [] then fail "pcall: expects at least an operator expression"
                else Ir.Pcall (List.map (expr depth) rest)
            | Dsym "parallel-or" -> expand_parallel_or depth rest
            | Dsym "extend-syntax" ->
                fail "extend-syntax: only allowed at top level"
            | Dsym "define" ->
                fail "define: only allowed at top level or at the start of a body"
            | _ -> Ir.app (expr depth head) (List.map (expr depth) rest)))

  and bindings_of depth = function
    | Dlist bs ->
        List.map (fun b -> let x, init = binding_of b in (x, expr depth init)) bs
    | d -> fail "bad binding list: %s" (Reader.to_string d)

  and expand_let depth = function
    (* named let: (let loop ([x v] ...) body ...) *)
    | Dsym name :: bindings :: body when body <> [] ->
        let bs =
          match bindings with
          | Dlist bs -> List.map binding_of bs
          | d -> fail "bad binding list: %s" (Reader.to_string d)
        in
        let params = List.map fst bs in
        let inits = List.map (fun (_, i) -> expr depth i) bs in
        Ir.Letrec
          ( [ (name, Ir.Lam { params; rest = None; body = body_of depth body }) ],
            Ir.app (Ir.var name) inits )
    | bindings :: body when body <> [] ->
        Ir.Let (bindings_of depth bindings, body_of depth body)
    | _ -> fail "let: expects bindings and a body"

  and expand_let_star depth = function
    | Dlist [] :: body when body <> [] -> body_of depth body
    | Dlist (b :: bs) :: body when body <> [] ->
        let x, init = binding_of b in
        Ir.Let ([ (x, expr depth init) ], expand_let_star depth (Dlist bs :: body))
    | _ -> fail "let*: expects bindings and a body"

  and expand_cond depth clauses =
    match clauses with
    | [] -> Ir.Const Ir.Cunit
    | Dlist (Dsym "else" :: body) :: rest ->
        if rest <> [] then fail "cond: else clause must be last"
        else if body = [] then fail "cond: else clause needs a body"
        else Ir.seq (List.map (expr depth) body)
    | Dlist [ test ] :: rest ->
        (* test-only clause: its value is the result when true *)
        let t = gensym "t" in
        Ir.Let
          ([ (t, expr depth test) ], Ir.if_ (Ir.var t) (Ir.var t) (expand_cond depth rest))
    | Dlist (test :: body) :: rest ->
        Ir.if_ (expr depth test)
          (Ir.seq (List.map (expr depth) body))
          (expand_cond depth rest)
    | d :: _ -> fail "cond: bad clause %s" (Reader.to_string d)

  and expand_case depth = function
    | scrutinee :: clauses ->
        let v = gensym "case" in
        let rec go = function
          | [] -> Ir.Const Ir.Cunit
          | Dlist (Dsym "else" :: body) :: rest ->
              if rest <> [] then fail "case: else clause must be last"
              else Ir.seq (List.map (expr depth) body)
          | Dlist (Dlist keys :: body) :: rest ->
              let test =
                expand_or depth
                  (List.map
                     (fun k -> Dlist [ Dsym "eqv?"; Dsym v; Dlist [ Dsym "quote"; k ] ])
                     keys)
              in
              Ir.if_ test (Ir.seq (List.map (expr depth) body)) (go rest)
          | d :: _ -> fail "case: bad clause %s" (Reader.to_string d)
        in
        Ir.Let ([ (v, expr depth scrutinee) ], go clauses)
    | [] -> fail "case: expects a scrutinee"

  and expand_and depth = function
    | [] -> Ir.bool true
    | [ e ] -> expr depth e
    | e :: rest -> Ir.if_ (expr depth e) (expand_and depth rest) (Ir.bool false)

  and expand_or depth = function
    | [] -> Ir.bool false
    | [ e ] -> expr depth e
    | e :: rest ->
        let t = gensym "t" in
        Ir.Let ([ (t, expr depth e) ], Ir.if_ (Ir.var t) (Ir.var t) (expand_or depth rest))

  (* (parallel-or e1 e2) expands to (first-true (lambda () e1) (lambda () e2)),
     following the paper's extend-syntax definition; n-ary by right
     association. *)
  and expand_parallel_or depth = function
    | [] -> Ir.bool false
    | [ e ] -> expr depth e
    | e :: rest ->
        let thunk body = Ir.Lam { params = []; rest = None; body } in
        Ir.app (Ir.var "first-true")
          [ thunk (expr depth e); thunk (expand_parallel_or depth rest) ]

  (* A body is a sequence of forms, possibly starting with internal defines,
     which become letrec bindings (the paper's parallel-search does this). *)
  and body_of depth forms =
    let rec split defines = function
      | form :: rest as forms -> (
          match as_define form with
          | Some (x, rhs) -> split ((x, rhs) :: defines) rest
          | None -> (List.rev defines, forms))
      | [] -> (List.rev defines, [])
    in
    let defines, exprs = split [] forms in
    if exprs = [] then fail "body has no expression"
    else
      let body = Ir.seq (List.map (expr depth) exprs) in
      match defines with
      | [] -> body
      | ds -> Ir.Letrec (List.map (fun (x, rhs) -> (x, expr depth rhs)) ds, body)
  in
  expr 0

let default_table = Macro.create ()

let expand_expr ?(macros = default_table) d =
  match make_expander macros d with
  | e -> Ok e
  | exception Expand_error msg -> Error msg

let expand_top ?(macros = default_table) d =
  match
    match d with
    | Dlist (Dsym "extend-syntax" :: _) -> (
        match Macro.define macros d with
        | Ok name -> Defsyntax name
        | Error msg -> fail "%s" msg)
    | _ -> (
        match as_define d with
        | Some (x, rhs) -> Define (x, make_expander macros rhs)
        | None -> Expr (make_expander macros d))
  with
  | t -> Ok t
  | exception Expand_error msg -> Error msg

let expand_program ?macros ds =
  let macros = match macros with Some m -> m | None -> Macro.create () in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | d :: rest -> (
        match expand_top ~macros d with
        | Ok t -> go (t :: acc) rest
        | Error msg -> Error msg)
  in
  go [] ds

let parse_expr ?macros src =
  match Reader.parse src with
  | Ok d -> expand_expr ?macros d
  | Error msg -> Error ("read error: " ^ msg)

let parse_program ?macros src =
  match Reader.parse_all src with
  | Ok ds -> expand_program ?macros ds
  | Error msg -> Error ("read error: " ^ msg)
