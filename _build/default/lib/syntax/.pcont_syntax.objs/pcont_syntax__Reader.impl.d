lib/syntax/reader.ml: Buffer Format List Printf String
