lib/syntax/interp.ml: Expand List Macro Pcont_pstack Prelude Printf Stdlib
