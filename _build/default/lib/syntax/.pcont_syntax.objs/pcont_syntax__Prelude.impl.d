lib/syntax/prelude.ml: Expand
