lib/syntax/macro.ml: Format Hashtbl List Printf Reader String
