lib/syntax/prelude.mli: Expand
