lib/syntax/expand.ml: Format List Macro Pcont_pstack Printf Reader
