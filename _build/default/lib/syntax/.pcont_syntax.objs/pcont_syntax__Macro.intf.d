lib/syntax/macro.mli: Reader
