lib/syntax/expand.mli: Macro Pcont_pstack Reader
