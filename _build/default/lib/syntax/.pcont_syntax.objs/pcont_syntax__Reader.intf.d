lib/syntax/reader.mli: Format
