lib/syntax/interp.mli: Expand Macro Pcont_pstack
