type datum =
  | Dint of int
  | Dbool of bool
  | Dstr of string
  | Dsym of string
  | Dchar of char
  | Dlist of datum list
  | Ddot of datum list * datum

let rec pp ppf = function
  | Dint n -> Format.fprintf ppf "%d" n
  | Dbool true -> Format.fprintf ppf "#t"
  | Dbool false -> Format.fprintf ppf "#f"
  | Dstr s -> Format.fprintf ppf "%S" s
  | Dsym s -> Format.fprintf ppf "%s" s
  | Dchar ' ' -> Format.fprintf ppf "#\\space"
  | Dchar '\n' -> Format.fprintf ppf "#\\newline"
  | Dchar c -> Format.fprintf ppf "#\\%c" c
  | Dlist ds ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        ds
  | Ddot (ds, tail) ->
      Format.fprintf ppf "(%a . %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        ds pp tail

let to_string d = Format.asprintf "%a" pp d

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c fmt =
  Format.kasprintf (fun msg -> raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))) fmt

let is_delim = function
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '[' | ']' | '"' | ';' -> true
  | _ -> false

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | Some ';' ->
      let rec to_eol () =
        match peek c with
        | Some '\n' | None -> ()
        | Some _ ->
            advance c;
            to_eol ()
      in
      to_eol ();
      skip_ws c
  | _ -> ()

let read_token c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ch when not (is_delim ch) ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  String.sub c.src start (c.pos - start)

let read_string_literal c =
  advance c (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string literal"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance c;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance c;
            go ()
        | Some ('"' | '\\') ->
            Buffer.add_char buf c.src.[c.pos];
            advance c;
            go ()
        | Some ch -> fail c "unknown string escape \\%c" ch
        | None -> fail c "unterminated string escape")
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ();
  Dstr (Buffer.contents buf)

let read_hash c =
  advance c (* '#' *);
  match peek c with
  | Some 't' ->
      advance c;
      Dbool true
  | Some 'f' ->
      advance c;
      Dbool false
  | Some '\\' ->
      advance c;
      let tok =
        match peek c with
        | Some ch when is_delim ch ->
            (* e.g. #\( or #\space-less single delimiter char *)
            advance c;
            String.make 1 ch
        | _ -> read_token c
      in
      begin
        match tok with
        | "space" -> Dchar ' '
        | "newline" -> Dchar '\n'
        | "tab" -> Dchar '\t'
        | t when String.length t = 1 -> Dchar t.[0]
        | t -> fail c "unknown character literal #\\%s" t
      end
  | _ -> fail c "unknown # syntax"

let looks_like_int tok =
  tok <> "" && tok <> "-" && tok <> "+"
  &&
  let body = match tok.[0] with '-' | '+' -> String.sub tok 1 (String.length tok - 1) | _ -> tok in
  body <> "" && String.for_all (fun ch -> ch >= '0' && ch <= '9') body

let rec read_datum c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '(' -> read_list c ')'
  | Some '[' -> read_list c ']'
  | Some (')' | ']') -> fail c "unexpected closing bracket"
  | Some '\'' ->
      advance c;
      Dlist [ Dsym "quote"; read_datum c ]
  | Some '"' -> read_string_literal c
  | Some '#' -> read_hash c
  | Some _ ->
      let tok = read_token c in
      if tok = "" then fail c "empty token"
      else if looks_like_int tok then Dint (int_of_string tok)
      else Dsym tok

and read_list c closer =
  advance c (* opening bracket *);
  let rec go acc =
    skip_ws c;
    match peek c with
    | None -> fail c "unterminated list"
    | Some ch when ch = closer ->
        advance c;
        Dlist (List.rev acc)
    | Some (')' | ']') -> fail c "mismatched brackets"
    | Some '.' when is_dot c ->
        advance c;
        let tail = read_datum c in
        skip_ws c;
        begin
          match peek c with
          | Some ch when ch = closer ->
              advance c;
              if acc = [] then fail c "dotted list needs a head"
              else Ddot (List.rev acc, tail)
          | _ -> fail c "expected closing bracket after dotted tail"
        end
    | Some _ -> go (read_datum c :: acc)
  in
  go []

(* A '.' token is the dotted-pair marker only when followed by a delimiter;
   otherwise it begins a symbol such as [...]. *)
and is_dot c =
  c.pos + 1 >= String.length c.src || is_delim c.src.[c.pos + 1]

let parse src =
  let c = { src; pos = 0 } in
  try
    let d = read_datum c in
    skip_ws c;
    match peek c with
    | None -> Ok d
    | Some _ -> Error (Printf.sprintf "trailing input at offset %d" c.pos)
  with Parse_error msg -> Error msg

let parse_all src =
  let c = { src; pos = 0 } in
  try
    let rec go acc =
      skip_ws c;
      match peek c with
      | None -> Ok (List.rev acc)
      | Some _ -> go (read_datum c :: acc)
    in
    go []
  with Parse_error msg -> Error msg
