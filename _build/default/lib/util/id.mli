(** Unique integer identifiers.

    Labels in the semantics (Section 6) and roots in the process tree
    (Section 7) must be globally fresh.  A [t] is a generator of such
    identifiers; independent generators produce independent sequences, which
    keeps tests deterministic. *)

type t
(** A fresh-identifier generator. *)

val create : unit -> t
(** [create ()] is a new generator whose first identifier is [0]. *)

val fresh : t -> int
(** [fresh g] returns the next identifier from [g]. *)

val fresh_above : t -> int -> int
(** [fresh_above g n] returns an identifier strictly greater than [n] and
    greater than any identifier previously returned by [g].  This mirrors the
    paper's side condition [l ∉ labels(C[v])] for the [spawn] rewrite rule:
    picking an identifier above every label occurring in the program
    guarantees freshness. *)

val count : t -> int
(** [count g] is the number of identifiers generated so far. *)
