(** Deterministic splittable pseudo-random numbers (splitmix64).

    The concurrent schedulers optionally randomise the interleaving of
    process-tree branches.  Reproducibility of every experiment requires a
    self-contained, seeded generator rather than [Random], whose global state
    would couple unrelated tests. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val next : t -> int64
(** [next g] advances [g] and returns 64 pseudo-random bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool

val split : t -> t
(** [split g] derives an independent generator, advancing [g]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g a] permutes [a] in place (Fisher-Yates). *)
