(** Purely functional FIFO queues (two-list representation).

    Used by the schedulers to hold runnable leaves of the process tree.  A
    functional queue keeps scheduler states immutable, so a scheduler
    configuration can be captured inside a process continuation and later
    reinstated without aliasing. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a -> 'a t -> 'a t
(** [push x q] enqueues [x] at the back of [q]. *)

val pop : 'a t -> ('a * 'a t) option
(** [pop q] is [Some (x, q')] where [x] is the front element, or [None] if
    [q] is empty.  Amortised O(1). *)

val of_list : 'a list -> 'a t
(** [of_list xs] is a queue whose front element is [List.hd xs]. *)

val to_list : 'a t -> 'a list
(** [to_list q] lists elements front-first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** [fold f acc q] folds front-first. *)
