type t = exn

let embed (type a) () =
  let module M = struct
    exception E of a
  end in
  ((fun x -> M.E x), function M.E x -> Some x | _ -> None)
