type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

(* splitmix64 finaliser: well-distributed even for sequential seeds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next g =
  g.state <- Int64.add g.state golden;
  mix g.state

let int g bound =
  if bound <= 0 then invalid_arg "Xorshift.int: bound must be positive";
  (* Mask to 62 bits so the Int64->int truncation can never go negative. *)
  let r = Int64.to_int (Int64.logand (next g) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let bool g = Int64.logand (next g) 1L = 1L

let split g = create (next g)

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
