type t = { mutable next : int; mutable count : int }

let create () = { next = 0; count = 0 }

let fresh g =
  let n = g.next in
  g.next <- n + 1;
  g.count <- g.count + 1;
  n

let fresh_above g n =
  if n >= g.next then g.next <- n + 1;
  fresh g

let count g = g.count
