type 'a t = { front : 'a list; back : 'a list; len : int }

let empty = { front = []; back = []; len = 0 }

let is_empty q = q.len = 0

let length q = q.len

let push x q = { q with back = x :: q.back; len = q.len + 1 }

let pop q =
  match q.front with
  | x :: front -> Some (x, { q with front; len = q.len - 1 })
  | [] -> (
      match List.rev q.back with
      | [] -> None
      | x :: front -> Some (x, { front; back = []; len = q.len - 1 }))

let of_list xs = { front = xs; back = []; len = List.length xs }

let to_list q = q.front @ List.rev q.back

let fold f acc q = List.fold_left f acc (to_list q)
