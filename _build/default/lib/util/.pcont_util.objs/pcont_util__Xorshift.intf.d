lib/util/xorshift.mli:
