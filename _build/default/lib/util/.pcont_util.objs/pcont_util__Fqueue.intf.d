lib/util/fqueue.mli:
