lib/util/univ.mli:
