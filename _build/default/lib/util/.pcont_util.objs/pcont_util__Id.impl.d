lib/util/id.ml:
