lib/util/id.mli:
