lib/util/univ.ml:
