lib/util/counters.ml: Format Hashtbl List String
