(** A universal type with type-safe injection/projection pairs.

    The cooperative scheduler moves values of arbitrary types between
    fibers through a single queue; each crossing point creates an
    [embed]ding and projects on the other side.  Implemented with locally
    generated extension constructors — no [Obj.magic]. *)

type t

val embed : unit -> ('a -> t) * (t -> 'a option)
(** [embed ()] is a fresh [(inject, project)] pair.  [project (inject v)]
    is [Some v]; projecting a value injected by a different pair is
    [None]. *)
