type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 16

let cell c name =
  match Hashtbl.find_opt c name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add c name r;
      r

let add c name n =
  let r = cell c name in
  r := !r + n

let incr c name = add c name 1

let get c name = match Hashtbl.find_opt c name with Some r -> !r | None -> 0

let reset c = Hashtbl.iter (fun _ r -> r := 0) c

let to_list c =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) c []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf c =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf (name, v) -> Format.fprintf ppf "%s = %d" name v))
    (to_list c)
