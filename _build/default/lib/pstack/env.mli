(** Environments: lexical frames over a mutable global table. *)

val empty : unit -> Types.env
(** A fresh environment with an empty global table. *)

val lookup : Types.env -> string -> Types.value ref option
(** Lexical scope first, then globals. *)

val extend : Types.env -> (string * Types.value) list -> Types.env
(** Bind each name to a fresh cell, shadowing outer bindings. *)

val extend_refs : Types.env -> (string * Types.value ref) list -> Types.env
(** Bind names to the given (shared) cells, as needed for [letrec]. *)

val define_global : Types.env -> string -> Types.value -> unit
(** Top-level [define]: create or overwrite a global binding. *)

val bind_params :
  Types.closure -> Types.value list -> (Types.env, string) result
(** Bind a closure's parameters to actual arguments, checking arity and
    collecting any rest arguments into a list. *)
