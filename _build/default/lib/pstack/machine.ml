open Types
module Counters = Pcont_util.Counters
module Id = Pcont_util.Id

type config = { strategy : strategy; counters : Counters.t; labels : Id.t }

let config ?(strategy = Linked) () =
  { strategy; counters = Counters.create (); labels = Id.create () }

let initial_pstack = [ { root = Rbase; frames = []; winders = [] } ]

let initial ir env = { control = Ceval (ir, env); pstack = initial_pstack }

type stepped =
  | Next of Types.state
  | Final of Types.value
  | Err of string
  | Esc_control of Types.label * Types.value
  | Esc_pktree of Types.pktree * Types.value
  | Esc_touch of Types.future_cell

let push_frame f = function
  | seg :: rest ->
      let winders =
        match f with Fwind (b, a) -> (b, a) :: seg.winders | _ -> seg.winders
      in
      { seg with frames = f :: seg.frames; winders } :: rest
  | [] -> assert false

(* Run winder thunks one by one (discarding their values), then perform
   the target action. *)
let rec run_winders st thunks target =
  match thunks with
  | [] -> (
      match target with
      | Wreturn v -> Next { st with control = Creturn v }
      | Wapply (f, args) -> Next { st with control = Capply (f, args) }
      | Wenter (before, thunk, after) ->
          let pstack = push_frame (Fwind (before, after)) st.pstack in
          Next { control = Capply (thunk, []); pstack })
  | t :: rest ->
      let pstack = push_frame (Fwinding (rest, target)) st.pstack in
      Next { control = Capply (t, []); pstack }

(* [after] thunks of winders inside captured segments, innermost first —
   the order in which an abort exits their dynamic extents. *)
and afters_of segs = List.concat_map (fun seg -> List.map snd seg.winders) segs

(* [before] thunks, outermost first — re-entry order on reinstatement. *)
and befores_of segs = List.rev (befores_rev segs)

and befores_rev segs = List.concat_map (fun seg -> List.map fst seg.winders) segs

let find_spawn_label l pstack =
  List.exists (fun seg -> seg.root = Rspawn l) pstack

let split_at_spawn_label l pstack =
  let rec go captured = function
    | [] -> None
    | seg :: rest when seg.root = Rspawn l -> Some (List.rev (seg :: captured), rest)
    | seg :: rest -> go (seg :: captured) rest
  in
  go [] pstack

let count_frames segs =
  List.fold_left (fun n seg -> n + List.length seg.frames) 0 segs

let copy_segments segs =
  (* Rebuild every cons cell of every frame list: the per-frame work a
     stack-copying implementation performs.  Frames themselves are immutable
     and can be shared. *)
  List.map (fun seg -> { seg with frames = List.map Fun.id seg.frames }) segs

(* Record the cost of moving [segs] during a control operation named [op]
   ("capture" or "reinstate"), and return the representation to store:
   under [Copying] the frames are physically copied. *)
let charge cfg op segs =
  Counters.add cfg.counters (op ^ ".segments") (List.length segs);
  match cfg.strategy with
  | Linked -> segs
  | Copying ->
      Counters.add cfg.counters (op ^ ".frames") (count_frames segs);
      copy_segments segs

let rec quoted_value : Ir.quoted -> value = function
  | Ir.Qint n -> Int n
  | Ir.Qbool b -> Bool b
  | Ir.Qstr s -> Str s
  | Ir.Qsym s -> Sym s
  | Ir.Qchar c -> Char c
  | Ir.Qnil -> Nil
  | Ir.Qlist qs -> Value.values_to_list (List.map quoted_value qs)
  | Ir.Qdot (qs, tail) ->
      List.fold_right
        (fun q acc -> Value.cons (quoted_value q) acc)
        qs (quoted_value tail)

let const_value : Ir.const -> value = function
  | Ir.Cint n -> Int n
  | Ir.Cbool b -> Bool b
  | Ir.Cstr s -> Str s
  | Ir.Csym s -> Sym s
  | Ir.Cchar c -> Char c
  | Ir.Cnil -> Nil
  | Ir.Cunit -> Unit

let prim_arity_ok p nargs =
  nargs >= p.pmin && match p.pmax with None -> true | Some m -> nargs <= m

(* Capture up to the nearest prompt for Felleisen's F: a flat frame list.
   Any spawn roots in between are erased (their segments' frames are
   concatenated), which is the §3 observation that F cannot respect process
   structure.  Returns (frames, remaining pstack). *)
let capture_to_prompt pstack =
  let rec go acc = function
    | [] -> (List.concat (List.rev acc), initial_pstack)
    | seg :: rest when seg.root = Rprompt ->
        ( List.concat (List.rev (seg.frames :: acc)),
          { seg with frames = []; winders = [] } :: rest )
    | seg :: rest when seg.root = Rbase ->
        (* no prompt: F aborts the complete computation to the base *)
        ( List.concat (List.rev (seg.frames :: acc)),
          { seg with frames = []; winders = [] } :: rest )
    | seg :: rest -> go (seg.frames :: acc) rest
  in
  go [] pstack

let apply cfg st f args =
  match f with
  | Closure c -> (
      match Env.bind_params c args with
      | Ok env -> Next { st with control = Ceval (c.cbody, env) }
      | Error msg -> Err msg)
  | Prim p -> (
      if not (prim_arity_ok p (List.length args)) then
        Err
          (Printf.sprintf "%s: expects %s%d argument(s), got %d" p.pname
             (match p.pmax with
             | Some m when m = p.pmin -> ""
             | _ -> "at least ")
             p.pmin (List.length args))
      else
        match p.pkind with
        | Pure fn -> (
            match fn args with
            | Ok v -> Next { st with control = Creturn v }
            | Error msg -> Err msg)
        | Ctl op -> (
            match (op, args) with
            | Op_spawn, [ proc ] ->
                let l = Id.fresh cfg.labels in
                Counters.incr cfg.counters "spawn";
                let pstack = { root = Rspawn l; frames = []; winders = [] } :: st.pstack in
                Next { control = Capply (proc, [ Controller l ]); pstack }
            | Op_callcc, [ proc ] ->
                let saved = charge cfg "capture" st.pstack in
                Counters.incr cfg.counters "callcc";
                Next
                  {
                    st with
                    control = Capply (proc, [ Cont { ck_pstack = saved } ]);
                  }
            | Op_prompt, [ thunk ] ->
                Counters.incr cfg.counters "prompt";
                let pstack = { root = Rprompt; frames = []; winders = [] } :: st.pstack in
                Next { control = Capply (thunk, []); pstack }
            | Op_fcontrol, [ proc ] ->
                Counters.incr cfg.counters "fcontrol";
                let frames, pstack = capture_to_prompt st.pstack in
                Counters.add cfg.counters "capture.frames" (List.length frames);
                Next { control = Capply (proc, [ Fcont frames ]); pstack }
            | Op_wind, [ before; thunk; after ] ->
                run_winders st [ before ] (Wenter (before, thunk, after))
            | Op_touch, [ Future cell ] -> (
                match cell.fvalue with
                | Some v -> Next { st with control = Creturn v }
                | None -> Esc_touch cell)
            | Op_touch, [ v ] ->
                (* Multilisp: touching a non-future returns it. *)
                Next { st with control = Creturn v }
            | Op_apply, [ proc; arglist ] -> (
                match Value.list_to_values arglist with
                | Some vs -> Next { st with control = Capply (proc, vs) }
                | None -> Err "apply: last argument must be a proper list")
            | _ -> Err (p.pname ^ ": bad control-operator arguments")))
  | Controller l -> (
      match args with
      | [ body ] -> (
          match split_at_spawn_label l st.pstack with
          | Some (captured, rest) ->
              let captured = charge cfg "capture" captured in
              Counters.incr cfg.counters "controller";
              let pk = Pk { pk_label = l; pk_segments = captured } in
              (* Exiting the captured extent runs its winders' afters,
                 innermost first, in the context outside the root, before
                 the controller's argument is applied. *)
              run_winders { st with pstack = rest } (afters_of captured)
                (Wapply (body, [ pk ]))
          | None -> Esc_control (l, body))
      | _ -> Err "controller: expects exactly one argument")
  | Pk pk -> (
      match args with
      | [ v ] ->
          let segs = charge cfg "reinstate" pk.pk_segments in
          Counters.incr cfg.counters "pk-invoke";
          (* Re-entering the reinstated extent runs its winders' befores,
             outermost first, before the value reaches the capture point. *)
          run_winders
            { control = Creturn v; pstack = segs @ st.pstack }
            (befores_of segs) (Wreturn v)
      | _ -> Err "process continuation: expects exactly one argument")
  | Pktree pkt -> (
      match args with
      | [ v ] -> Esc_pktree (pkt, v)
      | _ -> Err "process continuation: expects exactly one argument")
  | Cont c -> (
      match args with
      | [ v ] ->
          let segs = charge cfg "reinstate" c.ck_pstack in
          Counters.incr cfg.counters "cont-invoke";
          Next { control = Creturn v; pstack = segs }
      | _ -> Err "continuation: expects exactly one argument")
  | Fcont frames -> (
      match args with
      | [ v ] ->
          Counters.add cfg.counters "reinstate.frames" (List.length frames);
          let pstack =
            match st.pstack with
            | seg :: rest ->
                let extra =
                  List.filter_map
                    (function Fwind (b, a) -> Some (b, a) | _ -> None)
                    frames
                in
                { seg with frames = frames @ seg.frames; winders = extra @ seg.winders }
                :: rest
            | [] -> assert false
          in
          Next { control = Creturn v; pstack }
      | _ -> Err "functional continuation: expects exactly one argument")
  | v -> Err ("application of a non-procedure: " ^ Value.to_string v)

(* Deliver a returned value to the topmost frame, or pop a segment. *)
let return_value cfg st v =
  match st.pstack with
  | [] -> assert false
  | { root; frames = []; _ } :: rest -> (
      match root with
      | Rbase ->
          if rest = [] then Final v
          else Err "internal error: base segment above other segments"
      | Rspawn _ ->
          (* Normal return from a spawned process removes its root. *)
          Next { control = Creturn v; pstack = rest }
      | Rprompt ->
          (* A value returning to a prompt falls through to the prompt
             application's continuation. *)
          Next { control = Creturn v; pstack = rest })
  | ({ frames = f :: fs; _ } as seg) :: rest -> (
      let winders =
        match f with Fwind _ -> List.tl seg.winders | _ -> seg.winders
      in
      let pstack = { seg with frames = fs; winders } :: rest in
      let st = { control = Creturn v; pstack } in
      ignore cfg;
      match f with
      | Fapp (vals, [], _) ->
          let all = List.rev (v :: vals) in
          Next { st with control = Capply (List.hd all, List.tl all) }
      | Fapp (vals, e :: es, env) ->
          let pstack = push_frame (Fapp (v :: vals, es, env)) pstack in
          Next { control = Ceval (e, env); pstack }
      | Fpcall (vals, [], _) ->
          let all = List.rev (v :: vals) in
          Next { st with control = Capply (List.hd all, List.tl all) }
      | Fpcall (vals, e :: es, env) ->
          let pstack = push_frame (Fpcall (v :: vals, es, env)) pstack in
          Next { control = Ceval (e, env); pstack }
      | Fif (thn, els, env) ->
          Next { st with control = Ceval ((if Value.is_truthy v then thn else els), env) }
      | Fseq ([], _) -> Next { st with control = Creturn v }
      | Fseq ([ e ], env) -> Next { st with control = Ceval (e, env) }
      | Fseq (e :: es, env) ->
          let pstack = push_frame (Fseq (es, env)) pstack in
          Next { control = Ceval (e, env); pstack }
      | Flet (x, done_, [], body, env) ->
          let env = Env.extend env (List.rev ((x, v) :: done_)) in
          Next { st with control = Ceval (body, env) }
      | Flet (x, done_, (y, e) :: bs, body, env) ->
          let pstack = push_frame (Flet (y, (x, v) :: done_, bs, body, env)) pstack in
          Next { control = Ceval (e, env); pstack }
      | Fletrec (cell, [], body, env) ->
          cell := v;
          Next { st with control = Ceval (body, env) }
      | Fletrec (cell, (cell', e) :: bs, body, env) ->
          cell := v;
          let pstack = push_frame (Fletrec (cell', bs, body, env)) pstack in
          Next { control = Ceval (e, env); pstack }
      | Fset cell ->
          cell := v;
          Next { st with control = Creturn Unit }
      | Ffuture fc ->
          fc.fvalue <- Some v;
          Next { st with control = Creturn (Future fc) }
      | Fwind (_, after) ->
          (* normal return exits the wind: run the after, then deliver v *)
          run_winders st [ after ] (Wreturn v)
      | Fwinding (pending, target) ->
          (* a winder thunk finished; its value is discarded *)
          run_winders st pending target)

let step cfg st =
  match st.control with
  | Creturn v -> return_value cfg st v
  | Capply (f, args) -> apply cfg st f args
  | Ceval (ir, env) -> (
      match ir with
      | Ir.Const c -> Next { st with control = Creturn (const_value c) }
      | Ir.Quoted q -> Next { st with control = Creturn (quoted_value q) }
      | Ir.Var x -> (
          match Env.lookup env x with
          | Some cell -> Next { st with control = Creturn !cell }
          | None -> Err ("unbound variable: " ^ x))
      | Ir.Lam { params; rest; body } ->
          Next { st with control = Creturn (Closure { params; rest; cbody = body; cenv = env }) }
      | Ir.App (f, args) ->
          let pstack = push_frame (Fapp ([], args, env)) st.pstack in
          Next { control = Ceval (f, env); pstack }
      | Ir.If (c, t, e) ->
          let pstack = push_frame (Fif (t, e, env)) st.pstack in
          Next { control = Ceval (c, env); pstack }
      | Ir.Seq [] -> Next { st with control = Creturn Unit }
      | Ir.Seq [ e ] -> Next { st with control = Ceval (e, env) }
      | Ir.Seq (e :: es) ->
          let pstack = push_frame (Fseq (es, env)) st.pstack in
          Next { control = Ceval (e, env); pstack }
      | Ir.Let ([], body) -> Next { st with control = Ceval (body, env) }
      | Ir.Let ((x, e) :: bs, body) ->
          let pstack = push_frame (Flet (x, [], bs, body, env)) st.pstack in
          Next { control = Ceval (e, env); pstack }
      | Ir.Letrec (bs, body) -> (
          let cells = List.map (fun (x, e) -> (x, ref Undef, e)) bs in
          let env' =
            Env.extend_refs env (List.map (fun (x, c, _) -> (x, c)) cells)
          in
          match cells with
          | [] -> Next { st with control = Ceval (body, env') }
          | (_, c0, e0) :: rest ->
              let remaining = List.map (fun (_, c, e) -> (c, e)) rest in
              let pstack = push_frame (Fletrec (c0, remaining, body, env')) st.pstack in
              Next { control = Ceval (e0, env'); pstack })
      | Ir.Set (x, e) -> (
          match Env.lookup env x with
          | Some cell ->
              let pstack = push_frame (Fset cell) st.pstack in
              Next { control = Ceval (e, env); pstack }
          | None -> Err ("set!: unbound variable: " ^ x))
      | Ir.Future e ->
          (* Sequential fallback: evaluate eagerly; the future is resolved
             by the time it is returned.  The concurrent scheduler
             intercepts Future before stepping and forks a new tree. *)
          let pstack = push_frame (Ffuture { fvalue = None }) st.pstack in
          Next { control = Ceval (e, env); pstack }
      | Ir.Pcall [] -> Err "pcall: expects at least an operator expression"
      | Ir.Pcall (e :: es) ->
          (* Sequential fallback: evaluate left to right in this branch.
             The concurrent scheduler intercepts Pcall before stepping. *)
          let pstack = push_frame (Fpcall ([], es, env)) st.pstack in
          Next { control = Ceval (e, env); pstack })
