open Types

let empty () = { vars = []; globals = Hashtbl.create 64 }

let lookup env name =
  let rec scan = function
    | [] -> Hashtbl.find_opt env.globals name
    | (n, cell) :: rest -> if String.equal n name then Some cell else scan rest
  in
  scan env.vars

let extend env bindings =
  let vars =
    List.fold_left (fun acc (n, v) -> (n, ref v) :: acc) env.vars bindings
  in
  { env with vars }

let extend_refs env bindings =
  let vars = List.fold_left (fun acc (n, c) -> (n, c) :: acc) env.vars bindings in
  { env with vars }

let define_global env name v =
  match Hashtbl.find_opt env.globals name with
  | Some cell -> cell := v
  | None -> Hashtbl.add env.globals name (ref v)

let bind_params closure args =
  let { params; rest; cenv; _ } = closure in
  let nparams = List.length params in
  let nargs = List.length args in
  if nargs < nparams then
    Error
      (Printf.sprintf "procedure expects %s%d arguments, got %d"
         (if rest = None then "" else "at least ")
         nparams nargs)
  else if rest = None && nargs > nparams then
    Error (Printf.sprintf "procedure expects %d arguments, got %d" nparams nargs)
  else
    let rec take ps vs acc =
      match (ps, vs) with
      | [], vs -> (List.rev acc, vs)
      | p :: ps, v :: vs -> take ps vs ((p, v) :: acc)
      | _ :: _, [] -> assert false
    in
    let bound, leftover = take params args [] in
    let bound =
      match rest with
      | None -> bound
      | Some r -> (r, Value.values_to_list leftover) :: bound
    in
    Ok (extend cenv bound)
