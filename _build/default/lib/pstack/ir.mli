(** Core intermediate representation executed by the process-stack machine.

    The Scheme front end ([Pcont_syntax]) compiles surface programs to this
    IR; tests and benchmarks may also build IR directly.  The IR is a
    conventional Scheme core: constants, variables, abstractions,
    applications, conditionals, sequencing, [let]/[letrec], assignment — plus
    [pcall], the paper's tree-structured fork form.  The control operators
    ([spawn], [call/cc], [prompt], [fcontrol]) are primitive {e procedures},
    not syntax, exactly as [call/cc] is in Scheme. *)

type const =
  | Cint of int
  | Cbool of bool
  | Cstr of string
  | Csym of string
  | Cchar of char
  | Cnil
  | Cunit

type quoted =
  | Qint of int
  | Qbool of bool
  | Qstr of string
  | Qsym of string
  | Qchar of char
  | Qnil
  | Qlist of quoted list
  | Qdot of quoted list * quoted  (** improper list *)

type t =
  | Const of const
  | Quoted of quoted
      (** a [quote]d literal; the machine builds the (fresh) value *)
  | Var of string
  | Lam of lambda
  | App of t * t list
  | If of t * t * t
  | Seq of t list  (** [begin]; empty sequence evaluates to the unit value *)
  | Let of (string * t) list * t
  | Letrec of (string * t) list * t
  | Set of string * t
  | Future of t
      (** [(future e)]: start [e] as an {e independent} tree of the process
          forest (Section 8) and immediately return a future; [touch]
          retrieves the value.  The sequential machine evaluates eagerly. *)
  | Pcall of t list
      (** [(pcall f e1 ... en)]: evaluate all subexpressions as parallel
          branches of the process tree, then apply the value of the first to
          the values of the rest.  The sequential machine evaluates them
          left to right; {!Concur} actually forks. *)

and lambda = { params : string list; rest : string option; body : t }

val int : int -> t

val bool : bool -> t

val str : string -> t

val sym : string -> t

val var : string -> t

val lam : string list -> t -> t

val lam_rest : string list -> string -> t -> t

val app : t -> t list -> t

val if_ : t -> t -> t -> t

val let_ : (string * t) list -> t -> t

val seq : t list -> t

val size : t -> int
(** Number of IR nodes, for generators and statistics. *)

val pp_quoted : Format.formatter -> quoted -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string
