(** Operations on runtime values: conversions, equality, printing. *)

val list_to_values : Types.value -> Types.value list option
(** Spine of a proper list value, or [None] if improper. *)

val values_to_list : Types.value list -> Types.value
(** Build a fresh proper list. *)

val cons : Types.value -> Types.value -> Types.value

val is_truthy : Types.value -> bool
(** Scheme truth: everything except [#f] is true. *)

val eqv : Types.value -> Types.value -> bool
(** Identity for mutable structures, structural for atoms ([eqv?]). *)

val equal : Types.value -> Types.value -> bool
(** Deep structural equality ([equal?]).  Cycle-free values only. *)

val type_name : Types.value -> string

val pp : Format.formatter -> Types.value -> unit
(** [write]-style printing: strings quoted, characters in [#\c] form. *)

val pp_display : Format.formatter -> Types.value -> unit
(** [display]-style printing: strings and characters unquoted. *)

val to_string : Types.value -> string

val display_string : Types.value -> string
