(** Introspection and pretty-printing of machine states.

    Summaries of frames, segments, process stacks and whole states, for the
    REPL's [--stats]/[--trace] modes and for debugging scheduler tests.
    The printed forms are compact one-liners, not full terms. *)

val frame_name : Types.frame -> string

val pp_root : Format.formatter -> Types.root -> unit

val pp_segment : Format.formatter -> Types.segment -> unit
(** e.g. [spawn#3\[Fapp Fif\]]. *)

val pp_pstack : Format.formatter -> Types.segment list -> unit
(** Top segment first, e.g. [spawn#3\[2 frames\] | base\[0\]]. *)

val pp_control : Format.formatter -> Types.control -> unit

val pp_state : Format.formatter -> Types.state -> unit

val pp_ptree : Format.formatter -> Types.ptree -> unit
(** Shape of a captured subtree: forks, suspended leaves, the hole. *)

val state_summary : Types.state -> string

val ptree_summary : Types.ptree -> string
