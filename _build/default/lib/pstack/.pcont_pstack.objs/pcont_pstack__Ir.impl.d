lib/pstack/ir.ml: Format List
