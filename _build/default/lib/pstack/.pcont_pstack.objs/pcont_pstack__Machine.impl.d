lib/pstack/machine.ml: Env Fun Ir List Pcont_util Printf Types Value
