lib/pstack/prims.mli: Types
