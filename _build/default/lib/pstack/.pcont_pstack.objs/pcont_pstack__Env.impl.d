lib/pstack/env.ml: Hashtbl List Printf String Types Value
