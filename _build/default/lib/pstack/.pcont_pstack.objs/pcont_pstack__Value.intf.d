lib/pstack/value.mli: Format Types
