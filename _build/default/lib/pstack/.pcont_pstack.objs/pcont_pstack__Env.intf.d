lib/pstack/env.mli: Types
