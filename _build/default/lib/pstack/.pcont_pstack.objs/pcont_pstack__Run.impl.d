lib/pstack/run.ml: Format Machine Printf Types Value
