lib/pstack/types.ml: Hashtbl Ir
