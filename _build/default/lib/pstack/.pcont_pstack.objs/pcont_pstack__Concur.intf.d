lib/pstack/concur.mli: Ir Machine Types
