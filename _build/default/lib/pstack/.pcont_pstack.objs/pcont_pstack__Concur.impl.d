lib/pstack/concur.ml: Array Ir List Machine Option Pcont_util Printf Types Value
