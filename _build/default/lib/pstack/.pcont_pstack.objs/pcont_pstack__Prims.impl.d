lib/pstack/prims.ml: Array Buffer Env Format List String Types Value
