lib/pstack/machine.mli: Ir Pcont_util Types
