lib/pstack/debug.mli: Format Types
