lib/pstack/run.mli: Format Ir Machine Types
