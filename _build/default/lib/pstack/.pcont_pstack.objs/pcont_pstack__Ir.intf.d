lib/pstack/ir.mli: Format
