lib/pstack/debug.ml: Array Format Ir List String Types Value
