lib/pstack/value.ml: Array Format List String Types
