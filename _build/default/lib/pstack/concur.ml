open Types
module Counters = Pcont_util.Counters
module Xorshift = Pcont_util.Xorshift

type sched =
  | Round_robin
  | Randomized of int64
  | Driven of (int -> int)
      (* each scheduling decision steps exactly one runnable branch:
         [pick n] receives the number of runnable branches and returns the
         index of the one to step — systematic schedule exploration *)

type outcome = Value of Types.value | Error of string | Out_of_fuel

(* Scheduler trace events, for the REPL's --trace and for tests. *)
type event =
  | Ev_fork of { node : int; branches : int }
  | Ev_capture of { label : Types.label; control_points : int }
  | Ev_graft of { label : Types.label }
  | Ev_future of { node : int }
  | Ev_branch_done of { node : int }
  | Ev_invalid of Types.label

let event_to_string = function
  | Ev_fork { node; branches } -> Printf.sprintf "fork    node=%d branches=%d" node branches
  | Ev_capture { label; control_points } ->
      Printf.sprintf "capture root=%d control-points=%d" label control_points
  | Ev_graft { label } -> Printf.sprintf "graft   root=%d" label
  | Ev_future { node } -> Printf.sprintf "future  tree=%d" node
  | Ev_branch_done { node } -> Printf.sprintf "done    node=%d" node
  | Ev_invalid label -> Printf.sprintf "invalid controller root=%d" label

let outcome_to_string = function
  | Value v -> "VALUE " ^ Value.to_string v
  | Error msg -> "ERROR " ^ msg
  | Out_of_fuel -> "OUT-OF-FUEL"

(* The live process tree.  A node is a leaf (a branch with its own local
   stack), a fork created by pcall, or done (its value delivered to the
   parent fork).  Captured subtrees are converted to the immutable
   [Types.ptree] form and their nodes discarded. *)
type node = { nid : int; mutable parent : parent; mutable body : body }

and parent = Ptop | Pfut of future_cell | Pchild of node * int

and body = Nleaf of state | Nfork of nfork | Ndone

and nfork = {
  trunk : segment list;
  children : node array;
  results : value option array;
  mutable pending : int;
}

let control_points ptree =
  let count_roots segs =
    List.length (List.filter (fun s -> match s.root with Rspawn _ -> true | _ -> false) segs)
  in
  let rec go = function
    | Pleaf st -> count_roots st.pstack
    | Phole segs -> count_roots segs
    | Pdone -> 0
    | Pfork pf ->
        1 + count_roots pf.pf_trunk + Array.fold_left (fun n t -> n + go t) 0 pf.pf_children
  in
  go ptree

let invalid_controller l =
  Printf.sprintf
    "invalid controller application: no process root labeled %d in the \
     current continuation"
    l

let run ?(fuel = 10_000_000) ?(quantum = 16) ?(sched = Round_robin)
    ?(drain_futures = true) ?(on_event = fun (_ : event) -> ()) ?cfg env ir =
  let cfg = match cfg with Some c -> c | None -> Machine.config () in
  let counters = cfg.Machine.counters in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  let root =
    { nid = 0; parent = Ptop; body = Nleaf (Machine.initial ir env) }
  in
  (* The forest (Section 8): the main tree plus one tree per future. *)
  let roots = ref [ root ] in
  let final = ref None in
  let failure = ref None in
  let fuel_left = ref fuel in
  let rng =
    match sched with
    | Round_robin | Driven _ -> None
    | Randomized seed -> Some (Xorshift.create seed)
  in

  (* A node is attached iff following parent links reaches the live root
     through matching child slots.  Nodes pruned into a process continuation
     fail this test and are skipped by the scheduler. *)
  let rec attached n =
    match n.parent with
    | Ptop -> n == root
    | Pfut _ -> List.memq n !roots
    | Pchild (p, i) -> (
        match p.body with
        | Nfork f -> i < Array.length f.children && f.children.(i) == n && attached p
        | _ -> false)
  in

  let rec collect_leaves acc n =
    match n.body with
    | Nleaf _ -> n :: acc
    | Ndone -> acc
    | Nfork f -> Array.fold_left collect_leaves acc f.children
  in

  let fork_of n = match n.body with Nfork f -> f | _ -> assert false in

  (* Deliver a branch's final value to its parent fork; when the fork's last
     child completes, the fork resumes as a leaf applying the first value to
     the rest in the trunk. *)
  let deliver n v =
    on_event (Ev_branch_done { node = n.nid });
    n.body <- Ndone;
    match n.parent with
    | Ptop -> final := Some v
    | Pfut cell ->
        cell.fvalue <- Some v;
        roots := List.filter (fun r -> not (r == n)) !roots
    | Pchild (p, slot) ->
        let f = fork_of p in
        f.results.(slot) <- Some v;
        f.pending <- f.pending - 1;
        if f.pending = 0 then begin
          let vs = Array.to_list (Array.map Option.get f.results) in
          match vs with
          | op :: args ->
              p.body <- Nleaf { control = Capply (op, args); pstack = f.trunk }
          | [] -> assert false
        end

  (* pcall: turn this leaf into a fork; every subexpression becomes a child
     branch with a fresh local stack. *)
  and do_fork n st exprs env' =
    Counters.incr counters "concur.fork";
    let k = List.length exprs in
    on_event (Ev_fork { node = n.nid; branches = k });
    let f =
      {
        trunk = st.pstack;
        children = Array.make k n;
        results = Array.make k None;
        pending = k;
      }
    in
    n.body <- Nfork f;
    List.iteri
      (fun i e ->
        f.children.(i) <-
          {
            nid = fresh_id ();
            parent = Pchild (n, i);
            body = Nleaf { control = Ceval (e, env'); pstack = Machine.initial_pstack };
          })
      exprs

  (* Controller application whose root is not in the invoking branch's local
     stack: climb the tree for the nearest trunk containing the root, prune
     the subtree of stacks it delimits, and apply the controller's argument
     to the packaged process continuation in the remaining trunk. *)
  and do_capture n st l body_fn =
    let rec ptree_of m =
      if m == n then Phole st.pstack
      else
        match m.body with
        | Nleaf s -> Pleaf s
        | Ndone -> Pdone
        | Nfork f ->
            Pfork
              {
                pf_trunk = f.trunk;
                pf_children = Array.map ptree_of f.children;
                pf_results = Array.copy f.results;
              }
    in
    let rec climb cur =
      match cur.parent with
      | Ptop | Pfut _ -> None
      | Pchild (p, _) -> (
          let f = fork_of p in
          match Machine.split_at_spawn_label l f.trunk with
          | Some (above_incl, below) -> Some (p, f, above_incl, below)
          | None -> climb p)
    in
    match climb n with
    | None ->
        on_event (Ev_invalid l);
        failure := Some (invalid_controller l)
    | Some (p, f, above_incl, below) ->
        Counters.incr counters "concur.capture";
        Counters.incr counters "sync.lock";
        let tree =
          Pfork
            {
              pf_trunk = above_incl;
              pf_children = Array.map ptree_of f.children;
              pf_results = Array.copy f.results;
            }
        in
        Counters.add counters "concur.capture.control-points" (control_points tree);
        on_event (Ev_capture { label = l; control_points = control_points tree });
        let pk = Pktree { pkt_label = l; pkt_tree = tree } in
        p.body <- Nleaf { control = Capply (body_fn, [ pk ]); pstack = below }

  (* Invoke a tree-shaped process continuation: graft the saved subtree onto
     the invoking branch.  The saved trunk is spliced on top of the invoking
     branch's stack, every saved leaf is rebuilt as a fresh node, and the
     continuation's argument is returned at the saved hole. *)
  and do_graft n st pkt v =
    Counters.incr counters "concur.graft";
    on_event (Ev_graft { label = pkt.pkt_label });
    let rec rebuild parent pt =
      let m = { nid = fresh_id (); parent; body = Ndone } in
      (match pt with
      | Phole segs -> m.body <- Nleaf { control = Creturn v; pstack = segs }
      | Pleaf s -> m.body <- Nleaf s
      | Pdone -> m.body <- Ndone
      | Pfork pf ->
          let k = Array.length pf.pf_children in
          let f =
            {
              trunk = pf.pf_trunk;
              children = Array.make k m;
              results = Array.copy pf.pf_results;
              pending = Array.fold_left (fun c r -> if r = None then c + 1 else c) 0 pf.pf_results;
            }
          in
          m.body <- Nfork f;
          Array.iteri (fun i child -> f.children.(i) <- rebuild (Pchild (m, i)) child) pf.pf_children);
      m
    in
    match pkt.pkt_tree with
    | Pfork pf ->
        let k = Array.length pf.pf_children in
        let f =
          {
            trunk = pf.pf_trunk @ st.pstack;
            children = Array.make k n;
            results = Array.copy pf.pf_results;
            pending = Array.fold_left (fun c r -> if r = None then c + 1 else c) 0 pf.pf_results;
          }
        in
        n.body <- Nfork f;
        Array.iteri (fun i child -> f.children.(i) <- rebuild (Pchild (n, i)) child) pf.pf_children
    | Phole _ | Pleaf _ | Pdone ->
        (* Captures always package a fork at the top. *)
        assert false
  in

  (* Step one branch for up to [quantum] transitions, or until it blocks on
     a scheduler-level event. *)
  let step_leaf n =
    let rec go st q =
      if !failure <> None then ()
      else if q = 0 || !fuel_left <= 0 then n.body <- Nleaf st
      else
        match st.control with
        | Ceval (Ir.Pcall [], _) -> failure := Some "pcall: expects at least an operator expression"
        | Ceval (Ir.Pcall exprs, env') -> do_fork n st exprs env'
        | Ceval (Ir.Future e, env') ->
            (* Plant an independent tree in the forest; the current branch
               continues immediately with the (pending) future. *)
            Counters.incr counters "concur.future";
            let cell = { fvalue = None } in
            on_event (Ev_future { node = n.nid });
            let fnode =
              {
                nid = fresh_id ();
                parent = Pfut cell;
                body = Nleaf { control = Ceval (e, env'); pstack = Machine.initial_pstack };
              }
            in
            roots := !roots @ [ fnode ];
            go { st with control = Creturn (Future cell) } (q - 1)
        | _ -> (
            decr fuel_left;
            match Machine.step cfg st with
            | Machine.Next st' -> go st' (q - 1)
            | Machine.Final v -> deliver n v
            | Machine.Err msg -> failure := Some msg
            | Machine.Esc_control (l, body_fn) -> do_capture n st l body_fn
            | Machine.Esc_pktree (pkt, v) -> do_graft n st pkt v
            | Machine.Esc_touch _ ->
                (* Still pending: park the branch in the same state; other
                   trees progress and the touch is retried next round. *)
                Counters.incr counters "concur.touch-wait";
                n.body <- Nleaf st)
    in
    match n.body with
    | Nleaf st -> go st quantum
    | Nfork _ | Ndone -> ()
  in

  let round () =
    let leaves = List.rev (List.fold_left collect_leaves [] !roots) in
    match sched with
    | Driven pick ->
        (* Systematic exploration: one decision, one branch, one quantum. *)
        let arr = Array.of_list leaves in
        let count = Array.length arr in
        if count > 0 then begin
          let idx = pick count in
          if idx < 0 || idx >= count then
            failure := Some "scheduler: Driven pick returned an out-of-range index"
          else
            let n = arr.(idx) in
            if !failure = None && !fuel_left > 0 && attached n then step_leaf n
        end
    | Round_robin | Randomized _ ->
        let leaves =
          match rng with
          | None -> leaves
          | Some g ->
              let a = Array.of_list leaves in
              Xorshift.shuffle g a;
              Array.to_list a
        in
        List.iter
          (fun n -> if !failure = None && !fuel_left > 0 && attached n then step_leaf n)
          leaves
  in

  let rec drive () =
    match (!final, !failure) with
    | _, Some msg -> Error msg
    | Some v, None ->
        (* Join-on-exit: finish the remaining independent trees so futures
           created by this program remain touchable afterwards (bounded by
           the remaining fuel). *)
        if drain_futures && List.length !roots > 1 && !fuel_left > 0 then begin
          round ();
          drive ()
        end
        else Value v
    | None, None ->
        if !fuel_left <= 0 then Out_of_fuel
        else begin
          round ();
          drive ()
        end
  in
  drive ()
