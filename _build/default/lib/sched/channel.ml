exception Closed

type 'a t = { buf : 'a Queue.t; capacity : int; mutable closed : bool }

let create ?(capacity = 16) () =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  { buf = Queue.create (); capacity; closed = false }

let rec send ch v =
  if ch.closed then raise Closed
  else if Queue.length ch.buf >= ch.capacity then begin
    Sched.yield ();
    send ch v
  end
  else Queue.add v ch.buf

let try_recv ch = Queue.take_opt ch.buf

let rec recv_opt ch =
  match Queue.take_opt ch.buf with
  | Some v -> Some v
  | None ->
      if ch.closed then None
      else begin
        Sched.yield ();
        recv_opt ch
      end

let recv ch = match recv_opt ch with Some v -> v | None -> raise Closed

let close ch = ch.closed <- true

let is_closed ch = ch.closed

let length ch = Queue.length ch.buf

let rec iter f ch =
  match recv_opt ch with
  | None -> ()
  | Some v ->
      f v;
      iter f ch

let of_producer ?capacity produce =
  let ch = create ?capacity () in
  let _ : unit Sched.future =
    Sched.future (fun () ->
        Fun.protect ~finally:(fun () -> close ch) (fun () -> produce ~send:(send ch)))
  in
  ch
