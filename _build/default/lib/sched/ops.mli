(** The paper's derived concurrency operators (Section 5), over {!Sched}.

    Everything here is built from [spawn], [control] and [pcall] alone,
    which is the paper's point: given [spawn] and a simple forking
    operator, sophisticated concurrency operators are user-level code. *)

type 'a exit = { exit : 'b. 'a -> 'b }

val spawn_exit : ('a exit -> 'a) -> 'a
(** Nonlocal exit delimiting a subtree of the process tree: [e.exit v]
    aborts every branch below the [spawn_exit] and returns [v] from it. *)

val with_exit : (('a -> unit) -> 'a) -> 'a
(** Monomorphic face of {!spawn_exit} (the exit still never returns). *)

val first_true : (unit -> 'a option) list -> 'a option
(** Run the thunks as parallel branches; return the first [Some] produced,
    abandoning all other branches, or [None] if every branch returns
    [None].  This is the paper's [first-true] generalised to [n] branches
    and to carrying a value. *)

val parallel_or : (unit -> bool) list -> bool
(** The paper's [parallel-or]: true as soon as any branch yields true. *)

val parallel_and : (unit -> bool) list -> bool
(** Dual: false as soon as any branch yields false. *)

val parallel_map : ('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every element as parallel branches ([pcall] with the
    identity combiner). *)

(** {1 Parallel tree search with suspension (the paper's Section 5 finale)} *)

type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree

val tree_of_list : 'a list -> 'a tree
(** Balanced tree from a list (for tests and benches). *)

val perfect : depth:int -> (int -> 'a) -> 'a tree
(** Perfect binary tree of the given depth with values from the labeling
    function (in-order positions). *)

type 'a search_stream = Snil | Scons of 'a * (unit -> 'a search_stream)

val parallel_search : 'a tree -> ('a -> bool) -> 'a search_stream
(** Search the tree's branches concurrently; each match suspends the whole
    search (all branches) and delivers the match plus a thunk resuming the
    search — the paper's [parallel-search], with the search state carried
    by a process continuation. *)

val search_all : 'a tree -> ('a -> bool) -> 'a list
(** Drain {!parallel_search}: all matching nodes. *)

val search_first : 'a tree -> ('a -> bool) -> 'a option
(** The first match only; the suspended search is abandoned. *)
