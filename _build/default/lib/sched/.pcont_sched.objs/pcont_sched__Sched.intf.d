lib/sched/sched.mli:
