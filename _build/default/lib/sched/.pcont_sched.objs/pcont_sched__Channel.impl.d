lib/sched/channel.ml: Fun Queue Sched
