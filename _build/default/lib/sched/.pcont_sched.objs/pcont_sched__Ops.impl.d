lib/sched/ops.ml: List Sched
