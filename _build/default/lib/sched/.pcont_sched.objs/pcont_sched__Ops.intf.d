lib/sched/ops.mli:
