lib/sched/channel.mli:
