lib/sched/sched.ml: Array Effect List Option Pcont_util
