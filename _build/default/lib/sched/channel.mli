(** Bounded channels over the cooperative process-tree scheduler.

    The paper's concurrency is fork-and-return; pipelines of communicating
    branches are the natural idiom layered on top of it, and a channel is
    ordinary user-level code: blocking is cooperative ({!Sched.yield} in a
    retry loop), so a branch blocked on a channel can be captured into a
    process continuation and grafted elsewhere like any other branch. *)

type 'a t

exception Closed
(** Raised by {!send} on a closed channel, and by {!recv} on a closed,
    drained channel. *)

val create : ?capacity:int -> unit -> 'a t
(** A channel buffering at most [capacity] elements (default 16; must be
    positive). *)

val send : 'a t -> 'a -> unit
(** Enqueue, yielding while the channel is full. *)

val recv : 'a t -> 'a
(** Dequeue, yielding while the channel is empty. *)

val recv_opt : 'a t -> 'a option
(** Like {!recv} but returns [None] instead of raising once the channel is
    closed and drained — the idiomatic consumer loop condition. *)

val try_recv : 'a t -> 'a option
(** Non-blocking dequeue. *)

val close : 'a t -> unit
(** No further sends; pending elements can still be received. *)

val is_closed : 'a t -> bool

val length : 'a t -> int

val iter : ('a -> unit) -> 'a t -> unit
(** Consume elements until the channel closes. *)

val of_producer : ?capacity:int -> (send:('a -> unit) -> unit) -> 'a t
(** Start a {!Sched.future} running the producer (the channel is closed
    when it returns) and return the channel. *)
