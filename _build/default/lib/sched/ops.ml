type 'a exit = { exit : 'b. 'a -> 'b }

let spawn_exit f =
  Sched.spawn (fun c ->
      let exit v = Sched.control c (fun _pk -> v) in
      f { exit })

let with_exit f = spawn_exit (fun e -> f (fun v -> e.exit v))

let first_true thunks =
  spawn_exit (fun e ->
      let branch thunk () =
        match thunk () with Some v -> e.exit (Some v) | None -> ()
      in
      ignore (Sched.pcall (List.map branch thunks));
      None)

let parallel_or thunks =
  match first_true (List.map (fun t () -> if t () then Some true else None) thunks) with
  | Some b -> b
  | None -> false

let parallel_map f xs = Sched.pcall (List.map (fun x () -> f x) xs)

let parallel_and thunks =
  not (parallel_or (List.map (fun t () -> not (t ())) thunks))

type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree

let rec tree_of_list = function
  | [] -> Leaf
  | xs ->
      let n = List.length xs in
      let rec split i acc = function
        | x :: rest when i > 0 -> split (i - 1) (x :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let left, rest = split (n / 2) [] xs in
      (match rest with
      | [] -> assert false
      | x :: right -> Node (tree_of_list left, x, tree_of_list right))

let perfect ~depth label =
  let counter = ref 0 in
  let rec build d =
    if d = 0 then Leaf
    else
      let l = build (d - 1) in
      let v =
        let i = !counter in
        incr counter;
        label i
      in
      let r = build (d - 1) in
      Node (l, v, r)
  in
  build depth

type 'a search_stream = Snil | Scons of 'a * (unit -> 'a search_stream)

(* The paper's parallel-search: before starting, set up a controller used
   to suspend the whole search when a match is found; search the two
   subtrees of every node concurrently with pcall. *)
let parallel_search tree pred =
  Sched.spawn (fun c ->
      let rec search t =
        match t with
        | Leaf -> ()
        | Node (l, v, r) ->
            Sched.yield ();
            ignore
              (Sched.pcall
                 [
                   (fun () ->
                     if pred v then
                       Sched.control c (fun k ->
                           Scons (v, fun () -> Sched.resume k ())));
                   (fun () -> search l);
                   (fun () -> search r);
                 ])
      in
      search tree;
      Snil)

let search_all tree pred =
  let rec drain acc = function
    | Snil -> List.rev acc
    | Scons (v, rest) -> drain (v :: acc) (rest ())
  in
  drain [] (parallel_search tree pred)

let search_first tree pred =
  match parallel_search tree pred with Snil -> None | Scons (v, _) -> Some v
