type 'a t = { co : (unit, 'a option) Coroutine.t }

let create body =
  {
    co =
      Coroutine.create (fun ~yield () ->
          body ~yield:(fun x -> ignore (yield (Some x)));
          None);
  }

let next g =
  if Coroutine.is_finished g.co then None
  else
    match Coroutine.resume g.co () with
    | Coroutine.Yielded v -> v
    | Coroutine.Returned v -> v

let rec iter f g =
  match next g with
  | None -> ()
  | Some x ->
      f x;
      iter f g

let rec fold f acc g =
  match next g with None -> acc | Some x -> fold f (f acc x) g

let to_list g = List.rev (fold (fun acc x -> x :: acc) [] g)

let of_list xs = create (fun ~yield -> List.iter yield xs)

let take n g =
  let rec go n acc =
    if n = 0 then List.rev acc
    else match next g with None -> List.rev acc | Some x -> go (n - 1) (x :: acc)
  in
  go n []

let map f g = create (fun ~yield -> iter (fun x -> yield (f x)) g)

let filter p g = create (fun ~yield -> iter (fun x -> if p x then yield x) g)

let ints ?(from = 0) () =
  create (fun ~yield ->
      let rec go i =
        yield i;
        go (i + 1)
      in
      go from)

let to_seq g =
  let rec seq () = match next g with None -> Seq.Nil | Some x -> Seq.Cons (x, seq) in
  seq

let of_seq s = create (fun ~yield -> Seq.iter yield s)

let append a b =
  create (fun ~yield ->
      iter yield a;
      iter yield b)

let zip a b =
  create (fun ~yield ->
      let rec go () =
        match (next a, next b) with
        | Some x, Some y ->
            yield (x, y);
            go ()
        | _ -> ()
      in
      go ())

let take_while p g =
  let rec go acc =
    match next g with
    | Some x when p x -> go (x :: acc)
    | _ -> List.rev acc
  in
  go []
