exception Dead_exit

type 'a exit = { exit : 'b. 'a -> 'b }

let spawn_exit f =
  Spawn.spawn (fun c ->
      let exit v =
        (* The real controller is invoked with a procedure that discards
           the process continuation and returns the exit value, exactly as
           in the paper's definition of spawn/exit. *)
        try
          Spawn.control c (fun k ->
              Spawn.abandon k;
              v)
        with Spawn.Dead_controller -> raise Dead_exit
      in
      f { exit })

let with_exit f = spawn_exit (fun e -> f (fun v -> e.exit v))
