exception No_prompt

module Make (Answer : sig
  type t
end) =
struct
  type 'a fk = ('a, Answer.t) Spawn.subcont

  (* The dynamic stack of live prompts: innermost first.  Entries are
     identified physically so a prompt's epilogue removes exactly its own
     entry, wherever interleaved resumptions have left it. *)
  type entry = { controller : Answer.t Spawn.controller }

  let stack : entry list ref = ref []

  let remove entry = stack := List.filter (fun e -> not (e == entry)) !stack

  let prompt thunk =
    Spawn.spawn (fun c ->
        let entry = { controller = c } in
        stack := entry :: !stack;
        let v = thunk () in
        remove entry;
        v)

  let fcontrol body =
    match !stack with
    | [] -> raise No_prompt
    | entry :: _ ->
        Spawn.control entry.controller (fun k ->
            (* The aborted prompt's extent is gone; its entry with it.  The
               prompt is re-established around the body, per the rewrite
               #E[F f] -> #(f (lambda (x) E[x])). *)
            remove entry;
            prompt (fun () -> body k))

  let resume k v = Spawn.resume k v
end
