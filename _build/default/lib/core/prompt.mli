(** Felleisen's prompt ([#]) and functional continuations ([F]), derived
    from [spawn].

    Section 4 observes that "one can think of spawn as a version of # that
    creates a new F each time it is used".  This module runs the
    construction in the other direction: given [spawn], the {e shadowing}
    pair [#]/[F] is user-level code — each [prompt] pushes its controller
    onto a dynamic stack, and [fcontrol] always captures to the innermost
    one, which is exactly the shadowing the paper criticises ("prompts
    replace the problem of capturing too much of a continuation with the
    problem of capturing too little").

    Prompts are classically typed at a fixed answer type, so the module is
    a functor over it.  The functional continuation passed to [fcontrol]'s
    argument is composable and does not carry the prompt (Felleisen 1988:
    [#E\[F f\] → #(f (λx. E\[x\]))] — the prompt stays around the body,
    not inside the captured [E]).  One-shot, like everything in the native
    embedding. *)

exception No_prompt
(** [fcontrol] was applied with no prompt in the current dynamic extent. *)

module Make (Answer : sig
  type t
end) : sig
  type 'a fk
  (** The functional continuation from an [fcontrol] application point back
      to (but not including) the nearest prompt. *)

  val prompt : (unit -> Answer.t) -> Answer.t
  (** Establish a prompt (the [#] operator) around the thunk. *)

  val fcontrol : ('a fk -> Answer.t) -> 'a
  (** Capture the continuation up to the nearest prompt, abort it, and run
      the body in its place — with the prompt re-established around it. *)

  val resume : 'a fk -> 'a -> Answer.t
  (** Compose the captured continuation with the current one; does not
      reinstate any prompt. *)
end
