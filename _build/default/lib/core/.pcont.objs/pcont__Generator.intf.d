lib/core/generator.mli: Seq
