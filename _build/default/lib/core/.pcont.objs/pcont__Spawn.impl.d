lib/core/spawn.ml: Effect Fun
