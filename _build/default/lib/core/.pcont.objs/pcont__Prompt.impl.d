lib/core/prompt.ml: List Spawn
