lib/core/exit.mli:
