lib/core/engine.mli:
