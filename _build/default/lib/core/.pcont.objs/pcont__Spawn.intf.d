lib/core/spawn.mli:
