lib/core/generator.ml: Coroutine List Seq
