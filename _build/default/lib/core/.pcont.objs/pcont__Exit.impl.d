lib/core/exit.ml: Spawn
