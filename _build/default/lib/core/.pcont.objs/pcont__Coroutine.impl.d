lib/core/coroutine.ml: Spawn
