lib/core/prompt.mli:
