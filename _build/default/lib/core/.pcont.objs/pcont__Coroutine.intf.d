lib/core/coroutine.mli:
