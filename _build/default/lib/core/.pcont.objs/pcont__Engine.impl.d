lib/core/engine.ml: List Spawn
