(** Nonlocal exits — the paper's [spawn/exit] (Section 5).

    [spawn_exit f] runs [f] with an exit procedure that can be used only to
    abort the computation delimited by the [spawn_exit] call and return a
    value; the process continuation is thrown away, so the aborted
    computation cannot be resumed and the exit procedure becomes invalid as
    soon as [f] returns or exits. *)

exception Dead_exit
(** Raised when an exit procedure escapes and is used after its extent has
    ended. *)

type 'a exit = { exit : 'b. 'a -> 'b }
(** Calling [e.exit v] never returns. *)

val spawn_exit : ('a exit -> 'a) -> 'a
(** [spawn_exit (fun e -> body)] evaluates [body]; [e.exit v] aborts it and
    makes [spawn_exit] return [v] immediately. *)

val with_exit : (('a -> unit) -> 'a) -> 'a
(** A simpler face of {!spawn_exit} for callers who do not need the exit
    call to typecheck at an arbitrary type: [with_exit (fun exit -> body)].
    The [exit] function still never actually returns. *)
