open Effect
open Effect.Deep

exception Dead_controller

exception Expired_subcont

exception Abandoned_process

type ('a, 'r) subcont = {
  mutable taken : bool;
  k : ('a, 'r) continuation;
}

(* A controller is a polymorphic capture operation: each application may be
   at a different answer type 'a, as in the paper. *)
type 'r controller = { ctl : 'a. (('a, 'r) subcont -> 'r) -> 'a }

let spawn (type r) (f : r controller -> r) : r =
  (* The fresh effect constructor is the root's unique label: only this
     spawn's handler recognizes it, and nested spawns' handlers pass it
     through to the next enclosing handler. *)
  let module M = struct
    type _ Effect.t += Control : (('a, r) subcont -> r) -> 'a Effect.t
  end in
  let controller =
    {
      ctl =
        (fun body ->
          try perform (M.Control body)
          with Effect.Unhandled (M.Control _) -> raise Dead_controller);
    }
  in
  match_with f controller
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | M.Control body ->
              Some
                (fun (k : (b, r) continuation) -> body { taken = false; k })
          | _ -> None);
    }

let control c body = c.ctl body

let resume sc v =
  if sc.taken then raise Expired_subcont
  else begin
    sc.taken <- true;
    continue sc.k v
  end

let abandon sc =
  if not sc.taken then begin
    sc.taken <- true;
    (* Unwind the captured stack; the Abandoned_process exception surfaces
       at the capture point inside the (reinstated) process, and whatever
       it propagates to is discarded. *)
    match discontinue sc.k Abandoned_process with
    | _ -> ()
    | exception Abandoned_process -> ()
  end

let is_valid sc = not sc.taken
