type 'o status = Yielded of 'o | Returned of 'o

exception Finished

type ('i, 'o) state =
  | Unstarted of (yield:('o -> 'i) -> 'i -> 'o)
  | Suspended of ('i, 'o status) Spawn.subcont
  | Running
  | Done

type ('i, 'o) t = { mutable state : ('i, 'o) state }

let create body = { state = Unstarted body }

let resume co i =
  match co.state with
  | Running -> invalid_arg "Coroutine.resume: coroutine is already running"
  | Done -> raise Finished
  | Unstarted body ->
      co.state <- Running;
      Spawn.spawn (fun c ->
          let yield o =
            Spawn.control c (fun k ->
                co.state <- Suspended k;
                Yielded o)
          in
          let r = body ~yield i in
          co.state <- Done;
          Returned r)
  | Suspended k ->
      co.state <- Running;
      Spawn.resume k i

let is_finished co = match co.state with Done -> true | _ -> false
