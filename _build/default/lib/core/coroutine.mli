(** Asymmetric coroutines built on process continuations.

    A coroutine consumes values of type ['i] and produces values of type
    ['o].  Each [resume] runs the coroutine until it either [yield]s or
    returns; the paper's point (Section 3) is that such process
    abstractions need the capture of {e the coroutine's own} continuation,
    not the whole program's — which is exactly what a controller provides,
    with no global protocol. *)

type ('i, 'o) t

type 'o status =
  | Yielded of 'o  (** the coroutine suspended at a [yield] *)
  | Returned of 'o  (** the coroutine's body returned *)

exception Finished
(** Raised by {!resume} if the coroutine has already returned. *)

val create : (yield:('o -> 'i) -> 'i -> 'o) -> ('i, 'o) t
(** [create body] makes a coroutine; [body ~yield i] receives the first
    [resume] argument and may call [yield o] to suspend, which returns the
    next [resume] argument. *)

val resume : ('i, 'o) t -> 'i -> 'o status

val is_finished : ('i, 'o) t -> bool
