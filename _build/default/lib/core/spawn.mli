(** Process continuations in direct-style OCaml, via effect handlers.

    [spawn f] runs [f] as a process, establishing a {e root} that delimits
    the process's extent and passing [f] a {e process controller}.
    [control c body] captures and aborts the current continuation back to
    (and including) [c]'s root and applies [body] to the resulting
    {e process continuation} outside the root; [resume pk v] composes the
    captured subcomputation onto the current continuation, reinstating the
    root (so [c] becomes valid again) and returning [v] to the capture
    point.

    The embedding maps the paper's semantics onto OCaml 5 deep handlers:
    each [spawn] mints a fresh effect constructor (the root's label), the
    deep handler is the labeled stack segment, and the handler's
    reinstatement on [continue] is exactly the reinstatement of the root.

    {b One-shot restriction.} OCaml effect-handler continuations are
    one-shot, so unlike the paper's process continuations (and unlike the
    machine implementations in [Pcont_machine] and [Pcont_pstack], which
    are multi-shot), a [subcont] here may be resumed at most once;
    violating this raises {!Expired_subcont}. *)

type ('a, 'r) subcont
(** The rest of a process, from a [control] application back to (and
    including) its root.  Resuming with an ['a] eventually produces the
    process's result ['r]. *)

type 'r controller
(** A process controller for a process whose result type is ['r].  A
    controller may be applied at any answer type ['a], once per extent of
    its root. *)

exception Dead_controller
(** Raised when a controller is applied while its root is not in the
    current continuation — after the process returned normally, or after a
    previous [control] removed the root (and it has not been reinstated by
    resuming the process continuation). *)

exception Expired_subcont
(** Raised when a process continuation is resumed a second time. *)

exception Abandoned_process
(** Raised inside a process when its pending continuation is explicitly
    discarded with {!abandon}. *)

val spawn : ('r controller -> 'r) -> 'r
(** [spawn f] invokes [f] as a process.  Returns [f]'s normal return value,
    or the value produced by a [control body] escaping through the root. *)

val control : 'r controller -> (('a, 'r) subcont -> 'r) -> 'a
(** [control c body] captures the current continuation up to and including
    [c]'s root, aborts it, and applies [body] to it {e outside} the root;
    [body]'s result becomes the result of the [spawn] that created [c].
    The call itself returns only if the captured continuation is later
    resumed, with the value passed to {!resume}.

    @raise Dead_controller if [c]'s root is not in the current
    continuation. *)

val resume : ('a, 'r) subcont -> 'a -> 'r
(** [resume k v] composes the captured process with the current
    continuation: the capture point returns [v], the root is reinstated,
    and [resume] itself returns the process's eventual result.

    @raise Expired_subcont on a second resumption. *)

val abandon : ('a, 'r) subcont -> unit
(** Discard a process continuation without resuming it, unwinding the
    captured stack by raising {!Abandoned_process} at the capture point (so
    OCaml resources held by the captured frames are released).  Idempotent
    on already-used continuations. *)

val is_valid : ('a, 'r) subcont -> bool
(** Whether the continuation is still resumable. *)
