(** Generators: one-directional coroutines producing a stream of values. *)

type 'a t

val create : (yield:('a -> unit) -> unit) -> 'a t
(** [create body] makes a generator; [body ~yield] calls [yield x] for each
    element to produce. *)

val next : 'a t -> 'a option
(** The next element, or [None] once the body has returned.  Subsequent
    calls keep returning [None]. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Consume all remaining elements. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val take : int -> 'a t -> 'a list
(** Up to [n] further elements; the generator can be consumed further
    afterwards (useful for infinite generators). *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Lazily transform the remaining elements of a generator. *)

val filter : ('a -> bool) -> 'a t -> 'a t

val ints : ?from:int -> unit -> int t
(** The infinite generator of consecutive integers. *)

val to_seq : 'a t -> 'a Seq.t
(** The remaining elements as a standard (ephemeral) sequence; consuming
    the sequence consumes the generator. *)

val of_seq : 'a Seq.t -> 'a t

val append : 'a t -> 'a t -> 'a t
(** All elements of the first generator, then all of the second. *)

val zip : 'a t -> 'b t -> ('a * 'b) t
(** Pairs until either generator is exhausted. *)

val take_while : ('a -> bool) -> 'a t -> 'a list
(** Elements up to (excluding) the first that fails the predicate; the
    failing element is consumed. *)
