type 'a outcome = Done of 'a * int | Expired of 'a t

and 'a state =
  | Unstarted of (tick:(unit -> unit) -> 'a)
  | Suspended of (unit, 'a outcome) Spawn.subcont
  | Consumed

and 'a t = { fuel_cell : int ref; mutable state : 'a state }

exception Engine_used

let make body = { fuel_cell = ref 0; state = Unstarted body }

let run e ~fuel =
  if fuel <= 0 then invalid_arg "Engine.run: fuel must be positive";
  e.fuel_cell := fuel;
  match e.state with
  | Consumed -> raise Engine_used
  | Suspended k ->
      e.state <- Consumed;
      Spawn.resume k ()
  | Unstarted body ->
      e.state <- Consumed;
      let cell = e.fuel_cell in
      Spawn.spawn (fun c ->
          let tick () =
            if !cell <= 0 then
              (* Fuel exhausted: capture the rest of the computation back
                 to this engine's root and hand it out as a new engine.
                 The subsequent run resumes the continuation, reinstating
                 the root so later ticks remain valid. *)
              Spawn.control c (fun k ->
                  Expired { fuel_cell = cell; state = Suspended k })
            else decr cell
          in
          let v = body ~tick in
          Done (v, !cell))

let run_to_completion ?(fuel_per_slice = 64) e =
  let rec go e slices =
    match run e ~fuel:fuel_per_slice with
    | Done (v, _) -> (v, slices)
    | Expired e' -> go e' (slices + 1)
  in
  go e 1

let round_robin engines ~fuel =
  let rec go pending finished =
    match pending with
    | [] -> List.rev finished
    | e :: rest -> (
        match run e ~fuel with
        | Done (v, _) -> go rest (v :: finished)
        | Expired e' -> go (rest @ [ e' ]) finished)
  in
  go engines []
