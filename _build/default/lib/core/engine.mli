(** Engines: fuel-bounded computations (Dybvig & Hieb, "Engines from
    Continuations", 1989 — reference [6] of the paper).

    An engine runs a computation for a bounded amount of fuel.  If the
    computation finishes first, [run] reports its value and the unused
    fuel; otherwise it reports a {e new} engine denoting the rest of the
    computation.  The paper cites engines as a process abstraction whose
    continuation-based implementation needs exactly the delimited capture
    a controller provides.

    Fuel is consumed cooperatively: engine code must call the [tick]
    procedure it is given at progress points (the classic construction
    hooks timer interrupts; a sealed, deterministic reproduction uses
    explicit ticks). *)

type 'a t

type 'a outcome =
  | Done of 'a * int  (** finished; carries the unused fuel *)
  | Expired of 'a t  (** fuel exhausted; the engine denotes the rest *)

exception Engine_used
(** Raised when running an engine that has already been run (engines are
    one-shot in this embedding; see {!Spawn}). *)

val make : (tick:(unit -> unit) -> 'a) -> 'a t
(** [make body] creates an engine; [body ~tick] must call [tick ()] at
    progress points, each call consuming one unit of fuel. *)

val run : 'a t -> fuel:int -> 'a outcome
(** Run the engine with the given fuel.  [fuel] must be positive. *)

val run_to_completion : ?fuel_per_slice:int -> 'a t -> 'a * int
(** Repeatedly {!run} until done; returns the value and the number of
    slices used.  Useful for round-robin timesharing tests. *)

val round_robin : 'a t list -> fuel:int -> 'a list
(** Timeshare a list of engines, giving each [fuel] per turn, until all
    complete; results are returned in completion order. *)
