open Term

let rec pp_term ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Bool true -> Format.fprintf ppf "#t"
  | Bool false -> Format.fprintf ppf "#f"
  | Unit -> Format.fprintf ppf "#!void"
  | Nil -> Format.fprintf ppf "'()"
  | Prim p -> Format.fprintf ppf "%s" (prim_name p)
  | Papp (p, args) ->
      Format.fprintf ppf "@[<hov 1>(partial %s%a)@]" (prim_name p) pp_args args
  | Pair (a, d) -> Format.fprintf ppf "@[<hov 1>(cons@ %a@ %a)@]" pp_term a pp_term d
  | Var x -> Format.fprintf ppf "%s" x
  | Lam (x, body) -> Format.fprintf ppf "@[<hov 1>(lambda (%s)@ %a)@]" x pp_term body
  | Fix (f, x, body) ->
      Format.fprintf ppf "@[<hov 1>(rec (%s %s)@ %a)@]" f x pp_term body
  | App (e1, e2) -> Format.fprintf ppf "@[<hov 1>(%a%a)@]" pp_term e1 pp_args [ e2 ]
  | If (e1, e2, e3) ->
      Format.fprintf ppf "@[<hov 1>(if %a@ %a@ %a)@]" pp_term e1 pp_term e2 pp_term e3
  | Label (l, e) -> Format.fprintf ppf "@[<hov 1>(label %d@ %a)@]" l pp_term e
  | Control (e, l) -> Format.fprintf ppf "@[<hov 1>(control %a@ %d)@]" pp_term e l
  | Spawn e -> Format.fprintf ppf "@[<hov 1>(spawn@ %a)@]" pp_term e

and pp_args ppf = function
  | [] -> ()
  | a :: rest ->
      Format.fprintf ppf "@ %a" pp_term a;
      pp_args ppf rest

let term_to_string t = Format.asprintf "%a" pp_term t
