(** A focused (zipper) evaluator for the Section 6 calculus.

    {!Step.step} re-decomposes the whole program on every transition, which
    is faithful to the rewriting presentation but costs O(program) per
    step.  This evaluator keeps the decomposition — an evaluation context
    and the focused subterm — across steps, so each transition is O(1)
    except for the work the rule itself demands (substitution; the context
    split of rule (3), which is linear in the {e inner} context only).

    The two evaluators implement the same rules and are differentially
    tested against each other; the only permitted difference is the
    identity of fresh labels (this evaluator draws them from a counter
    seeded above every label in the program, which satisfies the same
    freshness side condition as scanning the whole program). *)

val eval : ?fuel:int -> Term.term -> Eval.outcome
(** Fuel default: 1_000_000 transitions. *)

val eval_exn : ?fuel:int -> Term.term -> Term.term

val steps_to_value : ?fuel:int -> Term.term -> int option
(** Number of transitions to reach a value.  Note: "transitions" counts
    focus movements as well as rule applications, so it is an upper bound
    on (and generally larger than) {!Eval.steps_to_value}'s rewrite
    count. *)
