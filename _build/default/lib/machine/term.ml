type label = int

type prim =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Lt
  | Leq
  | Not
  | Cons
  | Car
  | Cdr
  | Is_null
  | Is_pair
  | Is_zero

type term =
  | Int of int
  | Bool of bool
  | Unit
  | Nil
  | Prim of prim
  | Papp of prim * term list
  | Pair of term * term
  | Var of string
  | Lam of string * term
  | Fix of string * string * term
  | App of term * term
  | If of term * term * term
  | Label of label * term
  | Control of term * label
  | Spawn of term

let prim_arity = function
  | Add | Sub | Mul | Div | Eq | Lt | Leq | Cons -> 2
  | Not | Car | Cdr | Is_null | Is_pair | Is_zero -> 1

let prim_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "quotient"
  | Eq -> "="
  | Lt -> "<"
  | Leq -> "<="
  | Not -> "not"
  | Cons -> "cons"
  | Car -> "car"
  | Cdr -> "cdr"
  | Is_null -> "null?"
  | Is_pair -> "pair?"
  | Is_zero -> "zero?"

let rec is_value = function
  | Int _ | Bool _ | Unit | Nil | Prim _ | Lam _ | Fix _ -> true
  | Papp (_, args) -> List.for_all is_value args
  | Pair (a, d) -> is_value a && is_value d
  | Var _ | App _ | If _ | Label _ | Control _ | Spawn _ -> false

let free_vars e =
  let tbl = Hashtbl.create 16 in
  let rec go bound = function
    | Int _ | Bool _ | Unit | Nil | Prim _ -> ()
    | Papp (_, args) -> List.iter (go bound) args
    | Pair (a, d) ->
        go bound a;
        go bound d
    | Var x -> if not (List.mem x bound) then Hashtbl.replace tbl x ()
    | Lam (x, body) -> go (x :: bound) body
    | Fix (f, x, body) -> go (f :: x :: bound) body
    | App (e1, e2) ->
        go bound e1;
        go bound e2
    | If (e1, e2, e3) ->
        go bound e1;
        go bound e2;
        go bound e3
    | Label (_, e) | Control (e, _) | Spawn e -> go bound e
  in
  go [] e;
  tbl

let is_closed e = Hashtbl.length (free_vars e) = 0

(* Fresh-variable renaming for capture avoidance.  The suffix uses a
   character that the example programs never use in identifiers. *)
let rename_counter = ref 0

let rename_var x =
  incr rename_counter;
  Printf.sprintf "%s%%%d" x !rename_counter

let rec subst x v e =
  match e with
  | Int _ | Bool _ | Unit | Nil | Prim _ -> e
  | Papp (p, args) -> Papp (p, List.map (subst x v) args)
  | Pair (a, d) -> Pair (subst x v a, subst x v d)
  | Var y -> if String.equal x y then v else e
  | Lam (y, body) ->
      if String.equal x y then e
      else if Hashtbl.mem (free_vars v) y then
        let y' = rename_var y in
        Lam (y', subst x v (subst y (Var y') body))
      else Lam (y, subst x v body)
  | Fix (f, y, body) ->
      if String.equal x f || String.equal x y then e
      else
        let fv = free_vars v in
        let f', body =
          if Hashtbl.mem fv f then
            let f' = rename_var f in
            (f', subst f (Var f') body)
          else (f, body)
        in
        let y', body =
          if Hashtbl.mem fv y then
            let y' = rename_var y in
            (y', subst y (Var y') body)
          else (y, body)
        in
        Fix (f', y', subst x v body)
  | App (e1, e2) -> App (subst x v e1, subst x v e2)
  | If (e1, e2, e3) -> If (subst x v e1, subst x v e2, subst x v e3)
  | Label (l, e1) -> Label (l, subst x v e1)
  | Control (e1, l) -> Control (subst x v e1, l)
  | Spawn e1 -> Spawn (subst x v e1)

let rec max_label = function
  | Int _ | Bool _ | Unit | Nil | Prim _ | Var _ -> -1
  | Papp (_, args) -> List.fold_left (fun m a -> max m (max_label a)) (-1) args
  | Pair (a, d) -> max (max_label a) (max_label d)
  | Lam (_, body) -> max_label body
  | Fix (_, _, body) -> max_label body
  | App (e1, e2) -> max (max_label e1) (max_label e2)
  | If (e1, e2, e3) -> max (max_label e1) (max (max_label e2) (max_label e3))
  | Label (l, e) -> max l (max_label e)
  | Control (e, l) -> max l (max_label e)
  | Spawn e -> max_label e

let labels_of e =
  let rec go acc = function
    | Int _ | Bool _ | Unit | Nil | Prim _ | Var _ -> acc
    | Papp (_, args) -> List.fold_left go acc args
    | Pair (a, d) -> go (go acc a) d
    | Lam (_, body) | Fix (_, _, body) -> go acc body
    | App (e1, e2) -> go (go acc e1) e2
    | If (e1, e2, e3) -> go (go (go acc e1) e2) e3
    | Label (l, e) -> go (l :: acc) e
    | Control (e, l) -> go (l :: acc) e
    | Spawn e -> go acc e
  in
  List.sort_uniq compare (go [] e)

let rec size = function
  | Int _ | Bool _ | Unit | Nil | Prim _ | Var _ -> 1
  | Papp (_, args) -> List.fold_left (fun n a -> n + size a) 1 args
  | Pair (a, d) -> 1 + size a + size d
  | Lam (_, body) | Fix (_, _, body) -> 1 + size body
  | App (e1, e2) -> 1 + size e1 + size e2
  | If (e1, e2, e3) -> 1 + size e1 + size e2 + size e3
  | Label (_, e) | Control (e, _) | Spawn e -> 1 + size e

let lam x body = Lam (x, body)

let app e1 e2 = App (e1, e2)

let app2 e1 e2 e3 = App (App (e1, e2), e3)

let lams xs body = List.fold_right (fun x acc -> Lam (x, acc)) xs body

let apps f args = List.fold_left (fun acc a -> App (acc, a)) f args

let let_ x e body = App (Lam (x, body), e)

let seq e1 e2 = App (Lam ("_", e2), e1)

let list_of vs = List.fold_right (fun v acc -> Pair (v, acc)) vs Nil

let prim1 p e = App (Prim p, e)

let prim2 p e1 e2 = App (App (Prim p, e1), e2)
