open Term

type redex =
  | Rbeta of string * Term.term * Term.term
  | Rfix of string * string * Term.term * Term.term
  | Rdelta of Term.prim * Term.term list
  | Rpartial of Term.prim * Term.term list
  | Rlabel_return of Term.label * Term.term
  | Rcontrol of Term.term * Term.label
  | Rspawn of Term.term
  | Rif of bool * Term.term * Term.term

let redex_rule = function
  | Rbeta _ -> "beta"
  | Rfix _ -> "fix"
  | Rdelta _ -> "delta"
  | Rpartial _ -> "partial"
  | Rlabel_return _ -> "label-return"
  | Rcontrol _ -> "control"
  | Rspawn _ -> "spawn"
  | Rif _ -> "if"

type decomposition = Value | Decomp of Ctx.t * redex | Ill_formed of string

let classify_app v1 v2 =
  match v1 with
  | Lam (x, body) -> Ok (Rbeta (x, body, v2))
  | Fix (f, x, body) -> Ok (Rfix (f, x, body, v2))
  | Prim p ->
      if prim_arity p = 1 then Ok (Rdelta (p, [ v2 ])) else Ok (Rpartial (p, [ v2 ]))
  | Papp (p, args) ->
      let args = args @ [ v2 ] in
      if List.length args = prim_arity p then Ok (Rdelta (p, args))
      else if List.length args < prim_arity p then Ok (Rpartial (p, args))
      else Error ("primitive applied to too many arguments: " ^ prim_name p)
  | _ -> Error ("application of a non-procedure: " ^ Pp.term_to_string v1)

let decompose program =
  let rec find c e =
    match e with
    | App (e1, e2) ->
        if not (is_value e1) then find (Ctx.Fapp_fun e2 :: c) e1
        else if not (is_value e2) then find (Ctx.Fapp_arg e1 :: c) e2
        else begin
          match classify_app e1 e2 with
          | Ok r -> Decomp (c, r)
          | Error msg -> Ill_formed msg
        end
    | If (e1, e2, e3) ->
        if not (is_value e1) then find (Ctx.Fif (e2, e3) :: c) e1
        else begin
          match e1 with
          | Bool b -> Decomp (c, Rif (b, e2, e3))
          | v -> Ill_formed ("if: non-boolean test " ^ Pp.term_to_string v)
        end
    | Label (l, e1) ->
        if is_value e1 then Decomp (c, Rlabel_return (l, e1))
        else find (Ctx.Flabel l :: c) e1
    | Control (e1, l) -> Decomp (c, Rcontrol (e1, l))
    | Spawn e1 ->
        if is_value e1 then Decomp (c, Rspawn e1) else find (Ctx.Fspawn :: c) e1
    | Var x -> Ill_formed ("free variable: " ^ x)
    | Int _ | Bool _ | Unit | Nil | Prim _ | Papp _ | Pair _ | Lam _ | Fix _ ->
        (* Only reachable for the whole program, since [find] never recurses
           into a value position. *)
        Value
  in
  if is_value program then Value else find [] program

let delta p args =
  match (p, args) with
  | Add, [ Int a; Int b ] -> Ok (Int (a + b))
  | Sub, [ Int a; Int b ] -> Ok (Int (a - b))
  | Mul, [ Int a; Int b ] -> Ok (Int (a * b))
  | Div, [ Int _; Int 0 ] -> Error "quotient: division by zero"
  | Div, [ Int a; Int b ] -> Ok (Int (a / b))
  | Eq, [ Int a; Int b ] -> Ok (Bool (a = b))
  | Lt, [ Int a; Int b ] -> Ok (Bool (a < b))
  | Leq, [ Int a; Int b ] -> Ok (Bool (a <= b))
  | Not, [ Bool b ] -> Ok (Bool (not b))
  | Cons, [ a; d ] -> Ok (Pair (a, d))
  | Car, [ Pair (a, _) ] -> Ok a
  | Car, [ v ] -> Error ("car: not a pair: " ^ Pp.term_to_string v)
  | Cdr, [ Pair (_, d) ] -> Ok d
  | Cdr, [ v ] -> Error ("cdr: not a pair: " ^ Pp.term_to_string v)
  | Is_null, [ Nil ] -> Ok (Bool true)
  | Is_null, [ _ ] -> Ok (Bool false)
  | Is_pair, [ Pair _ ] -> Ok (Bool true)
  | Is_pair, [ _ ] -> Ok (Bool false)
  | Is_zero, [ Int n ] -> Ok (Bool (n = 0))
  | Is_zero, [ v ] -> Error ("zero?: not an integer: " ^ Pp.term_to_string v)
  | _ -> Error ("primitive type error: " ^ prim_name p)

type result = Finished of Term.term | Next of Term.term * string | Stuck of string

(* Contract a redex in its context.  Rule (3) and the spawn rule are the only
   ones that inspect the context. *)
let contract ctx redex =
  match redex with
  | Rbeta (x, body, v) -> Ok (Ctx.plug ctx (subst x v body))
  | Rfix (f, x, body, v) ->
      Ok (Ctx.plug ctx (subst x v (subst f (Fix (f, x, body)) body)))
  | Rdelta (p, args) -> (
      match delta p args with
      | Ok v -> Ok (Ctx.plug ctx v)
      | Error msg -> Error msg)
  | Rpartial (p, args) -> Ok (Ctx.plug ctx (Papp (p, args)))
  | Rlabel_return (_, v) -> Ok (Ctx.plug ctx v)
  | Rif (b, e2, e3) -> Ok (Ctx.plug ctx (if b then e2 else e3))
  | Rcontrol (e, l) -> (
      match Ctx.split_at_label l ctx with
      | None ->
          Error
            (Printf.sprintf
               "invalid controller application: no root labeled %d in the \
                current continuation"
               l)
      | Some (inner, outer) ->
          let x = rename_var "k" in
          let pk = Lam (x, Label (l, Ctx.plug inner (Var x))) in
          Ok (Ctx.plug outer (App (e, pk))))
  | Rspawn v ->
      let whole = Ctx.plug ctx (Spawn v) in
      let l = max_label whole + 1 in
      let x = rename_var "x" in
      Ok (Ctx.plug ctx (Label (l, App (v, Lam (x, Control (Var x, l))))))

let step ?stats program =
  match decompose program with
  | Value -> Finished program
  | Ill_formed msg -> Stuck msg
  | Decomp (ctx, redex) -> (
      let rule = redex_rule redex in
      match contract ctx redex with
      | Ok next ->
          Option.iter (fun c -> Pcont_util.Counters.incr c rule) stats;
          Next (next, rule)
      | Error msg -> Stuck msg)
