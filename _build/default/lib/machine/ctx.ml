type frame =
  | Fapp_fun of Term.term
  | Fapp_arg of Term.term
  | Flabel of Term.label
  | Fif of Term.term * Term.term
  | Fspawn

type t = frame list

let plug_frame f e =
  match f with
  | Fapp_fun arg -> Term.App (e, arg)
  | Fapp_arg fn -> Term.App (fn, e)
  | Flabel l -> Term.Label (l, e)
  | Fif (e2, e3) -> Term.If (e, e2, e3)
  | Fspawn -> Term.Spawn e

let plug c e = List.fold_left (fun acc f -> plug_frame f acc) e c

let split_at_label l c =
  let rec go inner = function
    | [] -> None
    | Flabel l' :: outer when l' = l -> Some (List.rev inner, outer)
    | f :: rest -> go (f :: inner) rest
  in
  go [] c

let labels c = List.filter_map (function Flabel l -> Some l | _ -> None) c

let pp ppf c =
  let pp_frame ppf = function
    | Fapp_fun e -> Format.fprintf ppf "(HOLE %a)" Pp.pp_term e
    | Fapp_arg v -> Format.fprintf ppf "(%a HOLE)" Pp.pp_term v
    | Flabel l -> Format.fprintf ppf "(label %d HOLE)" l
    | Fif (e2, e3) -> Format.fprintf ppf "(if HOLE %a %a)" Pp.pp_term e2 Pp.pp_term e3
    | Fspawn -> Format.fprintf ppf "(spawn HOLE)"
  in
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_frame) c
