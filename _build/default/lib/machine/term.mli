(** Terms of the Section 6 calculus.

    The paper extends the call-by-value λ-calculus with labeled expressions
    [l : e] and control expressions [e ↑ l].  [spawn] is a fourth expression
    form whose rewrite rule mints a label fresh for the whole program.

    To make the calculus usable for the paper's programming examples
    (products of lists, tree searches) we also include the standard
    conveniences of an applied λ-calculus: integer/boolean/unit/nil
    constants, curried primitive operations, pairs, a conditional, and a
    call-by-value fixpoint value.  None of these interact with the control
    rules; they only add δ-reductions. *)

type label = int

type prim =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Lt
  | Leq
  | Not
  | Cons
  | Car
  | Cdr
  | Is_null
  | Is_pair
  | Is_zero

type term =
  | Int of int
  | Bool of bool
  | Unit
  | Nil
  | Prim of prim
  | Papp of prim * term list  (** partial application; arguments are values *)
  | Pair of term * term  (** cons cell; both components are values *)
  | Var of string
  | Lam of string * term
  | Fix of string * string * term
      (** [Fix (f, x, e)] is a recursive function value: applying it binds
          [f] to the whole [Fix] and [x] to the argument. *)
  | App of term * term
  | If of term * term * term
  | Label of label * term  (** [l : e] *)
  | Control of term * label  (** [e ↑ l] *)
  | Spawn of term

val prim_arity : prim -> int

val prim_name : prim -> string

val is_value : term -> bool
(** Values are constants, primitives, partial applications, pairs of values,
    abstractions and fixpoints — the terms that cannot be further reduced and
    may be passed as arguments or returned as answers. *)

val free_vars : term -> (string, unit) Hashtbl.t
(** All variables occurring free in the term. *)

val is_closed : term -> bool

val rename_var : string -> string
(** [rename_var x] is a globally fresh variable name derived from [x], used
    for capture avoidance and for the continuation binder of rule (3). *)

val subst : string -> term -> term -> term
(** [subst x v e] is [e\[x ← v\]], capture-avoiding.  [v] must be a value
    (call-by-value substitution). *)

val max_label : term -> int
(** Largest label occurring anywhere in the term, or [-1] if none.  Used to
    implement the freshness side condition of the [spawn] rule. *)

val labels_of : term -> label list
(** Sorted, deduplicated list of all labels in the term. *)

val size : term -> int
(** Number of constructors; used by tests and generators. *)

(** {1 Construction helpers} *)

val lam : string -> term -> term

val app : term -> term -> term

val app2 : term -> term -> term -> term

val lams : string list -> term -> term

val apps : term -> term list -> term

val let_ : string -> term -> term -> term
(** [let_ x e body] is [(λx. body) e]. *)

val seq : term -> term -> term
(** [seq e1 e2] evaluates [e1] for effect then [e2]; encoded as
    [(λ_. e2) e1]. *)

val list_of : term list -> term
(** Right-nested [Pair] list of value terms, ending in [Nil]. *)

val prim1 : prim -> term -> term

val prim2 : prim -> term -> term -> term
