(** Evaluation contexts and decomposition.

    Section 6 defines evaluation contexts

    {v C → □ | C e | v C | l : C v}

    extended here with the [If] scrutinee position and the argument position
    of [spawn] (in Scheme, [spawn] is a procedure, so its argument is
    evaluated; the paper's rewrite rule applies once the argument is a
    value).  A context is represented inside-out as a list of frames,
    innermost first, so plugging is a left fold and searching for the nearest
    enclosing label — the side condition of rewrite rule (3) — is a linear
    scan. *)

type frame =
  | Fapp_fun of Term.term  (** [□ e]: the hole is the operator *)
  | Fapp_arg of Term.term  (** [v □]: the hole is the operand *)
  | Flabel of Term.label  (** [l : □] *)
  | Fif of Term.term * Term.term  (** [if □ e2 e3] *)
  | Fspawn  (** [spawn □] *)

type t = frame list
(** Innermost frame first; [\[\]] is the empty context [□]. *)

val plug : t -> Term.term -> Term.term
(** [plug c e] is [C\[e\]]. *)

val plug_frame : frame -> Term.term -> Term.term

val split_at_label : Term.label -> t -> (t * t) option
(** [split_at_label l c] splits [c] as [(inner, outer)] where [inner] is the
    largest prefix of [c] not containing a frame [Flabel l] — the context
    [C2] of rule (3), for which [l] does not label [C2] — and [outer] is the
    rest of [c] with the matching [Flabel l] frame already removed.  [None]
    if no frame carries [l], in which case a control expression [e ↑ l] is
    stuck (an invalid controller application in the paper's terms). *)

val labels : t -> Term.label list
(** Labels of all [Flabel] frames, innermost first. *)

val pp : Format.formatter -> t -> unit
