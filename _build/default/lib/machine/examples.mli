(** The paper's example programs, as machine terms.

    Section 4 gives three small programs that pin down when controller
    application is valid; Sections 3 and 5 give the [product] workload and
    its [spawn/exit]-based nonlocal exit.  These terms are shared by the
    test suite (experiment E9) and the E8 benchmark. *)

(** {1 Section 4: controller validity} *)

val escaping_controller : Term.term
(** [((spawn (lambda (c) c)) (lambda (k) k))] — the controller escapes the
    spawned process by being returned, so its application is invalid: the
    machine must get stuck. *)

val double_use : Term.term
(** A controller applied a second time after its first application removed
    the root; the second application is invalid. *)

val reinstated : Term.term
(** The paper's third example: the process continuation (including its root)
    is reinstated before the outer controller application, so both
    applications are valid.  The paper states the result is "a procedure
    that returns its argument". *)

val reinstated_applied : Term.term
(** [reinstated] applied to the integer 42; evaluates to 42 if the paper's
    description holds. *)

(** {1 Sections 3 and 5: products with nonlocal exit} *)

val spawn_exit : Term.term
(** The paper's [spawn/exit] procedure: gives its argument a one-use exit
    procedure built from a process controller. *)

val product0 : Term.term
(** Curried [product0 : list -> exit -> int]: multiplies the elements of a
    list, calling [exit 0] when it hits a zero element. *)

val product : Term.term
(** [product : list -> int] built from [spawn_exit] and [product0]. *)

val int_list : int list -> Term.term
(** A machine-level list of integers. *)

val product_of : int list -> Term.term
(** [product] applied to the given list. *)

val nested_spawn_depth : int -> Term.term
(** [n] nested [spawn]s whose innermost process exits through the outermost
    controller, crossing [n] roots; evaluates to the integer 7.  Exercises
    arbitrarily deep nonlocal exits ("spawn operations may be nested
    arbitrarily", Section 5). *)

val pk_twice : Term.term
(** A program that captures a process continuation and invokes it twice —
    multi-shot invocation, legal per Section 4 ("process continuations can
    be applied more than once").  The capture point sits under [1 + □], so
    invoking the continuation with 2 and with 3 yields [(1+2) * (1+3) = 12]. *)
