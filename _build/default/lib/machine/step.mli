(** Single-step reduction for the Section 6 machine.

    A program is rewritten by (i) decomposing it into an evaluation context
    and a redex, then (ii) contracting the redex according to the paper's
    rules:

    - (1) call-by-value β (plus δ-rules, fixpoint unrolling and [if])
    - (2) [l : v ⇒ v]
    - (3) [C1\[l : C2\[e ↑ l\]\] ⇒ C1\[e (λx. l : C2\[x\])\]] when [l] does not
      label [C2]
    - (spawn) [C\[spawn v\] ⇒ C\[l : v (λx. x ↑ l)\]] with [l] fresh for the
      whole program. *)

type redex =
  | Rbeta of string * Term.term * Term.term  (** [(λx.e) v] *)
  | Rfix of string * string * Term.term * Term.term  (** [(rec (f x) e) v] *)
  | Rdelta of Term.prim * Term.term list  (** fully applied primitive *)
  | Rpartial of Term.prim * Term.term list  (** under-applied primitive *)
  | Rlabel_return of Term.label * Term.term  (** [l : v] *)
  | Rcontrol of Term.term * Term.label  (** [e ↑ l] *)
  | Rspawn of Term.term  (** [spawn v] *)
  | Rif of bool * Term.term * Term.term

val redex_rule : redex -> string
(** Short rule name ("beta", "label-return", "control", "spawn", …) used for
    tracing and statistics. *)

type decomposition =
  | Value  (** the program is a value: evaluation is complete *)
  | Decomp of Ctx.t * redex
  | Ill_formed of string  (** e.g. a free variable or non-procedure application *)

val decompose : Term.term -> decomposition
(** Leftmost-outermost decomposition.  The input must be closed for
    evaluation to be meaningful; free variables yield [Ill_formed]. *)

val delta : Term.prim -> Term.term list -> (Term.term, string) result
(** δ-reduction of a fully applied primitive. *)

type result =
  | Finished of Term.term  (** the program was already a value *)
  | Next of Term.term * string  (** one reduction, with the rule name *)
  | Stuck of string  (** no rule applies: type error, free variable, or an
                         invalid controller application (rule 3 with no
                         matching label) *)

val step : ?stats:Pcont_util.Counters.t -> Term.term -> result
(** [step p] performs one rewrite of the whole program [p].  When [stats] is
    given, the applied rule's counter is incremented. *)
