(** Pretty-printing of machine terms in a Scheme-like concrete syntax.

    Labeled expressions print as [(label l e)] and control expressions as
    [(control e l)]; everything else follows Scheme conventions, so traces
    of the machine read like the paper's examples. *)

val pp_term : Format.formatter -> Term.term -> unit

val term_to_string : Term.term -> string
