type outcome = Value of Term.term | Stuck of string | Out_of_fuel of Term.term

let default_fuel = 1_000_000

let eval ?(fuel = default_fuel) ?stats program =
  let rec loop fuel p =
    if fuel <= 0 then Out_of_fuel p
    else
      match Step.step ?stats p with
      | Step.Finished v -> Value v
      | Step.Stuck msg -> Stuck msg
      | Step.Next (p', _) -> loop (fuel - 1) p'
  in
  loop fuel program

let eval_exn ?fuel program =
  match eval ?fuel program with
  | Value v -> v
  | Stuck msg -> failwith ("machine stuck: " ^ msg)
  | Out_of_fuel _ -> failwith "machine out of fuel"

let trace ?(fuel = default_fuel) program =
  let rec loop fuel p acc =
    if fuel <= 0 then (List.rev acc, Out_of_fuel p)
    else
      match Step.step p with
      | Step.Finished v -> (List.rev acc, Value v)
      | Step.Stuck msg -> (List.rev acc, Stuck msg)
      | Step.Next (p', rule) -> loop (fuel - 1) p' ((p', rule) :: acc)
  in
  loop fuel program []

let steps_to_value ?fuel program =
  let steps, outcome = trace ?fuel program in
  match outcome with Value _ -> Some (List.length steps) | _ -> None
