open Term

type state = { ctx : Ctx.t; focus : Term.term; next_label : int }

type stepped = Next of state | Finished of Term.term | Stuck of string

(* Contract an application of two values; shared with the focused driver.
   Returns the new focus (the context is unchanged by these rules). *)
let apply_values v1 v2 =
  match v1 with
  | Lam (x, body) -> Ok (subst x v2 body)
  | Fix (f, x, body) -> Ok (subst x v2 (subst f (Fix (f, x, body)) body))
  | Prim p ->
      if prim_arity p = 1 then Step.delta p [ v2 ]
      else Ok (Papp (p, [ v2 ]))
  | Papp (p, args) ->
      let args = args @ [ v2 ] in
      if List.length args = prim_arity p then Step.delta p args
      else if List.length args < prim_arity p then Ok (Papp (p, args))
      else Error ("primitive applied to too many arguments: " ^ prim_name p)
  | _ -> Error ("application of a non-procedure: " ^ Pp.term_to_string v1)

let step st =
  let { ctx; focus; next_label } = st in
  if is_value focus then
    (* Return the value to the enclosing frame. *)
    match ctx with
    | [] -> Finished focus
    | Ctx.Fapp_fun arg :: rest ->
        if is_value arg then
          match apply_values focus arg with
          | Ok focus -> Next { st with ctx = rest; focus }
          | Error msg -> Stuck msg
        else Next { st with ctx = Ctx.Fapp_arg focus :: rest; focus = arg }
    | Ctx.Fapp_arg fn :: rest -> (
        match apply_values fn focus with
        | Ok focus -> Next { st with ctx = rest; focus }
        | Error msg -> Stuck msg)
    | Ctx.Flabel _ :: rest ->
        (* rule (2): l : v => v *)
        Next { st with ctx = rest }
    | Ctx.Fif (thn, els) :: rest -> (
        match focus with
        | Bool b -> Next { st with ctx = rest; focus = (if b then thn else els) }
        | v -> Stuck ("if: non-boolean test " ^ Pp.term_to_string v))
    | Ctx.Fspawn :: rest ->
        (* spawn rule: the counter provides a label fresh for the whole
           program by construction. *)
        let l = next_label in
        let x = rename_var "x" in
        Next
          {
            ctx = rest;
            focus = Label (l, App (focus, Lam (x, Control (Var x, l))));
            next_label = l + 1;
          }
  else
    match focus with
    | App (e1, e2) -> Next { st with ctx = Ctx.Fapp_fun e2 :: ctx; focus = e1 }
    | If (c, t, e) -> Next { st with ctx = Ctx.Fif (t, e) :: ctx; focus = c }
    | Label (l, e) -> Next { st with ctx = Ctx.Flabel l :: ctx; focus = e }
    | Spawn e -> Next { st with ctx = Ctx.Fspawn :: ctx; focus = e }
    | Control (e, l) -> (
        (* rule (3): split the retained context at the nearest matching
           label; the captured part becomes the process continuation. *)
        match Ctx.split_at_label l ctx with
        | None ->
            Stuck
              (Printf.sprintf
                 "invalid controller application: no root labeled %d in the \
                  current continuation"
                 l)
        | Some (inner, outer) ->
            let x = rename_var "k" in
            let pk = Lam (x, Label (l, Ctx.plug inner (Var x))) in
            Next { st with ctx = outer; focus = App (e, pk) })
    | Var x -> Stuck ("free variable: " ^ x)
    | Int _ | Bool _ | Unit | Nil | Prim _ | Papp _ | Pair _ | Lam _ | Fix _ ->
        (* values are handled above *)
        assert false

let initial program =
  { ctx = []; focus = program; next_label = max_label program + 1 }

let default_fuel = 1_000_000

let eval ?(fuel = default_fuel) program =
  let rec loop fuel st =
    if fuel <= 0 then Eval.Out_of_fuel (Ctx.plug st.ctx st.focus)
    else
      match step st with
      | Finished v -> Eval.Value v
      | Stuck msg -> Eval.Stuck msg
      | Next st' -> loop (fuel - 1) st'
  in
  loop fuel (initial program)

let eval_exn ?fuel program =
  match eval ?fuel program with
  | Eval.Value v -> v
  | Eval.Stuck msg -> failwith ("machine stuck: " ^ msg)
  | Eval.Out_of_fuel _ -> failwith "machine out of fuel"

let steps_to_value ?(fuel = default_fuel) program =
  let rec loop n fuel st =
    if fuel <= 0 then None
    else
      match step st with
      | Finished _ -> Some n
      | Stuck _ -> None
      | Next st' -> loop (n + 1) (fuel - 1) st'
  in
  loop 0 fuel (initial program)
