(** Fuel-bounded evaluation by iterated rewriting. *)

type outcome =
  | Value of Term.term  (** the program rewrote to a value *)
  | Stuck of string  (** no rule applies; the string explains why *)
  | Out_of_fuel of Term.term  (** the fuel bound was reached; carries the
                                  last program state *)

val eval : ?fuel:int -> ?stats:Pcont_util.Counters.t -> Term.term -> outcome
(** [eval p] rewrites [p] to a value, taking at most [fuel] steps
    (default 1_000_000). *)

val eval_exn : ?fuel:int -> Term.term -> Term.term
(** Like {!eval} but raises [Failure] on [Stuck] or [Out_of_fuel].  Intended
    for tests and examples. *)

val trace : ?fuel:int -> Term.term -> (Term.term * string) list * outcome
(** [trace p] is the list of intermediate programs paired with the name of
    the rule that produced each, plus the final outcome.  The initial program
    is not included. *)

val steps_to_value : ?fuel:int -> Term.term -> int option
(** Number of rewrites needed to reach a value, if one is reached. *)
