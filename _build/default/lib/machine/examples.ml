open Term

(* ((spawn (lambda (c) c)) (lambda (k) k)) *)
let escaping_controller = App (Spawn (Lam ("c", Var "c")), Lam ("k", Var "k"))

(* (spawn (lambda (c) (c (lambda (k) (c (lambda (k2) k2)))))): the second
   application of [c] happens after the first removed the root. *)
let double_use =
  Spawn
    (Lam ("c", App (Var "c", Lam ("k", App (Var "c", Lam ("k2", Var "k2"))))))

(* (spawn (lambda (c) (c (c (lambda (k) (k (lambda (k) (k (lambda (k) k))))))))),
   with the shadowed [k]s renamed apart for readability. *)
let reinstated =
  let innermost = Lam ("k3", Var "k3") in
  let middle = Lam ("k2", App (Var "k2", innermost)) in
  let outer = Lam ("k", App (Var "k", middle)) in
  Spawn (Lam ("c", App (Var "c", App (Var "c", outer))))

let reinstated_applied = App (reinstated, Int 42)

(* (define spawn/exit
     (lambda (proc)
       (spawn (lambda (c)
                (proc (lambda (v) (c (lambda (k) v)))))))) *)
let spawn_exit =
  Lam
    ( "proc",
      Spawn
        (Lam
           ( "c",
             App (Var "proc", Lam ("v", App (Var "c", Lam ("k", Var "v")))) ))
    )

(* (define product0
     (lambda (ls exit)
       (cond [(null? ls) 1]
             [(zero? (car ls)) (exit 0)]
             [else (mul (car ls) (product0 (cdr ls) exit))]))) *)
let product0 =
  Fix
    ( "product0",
      "ls",
      Lam
        ( "exit",
          If
            ( prim1 Is_null (Var "ls"),
              Int 1,
              If
                ( prim1 Is_zero (prim1 Car (Var "ls")),
                  App (Var "exit", Int 0),
                  prim2 Mul
                    (prim1 Car (Var "ls"))
                    (app2 (Var "product0") (prim1 Cdr (Var "ls")) (Var "exit"))
                ) ) ) )

(* (define product
     (lambda (ls) (spawn/exit (lambda (exit) (product0 ls exit))))) *)
let product =
  Lam
    ( "ls",
      App
        ( spawn_exit,
          Lam ("exit", app2 product0 (Var "ls") (Var "exit")) ) )

let int_list ns = list_of (List.map (fun n -> Int n) ns)

let product_of ns = App (product, int_list ns)

let nested_spawn_depth n =
  if n < 1 then invalid_arg "nested_spawn_depth: need at least one spawn";
  let rec build i =
    if i > n then App (Var "exit1", Int 7)
    else App (spawn_exit, Lam (Printf.sprintf "exit%d" i, build (i + 1)))
  in
  build 1

(* (spawn (lambda (c) (+ 1 (c (lambda (k) (mul (k 2) (k 3))))))): the process
   continuation [k = (lambda (x) (label l (+ 1 x)))] is invoked twice. *)
let pk_twice =
  Spawn
    (Lam
       ( "c",
         prim2 Add (Int 1)
           (App
              ( Var "c",
                Lam
                  ( "k",
                    prim2 Mul (App (Var "k", Int 2)) (App (Var "k", Int 3)) )
              )) ))
