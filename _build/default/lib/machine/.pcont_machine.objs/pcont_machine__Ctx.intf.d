lib/machine/ctx.mli: Format Term
