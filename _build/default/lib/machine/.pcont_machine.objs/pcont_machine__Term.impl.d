lib/machine/term.ml: Hashtbl List Printf String
