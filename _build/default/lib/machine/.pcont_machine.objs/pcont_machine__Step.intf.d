lib/machine/step.mli: Ctx Pcont_util Term
