lib/machine/eval.ml: List Step Term
