lib/machine/zipper.mli: Eval Term
