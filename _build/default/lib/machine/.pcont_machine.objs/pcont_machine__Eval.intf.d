lib/machine/eval.mli: Pcont_util Term
