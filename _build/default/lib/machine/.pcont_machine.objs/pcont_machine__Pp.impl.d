lib/machine/pp.ml: Format Term
