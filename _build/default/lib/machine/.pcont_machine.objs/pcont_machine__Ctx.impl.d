lib/machine/ctx.ml: Format List Pp Term
