lib/machine/term.mli: Hashtbl
