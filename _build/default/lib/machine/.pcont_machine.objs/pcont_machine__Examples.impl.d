lib/machine/examples.ml: List Printf Term
