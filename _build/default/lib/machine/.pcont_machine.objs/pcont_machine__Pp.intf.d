lib/machine/pp.mli: Format Term
