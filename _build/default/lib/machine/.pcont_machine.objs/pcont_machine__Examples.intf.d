lib/machine/examples.mli: Term
