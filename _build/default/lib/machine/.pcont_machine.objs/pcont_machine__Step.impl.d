lib/machine/step.ml: Ctx List Option Pcont_util Pp Printf Term
