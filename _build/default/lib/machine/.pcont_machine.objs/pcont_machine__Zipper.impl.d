lib/machine/zipper.ml: Ctx Eval List Pp Printf Step Term
