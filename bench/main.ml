(* Benchmark harness: regenerates every experiment in EXPERIMENTS.md.

     dune exec bench/main.exe            -- run everything (moderate sizes)
     dune exec bench/main.exe -- e1 e4   -- run selected experiments
     dune exec bench/main.exe -- quick   -- smaller sizes (CI)
     dune exec bench/main.exe -- micro   -- bechamel micro-benchmarks only
     dune exec bench/main.exe -- quick --json out.json
                                         -- also dump rows as JSON to a file
     dune exec bench/main.exe -- quick --json out.json --baseline BENCH_baseline.json
                                         -- and gate on per-experiment median
                                            ratio vs a previous dump
                                            (--regress-pct N, default 25)

   The paper (Hieb & Dybvig, PPoPP 1990) reports no measured tables; its
   quantitative claims are complexity claims (Section 7) and work-saving
   claims (Sections 3/5).  Each experiment below prints a table whose
   SHAPE checks one claim; EXPERIMENTS.md records the expected shapes and
   measured results. *)

module C = Pcont_util.Counters
module Obs = Pcont_obs.Obs
module Interp = Pcont_syntax.Interp
module Pstack = Pcont_pstack
module Sched = Pcont_sched.Sched
module Ops = Pcont_sched.Ops
module M = Pcont_machine
module Load = Pcont_load.Load

let quick = ref false

(* ------------------------------------------------------------------ *)
(* JSON row dump (--json FILE)                                         *)
(* ------------------------------------------------------------------ *)

let json_file : string option ref = ref None

let json_rows : Buffer.t = Buffer.create 256

(* Rows are built as [Obs.Json.t] values and serialized with
   [Obs.Json.to_string], the same serializer the trace sinks use, so the
   file always round-trips through [Obs.Json.parse]. *)
let pint k v = (k, Obs.Json.Num (float_of_int v))

let pstr k v = (k, Obs.Json.Str v)

let baseline_file : string option ref = ref None

let regress_pct = ref 25.0

let jrow ?(metrics = []) ?words ~name ~params ns =
  match (!json_file, !baseline_file) with
  | None, None -> ()
  | _ ->
      if Buffer.length json_rows > 0 then Buffer.add_string json_rows ",\n";
      let obj =
        Obs.Json.Obj
          (("name", Obs.Json.Str name)
           :: ("params", Obs.Json.Obj params)
           :: ("ns_per_op", Obs.Json.Num ns)
           ::
           ((* minor-heap words allocated per operation ([Gc.minor_words]
               delta over one run / ops), when the experiment measures it *)
            match words with
            | None -> []
            | Some w -> [ ("words_per_op", Obs.Json.Num w) ])
           @
           (match metrics with
           | [] -> []
           | ms ->
               [
                 ( "metrics",
                   Obs.Json.Obj
                     (List.map (fun (k, v) -> (k, Obs.Json.Num (float_of_int v))) ms)
                 );
               ]))
      in
      Buffer.add_string json_rows ("  " ^ Obs.Json.to_string obj)

let write_json () =
  match !json_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc "[\n";
      Buffer.output_buffer oc json_rows;
      output_string oc "\n]\n";
      close_out oc;
      Printf.printf "\nwrote JSON rows to %s\n" path

(* --baseline FILE: pair this run's rows against a previous --json dump
   by (name, params) and gate on the per-experiment median ratio.  The
   median is the right pairing statistic here: individual rows are
   best-of-3 wall times and still jitter by tens of percent on shared
   CI machines, but half of an experiment's rows drifting past the
   threshold together is a real regression.  Rows present on only one
   side are counted but never gate. *)
let compare_baseline () =
  match !baseline_file with
  | None -> 0
  | Some path ->
      let read_rows path =
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        match Obs.Json.parse s with
        | Ok (Obs.Json.Arr rows) -> rows
        | Ok _ -> failwith (path ^ ": expected a JSON array of rows")
        | Error m -> failwith (path ^ ": " ^ m)
      in
      let key row =
        match
          (Obs.Json.member "name" row, Obs.Json.member "params" row)
        with
        | Some (Obs.Json.Str n), Some p -> Some (n ^ " " ^ Obs.Json.to_string p)
        | _ -> None
      in
      let ns row =
        match Obs.Json.member "ns_per_op" row with
        | Some (Obs.Json.Num v) when v > 0. -> Some v
        | _ -> None
      in
      let base = Hashtbl.create 256 in
      List.iter
        (fun row ->
          match (key row, ns row) with
          | Some k, Some v -> Hashtbl.replace base k v
          | _ -> ())
        (read_rows path);
      let current =
        match Obs.Json.parse ("[" ^ Buffer.contents json_rows ^ "]") with
        | Ok (Obs.Json.Arr rows) -> rows
        | _ -> failwith "internal: bench rows failed to round-trip"
      in
      (* experiment prefix ("e3", "micro") -> paired cur/base ratios *)
      let groups : (string, float list ref) Hashtbl.t = Hashtbl.create 32 in
      let paired = ref 0 and unpaired = ref 0 in
      List.iter
        (fun row ->
          match (key row, ns row) with
          | Some k, Some v -> (
              match Hashtbl.find_opt base k with
              | None -> incr unpaired
              | Some b ->
                  incr paired;
                  let exp =
                    let name = List.hd (String.split_on_char ' ' k) in
                    match String.index_opt name '.' with
                    | Some i -> String.sub name 0 i
                    | None -> name
                  in
                  let cell =
                    match Hashtbl.find_opt groups exp with
                    | Some c -> c
                    | None ->
                        let c = ref [] in
                        Hashtbl.add groups exp c;
                        c
                  in
                  cell := (v /. b) :: !cell)
          | _ -> ())
        current;
      let median l =
        let a = Array.of_list l in
        Array.sort compare a;
        a.(Array.length a / 2)
      in
      let rows =
        Hashtbl.fold (fun exp rs acc -> (exp, median !rs, List.length !rs) :: acc)
          groups []
        |> List.sort compare
      in
      Printf.printf "\nbaseline compare vs %s (%d paired rows, %d new)\n" path
        !paired !unpaired;
      Printf.printf "%-8s %8s %6s\n" "exp" "median" "rows";
      let limit = 1. +. (!regress_pct /. 100.) in
      let failures =
        List.filter_map
          (fun (exp, m, n) ->
            Printf.printf "%-8s %7.2fx %6d%s\n" exp m n
              (if m > limit then "  <-- regression" else "");
            if m > limit then Some exp else None)
          rows
      in
      if !paired = 0 then (
        print_endline "no paired rows: nothing to gate on";
        0)
      else if failures = [] then 0
      else (
        Printf.printf "regression gate: median ratio over %.2fx for %s\n" limit
          (String.concat ", " failures);
        3)

(* ------------------------------------------------------------------ *)
(* Timing helpers                                                      *)
(* ------------------------------------------------------------------ *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, t1 -. t0)

(* Best-of-n wall time: robust against scheduler noise for coarse runs. *)
let time_best ?(n = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to n do
    let r, t = time_once f in
    result := Some r;
    if t < !best then best := t
  done;
  (Option.get !result, !best)

(* [time_best] that also reports the minor-heap words allocated by the
   first run (allocation is deterministic, so one sample suffices). *)
let time_best_alloc ?(n = 3) f =
  let w0 = Gc.minor_words () in
  let r0, t0 = time_once f in
  let words = Gc.minor_words () -. w0 in
  let best = ref t0 in
  let result = ref r0 in
  for _ = 2 to n do
    let r, t = time_once f in
    result := r;
    if t < !best then best := t
  done;
  (!result, !best, words)

let ns_per t ops = t *. 1e9 /. float_of_int ops

let header title = Printf.printf "\n==== %s ====\n" title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Scheme helpers                                                      *)
(* ------------------------------------------------------------------ *)

let repeat_defs =
  {|
(define (repeat n thunk)
  (if (zero? n) 0 (begin (thunk) (repeat (- n 1) thunk))))
(define (deep n thunk)
  (if (zero? n) (thunk) (+ 1 (deep (- n 1) thunk))))
|}

let eval_scheme ?mode ?fastpath ?n ~strategy src =
  let t = Interp.create ~strategy ?fastpath () in
  ignore (Interp.eval_string t repeat_defs);
  let (), dt, words =
    time_best_alloc ?n (fun () ->
        ignore (Interp.eval_value ?mode ~fuel:2_000_000_000 t src))
  in
  (Interp.config t, dt, words)

(* ------------------------------------------------------------------ *)
(* E1: controller capture cost vs continuation size                    *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1  capture+reinstate cost vs frame depth (1 root, K captures)";
  Printf.printf "%8s %6s | %14s %14s | %16s %16s\n" "frames" "K" "linked ns/op"
    "copying ns/op" "linked frm/op" "copying frm/op";
  let k = if !quick then 20 else 100 in
  let depths = if !quick then [ 10; 100; 1000 ] else [ 10; 100; 1000; 5000; 20000 ] in
  List.iter
    (fun n ->
      (* Subtract the capture-free baseline so the one-time cost of
         building and unwinding the [deep] frames does not pollute the
         per-capture figure. *)
      let src =
        Printf.sprintf
          "(spawn (lambda (c) (deep %d (lambda () (repeat %d (lambda () (c (lambda (k) (k 0)))))))))"
          n k
      in
      let baseline =
        Printf.sprintf
          "(spawn (lambda (c) (deep %d (lambda () (repeat %d (lambda () 0))))))" n k
      in
      let run strategy =
        let _, dt0, w0 = eval_scheme ~strategy baseline in
        let cfg, dt, w = eval_scheme ~strategy src in
        let frames =
          C.get cfg.Pstack.Machine.counters "capture.frames"
          + C.get cfg.Pstack.Machine.counters "reinstate.frames"
        in
        (ns_per (Float.max 0. (dt -. dt0)) k, frames,
         Float.max 0. (w -. w0) /. float_of_int k)
      in
      let lt, lframes, lw = run Pstack.Types.Linked in
      let ct, cframes, cw = run Pstack.Types.Copying in
      let lf = float_of_int lframes /. float_of_int k
      and cf = float_of_int cframes /. float_of_int k in
      jrow ~name:"e1.capture.linked"
        ~params:[ pint "frames" n; pint "k" k ]
        ~metrics:[ ("frames.moved", lframes) ] ~words:lw lt;
      jrow ~name:"e1.capture.copying"
        ~params:[ pint "frames" n; pint "k" k ]
        ~metrics:[ ("frames.moved", cframes) ] ~words:cw ct;
      row "%8d %6d | %14.0f %14.0f | %16.1f %16.1f\n" n k lt ct lf cf)
    depths;
  print_endline "shape: linked columns flat in frames; copying columns linear in frames.";
  print_endline "claim (paper S7): control operations are linear in control points, not size.";
  (* Ablation: captures crossing dynamic-wind frames pay per WINDER (their
     thunks must run), never per plain frame. *)
  Printf.printf "\n%8s %8s | %14s  (linked, %d captures across winders)\n" "frames"
    "winders" "ns/op" k;
  List.iter
    (fun (frames, winders) ->
      let program inner =
        Printf.sprintf
          "(define (wind-deep w thunk)
             (if (zero? w) (thunk)
                 (dynamic-wind (lambda () 0)
                               (lambda () (wind-deep (- w 1) thunk))
                               (lambda () 0))))
           (spawn (lambda (c)
             (deep %d (lambda ()
               (wind-deep %d (lambda ()
                 (repeat %d (lambda () %s))))))))"
          frames winders k inner
      in
      let _, dt0, _ = eval_scheme ~strategy:Pstack.Types.Linked (program "0") in
      let _, dt, _ =
        eval_scheme ~strategy:Pstack.Types.Linked (program "(c (lambda (k) (k 0)))")
      in
      let ns = ns_per (Float.max 0. (dt -. dt0)) k in
      jrow ~name:"e1.winders" ~params:[ pint "frames" frames; pint "winders" winders ] ns;
      row "%8d %8d | %14.0f\n" frames winders ns)
    (if !quick then [ (100, 0); (100, 8) ]
     else [ (1000, 0); (1000, 4); (1000, 16); (1000, 64); (20000, 16) ]);
  print_endline "shape: cost tracks winders crossed, independent of plain frames."

(* ------------------------------------------------------------------ *)
(* E2: capture cost vs number of control points                        *)
(* ------------------------------------------------------------------ *)

let nested_roots_src roots k =
  let buf = Buffer.create 256 in
  for i = 1 to roots do
    Buffer.add_string buf (Printf.sprintf "(spawn (lambda (c%d) " i)
  done;
  Buffer.add_string buf
    (Printf.sprintf "(repeat %d (lambda () (c1 (lambda (k) (k 0)))))" k);
  for _ = 1 to roots do
    Buffer.add_string buf "))"
  done;
  Buffer.contents buf

let e2 () =
  header "E2  capture+reinstate cost vs control points (roots), frames fixed";
  Printf.printf "%8s %6s | %14s | %16s\n" "roots" "K" "linked ns/op" "segments/op";
  let k = if !quick then 20 else 100 in
  let roots = if !quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  List.iter
    (fun r ->
      let src = nested_roots_src r k in
      let cfg, dt, w = eval_scheme ~strategy:Pstack.Types.Linked src in
      let segs =
        C.get cfg.Pstack.Machine.counters "capture.segments"
        + C.get cfg.Pstack.Machine.counters "reinstate.segments"
      in
      jrow ~name:"e2.capture"
        ~params:[ pint "roots" r; pint "k" k ]
        ~metrics:
          [
            ("segments.moved", segs);
            ("controller.applications", C.get cfg.Pstack.Machine.counters "controller");
          ]
        ~words:(w /. float_of_int k)
        (ns_per dt k);
      row "%8d %6d | %14.0f | %16.1f\n" r k (ns_per dt k)
        (float_of_int segs /. float_of_int k))
    roots;
  print_endline "shape: both columns linear in roots (the control points).";
  print_endline "claim (paper S7): cost scales with labels and forks only."

(* ------------------------------------------------------------------ *)
(* E3: nonlocal exit cost (native): spawn_exit vs exception vs none    *)
(* ------------------------------------------------------------------ *)

exception Found_zero

let e3 () =
  header "E3  product with nonlocal exit (native)";
  let n = if !quick then 10_000 else 100_000 in
  let make_list ~zero_at =
    List.init n (fun i -> if Some i = zero_at then 0 else 1 + (i mod 7))
  in
  let product_exit ls =
    Pcont.Exit.spawn_exit (fun e ->
        let rec go acc = function
          | [] -> acc
          | 0 :: _ -> e.Pcont.Exit.exit 0
          | x :: rest -> go (acc * x mod 1000003) rest
        in
        go 1 ls)
  in
  let product_exn ls =
    try
      let rec go acc = function
        | [] -> acc
        | 0 :: _ -> raise Found_zero
        | x :: rest -> go (acc * x mod 1000003) rest
      in
      go 1 ls
    with Found_zero -> 0
  in
  let product_plain ls =
    let rec go acc = function
      | [] -> acc
      | x :: rest -> go (acc * max x 1 mod 1000003) rest
    in
    go 1 ls
  in
  Printf.printf "%12s | %12s %12s %12s   (microseconds per product, n=%d)\n" "zero at"
    "spawn_exit" "exception" "no-exit" n;
  let positions =
    [ ("none", None); ("10%", Some (n / 10)); ("50%", Some (n / 2)); ("90%", Some (n * 9 / 10)) ]
  in
  List.iter
    (fun (label, zero_at) ->
      let ls = make_list ~zero_at in
      let reps = 20 in
      let t_of f =
        let _, dt = time_best (fun () -> for _ = 1 to reps do ignore (f ls) done) in
        dt /. float_of_int reps *. 1e6
      in
      let te = t_of product_exit in
      let tx = t_of product_exn in
      let tp = t_of product_plain in
      jrow ~name:"e3.spawn_exit" ~params:[ pstr "zero_at" label ] (te *. 1e3);
      jrow ~name:"e3.exception" ~params:[ pstr "zero_at" label ] (tx *. 1e3);
      jrow ~name:"e3.plain" ~params:[ pstr "zero_at" label ] (tp *. 1e3);
      row "%12s | %12.1f %12.1f %12.1f\n" label te tx tp)
    positions;
  print_endline "shape: spawn_exit within a small constant factor of exceptions;";
  print_endline "       earlier zeroes cost less (the exit aborts pending work)."

(* ------------------------------------------------------------------ *)
(* E4: parallel-or abandons losing branches                            *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4  parallel-or: work and time vs position of the witness";
  Printf.printf "%10s | %12s %12s | %12s %12s\n" "witness" "seq work" "par work"
    "seq us" "par us";
  let widths = if !quick then [ 10; 100 ] else [ 10; 100; 1000; 10000 ] in
  List.iter
    (fun w ->
      (* Branch A finds the witness after w yields; branch B would need
         10*w before returning false. *)
      let work = ref 0 in
      let branch_a () =
        for _ = 1 to w do
          incr work;
          Sched.yield ()
        done;
        true
      in
      let branch_b () =
        for _ = 1 to 10 * w do
          incr work;
          Sched.yield ()
        done;
        false
      in
      let seq () =
        work := 0;
        ignore (Sched.run (fun () -> branch_b () || branch_a ()));
        !work
      in
      let par () =
        work := 0;
        ignore (Sched.run (fun () -> Ops.parallel_or [ branch_b; branch_a ]));
        !work
      in
      let seq_work, seq_t = time_best seq in
      let par_work, par_t = time_best par in
      jrow ~name:"e4.seq" ~params:[ pint "witness" w ] (seq_t *. 1e9);
      jrow ~name:"e4.par" ~params:[ pint "witness" w ] (par_t *. 1e9);
      row "%10d | %12d %12d | %12.0f %12.0f\n" w seq_work par_work (seq_t *. 1e6)
        (par_t *. 1e6))
    widths;
  print_endline "shape: parallel work ~ 2x witness position; sequential ~ 11x.";
  print_endline "claim (paper S5): the losing branch is abandoned on first true."

(* ------------------------------------------------------------------ *)
(* E5: parallel-search suspend/resume throughput                       *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5  parallel-search: suspension cost vs plain traversal";
  Printf.printf "%7s %8s | %12s %12s | %14s\n" "depth" "matches" "walk us" "search us"
    "us/suspension";
  let depths = if !quick then [ 6; 8 ] else [ 6; 8; 10; 12 ] in
  List.iter
    (fun d ->
      let tree = Ops.perfect ~depth:d (fun i -> i) in
      let pred x = x mod 5 = 0 in
      let rec walk acc = function
        | Ops.Leaf -> acc
        | Ops.Node (l, x, r) ->
            let acc = walk acc l in
            let acc = if pred x then x :: acc else acc in
            walk acc r
      in
      let baseline () = List.length (walk [] tree) in
      let search () = List.length (Sched.run (fun () -> Ops.search_all tree pred)) in
      let matches, wt = time_best baseline in
      let matches', st = time_best search in
      assert (matches = matches');
      jrow ~name:"e5.walk" ~params:[ pint "depth" d ] (wt *. 1e9);
      jrow ~name:"e5.search" ~params:[ pint "depth" d ] (st *. 1e9);
      row "%7d %8d | %12.1f %12.1f | %14.1f\n" d matches (wt *. 1e6) (st *. 1e6)
        ((st -. wt) *. 1e6 /. float_of_int (max matches 1)))
    depths;
  print_endline "shape: cost per suspension grows with live tree size (whole-tree";
  print_endline "       prune+graft), but stays far below re-searching from scratch.";
  print_endline "claim (paper S5): each match suspends and resumes the whole search."

(* ------------------------------------------------------------------ *)
(* E6: derived control abstractions: switch overhead                   *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6  coroutine / engine / generator switch overhead (native)";
  let n = if !quick then 20_000 else 200_000 in
  let co_time =
    let co =
      Pcont.Coroutine.create (fun ~yield first ->
          let v = ref first in
          let rec loop () =
            v := yield !v;
            loop ()
          in
          loop ())
    in
    let _, dt =
      time_best ~n:1 (fun () ->
          for i = 1 to n do
            ignore (Pcont.Coroutine.resume co i)
          done)
    in
    ns_per dt n
  in
  let eng_time =
    let slices = n / 10 in
    let e =
      Pcont.Engine.make (fun ~tick ->
          let rec spin i =
            tick ();
            if i = 0 then 0 else spin (i - 1)
          in
          spin max_int)
    in
    let cur = ref e in
    let _, dt =
      time_best ~n:1 (fun () ->
          for _ = 1 to slices do
            match Pcont.Engine.run !cur ~fuel:1 with
            | Pcont.Engine.Expired e' -> cur := e'
            | Pcont.Engine.Done _ -> assert false
          done)
    in
    ns_per dt slices
  in
  let gen_time =
    let g = Pcont.Generator.ints () in
    let _, dt =
      time_best ~n:1 (fun () ->
          for _ = 1 to n do
            ignore (Pcont.Generator.next g)
          done)
    in
    ns_per dt n
  in
  let spawn_time =
    let _, dt =
      time_best (fun () ->
          for i = 1 to n do
            ignore (Pcont.Spawn.spawn (fun _c -> i))
          done)
    in
    ns_per dt n
  in
  let control_time =
    let _, dt =
      time_best (fun () ->
          for i = 1 to n do
            ignore
              (Pcont.Spawn.spawn (fun c ->
                   Pcont.Spawn.control c (fun k -> Pcont.Spawn.resume k i)))
          done)
    in
    ns_per dt n
  in
  jrow ~name:"e6.spawn" ~params:[] spawn_time;
  jrow ~name:"e6.control_resume" ~params:[] control_time;
  jrow ~name:"e6.coroutine" ~params:[] co_time;
  jrow ~name:"e6.generator" ~params:[] gen_time;
  jrow ~name:"e6.engine" ~params:[] eng_time;
  row "  spawn (empty process)      : %8.0f ns\n" spawn_time;
  row "  control + resume           : %8.0f ns\n" control_time;
  row "  coroutine resume/yield pair: %8.0f ns\n" co_time;
  row "  generator next             : %8.0f ns\n" gen_time;
  row "  engine slice (run+expire)  : %8.0f ns\n" eng_time;
  print_endline "shape: all switches are sub-microsecond constants.";
  print_endline "claim (paper S8): spawn suffices to build process abstractions."

(* ------------------------------------------------------------------ *)
(* E7: Scheme-level: call/cc vs spawn/exit vs plain recursion          *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7  interpreted product: plain vs call/cc exit vs spawn/exit";
  Printf.printf "%8s %10s | %10s %12s %12s  (milliseconds)\n" "n" "zero?" "plain"
    "call/cc" "spawn/exit";
  let defs =
    {|
(define (make-list-n n zero-at)
  (let loop ([i 0])
    (cond [(= i n) '()]
          [(= i zero-at) (cons 0 (loop (+ i 1)))]
          [else (cons (+ 1 (modulo i 7)) (loop (+ i 1)))])))
(define (product-plain ls)
  (if (null? ls) 1 (* (car ls) (product-plain (cdr ls)))))
(define (product0 ls exit)
  (cond [(null? ls) 1]
        [(= (car ls) 0) (exit 0)]
        [else (* (car ls) (product0 (cdr ls) exit))]))
(define (product-cc ls)
  (call/cc (lambda (exit) (product0 ls exit))))
(define (product-se ls)
  (spawn/exit (lambda (exit) (product0 ls exit))))
|}
  in
  let sizes = if !quick then [ 200; 1000 ] else [ 200; 1000; 5000 ] in
  List.iter
    (fun n ->
      List.iter
        (fun (zlabel, zero_at) ->
          let t = Interp.create () in
          ignore (Interp.eval_string t defs);
          ignore
            (Interp.eval_string t
               (Printf.sprintf "(define ls (make-list-n %d %d))" n zero_at));
          let run src =
            let _, dt =
              time_best (fun () -> ignore (Interp.eval_value ~fuel:2_000_000_000 t src))
            in
            dt *. 1e3
          in
          let tplain = run "(product-plain ls)" in
          let tcc = run "(product-cc ls)" in
          let tse = run "(product-se ls)" in
          jrow ~name:"e7.plain" ~params:[ pint "n" n; pstr "zero" zlabel ] (tplain *. 1e6);
          jrow ~name:"e7.callcc" ~params:[ pint "n" n; pstr "zero" zlabel ] (tcc *. 1e6);
          jrow ~name:"e7.spawn_exit" ~params:[ pint "n" n; pstr "zero" zlabel ]
            (tse *. 1e6);
          row "%8d %10s | %10.2f %12.2f %12.2f\n" n zlabel tplain tcc tse)
        [ ("none", -1); ("middle", n / 2) ])
    sizes;
  print_endline "shape: spawn/exit comparable to call/cc; a middle zero halves";
  print_endline "       the work for both exit variants.";
  print_endline "claim (paper S3/S5): spawn provides the exits call/cc provides, delimited."

(* ------------------------------------------------------------------ *)
(* E8: semantics machine throughput                                    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8  Section 6 machine: rewrite throughput, naive vs zipper stepper";
  Printf.printf "%-28s %10s %12s %12s %9s\n" "program" "steps" "naive ms" "zipper ms"
    "speedup";
  let bench name term =
    match M.Eval.steps_to_value ~fuel:5_000_000 term with
    | None -> row "%-28s %10s\n" name "stuck/fuel"
    | Some steps ->
        (* Repeat small programs so the measured interval is meaningful. *)
        let reps = max 1 (20_000 / max steps 1) in
        let timed eval =
          let _, dt =
            time_best (fun () ->
                for _ = 1 to reps do
                  ignore (eval term)
                done)
          in
          dt /. float_of_int reps
        in
        let naive = timed (M.Eval.eval ~fuel:5_000_000) in
        let zipper = timed (M.Zipper.eval ~fuel:15_000_000) in
        jrow ~name:"e8.naive" ~params:[ pstr "program" name ] (naive *. 1e9);
        jrow ~name:"e8.zipper" ~params:[ pstr "program" name ] (zipper *. 1e9);
        row "%-28s %10d %12.3f %12.3f %8.1fx\n" name steps (naive *. 1e3)
          (zipper *. 1e3) (naive /. zipper)
  in
  let n = if !quick then 40 else 150 in
  bench "reinstated (S4 ex.3)" M.Examples.reinstated_applied;
  bench "pk-twice" M.Examples.pk_twice;
  bench
    (Printf.sprintf "product [1..%d]" n)
    (M.Examples.product_of (List.init n (fun i -> 1 + (i mod 5))));
  bench
    (Printf.sprintf "product w/ zero @%d" (n / 2))
    (M.Examples.product_of (List.init n (fun i -> if i = n / 2 then 0 else 1 + (i mod 5))));
  bench "nested spawns (depth 8)" (M.Examples.nested_spawn_depth 8);
  print_endline "shape: early-exit product takes roughly half the steps of the full one."

(* ------------------------------------------------------------------ *)
(* E9: tree-of-stacks scheduler overhead (grain size and quantum)      *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9  concurrent scheduler: fork overhead vs grain size";
  Printf.printf "%8s %8s | %10s %12s %12s | %10s\n" "leaves" "grain" "forks"
    "seq ms" "conc ms" "us/fork";
  (* Sum 2^depth numbers with a pcall tree; below [grain] leaves the branch
     sums sequentially.  Small grain = many forks = scheduler-bound. *)
  let defs =
    {|
(define (tsum lo hi grain)
  (if (<= (- hi lo) grain)
      (let loop ([i lo] [acc 0])
        (if (> i hi) acc (loop (+ i 1) (+ acc i))))
      (let ([mid (quotient (+ lo hi) 2)])
        (pcall + (tsum lo mid grain) (tsum (+ mid 1) hi grain)))))
|}
  in
  let n = if !quick then 1 lsl 8 else 1 lsl 11 in
  List.iter
    (fun grain ->
      let t = Interp.create () in
      ignore (Interp.eval_string t defs);
      let src = Printf.sprintf "(tsum 1 %d %d)" n grain in
      let expected = n * (n + 1) / 2 in
      let run mode =
        let (), dt =
          time_best (fun () ->
              match Interp.eval_value ~mode ~fuel:2_000_000_000 t src with
              | Pstack.Types.Int v when v = expected -> ()
              | v -> failwith ("bad sum " ^ Pstack.Value.to_string v))
        in
        dt
      in
      let seq_t = run Interp.Sequential in
      let cfg = Interp.config t in
      Pcont_util.Counters.reset cfg.Pstack.Machine.counters;
      let conc_t = run (Interp.Concurrent Pstack.Concur.Round_robin) in
      let forks = C.get cfg.Pstack.Machine.counters "concur.fork" in
      jrow ~name:"e9.seq" ~params:[ pint "n" n; pint "grain" grain ] (seq_t *. 1e9);
      jrow ~name:"e9.conc"
        ~params:[ pint "n" n; pint "grain" grain ]
        ~metrics:[ ("concur.fork", forks) ]
        (conc_t *. 1e9);
      row "%8d %8d | %10d %12.2f %12.2f | %10.2f\n" n grain forks (seq_t *. 1e3)
        (conc_t *. 1e3)
        ((conc_t -. seq_t) *. 1e6 /. float_of_int (max forks 1)))
    (if !quick then [ 8; 64 ] else [ 2; 8; 32; 128; 512 ]);
  print_endline "shape: per-fork overhead roughly constant; coarse grains amortize it.";

  Printf.printf "\n%8s | %12s  (quantum sweep, grain 8, same workload)\n" "quantum"
    "conc ms";
  List.iter
    (fun q ->
      let t = Interp.create () in
      ignore (Interp.eval_string t defs);
      let src = Printf.sprintf "(tsum 1 %d 8)" n in
      let (), dt =
        time_best (fun () ->
            ignore
              (Interp.eval_value
                 ~mode:(Interp.Concurrent Pstack.Concur.Round_robin)
                 ~quantum:q ~fuel:2_000_000_000 t src))
      in
      jrow ~name:"e9.quantum" ~params:[ pint "n" n; pint "quantum" q ] (dt *. 1e9);
      row "%8d | %12.2f\n" q (dt *. 1e3))
    (if !quick then [ 1; 16 ] else [ 1; 4; 16; 64; 256 ]);
  print_endline "shape: larger quanta cut round-robin overhead until fairness stops mattering."

(* ------------------------------------------------------------------ *)
(* E10: blocked waiters — parked vs spinning (native scheduler)        *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10  blocked fibers: N waiters on one future, spinning vs parked";
  (* One worker future yields [work] times before completing; N fibers
     wait for it.  A spinning waiter (poll + yield, the pre-parked-waiter
     implementation of touch) is re-stepped every round, so total cost
     grows with waiters x work.  A parked waiter (touch) leaves the run
     queue until the delivery wakes it: rounds iterate only the runnable
     worker, so cost is O(work + waiters). *)
  Printf.printf "%8s %8s | %12s %12s | %10s\n" "waiters" "work" "spin ms"
    "park ms" "spin/park";
  let work = if !quick then 200 else 1000 in
  let spin f =
    let rec go () =
      match Sched.poll f with
      | Some v -> v
      | None ->
          Sched.yield ();
          go ()
    in
    go ()
  in
  let run_with wait n =
    Sched.run (fun () ->
        let f =
          Sched.future (fun () ->
              for _ = 1 to work do
                Sched.yield ()
              done;
              42)
        in
        let vs = Sched.pcall (List.init n (fun _ () -> wait f)) in
        List.fold_left ( + ) 0 vs)
  in
  List.iter
    (fun n ->
      let check v = if v <> 42 * n then failwith "bad sum" in
      let (), spin_t = time_best (fun () -> check (run_with spin n)) in
      let (), park_t = time_best (fun () -> check (run_with Sched.touch n)) in
      jrow ~name:"e10.spin" ~params:[ pint "waiters" n; pint "work" work ]
        (spin_t *. 1e9);
      jrow ~name:"e10.park" ~params:[ pint "waiters" n; pint "work" work ]
        (park_t *. 1e9);
      row "%8d %8d | %12.3f %12.3f | %9.1fx\n" n work (spin_t *. 1e3)
        (park_t *. 1e3) (spin_t /. park_t))
    (if !quick then [ 1; 16; 64 ] else [ 1; 10; 100; 1000 ]);
  print_endline "shape: spin cost grows with waiters x work (every blocked fiber is";
  print_endline "       re-stepped every round); parked cost is O(work + waiters) —";
  print_endline "       per-round cost is independent of the number of blocked fibers."

(* ------------------------------------------------------------------ *)
(* E11: trace analysis throughput (ingest + check + report)            *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11  trace analysis: JSONL ingest, invariant check, causal report";
  (* Generate a large trace in memory: N fibers that yield in a loop
     produce two slice events per yield, so events scale directly. *)
  let fibers = 8 in
  let yields = if !quick then 250 else 6_000 in
  let buf = Buffer.create (1 lsl 20) in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  ignore
    (Sched.run ~obs:o (fun () ->
         Sched.pcall
           (List.init fibers (fun _ () ->
                for _ = 1 to yields do
                  Sched.yield ()
                done;
                0))));
  Obs.close o;
  let body = Buffer.contents buf in
  let events =
    match Pcont_obs.Trace.parse_string body with
    | Ok events -> events
    | Error m -> failwith ("e11 trace does not parse: " ^ m)
  in
  let n = Array.length events in
  let _, ingest_t = time_best (fun () -> Pcont_obs.Trace.parse_string body) in
  let violations, check_t =
    time_best (fun () -> Pcont_obs.Analysis.Check.run events)
  in
  if violations <> [] then failwith "e11 trace fails its own invariant check";
  let _, report_t = time_best (fun () -> Pcont_obs.Analysis.Report.of_trace events) in
  let stage label t =
    let evs = float_of_int n /. t in
    jrow
      ~name:("e11." ^ label)
      ~params:[ pint "events" n ]
      ~metrics:[ ("events", n) ]
      (ns_per t n);
    row "  %-22s %10.1f ms   %12.0f events/s\n" label (t *. 1e3) evs
  in
  Printf.printf "  %d events (%d fibers x %d yields)\n" n fibers yields;
  stage "ingest" ingest_t;
  stage "check" check_t;
  stage "report" report_t;
  print_endline "shape: all three stages stream in O(events); the analyzer keeps up";
  print_endline "       with traces far larger than any experiment in this suite."

(* ------------------------------------------------------------------ *)
(* E12: capture fast path — one-shot move + segment pool vs always-copy *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12  capture fast path: one-shot move + segment pool vs baseline";
  (* Two capture-heavy one-shot workloads, each run twice on the same
     sources: with the fast path (segment pool + one-shot move, the
     default) and with [~fastpath:false] (every capture pins and every
     spawn allocates — the pre-fast-path behavior).  Reported per
     capture: wall time, minor-heap words ([Gc.minor_words] delta), and
     the fast path's own counters (pool hits and moved captures).

     - gen:   generator pipelines — K/100 spawns of 100 yields each
              ((c (lambda (k) (k 0)))); the one-shot move skips pinning
              and copy-on-write on every yield, and each generator's
              spawn segment cycles through the pool.
     - prune: parallel-or-style pruning — K spawns that each build a few
              frames and then abort ((c (lambda (k) 0)) never applies k),
              discarding the pending work; the pool recycles the erased
              spawn segments. *)
  Printf.printf "%7s %9s | %10s %10s | %11s %11s | %9s %9s\n" "work" "captures"
    "fast ns" "base ns" "fast w/cap" "base w/cap" "pool.hit" "moved";
  let ks = if !quick then [ 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  let workloads =
    [
      ( "gen",
        fun k ->
          (* a pipeline of k/100 generators, 100 yields each: the yields
             exercise the one-shot move, the generator spawns cycle
             their segments through the pool *)
          Printf.sprintf
            "(repeat %d (lambda () (spawn (lambda (c) (repeat 100 (lambda () (c (lambda (k) (k 0)))))))))"
            (k / 100) );
      ( "prune",
        fun k ->
          Printf.sprintf
            "(repeat %d (lambda () (spawn (lambda (c) (deep 8 (lambda () (c (lambda (k) 0))))))))"
            k );
    ]
  in
  List.iter
    (fun (wname, src_of) ->
      List.iter
        (fun k ->
          let src = src_of k in
          let run fastpath =
            (* Normalize heap state between measurements: the fast/base
               comparison is ns-level, and major-heap growth from earlier
               rows otherwise bleeds into later ones. *)
            Gc.compact ();
            let cfg, dt, words =
              eval_scheme ~strategy:Pstack.Types.Linked ~fastpath ~n:9 src
            in
            let get name = C.get cfg.Pstack.Machine.counters name in
            ( ns_per dt k,
              words /. float_of_int k,
              [
                ("machine.pool.hit", get "machine.pool.hit");
                ("machine.pool.miss", get "machine.pool.miss");
                ("machine.capture.moved", get "machine.capture.moved");
              ] )
          in
          let fns, fw, fm = run true in
          let bns, bw, _ = run false in
          jrow
            ~name:(Printf.sprintf "e12.%s.fast" wname)
            ~params:[ pint "captures" k ]
            ~metrics:fm ~words:fw fns;
          jrow
            ~name:(Printf.sprintf "e12.%s.base" wname)
            ~params:[ pint "captures" k ]
            ~words:bw bns;
          row "%7s %9d | %10.0f %10.0f | %11.1f %11.1f | %9d %9d\n" wname k fns
            bns fw bw (List.assoc "machine.pool.hit" fm)
            (List.assoc "machine.capture.moved" fm))
        ks)
    workloads;
  print_endline "shape: fast rows allocate fewer words per capture than base rows;";
  print_endline "       capture.moved tracks the captures 1:1 and pool.hit tracks the";
  print_endline "       spawns (gen) or the aborted captures (prune).";
  print_endline "claim: one-shot captures skip pinning and copy-on-write entirely, and";
  print_endline "       the pool recycles spawn segments that die without escaping."

(* ------------------------------------------------------------------ *)
(* E13: DPOR schedule exploration vs naive seed sweep                  *)
(* ------------------------------------------------------------------ *)

module X = Pcont_explore.Explore

let e13 () =
  header "E13  schedule exploration: DPOR backtracking vs Randomized seed sweep";
  (* Two comparisons against the blind baseline (Randomized seeds 1..n):
     coverage — on the bug-free racing(n) workload, how many DISTINCT
     causal skeletons each strategy reaches per run (redundancy =
     runs/skeletons; a sweep keeps re-executing the same few orders) —
     and bug-finding — runs until the injected lost-wakeup/stolen-relay
     deadlocks show, where the sweep finds nothing at any seed count
     because round-based schedules cannot reach the buggy window. *)
  Printf.printf "%-13s | %5s %6s %7s %7s %9s | %6s %7s %7s\n" "workload" "runs"
    "skels" "redund" "races" "sched/s" "seeds" "skels" "redund";
  let ns = if !quick then [ 2 ] else [ 2; 3 ] in
  List.iter
    (fun n ->
      let target = X.Workloads.racing n in
      let budget = if !quick then 60 else 150 in
      let st, dt = time_best ~n:1 (fun () -> X.Dpor.explore ~max_runs:budget target) in
      let runs = st.X.Dpor.s_runs in
      let sw = X.Dpor.seed_sweep ~seeds:runs target in
      let redund r s = float_of_int r /. float_of_int (max 1 s) in
      let rate = float_of_int runs /. dt in
      jrow
        ~name:(Printf.sprintf "e13.racing%d.dpor" n)
        ~params:[ pint "branches" (2 * n) ]
        ~metrics:
          [
            ("runs", runs);
            ("skeletons", st.X.Dpor.s_skeletons);
            ("races", st.X.Dpor.s_races);
          ]
        (ns_per dt runs);
      jrow
        ~name:(Printf.sprintf "e13.racing%d.sweep" n)
        ~params:[ pint "branches" (2 * n) ]
        ~metrics:[ ("seeds", sw.X.Dpor.sw_seeds); ("skeletons", sw.X.Dpor.sw_skeletons) ]
        0.;
      row "%-13s | %5d %6d %7.1f %7d %9.0f | %6d %7d %7.1f\n"
        (Printf.sprintf "racing(%d)" n)
        runs st.X.Dpor.s_skeletons
        (redund runs st.X.Dpor.s_skeletons)
        st.X.Dpor.s_races rate sw.X.Dpor.sw_seeds sw.X.Dpor.sw_skeletons
        (redund sw.X.Dpor.sw_seeds sw.X.Dpor.sw_skeletons))
    ns;
  Printf.printf "%-13s | %21s | %s\n" "bug" "dpor runs-to-find" "sweep (100 seeds)";
  List.iter
    (fun (label, target) ->
      let st = X.Dpor.explore ~max_runs:200 target in
      let found =
        match st.X.Dpor.s_witness with
        | Some w -> w.X.Dpor.w_runs_to_find
        | None -> -1
      in
      let sw = X.Dpor.seed_sweep ~seeds:100 target in
      jrow
        ~name:(Printf.sprintf "e13.bug.%s" label)
        ~params:[]
        ~metrics:
          [
            ("runs_to_find", found);
            ("sweep_found", match sw.X.Dpor.sw_found with Some _ -> 1 | None -> 0);
          ]
        0.;
      row "%-13s | %21s | %s\n" label
        (if found < 0 then "not found" else string_of_int found)
        (match sw.X.Dpor.sw_found with
        | None -> "not found"
        | Some (s, k) -> Printf.sprintf "seed %d: %s" s k))
    [
      ("lost-wakeup", X.Workloads.lost_wakeup);
      ("stolen-relay", X.Workloads.stolen_relay);
    ];
  print_endline "shape: per run, DPOR reaches several times more distinct skeletons";
  print_endline "       (Mazurkiewicz classes) than the sweep, whose seeds re-execute";
  print_endline "       equivalent orders; both injected deadlocks are found within a";
  print_endline "       handful of runs while no Randomized seed ever reaches them.";
  print_endline "claim: racing-pair backtracking explores distinct orders, not seeds."

(* ------------------------------------------------------------------ *)
(* E14: timeout/cancel sweep — cancel latency and cleanup cost at scale *)
(* ------------------------------------------------------------------ *)

module Resil = Pcont_resil.Resil

let e14 () =
  header "E14  fault tolerance at scale: timed-out fibers, cancel latency and cleanup";
  (* n tasks, each a [Resil.with_timeout] scope around a virtual-time
     sleep with a heavy-tailed (bounded-Pareto, alpha=1) duration: most
     tasks finish well inside the deadline, the tail blows past it and
     is cancelled by the timer.  Tasks run [batch] at a time — every
     slice advances the shared virtual clock by one unit, so the skew
     between a scope's service sleep and its timeout timer is bounded
     by the batch's slice count, not by n.  Everything is deterministic
     (service times from a splitmix-hashed stream, schedule from
     Tree_order), so the cancelled/completed split is a fixed property
     of (n, deadline).

     Measured from the run's Obs.Metrics histograms:
     - cancel latency: virtual-time units between the scope's deadline
       and its caller observing [Error (Cancelled _)] (scope machinery
       plus scheduling delay, in clock units);
     - cleanup cost: fibers discarded per scope abort
       (sched.cancel.pids) — the subtree the abort swept. *)
  let deadline = 500 and batch = 8 in
  let service i =
    (* bounded Pareto by inverse transform on a hashed uniform:
       s = lo/u, clamped; P(s > deadline) = lo/deadline = 10% *)
    let h = Int64.of_int (i + 1) in
    let h = Int64.mul h 0x9E3779B97F4A7C15L in
    let h = Int64.logxor h (Int64.shift_right_logical h 31) in
    let u =
      (Int64.to_float (Int64.logand h 0xFFFFFFFFL) +. 1.) /. 4294967296.
    in
    min 20_000 (int_of_float (50. /. u))
  in
  let ns = if !quick then [ 1_000 ] else [ 1_000; 10_000 ] in
  Printf.printf "%7s | %9s %9s | %9s %9s %9s | %9s %9s\n" "fibers" "cancelled"
    "completed" "lat p50" "lat mean" "lat max" "swept/cxl" "us/fiber";
  List.iter
    (fun n ->
      let run () =
        let o = Obs.create () in
        let cancelled = ref 0 and completed = ref 0 in
        Sched.run ~obs:o (fun () ->
            let i = ref 0 in
            while !i < n do
              let b = min batch (n - !i) in
              let base = !i in
              ignore
                (Sched.pcall
                   (List.init b (fun j () ->
                        let t0 = Sched.now () in
                        (match
                           Resil.with_timeout deadline (fun () ->
                               Sched.sleep (service (base + j)))
                         with
                        | Ok () -> incr completed
                        | Error _ ->
                            incr cancelled;
                            Obs.observe o "resil.cancel.latency"
                              (Sched.now () - t0 - deadline));
                        0)));
              i := !i + b
            done);
        (o, !cancelled, !completed)
      in
      let (o, ncxl, ndone), dt = time_best ~n:(if !quick then 1 else 2) run in
      let m = Obs.metrics o in
      let hist name =
        match Obs.Metrics.find m name with
        | Some h -> (Obs.Metrics.hist_mean h, Obs.Metrics.hist_max h)
        | None -> (0., 0)
      in
      let lat_mean, lat_max = hist "resil.cancel.latency" in
      (* median from the power-of-two buckets: the bound of the bucket
         where the cumulative count crosses half *)
      let lat_p50 =
        match Obs.Metrics.find m "resil.cancel.latency" with
        | None -> "-"
        | Some h ->
            let half = (Obs.Metrics.hist_count h + 1) / 2 in
            let acc = ref 0 and med = ref "-" in
            List.iter
              (fun (b, c) ->
                if !acc < half then begin
                  acc := !acc + c;
                  if !acc >= half then med := b
                end)
              (Obs.Metrics.hist_buckets h);
            !med
      in
      let swept_mean, _ = hist "sched.cancel.pids" in
      jrow
        ~name:(Printf.sprintf "e14.timeout%d" n)
        ~params:[ pint "fibers" n; pint "deadline" deadline ]
        ~metrics:
          [
            ("cancelled", ncxl);
            ("completed", ndone);
            ("cancel_latency_mean", int_of_float lat_mean);
            ("cancel_latency_max", lat_max);
            ("swept_per_cancel", int_of_float swept_mean);
          ]
        (ns_per dt n);
      row "%7d | %9d %9d | %9s %9.1f %9d | %9.1f %9.2f\n" n ncxl ndone lat_p50
        lat_mean lat_max swept_mean
        (dt *. 1e6 /. float_of_int n))
    ns;
  print_endline "shape: the cancelled share tracks the tail mass past the deadline";
  print_endline "       (~10% under alpha=1, lo/deadline=0.1); cancel latency is bounded";
  print_endline "       by the batch's slice count (it does not grow with n), and each";
  print_endline "       abort sweeps the constant-size scope subtree.";
  print_endline "claim: cancellation is capture-and-discard, so its cost is the same";
  print_endline "       traversal the paper's control operator already pays."

(* ------------------------------------------------------------------ *)
(* E15: telemetry overhead — no handle vs metrics vs ring vs full JSONL *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15  telemetry overhead: none vs metrics-only vs flight ring vs full JSONL";
  (* The e9 fork-tree workload at fine grain (>= 10^4 fibers), run on
     the pstack concurrent scheduler once per observation config:
     - none:    no handle — the baseline the overhead ratios are against;
     - metrics: a handle with no sinks: each event costs one sequence
       increment, each observation feeds a histogram and a sketch;
     - ring:    the flight recorder — events formatted into a fixed ring
       of lines, no I/O on the hot path;
     - jsonl:   every event serialized into a growing buffer (the full
       always-on trace).
     The sizes do not shrink under quick: the CI smoke asserts the ring
     config stays within 10% of baseline at this fiber count.  Quantum
     is the production grain (e9's sweep shows 16 is rotation-bound):
     overhead is per slice, so the ratio is a statement about slices of
     useful size, not about the scheduler's context-switch floor. *)
  let defs =
    {|
(define (tsum lo hi grain)
  (if (<= (- hi lo) grain)
      (let loop ([i lo] [acc 0])
        (if (> i hi) acc (loop (+ i 1) (+ acc i))))
      (let ([mid (quotient (+ lo hi) 2)])
        (pcall + (tsum lo mid grain) (tsum (+ mid 1) hi grain)))))
|}
  in
  let n = 1 lsl 15 and grain = 4 and quantum = 256 in
  let reps = if !quick then 2 else 3 in
  let configs =
    [
      ("none", fun () -> None);
      ("metrics", fun () -> Some (Obs.create ()));
      ( "ring",
        fun () ->
          (* default capacity — the configuration psi --flight and
             ptrace gen --flight attach; it also keeps the ring's
             working set inside L2, which is part of why it is cheap *)
          let o = Obs.create () in
          Obs.attach o (Obs.Sink.ring_sink (Obs.Sink.ring ()));
          Some o );
      ( "jsonl",
        fun () ->
          let o = Obs.create () in
          let buf = Buffer.create (1 lsl 22) in
          Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
          Some o );
    ]
  in
  Printf.printf "%8s | %12s %10s | %8s\n" "config" "ms" "overhead" "fibers";
  let base = ref 0. in
  List.iter
    (fun (label, mk) ->
      let t = Interp.create () in
      ignore (Interp.eval_string t defs);
      let src = Printf.sprintf "(tsum 1 %d %d)" n grain in
      let expected = n * (n + 1) / 2 in
      let obs = mk () in
      let cfg = Interp.config t in
      C.reset cfg.Pstack.Machine.counters;
      let (), dt =
        time_best ~n:reps (fun () ->
            match
              Interp.eval_value
                ~mode:(Interp.Concurrent Pstack.Concur.Round_robin)
                ~quantum ?obs ~fuel:2_000_000_000 t src
            with
            | Pstack.Types.Int v when v = expected -> ()
            | v -> failwith ("bad sum " ^ Pstack.Value.to_string v))
      in
      let forks = C.get cfg.Pstack.Machine.counters "concur.fork" / reps in
      (* every pcall forks three children (operator + two operands) *)
      let fibers = 1 + (3 * forks) in
      if fibers < 10_000 then failwith "e15: workload below 10^4 fibers";
      if label = "none" then base := dt;
      let overhead_pct =
        int_of_float (Float.round ((dt /. !base -. 1.) *. 100.))
      in
      jrow
        ~name:("e15." ^ label)
        ~params:
          [ pint "n" n; pint "grain" grain; pint "quantum" quantum; pint "fibers" fibers ]
        ~metrics:[ ("overhead_pct", overhead_pct); ("fibers", fibers) ]
        (dt *. 1e9);
      row "%8s | %12.2f %9d%% | %8d\n" label (dt *. 1e3) overhead_pct fibers)
    configs;
  print_endline "shape: metrics-only and the ring stay within a few percent of the";
  print_endline "       unobserved run (the flight recorder is safe to leave on);";
  print_endline "       full JSONL pays for serializing every event.";
  print_endline "claim: always-on telemetry costs <=10% at 10^4 fibers (CI-asserted)."

(* ------------------------------------------------------------------ *)
(* e16: open-loop server scenarios with SLO latency attribution        *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header "e16  open-loop server scenarios (latency in virtual ticks)";
  let profile = if !quick then Load.quick else Load.full in
  let floor_fibers = if !quick then 10_000 else 100_000 in
  row "%-9s %8s %6s %6s | %7s %7s %7s | %6s %6s %6s %6s | %7s %9s\n" "scenario"
    "requests" "ok" "t/o" "p50" "p99" "p999" "queue" "svc" "wake" "join" "peak"
    "req/ktick";
  List.iter
    (fun scen ->
      let st, dt = time_best ~n:3 (fun () -> Load.run profile ~seed:1L scen) in
      if st.Load.st_attr_residual <> 0 then
        failwith "e16: latency attribution does not sum to end-to-end";
      if st.Load.st_peak_live < floor_fibers then
        failwith
          (Printf.sprintf "e16: %s peaked at %d fibers (< %d)"
             st.Load.st_scenario st.Load.st_peak_live floor_fibers);
      let q p =
        int_of_float (Obs.Metrics.Sketch.quantile st.Load.st_latency p)
      in
      let mean sk = Obs.Metrics.Sketch.mean sk in
      let imean sk = int_of_float (mean sk) in
      jrow
        ~name:("e16." ^ st.Load.st_scenario)
        ~params:[ pint "requests" st.Load.st_requests; pint "seed" 1 ]
        ~metrics:
          [
            ("p50", q 0.50);
            ("p99", q 0.99);
            ("p999", q 0.999);
            ("queue_mean", imean st.Load.st_queue);
            ("service_mean", imean st.Load.st_service);
            ("wake_mean", imean st.Load.st_wake);
            ("join_mean", imean st.Load.st_join);
            ("completed", st.Load.st_completed);
            ("timedout", st.Load.st_timedout);
            ("peak_fibers", st.Load.st_peak_live);
            ("fairness_pm", int_of_float (st.Load.st_fairness *. 1000.));
            ("goodput_cpkt", int_of_float (st.Load.st_goodput *. 100.));
            ("attr_residual", st.Load.st_attr_residual);
          ]
        (dt *. 1e9 /. float_of_int st.Load.st_requests);
      row "%-9s %8d %6d %6d | %7d %7d %7d | %6d %6d %6d %6d | %7d %9.2f\n"
        st.Load.st_scenario st.Load.st_requests st.Load.st_completed
        st.Load.st_timedout (q 0.50) (q 0.99) (q 0.999)
        (imean st.Load.st_queue)
        (imean st.Load.st_service)
        (imean st.Load.st_wake)
        (imean st.Load.st_join)
        st.Load.st_peak_live st.Load.st_goodput)
    Load.scenarios;
  print_endline "shape: queue-wait dominates under overload (open-loop arrivals do";
  print_endline "       not slow down with the server); the four phases sum exactly";
  print_endline "       to end-to-end latency (residual CI-asserted to 0).";
  print_endline "claim: four server scenarios sustain >=10^5 concurrent fibers";
  print_endline "       (>=10^4 quick) with seed-deterministic traces."

(* ------------------------------------------------------------------ *)
(* micro: bechamel measurements of the native primitives               *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "micro  bechamel OLS estimates (ns/run)";
  let open Bechamel in
  let open Toolkit in
  let tests =
    [
      Test.make ~name:"spawn" (Staged.stage (fun () -> Pcont.Spawn.spawn (fun _ -> 0)));
      Test.make ~name:"control+resume"
        (Staged.stage (fun () ->
             Pcont.Spawn.spawn (fun c ->
                 Pcont.Spawn.control c (fun k -> Pcont.Spawn.resume k 0))));
      Test.make ~name:"spawn_exit(abort)"
        (Staged.stage (fun () -> Pcont.Exit.spawn_exit (fun e -> e.Pcont.Exit.exit 0)));
      Test.make ~name:"generator next"
        (let g = Pcont.Generator.ints () in
         Staged.stage (fun () -> ignore (Pcont.Generator.next g)));
    ]
  in
  let test = Test.make_grouped ~name:"pcont" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] |> List.sort compare in
  List.iter
    (fun name ->
      let res = Hashtbl.find results name in
      match Analyze.OLS.estimates res with
      | Some [ est ] ->
          jrow ~name:("micro." ^ name) ~params:[] est;
          row "  %-24s %10.1f ns\n" name est
      | Some ests ->
          row "  %-24s %s\n" name
            (String.concat ", " (List.map (Printf.sprintf "%.1f") ests))
      | None -> row "  %-24s (no estimate)\n" name)
    names

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e12", e12);
    ("e13", e13);
    ("e14", e14);
    ("e15", e15);
    ("e16", e16);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | [] -> List.rev acc
    | "quick" :: rest ->
        quick := true;
        parse acc rest
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse acc rest
    | [ "--json" ] ->
        prerr_endline "--json requires a file argument";
        exit 2
    | "--baseline" :: file :: rest ->
        baseline_file := Some file;
        parse acc rest
    | [ "--baseline" ] ->
        prerr_endline "--baseline requires a file argument";
        exit 2
    | "--regress-pct" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p > 0. ->
            regress_pct := p;
            parse acc rest
        | _ ->
            prerr_endline "--regress-pct requires a positive number";
            exit 2)
    | [ "--regress-pct" ] ->
        prerr_endline "--regress-pct requires a number argument";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  let selected =
    match args with [] | [ "all" ] -> List.map fst experiments | picks -> picks
  in
  print_endline "pcont benchmark harness (Hieb & Dybvig, PPoPP 1990 reproduction)";
  if !quick then print_endline "(quick mode: reduced sizes)";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S (have: %s)\n" name
            (String.concat ", " (List.map fst experiments)))
    selected;
  write_json ();
  exit (compare_baseline ())
