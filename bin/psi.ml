(* psi — process-continuation Scheme interpreter.

   Runs Scheme programs with the paper's control operators (spawn, process
   controllers and continuations, pcall, parallel-or, future/touch) on the
   process-stack machine, either sequentially or under the concurrent
   tree-of-stacks scheduler.  With no program it starts a REPL.

   Diagnostics: --stats prints the machine's instrumentation counters
   (captures, segments/frames moved, forks, locks) and the scheduler's
   histograms; --trace streams scheduler events to stderr; --trace-out
   writes the event stream to a file as human text, JSONL or Chrome
   trace-event JSON (--trace-format); --summary prints a per-process
   table of slices, fuel, parks and captures; --strategy copying switches
   to the stack-copying continuation representation of experiment E1. *)

module Interp = Pcont_syntax.Interp
module Pstack = Pcont_pstack
module Bridge = Pcont_bridge.Bridge
module M = Pcont_machine
module Obs = Pcont_obs.Obs

(* Run a whole program on the Section 6 rewriting machine (--backend
   machine|zipper): the program is folded into one closed term and
   rewritten to a value. *)
let run_on_machine ~zipper fuel src =
  match Bridge.scheme_to_term src with
  | Error m ->
      Printf.printf "error: %s\n" m;
      1
  | Ok term -> (
      let eval t = if zipper then M.Zipper.eval ?fuel t else M.Eval.eval ?fuel t in
      match eval term with
      | M.Eval.Value v ->
          print_endline (M.Pp.term_to_string v);
          0
      | M.Eval.Stuck m ->
          Printf.printf "error: machine stuck: %s\n" m;
          1
      | M.Eval.Out_of_fuel _ ->
          print_endline "error: out of fuel";
          1)

let print_result show_defines r =
  begin
    match r with
    | Interp.Value Pcont_pstack.Types.Unit -> ()
    | Interp.Value v -> print_endline (Pcont_pstack.Value.to_string v)
    | Interp.Defined x -> if show_defines then Printf.printf "%s\n" x
    | Interp.Error msg -> Printf.printf "error: %s\n" msg
  end;
  let out = Interp.take_output () in
  if out <> "" then print_string out

let print_stats t obs =
  let counters = (Interp.config t).Pstack.Machine.counters in
  (match Pcont_util.Counters.to_list counters with
  | [] -> prerr_endline ";; no machine events recorded"
  | stats ->
      prerr_endline ";; machine statistics:";
      List.iter (fun (name, v) -> Printf.eprintf ";;   %-36s %d\n" name v) stats);
  match obs with
  | None -> ()
  | Some o -> (
      let mx = Obs.metrics o in
      match
        List.filter (fun (_, h) -> Obs.Metrics.hist_count h > 0) (Obs.Metrics.hists mx)
      with
      | [] -> ()
      | hists ->
          prerr_endline ";; scheduler histograms:";
          List.iter
            (fun (name, h) ->
              Printf.eprintf ";;   %-36s n=%d mean=%.1f max=%d\n" name
                (Obs.Metrics.hist_count h) (Obs.Metrics.hist_mean h)
                (Obs.Metrics.hist_max h))
            hists)

let repl t mode eval_form =
  Printf.printf "psi — Scheme with process continuations (Hieb & Dybvig, PPoPP 1990)\n";
  Printf.printf "mode: %s; type an expression, or Ctrl-D to exit\n"
    (match mode with Interp.Sequential -> "sequential" | Interp.Concurrent _ -> "concurrent");
  let rec loop () =
    print_string "> ";
    match In_channel.input_line stdin with
    | None -> print_newline ()
    | Some line ->
        if String.trim line <> "" then List.iter (print_result true) (eval_form t line);
        loop ()
  in
  loop ()

let print_analysis events =
  let events = Array.of_list (List.rev events) in
  prerr_endline ";; causal report:";
  Array.iteri
    (fun i run ->
      if i > 0 then Format.eprintf "@.";
      Pcont_obs.Analysis.Report.pp Format.err_formatter
        (Pcont_obs.Analysis.Report.of_run (Pcont_obs.Trace.reconstruct run)))
    (Pcont_obs.Trace.runs events)

let run file expr concurrent seed replay no_prelude fuel quantum strategy stats trace
    trace_out trace_format summary analyze flight sample backend =
  (match backend with
  | "pstack" | "machine" | "zipper" -> ()
  | other ->
      Printf.eprintf "psi: unknown backend %S (expected pstack, machine or zipper)\n" other;
      exit 2);
  (* The scheduler and continuation-representation flags only mean
     something on the pstack backend; reject rather than silently ignore
     them (a trace that was never going to be written is a bug hidden). *)
  if backend <> "pstack" then begin
    let reject flag present =
      if present then begin
        Printf.eprintf "psi: %s is not supported with --backend %s\n" flag backend;
        exit 2
      end
    in
    reject "--concurrent" concurrent;
    reject "--seed" (seed <> None);
    reject "--replay" (replay <> None);
    reject "--quantum" (quantum <> None);
    reject "--trace" trace;
    reject "--trace-out" (trace_out <> None);
    reject "--trace-format" (trace_format <> None);
    reject "--summary" summary;
    reject "--analyze" analyze;
    reject "--stats" stats;
    reject "--flight" (flight <> None);
    reject "--sample" (sample <> None);
    reject "--strategy copying" (strategy = "copying")
  end;
  (match sample with
  | Some r when r < 0. || r > 1. ->
      Printf.eprintf "psi: --sample rate must be in [0,1], got %g\n" r;
      exit 2
  | Some _ when trace_out = None ->
      Printf.eprintf "psi: --sample requires --trace-out (it thins that sink)\n";
      exit 2
  | _ -> ());
  (match trace_format with
  | Some _ when trace_out = None ->
      Printf.eprintf "psi: --trace-format requires --trace-out\n";
      exit 2
  | Some ("human" | "jsonl" | "chrome") | None -> ()
  | Some other ->
      Printf.eprintf "psi: unknown trace format %S (expected human, jsonl or chrome)\n"
        other;
      exit 2);
  let trace_format = Option.value trace_format ~default:"jsonl" in
  if replay <> None && seed <> None then begin
    Printf.eprintf "psi: --replay and --seed are mutually exclusive\n";
    exit 2
  end;
  (* --replay pins every scheduling decision to a recorded schedule (a
     trace from --trace-out or a witness from ptrace explore); all other
     nondeterminism already lives behind the decision function, so the
     re-run is deterministic.  Divergence is reported on exit. *)
  let replay_driver =
    match replay with
    | None -> None
    | Some path -> (
        match Pcont_explore.Explore.Schedule.load path with
        | Ok sched -> Some (Pcont_explore.Explore.Replay.driver sched)
        | Error m ->
            Printf.eprintf "psi: %s: %s\n" path m;
            exit 2)
  in
  let mode =
    match replay_driver with
    | Some (pick, _) -> Interp.Concurrent (Pcont_pstack.Concur.Driven_pids pick)
    | None ->
        if concurrent || seed <> None || trace || trace_out <> None || summary || analyze
           || flight <> None
        then
          Interp.Concurrent
            (match seed with
            | None -> Pcont_pstack.Concur.Round_robin
            | Some s -> Pcont_pstack.Concur.Randomized (Int64.of_int s))
        else Interp.Sequential
  in
  let strategy =
    match strategy with
    | "linked" -> Pstack.Types.Linked
    | "copying" -> Pstack.Types.Copying
    | other ->
        Printf.eprintf "psi: unknown strategy %S (expected linked or copying)\n" other;
        exit 2
  in
  let t = Interp.create ~prelude:(not no_prelude) ~strategy () in
  (* One observability handle feeds every consumer — the --trace stream,
     the --trace-out sink, the --summary table, the histograms shown by
     --stats.  Its metrics share the interpreter's counter table, so
     machine counters and scheduler metrics land in one report. *)
  let obs =
    if
      (trace || trace_out <> None || summary || analyze || stats || flight <> None)
      && backend = "pstack"
    then
      Some
        (Obs.create
           ~metrics:
             (Obs.Metrics.create
                ~counters:(Interp.config t).Pstack.Machine.counters ())
           ())
    else None
  in
  let summary_tbl = if summary then Some (Obs.Summary.create ()) else None in
  let analyze_buf = if analyze then Some (ref []) else None in
  let cleanups = ref [] in
  (match obs with
  | None -> ()
  | Some o ->
      if trace then
        Obs.attach o (Obs.Sink.human ~prefix:";; " (Obs.Sink.of_channel stderr));
      (match analyze_buf with
      | None -> ()
      | Some buf ->
          Obs.attach o
            (Obs.Sink.memory (fun (seq, ts, ev) ->
                 buf := { Pcont_obs.Trace.seq; ts; ev } :: !buf)));
      (match trace_out with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          cleanups := (fun () -> close_out oc) :: !cleanups;
          let write = Obs.Sink.of_channel oc in
          let sink =
            match trace_format with
            | "human" -> Obs.Sink.human write
            | "chrome" -> Obs.Sink.chrome write
            | _ -> Obs.Sink.jsonl write
          in
          let sink =
            (* Deterministic head sampling: the keep/drop decision is a
               pure hash of (sampler seed, pid), so the thinned trace is
               byte-identical run to run for a given --seed. *)
            match sample with
            | None -> sink
            | Some rate ->
                Obs.Sink.sampled
                  ~seed:(Int64.of_int (Option.value seed ~default:0))
                  ~rate sink
          in
          Obs.attach o sink);
      (match flight with
      | None -> ()
      | Some path ->
          let dump body =
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc body)
          in
          let rb = Obs.Sink.ring ~capacity:4096 ~flight:dump () in
          Obs.attach o (Obs.Sink.ring_sink rb);
          (* if nothing tripped the recorder, still leave the window on
             disk at exit — the on-demand dump *)
          cleanups :=
            (fun () ->
              if Obs.Sink.ring_dumps rb = 0 then
                Out_channel.with_open_bin path (fun oc ->
                    Obs.Sink.ring_dump rb (Out_channel.output_string oc)))
            :: !cleanups);
      match summary_tbl with
      | None -> ()
      | Some s -> Obs.attach o (Obs.Summary.sink s));
  let eval_form t src = Interp.eval_string ~mode ?fuel ?quantum ?obs t src in
  let finish code =
    (match obs with None -> () | Some o -> Obs.close o);
    (match replay_driver with
    | None -> ()
    | Some (_, probe) -> (
        match probe () with
        | None -> ()
        | Some d ->
            let module R = Pcont_explore.Explore.Replay in
            let cands =
              String.concat ", "
                (Array.to_list (Array.map string_of_int d.R.d_candidates))
            in
            if d.R.d_wanted < 0 then
              Printf.eprintf
                ";; psi: replay diverged at decision %d: schedule exhausted \
                 (runnable: %s)\n"
                d.R.d_decision cands
            else
              Printf.eprintf
                ";; psi: replay diverged at decision %d: recorded pid %d not \
                 runnable (runnable: %s)\n"
                d.R.d_decision d.R.d_wanted cands));
    List.iter (fun f -> f ()) !cleanups;
    (match summary_tbl with
    | None -> ()
    | Some s ->
        prerr_endline ";; per-process summary:";
        Format.eprintf "%a@." Obs.Summary.pp s);
    (match analyze_buf with None -> () | Some buf -> print_analysis !buf);
    if stats then print_stats t obs;
    code
  in
  let run_source src =
    match backend with
    | "machine" -> run_on_machine ~zipper:false fuel src
    | "zipper" -> run_on_machine ~zipper:true fuel src
    | _ ->
        let results = eval_form t src in
        List.iter (print_result false) results;
        if List.exists (function Interp.Error _ -> true | _ -> false) results then 1
        else 0
  in
  match (file, expr) with
  | None, None ->
      repl t mode eval_form;
      finish 0
  | _, Some src -> finish (run_source src)
  | Some path, None -> (
      match In_channel.with_open_text path In_channel.input_all with
      | src -> finish (run_source src)
      | exception Sys_error msg ->
          Printf.eprintf "psi: %s\n" msg;
          2)

open Cmdliner

let file =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Scheme program to run.")

let expr =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "eval" ] ~docv:"EXPR" ~doc:"Evaluate $(docv) instead of a file.")

let concurrent =
  Arg.(
    value & flag
    & info [ "c"; "concurrent" ]
        ~doc:"Run under the concurrent tree-of-stacks scheduler (pcall forks, future plants trees).")

let seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:"Randomize the branch interleaving with seed $(docv) (implies --concurrent).")

let replay =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Pin every scheduling decision to the schedule recorded in $(docv) — a \
           JSONL trace written by --trace-out, or a schedule/witness file from \
           $(b,ptrace explore) — making the run deterministic (implies \
           --concurrent; excludes --seed).  Divergence from the recorded \
           schedule is reported on stderr.")

let no_prelude =
  Arg.(value & flag & info [ "no-prelude" ] ~doc:"Do not load the Scheme prelude.")

let fuel =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"STEPS" ~doc:"Abort after $(docv) machine transitions.")

let quantum =
  Arg.(
    value
    & opt (some int) None
    & info [ "quantum" ] ~docv:"STEPS"
        ~doc:"Machine transitions per branch before the scheduler rotates (default 16).")

let strategy =
  Arg.(
    value & opt string "linked"
    & info [ "strategy" ] ~docv:"S"
        ~doc:"Continuation representation: $(b,linked) (the paper's segments) or $(b,copying) (stack-copying baseline).")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print machine instrumentation counters and scheduler histograms to \
           stderr on exit.  Alongside the control-operation counters \
           (capture.segments, reinstate.segments, ...), the capture fast path \
           reports $(b,machine.pool.hit) / $(b,machine.pool.miss) (segment \
           allocations served from / missed by the segment pool) and \
           $(b,machine.capture.moved) (captures whose segments were moved by \
           the one-shot path instead of pinned for copy-on-write).")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Stream scheduler events (spawns, run slices, parks, captures, grafts) \
           to stderr; implies --concurrent.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the scheduler event stream to $(docv); implies --concurrent.")

let trace_format =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-format" ] ~docv:"F"
        ~doc:
          "Format for --trace-out: $(b,human), $(b,jsonl) (default), or $(b,chrome) \
           (trace-event JSON for chrome://tracing or Perfetto).")

let summary =
  Arg.(
    value & flag
    & info [ "summary" ]
        ~doc:
          "Print a per-process summary (slices, fuel, parks, captures, channel \
           traffic) to stderr on exit; implies --concurrent.")

let analyze =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Print a causal report (critical path, per-process utilization, \
           blocked-time attribution) to stderr on exit, computed from the run's \
           event stream; implies --concurrent.  See also $(b,ptrace report) for \
           analyzing an exported trace file.")

let flight =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Attach a flight recorder: a fixed-size ring of the last 4096 \
           scheduler events, dumped to $(docv) as JSONL automatically on \
           deadlock or crash (otherwise at exit).  The dump is an ordinary \
           trace — analyze it with $(b,ptrace check)/$(b,report); implies \
           --concurrent.")

let sample =
  Arg.(
    value
    & opt (some float) None
    & info [ "sample" ] ~docv:"RATE"
        ~doc:
          "Head-sample the --trace-out stream: keep per-fiber detail events \
           (slices, parks, wakes, sends, recvs, spans) for a deterministic \
           $(docv) fraction of fibers, keyed by pid and the --seed value. \
           Lifecycle events (spawn, exit, crash, deadlock) are always kept.")

let backend =
  Arg.(
    value & opt string "pstack"
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Evaluator: $(b,pstack) (the Section 7 process-stack machine), \
           $(b,machine) (the Section 6 rewriting semantics; pure fragment + \
           spawn only), or $(b,zipper) (the focused Section 6 stepper).")

let cmd =
  let doc = "Scheme with process continuations (spawn, pcall, parallel-or, future)" in
  Cmd.v
    (Cmd.info "psi" ~version:"1.0.0" ~doc)
    Term.(
      const run $ file $ expr $ concurrent $ seed $ replay $ no_prelude $ fuel $ quantum
      $ strategy $ stats $ trace $ trace_out $ trace_format $ summary $ analyze
      $ flight $ sample $ backend)

let () = exit (Cmd.eval' cmd)
