(* ptrace — analyze exported scheduler traces.

   Subcommands over the JSONL event stream written by psi --trace-out or
   any Obs.Sink.jsonl consumer:

     ptrace check  TRACE        lint the trace against the event-stream
                                invariants (exit 1 on any violation)
     ptrace report TRACE        causal profile per run: critical path,
                                utilization, fairness, blocked time
     ptrace diff   LEFT RIGHT   first causal divergence between two
                                traces (exit 1 when they diverge)
     ptrace gen                 run a built-in mirrored workload on the
                                pstack or native scheduler and write its
                                trace, for cross-scheduler comparisons
     ptrace replay INPUT        re-run a workload pinned to a recorded
                                trace or schedule file; when the input is
                                a trace, require the replay byte-identical
     ptrace explore             DPOR-style schedule exploration of a
                                workload: flip racing decisions, check
                                every run's invariants, emit a minimized
                                replayable witness on the first violation
     ptrace top    TRACE        live dashboard: tail a growing JSONL file
                                and render fiber fates, streaming
                                percentiles and top blocked resources

   All subcommands take --json for machine-readable output; report and
   diff output is byte-deterministic for a given input. *)

module Obs = Pcont_obs.Obs
module Trace = Pcont_obs.Trace
module Analysis = Pcont_obs.Analysis
module Explore = Pcont_explore.Explore

let load_or_die path =
  match Trace.load path with
  | Ok events -> events
  | Error m ->
      Printf.eprintf "ptrace: %s: %s\n" path m;
      exit 2

let run_check path json =
  let events = load_or_die path in
  let violations = Analysis.Check.run events in
  if json then
    print_endline (Obs.Json.to_string (Analysis.Check.to_json violations))
  else Format.printf "%a" Analysis.Check.pp violations;
  if violations = [] then 0 else 1

let run_report path json top =
  let events = load_or_die path in
  let reports = Analysis.Report.of_trace events in
  if json then
    print_endline
      (Obs.Json.to_string (Obs.Json.Arr (List.map Analysis.Report.to_json reports)))
  else
    List.iteri
      (fun i r ->
        if i > 0 then print_newline ();
        if List.length reports > 1 then Format.printf "=== run %d ===@." i;
        Analysis.Report.pp ?top Format.std_formatter r)
      reports;
  0

let run_slo path asserts json =
  let events = load_or_die path in
  let asserts =
    List.map
      (fun a ->
        match Analysis.Slo.parse_assert a with
        | Ok a -> a
        | Error m ->
            Printf.eprintf "ptrace: %s\n" m;
            exit 2)
      asserts
  in
  let slo = Analysis.Slo.of_trace events in
  if json then print_endline (Obs.Json.to_string (Analysis.Slo.to_json slo))
  else Format.printf "%a" Analysis.Slo.pp slo;
  let failures =
    List.filter_map
      (fun a ->
        match Analysis.Slo.check slo a with
        | Ok () -> None
        | Error m -> Some m)
      asserts
  in
  List.iter (Printf.eprintf "ptrace: %s\n") failures;
  if failures = [] then 0 else 1

let run_diff left right json =
  let l = load_or_die left and r = load_or_die right in
  let d = Analysis.Diff.diff l r in
  if json then print_endline (Obs.Json.to_string (Analysis.Diff.to_json d))
  else Format.printf "@[<v>%a@]" Analysis.Diff.pp d;
  match d with None -> 0 | Some _ -> 1

(* The gen workloads live in Pcont_explore.Explore.Workloads so that gen,
   replay and explore all run the byte-for-byte same programs: a trace
   written by `ptrace gen` replays against `--workload gen`/`gen-pstack`
   with no drift between the two definitions. *)
let run_gen scheduler seed workload faults out flight ring_cap =
  let target =
    match workload with
    | Some name -> (
        match Explore.Workloads.find name with
        | Some t -> t
        | None ->
            Printf.eprintf "ptrace: unknown workload %S (expected one of: %s)\n"
              name
              (String.concat ", " Explore.Workloads.names);
            exit 2)
    | None -> (
        match scheduler with
        | "pstack" -> Explore.Workloads.gen_pstack
        | "native" -> Explore.Workloads.gen_native
        | other ->
            Printf.eprintf
              "ptrace: unknown scheduler %S (expected pstack or native)\n" other;
            exit 2)
  in
  (* The flight recorder rides along on the recording handle: a ring
     sink that dumps the last events as JSONL to --flight on Deadlock /
     Crash, or at the end of the run if nothing tripped it. *)
  let ring =
    match flight with
    | None -> None
    | Some path ->
        let dump body =
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc body)
        in
        Some (path, Obs.Sink.ring ~capacity:ring_cap ~flight:dump ())
  in
  let attach =
    Option.map (fun (_, rb) o -> Obs.attach o (Obs.Sink.ring_sink rb)) ring
  in
  let r =
    Explore.Replay.record ~policy:(Explore.Seeded (Int64.of_int seed)) ~faults
      ?attach target
  in
  (match out with
  | None -> print_string r.Explore.Replay.rec_trace
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc r.Explore.Replay.rec_trace));
  (match ring with
  | None -> ()
  | Some (path, rb) ->
      if Obs.Sink.ring_dumps rb = 0 then
        Out_channel.with_open_bin path (fun oc ->
            Obs.Sink.ring_dump rb (Out_channel.output_string oc));
      Printf.eprintf "flight: %d event(s) (%d dropped) to %s%s\n"
        (Obs.Sink.ring_stored rb) (Obs.Sink.ring_dropped rb) path
        (if Obs.Sink.ring_dumps rb > 0 then " (auto-dumped on failure)" else ""));
  Printf.eprintf "outcome: %s\n" r.Explore.Replay.rec_outcome;
  0

(* ---- top ------------------------------------------------------------- *)

(* Live dashboard over a growing JSONL file: tail new complete lines,
   feed them through Analysis.Snapshot, redraw.  Tolerant of a file
   that does not exist yet (the run may not have started) and of a
   torn final line (kept buffered until its newline arrives). *)
let run_top path interval once =
  let snap = Analysis.Snapshot.create () in
  let carry = Buffer.create 4096 in
  let pos = ref 0 in
  let feed_new () =
    (try
       let ic = open_in_bin path in
       let len = in_channel_length ic in
       if len < !pos then pos := 0 (* file truncated/replaced: start over *);
       if len > !pos then begin
         seek_in ic !pos;
         Buffer.add_string carry (really_input_string ic (len - !pos));
         pos := len
       end;
       close_in ic
     with Sys_error _ -> ());
    let s = Buffer.contents carry in
    let rec go start =
      match String.index_from_opt s start '\n' with
      | None -> start
      | Some nl ->
          let line = String.sub s start (nl - start) in
          (if String.trim line <> "" then
             match Trace.parse_string line with
             | Ok evs -> Array.iter (Analysis.Snapshot.feed snap) evs
             | Error _ -> () (* garbage line mid-write: skip, keep tailing *));
          go (nl + 1)
    in
    let consumed = go 0 in
    if consumed > 0 then begin
      let rest = String.sub s consumed (String.length s - consumed) in
      Buffer.clear carry;
      Buffer.add_string carry rest
    end
  in
  let render () =
    if not once then print_string "\027[2J\027[H";
    Format.printf "ptrace top — %s@,%a@." path Analysis.Snapshot.pp snap
  in
  if once then begin
    feed_new ();
    render ();
    0
  end
  else begin
    Sys.catch_break true;
    (try
       while true do
         feed_new ();
         render ();
         Unix.sleepf interval
       done
     with Sys.Break -> ());
    0
  end

(* ---- replay / explore ------------------------------------------------ *)

(* Both subcommands need a target; either a built-in workload by name or
   an ad-hoc Scheme expression on the pstack scheduler (native programs
   cannot be passed on a command line — use --workload for those). *)
let resolve_target workload expr =
  match (workload, expr) with
  | Some _, Some _ ->
      Printf.eprintf "ptrace: --workload and --expr are mutually exclusive\n";
      exit 2
  | None, None ->
      Printf.eprintf "ptrace: need a program: --workload NAME or --expr EXPR\n";
      Printf.eprintf "ptrace: built-in workloads: %s\n"
        (String.concat ", " Explore.Workloads.names);
      exit 2
  | Some name, None -> (
      match Explore.Workloads.find name with
      | Some t -> t
      | None ->
          Printf.eprintf "ptrace: unknown workload %S (expected one of: %s)\n" name
            (String.concat ", " Explore.Workloads.names);
          exit 2)
  | None, Some src -> Explore.pstack_target "expr" src

(* First differing line between the recorded and replayed trace bytes. *)
let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | [], [] -> Printf.sprintf "traces differ (line %d)" i
    | x :: _, [] -> Printf.sprintf "replay is shorter: recording line %d is %s" i x
    | [], y :: _ -> Printf.sprintf "replay is longer: extra line %d is %s" i y
    | x :: xs, y :: ys ->
        if String.equal x y then go (i + 1) (xs, ys)
        else Printf.sprintf "line %d: recorded %s, replayed %s" i x y
  in
  go 1 (la, lb)

let pp_divergence d =
  let cands =
    String.concat ", "
      (Array.to_list (Array.map string_of_int d.Explore.Replay.d_candidates))
  in
  if d.Explore.Replay.d_wanted < 0 then
    Printf.sprintf "decision %d: schedule exhausted (runnable: %s)"
      d.Explore.Replay.d_decision cands
  else
    Printf.sprintf "decision %d: recorded pid %d not runnable (runnable: %s)"
      d.Explore.Replay.d_decision d.Explore.Replay.d_wanted cands

let run_replay input workload expr out json =
  let target = resolve_target workload expr in
  (* When the input is a trace we hold the recording to a byte-identity
     standard; a bare schedule file (e.g. an exploration witness) has no
     reference bytes, so only divergence can fail it. *)
  let reference =
    match Trace.load input with
    | Ok evs when Array.length evs > 0 ->
        Some (In_channel.with_open_bin input In_channel.input_all)
    | Ok _ | Error _ -> None
  in
  let sched =
    match Explore.Schedule.load input with
    | Ok s -> s
    | Error m ->
        Printf.eprintf "ptrace: %s: %s\n" input m;
        exit 2
  in
  let r, div = Explore.Replay.replay target sched in
  (match out with
  | None -> ()
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc r.Explore.Replay.rec_trace));
  let identical =
    match reference with
    | None -> None
    | Some bytes -> Some (String.equal bytes r.Explore.Replay.rec_trace)
  in
  let ok = div = None && identical <> Some false in
  if json then
    print_endline
      (Obs.Json.to_string
         (Obs.Json.Obj
            [
              ("target", Obs.Json.Str target.Explore.tg_name);
              ( "decisions",
                Obs.Json.Num
                  (float_of_int (Array.length sched.Explore.Schedule.decisions)) );
              ("outcome", Obs.Json.Str r.Explore.Replay.rec_outcome);
              ( "diverged",
                match div with
                | None -> Obs.Json.Bool false
                | Some d -> Obs.Json.Str (pp_divergence d) );
              ( "byte_identical",
                match identical with
                | None -> Obs.Json.Null
                | Some b -> Obs.Json.Bool b );
            ]))
  else begin
    Printf.printf "replayed %s: %d decisions, outcome: %s\n" target.Explore.tg_name
      (Array.length sched.Explore.Schedule.decisions)
      r.Explore.Replay.rec_outcome;
    (match div with
    | None -> ()
    | Some d -> Printf.printf "diverged at %s\n" (pp_divergence d));
    match (identical, reference) with
    | Some true, _ -> print_endline "trace byte-identical to the recording"
    | Some false, Some bytes ->
        Printf.printf "trace differs from the recording: %s\n"
          (first_diff bytes r.Explore.Replay.rec_trace)
    | _ -> ()
  end;
  if ok then 0 else 1

let run_explore workload expr max_runs sweep fault_menu out expect_bug json =
  let target = resolve_target workload expr in
  let st = Explore.Dpor.explore ~max_runs ~fault_menu target in
  let sweep_res =
    if sweep > 0 then Some (Explore.Dpor.seed_sweep ~seeds:sweep ~fault_menu target)
    else None
  in
  (match (out, st.Explore.Dpor.s_witness) with
  | Some path, Some w -> Explore.Schedule.save path w.Explore.Dpor.w_schedule
  | Some _, None | None, _ -> ());
  if json then begin
    let sweep_json =
      match sweep_res with
      | None -> []
      | Some sw ->
          [
            ( "sweep",
              Obs.Json.Obj
                [
                  ("seeds", Obs.Json.Num (float_of_int sw.Explore.Dpor.sw_seeds));
                  ( "skeletons",
                    Obs.Json.Num (float_of_int sw.Explore.Dpor.sw_skeletons) );
                  ( "found",
                    match sw.Explore.Dpor.sw_found with
                    | None -> Obs.Json.Null
                    | Some (seed, kind) ->
                        Obs.Json.Obj
                          [
                            ("seed", Obs.Json.Num (float_of_int seed));
                            ("kind", Obs.Json.Str kind);
                          ] );
                ] );
          ]
    in
    let witness_json =
      match st.Explore.Dpor.s_witness with
      | None -> Obs.Json.Null
      | Some w ->
          Obs.Json.Obj
            [
              ("kind", Obs.Json.Str w.Explore.Dpor.w_kind);
              ("outcome", Obs.Json.Str w.Explore.Dpor.w_outcome);
              ("runs_to_find", Obs.Json.Num (float_of_int w.Explore.Dpor.w_runs_to_find));
              ("forced", Obs.Json.Num (float_of_int w.Explore.Dpor.w_forced));
              ( "decisions",
                Obs.Json.Num
                  (float_of_int
                     (Array.length w.Explore.Dpor.w_schedule.Explore.Schedule.decisions))
              );
              ( "faults",
                Obs.Json.Arr
                  (List.map
                     (fun f -> Obs.Json.Str (Explore.Fault.to_string f))
                     w.Explore.Dpor.w_schedule.Explore.Schedule.faults) );
            ]
    in
    print_endline
      (Obs.Json.to_string
         (Obs.Json.Obj
            ([
               ("target", Obs.Json.Str target.Explore.tg_name);
               ("runs", Obs.Json.Num (float_of_int st.Explore.Dpor.s_runs));
               ("probes", Obs.Json.Num (float_of_int st.Explore.Dpor.s_probes));
               ("schedules", Obs.Json.Num (float_of_int st.Explore.Dpor.s_schedules));
               ("skeletons", Obs.Json.Num (float_of_int st.Explore.Dpor.s_skeletons));
               ("races", Obs.Json.Num (float_of_int st.Explore.Dpor.s_races));
               ("witness", witness_json);
             ]
            @ sweep_json)))
  end
  else begin
    Printf.printf "explored %s: %d runs (+%d minimization probes), %d schedules, %d skeletons, %d races\n"
      target.Explore.tg_name st.Explore.Dpor.s_runs st.Explore.Dpor.s_probes
      st.Explore.Dpor.s_schedules st.Explore.Dpor.s_skeletons st.Explore.Dpor.s_races;
    (match st.Explore.Dpor.s_witness with
    | None -> print_endline "no violation found"
    | Some w ->
        Printf.printf "violation: %s (outcome: %s)\n" w.Explore.Dpor.w_kind
          w.Explore.Dpor.w_outcome;
        Printf.printf "found after %d runs; witness: %d decisions, %d forced\n"
          w.Explore.Dpor.w_runs_to_find
          (Array.length w.Explore.Dpor.w_schedule.Explore.Schedule.decisions)
          w.Explore.Dpor.w_forced;
        (match w.Explore.Dpor.w_schedule.Explore.Schedule.faults with
        | [] -> ()
        | fs ->
            Printf.printf "witness faults: %s\n"
              (String.concat ", " (List.map Explore.Fault.to_string fs)));
        match out with
        | Some path -> Printf.printf "witness schedule written to %s\n" path
        | None -> ());
    match sweep_res with
    | None -> ()
    | Some sw ->
        Printf.printf "seed sweep: %d seeds, %d skeletons, %s\n"
          sw.Explore.Dpor.sw_seeds sw.Explore.Dpor.sw_skeletons
          (match sw.Explore.Dpor.sw_found with
          | None -> "no violation found"
          | Some (seed, kind) -> Printf.sprintf "seed %d hit %s" seed kind)
  end;
  let found = st.Explore.Dpor.s_witness <> None in
  if expect_bug then if found then 0 else 1 else if found then 1 else 0

open Cmdliner

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")

(* Fault kinds on the command line use the same spellings as the
   in-trace markers, minus the "inject:" prefix: crash, wake:RESOURCE,
   drop:CHAN. *)
let fault_kind_of_string s = Explore.Fault.kind_of_marker ("inject:" ^ s)

let fault_conv =
  let parse s =
    match String.index_opt s '@' with
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "expected KIND@SLICE (e.g. crash@12, wake:channel.recv@3, \
                 drop:0@7), got %S" s))
    | Some i -> (
        let kind = String.sub s 0 i in
        let at = String.sub s (i + 1) (String.length s - i - 1) in
        match (fault_kind_of_string kind, int_of_string_opt at) with
        | Some kind, Some at when at >= 0 -> Ok { Explore.Fault.at; kind }
        | None, _ -> Error (`Msg (Printf.sprintf "unknown fault kind %S" kind))
        | _, _ -> Error (`Msg (Printf.sprintf "bad fault slice %S" at)))
  in
  let print ppf f = Format.pp_print_string ppf (Explore.Fault.to_string f) in
  Arg.conv (parse, print)

let fault_kind_conv =
  let parse s =
    match fault_kind_of_string s with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown fault kind %S (expected crash, wake:RESOURCE or \
                 drop:CHAN)" s))
  in
  let print ppf k =
    Format.pp_print_string ppf (Explore.Fault.kind_to_string k)
  in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt_all fault_conv []
    & info [ "fault" ] ~docv:"KIND@SLICE"
        ~doc:
          "Inject a fault just before global slice $(i,SLICE) (repeatable): \
           $(b,crash@N) delivers Injected_crash to the fiber scheduled at \
           slice N, $(b,wake:RES@N) spuriously wakes every fiber parked on \
           waitset RES, $(b,drop:C@N) drops one buffered message from \
           channel C.  Faults are recorded as in-trace markers, so the \
           resulting trace replays byte-identically.")

let trace_arg p name =
  Arg.(required & pos p (some file) None & info [] ~docv:name ~doc:"JSONL trace file.")

let check_cmd =
  let doc = "lint a trace against the event-stream invariants" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const run_check $ trace_arg 0 "TRACE" $ json)

let report_cmd =
  let doc = "causal profile: critical path, utilization, blocked time" in
  let top =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"N"
          ~doc:
            "Cap the per-process table at the $(docv) processes with the most \
             on-CPU virtual time (pretty output only; JSON always carries \
             every row).")
  in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const run_report $ trace_arg 0 "TRACE" $ json $ top)

let slo_cmd =
  let doc = "per-scenario SLO rollup of a load-generator trace" in
  let asserts =
    Arg.(
      value
      & opt_all string []
      & info [ "assert" ] ~docv:"EXPR"
          ~doc:
            "SLO bound over completed-request span latency, \
             $(b,[scenario:]p50|p99|p999<=N) (virtual ticks); repeatable.  \
             Exit 1 on violation.")
  in
  Cmd.v
    (Cmd.info "slo" ~doc)
    Term.(const run_slo $ trace_arg 0 "TRACE" $ asserts $ json)

let diff_cmd =
  let doc = "first causal divergence between two traces" in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(const run_diff $ trace_arg 0 "LEFT" $ trace_arg 1 "RIGHT" $ json)

let gen_cmd =
  let doc = "trace a built-in workload on one of the schedulers" in
  let scheduler =
    Arg.(
      value & opt string "pstack"
      & info [ "scheduler" ] ~docv:"S" ~doc:"$(b,pstack) or $(b,native).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Interleaving seed.")
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Trace this built-in workload instead of the gen pair: one of \
                %s."
               (String.concat ", " Pcont_explore.Explore.Workloads.names)))
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the trace to $(docv) (default stdout).")
  in
  let flight =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Attach a flight-recorder ring sink and write its JSONL dump to \
             $(docv): automatically on deadlock or crash, otherwise at the end \
             of the run.  The dump is an ordinary trace — feed it back to \
             $(b,ptrace check)/$(b,report)/$(b,replay).")
  in
  let ring_cap =
    Arg.(
      value & opt int 4096
      & info [ "ring" ] ~docv:"N"
          ~doc:"Flight-recorder capacity: keep the last $(docv) events.")
  in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(
      const run_gen $ scheduler $ seed $ workload $ faults_arg $ out $ flight
      $ ring_cap)

let top_cmd =
  let doc = "live dashboard over a growing trace file" in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "JSONL trace file to tail; it may still be growing (psi \
             --trace-out) or not exist yet.")
  in
  let interval =
    Arg.(
      value & opt float 0.5
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Polling interval.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render a single snapshot and exit (no screen clearing).")
  in
  Cmd.v (Cmd.info "top" ~doc) Term.(const run_top $ file $ interval $ once)

let workload =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Built-in workload to run: one of %s."
             (String.concat ", " Pcont_explore.Explore.Workloads.names)))

let expr =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "expr" ] ~docv:"EXPR"
        ~doc:"Ad-hoc Scheme program to run on the pstack scheduler.")

let replay_cmd =
  let doc = "re-run a workload pinned to a recorded trace or schedule" in
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"INPUT"
          ~doc:"A JSONL trace (replay must be byte-identical) or a schedule file.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the replayed trace to $(docv).")
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run_replay $ input $ workload $ expr $ out $ json)

let explore_cmd =
  let doc = "DPOR schedule exploration: find and minimize a racing-schedule bug" in
  let max_runs =
    Arg.(
      value & opt int 200
      & info [ "max-runs" ] ~docv:"N" ~doc:"Stop after $(docv) explored schedules.")
  in
  let sweep =
    Arg.(
      value & opt int 0
      & info [ "sweep" ] ~docv:"N"
          ~doc:
            "Also run a naive $(docv)-seed Randomized sweep on the same workload \
             and report what it found, for comparison.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the minimized witness schedule to $(docv) (replay it with \
                $(b,ptrace replay)).")
  in
  let fault_menu =
    Arg.(
      value
      & opt_all fault_kind_conv []
      & info [ "fault-menu" ] ~docv:"KIND"
          ~doc:
            "Also explore fault placements (repeatable): after the fault-free \
             root run, try each $(docv) ($(b,crash), $(b,wake:RES), \
             $(b,drop:C)) at every slice of the root schedule, then explore \
             races within each placement.  The sweep (if any) derives one \
             random placement per seed from the same menu.")
  in
  let expect_bug =
    Arg.(
      value & flag
      & info [ "expect-bug" ]
          ~doc:
            "Invert the exit status: 0 when a violation is found, 1 when none is \
             (for CI jobs asserting an injected bug is caught).")
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run_explore $ workload $ expr $ max_runs $ sweep $ fault_menu $ out
      $ expect_bug $ json)

let cmd =
  let doc = "analyze scheduler traces: check invariants, profile, diff, replay, explore" in
  Cmd.group (Cmd.info "ptrace" ~version:"1.0.0" ~doc)
    [ check_cmd; report_cmd; slo_cmd; diff_cmd; gen_cmd; replay_cmd;
      explore_cmd; top_cmd ]

let () = exit (Cmd.eval' cmd)
