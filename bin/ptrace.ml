(* ptrace — analyze exported scheduler traces.

   Subcommands over the JSONL event stream written by psi --trace-out or
   any Obs.Sink.jsonl consumer:

     ptrace check  TRACE        lint the trace against the event-stream
                                invariants (exit 1 on any violation)
     ptrace report TRACE        causal profile per run: critical path,
                                utilization, fairness, blocked time
     ptrace diff   LEFT RIGHT   first causal divergence between two
                                traces (exit 1 when they diverge)
     ptrace gen                 run a built-in mirrored workload on the
                                pstack or native scheduler and write its
                                trace, for cross-scheduler comparisons

   All subcommands take --json for machine-readable output; report and
   diff output is byte-deterministic for a given input. *)

module Obs = Pcont_obs.Obs
module Trace = Pcont_obs.Trace
module Analysis = Pcont_obs.Analysis
module Interp = Pcont_syntax.Interp
module Concur = Pcont_pstack.Concur
module Sched = Pcont_sched.Sched

let load_or_die path =
  match Trace.load path with
  | Ok events -> events
  | Error m ->
      Printf.eprintf "ptrace: %s: %s\n" path m;
      exit 2

let run_check path json =
  let events = load_or_die path in
  let violations = Analysis.Check.run events in
  if json then
    print_endline (Obs.Json.to_string (Analysis.Check.to_json violations))
  else Format.printf "%a" Analysis.Check.pp violations;
  if violations = [] then 0 else 1

let run_report path json =
  let events = load_or_die path in
  let reports = Analysis.Report.of_trace events in
  if json then
    print_endline
      (Obs.Json.to_string (Obs.Json.Arr (List.map Analysis.Report.to_json reports)))
  else
    List.iteri
      (fun i r ->
        if i > 0 then print_newline ();
        if List.length reports > 1 then Format.printf "=== run %d ===@." i;
        Format.printf "%a" Analysis.Report.pp r)
      reports;
  0

let run_diff left right json =
  let l = load_or_die left and r = load_or_die right in
  let d = Analysis.Diff.diff l r in
  if json then print_endline (Obs.Json.to_string (Analysis.Diff.to_json d))
  else Format.printf "@[<v>%a@]" Analysis.Diff.pp d;
  match d with None -> 0 | Some _ -> 1

(* The gen workload is written twice — once in Scheme for the pstack
   scheduler, once against the native API — mirroring the same process
   tree (a future plus a 3-way pcall touching it), so the two traces'
   causal skeletons line up and `ptrace diff` can compare schedulers. *)
let gen_src_pstack =
  "(let ([f (future (* 3 (+ 2 2)))])\n\
  \  (pcall + (+ 1 2) (touch f) (* 2 (touch f))))"

let gen_native () =
  let f = Sched.future (fun () -> 3 * (2 + 2)) in
  let xs =
    (* Four branches, not three: the pstack pcall forks its operator
       expression too, and the skeletons must match child for child. *)
    Sched.pcall
      [
        (fun () -> 0);
        (fun () -> 1 + 2);
        (fun () -> Sched.touch f);
        (fun () -> 2 * Sched.touch f);
      ]
  in
  List.fold_left ( + ) 0 xs

let run_gen scheduler seed out =
  let buf = Buffer.create 4096 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  (match scheduler with
  | "pstack" ->
      let t = Interp.create () in
      let mode = Interp.Concurrent (Concur.Randomized (Int64.of_int seed)) in
      ignore (Interp.eval_value ~mode ~obs:o t gen_src_pstack)
  | "native" ->
      ignore (Sched.run ~policy:(Sched.Randomized (Int64.of_int seed)) ~obs:o gen_native)
  | other ->
      Printf.eprintf "ptrace: unknown scheduler %S (expected pstack or native)\n" other;
      exit 2);
  Obs.close o;
  (match out with
  | None -> print_string (Buffer.contents buf)
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Buffer.contents buf)));
  0

open Cmdliner

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")

let trace_arg p name =
  Arg.(required & pos p (some file) None & info [] ~docv:name ~doc:"JSONL trace file.")

let check_cmd =
  let doc = "lint a trace against the event-stream invariants" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const run_check $ trace_arg 0 "TRACE" $ json)

let report_cmd =
  let doc = "causal profile: critical path, utilization, blocked time" in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const run_report $ trace_arg 0 "TRACE" $ json)

let diff_cmd =
  let doc = "first causal divergence between two traces" in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(const run_diff $ trace_arg 0 "LEFT" $ trace_arg 1 "RIGHT" $ json)

let gen_cmd =
  let doc = "trace a built-in workload on one of the schedulers" in
  let scheduler =
    Arg.(
      value & opt string "pstack"
      & info [ "scheduler" ] ~docv:"S" ~doc:"$(b,pstack) or $(b,native).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Interleaving seed.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the trace to $(docv) (default stdout).")
  in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const run_gen $ scheduler $ seed $ out)

let cmd =
  let doc = "analyze scheduler traces: check invariants, profile, diff" in
  Cmd.group (Cmd.info "ptrace" ~version:"1.0.0" ~doc)
    [ check_cmd; report_cmd; diff_cmd; gen_cmd ]

let () = exit (Cmd.eval' cmd)
