(* pload — deterministic open-loop load generation over the
   process-tree scheduler.

     pload                       run all four scenarios (quick profile)
     pload -s pool -s ring       just these scenarios
     pload --full                bench-scale profile (~10^5 fibers)
     pload --seed 11             a different (still deterministic) run
     pload --trace-out d         write one JSONL trace per scenario to
                                 d/<scenario>.jsonl (feed to ptrace slo)
     pload --flight FILE         ride a flight-recorder ring along and
                                 dump it on crash/deadlock
     pload --assert p99<=N       exit 1 unless every scenario's
                                 completed-request p99 (virtual ticks,
                                 measured from the scheduled arrival)
                                 is within the bound; repeatable, and
                                 a scenario prefix narrows the bound
                                 (pool:p999<=4000)
     pload --json                machine-readable stats on stdout

   Everything is a pure function of (profile, seed): stats and traces
   are byte-identical across runs. *)

module Obs = Pcont_obs.Obs
module Analysis = Pcont_obs.Analysis
module Load = Pcont_load.Load
open Cmdliner

let run_load scens full seed requests workers deadline trace_out flight asserts
    json =
  let profile = if full then Load.full else Load.quick in
  let profile =
    { profile with
      Load.requests = Option.value ~default:profile.Load.requests requests;
      workers = Option.value ~default:profile.Load.workers workers;
      deadline = Option.value ~default:profile.Load.deadline deadline;
    }
  in
  let scens =
    match scens with
    | [] -> Load.scenarios
    | names ->
        List.map
          (fun n ->
            match Load.scenario_of_name n with
            | Some s -> s
            | None ->
                Printf.eprintf "pload: unknown scenario %S\n" n;
                exit 2)
          names
  in
  let asserts =
    List.map
      (fun a ->
        match Analysis.Slo.parse_assert a with
        | Ok a -> a
        | Error m ->
            Printf.eprintf "pload: %s\n" m;
            exit 2)
      asserts
  in
  let all =
    List.map
      (fun scen ->
        let o = Obs.create () in
        let cleanup = ref [] in
        (match trace_out with
        | None -> ()
        | Some dir ->
            (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            let path =
              Filename.concat dir (Load.scenario_name scen ^ ".jsonl")
            in
            let oc = open_out path in
            Obs.attach o (Obs.Sink.jsonl (Obs.Sink.of_channel oc));
            cleanup := (fun () -> close_out oc) :: !cleanup);
        (match flight with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            let ring =
              Obs.Sink.ring ~flight:(Obs.Sink.of_channel oc) ()
            in
            Obs.attach o (Obs.Sink.ring_sink ring);
            cleanup := (fun () -> close_out oc) :: !cleanup);
        let finish () =
          Obs.close o;
          List.iter (fun f -> f ()) !cleanup
        in
        let st =
          try Load.run ~obs:o profile ~seed:(Int64.of_int seed) scen
          with e ->
            finish ();
            raise e
        in
        finish ();
        st)
      scens
  in
  if json then
    print_endline
      (Obs.Json.to_string (Obs.Json.Arr (List.map Load.stats_to_json all)))
  else
    List.iter (fun st -> Format.printf "%a@." Load.pp_stats st) all;
  (* Evaluate the SLO assertions against the in-process sketches (the
     arrival-anchored numbers; ptrace slo applies the same grammar to
     an exported trace). *)
  let failures =
    List.concat_map
      (fun a ->
        let applicable =
          List.filter
            (fun st ->
              match a.Analysis.Slo.a_scen with
              | Some n -> st.Load.st_scenario = n
              | None -> true)
            all
        in
        if applicable = [] then
          [ Printf.sprintf "assert matched no scenario (%s)"
              (Option.value ~default:"*" a.Analysis.Slo.a_scen) ]
        else
          List.filter_map
            (fun st ->
              let v =
                Obs.Metrics.Sketch.quantile st.Load.st_latency
                  a.Analysis.Slo.a_q
              in
              if v > a.Analysis.Slo.a_limit then
                Some
                  (Printf.sprintf "assert failed: %s %s = %.0f > %.0f"
                     st.Load.st_scenario
                     (Analysis.Slo.quantile_name a.Analysis.Slo.a_q)
                     v a.Analysis.Slo.a_limit)
              else None)
            applicable)
      asserts
  in
  List.iter (Printf.eprintf "pload: %s\n") failures;
  if failures = [] then 0 else 1

let scenario_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "s"; "scenario" ] ~docv:"NAME"
        ~doc:
          "Scenario to run ($(b,pool), $(b,ring), $(b,pipeline), \
           $(b,stream)); repeatable.  Default: all four.")

let full_arg =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:"Bench-scale profile (~10^5 peak fibers per scenario) instead of \
              the quick (~10^4) one.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let requests_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "requests" ] ~docv:"N" ~doc:"Override the profile's request count.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:"Override the pool-worker / ring-actor count.")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline" ] ~docv:"TICKS"
        ~doc:"Override the per-request deadline (0 disables deadlines).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"DIR"
        ~doc:"Write one JSONL trace per scenario to $(docv)/<scenario>.jsonl.")

let flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:"Attach a flight-recorder ring; its window is dumped to $(docv) \
              on crash or deadlock.")

let assert_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "assert" ] ~docv:"EXPR"
        ~doc:
          "SLO bound over completed-request latency, \
           $(b,[scenario:]p50|p99|p999<=N) (virtual ticks); repeatable.  \
           Exit 1 on violation.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable output.")

let cmd =
  let doc = "deterministic open-loop load scenarios with SLO attribution" in
  Cmd.v
    (Cmd.info "pload" ~version:"1.0.0" ~doc)
    Term.(
      const run_load $ scenario_arg $ full_arg $ seed_arg $ requests_arg
      $ workers_arg $ deadline_arg $ trace_out_arg $ flight_arg $ assert_arg
      $ json_arg)

let () = exit (Cmd.eval' cmd)
