(* Tests for the Section 7 implementation model: the process-stack machine,
   its primitives, the control operators, the two stack strategies and
   their instrumented costs (functional versions of experiments E1/E2). *)

open Pcont_pstack
module C = Pcont_util.Counters

let value = Alcotest.testable Value.pp Value.equal

let env () = Prims.base_env ()

let eval ?cfg ir = Run.eval_ir ?cfg (env ()) ir

let eval_v ?cfg ir =
  match eval ?cfg ir with
  | Run.Value v -> v
  | Run.Error msg -> Alcotest.failf "error: %s" msg
  | Run.Out_of_fuel -> Alcotest.fail "out of fuel"

let eval_err ir =
  match eval ir with
  | Run.Error msg -> msg
  | Run.Value v -> Alcotest.failf "expected error, got %s" (Value.to_string v)
  | Run.Out_of_fuel -> Alcotest.fail "out of fuel"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* A little IR shorthand. *)
let ( @@@ ) f args = Ir.app f args

let v = Ir.var

let i = Ir.int

(* ---------------- values ---------------- *)

let test_list_roundtrip () =
  let l = Value.values_to_list [ Types.Int 1; Types.Int 2 ] in
  Alcotest.(check bool) "roundtrip" true
    (Value.list_to_values l = Some [ Types.Int 1; Types.Int 2 ]);
  Alcotest.(check bool) "improper" true
    (Value.list_to_values (Value.cons (Types.Int 1) (Types.Int 2)) = None)

let test_truthiness () =
  Alcotest.(check bool) "false" false (Value.is_truthy (Types.Bool false));
  Alcotest.(check bool) "zero is true" true (Value.is_truthy (Types.Int 0));
  Alcotest.(check bool) "nil is true" true (Value.is_truthy Types.Nil)

let test_eqv_equal () =
  let p1 = Value.cons (Types.Int 1) Types.Nil in
  let p2 = Value.cons (Types.Int 1) Types.Nil in
  Alcotest.(check bool) "eqv distinct pairs" false (Value.eqv p1 p2);
  Alcotest.(check bool) "eqv same pair" true (Value.eqv p1 p1);
  Alcotest.(check bool) "equal structural" true (Value.equal p1 p2);
  Alcotest.(check bool) "eqv ints" true (Value.eqv (Types.Int 3) (Types.Int 3));
  Alcotest.(check bool) "equal vectors" true
    (Value.equal (Types.Vector [| Types.Int 1 |]) (Types.Vector [| Types.Int 1 |]))

let test_printing () =
  Alcotest.(check string) "list" "(1 2)"
    (Value.to_string (Value.values_to_list [ Types.Int 1; Types.Int 2 ]));
  Alcotest.(check string) "dotted" "(1 . 2)"
    (Value.to_string (Value.cons (Types.Int 1) (Types.Int 2)));
  Alcotest.(check string) "string write" "\"hi\"" (Value.to_string (Types.Str "hi"));
  Alcotest.(check string) "string display" "hi" (Value.display_string (Types.Str "hi"))

(* ---------------- environments ---------------- *)

let test_env_shadowing () =
  (* Rib chains: depth 0 is the innermost rib. *)
  let e1 = [ [| Types.Int 1 |] ] in
  let e2 = [| Types.Int 2 |] :: e1 in
  Alcotest.check value "inner" (Types.Int 2) (Env.local e2 0 0);
  Alcotest.check value "outer" (Types.Int 1) (Env.local e2 1 0);
  Env.set_local e2 1 0 (Types.Int 9);
  Alcotest.check value "set through chain" (Types.Int 9) (Env.local e1 0 0)

let test_env_globals () =
  let e = env () in
  Env.define_global e "g" (Types.Int 7);
  Alcotest.check value "global" (Types.Int 7)
    (Option.get (Env.lookup_global e "g")).Types.gval;
  Env.define_global e "g" (Types.Int 8);
  Alcotest.check value "redefine" (Types.Int 8)
    (Option.get (Env.lookup_global e "g")).Types.gval;
  Alcotest.(check bool) "missing" true (Env.lookup_global e "missing" = None);
  (* A cell interned before its definition is the cell define later fills:
     forward references among top-level forms keep working. *)
  let c = Env.intern e "h" in
  Alcotest.(check bool) "interned unbound" false c.Types.gbound;
  Alcotest.(check bool) "unbound not visible" true (Env.lookup_global e "h" = None);
  Env.define_global e "h" (Types.Int 9);
  Alcotest.(check bool) "same cell bound" true c.Types.gbound;
  Alcotest.check value "same cell value" (Types.Int 9) c.Types.gval

let test_bind_params () =
  let clo =
    { Types.nparams = 2; has_rest = false; cbody = Ir.Rconst (Types.Int 0); cenv = [] }
  in
  (match Env.bind_params clo [ Types.Int 1; Types.Int 2 ] with
  | Ok e -> Alcotest.check value "bound" (Types.Int 2) (Env.local e 0 1)
  | Error m -> Alcotest.fail m);
  (match Env.bind_params clo [ Types.Int 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity under");
  (match Env.bind_params clo [ Types.Int 1; Types.Int 2; Types.Int 3 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity over");
  let vclo = { clo with Types.has_rest = true } in
  match Env.bind_params vclo [ Types.Int 1; Types.Int 2; Types.Int 3 ] with
  | Ok e ->
      Alcotest.(check bool) "rest collected" true
        (Value.list_to_values (Env.local e 0 2) = Some [ Types.Int 3 ])
  | Error m -> Alcotest.fail m

(* ---------------- evaluation of core forms ---------------- *)

let test_eval_forms () =
  Alcotest.check value "const" (Types.Int 3) (eval_v (i 3));
  Alcotest.check value "if true" (Types.Int 1) (eval_v (Ir.if_ (Ir.bool true) (i 1) (i 2)));
  Alcotest.check value "if non-bool is true" (Types.Int 1)
    (eval_v (Ir.if_ (i 0) (i 1) (i 2)));
  Alcotest.check value "app" (Types.Int 9) (eval_v (Ir.lam [ "x" ] (v "x") @@@ [ i 9 ]));
  Alcotest.check value "seq" (Types.Int 2) (eval_v (Ir.seq [ i 1; i 2 ]));
  Alcotest.check value "empty seq" Types.Unit (eval_v (Ir.seq []));
  Alcotest.check value "let" (Types.Int 5)
    (eval_v (Ir.let_ [ ("x", i 2); ("y", i 3) ] (v "+" @@@ [ v "x"; v "y" ])));
  Alcotest.check value "let is parallel" (Types.Int 1)
    (eval_v (Ir.let_ [ ("x", i 1) ] (Ir.let_ [ ("x", i 2); ("y", v "x") ] (v "y"))));
  Alcotest.check value "quoted list"
    (Value.values_to_list [ Types.Int 1; Types.Sym "a" ])
    (eval_v (Ir.Quoted (Ir.Qlist [ Ir.Qint 1; Ir.Qsym "a" ])))

let test_letrec_and_set () =
  let fact =
    Ir.Letrec
      ( [
          ( "fact",
            Ir.lam [ "n" ]
              (Ir.if_
                 (v "zero?" @@@ [ v "n" ])
                 (i 1)
                 (v "*" @@@ [ v "n"; v "fact" @@@ [ v "-" @@@ [ v "n"; i 1 ] ] ])) );
        ],
        v "fact" @@@ [ i 6 ] )
  in
  Alcotest.check value "letrec factorial" (Types.Int 720) (eval_v fact);
  let mutual =
    Ir.Letrec
      ( [
          ( "even",
            Ir.lam [ "n" ]
              (Ir.if_ (v "zero?" @@@ [ v "n" ]) (Ir.bool true)
                 (v "odd" @@@ [ v "-" @@@ [ v "n"; i 1 ] ])) );
          ( "odd",
            Ir.lam [ "n" ]
              (Ir.if_ (v "zero?" @@@ [ v "n" ]) (Ir.bool false)
                 (v "even" @@@ [ v "-" @@@ [ v "n"; i 1 ] ])) );
        ],
        v "even" @@@ [ i 10 ] )
  in
  Alcotest.check value "mutual recursion" (Types.Bool true) (eval_v mutual);
  let setter = Ir.let_ [ ("x", i 1) ] (Ir.seq [ Ir.Set ("x", i 42); v "x" ]) in
  Alcotest.check value "set!" (Types.Int 42) (eval_v setter)

let test_eval_errors () =
  ignore (eval_err (v "nope"));
  ignore (eval_err (i 1 @@@ [ i 2 ]));
  ignore (eval_err (v "car" @@@ [ i 1 ]));
  ignore (eval_err (Ir.Set ("nope", i 1)));
  Alcotest.(check bool) "error text" true
    (contains ~sub:"boom" (eval_err (v "error" @@@ [ Ir.str "boom" ])))

let test_out_of_fuel () =
  let omega = Ir.Letrec ([ ("loop", Ir.lam [] (v "loop" @@@ [])) ], v "loop" @@@ []) in
  match Run.eval_ir ~fuel:500 (env ()) omega with
  | Run.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* ---------------- primitives ---------------- *)

let test_arith () =
  let checks =
    [
      (v "+" @@@ [], Types.Int 0);
      (v "+" @@@ [ i 1; i 2; i 3 ], Types.Int 6);
      (v "*" @@@ [ i 2; i 3; i 4 ], Types.Int 24);
      (v "-" @@@ [ i 5 ], Types.Int (-5));
      (v "-" @@@ [ i 10; i 3; i 2 ], Types.Int 5);
      (v "quotient" @@@ [ i 7; i 2 ], Types.Int 3);
      (v "remainder" @@@ [ i 7; i 2 ], Types.Int 1);
      (v "modulo" @@@ [ i (-7); i 3 ], Types.Int 2);
      (v "abs" @@@ [ i (-4) ], Types.Int 4);
      (v "min" @@@ [ i 3; i 1; i 2 ], Types.Int 1);
      (v "max" @@@ [ i 3; i 1; i 2 ], Types.Int 3);
      (v "1+" @@@ [ i 4 ], Types.Int 5);
      (v "1-" @@@ [ i 4 ], Types.Int 3);
    ]
  in
  List.iter (fun (e, expect) -> Alcotest.check value "arith" expect (eval_v e)) checks;
  ignore (eval_err (v "quotient" @@@ [ i 1; i 0 ]))

let test_comparisons () =
  let checks =
    [
      (v "=" @@@ [ i 1; i 1; i 1 ], true);
      (v "=" @@@ [ i 1; i 2 ], false);
      (v "<" @@@ [ i 1; i 2; i 3 ], true);
      (v "<" @@@ [ i 1; i 3; i 2 ], false);
      (v "<=" @@@ [ i 1; i 1; i 2 ], true);
      (v ">" @@@ [ i 3; i 2; i 1 ], true);
      (v ">=" @@@ [ i 3; i 3; i 1 ], true);
      (v "zero?" @@@ [ i 0 ], true);
      (v "even?" @@@ [ i 4 ], true);
      (v "odd?" @@@ [ i 4 ], false);
    ]
  in
  List.iter
    (fun (e, expect) -> Alcotest.check value "cmp" (Types.Bool expect) (eval_v e))
    checks

let test_pairs_and_lists () =
  Alcotest.check value "cons/car" (Types.Int 1)
    (eval_v (v "car" @@@ [ v "cons" @@@ [ i 1; i 2 ] ]));
  Alcotest.check value "length" (Types.Int 3)
    (eval_v (v "length" @@@ [ v "list" @@@ [ i 1; i 2; i 3 ] ]));
  Alcotest.check value "append"
    (Value.values_to_list [ Types.Int 1; Types.Int 2; Types.Int 3 ])
    (eval_v (v "append" @@@ [ v "list" @@@ [ i 1 ]; v "list" @@@ [ i 2; i 3 ] ]));
  Alcotest.check value "reverse"
    (Value.values_to_list [ Types.Int 2; Types.Int 1 ])
    (eval_v (v "reverse" @@@ [ v "list" @@@ [ i 1; i 2 ] ]));
  Alcotest.check value "list-ref" (Types.Int 20)
    (eval_v (v "list-ref" @@@ [ v "list" @@@ [ i 10; i 20 ]; i 1 ]));
  Alcotest.check value "set-car!" (Types.Int 99)
    (eval_v
       (Ir.let_
          [ ("p", v "cons" @@@ [ i 1; i 2 ]) ]
          (Ir.seq [ v "set-car!" @@@ [ v "p"; i 99 ]; v "car" @@@ [ v "p" ] ])));
  Alcotest.check value "memq found"
    (Value.values_to_list [ Types.Int 2; Types.Int 3 ])
    (eval_v (v "memq" @@@ [ i 2; v "list" @@@ [ i 1; i 2; i 3 ] ]));
  Alcotest.check value "memq missing" (Types.Bool false)
    (eval_v (v "memq" @@@ [ i 9; v "list" @@@ [ i 1 ] ]));
  Alcotest.check value "assq"
    (Value.values_to_list [ Types.Sym "b"; Types.Int 2 ])
    (eval_v
       (v "assq"
       @@@ [
             Ir.Quoted (Ir.Qsym "b");
             Ir.Quoted
               (Ir.Qlist
                  [ Ir.Qlist [ Ir.Qsym "a"; Ir.Qint 1 ]; Ir.Qlist [ Ir.Qsym "b"; Ir.Qint 2 ] ]);
           ]))

let test_strings_symbols () =
  Alcotest.check value "string-append" (Types.Str "ab")
    (eval_v (v "string-append" @@@ [ Ir.str "a"; Ir.str "b" ]));
  Alcotest.check value "string-length" (Types.Int 2)
    (eval_v (v "string-length" @@@ [ Ir.str "ab" ]));
  Alcotest.check value "substring" (Types.Str "bc")
    (eval_v (v "substring" @@@ [ Ir.str "abcd"; i 1; i 3 ]));
  Alcotest.check value "number->string" (Types.Str "42")
    (eval_v (v "number->string" @@@ [ i 42 ]));
  Alcotest.check value "string->number" (Types.Int 42)
    (eval_v (v "string->number" @@@ [ Ir.str "42" ]));
  Alcotest.check value "string->number bad" (Types.Bool false)
    (eval_v (v "string->number" @@@ [ Ir.str "x" ]));
  Alcotest.check value "symbol roundtrip" (Types.Sym "hey")
    (eval_v (v "string->symbol" @@@ [ v "symbol->string" @@@ [ Ir.sym "hey" ] ]))

let test_vectors () =
  Alcotest.check value "vector-ref" (Types.Int 2)
    (eval_v (v "vector-ref" @@@ [ v "vector" @@@ [ i 1; i 2 ]; i 1 ]));
  Alcotest.check value "vector-length" (Types.Int 3)
    (eval_v (v "vector-length" @@@ [ v "make-vector" @@@ [ i 3 ] ]));
  Alcotest.check value "vector-set!" (Types.Int 9)
    (eval_v
       (Ir.let_
          [ ("vec", v "make-vector" @@@ [ i 2; i 0 ]) ]
          (Ir.seq
             [
               v "vector-set!" @@@ [ v "vec"; i 1; i 9 ];
               v "vector-ref" @@@ [ v "vec"; i 1 ];
             ])));
  ignore (eval_err (v "vector-ref" @@@ [ v "vector" @@@ [ i 1 ]; i 5 ]))

let test_predicates () =
  let t e = Alcotest.check value "pred" (Types.Bool true) (eval_v e) in
  t (v "null?" @@@ [ Ir.Const Ir.Cnil ]);
  t (v "pair?" @@@ [ v "cons" @@@ [ i 1; i 2 ] ]);
  t (v "number?" @@@ [ i 1 ]);
  t (v "boolean?" @@@ [ Ir.bool true ]);
  t (v "symbol?" @@@ [ Ir.sym "s" ]);
  t (v "string?" @@@ [ Ir.str "s" ]);
  t (v "procedure?" @@@ [ v "car" ]);
  t (v "procedure?" @@@ [ Ir.lam [] (i 1) ]);
  t (v "not" @@@ [ Ir.bool false ]);
  t (v "eq?" @@@ [ Ir.sym "a"; Ir.sym "a" ]);
  t (v "equal?" @@@ [ v "list" @@@ [ i 1 ]; v "list" @@@ [ i 1 ] ])

let test_output () =
  ignore (Prims.take_output ());
  (match
     eval
       (Ir.seq
          [ v "display" @@@ [ Ir.str "hi " ]; v "write" @@@ [ Ir.str "s" ]; v "newline" @@@ [] ])
   with
  | Run.Value _ -> ()
  | _ -> Alcotest.fail "output program failed");
  Alcotest.(check string) "captured" "hi \"s\"\n" (Prims.take_output ())

let test_apply () =
  Alcotest.check value "apply" (Types.Int 6)
    (eval_v (v "apply" @@@ [ v "+"; v "list" @@@ [ i 1; i 2; i 3 ] ]));
  ignore (eval_err (v "apply" @@@ [ v "+"; i 1 ]))

(* ---------------- control operators ---------------- *)

let spawn_ e = v "spawn" @@@ [ e ]

let test_spawn_normal_return () =
  Alcotest.check value "transparent" (Types.Int 5) (eval_v (spawn_ (Ir.lam [ "c" ] (i 5))))

let test_controller_abort () =
  let t =
    spawn_ (Ir.lam [ "c" ] (v "+" @@@ [ i 1; v "c" @@@ [ Ir.lam [ "k" ] (i 10) ] ]))
  in
  Alcotest.check value "abort" (Types.Int 10) (eval_v t)

let test_pk_compose () =
  let t =
    spawn_
      (Ir.lam [ "c" ]
         (v "+"
         @@@ [ i 1; v "c" @@@ [ Ir.lam [ "k" ] (v "*" @@@ [ i 10; v "k" @@@ [ i 2 ] ]) ] ]))
  in
  Alcotest.check value "compose" (Types.Int 30) (eval_v t)

let test_pk_multishot () =
  let t =
    spawn_
      (Ir.lam [ "c" ]
         (v "+"
         @@@ [
               i 1;
               v "c" @@@ [ Ir.lam [ "k" ] (v "*" @@@ [ v "k" @@@ [ i 2 ]; v "k" @@@ [ i 3 ] ]) ];
             ]))
  in
  Alcotest.check value "(1+2)*(1+3)" (Types.Int 12) (eval_v t)

let test_controller_invalid () =
  let escaped = spawn_ (Ir.lam [ "c" ] (v "c")) @@@ [ Ir.lam [ "k" ] (v "k") ] in
  Alcotest.(check bool) "escaped" true (contains ~sub:"invalid" (eval_err escaped));
  let double =
    spawn_
      (Ir.lam [ "c" ] (v "c" @@@ [ Ir.lam [ "k" ] (v "c" @@@ [ Ir.lam [ "k2" ] (v "k2") ]) ]))
  in
  Alcotest.(check bool) "double" true (contains ~sub:"invalid" (eval_err double))

let test_reinstated_controller () =
  let inner = Ir.lam [ "k3" ] (v "k3") in
  let middle = Ir.lam [ "k2" ] (v "k2" @@@ [ inner ]) in
  let outer = Ir.lam [ "k" ] (v "k" @@@ [ middle ]) in
  let t = spawn_ (Ir.lam [ "c" ] (v "c" @@@ [ v "c" @@@ [ outer ] ])) @@@ [ i 42 ] in
  Alcotest.check value "identity" (Types.Int 42) (eval_v t)

let test_nested_spawn_inner_exit () =
  let t =
    spawn_
      (Ir.lam [ "c1" ]
         (v "+"
         @@@ [
               i 100;
               spawn_
                 (Ir.lam [ "c2" ] (v "+" @@@ [ i 10; v "c1" @@@ [ Ir.lam [ "k" ] (i 1) ] ]));
             ]))
  in
  Alcotest.check value "outer exit" (Types.Int 1) (eval_v t)

let test_callcc_escape () =
  let t = v "call/cc" @@@ [ Ir.lam [ "k" ] (v "+" @@@ [ v "k" @@@ [ i 0 ]; i 1 ]) ] in
  Alcotest.check value "escape" (Types.Int 0) (eval_v t)

let test_callcc_normal () =
  Alcotest.check value "no invoke" (Types.Int 9)
    (eval_v (v "call/cc" @@@ [ Ir.lam [ "k" ] (i 9) ]))

let test_callcc_abortive () =
  let t =
    v "+"
    @@@ [ i 1; v "call/cc" @@@ [ Ir.lam [ "k" ] (v "*" @@@ [ i 2; v "k" @@@ [ i 10 ] ]) ] ]
  in
  Alcotest.check value "abortive" (Types.Int 11) (eval_v t)

let test_prompt_fcontrol () =
  let t =
    v "prompt"
    @@@ [
          Ir.lam []
            (v "+" @@@ [ i 1; v "fcontrol" @@@ [ Ir.lam [ "fk" ] (v "fk" @@@ [ i 5 ]) ] ]);
        ]
  in
  Alcotest.check value "fcontrol compose" (Types.Int 6) (eval_v t);
  let t2 =
    v "+"
    @@@ [
          i 100;
          v "prompt"
          @@@ [ Ir.lam [] (v "+" @@@ [ i 1; v "fcontrol" @@@ [ Ir.lam [ "fk" ] (i 7) ] ]) ];
        ]
  in
  Alcotest.check value "fcontrol abort" (Types.Int 107) (eval_v t2)

let test_fcontrol_erases_spawn_roots () =
  (* Section 3's argument made executable: F captures across a spawn root,
     erasing it, so the controller becomes invalid afterwards. *)
  let t =
    v "prompt"
    @@@ [
          Ir.lam []
            (spawn_
               (Ir.lam [ "c" ]
                  (Ir.seq
                     [
                       v "fcontrol" @@@ [ Ir.lam [ "fk" ] (v "fk" @@@ [ i 0 ]) ];
                       v "c" @@@ [ Ir.lam [ "k" ] (i 1) ];
                     ])));
        ]
  in
  Alcotest.(check bool) "controller invalidated by F" true
    (contains ~sub:"invalid" (eval_err t))

let test_pcall_sequential () =
  Alcotest.check value "pcall applies" (Types.Int 6)
    (eval_v (Ir.Pcall [ v "+"; i 1; i 2; i 3 ]));
  Alcotest.check value "pcall operator computed" (Types.Int 3)
    (eval_v (Ir.Pcall [ Ir.if_ (Ir.bool true) (v "+") (v "*"); i 1; i 2 ]))

(* ---------------- dynamic-wind (Subcontinuations 1994 extension) ----- *)

(* Evaluate through the Scheme layer for readability of the wind tests. *)
let wind_log src =
  let t = Pcont_syntax.Interp.create () in
  ignore
    (Pcont_syntax.Interp.eval_string t
       "(define log '()) (define (note x) (set! log (cons x log)))");
  ignore (Pcont_syntax.Interp.eval_string t src);
  Pcont_pstack.Value.to_string (Pcont_syntax.Interp.eval_value t "(reverse log)")

let test_wind_normal_return () =
  Alcotest.(check string) "in body out" "(in body out)"
    (wind_log
       "(dynamic-wind (lambda () (note 'in)) (lambda () (note 'body) 5) (lambda () (note 'out)))")

let test_wind_abort_runs_after () =
  Alcotest.(check string) "abort exits the extent" "(in body out)"
    (wind_log
       "(spawn/exit (lambda (exit)
          (dynamic-wind (lambda () (note 'in))
                        (lambda () (note 'body) (exit 9) (note 'unreached))
                        (lambda () (note 'out)))))")

let test_wind_nested_abort_order () =
  Alcotest.(check string) "inner after first" "(in1 in2 out2 out1)"
    (wind_log
       "(spawn/exit (lambda (exit)
          (dynamic-wind (lambda () (note 'in1))
            (lambda ()
              (dynamic-wind (lambda () (note 'in2))
                            (lambda () (exit 0))
                            (lambda () (note 'out2))))
            (lambda () (note 'out1)))))")

let test_wind_multishot_reenters () =
  (* Each invocation of the process continuation re-enters (before) and
     exits (after) the captured wind. *)
  Alcotest.(check string) "bracketed per reinstatement" "(in out in out in out)"
    (wind_log
       "(spawn (lambda (c)
          (dynamic-wind
            (lambda () (note 'in))
            (lambda () (+ 1 (c (lambda (k) (* (k 2) (k 3))))))
            (lambda () (note 'out)))))")

let test_wind_value_passthrough () =
  Alcotest.check value "wind returns body value" (Types.Int 5)
    (eval_v
       (v "dynamic-wind"
       @@@ [ Ir.lam [] (i 1); Ir.lam [] (i 5); Ir.lam [] (i 2) ]))

let test_wind_callcc_does_not_unwind () =
  (* Pinned behavior: call/cc jumps do NOT run winders (controller-based
     control is the supported discipline; Section 3 argues call/cc is the
     wrong tool here anyway). *)
  Alcotest.(check string) "no after on call/cc escape" "(in body)"
    (wind_log
       "(call/cc (lambda (k)
          (dynamic-wind (lambda () (note 'in))
                        (lambda () (note 'body) (k 0))
                        (lambda () (note 'out)))))")

(* ---------------- strategies and instrumented costs (E1/E2) ---------------- *)

(* Capture under [frames] pending additions: the captured segment holds
   that many frames. *)
let capture_program ~frames =
  let rec deep n inner = if n = 0 then inner else v "+" @@@ [ i 1; deep (n - 1) inner ] in
  spawn_ (Ir.lam [ "c" ] (deep frames (v "c" @@@ [ Ir.lam [ "k" ] (v "k" @@@ [ i 0 ]) ])))

(* Capture across [roots] nested spawn roots: the innermost body exits
   through the outermost controller, then resumes. *)
let nested_roots_program ~roots =
  let rec build level inner =
    if level > roots then inner
    else spawn_ (Ir.lam [ Printf.sprintf "c%d" level ] (build (level + 1) inner))
  in
  build 1 (v "c1" @@@ [ Ir.lam [ "k" ] (v "k" @@@ [ i 0 ]) ])

let run_with_strategy strategy ir =
  let cfg = Machine.config ~strategy () in
  match Run.eval_ir ~cfg (env ()) ir with
  | Run.Value _ -> cfg.Machine.counters
  | Run.Error m -> Alcotest.failf "error: %s" m
  | Run.Out_of_fuel -> Alcotest.fail "fuel"

let test_linked_cost_independent_of_frames () =
  let c1 = run_with_strategy Types.Linked (capture_program ~frames:5) in
  let c2 = run_with_strategy Types.Linked (capture_program ~frames:500) in
  Alcotest.(check int) "segments moved equal"
    (C.get c1 "capture.segments")
    (C.get c2 "capture.segments");
  Alcotest.(check int) "no frame copying" 0 (C.get c2 "capture.frames")

let test_copying_cost_linear_in_frames () =
  let c1 = run_with_strategy Types.Copying (capture_program ~frames:10) in
  let c2 = run_with_strategy Types.Copying (capture_program ~frames:100) in
  let f1 = C.get c1 "capture.frames" and f2 = C.get c2 "capture.frames" in
  Alcotest.(check bool) "frames grow" true (f2 > f1 + 80);
  let v1 =
    eval_v ~cfg:(Machine.config ~strategy:Types.Linked ()) (capture_program ~frames:50)
  in
  let v2 =
    eval_v ~cfg:(Machine.config ~strategy:Types.Copying ()) (capture_program ~frames:50)
  in
  Alcotest.check value "strategies agree" v1 v2

let test_capture_cost_linear_in_roots () =
  let segs n = C.get (run_with_strategy Types.Linked (nested_roots_program ~roots:n)) "capture.segments" in
  Alcotest.(check int) "6 more segments for 6 more roots" (segs 2 + 6) (segs 8)

let test_counter_events () =
  let c = run_with_strategy Types.Linked (capture_program ~frames:3) in
  Alcotest.(check int) "one spawn" 1 (C.get c "spawn");
  Alcotest.(check int) "one controller capture" 1 (C.get c "controller");
  Alcotest.(check int) "one pk invoke" 1 (C.get c "pk-invoke")

(* ---------------- capture fast path (segment pool + one-shot move) -------- *)

(* The linearity analyzer on hand-built resolved bodies: [k] is the
   controller body's parameter, [Rlocal (depth, 0)]. *)
let test_linear_pk_use_classifier () =
  let check name expect body =
    Alcotest.(check bool) name expect (Machine.linear_pk_use body)
  in
  let kapp d arg : Types.rir = Ir.Rapp (Ir.Rlocal (d, 0), [ arg ]) in
  let zero : Types.rir = Ir.Rconst (Types.Int 0) in
  check "(k 0) is linear" true (kapp 0 zero);
  check "abort (k unused) is linear" true zero;
  check "bare k escapes" false (Ir.Rlocal (0, 0));
  check "two sequential uses" false (Ir.Rseq [ kapp 0 zero; kapp 0 zero ]);
  check "one use per if branch" true (Ir.Rif (zero, kapp 0 zero, zero));
  check "branch use plus sequence use" false
    (Ir.Rseq [ Ir.Rif (zero, kapp 0 zero, zero); kapp 0 zero ]);
  check "k smuggled into a closure" false
    (Ir.Rlam { Ir.rnparams = 1; rhas_rest = false; rbody = kapp 1 zero });
  check "k-free closure is fine" true
    (Ir.Rseq
       [ Ir.Rlam { Ir.rnparams = 0; rhas_rest = false; rbody = zero }; kapp 0 zero ]);
  check "unknown application rejects" false
    (Ir.Rapp (Ir.Rlam { Ir.rnparams = 0; rhas_rest = false; rbody = zero }, []));
  check "k under let, depth-adjusted" true (Ir.Rlet ([ zero ], kapp 1 zero));
  check "non-simple argument rejects" false (kapp 0 (kapp 0 zero))

let test_oneshot_move_and_fallback () =
  (* A linear body takes the move path; a multi-shot body falls back to
     the pinned representation and still reinstates twice, producing the
     same answer with the fast path on and off. *)
  let cfg = Machine.config () in
  Alcotest.check value "one-shot result" (Types.Int 5)
    (eval_v ~cfg (capture_program ~frames:5));
  Alcotest.(check int) "capture moved" 1
    (C.get cfg.Machine.counters "machine.capture.moved");
  let multishot =
    spawn_
      (Ir.lam [ "c" ]
         (v "+"
         @@@ [
               i 1;
               v "c"
               @@@ [ Ir.lam [ "k" ] (v "*" @@@ [ v "k" @@@ [ i 2 ]; v "k" @@@ [ i 3 ] ]) ];
             ]))
  in
  let cfg2 = Machine.config () in
  Alcotest.check value "multi-shot applied twice" (Types.Int 12) (eval_v ~cfg:cfg2 multishot);
  Alcotest.(check int) "multi-shot not moved" 0
    (C.get cfg2.Machine.counters "machine.capture.moved");
  Alcotest.check value "one-shot agrees with fastpath off" (Types.Int 5)
    (eval_v ~cfg:(Machine.config ~fastpath:false ()) (capture_program ~frames:5));
  Alcotest.check value "multi-shot agrees with fastpath off" (Types.Int 12)
    (eval_v ~cfg:(Machine.config ~fastpath:false ()) multishot)

let test_abort_recycles_into_pool () =
  (* Each spawn aborts ([k] unused), so its segment is recycled at the
     capture and every spawn after the first is served from the pool. *)
  let abort = spawn_ (Ir.lam [ "c" ] (v "c" @@@ [ Ir.lam [ "k" ] (i 5) ])) in
  let cfg = Machine.config () in
  Alcotest.check value "aborts" (Types.Int 5)
    (eval_v ~cfg (Ir.seq [ abort; abort; abort ]));
  Alcotest.(check bool) "pool reuse" true
    (C.get cfg.Machine.counters "machine.pool.hit" >= 2);
  Alcotest.(check int) "all three took the move path" 3
    (C.get cfg.Machine.counters "machine.capture.moved")

let test_escaped_pk_stays_multishot () =
  (* The body returns [k] itself, so the capture must pin (multi-shot):
     the escaped continuation is applied twice after the spawn finished,
     splicing the same pinned segment back both times. *)
  let prog =
    Ir.let_
      [ ("pk", spawn_ (Ir.lam [ "c" ] (v "c" @@@ [ Ir.lam [ "k" ] (v "k") ]))) ]
      (v "+" @@@ [ v "pk" @@@ [ i 1 ]; v "pk" @@@ [ i 2 ] ])
  in
  let cfg = Machine.config () in
  Alcotest.check value "escaped pk applied twice" (Types.Int 3) (eval_v ~cfg prog);
  Alcotest.(check int) "not classified one-shot" 0
    (C.get cfg.Machine.counters "machine.capture.moved");
  Alcotest.(check int) "two reinstates" 2 (C.get cfg.Machine.counters "pk-invoke")

let test_nested_capture_value () =
  Alcotest.check value "nested capture result" (Types.Int 0)
    (eval_v (nested_roots_program ~roots:4))

(* ---------------- debug pretty-printing ---------------- *)

let test_debug_pp () =
  let st = Machine.initial (Resolve.toplevel (env ()) (v "+" @@@ [ i 1; i 2 ])) in
  let s = Debug.state_summary st in
  Alcotest.(check bool) "mentions eval" true (contains ~sub:"eval" s);
  Alcotest.(check bool) "mentions base" true (contains ~sub:"base" s);
  (* step a few times and observe a frame appear *)
  let cfg = Machine.config () in
  let rec go st n =
    if n = 0 then st
    else match Machine.step cfg st with Machine.Next st' -> go st' (n - 1) | _ -> st
  in
  let st3 = go st 2 in
  Alcotest.(check bool) "frames counted" true
    (contains ~sub:"base[1]" (Debug.state_summary st3));
  Alcotest.(check string) "root names" "spawn#7"
    (Format.asprintf "%a" Debug.pp_root (Types.Rspawn 7));
  Alcotest.(check string) "prompt root" "prompt"
    (Format.asprintf "%a" Debug.pp_root Types.Rprompt)

let test_debug_ptree () =
  let leaf_state = Machine.initial (Resolve.toplevel (env ()) (i 1)) in
  let t =
    Types.Pfork
      {
        pf_trunk = Machine.initial_pstack;
        pf_children = [| Types.Pleaf leaf_state; Types.Pdone; Types.Phole [] |];
        pf_results = [| None; Some (Types.Int 1); None |];
      }
  in
  let s = Debug.ptree_summary t in
  Alcotest.(check bool) "fork" true (contains ~sub:"fork" s);
  Alcotest.(check bool) "hole" true (contains ~sub:"HOLE" s);
  Alcotest.(check bool) "done" true (contains ~sub:"done" s)

(* ---------------- property-based tests ---------------- *)

(* Random pure IR programs: the two strategies must agree everywhere. *)
let gen_ir =
  let open QCheck.Gen in
  let rec go env n =
    if n <= 0 then
      oneof
        [
          map Ir.int small_int;
          map Ir.bool bool;
          (if env = [] then map Ir.int small_int else map Ir.var (oneofl env));
        ]
    else
      frequency
        [
          (2, map Ir.int small_int);
          (3, let* x = oneofl [ "p"; "q"; "r" ] in
              let* body = go (x :: env) (n / 2) in
              let* arg = go env (n / 2) in
              return (Ir.lam [ x ] body @@@ [ arg ]));
          (2, let* a = go env (n / 2) in
              let* b = go env (n / 2) in
              return (v "+" @@@ [ a; b ]));
          (2, let* c = go env (n / 3) in
              let* a = go env (n / 3) in
              let* b = go env (n / 3) in
              return (Ir.if_ c a b));
          (1, let* a = go env (n / 2) in
              let* b = go env (n / 2) in
              return (Ir.Pcall [ v "+"; a; b ]));
          (1, let* body = go ("cc" :: env) (n / 2) in
              return (spawn_ (Ir.lam [ "cc" ] body)));
        ]
  in
  go [] 10

let arb_ir = QCheck.make gen_ir ~print:Ir.to_string

let prop_strategies_agree =
  QCheck.Test.make ~name:"Linked and Copying agree" ~count:300 arb_ir (fun ir ->
      let run s =
        match Run.eval_ir ~fuel:20_000 ~cfg:(Machine.config ~strategy:s ()) (env ()) ir with
        | Run.Value v -> "v:" ^ Value.to_string v
        | Run.Error m -> "e:" ^ m
        | Run.Out_of_fuel -> "fuel"
      in
      run Types.Linked = run Types.Copying)

let prop_pure_deterministic =
  QCheck.Test.make ~name:"evaluation deterministic" ~count:200 arb_ir (fun ir ->
      let run () =
        match Run.eval_ir ~fuel:20_000 (env ()) ir with
        | Run.Value v -> "v:" ^ Value.to_string v
        | Run.Error m -> "e:" ^ m
        | Run.Out_of_fuel -> "fuel"
      in
      run () = run ())

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pstack"
    [
      ( "values",
        [
          Alcotest.test_case "list roundtrip" `Quick test_list_roundtrip;
          Alcotest.test_case "truthiness" `Quick test_truthiness;
          Alcotest.test_case "eqv/equal" `Quick test_eqv_equal;
          Alcotest.test_case "printing" `Quick test_printing;
        ] );
      ( "env",
        [
          Alcotest.test_case "shadowing" `Quick test_env_shadowing;
          Alcotest.test_case "globals" `Quick test_env_globals;
          Alcotest.test_case "bind_params" `Quick test_bind_params;
        ] );
      ( "forms",
        [
          Alcotest.test_case "core forms" `Quick test_eval_forms;
          Alcotest.test_case "letrec and set!" `Quick test_letrec_and_set;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          Alcotest.test_case "fuel" `Quick test_out_of_fuel;
        ] );
      ( "prims",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "pairs and lists" `Quick test_pairs_and_lists;
          Alcotest.test_case "strings and symbols" `Quick test_strings_symbols;
          Alcotest.test_case "vectors" `Quick test_vectors;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "output capture" `Quick test_output;
          Alcotest.test_case "apply" `Quick test_apply;
        ] );
      ( "control",
        [
          Alcotest.test_case "spawn normal return" `Quick test_spawn_normal_return;
          Alcotest.test_case "controller aborts" `Quick test_controller_abort;
          Alcotest.test_case "pk composes" `Quick test_pk_compose;
          Alcotest.test_case "pk multi-shot" `Quick test_pk_multishot;
          Alcotest.test_case "invalid controllers" `Quick test_controller_invalid;
          Alcotest.test_case "reinstated controller" `Quick test_reinstated_controller;
          Alcotest.test_case "exit across nested spawn" `Quick test_nested_spawn_inner_exit;
          Alcotest.test_case "call/cc escape" `Quick test_callcc_escape;
          Alcotest.test_case "call/cc unused" `Quick test_callcc_normal;
          Alcotest.test_case "call/cc abortive" `Quick test_callcc_abortive;
          Alcotest.test_case "prompt and fcontrol" `Quick test_prompt_fcontrol;
          Alcotest.test_case "F erases spawn roots" `Quick test_fcontrol_erases_spawn_roots;
          Alcotest.test_case "pcall sequential" `Quick test_pcall_sequential;
        ] );
      ( "dynamic-wind",
        [
          Alcotest.test_case "normal return" `Quick test_wind_normal_return;
          Alcotest.test_case "abort runs after" `Quick test_wind_abort_runs_after;
          Alcotest.test_case "nested abort order" `Quick test_wind_nested_abort_order;
          Alcotest.test_case "multi-shot re-entry" `Quick test_wind_multishot_reenters;
          Alcotest.test_case "value passthrough" `Quick test_wind_value_passthrough;
          Alcotest.test_case "call/cc does not unwind (pinned)" `Quick
            test_wind_callcc_does_not_unwind;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "linked cost independent of frames" `Quick
            test_linked_cost_independent_of_frames;
          Alcotest.test_case "copying cost linear in frames" `Quick
            test_copying_cost_linear_in_frames;
          Alcotest.test_case "cost linear in roots" `Quick test_capture_cost_linear_in_roots;
          Alcotest.test_case "counter events" `Quick test_counter_events;
          Alcotest.test_case "nested capture value" `Quick test_nested_capture_value;
        ] );
      ( "fastpath",
        [
          Alcotest.test_case "linearity classifier" `Quick test_linear_pk_use_classifier;
          Alcotest.test_case "one-shot move, multi-shot fallback" `Quick
            test_oneshot_move_and_fallback;
          Alcotest.test_case "abort recycles into pool" `Quick
            test_abort_recycles_into_pool;
          Alcotest.test_case "escaped pk stays multi-shot" `Quick
            test_escaped_pk_stays_multishot;
        ] );
      ( "debug",
        [
          Alcotest.test_case "state summaries" `Quick test_debug_pp;
          Alcotest.test_case "ptree summaries" `Quick test_debug_ptree;
        ] );
      ("properties", qsuite [ prop_strategies_agree; prop_pure_deterministic ]);
    ]
