(* Tests for the fault-tolerance layer (lib/resil): cancellation
   scopes, finalizer ordering, virtual-time timeouts, supervision with
   restart-intensity windows — plus the trace side: the three new
   Analysis.Check rules pass on clean traces from both schedulers and
   each fails on a corrupted or injected trace, and Obs.Summary renders
   the cancelled/crashed/restarted fates. *)

module Obs = Pcont_obs.Obs
module E = Pcont_obs.Obs.Event
module Trace = Pcont_obs.Trace
module Analysis = Pcont_obs.Analysis
module Interp = Pcont_syntax.Interp
module Concur = Pcont_pstack.Concur
module Sched = Pcont_sched.Sched
module Channel = Pcont_sched.Channel
module Resil = Pcont_resil.Resil

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Run a native program with a trace buffer attached. *)
let native_trace prog =
  let buf = Buffer.create 1024 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  let v = Sched.run ~obs:o prog in
  Obs.close o;
  (v, Buffer.contents buf)

let parse_exn txt =
  match Trace.parse_string txt with
  | Ok evs -> evs
  | Error m -> Alcotest.failf "trace parse: %s" m

let rules violations =
  List.sort_uniq compare
    (List.map (fun v -> v.Analysis.Check.v_rule) violations)

(* ---------------- scopes ------------------------------------------- *)

let test_scope_outcomes () =
  let ok, crashed =
    Sched.run (fun () ->
        let ok = Resil.Scope.run (Resil.Scope.make ()) (fun () -> 41 + 1) in
        let crashed =
          Resil.Scope.run (Resil.Scope.make ()) (fun () -> failwith "boom")
        in
        (ok, crashed))
  in
  Alcotest.(check bool) "ok" true (ok = Ok 42);
  (match crashed with
  | Error (Resil.Crashed m) ->
      Alcotest.(check bool) "crash message" true (contains ~needle:"boom" m)
  | _ -> Alcotest.fail "expected Error (Crashed _)")

let test_finalizer_ordering () =
  (* Finalizers run newest first, exactly once, on every exit path —
     completion, crash, and cancellation alike. *)
  let order path mk =
    let log = ref [] in
    let _ =
      Sched.run (fun () ->
          Resil.Scope.with_scope (fun sc ->
              Resil.Scope.on_exit sc (fun () -> log := "first" :: !log);
              Resil.Scope.on_exit sc (fun () -> log := "second" :: !log);
              (* a raising finalizer must not mask the others *)
              Resil.Scope.on_exit sc (fun () -> failwith "ignored");
              mk sc))
    in
    Alcotest.(check (list string)) path [ "first"; "second" ] !log
  in
  order "completion" (fun _ -> ());
  order "crash" (fun _ -> failwith "boom");
  order "cancellation" (fun sc ->
      Resil.Scope.cancel sc ~reason:"self";
      Sched.block (Sched.Waitset.create "never"))

let test_cancel_propagates_to_children () =
  let v =
    Sched.run (fun () ->
        let parent = Resil.Scope.make () in
        let child_out = ref None in
        let (), () =
          Sched.pcall2
            (fun () ->
              let sc = Resil.Scope.make ~parent () in
              child_out :=
                Some
                  (Resil.Scope.run sc (fun () ->
                       Sched.block (Sched.Waitset.create "forever"))))
            (fun () ->
              Sched.yield ();
              Resil.Scope.cancel parent ~reason:"shutdown")
        in
        !child_out)
  in
  match v with
  | Some (Error (Resil.Cancelled r)) ->
      Alcotest.(check string) "reason" "shutdown" r
  | _ -> Alcotest.fail "expected child cancelled via parent"

let test_own_channel_closed_on_cancel () =
  (* A consumer outside the scope must observe end-of-stream, not
     deadlock, when the owning scope is cancelled. *)
  let drained =
    Sched.run (fun () ->
        let ch = Channel.create ~capacity:4 () in
        let consumer, _ =
          Sched.pcall2
            (fun () ->
              let n = ref 0 in
              Channel.iter (fun _ -> incr n) ch;
              !n)
            (fun () ->
              let sc = Resil.Scope.make () in
              let r =
                Resil.Scope.run sc (fun () ->
                    Resil.Scope.own_channel sc ch;
                    Channel.send ch 1;
                    Channel.send ch 2;
                    Resil.Scope.cancel sc ~reason:"stop";
                    Sched.sleep 1_000)
              in
              (match r with
              | Error (Resil.Cancelled _) -> ()
              | _ -> Alcotest.fail "expected the producer scope cancelled");
              0)
        in
        consumer)
  in
  Alcotest.(check int) "values before close" 2 drained

(* ---------------- timeouts ----------------------------------------- *)

let test_with_timeout () =
  let fast, slow =
    Sched.run (fun () ->
        let fast =
          Resil.with_timeout 50 (fun () ->
              Sched.sleep 5;
              "fast")
        in
        let slow =
          Resil.with_timeout 5 (fun () ->
              Sched.sleep 50;
              "slow")
        in
        (fast, slow))
  in
  Alcotest.(check bool) "fast wins" true (fast = Ok "fast");
  (match slow with
  | Error (Resil.Cancelled "timeout") -> ()
  | _ -> Alcotest.fail "expected Cancelled timeout");
  (* and the trace carries the Timeout/Cancel pair *)
  let _, trace =
    native_trace (fun () ->
        Resil.with_timeout 5 (fun () -> Sched.sleep 50))
  in
  let evs = parse_exn trace in
  let has p = Array.exists (fun (s : Trace.stamped) -> p s.Trace.ev) evs in
  Alcotest.(check bool) "Timeout event" true
    (has (function E.Timeout _ -> true | _ -> false));
  Alcotest.(check bool) "Cancel event" true
    (has (function E.Cancel _ -> true | _ -> false))

let test_native_virtual_timers () =
  (* quiescence jumps the clock to the earliest deadline; sleepers wake
     in deadline order *)
  let t = Sched.run (fun () -> Sched.sleep 100; Sched.now ()) in
  Alcotest.(check int) "clock jumped" 100 t;
  let log = ref [] in
  Sched.run (fun () ->
      ignore
        (Sched.pcall
           [
             (fun () -> Sched.sleep 50; log := "b" :: !log; 0);
             (fun () -> Sched.sleep 10; log := "a" :: !log; 0);
           ]));
  Alcotest.(check (list string)) "deadline order" [ "a"; "b" ] (List.rev !log)

let eval_pstack src =
  let t = Interp.create () in
  ignore (Interp.take_output ());
  let rs = Interp.eval_string ~mode:(Interp.Concurrent Concur.Round_robin) t src in
  ignore (Interp.take_output ());
  String.concat "; " (List.map Interp.result_to_string rs)

let test_pstack_virtual_timers () =
  (* the interpreter's scheduler has the same timer wheel: sleep parks,
     quiescence jumps the fuel-metered clock *)
  Alcotest.(check bool) "sleep then value" true
    (contains ~needle:"42" (eval_pstack "(begin (sleep 100) 42)"));
  (* the paper's timeout idiom: the timer branch captures the slow
     branch with the spawn controller and declines to reinstate it *)
  let r =
    eval_pstack
      "(spawn (lambda (c)\n\
      \  (pcall list\n\
      \    (begin (sleep 1000) 'slow)\n\
      \    (begin (sleep 5) (c (lambda (pk) 'timed-out))))))"
  in
  Alcotest.(check bool) "timer cancels slow branch" true
    (contains ~needle:"timed-out" r)

(* ---------------- supervision -------------------------------------- *)

let test_restart_intensity () =
  (* a child that always crashes: the supervisor restarts it
     [max_restarts] times with exponential backoff, then gives up *)
  let max_restarts = 3 and backoff = 2 in
  let (r, t_end), trace =
    native_trace (fun () ->
        let r =
          Resil.Supervisor.supervise ~max_restarts ~window:10_000 ~backoff
            [ Resil.Supervisor.child ~name:"bad" (fun () -> failwith "boom") ]
        in
        (r, Sched.now ()))
  in
  (match r with
  | Error (Resil.Crashed m) ->
      Alcotest.(check bool) "failure is the child's" true
        (contains ~needle:"boom" m)
  | _ -> Alcotest.fail "expected the supervisor to give up with the crash");
  let evs = parse_exn trace in
  let restarts =
    Array.to_list evs
    |> List.filter_map (fun (s : Trace.stamped) ->
           match s.Trace.ev with
           | E.Restart { attempt; backoff = b; limit; _ } ->
               Some (attempt, b, limit)
           | _ -> None)
  in
  Alcotest.(check int) "restart count" max_restarts (List.length restarts);
  List.iteri
    (fun i (attempt, b, limit) ->
      Alcotest.(check int) "attempt number" (i + 1) attempt;
      Alcotest.(check int) "exponential backoff" (backoff * (1 lsl i)) b;
      Alcotest.(check int) "declared limit" max_restarts limit)
    restarts;
  (* the backoffs happened in virtual time *)
  Alcotest.(check bool) "clock advanced past the backoffs" true
    (t_end >= backoff * ((1 lsl max_restarts) - 1));
  Alcotest.(check (list string)) "trace passes every rule" []
    (rules (Analysis.Check.run evs))

let test_one_for_all () =
  let crashes = ref 0 in
  let log = ref [] in
  let r =
    Sched.run (fun () ->
        Resil.Supervisor.supervise ~strategy:Resil.Supervisor.One_for_all
          ~max_restarts:2 ~window:10_000 ~backoff:2
          [
            Resil.Supervisor.child ~name:"flaky" (fun () ->
                if !crashes = 0 then begin
                  incr crashes;
                  failwith "first attempt"
                end
                else log := "flaky-ok" :: !log);
            Resil.Supervisor.child ~name:"steady" (fun () ->
                Sched.sleep 50;
                log := "steady-ok" :: !log);
          ])
  in
  Alcotest.(check bool) "recovered" true (r = Ok ());
  Alcotest.(check int) "one crash" 1 !crashes;
  (* the steady sibling was cancelled mid-sleep and restarted, so it
     completes exactly once *)
  Alcotest.(check int) "steady completed once" 1
    (List.length (List.filter (String.equal "steady-ok") !log));
  Alcotest.(check int) "flaky retry completed" 1
    (List.length (List.filter (String.equal "flaky-ok") !log))

(* ---------------- the three new Check rules ------------------------ *)

(* A clean supervised run with a crash, a restart and a timeout: every
   rule passes on it, and it is the donor trace the corruption tests
   mutate. *)
let donor_trace () =
  let crashes = ref 0 in
  let _, trace =
    native_trace (fun () ->
        let sup =
          Resil.Supervisor.supervise ~max_restarts:2 ~window:10_000 ~backoff:2
            [
              Resil.Supervisor.child ~name:"flaky" (fun () ->
                  if !crashes = 0 then begin
                    incr crashes;
                    failwith "boom"
                  end);
            ]
        in
        let timed =
          Resil.with_timeout 5 (fun () ->
              ignore
                (Sched.pcall
                   [
                     (fun () -> Sched.sleep 1_000; 0);
                     (fun () -> Sched.sleep 2_000; 0);
                   ]))
        in
        (sup, timed))
  in
  parse_exn trace

let test_clean_traces_pass () =
  Alcotest.(check (list string)) "native resil trace" []
    (rules (Analysis.Check.run (donor_trace ())));
  (* and the pstack scheduler's timer traces satisfy the same rule set *)
  let buf = Buffer.create 1024 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  let t = Interp.create () in
  ignore
    (Interp.eval_string ~mode:(Interp.Concurrent Concur.Round_robin) ~obs:o t
       "(pcall + (begin (sleep 30) 1) (begin (sleep 10) 2))");
  Obs.close o;
  ignore (Interp.take_output ());
  Alcotest.(check (list string)) "pstack timer trace" []
    (rules (Analysis.Check.run (parse_exn (Buffer.contents buf))))

let test_cancel_propagation_rule () =
  (* drop one swept pid from a Cancel event: the checker must notice the
     survivor — a live descendant of a cancelled scope *)
  let evs = donor_trace () in
  let corrupted = ref false in
  let evs' =
    Array.map
      (fun (st : Trace.stamped) ->
        match st.Trace.ev with
        | E.Cancel { pid; scope; reason; pids }
          when (not !corrupted) && Array.length pids > 1 ->
            corrupted := true;
            {
              st with
              Trace.ev =
                E.Cancel
                  {
                    pid;
                    scope;
                    reason;
                    pids = Array.sub pids 0 (Array.length pids - 1);
                  };
            }
        | _ -> st)
      evs
  in
  Alcotest.(check bool) "found a Cancel to corrupt" true !corrupted;
  Alcotest.(check bool) "rule fires" true
    (List.mem "cancel-propagation-complete" (rules (Analysis.Check.run evs')))

let test_restart_intensity_rule () =
  (* claim an attempt beyond the declared limit *)
  let evs = donor_trace () in
  let corrupted = ref false in
  let evs' =
    Array.map
      (fun (st : Trace.stamped) ->
        match st.Trace.ev with
        | E.Restart { pid; child; backoff; limit; _ } when not !corrupted ->
            corrupted := true;
            {
              st with
              Trace.ev =
                E.Restart { pid; child; attempt = limit + 1; backoff; limit };
            }
        | _ -> st)
      evs
  in
  Alcotest.(check bool) "found a Restart to corrupt" true !corrupted;
  Alcotest.(check bool) "rule fires" true
    (List.mem "restart-intensity-bounded" (rules (Analysis.Check.run evs')))

let test_no_orphan_waiters_rule () =
  (* the injected leak: a helper parked in its own future tree is out of
     reach of the abort that cancels its planting fiber, so it ends the
     trace parked under a dead ancestor *)
  let v, trace =
    native_trace (fun () ->
        Sched.spawn (fun c ->
            let ws = Sched.Waitset.create "orphan" in
            let _h : int Sched.future =
              Sched.future (fun () ->
                  Sched.block ws;
                  0)
            in
            Sched.yield ();
            Sched.abort c ~reason:"drop-helper" (fun () -> 7)))
  in
  Alcotest.(check int) "run still delivers a value" 7 v;
  Alcotest.(check (list string)) "only the orphan rule fires"
    [ "no-orphan-waiters" ]
    (rules (Analysis.Check.run (parse_exn trace)))

(* ---------------- summary fates ------------------------------------ *)

let test_summary_fates () =
  let s = Obs.Summary.create () in
  let o = Obs.create () in
  Obs.attach o (Obs.Summary.sink s);
  let crashes = ref 0 in
  ignore
    (Sched.run ~obs:o (fun () ->
         let sup =
           Resil.Supervisor.supervise ~max_restarts:2 ~window:10_000 ~backoff:2
             [
               Resil.Supervisor.child ~name:"flaky" (fun () ->
                   if !crashes = 0 then begin
                     incr crashes;
                     failwith "boom"
                   end);
             ]
         in
         let timed = Resil.with_timeout 5 (fun () -> Sched.sleep 1_000) in
         (sup, timed)));
  Obs.close o;
  let fates =
    List.sort_uniq compare
      (List.filter_map
         (fun (_, r) ->
           if r.Obs.Summary.r_fate = "" then None else Some r.Obs.Summary.r_fate)
         (Obs.Summary.rows s))
  in
  List.iter
    (fun fate ->
      Alcotest.(check bool) (fate ^ " present") true (List.mem fate fates))
    [ "cancelled"; "crashed"; "restarted" ];
  Alcotest.(check bool) "cancelled-while-parked counted" true
    (Obs.Summary.cancelled_parked s >= 1)

let () =
  Alcotest.run "resil"
    [
      ( "scope",
        [
          Alcotest.test_case "outcomes" `Quick test_scope_outcomes;
          Alcotest.test_case "finalizer ordering" `Quick test_finalizer_ordering;
          Alcotest.test_case "cancel propagates down" `Quick
            test_cancel_propagates_to_children;
          Alcotest.test_case "owned channel closes" `Quick
            test_own_channel_closed_on_cancel;
        ] );
      ( "timers",
        [
          Alcotest.test_case "with_timeout" `Quick test_with_timeout;
          Alcotest.test_case "native virtual timers" `Quick
            test_native_virtual_timers;
          Alcotest.test_case "pstack virtual timers" `Quick
            test_pstack_virtual_timers;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "restart intensity" `Quick test_restart_intensity;
          Alcotest.test_case "one-for-all" `Quick test_one_for_all;
        ] );
      ( "check-rules",
        [
          Alcotest.test_case "clean traces pass" `Quick test_clean_traces_pass;
          Alcotest.test_case "cancel-propagation-complete" `Quick
            test_cancel_propagation_rule;
          Alcotest.test_case "restart-intensity-bounded" `Quick
            test_restart_intensity_rule;
          Alcotest.test_case "no-orphan-waiters" `Quick
            test_no_orphan_waiters_rule;
        ] );
      ( "summary",
        [ Alcotest.test_case "fates rendered" `Quick test_summary_fates ] );
    ]
