(* Tests for the concurrent tree-of-stacks scheduler (Section 7's
   concurrent implementation): pcall forking, cross-branch controller
   capture, grafting, schedule independence, and the Section 5 programs. *)

module Interp = Pcont_syntax.Interp
module Pstack = Pcont_pstack
module Concur = Pcont_pstack.Concur
module Machine = Pcont_pstack.Machine
module C = Pcont_util.Counters
module Obs = Pcont_obs.Obs
module E = Pcont_obs.Obs.Event

(* An obs handle whose events accumulate (newest first) in the returned ref. *)
let collecting () =
  let events = ref [] in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.memory (fun (_, _, ev) -> events := ev :: !events));
  (o, events)

let conc = Interp.Concurrent Concur.Round_robin

let ev ?(mode = conc) src =
  let t = Interp.create () in
  Interp.eval_value ~mode t src

let ev_err src =
  let t = Interp.create () in
  match List.rev (Interp.eval_string ~mode:conc t src) with
  | Interp.Error m :: _ -> m
  | r :: _ -> Alcotest.failf "expected error, got %s" (Interp.result_to_string r)
  | [] -> Alcotest.fail "no results"

let check_int ?mode name expect src =
  match ev ?mode src with
  | Pstack.Types.Int n -> Alcotest.(check int) name expect n
  | v -> Alcotest.failf "%s: expected int, got %s" name (Pstack.Value.to_string v)

let check_value ?mode name expect src =
  Alcotest.(check string) name expect (Pstack.Value.to_string (ev ?mode src))

(* ---------------- pcall basics ---------------- *)

let test_pcall_basic () =
  check_int "sum" 6 "(pcall + 1 2 3)";
  check_int "operator branch" 12 "(pcall (if #t * +) 3 4)";
  check_int "single branch" 5 "(pcall (lambda () 5))";
  check_int "nested" 21 "(pcall + (pcall + 1 2) (pcall * 3 6))"

let test_pcall_branches_interleave () =
  (* Both branches increment a shared counter; with round-robin quanta the
     final value is 2 regardless of order. *)
  check_int "shared effects" 2
    "(define n 0)
     (pcall (lambda (a b) n)
            (set! n (+ n 1))
            (set! n (+ n 1)))"

let test_pcall_deep_recursion () =
  check_int "tree sum" 120
    "(define (tsum lo hi)
       (if (= lo hi) lo
           (let ([mid (quotient (+ lo hi) 2)])
             (pcall + (tsum lo mid) (tsum (+ mid 1) hi)))))
     (tsum 1 15)"

(* ---------------- controller capture across branches ---------------- *)

let product_defs =
  {|
(define product0
  (lambda (ls exit)
    (cond
      [(null? ls) 1]
      [(= (car ls) 0) (exit 0)]
      [else (* (car ls) (product0 (cdr ls) exit))])))
|}

let test_exit_within_one_arm () =
  check_int "local exits" 120
    (product_defs
   ^ {|
(define (product ls) (spawn/exit (lambda (exit) (product0 ls exit))))
(pcall + (product '(1 2 0)) (product '(4 5 6)))
|})

let test_exit_aborts_both_arms () =
  check_int "global exit" 0
    (product_defs
   ^ {|
(spawn/exit
  (lambda (exit)
    (pcall * (product0 '(1 2 0 4) exit) (product0 '(5 6 7) exit))))
|});
  check_int "no zero" 720
    (product_defs
   ^ {|
(spawn/exit
  (lambda (exit)
    (pcall * (product0 '(1 2 3) exit) (product0 '(4 5 6) exit))))
|})

let test_exit_from_nested_fork () =
  check_int "deep cross-branch exit" 99
    {|
(spawn/exit
  (lambda (exit)
    (pcall +
      (pcall + 1 (pcall + 2 (exit 99)))
      1000000)))
|}

let test_invalid_across_scheduler () =
  let msg =
    ev_err "(define leaked #f)
            (spawn (lambda (c) (set! leaked c) 0))
            (pcall + (leaked (lambda (k) 1)) 2)"
  in
  Alcotest.(check bool) "mentions invalid" true (String.length msg > 0)

(* ---------------- parallel-or / first-true ---------------- *)

let test_parallel_or () =
  check_int "right true" 17 "(parallel-or #f 17)";
  check_value "left true" "yes" "(parallel-or 'yes #f)";
  check_value "both false" "#f" "(parallel-or #f #f)";
  check_value "three-way" "3" "(parallel-or #f #f 3)"

let test_parallel_or_abandons_divergent () =
  (* One branch diverges; the other answers.  The divergent branch is
     abandoned when the controller prunes the subtree. *)
  check_int "divergent branch abandoned" 7
    "(define (loop) (loop))
     (parallel-or (loop) 7)"

let test_first_true_direct () =
  check_value "first-true" "42"
    "(first-true (lambda () #f) (lambda () 42))";
  check_value "neither" "#f" "(first-true (lambda () #f) (lambda () #f))"

(* ---------------- parallel-search ---------------- *)

let search_defs =
  {|
(define (node t) (car t))
(define (left t) (cadr t))
(define (right t) (car (cddr t)))
(define (empty? t) (null? t))

(define parallel-search
  (lambda (tree predicate?)
    (spawn
      (lambda (c)
        (define search
          (lambda (tree)
            (unless (empty? tree)
              (pcall
                (lambda (x y z) #f)
                (when (predicate? (node tree))
                  (c (lambda (k)
                       (cons (node tree)
                             (lambda () (k #f))))))
                (search (left tree))
                (search (right tree))))))
        (search tree)
        #f))))

(define search-all
  (lambda (tree predicate?)
    (letrec ([collect (lambda (result)
                        (if result
                            (cons (car result) (collect ((cdr result))))
                            '()))])
      (collect (parallel-search tree predicate?)))))

(define t
  '(4 (2 (1 () ()) (3 () ())) (6 (5 () ()) (7 () ()))))
|}

let sort_ints_src l = "(define (insert x ls) (cond [(null? ls) (list x)] [(< x (car ls)) (cons x ls)] [else (cons (car ls) (insert x (cdr ls)))])) (define (sort ls) (fold-left (lambda (acc x) (insert x acc)) '() ls)) (sort " ^ l ^ ")"

let test_parallel_search_all () =
  check_value "evens" "(2 4 6)" (search_defs ^ sort_ints_src "(search-all t even?)");
  check_value "odds" "(1 3 5 7)" (search_defs ^ sort_ints_src "(search-all t odd?)");
  check_value "none" "()" (search_defs ^ "(search-all t (lambda (x) (> x 10)))")

let test_parallel_search_first_only () =
  (* Taking just the first answer leaves the suspended search unresumed. *)
  check_value "first only is a pair" "#t"
    (search_defs ^ "(pair? (parallel-search t even?))")

let test_parallel_search_schedules_agree () =
  (* The set of results is schedule-independent. *)
  let results seed =
    let t = Interp.create () in
    match
      Interp.eval_value
        ~mode:(Interp.Concurrent (Concur.Randomized (Int64.of_int seed)))
        t
        (search_defs ^ sort_ints_src "(search-all t even?)")
    with
    | v -> Pstack.Value.to_string v
  in
  List.iter
    (fun seed -> Alcotest.(check string) "same set" "(2 4 6)" (results seed))
    [ 1; 2; 3; 42; 1000 ]

(* ---------------- multi-shot in the concurrent scheduler ---------------- *)

let test_multishot_pk_concurrent () =
  check_int "pk invoked twice across pcall" 12
    "(spawn (lambda (c) (+ 1 (c (lambda (k) (* (k 2) (k 3)))))))";
  (* Same but the capture happens inside a pcall branch, so the captured
     subtree is a genuine tree and grafting runs twice: (k 2) completes the
     fork as (+ 1 2) = 3, (k 5) as (+ 1 5) = 6, and the body multiplies. *)
  check_int "tree pk invoked twice" 18
    "(spawn (lambda (c)
       (pcall + 1 (c (lambda (k) (* (k 2) (k 5)))))))"

(* ---------------- futures: Section 8's forest of trees ---------------- *)

let test_future_basic () =
  check_int "touch" 42 "(touch (future (* 6 7)))";
  check_int "touch non-future" 5 "(touch 5)";
  check_value "future?" "#t" "(future? (future 1))";
  check_value "not future" "#f" "(future? 3)"

let test_future_cross_form () =
  (* drain-on-exit: the future finishes with its form and remains
     touchable from the next form *)
  let t = Interp.create () in
  ignore
    (Interp.eval_string ~mode:conc t
       "(define f (future (let loop ([i 0]) (if (= i 50) 77 (loop (+ i 1))))))");
  match Interp.eval_value ~mode:conc t "(touch f)" with
  | Pstack.Types.Int 77 -> ()
  | v -> Alcotest.failf "got %s" (Pstack.Value.to_string v)

let test_future_concurrent_progress () =
  (* The future's tree runs interleaved with the main tree: both count, and
     the main tree observes the future's effects progressing. *)
  check_int "interleaved" 30
    "(define n 0)
     (define f (future (begin (set! n (+ n 10)) (set! n (+ n 10)) n)))
     (+ (touch f) 10)"

let test_future_sequential_eager () =
  check_int "sequential eager" 42 ~mode:Interp.Sequential "(touch (future (* 6 7)))";
  check_value "resolved at once" "#t" ~mode:Interp.Sequential "(future? (future 1))"

let test_future_controller_cannot_cross () =
  (* Controllers cannot capture across the forest boundary. *)
  let msg =
    ev_err "(spawn (lambda (c) (touch (future (c (lambda (k) 1))))))"
  in
  Alcotest.(check bool) "boundary enforced" true (String.length msg > 0)

let test_future_survives_pruning () =
  (* A future created in a pcall branch keeps running after the branch's
     subtree is pruned by an exit. *)
  check_int "future survives prune" 15
    "(define f #f)
     (+ (spawn/exit
          (lambda (exit)
            (pcall +
              (begin (set! f (future (let loop ([i 0]) (if (= i 20) 10 (loop (+ i 1))))))
                     (exit 5))
              100000)))
        (touch f))"

let test_future_many () =
  check_int "fan-out" 285
    "(define fs (map1 (lambda (i) (future (* i i))) (iota 10)))
     (fold-left + 0 (map1 touch fs))"

let test_future_no_drain () =
  let t = Interp.create () in
  let slow = "(define f (future (let loop ([i 0]) (if (= i 1000) 1 (loop (+ i 1))))))" in
  (match
     Pstack.Concur.run ~drain_futures:false ~cfg:(Interp.config t) (Interp.env t)
       (match Pcont_syntax.Expand.parse_program slow with
       | Ok [ Pcont_syntax.Expand.Define (_, ir) ] -> ir
       | _ -> Alcotest.fail "parse")
   with
  | Pstack.Concur.Value v -> Pstack.Env.define_global (Interp.env t) "f" v
  | _ -> Alcotest.fail "future definition failed");
  (* Without draining, the tree was discarded: touching it later errors. *)
  match List.rev (Interp.eval_string ~mode:conc ~fuel:20_000 t "(touch f)") with
  | Interp.Error _ :: _ -> ()
  | r :: _ -> Alcotest.failf "expected error, got %s" (Interp.result_to_string r)
  | [] -> Alcotest.fail "no results"

(* ---------------- scheduler mechanics ---------------- *)

let test_counters () =
  let t = Interp.create () in
  let cfg = Interp.config t in
  (match
     Interp.eval_value ~mode:conc t
       "(spawn/exit (lambda (exit) (pcall + 1 (exit 9) 3)))"
   with
  | Pstack.Types.Int 9 -> ()
  | v -> Alcotest.failf "got %s" (Pstack.Value.to_string v));
  let c = cfg.Machine.counters in
  Alcotest.(check bool) "forked" true (C.get c "concur.fork" >= 1);
  Alcotest.(check int) "captured once" 1 (C.get c "concur.capture");
  Alcotest.(check int) "locked once" 1 (C.get c "sync.lock")

let test_fuel_exhaustion () =
  let t = Interp.create () in
  match
    List.rev (Interp.eval_string ~mode:conc ~fuel:500 t "(define (loop) (loop)) (pcall + (loop) (loop))")
  with
  | Interp.Error m :: _ -> Alcotest.(check string) "fuel error" "out of fuel" m
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_callcc_is_leaf_local () =
  (* call/cc captures only the invoking branch's local stack: escaping
     within a branch works... *)
  check_int "local escape" 11
    "(pcall + 1 (call/cc (lambda (k) (+ 100 (k 10)))))"

let test_display_across_branches () =
  let t = Interp.create () in
  ignore (Interp.take_output ());
  (match Interp.eval_value ~mode:conc t "(pcall (lambda (a b) 0) (display \"x\") (display \"x\"))" with
  | Pstack.Types.Int 0 -> ()
  | v -> Alcotest.failf "got %s" (Pstack.Value.to_string v));
  Alcotest.(check string) "both printed" "xx" (Interp.take_output ())

(* ---------------- trace events ---------------- *)

let test_trace_events () =
  let t = Interp.create () in
  let obs, events = collecting () in
  (match
     Interp.eval_top ~mode:conc ~obs t
       (match Pcont_syntax.Expand.parse_program
                "(spawn/exit (lambda (exit) (pcall + 1 (exit 9))))"
        with
       | Ok [ top ] -> top
       | _ -> Alcotest.fail "parse")
   with
  | Interp.Value (Pstack.Types.Int 9) -> ()
  | r -> Alcotest.failf "got %s" (Interp.result_to_string r));
  let evs = List.rev !events in
  let has p = List.exists p evs in
  let count p = List.length (List.filter p evs) in
  Alcotest.(check int) "saw the fork's three branch spawns" 3
    (count (function E.Spawn { kind = "branch"; _ } -> true | _ -> false));
  Alcotest.(check bool) "saw capture with control points" true
    (has (function E.Capture { control_points; _ } -> control_points >= 1 | _ -> false));
  Alcotest.(check bool) "saw completions" true
    (has (function E.Exit _ -> true | _ -> false));
  Alcotest.(check bool) "saw run slices with fuel charged" true
    (has (function E.Slice_end { fuel; _ } -> fuel > 0 | _ -> false));
  (* event strings are printable *)
  List.iter (fun ev -> ignore (E.to_human ev)) evs

let test_trace_graft_event () =
  let t = Interp.create () in
  let obs, events = collecting () in
  (match
     Interp.eval_top ~mode:conc ~obs t
       (match Pcont_syntax.Expand.parse_program
                "(spawn (lambda (c) (pcall + 1 (c (lambda (k) (* (k 2) (k 5)))))))"
        with
       | Ok [ top ] -> top
       | _ -> Alcotest.fail "parse")
   with
  | Interp.Value (Pstack.Types.Int 18) -> ()
  | r -> Alcotest.failf "got %s" (Interp.result_to_string r));
  let grafts =
    List.length
      (List.filter (function E.Reinstate _ -> true | _ -> false) !events)
  in
  Alcotest.(check int) "two grafts (multi-shot)" 2 grafts

(* ---------------- systematic schedule exploration ---------------- *)

(* Run a program under every schedule reachable by a decision word over
   {0..alphabet-1}^depth: each decision picks which runnable branch steps
   next (one machine quantum), indices reduced mod the live branch count;
   beyond the word, branch 0 is always picked.  For small programs this
   covers every interleaving shape near the forks. *)
let explore_schedules ?(alphabet = 2) ?(depth = 9) src =
  let tops =
    match Pcont_syntax.Expand.parse_program src with
    | Ok tops -> tops
    | Error m -> Alcotest.failf "parse: %s" m
  in
  let outcomes = Hashtbl.create 8 in
  let words =
    let rec gen d = if d = 0 then [ [] ] else
      let shorter = gen (d - 1) in
      List.concat_map (fun w -> List.init alphabet (fun c -> c :: w)) shorter
    in
    gen depth
  in
  List.iter
    (fun word ->
      let t = Interp.create () in
      let remaining = ref word in
      let pick n =
        (* only a real choice point consumes a decision *)
        if n <= 1 then 0
        else
          match !remaining with
          | [] -> 0
          | c :: rest ->
              remaining := rest;
              c mod n
      in
      let rec run_tops = function
        | [] -> ()
        | top :: rest -> (
            match
              Interp.eval_top
                ~mode:(Interp.Concurrent (Concur.Driven pick))
                ~fuel:200_000 ~quantum:1 t top
            with
            | Interp.Error m -> Hashtbl.replace outcomes ("error: " ^ m) ()
            | Interp.Value v when rest = [] ->
                Hashtbl.replace outcomes (Pstack.Value.to_string v) ()
            | _ -> run_tops rest)
      in
      run_tops tops)
    words;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) outcomes [])

let test_explore_pure_pcall () =
  Alcotest.(check (list string)) "one outcome" [ "9" ]
    (explore_schedules "(pcall + (pcall + 1 2) (pcall * 2 3))")

let test_explore_cross_branch_exit () =
  Alcotest.(check (list string)) "always aborts to 0" [ "0" ]
    (explore_schedules
       "(spawn/exit (lambda (exit) (pcall * (+ 1 (exit 0)) (+ 2 3))))")

let test_explore_parallel_or_race () =
  (* BOTH branches are true: different schedules may pick different
     winners, but every schedule returns one of the two true values. *)
  let outcomes = explore_schedules ~depth:10 "(parallel-or 1 2)" in
  Alcotest.(check bool) "subset of {1,2}" true
    (outcomes <> [] && List.for_all (fun o -> o = "1" || o = "2") outcomes)

let test_explore_capture_while_parked () =
  (* A branch parks on a future while its sibling captures the whole
     subtree, packaging the parked waiter; the graft revives it and the
     revived branch re-touches.  Every interleaving of the park, the
     capture and the graft must agree — a regression guard for the
     mutable-segment representation: the captured stacks are pinned, so
     no schedule can observe a stack mutated after its capture. *)
  Alcotest.(check (list string)) "one outcome" [ "13" ]
    (explore_schedules ~depth:8
       "(spawn (lambda (c) (pcall + (touch (future (+ 1 2))) (c (lambda (k) (k 10))))))")

let test_explore_multishot_twice () =
  (* The multi-shot continuation is grafted twice under every schedule
     and must keep producing the seed answer: the one-shot fast path is
     disabled in concurrent mode, so both grafts see intact segments. *)
  Alcotest.(check (list string)) "seed answer under every schedule" [ "18" ]
    (explore_schedules ~depth:8
       "(spawn (lambda (c) (pcall + 1 (c (lambda (k) (* (k 2) (k 5)))))))")

let test_explore_racy_set () =
  (* A genuine race: schedules disagree — exploration must SEE both
     outcomes, demonstrating the explorer exercises distinct schedules. *)
  let outcomes =
    explore_schedules ~alphabet:3 ~depth:6
      "(define x 0) (pcall (lambda (a b) x) (set! x 1) (set! x 2))"
  in
  Alcotest.(check (list string)) "both orders observed" [ "1"; "2" ] outcomes

(* ---------------- parked waiters and deadlock detection ---------------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let deadlock_cycle = "(letrec ([f (future (touch f))]) (touch f))"

let test_deadlock_future_cycle () =
  (* Under Round_robin the letrec rib is filled before the future's tree
     first reads it, so both the main branch and the future's own branch
     park on f's unresolved cell: the queue drains and the run reports a
     deadlock instead of burning all its fuel. *)
  let m = ev_err deadlock_cycle in
  Alcotest.(check bool) (Printf.sprintf "diagnosis (%S)" m) true
    (contains ~needle:"deadlock" m && contains ~needle:"parked" m)

let test_deadlock_outcome_and_events () =
  (* The raw scheduler outcome and the park/deadlock trace events. *)
  let ir =
    match Pcont_syntax.Expand.parse_program deadlock_cycle with
    | Ok [ Pcont_syntax.Expand.Expr ir ] -> ir
    | _ -> Alcotest.fail "parse"
  in
  let obs, events = collecting () in
  (match Concur.run ~fuel:100_000 ~obs (Pstack.Prims.base_env ()) ir with
  | Concur.Deadlock msg ->
      Alcotest.(check bool) "names the parked branches" true
        (contains ~needle:"parked" msg)
  | o -> Alcotest.failf "expected Deadlock, got %s" (Concur.outcome_to_string o));
  let evs = List.rev !events in
  let count p = List.length (List.filter p evs) in
  Alcotest.(check int) "two parks" 2
    (count (function E.Park _ -> true | _ -> false));
  Alcotest.(check int) "no wakes" 0
    (count (function E.Wake _ -> true | _ -> false));
  Alcotest.(check bool) "deadlock event with both parked" true
    (List.exists
       (function E.Deadlock { parked = 2 } -> true | _ -> false)
       evs);
  List.iter (fun ev -> ignore (E.to_human ev)) evs

let test_park_wake_counters () =
  let t = Interp.create () in
  let c = (Interp.config t).Machine.counters in
  (match
     Interp.eval_value ~mode:conc t
       "(define (spin i) (if (= i 50) 7 (spin (+ i 1))))
        (touch (future (spin 0)))"
   with
  | Pstack.Types.Int 7 -> ()
  | v -> Alcotest.failf "got %s" (Pstack.Value.to_string v));
  Alcotest.(check int) "parked once" 1 (C.get c "concur.park");
  Alcotest.(check int) "woken once" 1 (C.get c "concur.wake")

(* Smallest fuel under which the whole program completes with a value. *)
let min_fuel ~quantum src =
  let ok fuel =
    let t = Interp.create () in
    match List.rev (Interp.eval_string ~mode:conc ~fuel ~quantum t src) with
    | Interp.Value _ :: _ -> true
    | _ -> false
  in
  let rec search lo hi =
    (* lo fails, hi succeeds *)
    if hi - lo <= 1 then hi
    else
      let mid = (lo + hi) / 2 in
      if ok mid then search lo mid else search mid hi
  in
  if ok 1 then 1
  else begin
    Alcotest.(check bool) "upper bound completes" true (ok 100_000);
    search 1 100_000
  end

let test_blocked_touch_consumes_no_fuel () =
  (* Regression for the Esc_touch fuel leak: a parked touch takes no
     machine transitions, so the fuel needed to finish must not depend on
     how long the toucher stays blocked.  Quantum 1 maximises the number
     of scheduling rounds the toucher sits parked through; before parked
     waiters each of those rounds charged the blocked branch one fuel,
     making the quantum-1 minimum strictly larger. *)
  let src =
    "(define (spin i) (if (= i 100) 7 (spin (+ i 1))))
     (touch (future (spin 0)))"
  in
  let f_long = min_fuel ~quantum:64 src in
  let f_short = min_fuel ~quantum:1 src in
  Alcotest.(check int) "fuel consumed while blocked is 0 (schedule-independent)"
    f_long f_short

let test_explore_deadlock_terminates () =
  (* Every interleaving of the racy future cycle terminates: either the
     future's branch reads the letrec slot before it is initialised
     (touching the non-future placeholder resolves the future) and the
     program completes, or both branches park on the unresolved cell and
     the scheduler diagnoses a deadlock.  No schedule may spin to fuel
     exhaustion. *)
  let outcomes = explore_schedules ~depth:6 deadlock_cycle in
  Alcotest.(check bool)
    (Printf.sprintf "some schedule deadlocks (%s)" (String.concat " | " outcomes))
    true
    (List.exists (fun o -> contains ~needle:"deadlock" o) outcomes);
  Alcotest.(check bool) "no schedule exhausts fuel" true
    (List.for_all (fun o -> not (contains ~needle:"fuel" o)) outcomes)

(* ---------------- property: schedule independence ---------------- *)

(* Pure programs (no set!, no controller races): every schedule — the
   sequential left-to-right machine, round-robin, and any random seed —
   must produce the same value.  Confluence of the tree semantics. *)
let gen_pure_concurrent =
  let open QCheck.Gen in
  let module Ir = Pstack.Ir in
  let rec go env n =
    if n <= 0 then
      oneof
        [
          map Ir.int small_int;
          (if env = [] then map Ir.int small_int else map Ir.var (oneofl env));
        ]
    else
      frequency
        [
          (2, map Ir.int small_int);
          (3, let* x = oneofl [ "p"; "q" ] in
              let* body = go (x :: env) (n / 2) in
              let* arg = go env (n / 2) in
              return (Ir.app (Ir.lam [ x ] body) [ arg ]));
          (3, let* a = go env (n / 2) in
              let* b = go env (n / 2) in
              let* op = oneofl [ "+"; "*"; "max"; "min" ] in
              return (Ir.Pcall [ Ir.var op; a; b ]));
          (2, let* c = go env (n / 3) in
              let* a = go env (n / 3) in
              let* b = go env (n / 3) in
              return (Ir.if_ (Ir.app (Ir.var "zero?") [ c ]) a b));
          (1, let* body = go env (n / 2) in
              return (Ir.app (Ir.var "spawn") [ Ir.lam [ "cc" ] body ]));
          (1, let* v = go env (n / 2) in
              (* a deterministic exit: both branches of the pcall exist but
                 the exit value is fixed, so every schedule agrees *)
              return
                (Ir.app (Ir.var "spawn")
                   [
                     Ir.lam [ "cc" ]
                       (Ir.Pcall
                          [
                            Ir.var "+";
                            Ir.app (Ir.var "cc") [ Ir.lam [ "k" ] v ];
                            Ir.int 1;
                          ]);
                   ]));
        ]
  in
  go [] 10

let arb_pure_concurrent = QCheck.make gen_pure_concurrent ~print:Pstack.Ir.to_string

let prop_schedule_independent =
  QCheck.Test.make ~name:"pure programs are schedule-independent" ~count:200
    arb_pure_concurrent (fun ir ->
      let run_with mode =
        let env = Pstack.Prims.base_env () in
        match mode with
        | `Seq -> (
            match Pstack.Run.eval_ir ~fuel:100_000 env ir with
            | Pstack.Run.Value v -> `V (Pstack.Value.to_string v)
            | Pstack.Run.Error m -> `E m
            | Pstack.Run.Out_of_fuel -> `F)
        | `Conc sched -> (
            match Concur.run ~fuel:400_000 ~sched env ir with
            | Concur.Value v -> `V (Pstack.Value.to_string v)
            | Concur.Error m -> `E m
            | Concur.Out_of_fuel -> `F
            | Concur.Deadlock m -> `D m)
      in
      let outcomes =
        [
          run_with `Seq;
          run_with (`Conc Concur.Round_robin);
          run_with (`Conc (Concur.Randomized 7L));
          run_with (`Conc (Concur.Randomized 12345L));
        ]
      in
      if List.exists (fun o -> o = `F) outcomes then true
      else
        match outcomes with
        | first :: rest -> List.for_all (( = ) first) rest
        | [] -> assert false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "concur"
    [
      ( "pcall",
        [
          Alcotest.test_case "basics" `Quick test_pcall_basic;
          Alcotest.test_case "interleaving" `Quick test_pcall_branches_interleave;
          Alcotest.test_case "deep recursion" `Quick test_pcall_deep_recursion;
        ] );
      ( "capture",
        [
          Alcotest.test_case "exit within one arm" `Quick test_exit_within_one_arm;
          Alcotest.test_case "exit aborts both arms" `Quick test_exit_aborts_both_arms;
          Alcotest.test_case "exit from nested fork" `Quick test_exit_from_nested_fork;
          Alcotest.test_case "invalid across scheduler" `Quick test_invalid_across_scheduler;
        ] );
      ( "parallel-or",
        [
          Alcotest.test_case "basics" `Quick test_parallel_or;
          Alcotest.test_case "abandons divergent branch" `Quick
            test_parallel_or_abandons_divergent;
          Alcotest.test_case "first-true" `Quick test_first_true_direct;
        ] );
      ( "parallel-search",
        [
          Alcotest.test_case "search-all" `Quick test_parallel_search_all;
          Alcotest.test_case "first only" `Quick test_parallel_search_first_only;
          Alcotest.test_case "schedule independence" `Quick
            test_parallel_search_schedules_agree;
        ] );
      ( "futures",
        [
          Alcotest.test_case "basics" `Quick test_future_basic;
          Alcotest.test_case "cross-form (drained)" `Quick test_future_cross_form;
          Alcotest.test_case "concurrent progress" `Quick test_future_concurrent_progress;
          Alcotest.test_case "sequential eager" `Quick test_future_sequential_eager;
          Alcotest.test_case "controller cannot cross" `Quick
            test_future_controller_cannot_cross;
          Alcotest.test_case "survives pruning" `Quick test_future_survives_pruning;
          Alcotest.test_case "fan-out" `Quick test_future_many;
          Alcotest.test_case "no drain discards" `Quick test_future_no_drain;
        ] );
      ( "multi-shot",
        [ Alcotest.test_case "pk twice" `Quick test_multishot_pk_concurrent ] );
      ( "mechanics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "fuel" `Quick test_fuel_exhaustion;
          Alcotest.test_case "call/cc leaf-local" `Quick test_callcc_is_leaf_local;
          Alcotest.test_case "output across branches" `Quick test_display_across_branches;
        ] );
      ( "trace",
        [
          Alcotest.test_case "events observed" `Quick test_trace_events;
          Alcotest.test_case "graft events" `Quick test_trace_graft_event;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "pure pcall: one outcome" `Quick test_explore_pure_pcall;
          Alcotest.test_case "cross-branch exit: always 0" `Quick
            test_explore_cross_branch_exit;
          Alcotest.test_case "parallel-or race: valid winners" `Quick
            test_explore_parallel_or_race;
          Alcotest.test_case "racy set!: both outcomes seen" `Quick test_explore_racy_set;
          Alcotest.test_case "capture while parked" `Quick
            test_explore_capture_while_parked;
          Alcotest.test_case "multi-shot grafted twice" `Quick
            test_explore_multishot_twice;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "future cycle diagnosed" `Quick test_deadlock_future_cycle;
          Alcotest.test_case "outcome + park/deadlock events" `Quick
            test_deadlock_outcome_and_events;
          Alcotest.test_case "park/wake counters" `Quick test_park_wake_counters;
          Alcotest.test_case "blocked touch consumes no fuel" `Quick
            test_blocked_touch_consumes_no_fuel;
          Alcotest.test_case "exploration terminates" `Quick
            test_explore_deadlock_terminates;
        ] );
      ("properties", qsuite [ prop_schedule_independent ]);
    ]
