(* Tests for the open-loop load generator: arrival schedules are pure
   and independent of handler execution, traces are byte-identical per
   seed and pass every invariant rule, latency attribution telescopes
   exactly to end-to-end, deadlines mark requests timed-out all the way
   to the Summary fate column, and a mid-load deadlock auto-dumps a
   flight window the checker accepts. *)

module Obs = Pcont_obs.Obs
module Trace = Pcont_obs.Trace
module Analysis = Pcont_obs.Analysis
module Sched = Pcont_sched.Sched
module Resil = Pcont_resil.Resil
module Load = Pcont_load.Load

(* A deliberately small profile: every property under test is
   size-independent, and the suite should stay fast. *)
let tiny =
  {
    Load.quick with
    Load.requests = 400;
    workers = 8;
    burst_on = 32;
    burst_off = 64.0;
  }

let jsonl_run ?(profile = tiny) ?(seed = 42L) scen =
  let o = Obs.create () in
  let buf = Buffer.create (1 lsl 16) in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  let st = Load.run ~obs:o profile ~seed scen in
  Obs.close o;
  (st, Buffer.contents buf)

let parse_ok what s =
  match Trace.parse_string s with
  | Ok evs -> evs
  | Error m -> Alcotest.failf "%s does not parse: %s" what m

let check_clean what s =
  let evs = parse_ok what s in
  (match Analysis.Check.run evs with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%s violates %s: %s" what v.Analysis.Check.v_rule
        v.Analysis.Check.v_msg);
  evs

(* ---------------- arrival schedule ---------------- *)

let test_arrivals_pure () =
  let a = Load.arrivals tiny ~seed:5L in
  let b = Load.arrivals tiny ~seed:5L in
  Alcotest.(check (array int)) "same seed, same schedule" a b;
  Alcotest.(check int) "one arrival per request" tiny.Load.requests
    (Array.length a);
  Array.iteri
    (fun i t ->
      if i > 0 && t < a.(i - 1) then
        Alcotest.failf "arrivals not sorted at %d: %d < %d" i t a.(i - 1))
    a;
  let c = Load.arrivals tiny ~seed:6L in
  if a = c then Alcotest.fail "different seeds gave the same schedule"

(* The open-loop property: the arrival schedule is fixed before the run
   and cannot depend on which scenario executes or how its handlers
   interleave.  Running wildly different scenarios between [arrivals]
   calls must not perturb the schedule. *)
let test_arrivals_independent_of_execution () =
  let before = Load.arrivals tiny ~seed:9L in
  List.iter
    (fun scen -> ignore (Load.run tiny ~seed:9L scen))
    Load.scenarios;
  let after = Load.arrivals tiny ~seed:9L in
  Alcotest.(check (array int)) "schedule unchanged by execution" before after

(* ---------------- determinism ---------------- *)

let test_traces_byte_identical () =
  List.iter
    (fun scen ->
      let _, t1 = jsonl_run scen in
      let _, t2 = jsonl_run scen in
      Alcotest.(check string)
        (Load.scenario_name scen ^ " trace byte-identical")
        t1 t2;
      ignore (check_clean (Load.scenario_name scen ^ " trace") t1))
    Load.scenarios

let test_stats_deterministic () =
  let st1, _ = jsonl_run Load.Pipeline in
  let st2, _ = jsonl_run Load.Pipeline in
  Alcotest.(check string) "stats JSON identical"
    (Obs.Json.to_string (Load.stats_to_json st1))
    (Obs.Json.to_string (Load.stats_to_json st2))

(* ---------------- latency attribution ---------------- *)

let test_attribution_sums () =
  List.iter
    (fun scen ->
      let st = Load.run tiny ~seed:3L scen in
      let name = Load.scenario_name scen in
      Alcotest.(check int) (name ^ " residual is zero") 0
        st.Load.st_attr_residual;
      Alcotest.(check int)
        (name ^ " fates partition requests")
        st.Load.st_requests
        (st.Load.st_completed + st.Load.st_timedout + st.Load.st_cancelled
       + st.Load.st_crashed);
      Alcotest.(check int)
        (name ^ " one latency sample per completion")
        st.Load.st_completed
        (Obs.Metrics.Sketch.count st.Load.st_latency))
    Load.scenarios

(* ---------------- deadlines and the Summary fate column ------------ *)

let test_timeouts_reach_summary () =
  let squeezed = { tiny with Load.deadline = 400 } in
  let o = Obs.create () in
  let summary = Obs.Summary.create () in
  Obs.attach o (Obs.Summary.sink summary);
  let st = Load.run ~obs:o squeezed ~seed:42L Load.Pipeline in
  Obs.close o;
  if st.Load.st_timedout = 0 then
    Alcotest.fail "a 400-tick deadline should time some requests out";
  Alcotest.(check int) "timed-out latencies are sampled" st.Load.st_timedout
    (Obs.Metrics.Sketch.count st.Load.st_tlat);
  let timed_out_rows =
    List.filter
      (fun (_, r) -> r.Obs.Summary.r_fate = "timed-out")
      (Obs.Summary.rows summary)
  in
  if List.length timed_out_rows < st.Load.st_timedout then
    Alcotest.failf "summary shows %d timed-out fibers for %d timeouts"
      (List.length timed_out_rows)
      st.Load.st_timedout

let test_slo_rollup_matches_stats () =
  let squeezed = { tiny with Load.deadline = 400 } in
  let o = Obs.create () in
  let buf = Buffer.create (1 lsl 16) in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  let st = Load.run ~obs:o squeezed ~seed:42L Load.Stream in
  Obs.close o;
  let evs = check_clean "stream trace under deadline" (Buffer.contents buf) in
  let slo = Analysis.Slo.of_trace evs in
  match slo.Analysis.Slo.slo_scens with
  | [ sc ] ->
      Alcotest.(check string) "scenario name" "stream" sc.Analysis.Slo.sc_name;
      Alcotest.(check int) "requests" st.Load.st_requests
        sc.Analysis.Slo.sc_requests;
      Alcotest.(check int) "completed" st.Load.st_completed
        sc.Analysis.Slo.sc_completed;
      Alcotest.(check int) "timed out" st.Load.st_timedout
        sc.Analysis.Slo.sc_timedout
  | scens ->
      Alcotest.failf "expected one scenario in the rollup, got %d"
        (List.length scens)

let test_assert_grammar () =
  (match Analysis.Slo.parse_assert "p99<=250" with
  | Ok a ->
      Alcotest.(check (option string)) "no scenario" None a.Analysis.Slo.a_scen;
      Alcotest.(check (float 0.)) "quantile" 0.99 a.Analysis.Slo.a_q;
      Alcotest.(check (float 0.)) "limit" 250. a.Analysis.Slo.a_limit
  | Error m -> Alcotest.failf "p99<=250 rejected: %s" m);
  (match Analysis.Slo.parse_assert "pool:p999<=4000" with
  | Ok a ->
      Alcotest.(check (option string))
        "scenario prefix" (Some "pool") a.Analysis.Slo.a_scen
  | Error m -> Alcotest.failf "pool:p999<=4000 rejected: %s" m);
  List.iter
    (fun bad ->
      match Analysis.Slo.parse_assert bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "p98<=10"; "p99<10"; "p99<="; "p99<=x"; ":p99<=10" ]

(* ---------------- deadlock flight dump ---------------- *)

(* No workers and no deadlines: every pool client parks on its reply
   channel forever, no timer can save it, and the scheduler must
   diagnose a deadlock — at which point the flight ring auto-dumps a
   window that the checker accepts in window mode. *)
let test_deadlock_flight_dump () =
  let stuck =
    { tiny with Load.requests = 50; workers = 0; deadline = 0 }
  in
  let o = Obs.create () in
  let buf = Buffer.create (1 lsl 16) in
  Obs.attach o
    (Obs.Sink.ring_sink (Obs.Sink.ring ~flight:(Buffer.add_string buf) ()));
  (match Load.run ~obs:o stuck ~seed:1L Load.Pool with
  | _ -> Alcotest.fail "a worker-less pool should deadlock"
  | exception Sched.Deadlock _ -> ());
  Obs.close o;
  let dump = Buffer.contents buf in
  if dump = "" then Alcotest.fail "deadlock did not trigger a flight dump";
  let evs = check_clean "flight dump" dump in
  let has_deadlock =
    Array.exists
      (fun s ->
        match s.Trace.ev with Obs.Event.Deadlock _ -> true | _ -> false)
      evs
  in
  if not has_deadlock then Alcotest.fail "flight dump lacks the deadlock event"

(* ---------------- with_deadline ---------------- *)

let test_with_deadline_already_past () =
  Sched.run (fun () ->
      ignore (Sched.pcall [ (fun () -> Sched.yield ()); (fun () -> ()) ]);
      match Resil.with_deadline ~at:(Sched.now ()) (fun () -> Sched.sleep 50) with
      | Error (Resil.Cancelled _) -> ()
      | Ok () -> Alcotest.fail "a dead-on-arrival deadline returned Ok"
      | Error (Resil.Crashed m) -> Alcotest.failf "crashed instead: %s" m)

let () =
  Alcotest.run "load"
    [
      ( "arrivals",
        [
          Alcotest.test_case "pure function of (profile, seed)" `Quick
            test_arrivals_pure;
          Alcotest.test_case "independent of execution" `Quick
            test_arrivals_independent_of_execution;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "traces byte-identical per seed" `Quick
            test_traces_byte_identical;
          Alcotest.test_case "stats deterministic" `Quick
            test_stats_deterministic;
        ] );
      ( "attribution",
        [ Alcotest.test_case "phases sum exactly" `Quick test_attribution_sums ] );
      ( "deadlines",
        [
          Alcotest.test_case "timeouts reach the summary fate" `Quick
            test_timeouts_reach_summary;
          Alcotest.test_case "slo rollup matches stats" `Quick
            test_slo_rollup_matches_stats;
          Alcotest.test_case "assert grammar" `Quick test_assert_grammar;
          Alcotest.test_case "with_deadline already past" `Quick
            test_with_deadline_already_past;
        ] );
      ( "failure",
        [
          Alcotest.test_case "deadlock auto-dumps a checkable flight window"
            `Quick test_deadlock_flight_dump;
        ] );
    ]
