(* Tests for the always-on telemetry layer: the flight-recorder ring
   (unboxed storage, wrap-around, dumps that the whole ptrace toolchain
   accepts), the quantile sketch's relative-error bound on assorted
   distributions, metrics merging, sink fan-out hardening, causal spans
   on both schedulers, and deterministic head sampling. *)

module Obs = Pcont_obs.Obs
module E = Pcont_obs.Obs.Event
module Json = Pcont_obs.Obs.Json
module Trace = Pcont_obs.Trace
module Analysis = Pcont_obs.Analysis
module Explore = Pcont_explore.Explore
module Interp = Pcont_syntax.Interp
module Concur = Pcont_pstack.Concur
module Pstack = Pcont_pstack
module Sched = Pcont_sched.Sched
module Channel = Pcont_sched.Channel

let parse_ok what s =
  match Trace.parse_string s with
  | Ok evs -> evs
  | Error m -> Alcotest.failf "%s does not parse: %s" what m

let check_clean what s =
  let evs = parse_ok what s in
  match Analysis.Check.run evs with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%s violates %s: %s" what v.Analysis.Check.v_rule
        v.Analysis.Check.v_msg

let jsonl_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

(* ---------------- flight-recorder ring ---------------- *)

(* One event per constructor, covering every arm of the ring's unboxed
   encode/decode (including the boxed fallback for the two
   array-carrying events). *)
let all_constructors =
  [
    E.Spawn { pid = 1; parent = -1; kind = "root" };
    E.Spawn_batch { pid = 1; kind = "graft"; nodes = [| (2, 1); (3, 2) |] };
    E.Slice_begin { pid = 1 };
    E.Slice_end { pid = 1; fuel = 17 };
    E.Park { pid = 2; resource = "future" };
    E.Wake { pid = 2; resource = "channel.send" };
    E.Capture { pid = 1; label = 4; root_pid = 1; control_points = 2; size = 5 };
    E.Reinstate { pid = 2; label = 4; size = 5 };
    E.Send { pid = 1; chan = 0 };
    E.Recv { pid = 2; chan = 0 };
    E.Cancel { pid = 1; scope = 2; reason = "timeout"; pids = [| 2; 3 |] };
    E.Timeout { pid = 9; deadline = 77 };
    E.Crash { pid = 2; fault = "inject:crash" };
    E.Restart { pid = 1; child = 2; attempt = 1; backoff = 8; limit = 3 };
    E.Invalid_controller { pid = 5; label = 9 };
    E.Deadlock { parked = 2 };
    E.Span_begin { pid = 1; span = 0; parent = -1; name = "work" };
    E.Span_end { pid = 1; span = 0 };
    E.Exit { pid = 1 };
  ]

let ring_dump_string r =
  let buf = Buffer.create 1024 in
  Obs.Sink.ring_dump r (Buffer.add_string buf);
  Buffer.contents buf

let test_ring_roundtrip_all_constructors () =
  let r = Obs.Sink.ring ~capacity:32 () in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.ring_sink r);
  List.iteri
    (fun i ev ->
      Obs.advance o (if i mod 3 = 0 then 2 else 0);
      Obs.emit o ev)
    all_constructors;
  let evs = parse_ok "ring dump" (ring_dump_string r) in
  Alcotest.(check int) "all events stored" (List.length all_constructors)
    (Array.length evs);
  List.iteri
    (fun i expected ->
      let got = evs.(i) in
      Alcotest.(check int) "original seq preserved" i got.Trace.seq;
      if got.Trace.ev <> expected then
        Alcotest.failf "event %d decoded to %s, expected %s" i
          (E.to_human got.Trace.ev) (E.to_human expected))
    all_constructors

let test_ring_wraparound () =
  let cap = 8 and total = 21 in
  let r = Obs.Sink.ring ~capacity:cap () in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.ring_sink r);
  for pid = 0 to total - 1 do
    Obs.emit o (E.Exit { pid })
  done;
  Alcotest.(check int) "stored = capacity" cap (Obs.Sink.ring_stored r);
  Alcotest.(check int) "dropped = total - capacity" (total - cap)
    (Obs.Sink.ring_dropped r);
  let evs = parse_ok "wrapped dump" (ring_dump_string r) in
  Alcotest.(check int) "dump holds capacity events" cap (Array.length evs);
  Array.iteri
    (fun k e ->
      (* Oldest surviving event first, original stamps intact. *)
      Alcotest.(check int) "seq windowed + ordered" (total - cap + k) e.Trace.seq;
      match e.Trace.ev with
      | E.Exit { pid } -> Alcotest.(check int) "payload matches seq" e.Trace.seq pid
      | ev -> Alcotest.failf "unexpected event %s" (E.to_human ev))
    evs

let test_ring_dump_then_continue () =
  let r = Obs.Sink.ring ~capacity:4 () in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.ring_sink r);
  for pid = 0 to 5 do Obs.emit o (E.Exit { pid }) done;
  let first = ring_dump_string r in
  Alcotest.(check int) "first window" 4 (Array.length (parse_ok "dump 1" first));
  (* Dumping is read-only: recording continues where it left off. *)
  for pid = 6 to 9 do Obs.emit o (E.Exit { pid }) done;
  let second = parse_ok "dump 2" (ring_dump_string r) in
  Alcotest.(check int) "second window" 4 (Array.length second);
  Alcotest.(check int) "window advanced" 6 second.(0).Trace.seq;
  Alcotest.(check int) "nothing lost in between" 10 (Obs.Sink.ring_stored r + Obs.Sink.ring_dropped r)

(* The strongest decode-fidelity check: on a real scheduler run, the
   ring dump must be byte-for-byte the tail of the full JSONL trace. *)
let span_src =
  "(let ([s (span-begin \"outer\")])\n\
  \  (let ([f (future (let ([i (span-begin \"inner\")])\n\
  \                     (let ([x (* 6 7)])\n\
  \                       (let ([d (span-end i)]) x))))])\n\
  \    (let ([v (pcall + (touch f) 2)])\n\
  \      (let ([d (span-end s)]) v))))"

let pstack_run ?obs ?(seed = 42) src =
  let t = Interp.create () in
  let mode = Interp.Concurrent (Concur.Randomized (Int64.of_int seed)) in
  Interp.eval_value ~mode ?obs t src

let test_ring_dump_is_trace_tail () =
  let run capacity =
    let buf = Buffer.create 4096 in
    let o = Obs.create () in
    Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
    let r = Obs.Sink.ring ~capacity () in
    Obs.attach o (Obs.Sink.ring_sink r);
    ignore (pstack_run ~obs:o span_src);
    Obs.close o;
    (Buffer.contents buf, r)
  in
  let full, big = run 65536 in
  Alcotest.(check int) "unwrapped ring" 0 (Obs.Sink.ring_dropped big);
  Alcotest.(check string) "unwrapped dump = whole trace" full
    (ring_dump_string big);
  check_clean "ring dump" (ring_dump_string big);
  let full2, small = run 16 in
  Alcotest.(check bool) "ring wrapped" true (Obs.Sink.ring_dropped small > 0);
  let tail =
    let lines = jsonl_lines full2 in
    let n = List.length lines in
    List.filteri (fun i _ -> i >= n - 16) lines
    |> List.map (fun l -> l ^ "\n")
    |> String.concat ""
  in
  Alcotest.(check string) "wrapped dump = trace tail" tail
    (ring_dump_string small);
  (* seq-dense accepts the windowed base, so a wrapped dump still
     passes every checker rule. *)
  check_clean "wrapped ring dump" (ring_dump_string small)

let test_ring_flight_dump_on_crash () =
  let dumps = ref [] in
  let r = Obs.Sink.ring ~capacity:8 ~flight:(fun s -> dumps := s :: !dumps) () in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.ring_sink r);
  Obs.emit o (E.Spawn { pid = 0; parent = -1; kind = "root" });
  for pid = 1 to 4 do Obs.emit o (E.Spawn { pid; parent = 0; kind = "branch" }) done;
  Obs.emit o (E.Exit { pid = 3 });
  Obs.emit o (E.Exit { pid = 4 });
  Alcotest.(check int) "no dump yet" 0 (Obs.Sink.ring_dumps r);
  Obs.emit o (E.Crash { pid = 2; fault = "inject:crash" });
  Alcotest.(check int) "crash dumped" 1 (Obs.Sink.ring_dumps r);
  Obs.emit o (E.Deadlock { parked = 0 });
  Alcotest.(check int) "deadlock dumped" 2 (Obs.Sink.ring_dumps r);
  match !dumps with
  | [ second; first ] ->
      let f = parse_ok "flight dump" first in
      Alcotest.(check int) "crash is last event of its dump" 7
        f.(Array.length f - 1).Trace.seq;
      check_clean "flight dump" first;
      (* The second dump wrapped (9 events through a ring of 8): a
         mid-run window, still accepted by every checker rule. *)
      let s = parse_ok "flight dump 2" second in
      Alcotest.(check int) "second dump holds the window" 8 (Array.length s);
      Alcotest.(check int) "windowed base" 1 s.(0).Trace.seq;
      check_clean "wrapped flight dump" second
  | l -> Alcotest.failf "expected 2 dumps, got %d" (List.length l)

(* ---------------- quantile sketch accuracy ---------------- *)

(* Explicit PRNG so the distributions are reproducible everywhere. *)
let splitmix st =
  st := Int64.add !st 0x9e3779b97f4a7c15L;
  let z = !st in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform01 st =
  let bits = Int64.to_float (Int64.shift_right_logical (splitmix st) 11) in
  (bits +. 1.) /. 9007199254740994. (* in (0,1), never exactly 0 *)

let check_sketch_accuracy name values =
  let alpha = 0.01 in
  let sk = Obs.Metrics.Sketch.create ~alpha () in
  Array.iter (Obs.Metrics.Sketch.observe sk) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  List.iter
    (fun q ->
      (* Same rank convention as the sketch: value at floor(q·(n−1)). *)
      let exact = sorted.(int_of_float (q *. float_of_int (n - 1))) in
      let est = Obs.Metrics.Sketch.quantile sk q in
      let rel = abs_float (est -. float_of_int exact) /. float_of_int exact in
      if rel > alpha *. 1.001 then
        Alcotest.failf "%s: q=%.3f estimate %.2f vs exact %d (rel %.4f > %.4f)"
          name q est exact rel alpha)
    [ 0.5; 0.9; 0.99; 0.999 ]

let test_sketch_accuracy () =
  let n = 10_000 in
  let st = ref 1L in
  let uniform =
    Array.init n (fun _ -> 1 + Int64.to_int (Int64.rem (splitmix st) 10_000L))
  in
  check_sketch_accuracy "uniform" (Array.map abs uniform);
  let pareto =
    (* xm = 10, shape 1.5: a heavy tail spanning several decades. *)
    Array.init n (fun _ ->
        int_of_float (10. /. (uniform01 st ** (1. /. 1.5))) |> max 1)
  in
  check_sketch_accuracy "pareto" pareto;
  let bimodal =
    Array.init n (fun i ->
        let jitter = 1 + Int64.to_int (Int64.rem (splitmix st) 5L) in
        if i mod 2 = 0 then 10 + jitter else 100_000 + (100 * jitter))
  in
  check_sketch_accuracy "bimodal" bimodal

let test_sketch_merge_lossless () =
  let st = ref 7L in
  let a = Array.init 2_000 (fun _ -> 1 + Int64.to_int (Int64.rem (splitmix st) 1_000L)) in
  let b = Array.init 3_000 (fun _ -> 1 + Int64.to_int (Int64.rem (splitmix st) 500_000L)) in
  let ska = Obs.Metrics.Sketch.create () and skb = Obs.Metrics.Sketch.create () in
  let skab = Obs.Metrics.Sketch.create () in
  Array.iter (Obs.Metrics.Sketch.observe ska) a;
  Array.iter (Obs.Metrics.Sketch.observe skb) b;
  Array.iter (Obs.Metrics.Sketch.observe skab) a;
  Array.iter (Obs.Metrics.Sketch.observe skab) b;
  Obs.Metrics.Sketch.merge ska skb;
  Alcotest.(check int) "count" (Obs.Metrics.Sketch.count skab)
    (Obs.Metrics.Sketch.count ska);
  Alcotest.(check int) "sum" (Obs.Metrics.Sketch.sum skab) (Obs.Metrics.Sketch.sum ska);
  Alcotest.(check int) "max" (Obs.Metrics.Sketch.max skab) (Obs.Metrics.Sketch.max ska);
  (* Lossless: merged buckets = buckets of the concatenated stream, so
     every quantile agrees exactly, not just within the bound. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.)) "quantile identical"
        (Obs.Metrics.Sketch.quantile skab q)
        (Obs.Metrics.Sketch.quantile ska q))
    [ 0.; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999; 1. ]

let test_sketch_alpha_mismatch () =
  let a = Obs.Metrics.Sketch.create ~alpha:0.01 () in
  let b = Obs.Metrics.Sketch.create ~alpha:0.02 () in
  Alcotest.check_raises "different bounds rejected"
    (Invalid_argument "Sketch.merge: sketches have different error bounds")
    (fun () -> Obs.Metrics.Sketch.merge a b)

(* ---------------- metrics merge ---------------- *)

let test_metrics_merge () =
  let dst = Obs.Metrics.create () and src = Obs.Metrics.create () in
  Obs.Metrics.incr dst "c";
  Obs.Metrics.add src "c" 4;
  Obs.Metrics.incr src "only-src";
  List.iter (Obs.Metrics.observe dst "h") [ 1; 2; 3 ];
  List.iter (Obs.Metrics.observe src "h") [ 100; 200 ];
  List.iter (Obs.Metrics.observe src "h2") [ 9 ];
  Obs.Metrics.merge dst src;
  Alcotest.(check int) "counters add" 5
    (Pcont_util.Counters.get (Obs.Metrics.counters dst) "c");
  Alcotest.(check int) "src-only counter copied" 1
    (Pcont_util.Counters.get (Obs.Metrics.counters dst) "only-src");
  (match Obs.Metrics.find dst "h" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
      Alcotest.(check int) "hist count" 5 (Obs.Metrics.hist_count h);
      Alcotest.(check int) "hist sum" 306 (Obs.Metrics.hist_sum h);
      Alcotest.(check int) "hist max" 200 (Obs.Metrics.hist_max h));
  (match Obs.Metrics.find dst "h2" with
  | None -> Alcotest.fail "src-only histogram missing"
  | Some h -> Alcotest.(check int) "src-only count" 1 (Obs.Metrics.hist_count h));
  Alcotest.(check int) "sketch merged too" 5
    (match Obs.Metrics.find_sketch dst "h" with
    | Some sk -> Obs.Metrics.Sketch.count sk
    | None -> -1);
  (* src is read-only under merge. *)
  Alcotest.(check int) "src untouched" 2
    (match Obs.Metrics.find src "h" with
    | Some h -> Obs.Metrics.hist_count h
    | None -> -1)

(* ---------------- sink fan-out hardening ---------------- *)

let memory_sink acc =
  Obs.Sink.memory (fun (seq, _ts, ev) -> acc := (seq, ev) :: !acc)

let raising_sink () =
  {
    Obs.sink_event = (fun ~seq:_ ~ts:_ _ -> failwith "boom");
    Obs.sink_close = (fun () -> ());
  }

let test_fanout_detaches_raising_sink () =
  let before = ref [] and after = ref [] in
  let o = Obs.create () in
  Obs.attach o (memory_sink before);
  Obs.attach o (raising_sink ());
  Obs.attach o (memory_sink after);
  Obs.emit o (E.Exit { pid = 0 });
  Obs.emit o (E.Exit { pid = 1 });
  Obs.emit o (E.Exit { pid = 2 });
  let got l = List.rev_map (fun (s, e) -> (s, E.name e, E.pid e)) !l in
  let expect =
    [
      (0, "exit", 0);
      (* the detachment warning goes to the surviving sinks *)
      (1, "crash", -1);
      (2, "exit", 1);
      (3, "exit", 2);
    ]
  in
  Alcotest.(check (list (triple int string int))) "sink before survives" expect (got before);
  Alcotest.(check (list (triple int string int))) "sink after survives" expect (got after);
  (match List.rev !before with
  | _ :: (_, E.Crash { fault; _ }) :: _ ->
      Alcotest.(check bool) "warning names the sink failure" true
        (String.length fault > 5 && String.sub fault 0 5 = "sink:")
  | _ -> Alcotest.fail "no crash warning recorded");
  Alcotest.(check int) "seq advanced once per event" 4 (Obs.seq o)

let test_fanout_single_raising_sink () =
  (* The single-sink fast path must harden identically: detach, keep
     the sequence dense, and not propagate the exception. *)
  let o = Obs.create () in
  Obs.attach o (raising_sink ());
  Obs.emit o (E.Exit { pid = 0 });
  Alcotest.(check bool) "raising sink detached" false (Obs.has_sink o);
  Alcotest.(check int) "event + warning stamped" 2 (Obs.seq o);
  Obs.emit o (E.Exit { pid = 1 });
  Alcotest.(check int) "later emits still stamp" 3 (Obs.seq o)

(* ---------------- causal spans ---------------- *)

let test_pstack_spans () =
  let buf = Buffer.create 4096 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  let v = pstack_run ~obs:o span_src in
  Obs.close o;
  Alcotest.(check string) "program result" "44" (Pstack.Value.to_string v);
  let trace = Buffer.contents buf in
  check_clean "pstack span trace" trace;
  let evs = parse_ok "pstack span trace" trace in
  let begins =
    Array.to_list evs
    |> List.filter_map (fun e ->
           match e.Trace.ev with
           | E.Span_begin { span; name; parent; _ } -> Some (span, name, parent)
           | _ -> None)
  in
  let ends =
    Array.to_list evs
    |> List.filter_map (fun e ->
           match e.Trace.ev with E.Span_end { span; _ } -> Some span | _ -> None)
  in
  Alcotest.(check int) "two spans" 2 (List.length begins);
  Alcotest.(check bool) "outer at top level" true
    (List.exists (fun (_, n, p) -> n = "outer" && p = -1) begins);
  (* The future's branch inherits the opener's context, so "inner"
     nests under "outer" even though it runs in another tree. *)
  let outer_id =
    match List.find_opt (fun (_, n, _) -> n = "outer") begins with
    | Some (id, _, _) -> id
    | None -> Alcotest.fail "outer span missing"
  in
  Alcotest.(check bool) "inner nests under outer" true
    (List.exists (fun (_, n, p) -> n = "inner" && p = outer_id) begins);
  List.iter
    (fun (id, n, _) ->
      Alcotest.(check bool) (n ^ " closed") true (List.mem id ends))
    begins;
  (* Span rows reach the causal report. *)
  match Analysis.Report.of_trace evs with
  | [ r ] ->
      let names = List.map (fun s -> s.Analysis.Report.sp_name) r.Analysis.Report.r_spans in
      Alcotest.(check (list string)) "report span rows" [ "inner"; "outer" ] names
  | rs -> Alcotest.failf "expected one run, got %d" (List.length rs)

let test_pstack_span_determinism () =
  let run () =
    let buf = Buffer.create 4096 in
    let o = Obs.create () in
    Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
    ignore (pstack_run ~obs:o ~seed:11 span_src);
    Obs.close o;
    Buffer.contents buf
  in
  Alcotest.(check string) "span ids byte-stable per seed" (run ()) (run ())

let native_span_main () =
  let ch = Channel.create ~capacity:1 () in
  let producer =
    Sched.future (fun () ->
        Sched.Span.with_ "produce" (fun () ->
            Channel.send ch 21;
            1))
  in
  Sched.Span.with_ "request" (fun () ->
      let doubled =
        Sched.Span.with_ "consume" (fun () ->
            (* recv adopts the sender's span mid-block, then this span
               context continues; either way every span still closes. *)
            2 * Channel.recv ch)
      in
      doubled + (21 * Sched.touch producer))

let test_native_spans () =
  let buf = Buffer.create 4096 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  let r = Sched.run ~policy:(Sched.Randomized 3L) ~obs:o native_span_main in
  Alcotest.(check int) "result" 63 r;
  Alcotest.(check int) "all spans closed" 0 (Obs.Span.open_count o);
  Obs.close o;
  let trace = Buffer.contents buf in
  check_clean "native span trace" trace;
  let evs = parse_ok "native span trace" trace in
  let begins =
    Array.to_list evs
    |> List.filter_map (fun e ->
           match e.Trace.ev with
           | E.Span_begin { name; _ } -> Some name
           | _ -> None)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "three spans begun"
    [ "consume"; "produce"; "request" ] begins;
  let end_count =
    Array.to_list evs
    |> List.filter (fun e ->
           match e.Trace.ev with E.Span_end _ -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "three spans ended" 3 end_count

(* ---------------- deterministic sampling ---------------- *)

let sampled_pstack_trace ~seed ~rate () =
  let buf = Buffer.create 4096 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.sampled ~seed ~rate (Obs.Sink.jsonl (Buffer.add_string buf)));
  ignore (pstack_run ~obs:o ~seed:5 span_src);
  Obs.close o;
  Buffer.contents buf

let test_sampling_deterministic () =
  let a = sampled_pstack_trace ~seed:9L ~rate:0.4 () in
  let b = sampled_pstack_trace ~seed:9L ~rate:0.4 () in
  Alcotest.(check string) "same seed+rate, byte-identical" a b;
  let full = sampled_pstack_trace ~seed:9L ~rate:1.0 () in
  Alcotest.(check bool) "sampling drops events" true
    (List.length (jsonl_lines a) < List.length (jsonl_lines full));
  (* Structural events always pass: every spawn and exit survives. *)
  let count tag s =
    jsonl_lines s
    |> List.filter (fun l ->
           match Json.parse l with
           | Ok v -> Json.member "ev" v = Some (Json.Str tag)
           | Error _ -> false)
    |> List.length
  in
  Alcotest.(check int) "spawns kept" (count "spawn" full) (count "spawn" a);
  Alcotest.(check int) "exits kept" (count "exit" full) (count "exit" a)

let test_sampling_native_deterministic () =
  let run () =
    let buf = Buffer.create 4096 in
    let o = Obs.create () in
    Obs.attach o
      (Obs.Sink.sampled ~seed:13L ~rate:0.3 (Obs.Sink.jsonl (Buffer.add_string buf)));
    ignore (Sched.run ~policy:(Sched.Randomized 8L) ~obs:o native_span_main);
    Obs.close o;
    Buffer.contents buf
  in
  Alcotest.(check string) "native sampled trace byte-stable" (run ()) (run ())

let test_sampler_does_not_perturb_full_trace () =
  let run with_sampler =
    let buf = Buffer.create 4096 in
    let o = Obs.create () in
    Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
    if with_sampler then
      Obs.attach o (Obs.Sink.sampled ~seed:2L ~rate:0.5 (Obs.Sink.jsonl ignore));
    ignore (pstack_run ~obs:o ~seed:17 span_src);
    Obs.close o;
    Buffer.contents buf
  in
  Alcotest.(check string) "full trace identical with sampler attached"
    (run false) (run true)

let test_record_with_ring_attached () =
  (* Extra sinks hung on a recording's handle (the flight-recorder
     hook) must not change the recorded bytes or break replay. *)
  let target = Explore.Workloads.gen_pstack in
  let plain = Explore.Replay.record target in
  let r = Obs.Sink.ring ~capacity:256 () in
  let with_ring =
    Explore.Replay.record ~attach:(fun o -> Obs.attach o (Obs.Sink.ring_sink r)) target
  in
  Alcotest.(check string) "recorded bytes unperturbed"
    plain.Explore.Replay.rec_trace with_ring.Explore.Replay.rec_trace;
  Alcotest.(check bool) "ring saw the stream" true (Obs.Sink.ring_stored r > 0);
  match Explore.Replay.check_roundtrip target with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "roundtrip failed: %s" m

let () =
  Alcotest.run "telemetry"
    [
      ( "ring",
        [
          Alcotest.test_case "all constructors round-trip" `Quick
            test_ring_roundtrip_all_constructors;
          Alcotest.test_case "wrap-around ordering" `Quick test_ring_wraparound;
          Alcotest.test_case "dump then continue" `Quick test_ring_dump_then_continue;
          Alcotest.test_case "dump = trace tail, checks clean" `Quick
            test_ring_dump_is_trace_tail;
          Alcotest.test_case "flight dump on crash/deadlock" `Quick
            test_ring_flight_dump_on_crash;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "relative-error bound" `Quick test_sketch_accuracy;
          Alcotest.test_case "merge is lossless" `Quick test_sketch_merge_lossless;
          Alcotest.test_case "alpha mismatch rejected" `Quick test_sketch_alpha_mismatch;
        ] );
      ( "metrics",
        [ Alcotest.test_case "merge" `Quick test_metrics_merge ] );
      ( "fan-out",
        [
          Alcotest.test_case "raising sink detached" `Quick
            test_fanout_detaches_raising_sink;
          Alcotest.test_case "single-sink fast path hardened" `Quick
            test_fanout_single_raising_sink;
        ] );
      ( "spans",
        [
          Alcotest.test_case "pstack propagation + balance" `Quick test_pstack_spans;
          Alcotest.test_case "pstack span ids deterministic" `Quick
            test_pstack_span_determinism;
          Alcotest.test_case "native propagation + balance" `Quick test_native_spans;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "pstack deterministic" `Quick test_sampling_deterministic;
          Alcotest.test_case "native deterministic" `Quick
            test_sampling_native_deterministic;
          Alcotest.test_case "full trace unperturbed" `Quick
            test_sampler_does_not_perturb_full_trace;
          Alcotest.test_case "record with ring attached" `Quick
            test_record_with_ring_attached;
        ] );
    ]
