(* Tests for trace re-ingestion (lib/obs/trace) and the analysis engine
   (lib/obs/analysis): clean traces from both schedulers pass the
   invariant checker, deliberately corrupted traces are detected with
   the right rule id, the causal report reproduces the E16
   control-points-per-capture = roots+1 result and is byte-deterministic,
   and the diff aligns mirrored cross-scheduler workloads while catching
   injected causal changes. *)

module Obs = Pcont_obs.Obs
module E = Pcont_obs.Obs.Event
module Trace = Pcont_obs.Trace
module Analysis = Pcont_obs.Analysis
module Interp = Pcont_syntax.Interp
module Concur = Pcont_pstack.Concur
module Sched = Pcont_sched.Sched
module Channel = Pcont_sched.Channel

(* ---------------- trace generation ---------------- *)

let jsonl_handle () =
  let buf = Buffer.create 1024 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  (o, buf)

let pstack_trace ~seed src =
  let o, buf = jsonl_handle () in
  let t = Interp.create () in
  let mode = Interp.Concurrent (Concur.Randomized (Int64.of_int seed)) in
  ignore (Interp.eval_value ~mode ~obs:o t src);
  Obs.close o;
  Buffer.contents buf

(* Fork, future, park, capture and reinstate all in one program: the
   controller is applied twice, so the trace carries captures AND
   reinstates (the capture prunes, each (k _) grafts back). *)
let pstack_src =
  "(let ([f (future (* 6 7))])\n\
  \  (pcall +\n\
  \    (spawn (lambda (c) (pcall + 1 (c (lambda (k) (* (k 2) (k 5)))))))\n\
  \    (touch f)))"

let native_main () =
  let ch = Channel.create ~capacity:2 () in
  let f = Sched.future (fun () -> 21) in
  let captured =
    Sched.spawn (fun c ->
        let a, b =
          Sched.pcall2
            (fun () -> Sched.control c (fun pk -> Sched.resume pk 10))
            (fun () ->
              Sched.yield ();
              5)
        in
        a + b)
  in
  let xs =
    Sched.pcall
      [
        (fun () ->
          List.iter (Channel.send ch) [ 1; 2; 3; 4 ];
          Channel.close ch;
          0);
        (fun () ->
          let s = ref 0 in
          Channel.iter (fun v -> s := !s + v) ch;
          !s);
        (fun () -> Sched.touch f);
      ]
  in
  captured + List.fold_left ( + ) 0 xs

let native_trace ~seed () =
  let o, buf = jsonl_handle () in
  ignore (Sched.run ~policy:(Sched.Randomized (Int64.of_int seed)) ~obs:o native_main);
  Obs.close o;
  Buffer.contents buf

let parse_exn trace =
  match Trace.parse_string trace with
  | Ok evs -> evs
  | Error m -> Alcotest.failf "trace does not parse: %s" m

(* ---------------- corruption helpers ---------------- *)

(* Renumber seq after dropping/duplicating events so that only the
   corruption under test fires, not a spurious seq-dense violation. *)
let reindex evs = Array.mapi (fun i s -> { s with Trace.seq = i }) evs

let drop_first p evs =
  let dropped = ref false in
  Array.to_list evs
  |> List.filter (fun s ->
         if (not !dropped) && p s.Trace.ev then (
           dropped := true;
           false)
         else true)
  |> Array.of_list
  |> fun a ->
  if not !dropped then Alcotest.fail "corruption target event not found";
  reindex a

let duplicate_first p evs =
  let dup = ref false in
  Array.to_list evs
  |> List.concat_map (fun s ->
         if (not !dup) && p s.Trace.ev then (
           dup := true;
           [ s; s ])
         else [ s ])
  |> Array.of_list
  |> fun a ->
  if not !dup then Alcotest.fail "corruption target event not found";
  reindex a

let rules_of vs =
  List.sort_uniq compare (List.map (fun v -> v.Analysis.Check.v_rule) vs)

let has_rule r vs = List.exists (fun v -> v.Analysis.Check.v_rule = r) vs

let check_flags ~rule evs =
  let vs = Analysis.Check.run evs in
  if vs = [] then Alcotest.failf "corrupted trace passed the checker (%s)" rule;
  if not (has_rule rule vs) then
    Alcotest.failf "expected rule %s, got: %s" rule
      (String.concat ", " (rules_of vs))

(* ---------------- checker: clean traces ---------------- *)

let test_check_clean_pstack () =
  let evs = parse_exn (pstack_trace ~seed:42 pstack_src) in
  Alcotest.(check int) "no violations" 0 (List.length (Analysis.Check.run evs));
  (* The workload exercises the interesting rules, not just the easy ones. *)
  let saw tag = Array.exists (fun s -> E.name s.Trace.ev = tag) evs in
  List.iter
    (fun tag -> Alcotest.(check bool) tag true (saw tag))
    [ "capture"; "reinstate"; "park"; "wake" ]

let test_check_clean_native () =
  let evs = parse_exn (native_trace ~seed:42 ()) in
  Alcotest.(check int) "no violations" 0 (List.length (Analysis.Check.run evs));
  let saw tag = Array.exists (fun s -> E.name s.Trace.ev = tag) evs in
  List.iter
    (fun tag -> Alcotest.(check bool) tag true (saw tag))
    [ "capture"; "send"; "recv"; "park"; "wake" ]

(* ---------------- checker: corrupted traces ---------------- *)

let test_check_dropped_wake () =
  (* A lost wakeup: the pid parks, the wake vanishes, yet it runs on —
     exactly the race the checker exists to witness. *)
  let evs = parse_exn (native_trace ~seed:42 ()) in
  let corrupted = drop_first (function E.Wake _ -> true | _ -> false) evs in
  check_flags ~rule:"park-pairing" corrupted

let test_check_double_wake () =
  let evs = parse_exn (native_trace ~seed:42 ()) in
  let corrupted = duplicate_first (function E.Wake _ -> true | _ -> false) evs in
  check_flags ~rule:"park-pairing" corrupted

let test_check_unbalanced_slice () =
  let evs = parse_exn (pstack_trace ~seed:42 pstack_src) in
  let corrupted =
    drop_first (function E.Slice_end _ -> true | _ -> false) evs
  in
  check_flags ~rule:"slice-balance" corrupted

let test_check_tampered_reinstate () =
  let evs = parse_exn (pstack_trace ~seed:42 pstack_src) in
  let tampered = ref false in
  let corrupted =
    Array.map
      (fun s ->
        match s.Trace.ev with
        | E.Reinstate { pid; label; size } when not !tampered ->
            tampered := true;
            { s with Trace.ev = E.Reinstate { pid; label; size = size + 7 } }
        | _ -> s)
      evs
  in
  if not !tampered then Alcotest.fail "trace has no reinstate to tamper with";
  check_flags ~rule:"capture-consistency" corrupted

let test_check_seq_gap () =
  let evs = parse_exn (pstack_trace ~seed:42 pstack_src) in
  let n = Array.length evs in
  let corrupted =
    Array.mapi
      (fun i s -> if i = n - 1 then { s with Trace.seq = s.Trace.seq + 1 } else s)
      evs
  in
  check_flags ~rule:"seq-dense" corrupted

(* ---------------- reconstruction ---------------- *)

let test_reconstruct_timelines () =
  let evs = parse_exn (pstack_trace ~seed:42 pstack_src) in
  let runs = Trace.runs evs in
  Alcotest.(check int) "single run" 1 (Array.length runs);
  let run = Trace.reconstruct runs.(0) in
  (* Root node present, with children. *)
  (match Trace.node_of run 0 with
  | Some root ->
      Alcotest.(check int) "root has no parent" (-1) root.Trace.n_parent;
      Alcotest.(check string) "root kind" "root" root.Trace.n_kind;
      Alcotest.(check bool) "root has children" true (root.Trace.n_children <> [])
  | None -> Alcotest.fail "no node for pid 0");
  (* The virtual clock only advances at slice ends, so the slices tile
     the run: their extents sum to the span. *)
  let tiled =
    Array.fold_left
      (fun acc sl -> acc + (sl.Trace.sl_end_ts - sl.Trace.sl_begin_ts))
      0 run.Trace.r_slices
  in
  Alcotest.(check int) "slices tile the span" run.Trace.r_span tiled;
  Alcotest.(check bool) "no deadlock" true (run.Trace.r_deadlock = None)

let test_reconstruct_blocked () =
  let evs = parse_exn (native_trace ~seed:42 ()) in
  let run = Trace.reconstruct (Trace.runs evs).(0) in
  let blocked = Trace.blocked_total run in
  Alcotest.(check bool) "some blocked time attributed" true (blocked <> []);
  List.iter
    (fun (resource, t) ->
      if t < 0 then Alcotest.failf "negative blocked time on %s" resource)
    blocked

(* ---------------- causal report ---------------- *)

(* E16 from trace data alone: the E2-style family — [roots] nested
   spawn roots whose innermost body applies the *outermost* controller
   from inside a pcall branch (the fork makes the capture a tree-level
   one), [k] times.  Each capture costs roots+1 control points: the
   [roots] labels climbed plus the one fork. *)
let nested_roots_src roots k =
  let buf = Buffer.create 256 in
  for i = 1 to roots do
    Buffer.add_string buf (Printf.sprintf "(spawn (lambda (c%d) " i)
  done;
  Buffer.add_string buf
    (String.concat " "
       ("(+"
        :: List.init k (fun _ -> "(pcall + 1 (c1 (lambda (k) (k 0))))")
       @ [ ")" ]));
  for _ = 1 to roots do
    Buffer.add_string buf "))"
  done;
  Buffer.contents buf

let test_report_cp_per_capture () =
  List.iter
    (fun roots ->
      let evs = parse_exn (pstack_trace ~seed:1 (nested_roots_src roots 3)) in
      match Analysis.Report.of_trace evs with
      | [ r ] ->
          Alcotest.(check int) "three captures" 3 r.Analysis.Report.r_captures;
          Alcotest.(check (float 0.))
            (Printf.sprintf "cp/capture at %d roots" roots)
            (float_of_int (roots + 1))
            r.Analysis.Report.r_cp_per_capture
      | rs -> Alcotest.failf "expected one run, got %d" (List.length rs))
    [ 1; 2; 4 ]

let test_report_sanity () =
  let evs = parse_exn (pstack_trace ~seed:42 pstack_src) in
  match Analysis.Report.of_trace evs with
  | [ r ] ->
      let open Analysis.Report in
      Alcotest.(check int) "events" (Array.length evs) r.r_events;
      Alcotest.(check bool) "fairness in (0,1]" true
        (r.r_fairness > 0. && r.r_fairness <= 1.);
      (* Utilization sums to <= 1 per process and the critical path is a
         real chain: positive time, bounded by the span, time-ordered. *)
      List.iter
        (fun p ->
          if p.p_util < 0. || p.p_util > 1. then
            Alcotest.failf "pid %d utilization %f out of range" p.p_pid p.p_util)
        r.r_procs;
      Alcotest.(check bool) "critical path non-trivial" true
        (List.length r.r_critical >= 2);
      Alcotest.(check bool) "critical time positive, <= span" true
        (r.r_critical_time > 0 && r.r_critical_time <= r.r_span);
      let rec ordered = function
        | a :: (b :: _ as rest) -> a.h_leave <= b.h_enter + 0 && ordered rest
        | _ -> true
      in
      Alcotest.(check bool) "hops in time order" true (ordered r.r_critical);
      (* The first hop is the run entry: enabled by nothing earlier than
         the root spawn itself. *)
      (match r.r_critical with
      | h :: _ ->
          Alcotest.(check bool) "starts at the root" true
            (h.h_via = "start" || h.h_via = "spawn:root")
      | [] -> ())
  | rs -> Alcotest.failf "expected one run, got %d" (List.length rs)

let test_report_json_deterministic () =
  let report_json seed =
    let evs = parse_exn (pstack_trace ~seed pstack_src) in
    Analysis.Report.of_trace evs
    |> List.map (fun r -> Obs.Json.to_string (Analysis.Report.to_json r))
    |> String.concat "\n"
  in
  let a = report_json 7 and b = report_json 7 in
  Alcotest.(check string) "same seed, byte-identical report" a b;
  match Obs.Json.parse (String.concat "" [ a ]) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "report json does not parse: %s" m

(* ---------------- diff ---------------- *)

(* The ptrace-gen mirrored workload, inlined: the same process tree
   written once in Scheme and once against the native API (the extra
   constant branch mirrors pstack forking the pcall operator). *)
let mirrored_pstack =
  "(let ([f (future (* 3 (+ 2 2)))])\n\
  \  (pcall + (+ 1 2) (touch f) (* 2 (touch f))))"

let mirrored_native () =
  let f = Sched.future (fun () -> 3 * (2 + 2)) in
  let xs =
    Sched.pcall
      [
        (fun () -> 0);
        (fun () -> 1 + 2);
        (fun () -> Sched.touch f);
        (fun () -> 2 * Sched.touch f);
      ]
  in
  List.fold_left ( + ) 0 xs

let test_diff_cross_scheduler () =
  let left = parse_exn (pstack_trace ~seed:1 mirrored_pstack) in
  let right =
    let o, buf = jsonl_handle () in
    ignore
      (Sched.run ~policy:(Sched.Randomized (Int64.of_int 2)) ~obs:o mirrored_native);
    Obs.close o;
    parse_exn (Buffer.contents buf)
  in
  match Analysis.Diff.diff left right with
  | None -> ()
  | Some d ->
      Alcotest.failf "mirrored workloads diverged at run %d cpid %d: %s / %s"
        d.Analysis.Diff.d_run d.Analysis.Diff.d_cpid
        (Option.value ~default:"<end>" d.Analysis.Diff.d_left)
        (Option.value ~default:"<end>" d.Analysis.Diff.d_right)

let test_diff_detects_change () =
  let evs = parse_exn (pstack_trace ~seed:42 pstack_src) in
  (* Same trace: trivially aligned. *)
  (match Analysis.Diff.diff evs evs with
  | None -> ()
  | Some _ -> Alcotest.fail "a trace diverged from itself");
  (* Drop the last exit: one pid's causal stream ends early. *)
  let n = Array.length evs in
  let last_exit = ref (-1) in
  Array.iteri
    (fun i s -> match s.Trace.ev with E.Exit _ -> last_exit := i | _ -> ())
    evs;
  if !last_exit < 0 then Alcotest.fail "no exit in trace";
  let shorter =
    reindex
      (Array.of_list
         (List.filteri (fun i _ -> i <> !last_exit) (Array.to_list evs)))
  in
  ignore n;
  match Analysis.Diff.diff evs shorter with
  | Some d ->
      Alcotest.(check bool) "one side ended" true
        (d.Analysis.Diff.d_left = None || d.Analysis.Diff.d_right = None
        || d.Analysis.Diff.d_left <> d.Analysis.Diff.d_right)
  | None -> Alcotest.fail "dropped exit not detected"

(* ---------------- batched graft announcements ---------------- *)

(* The unbatched twin of a trace: every spawn-batch expanded into the
   equivalent individual spawns, in the batch's pre-order, with seq
   renumbered.  Batching is purely an encoding choice, so the twin must
   be indistinguishable to both the checker and the diff. *)
let expand_batches evs =
  Array.to_list evs
  |> List.concat_map (fun s ->
         match s.Trace.ev with
         | E.Spawn_batch { kind; nodes; _ } ->
             Array.to_list nodes
             |> List.map (fun (pid, parent) ->
                    { s with Trace.ev = E.Spawn { pid; parent; kind } })
         | _ -> [ s ])
  |> Array.of_list |> reindex

let batches_of evs =
  Array.to_list evs
  |> List.filter_map (fun s ->
         match s.Trace.ev with
         | E.Spawn_batch { pid; kind; nodes } -> Some (pid, kind, nodes)
         | _ -> None)

let test_batched_grafts_check () =
  (* Both schedulers announce grafts as one pre-order batch; the batched
     traces — and their expanded twins — still pass every rule. *)
  Alcotest.(check int) "thirteen rules" 13 (List.length Analysis.Check.rules);
  List.iter
    (fun (who, trace) ->
      let evs = parse_exn trace in
      let bs = batches_of evs in
      Alcotest.(check bool) (who ^ " grafts are batched") true (bs <> []);
      List.iter
        (fun (pid, kind, nodes) ->
          Alcotest.(check string) "batch kind" "graft" kind;
          Alcotest.(check bool) "batch non-empty" true (Array.length nodes > 0);
          (* pre-order: each node hangs off the grafting pid or an
             earlier node of the same batch *)
          let seen = Hashtbl.create 8 in
          Array.iter
            (fun (child, parent) ->
              if parent <> pid && not (Hashtbl.mem seen parent) then
                Alcotest.failf "node %d grafted under unknown parent %d" child
                  parent;
              Hashtbl.replace seen child ())
            nodes)
        bs;
      Alcotest.(check int)
        (who ^ " batched trace clean")
        0
        (List.length (Analysis.Check.run evs));
      Alcotest.(check int)
        (who ^ " expanded twin clean")
        0
        (List.length (Analysis.Check.run (expand_batches evs))))
    [
      ("pstack", pstack_trace ~seed:42 pstack_src);
      ("native", native_trace ~seed:42 ());
    ]

let test_spawn_batch_round_trip () =
  let evs = parse_exn (pstack_trace ~seed:42 pstack_src) in
  let checked = ref 0 in
  Array.iter
    (fun s ->
      match s.Trace.ev with
      | E.Spawn_batch _ ->
          incr checked;
          let line = Obs.Json.to_string (Trace.to_json s) ^ "\n" in
          let reparsed = parse_exn line in
          Alcotest.(check int) "one event" 1 (Array.length reparsed);
          Alcotest.(check string) "spawn-batch line round-trips" line
            (Obs.Json.to_string (Trace.to_json reparsed.(0)) ^ "\n")
      | _ -> ())
    evs;
  Alcotest.(check bool) "trace carries spawn-batch lines" true (!checked > 0)

let test_diff_batch_vs_expanded () =
  (* The skeleton expands batches into the same per-node facts as the
     individual spawns would produce, so a batched trace and its
     unbatched twin never diverge — on either scheduler. *)
  List.iter
    (fun (who, trace) ->
      let evs = parse_exn trace in
      match Analysis.Diff.diff evs (expand_batches evs) with
      | None -> ()
      | Some d ->
          Alcotest.failf "%s: batching changed the skeleton at cpid %d: %s / %s"
            who d.Analysis.Diff.d_cpid
            (Option.value ~default:"<end>" d.Analysis.Diff.d_left)
            (Option.value ~default:"<end>" d.Analysis.Diff.d_right))
    [
      ("pstack", pstack_trace ~seed:42 pstack_src);
      ("native", native_trace ~seed:42 ());
    ]

(* Mirrored graft workloads: the same capture-then-reinstate tree, once
   in Scheme and once against the native API (the constant branch again
   mirrors pstack forking the pcall operator). *)
let mirrored_graft_pstack =
  "(spawn (lambda (c) (pcall + (c (lambda (k) (k 1))) 2)))"

let mirrored_graft_native () =
  Sched.spawn (fun c ->
      let xs =
        Sched.pcall
          [
            (fun () -> 0);
            (fun () -> Sched.control c (fun pk -> Sched.resume pk 1));
            (fun () -> 2);
          ]
      in
      List.fold_left ( + ) 0 xs)

let test_diff_cross_scheduler_batched () =
  let left = parse_exn (pstack_trace ~seed:1 mirrored_graft_pstack) in
  let right =
    let o, buf = jsonl_handle () in
    ignore
      (Sched.run
         ~policy:(Sched.Randomized (Int64.of_int 2))
         ~obs:o mirrored_graft_native);
    Obs.close o;
    parse_exn (Buffer.contents buf)
  in
  Alcotest.(check bool) "left grafts batched" true (batches_of left <> []);
  Alcotest.(check bool) "right grafts batched" true (batches_of right <> []);
  (* The two schedulers legitimately differ in tree granularity here —
     native materializes process/controller nodes where pstack captures
     and reinstates in-node — so the diff reports a real divergence.
     What batching must guarantee is that the outcome is the *same* no
     matter which side (if any) batches its grafts: the skeleton cannot
     tell a batched trace from its unbatched twin. *)
  let outcome l r =
    match Analysis.Diff.diff l r with
    | None -> None
    | Some d -> Some Analysis.Diff.(d.d_cpid, d.d_left, d.d_right)
  in
  let xl = expand_batches left and xr = expand_batches right in
  let base = outcome xl xr in
  Alcotest.(check bool) "batched left agrees" true (outcome left xr = base);
  Alcotest.(check bool) "batched right agrees" true (outcome xl right = base);
  Alcotest.(check bool) "batched both agrees" true (outcome left right = base)

(* ---------------- round-trip ---------------- *)

let test_to_json_round_trip () =
  let trace = pstack_trace ~seed:42 pstack_src in
  let evs = parse_exn trace in
  let rebuilt =
    Array.to_list evs
    |> List.map (fun s -> Obs.Json.to_string (Trace.to_json s) ^ "\n")
    |> String.concat ""
  in
  Alcotest.(check string) "parse then re-serialize is identity" trace rebuilt

let () =
  Alcotest.run "trace"
    [
      ( "check",
        [
          Alcotest.test_case "clean pstack trace" `Quick test_check_clean_pstack;
          Alcotest.test_case "clean native trace" `Quick test_check_clean_native;
          Alcotest.test_case "dropped wake" `Quick test_check_dropped_wake;
          Alcotest.test_case "double wake" `Quick test_check_double_wake;
          Alcotest.test_case "unbalanced slice" `Quick test_check_unbalanced_slice;
          Alcotest.test_case "tampered reinstate" `Quick test_check_tampered_reinstate;
          Alcotest.test_case "seq gap" `Quick test_check_seq_gap;
          Alcotest.test_case "batched grafts pass all rules" `Quick
            test_batched_grafts_check;
        ] );
      ( "reconstruct",
        [
          Alcotest.test_case "timelines" `Quick test_reconstruct_timelines;
          Alcotest.test_case "blocked time" `Quick test_reconstruct_blocked;
          Alcotest.test_case "jsonl round-trip" `Quick test_to_json_round_trip;
          Alcotest.test_case "spawn-batch round-trip" `Quick
            test_spawn_batch_round_trip;
        ] );
      ( "report",
        [
          Alcotest.test_case "cp per capture = roots+1" `Quick
            test_report_cp_per_capture;
          Alcotest.test_case "profile sanity" `Quick test_report_sanity;
          Alcotest.test_case "json deterministic" `Quick
            test_report_json_deterministic;
        ] );
      ( "diff",
        [
          Alcotest.test_case "cross-scheduler aligned" `Quick
            test_diff_cross_scheduler;
          Alcotest.test_case "detects injected change" `Quick
            test_diff_detects_change;
          Alcotest.test_case "batch vs expanded twin" `Quick
            test_diff_batch_vs_expanded;
          Alcotest.test_case "cross-scheduler batched grafts" `Quick
            test_diff_cross_scheduler_batched;
        ] );
    ]
