(* Tests for the lexical-addressing resolution pass (Resolve) and for the
   schedule-observability contracts the run-queue schedulers must keep.

   Three groups:
   - resolver unit tests: addresses for shadowing/letrec/rest-args, [set!]
     on locals and globals, and unbound-variable errors still reported by
     name (including forward references sharing the interned cell);
   - a differential test: every golden program runs under both
     fuel-bounded drivers (sequential Run and concurrent Concur) and must
     produce identical results, identical printed output and identical
     machine-level control counters;
   - Driven-contract tests: the exact sequence of live-leaf counts passed
     to a [Driven] pick function, for both schedulers, pinned to the
     values the original walk-the-forest implementation produced. *)

open Pcont_pstack
module Interp = Pcont_syntax.Interp
module Counters = Pcont_util.Counters
module S = Pcont_sched.Sched

(* ---------------- resolver unit tests ---------------- *)

let genv () = Env.empty ()

let check_rir msg expected actual =
  let rec eq (a : Types.rir) (b : Types.rir) =
    match (a, b) with
    | Ir.Rlocal (d, s), Ir.Rlocal (d', s') -> d = d' && s = s'
    | Ir.Rglobal g, Ir.Rglobal g' -> g == g'
    | Ir.Rapp (f, xs), Ir.Rapp (f', xs') ->
        eq f f' && List.length xs = List.length xs' && List.for_all2 eq xs xs'
    | Ir.Rseq xs, Ir.Rseq xs' ->
        List.length xs = List.length xs' && List.for_all2 eq xs xs'
    | Ir.Rset_local (d, s, e), Ir.Rset_local (d', s', e') ->
        d = d' && s = s' && eq e e'
    | Ir.Rset_global (g, e), Ir.Rset_global (g', e') -> g == g' && eq e e'
    | Ir.Rlam l, Ir.Rlam l' ->
        l.Ir.rnparams = l'.Ir.rnparams
        && l.Ir.rhas_rest = l'.Ir.rhas_rest
        && eq l.Ir.rbody l'.Ir.rbody
    | _ -> a = b
  in
  Alcotest.(check bool) msg true (eq expected actual)

let test_addresses_shadowing () =
  let g = genv () in
  (* scopes: innermost rib first; [x] at depth 0 shadows [x] at depth 1 *)
  let scopes = [ [ ("x", 0); ("y", 1) ]; [ ("x", 0) ] ] in
  check_rir "inner x" (Ir.Rlocal (0, 0)) (Resolve.resolve g scopes (Ir.var "x"));
  check_rir "y" (Ir.Rlocal (0, 1)) (Resolve.resolve g scopes (Ir.var "y"));
  (* a lambda introduces a rib: outer bindings shift one level deeper *)
  check_rir "lambda shifts depth"
    (Ir.Rlam
       {
         Ir.rnparams = 1;
         rhas_rest = false;
         rbody = Ir.Rapp (Ir.Rlocal (0, 0), [ Ir.Rlocal (1, 0) ]);
       })
    (Resolve.resolve g scopes
       (Ir.lam [ "f" ] (Ir.app (Ir.var "f") [ Ir.var "x" ])))

let test_addresses_rest_args () =
  let g = genv () in
  (* the rest parameter lives in the slot after the fixed parameters *)
  check_rir "rest slot"
    (Ir.Rlam
       {
         Ir.rnparams = 2;
         rhas_rest = true;
         rbody = Ir.Rapp (Ir.Rlocal (0, 2), [ Ir.Rlocal (0, 0); Ir.Rlocal (0, 1) ]);
       })
    (Resolve.resolve g []
       (Ir.lam_rest [ "a"; "b" ] "r"
          (Ir.app (Ir.var "r") [ Ir.var "a"; Ir.var "b" ])))

let test_addresses_globals_interned () =
  let g = genv () in
  let r1 = Resolve.resolve g [] (Ir.var "nope") in
  let r2 = Resolve.resolve g [] (Ir.Set ("nope", Ir.int 1)) in
  match (r1, r2) with
  | Ir.Rglobal c1, Ir.Rset_global (c2, _) ->
      Alcotest.(check bool) "same interned cell" true (c1 == c2);
      Alcotest.(check bool) "unbound until defined" false c1.Types.gbound;
      Env.define_global g "nope" (Types.Int 7);
      Alcotest.(check bool) "define fills the same cell" true c1.Types.gbound
  | _ -> Alcotest.fail "expected global references"

let ev ?mode src =
  let t = Interp.create () in
  let v = Interp.eval_value ?mode ~fuel:2_000_000 t src in
  ignore (Interp.take_output ());
  Value.to_string v

let ev_error src =
  let t = Interp.create () in
  match List.rev (Interp.eval_string t ~fuel:2_000_000 src) with
  | Interp.Error m :: _ -> m
  | r :: _ -> Alcotest.failf "expected error, got %s" (Interp.result_to_string r)
  | [] -> Alcotest.fail "no results"

let test_shadowing_behavior () =
  Alcotest.(check string) "lambda shadows global" "2"
    (ev "(define x 1) ((lambda (x) x) 2)");
  Alcotest.(check string) "inner let shadows outer" "3"
    (ev "(let ([x 1]) (+ (let ([x 2]) x) x))");
  Alcotest.(check string) "closure keeps its rib" "10"
    (ev
       "(define (adder n) (lambda (m) (+ n m)))\n\
        (define add3 (adder 3)) (define add7 (adder 7))\n\
        (- (add7 10) (add3 4))")

let test_letrec () =
  Alcotest.(check string) "mutual recursion" "#t"
    (ev
       "(letrec ([even? (lambda (n) (if (= n 0) #t (odd? (- n 1))))]\n\
       \         [odd?  (lambda (n) (if (= n 0) #f (even? (- n 1))))])\n\
       \  (even? 20))");
  Alcotest.(check string) "letrec body sees all slots" "6"
    (ev "(letrec ([f (lambda (n) (if (= n 0) 1 (* n (f (- n 1)))))]) (f 3))")

let test_rest_args_behavior () =
  Alcotest.(check string) "rest collects extras" "(1 2 3)"
    (ev "((lambda (a . rest) (cons a rest)) 1 2 3)");
  Alcotest.(check string) "empty rest" "(1)"
    (ev "((lambda (a . rest) (cons a rest)) 1)")

let test_set_local_and_global () =
  Alcotest.(check string) "set! local" "5" (ev "(let ([x 1]) (set! x 5) x)");
  Alcotest.(check string) "set! captured local" "3"
    (ev
       "(define mk (lambda () (let ([n 0]) (lambda () (set! n (+ n 1)) n))))\n\
        (define c (mk)) (c) (c) (c)");
  Alcotest.(check string) "set! global" "42" (ev "(define g 1) (set! g 42) g")

let test_unbound_by_name () =
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "use reports the name" true
    (contains (ev_error "(+ 1 no-such-var)") "no-such-var");
  Alcotest.(check bool) "set! reports the name" true
    (contains (ev_error "(set! no-such-target 1)") "no-such-target");
  (* Forward reference: resolution interns the cell before the define;
     calling before the define still errors by name, after it works. *)
  let t = Interp.create () in
  ignore (Interp.eval_string t "(define (f) (later))");
  (match List.rev (Interp.eval_string t ~fuel:1_000_000 "(f)") with
  | Interp.Error m :: _ ->
      Alcotest.(check bool) "forward ref errors by name" true (contains m "later")
  | _ -> Alcotest.fail "expected unbound error");
  ignore (Interp.eval_string t "(define (later) 11)");
  Alcotest.(check string) "define fills the interned cell" "11"
    (Value.to_string (Interp.eval_value t ~fuel:1_000_000 "(f)"))

(* ---------------- differential: golden programs under both drivers ----- *)

let read_file path =
  (* cwd is the test directory under `dune runtest`, the project root
     under `dune exec` — accept either. *)
  let path = if Sys.file_exists path then path else Filename.concat "test" path in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Machine-level control counters; scheduler-internal bookkeeping
   ("concur.*", "sync.*") legitimately exists only under the concurrent
   driver and is excluded.  The allocation-policy counters ("machine.pool.*",
   "machine.capture.moved") are also excluded: the one-shot move path is
   enabled only under the sequential driver (a concurrent sibling capture
   can package a pending pk application into a multi-shot tree), so pool
   reuse legitimately differs across drivers while the control counters —
   the observable cost model — must not. *)
let machine_counters t =
  let has_prefix p name =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  (Interp.config t).Machine.counters |> Counters.to_list
  |> List.filter (fun (name, _) ->
         not
           (has_prefix "concur." name || has_prefix "sync." name
           || has_prefix "machine.pool." name
           || name = "machine.capture.moved"))

let run_golden mode src =
  let t = Interp.create () in
  let results =
    Interp.eval_string t ~mode ~fuel:5_000_000 src
    |> List.map Interp.result_to_string
  in
  let output = Interp.take_output () in
  (results, output, machine_counters t)

let test_golden_differential () =
  List.iter
    (fun name ->
      let src = read_file (Filename.concat "golden" (name ^ ".scm")) in
      let seq_r, seq_out, seq_c = run_golden Interp.Sequential src in
      let conc_r, conc_out, conc_c =
        run_golden (Interp.Concurrent Concur.Round_robin) src
      in
      Alcotest.(check (list string)) (name ^ ": results") seq_r conc_r;
      Alcotest.(check string) (name ^ ": output") seq_out conc_out;
      Alcotest.(check (list (pair string int)))
        (name ^ ": control counters") seq_c conc_c)
    [ "product"; "validity"; "macros"; "wind"; "engines"; "errors" ]

let test_golden_concurrent_programs_agree () =
  (* Programs that genuinely fork agree on results and output across
     drivers; their counters legitimately differ (cross-branch control
     escapes to the scheduler instead of the machine). *)
  List.iter
    (fun name ->
      let src = read_file (Filename.concat "golden" (name ^ ".scm")) in
      let seq_r, seq_out, _ = run_golden Interp.Sequential src in
      let conc_r, conc_out, _ =
        run_golden (Interp.Concurrent Concur.Round_robin) src
      in
      Alcotest.(check (list string)) (name ^ ": results") seq_r conc_r;
      Alcotest.(check string) (name ^ ": output") seq_out conc_out)
    [ "search"; "futures" ]

(* ---------------- Driven pick-count contract ---------------- *)

(* The counts passed to [pick] are the number of live leaves each round.
   These exact sequences were recorded from the pre-run-queue scheduler
   (which recollected the forest every round); the incrementally
   maintained queue must present [pick] with the same counts. *)

let test_driven_counts_concur () =
  let trace = ref [] in
  let i = ref 0 in
  let pick n =
    trace := n :: !trace;
    incr i;
    !i mod n
  in
  let t = Interp.create () in
  let rs =
    Interp.eval_string t
      ~mode:(Interp.Concurrent (Concur.Driven pick))
      ~fuel:200_000 ~quantum:1
      "(pcall + (pcall + 1 2) (pcall * 2 3))"
  in
  (match List.rev rs with
  | Interp.Value v :: _ -> Alcotest.(check string) "result" "9" (Value.to_string v)
  | _ -> Alcotest.fail "expected a value");
  Alcotest.(check (list int)) "live-leaf counts"
    [ 1; 3; 5; 5; 5; 5; 7; 6; 6; 6; 5; 5; 4; 3; 2; 2; 2; 2; 2; 1; 1; 1; 1 ]
    (List.rev !trace)

let test_driven_counts_sched () =
  let trace = ref [] in
  let i = ref 0 in
  let pick n =
    trace := n :: !trace;
    incr i;
    !i mod n
  in
  let v =
    S.run ~policy:(S.Driven pick) (fun () ->
        let vs =
          S.pcall
            [
              (fun () ->
                S.yield ();
                1);
              (fun () -> 2 + List.hd (S.pcall [ (fun () -> 3) ]));
            ]
        in
        List.fold_left ( + ) 0 vs)
  in
  Alcotest.(check int) "result" 6 v;
  Alcotest.(check (list int)) "live-leaf counts" [ 1; 2; 2; 2; 1; 1; 1 ]
    (List.rev !trace)

let () =
  Alcotest.run "resolve"
    [
      ( "addresses",
        [
          Alcotest.test_case "shadowing" `Quick test_addresses_shadowing;
          Alcotest.test_case "rest args" `Quick test_addresses_rest_args;
          Alcotest.test_case "globals interned once" `Quick
            test_addresses_globals_interned;
        ] );
      ( "behavior",
        [
          Alcotest.test_case "shadowing" `Quick test_shadowing_behavior;
          Alcotest.test_case "letrec" `Quick test_letrec;
          Alcotest.test_case "rest args" `Quick test_rest_args_behavior;
          Alcotest.test_case "set! local/global" `Quick test_set_local_and_global;
          Alcotest.test_case "unbound by name" `Quick test_unbound_by_name;
        ] );
      ( "differential",
        [
          Alcotest.test_case "golden programs, both drivers" `Quick
            test_golden_differential;
          Alcotest.test_case "concurrent goldens agree" `Quick
            test_golden_concurrent_programs_agree;
        ] );
      ( "driven-contract",
        [
          Alcotest.test_case "concur pick counts" `Quick test_driven_counts_concur;
          Alcotest.test_case "sched pick counts" `Quick test_driven_counts_sched;
        ] );
    ]
