(* Tests for record/replay and DPOR-style exploration (lib/explore),
   plus the scheduler-determinism contracts they depend on: the Driven
   modulo-reduction rule, the Driven_pids decision/slice alignment,
   FIFO wake order (including Channel.close), and Randomized's
   independence from the global Random state. *)

module Obs = Pcont_obs.Obs
module E = Pcont_obs.Obs.Event
module Trace = Pcont_obs.Trace
module Analysis = Pcont_obs.Analysis
module Interp = Pcont_syntax.Interp
module Concur = Pcont_pstack.Concur
module Sched = Pcont_sched.Sched
module Channel = Pcont_sched.Channel
module Xorshift = Pcont_util.Xorshift
module Resil = Pcont_resil.Resil
module X = Pcont_explore.Explore

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Run a native program with a trace buffer attached. *)
let native_trace policy prog =
  let buf = Buffer.create 1024 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  let v = Sched.run ~policy ~obs:o prog in
  Obs.close o;
  (v, Buffer.contents buf)

let pstack_trace sched src =
  let buf = Buffer.create 1024 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  let t = Interp.create () in
  let rs = Interp.eval_string ~mode:(Interp.Concurrent sched) ~obs:o t src in
  Obs.close o;
  ignore (Interp.take_output ());
  (String.concat ";" (List.map Interp.result_to_string rs), Buffer.contents buf)

let native_prog () =
  let f = Sched.future (fun () -> 21 * 2) in
  let xs = Sched.pcall [ (fun () -> 1); (fun () -> 2); (fun () -> Sched.touch f) ] in
  List.fold_left ( + ) 0 xs

let pstack_src = "(pcall + 1 (touch (future 2)) 3)"

(* ---------------- Driven modulo contract (satellite: out-of-range) -- *)

let test_driven_modulo_native () =
  (* pick n = n is out of range and must behave exactly like pick 0;
     pick -1 must behave like pick (n - 1). *)
  let v0, t0 = native_trace (Sched.Driven (fun _ -> 0)) native_prog in
  let vn, tn = native_trace (Sched.Driven (fun n -> n)) native_prog in
  Alcotest.(check int) "value: pick n = pick 0" v0 vn;
  Alcotest.(check string) "trace: pick n = pick 0" t0 tn;
  let vl, tl = native_trace (Sched.Driven (fun n -> n - 1)) native_prog in
  let vm, tm = native_trace (Sched.Driven (fun _ -> -1)) native_prog in
  Alcotest.(check int) "value: pick -1 = pick (n-1)" vl vm;
  Alcotest.(check string) "trace: pick -1 = pick (n-1)" tl tm

let test_driven_modulo_pstack () =
  let r0, t0 = pstack_trace (Concur.Driven (fun _ -> 0)) pstack_src in
  let rn, tn = pstack_trace (Concur.Driven (fun n -> n)) pstack_src in
  Alcotest.(check string) "result: pick n = pick 0" r0 rn;
  Alcotest.(check string) "trace: pick n = pick 0" t0 tn;
  (* before the modulo contract, an out-of-range pick was an Error
     outcome here (and an exception on the native side) *)
  Alcotest.(check bool) "no error outcome" false (starts_with ~prefix:"error" rn);
  let rl, tl = pstack_trace (Concur.Driven (fun n -> n - 1)) pstack_src in
  let rm, tm = pstack_trace (Concur.Driven (fun _ -> -1)) pstack_src in
  Alcotest.(check string) "result: pick -1 = pick (n-1)" rl rm;
  Alcotest.(check string) "trace: pick -1 = pick (n-1)" tl tm

(* Driven_pids decisions and trace slices must be the same sequence:
   the chosen pid log equals the schedule extracted from the trace. *)
let test_driven_pids_alignment () =
  List.iter
    (fun target ->
      let chosen = ref [] in
      let pick pids =
        (* rotate through candidates so the log is not just queue heads *)
        let i = List.length !chosen mod Array.length pids in
        chosen := pids.(i) :: !chosen;
        i
      in
      let r = X.Replay.record ~policy:(X.Fixed pick) target in
      let log = Array.of_list (List.rev !chosen) in
      Alcotest.(check (array int))
        (target.X.tg_name ^ ": decision log = trace schedule")
        log r.X.Replay.rec_schedule.X.Schedule.decisions)
    [ X.Workloads.gen_native; X.Workloads.gen_pstack ]

(* ---------------- record / replay round-trips --------------------- *)

let pstack_multiform =
  (* two top-level forms = two runs in one trace; the flat schedule
     must replay across the run boundary *)
  "(define x (pcall + 1 2 3))\n(pcall * x (touch (future 5)))"

let pstack_capture =
  "(spawn (lambda (c) (pcall + 1 (c (lambda (k) (* (k 2) (k 5)))))))"

let roundtrip_targets =
  [
    X.Workloads.gen_native;
    X.Workloads.racing 2;
    X.Workloads.lost_wakeup;
    X.Workloads.stolen_relay;
    X.Workloads.gen_pstack;
    X.pstack_target "multiform" pstack_multiform;
    X.pstack_target "capture" pstack_capture;
  ]

let reports trace =
  match Trace.parse_string trace with
  | Error m -> Alcotest.fail ("trace parse: " ^ m)
  | Ok evs ->
      Obs.Json.to_string
        (Obs.Json.Arr (List.map Analysis.Report.to_json (Analysis.Report.of_trace evs)))

let roundtrip_under name policy =
  List.iter
    (fun target ->
      match X.Replay.check_roundtrip ~policy target with
      | Error m -> Alcotest.fail (target.X.tg_name ^ " under " ^ name ^ ": " ^ m)
      | Ok r ->
          let r2, div = X.Replay.replay target r.X.Replay.rec_schedule in
          Alcotest.(check bool) "no divergence" true (div = None);
          Alcotest.(check string)
            (target.X.tg_name ^ " under " ^ name ^ ": identical reports")
            (reports r.X.Replay.rec_trace)
            (reports r2.X.Replay.rec_trace))
    roundtrip_targets

let test_roundtrip_default () = roundtrip_under "default" X.Default
let test_roundtrip_seeded () = roundtrip_under "randomized" (X.Seeded 7L)

let test_roundtrip_driven () =
  (* a third, distinct schedule source: always step the last runnable *)
  roundtrip_under "driven" (X.Fixed (fun pids -> Array.length pids - 1))

(* ---------------- exploration finds injected bugs ------------------ *)

let test_explore_lost_wakeup () =
  let stats = X.Dpor.explore ~max_runs:50 X.Workloads.lost_wakeup in
  match stats.X.Dpor.s_witness with
  | None -> Alcotest.fail "exploration missed the lost wakeup"
  | Some w ->
      Alcotest.(check string) "kind" "deadlock" w.X.Dpor.w_kind;
      Alcotest.(check bool)
        "found within a handful of schedules" true
        (w.X.Dpor.w_runs_to_find <= 10);
      (* the witness is a replayable schedule that reproduces the bug *)
      let r, div = X.Replay.replay X.Workloads.lost_wakeup w.X.Dpor.w_schedule in
      Alcotest.(check bool) "witness replays without divergence" true (div = None);
      Alcotest.(check bool)
        "witness reproduces the deadlock" true
        (starts_with ~prefix:"deadlock" r.X.Replay.rec_outcome);
      (* the naive baseline cannot find it: round-based schedules
         interleave strictly, so the two-slice signal never lands
         entirely inside the waiter's check/park window *)
      let sweep = X.Dpor.seed_sweep ~seeds:100 X.Workloads.lost_wakeup in
      Alcotest.(check bool) "100-seed sweep misses it" true (sweep.X.Dpor.sw_found = None)

let test_explore_stolen_relay () =
  let stats = X.Dpor.explore ~max_runs:100 X.Workloads.stolen_relay in
  match stats.X.Dpor.s_witness with
  | None -> Alcotest.fail "exploration missed the stolen relay deadlock"
  | Some w ->
      Alcotest.(check string) "kind" "deadlock" w.X.Dpor.w_kind;
      let r, div = X.Replay.replay X.Workloads.stolen_relay w.X.Dpor.w_schedule in
      Alcotest.(check bool) "witness replays without divergence" true (div = None);
      Alcotest.(check bool)
        "witness reproduces the deadlock" true
        (starts_with ~prefix:"deadlock" r.X.Replay.rec_outcome);
      let sweep = X.Dpor.seed_sweep ~seeds:100 X.Workloads.stolen_relay in
      Alcotest.(check bool) "100-seed sweep misses it" true (sweep.X.Dpor.sw_found = None)

let test_explore_clean_workloads () =
  (* no false positives on a racy-but-correct workload, and the engine
     actually explores distinct schedules *)
  let stats = X.Dpor.explore ~max_runs:60 (X.Workloads.racing 2) in
  Alcotest.(check bool) "no witness on racing" true (stats.X.Dpor.s_witness = None);
  Alcotest.(check bool) "explored several schedules" true (stats.X.Dpor.s_schedules > 5);
  Alcotest.(check bool) "seeded backtrack points" true (stats.X.Dpor.s_races > 0);
  (* capture-vs-run races on a grafting program: explored, no violation *)
  let stats = X.Dpor.explore ~max_runs:30 (X.pstack_target "capture" pstack_capture) in
  Alcotest.(check bool) "no witness on capture workload" true
    (stats.X.Dpor.s_witness = None)

(* ---------------- decision pinning (satellite: hidden decisions) --- *)

let test_wake_fifo_order () =
  (* park order = wake order, pinned: three fibers park on one waitset,
     a fourth wakes them all *)
  let _, trace =
    native_trace Sched.Tree_order (fun () ->
        let ws = Sched.Waitset.create "event" in
        let waiter () = Sched.block ws in
        let waker () =
          Sched.yield ();
          Sched.yield ();
          Sched.wake ws
        in
        Sched.pcall [ waiter; waiter; waiter; waker ])
  in
  match Trace.parse_string trace with
  | Error m -> Alcotest.fail m
  | Ok evs ->
      let parked = ref [] and woken = ref [] in
      Array.iter
        (fun (st : Trace.stamped) ->
          match st.Trace.ev with
          | E.Park { pid; _ } -> parked := pid :: !parked
          | E.Wake { pid; _ } -> woken := pid :: !woken
          | _ -> ())
        evs;
      Alcotest.(check int) "three parks" 3 (List.length !parked);
      Alcotest.(check (list int)) "wake order = park order (FIFO)" (List.rev !parked)
        (List.rev !woken)

let test_channel_close_wake_order () =
  (* Channel.close wakes parked senders in park order; replay fidelity
     requires that order to be deterministic *)
  let v, trace =
    native_trace Sched.Tree_order (fun () ->
        let c = Channel.create ~capacity:1 () in
        let sender x () =
          try
            Channel.send c x;
            Channel.send c (10 * x);
            0
          with Channel.Closed -> x
        in
        let closer () =
          Sched.yield ();
          Sched.yield ();
          Channel.close c;
          0
        in
        Sched.pcall [ sender 1; sender 2; closer ])
  in
  Alcotest.(check (list int)) "both parked senders raised Closed" [ 1; 2; 0 ] v;
  match Trace.parse_string trace with
  | Error m -> Alcotest.fail m
  | Ok evs ->
      let parked = ref [] and woken = ref [] in
      Array.iter
        (fun (st : Trace.stamped) ->
          match st.Trace.ev with
          | E.Park { pid; _ } -> parked := pid :: !parked
          | E.Wake { pid; _ } -> woken := pid :: !woken
          | _ -> ())
        evs;
      Alcotest.(check (list int)) "close wakes in park order" (List.rev !parked)
        (List.rev !woken)

(* ---------------- Randomized vs global Random (satellite: PRNG) ---- *)

let test_randomized_ignores_global_random () =
  let t1 = X.Replay.record ~policy:(X.Seeded 5L) (X.Workloads.racing 2) in
  Random.init 123;
  ignore (Random.bits ());
  let t2 = X.Replay.record ~policy:(X.Seeded 5L) (X.Workloads.racing 2) in
  Random.init 98765;
  ignore (Random.float 1.0);
  let t3 = X.Replay.record ~policy:(X.Seeded 5L) (X.Workloads.racing 2) in
  Alcotest.(check string) "native trace unaffected by Random.init"
    t1.X.Replay.rec_trace t2.X.Replay.rec_trace;
  Alcotest.(check string) "…twice" t1.X.Replay.rec_trace t3.X.Replay.rec_trace;
  let p1 = X.Replay.record ~policy:(X.Seeded 5L) X.Workloads.gen_pstack in
  Random.init 4242;
  ignore (Random.bits ());
  let p2 = X.Replay.record ~policy:(X.Seeded 5L) X.Workloads.gen_pstack in
  Alcotest.(check string) "pstack trace unaffected by Random.init"
    p1.X.Replay.rec_trace p2.X.Replay.rec_trace

let test_xorshift_pinned_stream () =
  (* both schedulers share this splitmix64; pin its stream so a silent
     reimplementation (or a fallback to Stdlib.Random) cannot slip in *)
  let g = Xorshift.create 42L in
  Alcotest.(check int64) "v1" 0xbdd732262feb6e95L (Xorshift.next g);
  Alcotest.(check int64) "v2" 0x28efe333b266f103L (Xorshift.next g);
  Alcotest.(check int64) "v3" 0x47526757130f9f52L (Xorshift.next g);
  Alcotest.(check int64) "v4" 0x581ce1ff0e4ae394L (Xorshift.next g)

let test_cross_scheduler_same_seed_aligned () =
  (* the mirrored gen workloads under the same seed stay causally
     aligned across schedulers (same shared PRNG, same decision
     surface); Diff must find no divergence *)
  List.iter
    (fun seed ->
      let n = X.Replay.record ~policy:(X.Seeded seed) X.Workloads.gen_native in
      let p = X.Replay.record ~policy:(X.Seeded seed) X.Workloads.gen_pstack in
      match (Trace.parse_string n.X.Replay.rec_trace, Trace.parse_string p.X.Replay.rec_trace) with
      | Ok ne, Ok pe ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %Ld causally aligned" seed)
            true
            (Analysis.Diff.diff ne pe = None)
      | Error m, _ | _, Error m -> Alcotest.fail m)
    [ 1L; 3L; 11L ]

(* ---------------- schedule files ----------------------------------- *)

let test_schedule_file_roundtrip () =
  let r = X.Replay.record X.Workloads.gen_native in
  let path = Filename.temp_file "sched" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      X.Schedule.save path r.X.Replay.rec_schedule;
      match X.Schedule.load path with
      | Error m -> Alcotest.fail m
      | Ok s ->
          Alcotest.(check (array int)) "schedule file round-trips"
            r.X.Replay.rec_schedule.X.Schedule.decisions s.X.Schedule.decisions);
  (* a raw trace file is also a valid schedule source *)
  let tpath = Filename.temp_file "trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tpath)
    (fun () ->
      Out_channel.with_open_bin tpath (fun oc ->
          Out_channel.output_string oc r.X.Replay.rec_trace);
      match X.Schedule.load tpath with
      | Error m -> Alcotest.fail m
      | Ok s ->
          Alcotest.(check (array int)) "trace file yields the same schedule"
            r.X.Replay.rec_schedule.X.Schedule.decisions s.X.Schedule.decisions)

(* ---------------- cancellation races ------------------------------- *)

(* A waker and a canceller race for a parked fiber: depending on the
   schedule the waiter is woken or swept while parked.  Both fates are
   legal; exploration must visit several schedules without flagging
   either, and the race must be real (both outcomes reachable). *)
let cancel_wake_target =
  X.native_target "cancel-wake" (fun () ->
      let ws = Sched.Waitset.create "signal" in
      let sc = Resil.Scope.make () in
      let waiter () =
        match
          Resil.Scope.run sc (fun () ->
              Sched.block ws;
              "woken")
        with
        | Ok s -> s
        | Error f -> Resil.failure_to_string f
      in
      let waker () =
        (* wait for the park so the wake cannot be lost; the bound keeps
           driven schedules that starve the waiter from spinning forever
           (the cancel then decides the fate) *)
        let tries = ref 0 in
        while
          Sched.Waitset.parked ws = 0
          && (not (Resil.Scope.cancelled sc))
          && !tries < 20
        do
          incr tries;
          Sched.yield ()
        done;
        Sched.wake ws;
        "waker"
      in
      let canceller () =
        Sched.yield ();
        Sched.yield ();
        Resil.Scope.cancel sc ~reason:"race";
        "canceller"
      in
      String.concat "," (Sched.pcall [ waiter; waker; canceller ]))

(* A control capture racing the cancellation of its enclosing scope:
   the spawn controller aborts its own subtree and its replacement
   signals the canceller through a channel, so the cancel lands exactly
   in the window between the capture and the scope observing its value.
   The scope either delivers the captured value (10) or the watchdog
   wins and the whole subtree — replacement fiber included — is
   swept. *)
let cancel_capture_target =
  X.native_target "cancel-capture" (fun () ->
      let sc = Resil.Scope.make () in
      let ch = Channel.create ~capacity:1 () in
      let work () =
        match
          Resil.Scope.run sc (fun () ->
              Sched.spawn (fun c ->
                  fst
                    (Sched.pcall2
                       (fun () ->
                         Sched.yield ();
                         Sched.abort c ~reason:"shortcut" (fun () ->
                             Channel.send ch 0;
                             10))
                       (fun () ->
                         Sched.yield ();
                         Sched.yield ();
                         1))))
        with
        | Ok n -> "value " ^ string_of_int n
        | Error f -> Resil.failure_to_string f
      in
      let canceller () =
        let _ = Channel.recv ch in
        Resil.Scope.cancel sc ~reason:"race";
        "canceller"
      in
      String.concat "," (Sched.pcall [ work; canceller ]))

let reachable_outcomes target =
  List.sort_uniq compare
    (List.map
       (fun s ->
         (X.Replay.record ~policy:(X.Seeded (Int64.of_int s)) target)
           .X.Replay.rec_outcome)
       (List.init 24 (fun i -> i + 1)))

let test_explore_cancel_races () =
  List.iter
    (fun target ->
      let stats = X.Dpor.explore ~max_runs:80 target in
      (match stats.X.Dpor.s_witness with
      | None -> ()
      | Some w ->
          Alcotest.failf "%s: spurious witness %s (%s)" target.X.tg_name
            w.X.Dpor.w_kind w.X.Dpor.w_outcome);
      Alcotest.(check bool)
        (target.X.tg_name ^ ": explored distinct schedules")
        true
        (stats.X.Dpor.s_schedules >= 2 && stats.X.Dpor.s_races > 0);
      Alcotest.(check bool)
        (target.X.tg_name ^ ": the race is real")
        true
        (List.length (reachable_outcomes target) >= 2))
    [ cancel_wake_target; cancel_capture_target ]

let test_explore_timeout_races () =
  (* timeout vs completion, native: both arms are deterministic in
     virtual time, so every schedule is clean *)
  let stats = X.Dpor.explore ~max_runs:60 X.Workloads.timeout_race in
  Alcotest.(check bool) "timeout-race stays clean" true
    (stats.X.Dpor.s_witness = None);
  (* and the pstack timer-cancellation idiom from the paper *)
  let stats = X.Dpor.explore ~max_runs:40 X.Workloads.timer_pstack in
  Alcotest.(check bool) "timer-pstack stays clean" true
    (stats.X.Dpor.s_witness = None);
  let r = X.Replay.record X.Workloads.timer_pstack in
  Alcotest.(check bool) "the timer branch wins" true
    (let rec has i =
       i >= 0
       && (starts_with ~prefix:"timed-out"
             (String.sub r.X.Replay.rec_outcome i
                (String.length r.X.Replay.rec_outcome - i))
          || has (i - 1))
     in
     has (String.length r.X.Replay.rec_outcome - 1))

(* ---------------- fault injection ---------------------------------- *)

let test_fault_roundtrip () =
  (* a schedule that carries faults replays them byte for byte *)
  let faults = [ { X.Fault.at = 6; kind = X.Fault.Crash } ] in
  (match X.Replay.check_roundtrip ~faults X.Workloads.sup_relay with
  | Error m -> Alcotest.fail ("faulty roundtrip: " ^ m)
  | Ok r ->
      Alcotest.(check bool) "faults recorded in the schedule" true
        (r.X.Replay.rec_schedule.X.Schedule.faults = faults));
  (* and they survive the schedule JSON encoding *)
  let s =
    {
      X.Schedule.decisions = [| 0; 1; 2; 0 |];
      faults =
        [
          { X.Fault.at = 3; kind = X.Fault.Crash };
          { X.Fault.at = 5; kind = X.Fault.Wake "channel.send" };
          { X.Fault.at = 7; kind = X.Fault.Drop 2 };
        ];
    }
  in
  match X.Schedule.of_json (X.Schedule.to_json s) with
  | Error m -> Alcotest.fail ("schedule json: " ^ m)
  | Ok s' ->
      Alcotest.(check (array int)) "decisions" s.X.Schedule.decisions
        s'.X.Schedule.decisions;
      Alcotest.(check bool) "faults" true
        (s.X.Schedule.faults = s'.X.Schedule.faults)

let test_explore_finds_supervision_leak () =
  (* The headline acceptance case: systematic fault placement finds the
     orphaned-helper leak in sup-leak — a run that still delivers a
     value, so only trace analysis exposes it — and a 100-seed
     randomized sweep with the same fault menu does not. *)
  let stats =
    X.Dpor.explore ~max_runs:400 ~fault_menu:[ X.Fault.Crash ]
      ~max_fault_slices:300 X.Workloads.sup_leak
  in
  match stats.X.Dpor.s_witness with
  | None -> Alcotest.fail "fault exploration missed the supervision leak"
  | Some w ->
      Alcotest.(check string) "kind" "check:no-orphan-waiters" w.X.Dpor.w_kind;
      Alcotest.(check bool) "witness carries the fault" true
        (List.length w.X.Dpor.w_schedule.X.Schedule.faults = 1);
      (* byte-identical witness replay, twice *)
      let r1, d1 = X.Replay.replay X.Workloads.sup_leak w.X.Dpor.w_schedule in
      let r2, d2 = X.Replay.replay X.Workloads.sup_leak w.X.Dpor.w_schedule in
      Alcotest.(check bool) "no divergence" true (d1 = None && d2 = None);
      Alcotest.(check string) "byte-identical replays" r1.X.Replay.rec_trace
        r2.X.Replay.rec_trace;
      Alcotest.(check string) "same outcome as the witness" w.X.Dpor.w_outcome
        r1.X.Replay.rec_outcome;
      (* the randomized baseline with the same menu misses it *)
      let sweep =
        X.Dpor.seed_sweep ~seeds:100 ~fault_menu:[ X.Fault.Crash ]
          X.Workloads.sup_leak
      in
      Alcotest.(check bool) "100-seed fault sweep misses it" true
        (sweep.X.Dpor.sw_found = None)

let () =
  Alcotest.run "explore"
    [
      ( "driven-contract",
        [
          Alcotest.test_case "modulo reduction (native)" `Quick test_driven_modulo_native;
          Alcotest.test_case "modulo reduction (pstack)" `Quick test_driven_modulo_pstack;
          Alcotest.test_case "decision/slice alignment" `Quick test_driven_pids_alignment;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "default policies" `Quick test_roundtrip_default;
          Alcotest.test_case "randomized" `Quick test_roundtrip_seeded;
          Alcotest.test_case "driven" `Quick test_roundtrip_driven;
          Alcotest.test_case "schedule files" `Quick test_schedule_file_roundtrip;
        ] );
      ( "explore",
        [
          Alcotest.test_case "finds injected lost wakeup" `Quick test_explore_lost_wakeup;
          Alcotest.test_case "finds injected deadlock" `Quick test_explore_stolen_relay;
          Alcotest.test_case "clean workloads stay clean" `Quick test_explore_clean_workloads;
          Alcotest.test_case "cancellation races stay clean" `Quick
            test_explore_cancel_races;
          Alcotest.test_case "timeout races stay clean" `Quick
            test_explore_timeout_races;
        ] );
      ( "faults",
        [
          Alcotest.test_case "faulty schedules round-trip" `Quick
            test_fault_roundtrip;
          Alcotest.test_case "finds supervision leak, sweep misses" `Quick
            test_explore_finds_supervision_leak;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "wake order is FIFO" `Quick test_wake_fifo_order;
          Alcotest.test_case "close wake order pinned" `Quick test_channel_close_wake_order;
          Alcotest.test_case "Randomized ignores global Random" `Quick
            test_randomized_ignores_global_random;
          Alcotest.test_case "splitmix64 stream pinned" `Quick test_xorshift_pinned_stream;
          Alcotest.test_case "cross-scheduler seed alignment" `Quick
            test_cross_scheduler_same_seed_aligned;
        ] );
    ]
