(* Tests for the native tree-structured concurrency scheduler:
   pcall forking, cross-fiber capture and grafting, the Section 5 derived
   operators, and schedule independence. *)

module S = Pcont_sched.Sched
module Ops = Pcont_sched.Ops

(* ---------------- run / pcall ---------------- *)

let test_run_trivial () = Alcotest.(check int) "value" 5 (S.run (fun () -> 5))

let test_run_exception () =
  match S.run (fun () -> raise Exit) with
  | (_ : int) -> Alcotest.fail "expected exception"
  | exception Exit -> ()

let test_pcall_values () =
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ]
    (S.run (fun () -> S.pcall [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ]));
  Alcotest.(check (list int)) "empty" [] (S.run (fun () -> S.pcall []));
  let a, b = S.run (fun () -> S.pcall2 (fun () -> "x") (fun () -> 9)) in
  Alcotest.(check string) "fst" "x" a;
  Alcotest.(check int) "snd" 9 b

let test_pcall_nested () =
  let r =
    S.run (fun () ->
        let rec tsum lo hi =
          if lo = hi then lo
          else
            let mid = (lo + hi) / 2 in
            match S.pcall [ (fun () -> tsum lo mid); (fun () -> tsum (mid + 1) hi) ] with
            | [ a; b ] -> a + b
            | _ -> assert false
        in
        tsum 1 100)
  in
  Alcotest.(check int) "tree sum" 5050 r

let test_pcall_branch_exception () =
  match
    S.run (fun () -> S.pcall [ (fun () -> 1); (fun () -> raise Exit) ])
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Exit -> ()

let test_yield_interleaves () =
  (* Two branches record their steps; with yields, the trace alternates. *)
  let trace = ref [] in
  let mark tag = trace := tag :: !trace in
  ignore
    (S.run (fun () ->
         S.pcall
           [
             (fun () -> mark "a1"; S.yield (); mark "a2"; S.yield (); mark "a3");
             (fun () -> mark "b1"; S.yield (); mark "b2"; S.yield (); mark "b3");
           ]));
  Alcotest.(check (list string)) "alternating"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (List.rev !trace)

(* ---------------- spawn / control / resume ---------------- *)

let test_spawn_transparent () =
  Alcotest.(check int) "normal" 3 (S.run (fun () -> S.spawn (fun _c -> 3)))

let test_control_same_fiber () =
  let r =
    S.run (fun () -> S.spawn (fun c -> 1 + S.control c (fun k -> 10 * S.resume k 2)))
  in
  Alcotest.(check int) "compose" 30 r

let test_control_cross_fiber () =
  (* The capture happens inside a pcall branch; the pruned subtree (the
     whole fork) is grafted back by resume, completing the fork. *)
  let r =
    S.run (fun () ->
        S.spawn (fun c ->
            let vs =
              S.pcall
                [ (fun () -> 1); (fun () -> S.control c (fun k -> S.resume k 2)) ]
            in
            List.fold_left ( + ) 0 vs))
  in
  Alcotest.(check int) "cross-fiber" 3 r

let test_control_prunes_sibling () =
  (* The sibling's pending work is suspended inside the pk; dropping the pk
     abandons it, so its effects after suspension never happen. *)
  let cell = ref 0 in
  let r =
    S.run (fun () ->
        S.spawn (fun c ->
            let _ =
              S.pcall
                [
                  (fun () ->
                    S.yield ();
                    (* runs only if the subtree survives *)
                    cell := 1;
                    0);
                  (fun () -> S.control c (fun _k -> 7));
                ]
            in
            99))
  in
  Alcotest.(check int) "abort value" 7 r;
  Alcotest.(check int) "sibling abandoned" 0 !cell

let test_dead_controller () =
  match
    S.run (fun () ->
        let leaked = ref None in
        ignore (S.spawn (fun c -> leaked := Some c; 0));
        S.control (Option.get !leaked) (fun _k -> 0))
  with
  | (_ : int) -> Alcotest.fail "expected Dead_controller"
  | exception S.Dead_controller -> ()

let test_dead_controller_catchable () =
  let r =
    S.run (fun () ->
        let leaked = ref None in
        ignore (S.spawn (fun c -> leaked := Some c; 0));
        try S.control (Option.get !leaked) (fun _k -> 0)
        with S.Dead_controller -> 42)
  in
  Alcotest.(check int) "caught in fiber" 42 r

let test_expired_pk () =
  let r =
    S.run (fun () ->
        S.spawn (fun c ->
            1
            + S.control c (fun k ->
                  let a = S.resume k 2 in
                  match S.resume k 3 with
                  | _ -> -1
                  | exception S.Expired_pk -> 100 + a)))
  in
  Alcotest.(check int) "one-shot pk" 103 r

let test_not_in_scheduler () =
  match S.yield () with
  | () -> Alcotest.fail "expected Not_in_scheduler"
  | exception S.Not_in_scheduler -> ()

let test_nested_spawn_cross_fiber () =
  (* Exit through the OUTER controller from inside a doubly nested pcall
     under an inner spawn: crosses the inner root and two forks. *)
  let r =
    S.run (fun () ->
        S.spawn (fun outer ->
            1000
            + S.spawn (fun _inner ->
                  let vs =
                    S.pcall
                      [
                        (fun () ->
                          match
                            S.pcall
                              [ (fun () -> S.control outer (fun _k -> 7)); (fun () -> 1) ]
                          with
                          | [ a; b ] -> a + b
                          | _ -> assert false);
                        (fun () -> 2);
                      ]
                  in
                  List.fold_left ( + ) 0 vs)))
  in
  Alcotest.(check int) "deep cross-fiber exit" 7 r

(* ---------------- derived operators ---------------- *)

let test_spawn_exit () =
  Alcotest.(check int) "abort" 0
    (S.run (fun () -> Ops.spawn_exit (fun e -> 1 + e.Ops.exit 0)));
  Alcotest.(check int) "normal" 9 (S.run (fun () -> Ops.spawn_exit (fun _ -> 9)))

let test_spawn_exit_across_pcall () =
  let r =
    S.run (fun () ->
        Ops.with_exit (fun exit ->
            let p ls =
              List.fold_left
                (fun acc x ->
                  S.yield ();
                  if x = 0 then exit 0;
                  acc * x)
                1 ls
            in
            match S.pcall [ (fun () -> p [ 1; 2; 0 ]); (fun () -> p [ 3; 4; 5 ]) ] with
            | [ a; b ] -> a * b
            | _ -> assert false))
  in
  Alcotest.(check int) "zero aborts both" 0 r

let test_first_true () =
  Alcotest.(check (option int)) "second wins" (Some 2)
    (S.run (fun () ->
         Ops.first_true [ (fun () -> None); (fun () -> Some 2) ]));
  Alcotest.(check (option int)) "none" None
    (S.run (fun () -> Ops.first_true [ (fun () -> None); (fun () -> None) ]));
  Alcotest.(check (option int)) "empty" None (S.run (fun () -> Ops.first_true []))

let test_parallel_or_and () =
  Alcotest.(check bool) "or true" true
    (S.run (fun () -> Ops.parallel_or [ (fun () -> false); (fun () -> true) ]));
  Alcotest.(check bool) "or false" false
    (S.run (fun () -> Ops.parallel_or [ (fun () -> false); (fun () -> false) ]));
  Alcotest.(check bool) "and true" true
    (S.run (fun () -> Ops.parallel_and [ (fun () -> true); (fun () -> true) ]));
  Alcotest.(check bool) "and false" false
    (S.run (fun () -> Ops.parallel_and [ (fun () -> true); (fun () -> false) ]))

let test_parallel_map () =
  Alcotest.(check (list int)) "squares" [ 1; 4; 9 ]
    (S.run (fun () -> Ops.parallel_map (fun x -> x * x) [ 1; 2; 3 ]));
  Alcotest.(check (list int)) "empty" [] (S.run (fun () -> Ops.parallel_map succ []))

let test_parallel_or_abandons_divergent () =
  let diverge () =
    let rec loop () =
      S.yield ();
      loop ()
    in
    loop ()
  in
  Alcotest.(check bool) "divergent abandoned" true
    (S.run (fun () -> Ops.parallel_or [ diverge; (fun () -> true) ]))

(* ---------------- parallel search ---------------- *)

let tree16 = Ops.perfect ~depth:4 (fun i -> i)

let test_tree_builders () =
  let rec count = function
    | Ops.Leaf -> 0
    | Ops.Node (l, _, r) -> 1 + count l + count r
  in
  Alcotest.(check int) "perfect size" 15 (count tree16);
  Alcotest.(check int) "of_list size" 5 (count (Ops.tree_of_list [ 1; 2; 3; 4; 5 ]))

let test_search_all () =
  let evens = S.run (fun () -> Ops.search_all tree16 (fun x -> x mod 2 = 0)) in
  Alcotest.(check (list int)) "evens"
    [ 0; 2; 4; 6; 8; 10; 12; 14 ]
    (List.sort compare evens);
  Alcotest.(check (list int)) "none" []
    (S.run (fun () -> Ops.search_all tree16 (fun x -> x > 99)));
  Alcotest.(check (list int)) "all"
    (List.init 15 (fun i -> i))
    (List.sort compare (S.run (fun () -> Ops.search_all tree16 (fun _ -> true))))

let test_search_first () =
  (match S.run (fun () -> Ops.search_first tree16 (fun x -> x mod 5 = 2)) with
  | Some v -> Alcotest.(check bool) "valid match" true (v mod 5 = 2)
  | None -> Alcotest.fail "expected a match");
  Alcotest.(check (option int)) "no match" None
    (S.run (fun () -> Ops.search_first tree16 (fun x -> x > 99)))

let test_search_stream_stepwise () =
  let stream = ref (S.run (fun () -> Ops.parallel_search tree16 (fun x -> x mod 7 = 0))) in
  (* The continuation thunk must be resumed inside a scheduler, so drive
     the whole consumption in one run. *)
  ignore stream;
  let collected =
    S.run (fun () ->
        let rec go acc s =
          match s with
          | Ops.Snil -> List.rev acc
          | Ops.Scons (v, rest) -> go (v :: acc) (rest ())
        in
        go [] (Ops.parallel_search tree16 (fun x -> x mod 7 = 0)))
  in
  Alcotest.(check (list int)) "multiples of 7" [ 0; 7; 14 ] (List.sort compare collected)

(* Enumerate decision words over the Driven policy, collecting outcomes. *)
let explore ?(alphabet = 2) ?(depth = 8) (program : unit -> int) =
  let outcomes = Hashtbl.create 8 in
  let rec words d = if d = 0 then [ [] ] else
    List.concat_map (fun w -> List.init alphabet (fun c -> c :: w)) (words (d - 1))
  in
  List.iter
    (fun word ->
      let remaining = ref word in
      let pick n =
        if n <= 1 then 0
        else
          match !remaining with
          | [] -> 0
          | c :: rest ->
              remaining := rest;
              c mod n
      in
      Hashtbl.replace outcomes (S.run ~policy:(S.Driven pick) program) ())
    (words depth);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) outcomes [])

let test_driven_pure_single_outcome () =
  let program () =
    let vs = S.pcall [ (fun () -> S.yield (); 1); (fun () -> S.yield (); 2) ] in
    List.fold_left ( + ) 0 vs
  in
  Alcotest.(check (list int)) "confluent" [ 3 ] (explore program)

let test_driven_exit_always_wins () =
  let program () =
    Ops.with_exit (fun exit ->
        let vs =
          S.pcall
            [
              (fun () -> S.yield (); exit 9; 0);
              (fun () -> S.yield (); S.yield (); 1);
            ]
        in
        List.fold_left ( + ) 0 vs)
  in
  Alcotest.(check (list int)) "always aborts" [ 9 ] (explore program)

let test_driven_race_detected () =
  let program () =
    let cell = ref 0 in
    let _ =
      S.pcall
        [ (fun () -> S.yield (); cell := 1); (fun () -> S.yield (); cell := 2) ]
    in
    !cell
  in
  Alcotest.(check (list int)) "both writers observed" [ 1; 2 ]
    (explore ~alphabet:2 ~depth:8 program)

let test_search_schedule_independence () =
  let run policy =
    List.sort compare
      (S.run ~policy (fun () -> Ops.search_all tree16 (fun x -> x mod 3 = 1)))
  in
  let expected = run S.Tree_order in
  List.iter
    (fun seed ->
      Alcotest.(check (list int)) "same set" expected (run (S.Randomized (Int64.of_int seed))))
    [ 1; 7; 13; 99 ]

(* ---------------- channels ---------------- *)

module Ch = Pcont_sched.Channel

let test_channel_basic () =
  let r =
    S.run (fun () ->
        let ch = Ch.create () in
        match
          S.pcall
            [
              (fun () ->
                List.iter (Ch.send ch) [ 1; 2; 3 ];
                Ch.close ch;
                0);
              (fun () ->
                let acc = ref 0 in
                Ch.iter (fun x -> acc := (!acc * 10) + x) ch;
                !acc);
            ]
        with
        | [ _; v ] -> v
        | _ -> assert false)
  in
  Alcotest.(check int) "ordered" 123 r

let test_channel_backpressure () =
  (* capacity 1: the producer can never run more than one element ahead. *)
  let r =
    S.run (fun () ->
        let ch = Ch.create ~capacity:1 () in
        let max_lead = ref 0 in
        let sent = ref 0 and received = ref 0 in
        match
          S.pcall
            [
              (fun () ->
                for i = 1 to 20 do
                  Ch.send ch i;
                  incr sent;
                  max_lead := max !max_lead (!sent - !received)
                done;
                Ch.close ch;
                0);
              (fun () ->
                Ch.iter (fun _ -> incr received) ch;
                !received);
            ]
        with
        | [ _; n ] -> (n, !max_lead)
        | _ -> assert false)
  in
  (match r with
  | 20, lead -> Alcotest.(check bool) "bounded lead" true (lead <= 2)
  | n, _ -> Alcotest.failf "received %d" n)

let test_channel_closed_errors () =
  (match
     S.run (fun () ->
         let ch = Ch.create () in
         Ch.close ch;
         try
           Ch.send ch 1;
           false
         with Ch.Closed -> true)
   with
  | true -> ()
  | false -> Alcotest.fail "send on closed should raise");
  match
    S.run (fun () ->
        let ch = Ch.create () in
        Ch.send ch 7;
        Ch.close ch;
        let a = Ch.recv_opt ch in
        let b = Ch.recv_opt ch in
        (a, b))
  with
  | Some 7, None -> ()
  | _ -> Alcotest.fail "drain then None"

let test_channel_try_recv () =
  match
    S.run (fun () ->
        let ch = Ch.create () in
        let empty = Ch.try_recv ch in
        Ch.send ch 3;
        let full = Ch.try_recv ch in
        (empty, full, Ch.length ch))
  with
  | None, Some 3, 0 -> ()
  | _ -> Alcotest.fail "try_recv"

let test_channel_of_producer () =
  let r =
    S.run (fun () ->
        let ch = Ch.of_producer (fun ~send -> List.iter send [ 5; 6; 7 ]) in
        let acc = ref [] in
        Ch.iter (fun x -> acc := x :: !acc) ch;
        List.rev !acc)
  in
  Alcotest.(check (list int)) "producer future" [ 5; 6; 7 ] r

let test_channel_blocked_consumer_capturable () =
  (* A branch blocked on recv is an ordinary yielding branch: an exit can
     prune it. *)
  let r =
    S.run (fun () ->
        Ops.with_exit (fun exit ->
            let ch : int Ch.t = Ch.create () in
            match
              S.pcall
                [
                  (fun () -> Ch.recv ch (* blocks forever: never sent *));
                  (fun () ->
                    S.yield ();
                    exit 9;
                    0);
                ]
            with
            | _ -> -1))
  in
  Alcotest.(check int) "pruned while blocked" 9 r

(* ---------------- futures: the Section 8 forest ---------------- *)

let test_future_basic () =
  let r =
    S.run (fun () ->
        let f = S.future (fun () -> 6 * 7) in
        S.touch f)
  in
  Alcotest.(check int) "touch" 42 r

let test_future_runs_concurrently () =
  (* The future makes progress while the main tree works. *)
  let r =
    S.run (fun () ->
        let steps = ref [] in
        let f =
          S.future (fun () ->
              steps := "f1" :: !steps;
              S.yield ();
              steps := "f2" :: !steps;
              9)
        in
        steps := "m1" :: !steps;
        S.yield ();
        steps := "m2" :: !steps;
        let v = S.touch f in
        (v, List.rev !steps))
  in
  (match r with
  | 9, trace ->
      Alcotest.(check bool) "interleaved" true
        (List.mem "f1" trace && List.mem "m1" trace);
      Alcotest.(check (list string)) "trace" [ "m1"; "f1"; "m2"; "f2" ] trace
  | _ -> Alcotest.fail "wrong value")

let test_future_poll () =
  let r =
    S.run (fun () ->
        let f = S.future (fun () -> 5) in
        let before = S.poll f in
        let v = S.touch f in
        let after = S.poll f in
        (before, v, after))
  in
  Alcotest.(check bool) "not ready at once" true (match r with None, 5, Some 5 -> true | _ -> false)

let test_future_discarded () =
  (* Main finishes first; the untouched future's effects stop happening. *)
  let cell = ref 0 in
  let r =
    S.run (fun () ->
        let _f =
          S.future (fun () ->
              S.yield ();
              S.yield ();
              S.yield ();
              cell := 99;
              0)
        in
        7)
  in
  Alcotest.(check int) "main value" 7 r;
  Alcotest.(check int) "future abandoned" 0 !cell

let test_future_controller_cannot_cross () =
  (* A controller from the main tree is dead inside a future's tree: the
     forest rule — control operations affect only their own tree. *)
  let r =
    S.run (fun () ->
        S.spawn (fun c ->
            let f =
              S.future (fun () ->
                  try S.control c (fun _k -> -1) with S.Dead_controller -> 41)
            in
            1 + S.touch f))
  in
  Alcotest.(check int) "boundary enforced" 42 r

let test_future_inside_pcall_capture () =
  (* Pruning a subtree that created a future does not disturb the future's
     independent tree: the pk is dropped, but the future still completes
     and can be touched from the main tree. *)
  let r =
    S.run (fun () ->
        let shared = ref None in
        let v =
          Ops.with_exit (fun exit ->
              let vs =
                S.pcall
                  [
                    (fun () ->
                      shared := Some (S.future (fun () -> S.yield (); 10));
                      S.yield ();
                      exit 5;
                      0);
                    (fun () -> 1);
                  ]
              in
              List.fold_left ( + ) 0 vs)
        in
        let fv = match !shared with Some f -> S.touch f | None -> -1 in
        v + fv)
  in
  Alcotest.(check int) "future survives pruning" 15 r

let test_future_many () =
  let r =
    S.run (fun () ->
        let fs = List.init 10 (fun i -> S.future (fun () -> S.yield (); i * i)) in
        List.fold_left (fun acc f -> acc + S.touch f) 0 fs)
  in
  Alcotest.(check int) "sum of squares" 285 r

(* ---------------- parked waiters and deadlock detection ---------------- *)

let check_deadlock name needles thunk =
  match S.run thunk with
  | (_ : int) -> Alcotest.failf "%s: expected Deadlock" name
  | exception S.Deadlock msg ->
      List.iter
        (fun needle ->
          let mem =
            let nl = String.length needle and ml = String.length msg in
            let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S mentions %S" name msg needle)
            true mem)
        needles

let test_deadlock_recv_never_sent () =
  check_deadlock "recv" [ "channel.recv" ] (fun () ->
      let ch : int Ch.t = Ch.create () in
      Ch.recv ch)

let test_deadlock_send_no_receiver () =
  check_deadlock "send" [ "channel.send" ] (fun () ->
      let ch = Ch.create ~capacity:1 () in
      Ch.send ch 1;
      Ch.send ch 2;
      0)

let test_deadlock_touch_orphaned_future () =
  (* The future's tree blocks on a channel nobody sends to; the main
     fiber blocks on the future: both resources are named. *)
  check_deadlock "orphaned future" [ "future"; "channel.recv" ] (fun () ->
      let ch : int Ch.t = Ch.create () in
      let f = S.future (fun () -> Ch.recv ch) in
      S.touch f)

let test_waitset_block_wake () =
  (* The primitive user-level protocol: park on a waitset, re-check on
     wake-up. *)
  let r =
    S.run (fun () ->
        let ws = S.Waitset.create "test.gate" in
        let flag = ref false in
        S.pcall2
          (fun () ->
            while not !flag do
              S.block ws
            done;
            7)
          (fun () ->
            S.yield ();
            flag := true;
            S.wake ws;
            0))
  in
  Alcotest.(check bool) "gate released" true (r = (7, 0))

let test_close_wakes_parked_sender () =
  (* A sender parked on a full channel observes a close that happens
     under it: close wakes it and the re-check raises Closed (pinned
     semantics — no lost wakeup, no silent enqueue onto a closed
     channel). *)
  let r =
    S.run (fun () ->
        let ch = Ch.create ~capacity:1 () in
        S.pcall2
          (fun () ->
            Ch.send ch 1;
            (* full, nobody receiving: parks *)
            try
              Ch.send ch 2;
              0
            with Ch.Closed -> 1)
          (fun () ->
            S.yield ();
            Ch.close ch;
            0))
  in
  Alcotest.(check bool) "sender raised Closed" true (r = (1, 0))

let test_close_wakes_parked_receiver () =
  let r =
    S.run (fun () ->
        let ch : int Ch.t = Ch.create () in
        S.pcall2
          (fun () -> match Ch.recv_opt ch with None -> 1 | Some _ -> 0)
          (fun () ->
            S.yield ();
            Ch.close ch;
            0))
  in
  Alcotest.(check bool) "receiver got end-of-stream" true (r = (1, 0))

let test_of_producer_exception_closes () =
  (* A producer that dies mid-stream must still close the channel (or
     consumers deadlock), and its exception must not abort the run. *)
  let r =
    S.run (fun () ->
        let ch =
          Ch.of_producer (fun ~send ->
              send 1;
              send 2;
              failwith "producer crashed")
        in
        let acc = ref [] in
        Ch.iter (fun x -> acc := x :: !acc) ch;
        List.rev !acc)
  in
  Alcotest.(check (list int)) "prefix then clean close" [ 1; 2 ] r

let test_parked_waiter_graft_resumes () =
  (* A receiver parked on an empty channel is pruned into a process
     continuation and grafted back by resume; the graft revives it as a
     runnable leaf that re-checks (and re-parks on) the channel, so a
     later send completes it. *)
  let r =
    S.run (fun () ->
        let ch : int Ch.t = Ch.create () in
        S.pcall2
          (fun () ->
            S.spawn (fun c ->
                let vs =
                  S.pcall
                    [
                      (fun () -> Ch.recv ch);
                      (fun () ->
                        S.yield ();
                        S.control c (fun k -> S.resume k 99));
                    ]
                in
                match vs with [ a; b ] -> (100 * b) + a | _ -> assert false))
          (fun () ->
            (* let the receiver park and the capture + graft happen first *)
            S.yield ();
            S.yield ();
            S.yield ();
            Ch.send ch 5;
            0))
  in
  Alcotest.(check bool) "graft revived the parked receiver" true (r = (9905, 0))

(* Like [explore], but a run may legitimately end in Deadlock: record it
   as a distinguished outcome.  Every decision word must terminate — a
   blocked program parks instead of spinning, so exploration cannot hang. *)
let explore_deadlock ?(alphabet = 2) ?(depth = 10) (program : unit -> int) =
  let outcomes = Hashtbl.create 8 in
  let rec words d =
    if d = 0 then [ [] ]
    else List.concat_map (fun w -> List.init alphabet (fun c -> c :: w)) (words (d - 1))
  in
  List.iter
    (fun word ->
      let remaining = ref word in
      let pick n =
        if n <= 1 then 0
        else
          match !remaining with
          | [] -> 0
          | c :: rest ->
              remaining := rest;
              c mod n
      in
      let o =
        match S.run ~policy:(S.Driven pick) program with
        | v -> string_of_int v
        | exception S.Deadlock _ -> "deadlock"
      in
      Hashtbl.replace outcomes o ())
    (words depth);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) outcomes [])

let test_driven_channel_handoff () =
  (* Every interleaving of a two-fiber handoff either completes (correct
     program) or reports Deadlock (receiver expects two values, one is
     sent) — never spins forever. *)
  let handoff () =
    let ch = Ch.create ~capacity:1 () in
    match S.pcall [ (fun () -> Ch.send ch 7; 0); (fun () -> Ch.recv ch) ] with
    | [ _; v ] -> v
    | _ -> assert false
  in
  Alcotest.(check (list string)) "handoff always completes" [ "7" ]
    (explore_deadlock handoff);
  let stuck () =
    let ch = Ch.create ~capacity:1 () in
    match
      S.pcall [ (fun () -> Ch.send ch 7; 0); (fun () -> Ch.recv ch + Ch.recv ch) ]
    with
    | [ _; v ] -> v
    | _ -> assert false
  in
  Alcotest.(check (list string)) "missing send always diagnosed" [ "deadlock" ]
    (explore_deadlock stuck)

let () =
  Alcotest.run "sched"
    [
      ( "pcall",
        [
          Alcotest.test_case "trivial run" `Quick test_run_trivial;
          Alcotest.test_case "exception" `Quick test_run_exception;
          Alcotest.test_case "values" `Quick test_pcall_values;
          Alcotest.test_case "nested" `Quick test_pcall_nested;
          Alcotest.test_case "branch exception" `Quick test_pcall_branch_exception;
          Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
        ] );
      ( "control",
        [
          Alcotest.test_case "spawn transparent" `Quick test_spawn_transparent;
          Alcotest.test_case "same-fiber compose" `Quick test_control_same_fiber;
          Alcotest.test_case "cross-fiber capture" `Quick test_control_cross_fiber;
          Alcotest.test_case "prunes siblings" `Quick test_control_prunes_sibling;
          Alcotest.test_case "dead controller" `Quick test_dead_controller;
          Alcotest.test_case "dead controller catchable" `Quick test_dead_controller_catchable;
          Alcotest.test_case "expired pk" `Quick test_expired_pk;
          Alcotest.test_case "outside scheduler" `Quick test_not_in_scheduler;
          Alcotest.test_case "deep cross-fiber exit" `Quick test_nested_spawn_cross_fiber;
        ] );
      ( "ops",
        [
          Alcotest.test_case "spawn_exit" `Quick test_spawn_exit;
          Alcotest.test_case "exit across pcall" `Quick test_spawn_exit_across_pcall;
          Alcotest.test_case "first_true" `Quick test_first_true;
          Alcotest.test_case "parallel or/and" `Quick test_parallel_or_and;
          Alcotest.test_case "abandons divergent" `Quick test_parallel_or_abandons_divergent;
          Alcotest.test_case "parallel_map" `Quick test_parallel_map;
        ] );
      ( "channel",
        [
          Alcotest.test_case "basic pipeline" `Quick test_channel_basic;
          Alcotest.test_case "backpressure" `Quick test_channel_backpressure;
          Alcotest.test_case "closed errors" `Quick test_channel_closed_errors;
          Alcotest.test_case "try_recv" `Quick test_channel_try_recv;
          Alcotest.test_case "of_producer" `Quick test_channel_of_producer;
          Alcotest.test_case "blocked consumer capturable" `Quick
            test_channel_blocked_consumer_capturable;
        ] );
      ( "futures",
        [
          Alcotest.test_case "basic touch" `Quick test_future_basic;
          Alcotest.test_case "runs concurrently" `Quick test_future_runs_concurrently;
          Alcotest.test_case "poll" `Quick test_future_poll;
          Alcotest.test_case "discarded with main" `Quick test_future_discarded;
          Alcotest.test_case "controller cannot cross trees" `Quick
            test_future_controller_cannot_cross;
          Alcotest.test_case "survives sibling pruning" `Quick
            test_future_inside_pcall_capture;
          Alcotest.test_case "many futures" `Quick test_future_many;
        ] );
      ( "search",
        [
          Alcotest.test_case "tree builders" `Quick test_tree_builders;
          Alcotest.test_case "search_all" `Quick test_search_all;
          Alcotest.test_case "search_first" `Quick test_search_first;
          Alcotest.test_case "stream stepwise" `Quick test_search_stream_stepwise;
          Alcotest.test_case "schedule independence" `Quick test_search_schedule_independence;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "pure: single outcome" `Quick test_driven_pure_single_outcome;
          Alcotest.test_case "exit always wins" `Quick test_driven_exit_always_wins;
          Alcotest.test_case "race detected" `Quick test_driven_race_detected;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "recv, never sent" `Quick test_deadlock_recv_never_sent;
          Alcotest.test_case "send, no receiver" `Quick test_deadlock_send_no_receiver;
          Alcotest.test_case "touch of orphaned future" `Quick
            test_deadlock_touch_orphaned_future;
          Alcotest.test_case "waitset block/wake" `Quick test_waitset_block_wake;
          Alcotest.test_case "close wakes parked sender" `Quick
            test_close_wakes_parked_sender;
          Alcotest.test_case "close wakes parked receiver" `Quick
            test_close_wakes_parked_receiver;
          Alcotest.test_case "of_producer exception closes" `Quick
            test_of_producer_exception_closes;
          Alcotest.test_case "graft revives parked waiter" `Quick
            test_parked_waiter_graft_resumes;
          Alcotest.test_case "driven channel handoff" `Quick
            test_driven_channel_handoff;
        ] );
    ]
