(* Tests for the observability library (lib/obs) and its wiring into
   both schedulers: JSON helpers, metrics histograms, trace determinism
   (same seed => byte-identical traces), Chrome trace well-formedness,
   and the no-handle path being observationally identical. *)

module Obs = Pcont_obs.Obs
module E = Pcont_obs.Obs.Event
module Json = Pcont_obs.Obs.Json
module Interp = Pcont_syntax.Interp
module Pstack = Pcont_pstack
module Concur = Pcont_pstack.Concur
module Sched = Pcont_sched.Sched
module Channel = Pcont_sched.Channel
module C = Pcont_util.Counters

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------------- JSON ---------------- *)

let test_json_escape () =
  Alcotest.(check string) "plain" "abc" (Json.escape "abc");
  Alcotest.(check string) "quote" "a\\\"b" (Json.escape "a\"b");
  Alcotest.(check string) "backslash" "a\\\\b" (Json.escape "a\\b");
  Alcotest.(check string) "newline+tab" "a\\nb\\tc" (Json.escape "a\nb\tc");
  Alcotest.(check string) "control" "\\u0001" (Json.escape "\x01");
  (* Bytes >= 0x80 must pass through untouched — OCaml's %S turns them
     into decimal escapes like \195, which is not JSON. *)
  Alcotest.(check string) "high bytes pass through" "caf\xc3\xa9"
    (Json.escape "caf\xc3\xa9")

let test_json_quote_parses () =
  (* Every quoted string must round-trip through the parser — the
     property the old %S-based bench writer violated. *)
  List.iter
    (fun s ->
      match Json.parse (Json.quote s) with
      | Ok (Json.Str _) -> ()
      | Ok _ -> Alcotest.failf "parsed %S to a non-string" s
      | Error m -> Alcotest.failf "quote %S does not parse: %s" s m)
    [ "plain"; "with \"quotes\""; "back\\slash"; "new\nline"; "caf\xc3\xa9"; "\x01\x02" ]

let test_json_parse () =
  (match Json.parse {| {"a": [1, 2.5, true, null], "b": {"c": "x"}} |} with
  | Ok v -> (
      (match Json.member "a" v with
      | Some (Json.Arr [ Json.Num 1.; Json.Num 2.5; Json.Bool true; Json.Null ]) -> ()
      | _ -> Alcotest.fail "member a");
      match Json.member "b" v with
      | Some b -> (
          match Json.member "c" b with
          | Some (Json.Str "x") -> ()
          | _ -> Alcotest.fail "member b.c")
      | None -> Alcotest.fail "member b")
  | Error m -> Alcotest.failf "parse failed: %s" m);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "\"\\q\""; "[1] trailing"; "\"\x01\""; "nul" ]

let test_json_parse_edges () =
  (* Deep nesting: the parser must take 512 levels of arrays without
     blowing the stack or mis-counting brackets. *)
  let deep n =
    String.concat "" (List.init n (fun _ -> "["))
    ^ "0"
    ^ String.concat "" (List.init n (fun _ -> "]"))
  in
  (match Json.parse (deep 512) with
  | Ok v ->
      let rec depth = function Json.Arr [ x ] -> 1 + depth x | _ -> 0 in
      Alcotest.(check int) "depth preserved" 512 (depth v)
  | Error m -> Alcotest.failf "deep nesting rejected: %s" m);
  (* Escape sequences, including \uXXXX for ASCII code points. *)
  (match Json.parse {|"A\t\"\\\/b"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "escapes decode" "A\t\"\\/b" s
  | Ok _ -> Alcotest.fail "escaped string parsed to non-string"
  | Error m -> Alcotest.failf "escapes rejected: %s" m);
  (match Json.parse "\"\\u0041\\u00e9\"" with
  | Ok (Json.Str s) ->
      (* ASCII \u escapes decode; non-ASCII ones are kept textually. *)
      Alcotest.(check string) "unicode escapes" "A\\u00e9" s
  | Ok _ -> Alcotest.fail "\\u string parsed to non-string"
  | Error m -> Alcotest.failf "\\u escapes rejected: %s" m);
  (* Truncated input of every flavour is an error, not a crash. *)
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted truncated JSON %S" bad
      | Error _ -> ())
    [ "{\"a\":"; "[1, 2"; "\"unterminated"; "\"esc\\"; "\"u\\u00"; "tru"; "-"; "" ];
  (* Duplicate keys: member returns the first binding. *)
  match Json.parse {|{"k": 1, "k": 2}|} with
  | Ok v -> (
      match Json.member "k" v with
      | Some (Json.Num n) -> Alcotest.(check (float 0.)) "first binding wins" 1. n
      | _ -> Alcotest.fail "member k")
  | Error m -> Alcotest.failf "duplicate keys rejected: %s" m

let test_json_to_string () =
  let v =
    Json.Obj
      [
        ("i", Json.Num 42.);
        ("f", Json.Num 2.5);
        ("neg", Json.Num (-17.));
        ("s", Json.Str "a\"b\nc");
        ("arr", Json.Arr [ Json.Bool true; Json.Null ]);
        ("empty", Json.Obj []);
      ]
  in
  let s = Json.to_string v in
  (* Compact, and integral numbers print with no fractional part. *)
  Alcotest.(check string) "serialization"
    {|{"i":42,"f":2.5,"neg":-17,"s":"a\"b\nc","arr":[true,null],"empty":{}}|} s;
  (* Round-trip: parse (to_string v) = v, including field order. *)
  (match Json.parse s with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error m -> Alcotest.failf "to_string output does not parse: %s" m);
  (* Large-but-integral stays exact; non-integral keeps precision. *)
  Alcotest.(check string) "big int" "123456789012" (Json.to_string (Json.Num 123456789012.));
  match Json.parse (Json.to_string (Json.Num 0.1)) with
  | Ok (Json.Num f) -> Alcotest.(check (float 1e-15)) "precision kept" 0.1 f
  | _ -> Alcotest.fail "0.1 round-trip"

(* ---------------- metrics ---------------- *)

let test_metrics_histogram () =
  let m = Obs.Metrics.create () in
  List.iter (Obs.Metrics.observe m "h") [ 0; 1; 2; 3; 9; 3_000_000 ];
  match Obs.Metrics.find m "h" with
  | None -> Alcotest.fail "histogram not created"
  | Some h ->
      Alcotest.(check int) "count" 6 (Obs.Metrics.hist_count h);
      Alcotest.(check int) "sum" 3_000_015 (Obs.Metrics.hist_sum h);
      Alcotest.(check int) "max" 3_000_000 (Obs.Metrics.hist_max h);
      let buckets = Obs.Metrics.hist_buckets h in
      Alcotest.(check (list (pair string int)))
        "buckets"
        [ ("<=1", 2); ("<=2", 1); ("<=4", 1); ("<=16", 1) ]
        (List.filter (fun (l, _) -> l.[0] = '<') buckets);
      Alcotest.(check bool) "overflow bucket" true
        (List.mem_assoc ">1048576" buckets)

let test_metrics_overflow_bucket () =
  (* Values past the last bound land in the overflow bucket, which must
     render as ">N" (not "<=N") both in hist_buckets and in pp output. *)
  let m = Obs.Metrics.create () in
  List.iter (Obs.Metrics.observe m "big") [ 2_000_000; 5_000_000 ];
  (match Obs.Metrics.find m "big" with
  | None -> Alcotest.fail "histogram not created"
  | Some h ->
      Alcotest.(check (list (pair string int)))
        "only the overflow bucket"
        [ (">1048576", 2) ]
        (Obs.Metrics.hist_buckets h));
  let rendered = Format.asprintf "%a" Obs.Metrics.pp m in
  Alcotest.(check bool) "pp shows >N row" true (contains ~needle:">1048576" rendered);
  Alcotest.(check bool) "pp shows stats" true
    (contains ~needle:"n=2 sum=7000000 max=5000000" rendered)

let test_metrics_share_counters () =
  let c = C.create () in
  let m = Obs.Metrics.create ~counters:c () in
  Obs.Metrics.incr m "x";
  Obs.Metrics.add m "x" 2;
  Alcotest.(check int) "shared table" 3 (C.get c "x")

(* ---------------- trace capture helpers ---------------- *)

let jsonl_handle () =
  let buf = Buffer.create 1024 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
  (o, buf)

let chrome_handle () =
  let buf = Buffer.create 1024 in
  let o = Obs.create () in
  Obs.attach o (Obs.Sink.chrome (Buffer.add_string buf));
  (o, buf)

(* One pstack-scheduler run of [src] with a fresh interpreter, returning
   the trace bytes.  Exercises fork, capture, graft, future and park. *)
let pstack_trace ~seed src =
  let o, buf = jsonl_handle () in
  let t = Interp.create () in
  let mode = Interp.Concurrent (Concur.Randomized (Int64.of_int seed)) in
  ignore (Interp.eval_value ~mode ~obs:o t src);
  Obs.close o;
  Buffer.contents buf

let pstack_src =
  "(let ([f (future (* 6 7))])\n\
  \  (pcall +\n\
  \    (spawn (lambda (c) (pcall + 1 (c (lambda (k) (* (k 2) (k 5)))))))\n\
  \    (touch f)))"

(* A native-scheduler workload covering pcall, spawn/control/resume,
   futures and channels (sends park on the small buffer). *)
let native_main () =
  let ch = Channel.create ~capacity:2 () in
  let f = Sched.future (fun () -> 21) in
  let captured =
    Sched.spawn (fun c ->
        let a, b =
          Sched.pcall2
            (fun () -> Sched.control c (fun pk -> Sched.resume pk 10))
            (fun () ->
              Sched.yield ();
              5)
        in
        a + b)
  in
  let xs =
    Sched.pcall
      [
        (fun () ->
          List.iter (Channel.send ch) [ 1; 2; 3; 4 ];
          Channel.close ch;
          0);
        (fun () ->
          let s = ref 0 in
          Channel.iter (fun v -> s := !s + v) ch;
          !s);
        (fun () -> Sched.touch f);
      ]
  in
  captured + List.fold_left ( + ) 0 xs

let native_trace ~seed () =
  let o, buf = jsonl_handle () in
  let r = Sched.run ~policy:(Sched.Randomized (Int64.of_int seed)) ~obs:o native_main in
  Obs.close o;
  (r, Buffer.contents buf)

(* ---------------- determinism ---------------- *)

let check_trace_lines trace =
  Alcotest.(check bool) "trace is non-trivial" true (String.length trace > 200);
  String.split_on_char '\n' trace
  |> List.filter (fun l -> l <> "")
  |> List.iteri (fun i line ->
         match Json.parse line with
         | Error m -> Alcotest.failf "line %d is not JSON (%s): %s" i m line
         | Ok v -> (
             match Json.member "seq" v with
             | Some (Json.Num s) ->
                 Alcotest.(check int) "dense sequence numbers" i (int_of_float s)
             | _ -> Alcotest.failf "line %d has no seq" i))

let test_pstack_determinism () =
  let a = pstack_trace ~seed:42 pstack_src in
  let b = pstack_trace ~seed:42 pstack_src in
  check_trace_lines a;
  Alcotest.(check bool) "saw a capture" true
    (contains ~needle:"\"ev\":\"capture\"" a);
  Alcotest.(check string) "same seed, byte-identical trace" a b;
  let c = pstack_trace ~seed:43 pstack_src in
  Alcotest.(check bool) "different seed, different schedule allowed" true
    (String.length c > 0)

let test_native_determinism () =
  let r1, a = native_trace ~seed:7 () in
  let r2, b = native_trace ~seed:7 () in
  Alcotest.(check int) "same result" r1 r2;
  check_trace_lines a;
  Alcotest.(check string) "same seed, byte-identical trace" a b;
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (contains ~needle a))
    [
      "\"ev\":\"spawn\"";
      "\"ev\":\"capture\"";
      "\"ev\":\"reinstate\"";
      "\"ev\":\"park\"";
      "\"ev\":\"wake\"";
      "\"ev\":\"send\"";
      "\"ev\":\"recv\"";
      "\"ev\":\"exit\"";
    ]

(* ---------------- chrome export ---------------- *)

let test_chrome_well_formed () =
  let o, buf = chrome_handle () in
  let r = Sched.run ~obs:o native_main in
  Obs.close o;
  Alcotest.(check bool) "ran" true (r > 0);
  match Json.parse (Buffer.contents buf) with
  | Error m -> Alcotest.failf "chrome output is not JSON: %s" m
  | Ok (Json.Arr records) ->
      Alcotest.(check bool) "has records" true (List.length records > 10);
      (* Per track (tid), B/E pairs must balance and never go negative. *)
      let depth = Hashtbl.create 8 in
      let begins = ref 0 in
      List.iter
        (fun r ->
          let str k = match Json.member k r with Some (Json.Str s) -> Some s | _ -> None in
          let num k = match Json.member k r with Some (Json.Num n) -> Some n | _ -> None in
          match (str "ph", num "tid") with
          | Some "B", Some tid ->
              incr begins;
              let d = try Hashtbl.find depth tid with Not_found -> 0 in
              Hashtbl.replace depth tid (d + 1)
          | Some "E", Some tid ->
              let d = try Hashtbl.find depth tid with Not_found -> 0 in
              if d <= 0 then Alcotest.fail "E without matching B on track";
              Hashtbl.replace depth tid (d - 1)
          | Some ("i" | "M"), _ -> ()
          | Some ph, _ -> Alcotest.failf "unexpected phase %S" ph
          | None, _ -> Alcotest.fail "record without ph")
        records;
      Alcotest.(check bool) "saw run slices" true (!begins > 0);
      Hashtbl.iter
        (fun tid d ->
          if d <> 0 then Alcotest.failf "track %.0f ends with depth %d" tid d)
        depth
  | Ok _ -> Alcotest.fail "chrome output is not an array"

let test_chrome_empty () =
  let o, buf = chrome_handle () in
  Obs.close o;
  match Json.parse (Buffer.contents buf) with
  | Ok (Json.Arr []) -> ()
  | Ok _ -> Alcotest.fail "expected []"
  | Error m -> Alcotest.failf "empty chrome trace invalid: %s" m

(* ---------------- no handle = no observable change ---------------- *)

let counters_list t = C.to_list (Interp.config t).Pstack.Machine.counters

let test_pstack_no_handle_equivalence () =
  let run obs =
    let t = Interp.create () in
    let mode = Interp.Concurrent (Concur.Randomized 99L) in
    let v = Interp.eval_value ~mode ?obs t pstack_src in
    (v, counters_list t)
  in
  let v_plain, c_plain = run None in
  let o, _buf = jsonl_handle () in
  let v_traced, c_traced = run (Some o) in
  Obs.close o;
  Alcotest.(check string) "same value"
    (Pstack.Value.to_string v_plain)
    (Pstack.Value.to_string v_traced);
  Alcotest.(check (list (pair string int))) "same machine counters" c_plain c_traced

let test_native_no_handle_equivalence () =
  let plain = Sched.run ~policy:(Sched.Randomized 5L) native_main in
  let o, _buf = jsonl_handle () in
  let traced = Sched.run ~policy:(Sched.Randomized 5L) ~obs:o native_main in
  Obs.close o;
  Alcotest.(check int) "same result" plain traced

(* ---------------- handle plumbing + summary ---------------- *)

let test_handle_seq_and_clock () =
  let o = Obs.create () in
  Alcotest.(check bool) "no sink" false (Obs.has_sink o);
  Obs.emit o (E.Exit { pid = 0 });
  Obs.emit o (E.Exit { pid = 1 });
  Alcotest.(check int) "seq counts emissions" 2 (Obs.seq o);
  Obs.advance o 5;
  Obs.advance o (-3);
  Alcotest.(check int) "clock advances, never backwards" 5 (Obs.now o)

let test_summary_totals () =
  let s = Obs.Summary.create () in
  let o = Obs.create () in
  Obs.attach o (Obs.Summary.sink s);
  ignore (Sched.run ~obs:o native_main);
  Obs.close o;
  let rows = Obs.Summary.rows s in
  Alcotest.(check bool) "several processes" true (List.length rows > 3);
  let total_fuel = List.fold_left (fun acc (_, r) -> acc + r.Obs.Summary.r_fuel) 0 rows in
  let total_sends = List.fold_left (fun acc (_, r) -> acc + r.Obs.Summary.r_sends) 0 rows in
  let total_recvs = List.fold_left (fun acc (_, r) -> acc + r.Obs.Summary.r_recvs) 0 rows in
  Alcotest.(check bool) "fuel accumulated" true (total_fuel > 0);
  Alcotest.(check int) "channel conservation" total_sends total_recvs

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "escape" `Quick test_json_escape;
          Alcotest.test_case "quote parses" `Quick test_json_quote_parses;
          Alcotest.test_case "parser" `Quick test_json_parse;
          Alcotest.test_case "parser edge cases" `Quick test_json_parse_edges;
          Alcotest.test_case "to_string" `Quick test_json_to_string;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "overflow bucket" `Quick test_metrics_overflow_bucket;
          Alcotest.test_case "shared counters" `Quick test_metrics_share_counters;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pstack trace byte-stable" `Quick test_pstack_determinism;
          Alcotest.test_case "native trace byte-stable" `Quick test_native_determinism;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "well-formed B/E" `Quick test_chrome_well_formed;
          Alcotest.test_case "empty trace" `Quick test_chrome_empty;
        ] );
      ( "transparency",
        [
          Alcotest.test_case "pstack: no handle equivalent" `Quick
            test_pstack_no_handle_equivalence;
          Alcotest.test_case "native: no handle equivalent" `Quick
            test_native_no_handle_equivalence;
        ] );
      ( "handle",
        [
          Alcotest.test_case "seq + clock" `Quick test_handle_seq_and_clock;
          Alcotest.test_case "summary totals" `Quick test_summary_totals;
        ] );
    ]
