(* Record/replay and DPOR-style schedule exploration.

   Everything here leans on two properties the schedulers already have:

   - under [Driven]/[Driven_pids] every scheduling decision runs exactly
     one fiber/branch for one slice, so the trace's slice-begin stream
     and the decision stream are the same sequence;
   - all remaining nondeterminism (virtual clock, pid/label/channel-id
     allocation) is a deterministic function of that sequence, so a run
     pinned to a recorded schedule reproduces the recording byte for
     byte.

   The exploration engine is dynamic partial-order reduction in the
   style of Flanagan–Godefroid 2005, driven entirely by the trace: after
   each executed schedule it finds pairs of decisions whose visible
   operations conflict (send/recv on a channel, park/wake on a waitset,
   a capture against the entries it prunes) and re-executes with the
   later decision's pid forced at the earlier index.  Conflicts are
   keyed by resource, so the shared waitset names ("channel.send",
   "channel.recv") make this an over-approximation across distinct
   channels — sound (no race is missed), merely less sparing. *)

module Obs = Pcont_obs.Obs
module Trace = Pcont_obs.Trace
module Analysis = Pcont_obs.Analysis
module E = Pcont_obs.Obs.Event
module Json = Pcont_obs.Obs.Json
module Sched = Pcont_sched.Sched
module Channel = Pcont_sched.Channel
module Concur = Pcont_pstack.Concur
module Interp = Pcont_syntax.Interp

let find_idx (a : int array) (x : int) : int option =
  let n = Array.length a in
  let rec go i = if i >= n then None else if a.(i) = x then Some i else go (i + 1) in
  go 0

(* ------------------------------------------------------------------ *)
(* Schedules.                                                          *)
(* ------------------------------------------------------------------ *)

module Schedule = struct
  type t = { decisions : int array }

  let of_trace evs =
    let runs = Trace.runs evs in
    let parts = Array.map (fun r -> Trace.schedule (Trace.reconstruct r)) runs in
    { decisions = Array.concat (Array.to_list parts) }

  let to_json t =
    Json.Obj
      [
        ("version", Json.Num 1.);
        ("kind", Json.Str "pcont-schedule");
        ( "decisions",
          Json.Arr (Array.to_list (Array.map (fun d -> Json.Num (float_of_int d)) t.decisions))
        );
      ]

  let of_json j =
    match Json.member "decisions" j with
    | Some (Json.Arr ds) ->
        let ok = ref true in
        let decisions =
          Array.of_list
            (List.map
               (function
                 | Json.Num f when Float.is_integer f -> int_of_float f
                 | _ ->
                     ok := false;
                     0)
               ds)
        in
        if !ok then Ok { decisions }
        else Error "schedule: non-integral decision"
    | Some _ -> Error "schedule: \"decisions\" is not an array"
    | None -> Error "schedule: missing \"decisions\" field"

  let save path t =
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (Json.to_string (to_json t));
        Out_channel.output_char oc '\n')

  let load path =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error m -> Error m
    | txt -> (
        (* A schedule file is a single JSON object carrying "decisions";
           anything else is treated as a JSONL trace. *)
        match Json.parse (String.trim txt) with
        | Ok j when Json.member "decisions" j <> None -> of_json j
        | _ -> (
            match Trace.parse_string txt with
            | Ok evs -> Ok (of_trace evs)
            | Error m -> Error m))
end

(* ------------------------------------------------------------------ *)
(* Targets.                                                            *)
(* ------------------------------------------------------------------ *)

type policy = Default | Seeded of int64 | Fixed of (int array -> int)

type target = { tg_name : string; tg_run : policy -> Obs.t option -> string }

let native_target tg_name (prog : unit -> string) =
  {
    tg_name;
    tg_run =
      (fun policy obs ->
        let policy =
          match policy with
          | Default -> Sched.Tree_order
          | Seeded s -> Sched.Randomized s
          | Fixed f -> Sched.Driven_pids f
        in
        match Sched.run ~policy ?obs prog with
        | v -> "value " ^ v
        | exception Sched.Deadlock m -> m
        | exception e -> "error: " ^ Printexc.to_string e);
  }

let pstack_target tg_name src =
  {
    tg_name;
    tg_run =
      (fun policy obs ->
        let sched =
          match policy with
          | Default -> Concur.Round_robin
          | Seeded s -> Concur.Randomized s
          | Fixed f -> Concur.Driven_pids f
        in
        let t = Interp.create () in
        ignore (Interp.take_output ());
        let results = Interp.eval_string ~mode:(Interp.Concurrent sched) ?obs t src in
        let out = Interp.take_output () in
        let body = String.concat "; " (List.map Interp.result_to_string results) in
        if out = "" then body else body ^ " | output: " ^ out);
  }

(* ------------------------------------------------------------------ *)
(* Record / replay.                                                    *)
(* ------------------------------------------------------------------ *)

module Replay = struct
  type divergence = { d_decision : int; d_wanted : int; d_candidates : int array }

  let driver (s : Schedule.t) =
    let k = ref 0 and div = ref None in
    let note d = if !div = None then div := Some d in
    let pick pids =
      let i = !k in
      incr k;
      if i >= Array.length s.decisions then begin
        note { d_decision = i; d_wanted = -1; d_candidates = Array.copy pids };
        0
      end
      else
        let want = s.decisions.(i) in
        match find_idx pids want with
        | Some j -> j
        | None ->
            note { d_decision = i; d_wanted = want; d_candidates = Array.copy pids };
            0
    in
    (pick, fun () -> !div)

  type recording = {
    rec_trace : string;
    rec_outcome : string;
    rec_schedule : Schedule.t;
  }

  let record ?(policy = Default) target =
    let buf = Buffer.create 4096 in
    let o = Obs.create () in
    Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
    let outcome = target.tg_run policy (Some o) in
    Obs.close o;
    let trace = Buffer.contents buf in
    let sched =
      match Trace.parse_string trace with
      | Ok evs -> Schedule.of_trace evs
      | Error _ -> { Schedule.decisions = [||] }
    in
    { rec_trace = trace; rec_outcome = outcome; rec_schedule = sched }

  let replay target sched =
    let pick, div = driver sched in
    let r = record ~policy:(Fixed pick) target in
    (r, div ())

  let lines s = String.split_on_char '\n' s

  let first_diff a b =
    let la = lines a and lb = lines b in
    let rec go i = function
      | [], [] -> Printf.sprintf "traces differ (line %d)" i
      | x :: _, [] -> Printf.sprintf "replay is shorter: recording line %d is %s" i x
      | [], y :: _ -> Printf.sprintf "replay is longer: extra line %d is %s" i y
      | x :: xs, y :: ys ->
          if String.equal x y then go (i + 1) (xs, ys)
          else Printf.sprintf "first differing line %d:\n  recorded: %s\n  replayed: %s" i x y
    in
    go 0 (la, lb)

  let check_roundtrip ?policy target =
    let r = record ?policy target in
    let r2, div = replay target r.rec_schedule in
    match div with
    | Some d ->
        Error
          (Printf.sprintf "replay diverged at decision %d: wanted pid %d, runnable [%s]"
             d.d_decision d.d_wanted
             (String.concat ";" (List.map string_of_int (Array.to_list d.d_candidates))))
    | None ->
        if not (String.equal r2.rec_outcome r.rec_outcome) then
          Error
            (Printf.sprintf "outcome differs:\n  recorded: %s\n  replayed: %s" r.rec_outcome
               r2.rec_outcome)
        else if not (String.equal r2.rec_trace r.rec_trace) then Error (first_diff r.rec_trace r2.rec_trace)
        else Ok r
end

(* ------------------------------------------------------------------ *)
(* DPOR exploration.                                                   *)
(* ------------------------------------------------------------------ *)

module Dpor = struct
  type witness = {
    w_kind : string;
    w_outcome : string;
    w_schedule : Schedule.t;
    w_runs_to_find : int;
    w_forced : int;
  }

  type stats = {
    s_runs : int;
    s_probes : int;
    s_schedules : int;
    s_skeletons : int;
    s_races : int;
    s_witness : witness option;
  }

  (* One pinned execution: follow [prefix] by pid (falling back to index
     0 on divergence — backtrack prefixes are built from enabled pids,
     so in practice they never diverge), default to index 0 afterwards,
     and log every decision's candidates and choice. *)
  type exec = {
    x_trace : string;
    x_outcome : string;
    x_log : (int array * int) array;
  }

  let execute target (prefix : int array) : exec =
    let buf = Buffer.create 4096 in
    let o = Obs.create () in
    Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
    let k = ref 0 in
    let log = ref [] in
    let pick pids =
      let i = !k in
      incr k;
      let idx =
        if i < Array.length prefix then
          match find_idx pids prefix.(i) with Some j -> j | None -> 0
        else 0
      in
      log := (Array.copy pids, pids.(idx)) :: !log;
      idx
    in
    let outcome = target.tg_run (Fixed pick) (Some o) in
    Obs.close o;
    {
      x_trace = Buffer.contents buf;
      x_outcome = outcome;
      x_log = Array.of_list (List.rev !log);
    }

  (* Canonical causal-skeleton fingerprint: [Analysis.Diff]'s projection
     (pids renamed to spawn order, per-pid program-order causal facts,
     scheduling events dropped) extended with the per-resource operation
     orders — for each channel the global send/recv order, for each
     waitset the park/wake order.  Operations on the same resource are
     the dependent ones, so their relative order is exactly what a
     racing-pair flip changes; per-pid facts alone cannot see it (two
     interleavings of the same sends are per-pid identical).  With both
     parts the fingerprint is a Mazurkiewicz-trace invariant: equal iff
     no racing pair is ordered differently. *)
  let skeleton evs =
    let b = Buffer.create 256 in
    Array.iter
      (fun revs ->
        Buffer.add_char b '{';
        let canon = Hashtbl.create 16 in
        let next = ref 0 in
        let cpid pid =
          if pid < 0 then -1
          else
            match Hashtbl.find_opt canon pid with
            | Some c -> c
            | None ->
                let c = !next in
                incr next;
                Hashtbl.replace canon pid c;
                c
        in
        let facts : (int, string list ref) Hashtbl.t = Hashtbl.create 16 in
        let add pid f =
          let c = cpid pid in
          let l =
            match Hashtbl.find_opt facts c with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace facts c l;
                l
          in
          l := f :: !l
        in
        let res : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
        let addr key op pid =
          let l =
            match Hashtbl.find_opt res key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace res key l;
                l
          in
          l := Printf.sprintf "%s%d" op (cpid pid) :: !l
        in
        Array.iter
          (fun (st : Trace.stamped) ->
            match st.ev with
            | E.Spawn { pid; parent; kind } ->
                let cp = cpid parent in
                add pid (Printf.sprintf "s%d:%s" cp kind)
            | E.Spawn_batch { nodes; kind; _ } ->
                Array.iter
                  (fun (pid, parent) ->
                    let cp = cpid parent in
                    add pid (Printf.sprintf "s%d:%s" cp kind))
                  nodes
            | E.Exit { pid } -> add pid "x"
            | E.Send { pid; chan } ->
                add pid (Printf.sprintf "!%d" chan);
                addr (Printf.sprintf "c%d" chan) "!" pid
            | E.Recv { pid; chan } ->
                add pid (Printf.sprintf "?%d" chan);
                addr (Printf.sprintf "c%d" chan) "?" pid
            | E.Capture { pid; label; root_pid; _ } ->
                add pid (Printf.sprintf "c%d@%d" label (cpid root_pid))
            | E.Reinstate { pid; label; _ } -> add pid (Printf.sprintf "g%d" label)
            | E.Invalid_controller { pid; label } -> add pid (Printf.sprintf "i%d" label)
            | E.Deadlock { parked } -> Buffer.add_string b (Printf.sprintf "D%d;" parked)
            | E.Park { pid; resource } -> addr ("w" ^ resource) "p" pid
            | E.Wake { pid; resource } -> addr ("w" ^ resource) "w" pid
            | E.Slice_begin _ | E.Slice_end _ -> ())
          revs;
        for c = 0 to !next - 1 do
          match Hashtbl.find_opt facts c with
          | None -> ()
          | Some l ->
              Buffer.add_string b (string_of_int c);
              Buffer.add_char b '[';
              List.iter
                (fun f ->
                  Buffer.add_string b f;
                  Buffer.add_char b ';')
                (List.rev !l);
              Buffer.add_char b ']'
        done;
        let keys = Hashtbl.fold (fun k _ acc -> k :: acc) res [] in
        List.iter
          (fun k ->
            Buffer.add_char b '|';
            Buffer.add_string b k;
            Buffer.add_char b ':';
            List.iter (Buffer.add_string b) (List.rev !(Hashtbl.find res k)))
          (List.sort compare keys);
        Buffer.add_char b '}')
      (Trace.runs evs);
    Buffer.contents b

  let classify ~deadlock_is_bug ~check evs outcome =
    match Analysis.Check.run evs with
    | v :: _ -> Some ("check:" ^ v.Analysis.Check.v_rule)
    | [] ->
        if
          deadlock_is_bug
          && Array.exists
               (fun (st : Trace.stamped) ->
                 match st.ev with E.Deadlock _ -> true | _ -> false)
               evs
        then Some "deadlock"
        else (
          match check with
          | None -> None
          | Some f -> Option.map (fun m -> "assert:" ^ m) (f evs outcome))

  (* Racing decisions of one executed schedule, as backtrack prefixes.
     Decision indices and trace slices are 1:1 (each driven decision
     runs exactly one slice), so a run's slice [a] is global decision
     [base + a] and the event→slice map [r_actor] attributes every
     visible operation to its decision. *)
  let backtracks (ex : exec) (evs : Trace.stamped array) : int array list =
    let chosen = Array.map snd ex.x_log in
    let cands = Array.map fst ex.x_log in
    let ndecisions = Array.length chosen in
    let out = ref [] in
    let push i q =
      if i < ndecisions && chosen.(i) <> q && Array.exists (Int.equal q) cands.(i)
      then out := Array.append (Array.sub chosen 0 i) [| q |] :: !out
    in
    let base = ref 0 in
    Array.iter
      (fun revs ->
        let run = Trace.reconstruct revs in
        let nslices = Array.length run.Trace.r_slices in
        let ops = Array.make (max nslices 1) [] in
        let cap_pruned = ref [] in
        Array.iteri
          (fun i (st : Trace.stamped) ->
            let a = run.Trace.r_actor.(i) in
            if a >= 0 && a < nslices then
              match st.ev with
              | E.Send { chan; _ } | E.Recv { chan; _ } ->
                  ops.(a) <- ("c" ^ string_of_int chan) :: ops.(a)
              | E.Park { resource; _ } | E.Wake { resource; _ } ->
                  ops.(a) <- ("w" ^ resource) :: ops.(a)
              | E.Capture _ ->
                  (* [reconstruct] stamps the nodes this capture pruned
                     with the capture's ts: those are the entries whose
                     running races with the capture itself. *)
                  let pruned =
                    Array.fold_left
                      (fun acc (n : Trace.node) ->
                        match n.Trace.n_pruned_ts with
                        | Some t when t = st.ts -> n.Trace.n_pid :: acc
                        | _ -> acc)
                      [] run.Trace.r_nodes
                  in
                  cap_pruned := (a, pruned) :: !cap_pruned
              | _ -> ())
          revs;
        let dense = ref [] in
        Array.iteri (fun a l -> if l <> [] then dense := (!base + a, l) :: !dense) ops;
        let dense = Array.of_list (List.rev !dense) in
        let m = Array.length dense in
        for jj = 0 to m - 1 do
          let j, opj = dense.(jj) in
          if j < ndecisions then
            for ii = 0 to jj - 1 do
              let i, opi = dense.(ii) in
              if
                i < ndecisions
                && chosen.(i) <> chosen.(j)
                && List.exists (fun o -> List.mem o opj) opi
              then push i chosen.(j)
            done
        done;
        List.iter
          (fun (a, pruned) -> List.iter (fun q -> push (!base + a) q) pruned)
          !cap_pruned;
        base := !base + nslices)
      (Trace.runs evs);
    List.rev !out

  let key (a : int array) =
    String.concat "," (List.map string_of_int (Array.to_list a))

  let explore ?(max_runs = 200) ?(deadlock_is_bug = true) ?check target =
    let seen_prefixes = Hashtbl.create 64 in
    let seen_schedules = Hashtbl.create 64 in
    let skeletons = Hashtbl.create 64 in
    let frontier = Queue.create () in
    Queue.add [||] frontier;
    Hashtbl.replace seen_prefixes (key [||]) ();
    let runs = ref 0 and probes = ref 0 and races = ref 0 in
    let witness = ref None in
    let minimize (ex : exec) kind =
      (* Bisect the forced-prefix length; the result always comes from a
         re-verified execution, so a non-monotone bug is never
         mis-reported, merely minimized less. *)
      let full = Array.map snd ex.x_log in
      let reproduces k =
        incr probes;
        let e = execute target (Array.sub full 0 k) in
        match Trace.parse_string e.x_trace with
        | Error _ -> None
        | Ok evs -> (
            match classify ~deadlock_is_bug ~check evs e.x_outcome with
            | Some kk when String.equal kk kind -> Some e
            | _ -> None)
      in
      let lo = ref 0 and hi = ref (Array.length full) and best = ref ex in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        match reproduces mid with
        | Some e ->
            best := e;
            hi := mid
        | None -> lo := mid + 1
      done;
      {
        w_kind = kind;
        w_outcome = !best.x_outcome;
        w_schedule = { Schedule.decisions = Array.map snd !best.x_log };
        w_runs_to_find = !runs;
        w_forced = !hi;
      }
    in
    while !witness = None && !runs < max_runs && not (Queue.is_empty frontier) do
      let prefix = Queue.pop frontier in
      let ex = execute target prefix in
      incr runs;
      let sched = Array.map snd ex.x_log in
      let k = key sched in
      if not (Hashtbl.mem seen_schedules k) then begin
        Hashtbl.replace seen_schedules k ();
        match Trace.parse_string ex.x_trace with
        | Error m ->
            witness :=
              Some
                {
                  w_kind = "trace-parse:" ^ m;
                  w_outcome = ex.x_outcome;
                  w_schedule = { Schedule.decisions = sched };
                  w_runs_to_find = !runs;
                  w_forced = Array.length sched;
                }
        | Ok evs -> (
            Hashtbl.replace skeletons (skeleton evs) ();
            match classify ~deadlock_is_bug ~check evs ex.x_outcome with
            | Some kind -> witness := Some (minimize ex kind)
            | None ->
                List.iter
                  (fun p ->
                    let pk = key p in
                    if not (Hashtbl.mem seen_prefixes pk) then begin
                      Hashtbl.replace seen_prefixes pk ();
                      incr races;
                      Queue.add p frontier
                    end)
                  (backtracks ex evs))
      end
    done;
    {
      s_runs = !runs;
      s_probes = !probes;
      s_schedules = Hashtbl.length seen_schedules;
      s_skeletons = Hashtbl.length skeletons;
      s_races = !races;
      s_witness = !witness;
    }

  type sweep = {
    sw_seeds : int;
    sw_skeletons : int;
    sw_found : (int * string) option;
  }

  let seed_sweep ?(seeds = 100) ?(deadlock_is_bug = true) ?check target =
    let skels = Hashtbl.create 64 in
    let found = ref None in
    for s = 1 to seeds do
      let r = Replay.record ~policy:(Seeded (Int64.of_int s)) target in
      match Trace.parse_string r.Replay.rec_trace with
      | Error m -> if !found = None then found := Some (s, "trace-parse:" ^ m)
      | Ok evs -> (
          Hashtbl.replace skels (skeleton evs) ();
          match classify ~deadlock_is_bug ~check evs r.Replay.rec_outcome with
          | Some kind when !found = None -> found := Some (s, kind)
          | _ -> ())
    done;
    { sw_seeds = seeds; sw_skeletons = Hashtbl.length skels; sw_found = !found }
end

(* ------------------------------------------------------------------ *)
(* Built-in workloads.                                                 *)
(* ------------------------------------------------------------------ *)

module Workloads = struct
  let gen_pstack_src =
    "(let ([f (future (* 3 (+ 2 2)))])\n\
    \  (pcall + (+ 1 2) (touch f) (* 2 (touch f))))"

  let gen_native =
    native_target "gen" (fun () ->
        let f = Sched.future (fun () -> 3 * (2 + 2)) in
        let xs =
          (* Four branches, not three: the pstack pcall forks its
             operator expression too, and the skeletons must match
             child for child. *)
          Sched.pcall
            [
              (fun () -> 0);
              (fun () -> 1 + 2);
              (fun () -> Sched.touch f);
              (fun () -> 2 * Sched.touch f);
            ]
        in
        string_of_int (List.fold_left ( + ) 0 xs))

  let gen_pstack = pstack_target "gen-pstack" gen_pstack_src

  let racing n =
    native_target
      (Printf.sprintf "racing-%d" n)
      (fun () ->
        let c = Channel.create ~capacity:1 () in
        let branches =
          List.init n (fun i () ->
              Channel.send c (i + 1);
              0)
          @ List.init n (fun _ () -> Channel.recv c)
        in
        let vs = Sched.pcall branches in
        string_of_int (List.fold_left ( + ) 0 vs))

  let lost_wakeup =
    native_target "lost-wakeup" (fun () ->
        let ws = Sched.Waitset.create "event" in
        let flag = ref false in
        let waiter () =
          (* BUG: yields between the check and the park and never
             re-checks, so a signal completed inside that one-yield
             window is lost.  The waiter's check and park slices sit in
             consecutive rounds, and the window between them spans at
             most the tail of one round plus the head of the next — two
             signaler slices.  The signal below takes three slices from
             store to wake, so no round-based policy (any seed, any
             within-round order) can fit it inside the window; only a
             driven schedule that starves the waiter exposes the bug. *)
          if not !flag then begin
            Sched.yield ();
            Sched.block ws
          end;
          assert !flag
        in
        let signaler () =
          flag := true;
          (* preemption points between the store and the wake: the
             classic missing-mutex window *)
          Sched.yield ();
          Sched.yield ();
          Sched.wake ws
        in
        let (), () = Sched.pcall2 waiter signaler in
        "done")

  let stolen_relay =
    native_target "stolen-relay" (fun () ->
        let c = Channel.create ~capacity:2 () in
        let w1 () =
          let v = Channel.recv c in
          if v = 1 then Channel.send c 2;
          v
        in
        let w2 () =
          (* BUG: consumes a token without relaying it.  Its receive is
             only reached on its third slice, and worker 1's receive
             completes by round 2 under any round-based schedule, so
             the steal needs a driven schedule that starves worker 1. *)
          Sched.yield ();
          Sched.yield ();
          Channel.recv c
        in
        let s () =
          Channel.send c 1;
          0
        in
        let vs = Sched.pcall [ w1; w2; s ] in
        "values " ^ String.concat "," (List.map string_of_int vs))

  let all =
    [
      ("gen", gen_native);
      ("gen-pstack", gen_pstack);
      ("racing", racing 3);
      ("lost-wakeup", lost_wakeup);
      ("stolen-relay", stolen_relay);
    ]

  let find name = List.assoc_opt name all
  let names = List.map fst all
end
