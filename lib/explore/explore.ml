(* Record/replay and DPOR-style schedule exploration.

   Everything here leans on two properties the schedulers already have:

   - under [Driven]/[Driven_pids] every scheduling decision runs exactly
     one fiber/branch for one slice, so the trace's slice-begin stream
     and the decision stream are the same sequence;
   - all remaining nondeterminism (virtual clock, pid/label/channel-id
     allocation) is a deterministic function of that sequence, so a run
     pinned to a recorded schedule reproduces the recording byte for
     byte.

   The exploration engine is dynamic partial-order reduction in the
   style of Flanagan–Godefroid 2005, driven entirely by the trace: after
   each executed schedule it finds pairs of decisions whose visible
   operations conflict (send/recv on a channel, park/wake on a waitset,
   a capture against the entries it prunes) and re-executes with the
   later decision's pid forced at the earlier index.  Conflicts are
   keyed by resource, so the shared waitset names ("channel.send",
   "channel.recv") make this an over-approximation across distinct
   channels — sound (no race is missed), merely less sparing. *)

module Obs = Pcont_obs.Obs
module Trace = Pcont_obs.Trace
module Analysis = Pcont_obs.Analysis
module E = Pcont_obs.Obs.Event
module Json = Pcont_obs.Obs.Json
module Sched = Pcont_sched.Sched
module Channel = Pcont_sched.Channel
module Resil = Pcont_resil.Resil
module Concur = Pcont_pstack.Concur
module Interp = Pcont_syntax.Interp

let find_idx (a : int array) (x : int) : int option =
  let n = Array.length a in
  let rec go i = if i >= n then None else if a.(i) = x then Some i else go (i + 1) in
  go 0

(* ------------------------------------------------------------------ *)
(* Faults.                                                             *)
(* ------------------------------------------------------------------ *)

module Fault = struct
  type kind = Crash | Wake of string | Drop of int

  type t = { at : int; kind : kind }

  let kind_to_string = function
    | Crash -> "crash"
    | Wake r -> "wake:" ^ r
    | Drop c -> "drop:" ^ string_of_int c

  let to_string f = Printf.sprintf "%s@%d" (kind_to_string f.kind) f.at

  let to_sched = function
    | Crash -> Sched.Fcrash
    | Wake r -> Sched.Fwake r
    | Drop c -> Sched.Fdrop c

  (* The injection hook for [Sched.run]: one lookup per slice index. *)
  let to_inject faults =
    fun i ->
      List.find_map
        (fun f -> if f.at = i then Some (to_sched f.kind) else None)
        faults

  (* Inverse of the scheduler's in-trace markers ("inject:crash",
     "inject:wake:<res>", "inject:drop:<id>"). *)
  let kind_of_marker s =
    let strip p =
      let lp = String.length p in
      if String.length s >= lp && String.sub s 0 lp = p then
        Some (String.sub s lp (String.length s - lp))
      else None
    in
    if s = "inject:crash" then Some Crash
    else
      match strip "inject:wake:" with
      | Some r -> Some (Wake r)
      | None -> (
          match strip "inject:drop:" with
          | Some c -> int_of_string_opt c |> Option.map (fun c -> Drop c)
          | None -> None)
end

(* ------------------------------------------------------------------ *)
(* Schedules.                                                          *)
(* ------------------------------------------------------------------ *)

module Schedule = struct
  type t = { decisions : int array; faults : Fault.t list }

  let of_trace evs =
    let runs = Trace.runs evs in
    let parts = Array.map (fun r -> Trace.schedule (Trace.reconstruct r)) runs in
    (* Re-extract injected faults from their markers: each marker is
       emitted just before its target slice's begin event, so a fault's
       index is the count of slice-begins seen before it (global across
       runs, matching the flat decision sequence). *)
    let faults = ref [] in
    let slices = ref 0 in
    Array.iter
      (fun (st : Trace.stamped) ->
        match st.ev with
        | E.Slice_begin _ -> incr slices
        | E.Crash { fault; _ } -> (
            match Fault.kind_of_marker fault with
            | Some kind -> faults := { Fault.at = !slices; kind } :: !faults
            | None -> ())
        | _ -> ())
      evs;
    { decisions = Array.concat (Array.to_list parts); faults = List.rev !faults }

  let to_json t =
    let fault_json (f : Fault.t) =
      Json.Obj
        [
          ("at", Json.Num (float_of_int f.at));
          ("fault", Json.Str (Fault.kind_to_string f.kind));
        ]
    in
    Json.Obj
      ([
         ("version", Json.Num 1.);
         ("kind", Json.Str "pcont-schedule");
         ( "decisions",
           Json.Arr
             (Array.to_list (Array.map (fun d -> Json.Num (float_of_int d)) t.decisions)) );
       ]
      @ if t.faults = [] then [] else [ ("faults", Json.Arr (List.map fault_json t.faults)) ])

  let fault_of_json j =
    match (Json.member "at" j, Json.member "fault" j) with
    | Some (Json.Num at), Some (Json.Str s) when Float.is_integer at -> (
        let kind =
          if s = "crash" then Some Fault.Crash
          else
            Fault.kind_of_marker ("inject:" ^ s)
        in
        match kind with
        | Some kind -> Ok { Fault.at = int_of_float at; kind }
        | None -> Error ("schedule: unknown fault " ^ s))
    | _ -> Error "schedule: fault needs integral \"at\" and string \"fault\""

  let of_json j =
    match Json.member "decisions" j with
    | Some (Json.Arr ds) -> (
        let ok = ref true in
        let decisions =
          Array.of_list
            (List.map
               (function
                 | Json.Num f when Float.is_integer f -> int_of_float f
                 | _ ->
                     ok := false;
                     0)
               ds)
        in
        if not !ok then Error "schedule: non-integral decision"
        else
          (* "faults" is optional: schedules recorded before fault
             injection existed load unchanged. *)
          match Json.member "faults" j with
          | None -> Ok { decisions; faults = [] }
          | Some (Json.Arr fs) ->
              let rec go acc = function
                | [] -> Ok { decisions; faults = List.rev acc }
                | f :: rest -> (
                    match fault_of_json f with
                    | Ok f -> go (f :: acc) rest
                    | Error m -> Error m)
              in
              go [] fs
          | Some _ -> Error "schedule: \"faults\" is not an array")
    | Some _ -> Error "schedule: \"decisions\" is not an array"
    | None -> Error "schedule: missing \"decisions\" field"

  let save path t =
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (Json.to_string (to_json t));
        Out_channel.output_char oc '\n')

  let load path =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error m -> Error m
    | txt -> (
        (* A schedule file is a single JSON object carrying "decisions";
           anything else is treated as a JSONL trace. *)
        match Json.parse (String.trim txt) with
        | Ok j when Json.member "decisions" j <> None -> of_json j
        | _ -> (
            match Trace.parse_string txt with
            | Ok evs -> Ok (of_trace evs)
            | Error m -> Error m))
end

(* ------------------------------------------------------------------ *)
(* Targets.                                                            *)
(* ------------------------------------------------------------------ *)

type policy = Default | Seeded of int64 | Fixed of (int array -> int)

type target = {
  tg_name : string;
  tg_run : policy -> Fault.t list -> Obs.t option -> string;
}

let native_target tg_name (prog : unit -> string) =
  {
    tg_name;
    tg_run =
      (fun policy faults obs ->
        let policy =
          match policy with
          | Default -> Sched.Tree_order
          | Seeded s -> Sched.Randomized s
          | Fixed f -> Sched.Driven_pids f
        in
        let inject =
          match faults with [] -> None | fs -> Some (Fault.to_inject fs)
        in
        (* Every exception becomes an outcome string: an injected crash
           that escapes its fiber must terminate the run, not the
           exploration loop driving it. *)
        match Sched.run ~policy ?obs ?inject prog with
        | v -> "value " ^ v
        | exception Sched.Deadlock m -> m
        | exception e -> "error: " ^ Printexc.to_string e);
  }

let pstack_target tg_name src =
  {
    tg_name;
    tg_run =
      (fun policy faults obs ->
        if faults <> [] then
          (* Fault injection is a native-scheduler feature; a pstack
             target reports it rather than silently ignoring the
             faults (the outcome stays deterministic either way). *)
          "error: fault injection is not supported on pstack targets"
        else
          let sched =
            match policy with
            | Default -> Concur.Round_robin
            | Seeded s -> Concur.Randomized s
            | Fixed f -> Concur.Driven_pids f
          in
          let t = Interp.create () in
          ignore (Interp.take_output ());
          let results = Interp.eval_string ~mode:(Interp.Concurrent sched) ?obs t src in
          let out = Interp.take_output () in
          let body = String.concat "; " (List.map Interp.result_to_string results) in
          if out = "" then body else body ^ " | output: " ^ out);
  }

(* ------------------------------------------------------------------ *)
(* Record / replay.                                                    *)
(* ------------------------------------------------------------------ *)

module Replay = struct
  type divergence = { d_decision : int; d_wanted : int; d_candidates : int array }

  let driver (s : Schedule.t) =
    let k = ref 0 and div = ref None in
    let note d = if !div = None then div := Some d in
    let pick pids =
      let i = !k in
      incr k;
      if i >= Array.length s.decisions then begin
        note { d_decision = i; d_wanted = -1; d_candidates = Array.copy pids };
        0
      end
      else
        let want = s.decisions.(i) in
        match find_idx pids want with
        | Some j -> j
        | None ->
            note { d_decision = i; d_wanted = want; d_candidates = Array.copy pids };
            0
    in
    (pick, fun () -> !div)

  type recording = {
    rec_trace : string;
    rec_outcome : string;
    rec_schedule : Schedule.t;
  }

  let record ?(policy = Default) ?(faults = []) ?attach target =
    let buf = Buffer.create 4096 in
    let o = Obs.create () in
    Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
    (match attach with Some f -> f o | None -> ());
    let outcome = target.tg_run policy faults (Some o) in
    Obs.close o;
    let trace = Buffer.contents buf in
    let sched =
      match Trace.parse_string trace with
      | Ok evs -> Schedule.of_trace evs
      | Error _ -> { Schedule.decisions = [||]; faults = [] }
    in
    { rec_trace = trace; rec_outcome = outcome; rec_schedule = sched }

  let replay target (sched : Schedule.t) =
    let pick, div = driver sched in
    let r = record ~policy:(Fixed pick) ~faults:sched.faults target in
    (r, div ())

  let lines s = String.split_on_char '\n' s

  let first_diff a b =
    let la = lines a and lb = lines b in
    let rec go i = function
      | [], [] -> Printf.sprintf "traces differ (line %d)" i
      | x :: _, [] -> Printf.sprintf "replay is shorter: recording line %d is %s" i x
      | [], y :: _ -> Printf.sprintf "replay is longer: extra line %d is %s" i y
      | x :: xs, y :: ys ->
          if String.equal x y then go (i + 1) (xs, ys)
          else Printf.sprintf "first differing line %d:\n  recorded: %s\n  replayed: %s" i x y
    in
    go 0 (la, lb)

  let check_roundtrip ?policy ?faults target =
    let r = record ?policy ?faults target in
    let r2, div = replay target r.rec_schedule in
    match div with
    | Some d ->
        Error
          (Printf.sprintf "replay diverged at decision %d: wanted pid %d, runnable [%s]"
             d.d_decision d.d_wanted
             (String.concat ";" (List.map string_of_int (Array.to_list d.d_candidates))))
    | None ->
        if not (String.equal r2.rec_outcome r.rec_outcome) then
          Error
            (Printf.sprintf "outcome differs:\n  recorded: %s\n  replayed: %s" r.rec_outcome
               r2.rec_outcome)
        else if not (String.equal r2.rec_trace r.rec_trace) then Error (first_diff r.rec_trace r2.rec_trace)
        else Ok r
end

(* ------------------------------------------------------------------ *)
(* DPOR exploration.                                                   *)
(* ------------------------------------------------------------------ *)

module Dpor = struct
  type witness = {
    w_kind : string;
    w_outcome : string;
    w_schedule : Schedule.t;
    w_runs_to_find : int;
    w_forced : int;
  }

  type stats = {
    s_runs : int;
    s_probes : int;
    s_schedules : int;
    s_skeletons : int;
    s_races : int;
    s_witness : witness option;
  }

  (* One pinned execution: follow [prefix] by pid (falling back to index
     0 on divergence — backtrack prefixes are built from enabled pids,
     so in practice they never diverge), default to index 0 afterwards,
     and log every decision's candidates and choice. *)
  type exec = {
    x_trace : string;
    x_outcome : string;
    x_log : (int array * int) array;
    x_faults : Fault.t list;
  }

  let execute target (prefix : int array) (faults : Fault.t list) : exec =
    let buf = Buffer.create 4096 in
    let o = Obs.create () in
    Obs.attach o (Obs.Sink.jsonl (Buffer.add_string buf));
    let k = ref 0 in
    let log = ref [] in
    let pick pids =
      let i = !k in
      incr k;
      let idx =
        if i < Array.length prefix then
          match find_idx pids prefix.(i) with Some j -> j | None -> 0
        else 0
      in
      log := (Array.copy pids, pids.(idx)) :: !log;
      idx
    in
    let outcome = target.tg_run (Fixed pick) faults (Some o) in
    Obs.close o;
    {
      x_trace = Buffer.contents buf;
      x_outcome = outcome;
      x_log = Array.of_list (List.rev !log);
      x_faults = faults;
    }

  (* Canonical causal-skeleton fingerprint: [Analysis.Diff]'s projection
     (pids renamed to spawn order, per-pid program-order causal facts,
     scheduling events dropped) extended with the per-resource operation
     orders — for each channel the global send/recv order, for each
     waitset the park/wake order.  Operations on the same resource are
     the dependent ones, so their relative order is exactly what a
     racing-pair flip changes; per-pid facts alone cannot see it (two
     interleavings of the same sends are per-pid identical).  With both
     parts the fingerprint is a Mazurkiewicz-trace invariant: equal iff
     no racing pair is ordered differently. *)
  let skeleton evs =
    let b = Buffer.create 256 in
    Array.iter
      (fun revs ->
        Buffer.add_char b '{';
        let canon = Hashtbl.create 16 in
        let next = ref 0 in
        let cpid pid =
          if pid < 0 then -1
          else
            match Hashtbl.find_opt canon pid with
            | Some c -> c
            | None ->
                let c = !next in
                incr next;
                Hashtbl.replace canon pid c;
                c
        in
        let facts : (int, string list ref) Hashtbl.t = Hashtbl.create 16 in
        let add pid f =
          let c = cpid pid in
          let l =
            match Hashtbl.find_opt facts c with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace facts c l;
                l
          in
          l := f :: !l
        in
        let res : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
        let addr key op pid =
          let l =
            match Hashtbl.find_opt res key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace res key l;
                l
          in
          l := Printf.sprintf "%s%d" op (cpid pid) :: !l
        in
        Array.iter
          (fun (st : Trace.stamped) ->
            match st.ev with
            | E.Spawn { pid; parent; kind } ->
                let cp = cpid parent in
                add pid (Printf.sprintf "s%d:%s" cp kind)
            | E.Spawn_batch { nodes; kind; _ } ->
                Array.iter
                  (fun (pid, parent) ->
                    let cp = cpid parent in
                    add pid (Printf.sprintf "s%d:%s" cp kind))
                  nodes
            | E.Exit { pid } -> add pid "x"
            | E.Send { pid; chan } ->
                add pid (Printf.sprintf "!%d" chan);
                addr (Printf.sprintf "c%d" chan) "!" pid
            | E.Recv { pid; chan } ->
                add pid (Printf.sprintf "?%d" chan);
                addr (Printf.sprintf "c%d" chan) "?" pid
            | E.Capture { pid; label; root_pid; _ } ->
                add pid (Printf.sprintf "c%d@%d" label (cpid root_pid))
            | E.Reinstate { pid; label; _ } -> add pid (Printf.sprintf "g%d" label)
            | E.Invalid_controller { pid; label } -> add pid (Printf.sprintf "i%d" label)
            | E.Cancel { pid; scope; pids; _ } ->
                add pid
                  (Printf.sprintf "k%d[%s]" (cpid scope)
                     (String.concat ","
                        (Array.to_list
                           (Array.map (fun p -> string_of_int (cpid p)) pids))))
            | E.Timeout { pid; _ } -> add pid "t"
            | E.Crash { pid; fault } ->
                if pid >= 0 then add pid ("f:" ^ fault)
                else Buffer.add_string b (Printf.sprintf "F:%s;" fault)
            | E.Restart { pid; child; attempt; _ } ->
                add pid (Printf.sprintf "r%d.%d" (cpid child) attempt)
            | E.Deadlock { parked } -> Buffer.add_string b (Printf.sprintf "D%d;" parked)
            | E.Park { pid; resource } -> addr ("w" ^ resource) "p" pid
            | E.Wake { pid; resource } -> addr ("w" ^ resource) "w" pid
            | E.Slice_begin _ | E.Slice_end _ | E.Span_begin _ | E.Span_end _ -> ())
          revs;
        for c = 0 to !next - 1 do
          match Hashtbl.find_opt facts c with
          | None -> ()
          | Some l ->
              Buffer.add_string b (string_of_int c);
              Buffer.add_char b '[';
              List.iter
                (fun f ->
                  Buffer.add_string b f;
                  Buffer.add_char b ';')
                (List.rev !l);
              Buffer.add_char b ']'
        done;
        let keys = Hashtbl.fold (fun k _ acc -> k :: acc) res [] in
        List.iter
          (fun k ->
            Buffer.add_char b '|';
            Buffer.add_string b k;
            Buffer.add_char b ':';
            List.iter (Buffer.add_string b) (List.rev !(Hashtbl.find res k)))
          (List.sort compare keys);
        Buffer.add_char b '}')
      (Trace.runs evs);
    Buffer.contents b

  let classify ~deadlock_is_bug ~check evs outcome =
    match Analysis.Check.run evs with
    | v :: _ -> Some ("check:" ^ v.Analysis.Check.v_rule)
    | [] ->
        if
          deadlock_is_bug
          && Array.exists
               (fun (st : Trace.stamped) ->
                 match st.ev with E.Deadlock _ -> true | _ -> false)
               evs
        then Some "deadlock"
        else (
          match check with
          | None -> None
          | Some f -> Option.map (fun m -> "assert:" ^ m) (f evs outcome))

  (* Racing decisions of one executed schedule, as backtrack prefixes.
     Decision indices and trace slices are 1:1 (each driven decision
     runs exactly one slice), so a run's slice [a] is global decision
     [base + a] and the event→slice map [r_actor] attributes every
     visible operation to its decision. *)
  let backtracks (ex : exec) (evs : Trace.stamped array) : int array list =
    let chosen = Array.map snd ex.x_log in
    let cands = Array.map fst ex.x_log in
    let ndecisions = Array.length chosen in
    let out = ref [] in
    let push i q =
      if i < ndecisions && chosen.(i) <> q && Array.exists (Int.equal q) cands.(i)
      then out := Array.append (Array.sub chosen 0 i) [| q |] :: !out
    in
    let base = ref 0 in
    Array.iter
      (fun revs ->
        let run = Trace.reconstruct revs in
        let nslices = Array.length run.Trace.r_slices in
        let ops = Array.make (max nslices 1) [] in
        let cap_pruned = ref [] in
        Array.iteri
          (fun i (st : Trace.stamped) ->
            let a = run.Trace.r_actor.(i) in
            if a >= 0 && a < nslices then
              match st.ev with
              | E.Send { chan; _ } | E.Recv { chan; _ } ->
                  ops.(a) <- ("c" ^ string_of_int chan) :: ops.(a)
              | E.Park { resource; _ } | E.Wake { resource; _ } ->
                  ops.(a) <- ("w" ^ resource) :: ops.(a)
              | E.Capture _ ->
                  (* [reconstruct] stamps the nodes this capture pruned
                     with the capture's ts: those are the entries whose
                     running races with the capture itself. *)
                  let pruned =
                    Array.fold_left
                      (fun acc (n : Trace.node) ->
                        match n.Trace.n_pruned_ts with
                        | Some t when t = st.ts -> n.Trace.n_pid :: acc
                        | _ -> acc)
                      [] run.Trace.r_nodes
                  in
                  cap_pruned := (a, pruned) :: !cap_pruned
              | _ -> ())
          revs;
        let dense = ref [] in
        Array.iteri (fun a l -> if l <> [] then dense := (!base + a, l) :: !dense) ops;
        let dense = Array.of_list (List.rev !dense) in
        let m = Array.length dense in
        for jj = 0 to m - 1 do
          let j, opj = dense.(jj) in
          if j < ndecisions then
            for ii = 0 to jj - 1 do
              let i, opi = dense.(ii) in
              if
                i < ndecisions
                && chosen.(i) <> chosen.(j)
                && List.exists (fun o -> List.mem o opj) opi
              then push i chosen.(j)
            done
        done;
        List.iter
          (fun (a, pruned) -> List.iter (fun q -> push (!base + a) q) pruned)
          !cap_pruned;
        base := !base + nslices)
      (Trace.runs evs);
    List.rev !out

  let key (a : int array) =
    String.concat "," (List.map string_of_int (Array.to_list a))

  let fkey faults = String.concat "+" (List.map Fault.to_string faults)

  let explore ?(max_runs = 200) ?(deadlock_is_bug = true) ?(fault_menu = [])
      ?(max_fault_slices = 200) ?check target =
    let seen_prefixes = Hashtbl.create 64 in
    let seen_schedules = Hashtbl.create 64 in
    let skeletons = Hashtbl.create 64 in
    let frontier = Queue.create () in
    Queue.add ([||], []) frontier;
    Hashtbl.replace seen_prefixes (key [||]) ();
    let runs = ref 0 and probes = ref 0 and races = ref 0 in
    let witness = ref None in
    let minimize (ex : exec) kind =
      (* Bisect the forced-prefix length (the faults, being part of the
         schedule, are kept); the result always comes from a re-verified
         execution, so a non-monotone bug is never mis-reported, merely
         minimized less. *)
      let full = Array.map snd ex.x_log in
      let reproduces k =
        incr probes;
        let e = execute target (Array.sub full 0 k) ex.x_faults in
        match Trace.parse_string e.x_trace with
        | Error _ -> None
        | Ok evs -> (
            match classify ~deadlock_is_bug ~check evs e.x_outcome with
            | Some kk when String.equal kk kind -> Some e
            | _ -> None)
      in
      let lo = ref 0 and hi = ref (Array.length full) and best = ref ex in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        match reproduces mid with
        | Some e ->
            best := e;
            hi := mid
        | None -> lo := mid + 1
      done;
      {
        w_kind = kind;
        w_outcome = !best.x_outcome;
        w_schedule =
          { Schedule.decisions = Array.map snd !best.x_log;
            faults = !best.x_faults };
        w_runs_to_find = !runs;
        w_forced = !hi;
      }
    in
    let first = ref true in
    while !witness = None && !runs < max_runs && not (Queue.is_empty frontier) do
      let prefix, faults = Queue.pop frontier in
      let ex = execute target prefix faults in
      incr runs;
      (* Fault placements are enumerated once, from the unconstrained
         default run: one single-fault schedule per (kind, slice) pair.
         Each placement then explores its own backtrack tree below, so
         schedule races and fault timing compose. *)
      if !first then begin
        first := false;
        let nslices = min (Array.length ex.x_log) max_fault_slices in
        List.iter
          (fun kind ->
            for at = 0 to nslices - 1 do
              Queue.add ([||], [ { Fault.at; kind } ]) frontier
            done)
          fault_menu
      end;
      let sched = Array.map snd ex.x_log in
      let k = key sched ^ "|" ^ fkey faults in
      if not (Hashtbl.mem seen_schedules k) then begin
        Hashtbl.replace seen_schedules k ();
        match Trace.parse_string ex.x_trace with
        | Error m ->
            witness :=
              Some
                {
                  w_kind = "trace-parse:" ^ m;
                  w_outcome = ex.x_outcome;
                  w_schedule = { Schedule.decisions = sched; faults };
                  w_runs_to_find = !runs;
                  w_forced = Array.length sched;
                }
        | Ok evs -> (
            Hashtbl.replace skeletons (skeleton evs) ();
            match classify ~deadlock_is_bug ~check evs ex.x_outcome with
            | Some kind -> witness := Some (minimize ex kind)
            | None ->
                List.iter
                  (fun p ->
                    let pk = key p ^ "|" ^ fkey faults in
                    if not (Hashtbl.mem seen_prefixes pk) then begin
                      Hashtbl.replace seen_prefixes pk ();
                      incr races;
                      (* backtracks inherit the run's faults: the race
                         is explored within the same fault scenario *)
                      Queue.add (p, faults) frontier
                    end)
                  (backtracks ex evs))
      end
    done;
    {
      s_runs = !runs;
      s_probes = !probes;
      s_schedules = Hashtbl.length seen_schedules;
      s_skeletons = Hashtbl.length skeletons;
      s_races = !races;
      s_witness = !witness;
    }

  type sweep = {
    sw_seeds : int;
    sw_skeletons : int;
    sw_found : (int * string) option;
  }

  let seed_sweep ?(seeds = 100) ?(deadlock_is_bug = true) ?(fault_menu = [])
      ?check target =
    let skels = Hashtbl.create 64 in
    let found = ref None in
    let consider s (r : Replay.recording) =
      match Trace.parse_string r.Replay.rec_trace with
      | Error m -> if !found = None then found := Some (s, "trace-parse:" ^ m)
      | Ok evs -> (
          Hashtbl.replace skels (skeleton evs) ();
          match classify ~deadlock_is_bug ~check evs r.Replay.rec_outcome with
          | Some kind when !found = None -> found := Some (s, kind)
          | _ -> ())
    in
    for s = 1 to seeds do
      let clean = Replay.record ~policy:(Seeded (Int64.of_int s)) target in
      consider s clean;
      (* The randomized-fault baseline: one seed-derived fault placement
         per seed, drawn over the clean run's slice count.  This is what
         the systematic placement enumeration in [explore] displaces. *)
      if fault_menu <> [] then begin
        let nslices = Array.length clean.Replay.rec_schedule.Schedule.decisions in
        if nslices > 0 then begin
          let kind =
            List.nth fault_menu (s mod List.length fault_menu)
          in
          let at = (s * 2654435761) land max_int mod nslices in
          let r =
            Replay.record
              ~policy:(Seeded (Int64.of_int s))
              ~faults:[ { Fault.at; kind } ]
              target
          in
          consider s r
        end
      end
    done;
    { sw_seeds = seeds; sw_skeletons = Hashtbl.length skels; sw_found = !found }
end

(* ------------------------------------------------------------------ *)
(* Built-in workloads.                                                 *)
(* ------------------------------------------------------------------ *)

module Workloads = struct
  let gen_pstack_src =
    "(let ([f (future (* 3 (+ 2 2)))])\n\
    \  (pcall + (+ 1 2) (touch f) (* 2 (touch f))))"

  let gen_native =
    native_target "gen" (fun () ->
        let f = Sched.future (fun () -> 3 * (2 + 2)) in
        let xs =
          (* Four branches, not three: the pstack pcall forks its
             operator expression too, and the skeletons must match
             child for child. *)
          Sched.pcall
            [
              (fun () -> 0);
              (fun () -> 1 + 2);
              (fun () -> Sched.touch f);
              (fun () -> 2 * Sched.touch f);
            ]
        in
        string_of_int (List.fold_left ( + ) 0 xs))

  let gen_pstack = pstack_target "gen-pstack" gen_pstack_src

  let racing n =
    native_target
      (Printf.sprintf "racing-%d" n)
      (fun () ->
        let c = Channel.create ~capacity:1 () in
        let branches =
          List.init n (fun i () ->
              Channel.send c (i + 1);
              0)
          @ List.init n (fun _ () -> Channel.recv c)
        in
        let vs = Sched.pcall branches in
        string_of_int (List.fold_left ( + ) 0 vs))

  let lost_wakeup =
    native_target "lost-wakeup" (fun () ->
        let ws = Sched.Waitset.create "event" in
        let flag = ref false in
        let waiter () =
          (* BUG: yields between the check and the park and never
             re-checks, so a signal completed inside that one-yield
             window is lost.  The waiter's check and park slices sit in
             consecutive rounds, and the window between them spans at
             most the tail of one round plus the head of the next — two
             signaler slices.  The signal below takes three slices from
             store to wake, so no round-based policy (any seed, any
             within-round order) can fit it inside the window; only a
             driven schedule that starves the waiter exposes the bug. *)
          if not !flag then begin
            Sched.yield ();
            Sched.block ws
          end;
          assert !flag
        in
        let signaler () =
          flag := true;
          (* preemption points between the store and the wake: the
             classic missing-mutex window *)
          Sched.yield ();
          Sched.yield ();
          Sched.wake ws
        in
        let (), () = Sched.pcall2 waiter signaler in
        "done")

  let stolen_relay =
    native_target "stolen-relay" (fun () ->
        let c = Channel.create ~capacity:2 () in
        let w1 () =
          let v = Channel.recv c in
          if v = 1 then Channel.send c 2;
          v
        in
        let w2 () =
          (* BUG: consumes a token without relaying it.  Its receive is
             only reached on its third slice, and worker 1's receive
             completes by round 2 under any round-based schedule, so
             the steal needs a driven schedule that starves worker 1. *)
          Sched.yield ();
          Sched.yield ();
          Channel.recv c
        in
        let s () =
          Channel.send c 1;
          0
        in
        let vs = Sched.pcall [ w1; w2; s ] in
        "values " ^ String.concat "," (List.map string_of_int vs))

  let timeout_race =
    native_target "timeout-race" (fun () ->
        (* Two timeouts, one on each side of its deadline: the fast body
           beats its timer, the slow body is cancelled by it.  Both races
           are decided on the virtual clock, so any schedule resolves
           them the same way — the workload exists to pin the timer
           wheel's trace (sleep parks, clock jumps, the Timeout/Cancel
           pair) under record/replay. *)
        let show = function
          | Ok v -> v
          | Error f -> Resil.failure_to_string f
        in
        let fast =
          Resil.with_timeout 50 (fun () ->
              Sched.sleep 5;
              "fast")
        in
        let slow =
          Resil.with_timeout 5 (fun () ->
              Sched.sleep 50;
              "slow")
        in
        show fast ^ "/" ^ show slow)

  (* The pstack mirror of the timeout race: a [control]-armed timer
     branch cancels the slow computation by declining to reinstate the
     captured subtree — the paper's own timeout idiom. *)
  let timer_pstack_src =
    "(spawn (lambda (c)\n\
    \  (pcall list\n\
    \    (begin (sleep 1000) 'slow)\n\
    \    (begin (sleep 5) (c (lambda (pk) 'timed-out))))))"

  let timer_pstack = pstack_target "timer-pstack" timer_pstack_src

  let sup_relay =
    native_target "sup-relay" (fun () ->
        (* A one-for-one supervisor over a single-fiber relay child.  An
           injected crash at any of the child's suspension points is
           caught by its scope, surfaces as [Error (Crashed _)], and the
           supervisor restarts it; the restarted incarnation completes
           and the run still ends in a value.  The top-level try keeps a
           crash delivered to the supervisor fiber itself from escaping
           the run. *)
        try
          let r =
            Resil.Supervisor.supervise ~max_restarts:3 ~window:1000 ~backoff:5
              [
                Resil.Supervisor.child ~name:"relay" (fun () ->
                    (* single-fiber: the capacity must cover all three
                       sends, since nobody drains concurrently *)
                    let c = Channel.create ~capacity:4 () in
                    for i = 1 to 3 do
                      Channel.send c i
                    done;
                    Sched.yield ();
                    for _ = 1 to 3 do
                      ignore (Channel.recv c)
                    done);
              ]
          in
          match r with
          | Ok () -> "relay supervised ok"
          | Error f -> "supervisor gave up: " ^ Resil.failure_to_string f
        with e -> "supervisor crashed: " ^ Printexc.to_string e)

  let sup_leak =
    native_target "sup-leak" (fun () ->
        try
          (* Background fibers pad the schedule so a randomized fault
             placement almost never lands inside the worker's
             plant-to-signal window; the systematic placement enumeration
             in [Dpor.explore] always does. *)
          let pads =
            List.init 6 (fun _ ->
                Sched.future (fun () ->
                    try
                      for _ = 1 to 30 do
                        Sched.yield ()
                      done;
                      1
                    with _ -> 1))
          in
          let r =
            Resil.Supervisor.supervise ~max_restarts:2 ~window:10_000
              ~backoff:2
              [
                Resil.Supervisor.child ~name:"worker" (fun () ->
                    (* BUG: the helper lives in its own tree ([future]),
                       so the scope abort that follows a worker crash
                       never reaches it.  If the worker crashes between
                       planting the helper and signalling it, the helper
                       stays parked forever under a cancelled ancestor —
                       the no-orphan-waiters leak. *)
                    let ws = Sched.Waitset.create "leak.helper" in
                    let done_ = ref false in
                    let _h : int Sched.future =
                      Sched.future (fun () ->
                          try
                            while not !done_ do
                              Sched.block ws
                            done;
                            1
                          with _ -> 1)
                    in
                    Sched.yield ();
                    done_ := true;
                    Sched.wake ws);
              ]
          in
          let pad_sum = List.fold_left (fun a f -> a + Sched.touch f) 0 pads in
          match r with
          | Ok () -> Printf.sprintf "ok pads=%d" pad_sum
          | Error f -> "supervisor gave up: " ^ Resil.failure_to_string f
        with e -> "supervisor crashed: " ^ Printexc.to_string e)

  let all =
    [
      ("gen", gen_native);
      ("gen-pstack", gen_pstack);
      ("racing", racing 3);
      ("lost-wakeup", lost_wakeup);
      ("stolen-relay", stolen_relay);
      ("timeout-race", timeout_race);
      ("timer-pstack", timer_pstack);
      ("sup-relay", sup_relay);
      ("sup-leak", sup_leak);
    ]

  let find name = List.assoc_opt name all
  let names = List.map fst all
end
