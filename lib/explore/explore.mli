(** Deterministic record/replay and DPOR-style schedule exploration.

    The paper's point is that scheduling is a program-level object; this
    library makes it a {e file}.  Both schedulers already route every
    scheduling decision through their policy ([Driven]/[Driven_pids]) and
    stamp traces with a deterministic virtual clock, so:

    - {b record}: run a program once under any policy with a JSONL sink
      attached; the trace's [slice-begin] stream {e is} the schedule (one
      decision per slice under a driven policy, and exactly the same
      per-round stepping order under the round-based ones);
    - {b replay}: feed the recorded pid sequence back through
      [Driven_pids]; because all remaining nondeterminism lives behind
      the decision function, the replayed trace is byte-identical to the
      recording;
    - {b explore}: instead of a blind seed sweep, compute per executed
      schedule which decisions {e race} — send/recv on the same channel,
      park/wake order within a waitset, capture-vs-run of an entry the
      capture prunes — and re-run with the racing decision flipped at
      the earliest point where it was enabled (dynamic partial-order
      reduction in the style of Flanagan–Godefroid 2005).  Every
      explored run is checked against all {!Pcont_obs.Analysis.Check}
      invariants plus an optional user assertion; the first violation is
      minimized and emitted as a replayable schedule file.

    The unit both halves share is the {!Schedule.t}: the flat sequence
    of pids in slice-begin order, across every run of the trace (a psi
    session traces one run per top-level form; a faithful replay consumes
    exactly each run's slice count before the next run starts, so a flat
    sequence needs no run boundaries). *)

module Trace := Pcont_obs.Trace
module Obs := Pcont_obs.Obs

(** {1 Faults}

    Deterministic fault injection treats a fault as one more schedule
    decision: a fault is pinned to a global slice index, the scheduler
    emits an in-trace marker when it fires, and a schedule re-extracted
    from the trace re-injects at the same index — so faulty runs replay
    byte-identically like any other. *)

module Fault : sig
  type kind =
    | Crash  (** deliver {!Pcont_sched.Sched.Injected_crash} *)
    | Wake of string  (** spurious wake of a waitset, by name *)
    | Drop of int  (** drop one buffered message from a channel, by id *)

  type t = { at : int; kind : kind }
  (** Fire [kind] just before global slice [at] (counted across every
      run of the trace, like schedule decisions). *)

  val kind_to_string : kind -> string
  (** ["crash"], ["wake:<resource>"], ["drop:<chan>"]. *)

  val to_string : t -> string
  (** ["<kind>@<at>"]. *)

  val to_sched : kind -> Pcont_sched.Sched.fault

  val to_inject : t list -> int -> Pcont_sched.Sched.fault option
  (** The [?inject] hook for {!Pcont_sched.Sched.run}. *)

  val kind_of_marker : string -> kind option
  (** Parse the scheduler's in-trace [Crash] marker faults
      (["inject:crash"], ["inject:wake:<r>"], ["inject:drop:<c>"]). *)
end

(** {1 Schedules} *)

module Schedule : sig
  type t = { decisions : int array; faults : Fault.t list }
  (** The pid stepped at each scheduling decision, in decision order,
      plus the faults injected along the way. *)

  val of_trace : Trace.stamped array -> t
  (** Concatenate {!Trace.schedule} over the trace's runs and re-extract
      the injected faults from their in-trace markers. *)

  val to_json : t -> Obs.Json.t
  (** [{"version":1,"kind":"pcont-schedule","decisions":[...]}], plus a
      ["faults"] array when faults were injected. *)

  val of_json : Obs.Json.t -> (t, string) result

  val save : string -> t -> unit

  val load : string -> (t, string) result
  (** Accepts either a schedule file ({!to_json} on one line) or a JSONL
      trace, whose schedule is extracted with {!of_trace}. *)
end

(** {1 Targets}

    A target is a runnable program: the exploration engine and the
    replay harness both need to run the same program many times under
    different policies, so the program is packaged with its policy
    plumbing.  [tg_run] must be self-contained and deterministic modulo
    the policy — every call starts from fresh state. *)

type policy =
  | Default  (** [Tree_order] / [Round_robin] *)
  | Seeded of int64  (** [Randomized] *)
  | Fixed of (int array -> int)  (** [Driven_pids] *)

type target = {
  tg_name : string;
  tg_run : policy -> Fault.t list -> Obs.t option -> string;
      (** Run once, injecting the given faults; the result is a
          human-readable outcome string (value, error, or deadlock
          diagnosis). *)
}

val native_target : string -> (unit -> string) -> target
(** Package a program against [Pcont_sched.Sched].  [Sched.Deadlock] —
    and any other exception, injected crashes included — is caught and
    rendered into the outcome. *)

val pstack_target : string -> string -> target
(** [pstack_target name src] packages a Scheme program evaluated by a
    fresh [Pcont_syntax.Interp] per call (multi-form programs trace one
    run per form; the flat schedule spans them).  Fault injection is a
    native-scheduler feature: a pstack target run with faults reports an
    error outcome instead of silently ignoring them. *)

(** {1 Record / replay} *)

module Replay : sig
  type divergence = {
    d_decision : int;  (** index of the first diverging decision *)
    d_wanted : int;  (** recorded pid; [-1] = schedule exhausted early *)
    d_candidates : int array;  (** pids actually runnable at that point *)
  }

  val driver : Schedule.t -> (int array -> int) * (unit -> divergence option)
  (** A [Driven_pids] decision function that follows the schedule,
      plus a probe for the first divergence (recorded pid not runnable,
      or schedule exhausted before the run finished).  On divergence the
      driver falls back to index 0 and keeps going, so a diverged replay
      still terminates and can be diagnosed. *)

  type recording = {
    rec_trace : string;  (** JSONL bytes *)
    rec_outcome : string;
    rec_schedule : Schedule.t;
  }

  val record :
    ?policy:policy ->
    ?faults:Fault.t list ->
    ?attach:(Obs.t -> unit) ->
    target ->
    recording
  (** [?attach] is called with the recording's fresh [Obs] handle after
      the JSONL sink is installed and before the run starts — the hook
      for extra sinks (e.g. a flight-recorder ring).  Extra sinks see
      the same stream; they cannot perturb the recorded bytes. *)

  val replay : target -> Schedule.t -> recording * divergence option
  (** Re-run pinned to the schedule, re-injecting its faults. *)

  val check_roundtrip :
    ?policy:policy -> ?faults:Fault.t list -> target -> (recording, string) result
  (** Record, replay, and require byte-identical traces, identical
      outcomes and no divergence; the error says what differed first. *)
end

(** {1 DPOR exploration} *)

module Dpor : sig
  type witness = {
    w_kind : string;
        (** ["deadlock"], ["check:<rule>"] or ["assert:<msg>"] *)
    w_outcome : string;
    w_schedule : Schedule.t;  (** minimized, complete, replayable *)
    w_runs_to_find : int;  (** runs executed when the bug first showed *)
    w_forced : int;
        (** length of the forced decision prefix after minimization
            (decisions beyond it are the default fallback's) *)
  }

  type stats = {
    s_runs : int;  (** schedules executed (excluding minimization probes) *)
    s_probes : int;  (** extra runs spent minimizing the witness *)
    s_schedules : int;  (** distinct complete schedules *)
    s_skeletons : int;  (** distinct causal skeletons among them *)
    s_races : int;  (** backtrack points seeded *)
    s_witness : witness option;
  }

  val skeleton : Trace.stamped array -> string
  (** Canonical causal-skeleton fingerprint of a trace: pids renamed to
      spawn order, each pid's program-order causal facts (spawns, exits,
      channel ops, capture/reinstate labels, invalid controllers,
      deadlock) — the projection [Analysis.Diff] compares — extended
      with the global per-resource operation orders (send/recv order per
      channel, park/wake order per waitset), as one hashable string.
      Operations on a shared resource are the dependent ones, so the
      fingerprint is a Mazurkiewicz-trace invariant: two schedules have
      equal skeletons iff no racing pair is ordered differently, making
      them redundant for bug-finding purposes. *)

  val explore :
    ?max_runs:int ->
    ?deadlock_is_bug:bool ->
    ?fault_menu:Fault.kind list ->
    ?max_fault_slices:int ->
    ?check:(Trace.stamped array -> string -> string option) ->
    target ->
    stats
  (** Explore interleavings of the target, starting from the default
      driven schedule and backtracking on races, until a bug is found,
      the frontier is exhausted, or [max_runs] (default 200) schedules
      have run.  A bug is a {!Pcont_obs.Analysis.Check} violation, a
      deadlock (unless [deadlock_is_bug] is [false]), or [check trace
      outcome] returning [Some msg].  The first bug is minimized by
      bisecting the forced-prefix length (extra runs are counted in
      [s_probes], and the minimized schedule is re-verified; the faults,
      being part of the schedule, are kept).

      With a non-empty [fault_menu], fault placements are explored too:
      after the fault-free root run, one single-fault schedule is queued
      per (menu kind, slice index) pair over the root run's slices
      (capped at [max_fault_slices], default 200), and each placement
      then grows its own backtrack tree — schedule races and fault
      timing compose.  The witness schedule carries its faults, so
      [ptrace replay] reproduces the faulty run byte for byte. *)

  type sweep = {
    sw_seeds : int;
    sw_skeletons : int;  (** distinct skeletons across the sweep *)
    sw_found : (int * string) option;
        (** (1-based index of the first seed that hit a bug, kind) *)
  }

  val seed_sweep :
    ?seeds:int ->
    ?deadlock_is_bug:bool ->
    ?fault_menu:Fault.kind list ->
    ?check:(Trace.stamped array -> string -> string option) ->
    target ->
    sweep
  (** The baseline the exploration displaces: run [seeds] (default 100)
      [Randomized] schedules with seeds 1..n and look for the same bugs.
      With a non-empty [fault_menu], each seed additionally runs once
      with a single seed-derived fault placement (kind and slice index
      hashed from the seed over the clean run's slice count) — the
      randomized analogue of [explore]'s systematic placement
      enumeration.  Used by bench e13 for the redundancy comparison and
      by the tests to show exploration finds what the sweep misses. *)
end

(** {1 Built-in workloads} *)

module Workloads : sig
  val gen_native : target
  (** The [ptrace gen --scheduler native] workload (a future plus a
      4-way pcall touching it). *)

  val gen_pstack : target
  (** The mirrored Scheme workload ([ptrace gen --scheduler pstack]). *)

  val gen_pstack_src : string

  val racing : int -> target
  (** [racing n]: n producers and n consumers racing on one capacity-1
      channel — many send/recv races, no bug; the e13 exploration
      benchmark. *)

  val lost_wakeup : target
  (** An injected lost-wakeup: the waiter re-checks its condition, then
      yields {e before} parking, so a signal delivered entirely inside
      that window is lost and the run deadlocks.  Round-based policies
      (including every [Randomized] seed) step each runnable fiber once
      per round and can never fit the signaler's two slices inside the
      window; only a driven schedule can. *)

  val stolen_relay : target
  (** An injected deadlock: worker 1 relays the token it expects; worker
      2 consumes a token without relaying, but only reaches its receive
      on its third slice.  Under any round-based schedule the token is
      consumed (and relayed) by worker 1 first, so the bug needs a
      driven schedule that delays worker 1 until worker 2's receive is
      pending. *)

  val timeout_race : target
  (** Two [Resil.with_timeout] scopes on the native timer wheel, one on
      each side of its deadline: pins the sleep/clock-jump/Timeout/Cancel
      trace under record/replay. *)

  val timer_pstack : target
  (** The pstack mirror: a timer branch [sleep]s, then cancels the slow
      branch by capturing it with [control] and declining to reinstate —
      the paper's timeout idiom, on the interpreter's virtual clock. *)

  val sup_relay : target
  (** A one-for-one supervisor over a single-fiber channel relay.  Built
      to be crashed: an injected crash at any of the child's suspension
      points surfaces as a scope failure, the supervisor restarts it,
      and the run still ends in a value (the CI fault-injection smoke
      workload). *)

  val sup_leak : target
  (** A supervised worker with a planted leak: it parks a helper in an
      independent [future] tree and only signals it after one more
      yield.  A crash injected inside that window is contained by the
      scope, but the abort cannot reach the helper's tree — the helper
      stays parked forever under a cancelled ancestor, tripping the
      [no-orphan-waiters] invariant.  Padding fibers dilute the window
      so a 100-seed randomized sweep (even with random fault
      placements) misses it; [Dpor.explore] with [fault_menu = [Crash]]
      enumerates placements and finds it deterministically. *)

  val find : string -> target option
  (** Look up by name ([gen], [gen-pstack], [racing], [lost-wakeup],
      [stolen-relay], [timeout-race], [timer-pstack], [sup-relay],
      [sup-leak]). *)

  val names : string list
end
