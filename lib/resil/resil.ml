(* Fault tolerance over the native scheduler: structured cancellation
   scopes, virtual-time timeouts, and supervision trees.

   Everything here is built from the paper's control operations — a
   scope is a [spawn] root, and every way a scope can end (completion,
   crash, cancellation, timeout) is an [abort]: the subtree is captured
   back to the root exactly as [control] would capture it, and then
   discarded instead of reinstated.  Cancellation is thus "declined
   reinstatement": the scheduler releases parked descendants, the
   replacement body runs the scope's finalizers, and the scope's result
   becomes an ['a outcome]. *)

module Sched = Pcont_sched.Sched
module Channel = Pcont_sched.Channel
module Obs = Pcont_obs.Obs
module E = Pcont_obs.Obs.Event

type failure = Cancelled of string | Crashed of string

let failure_to_string = function
  | Cancelled r -> "cancelled: " ^ r
  | Crashed r -> "crashed: " ^ r

type 'a outcome = ('a, failure) result

(* ------------------------------------------------------------------ *)
(* Scopes.                                                             *)
(* ------------------------------------------------------------------ *)

module Scope = struct
  type state = Running | Cancel_requested of string | Finished

  type t = {
    ws : Sched.Waitset.t;  (* the scope's watchdog parks here *)
    mutable state : state;
    mutable finalizers : (unit -> unit) list;  (* run LIFO on any exit *)
    mutable children : t list;  (* nested scopes: cancellation flows down *)
    mutable finalized : bool;
  }

  let make ?parent () =
    let sc =
      {
        ws = Sched.Waitset.create "resil.scope";
        state = Running;
        finalizers = [];
        children = [];
        finalized = false;
      }
    in
    (match parent with None -> () | Some p -> p.children <- sc :: p.children);
    sc

  let on_exit sc f = sc.finalizers <- f :: sc.finalizers

  let own_channel sc ch = on_exit sc (fun () -> Channel.close ch)

  let cancelled sc =
    match sc.state with Cancel_requested _ -> true | Running | Finished -> false

  (* Request cancellation: flag the scope and every nested scope, then
     wake each watchdog.  The request is asynchronous — the watchdog
     performs the abort from inside the scope's own tree, so [cancel] is
     safe to call from anywhere (another tree, a supervisor, a timer). *)
  let rec cancel sc ~reason =
    (match sc.state with
    | Running ->
        sc.state <- Cancel_requested reason;
        Sched.wake sc.ws
    | Cancel_requested _ | Finished -> ());
    List.iter (fun c -> cancel c ~reason) sc.children

  (* Finalizers run exactly once, inside the abort replacement body (a
     fresh fiber at the scope root), newest first.  A finalizer that
     raises must not mask the scope's outcome. *)
  let finalize sc =
    if not sc.finalized then begin
      sc.finalized <- true;
      List.iter (fun f -> try f () with _ -> ()) sc.finalizers
    end

  (* Run [body] under the scope.  The spawn root holds three concurrent
     branches, and every one of them exits by aborting the root:

     - the main branch runs [body]; completion aborts with [Ok v],
       an escaped exception aborts with [Error (Crashed _)];
     - the watchdog parks on the scope's waitset and aborts with
       [Error (Cancelled _)] when it observes a cancellation request
       (park is a re-check loop, so a spurious wake re-parks);
     - [extra] branches (the timeout timer) may abort on their own.

     Whichever branch aborts first wins: the abort captures and
     discards the other branches — parked, sleeping or mid-compute at a
     yield point — so the [pcall] below never returns and no branch
     outlives the scope. *)
  let run_with sc extra body =
    Sched.spawn (fun c ->
        let abort_with reason result =
          Sched.abort c ~reason (fun () ->
              finalize sc;
              result)
        in
        let crash e =
          let msg = Printexc.to_string e in
          (match Sched.obs () with
          | None -> ()
          | Some o -> Obs.emit o (E.Crash { pid = Sched.self_pid (); fault = msg }));
          sc.state <- Finished;
          abort_with ("crash: " ^ msg) (Error (Crashed msg))
        in
        let main () =
          match body () with
          | v ->
              sc.state <- Finished;
              abort_with "complete" (Ok v)
          | exception e -> crash e
        in
        let watchdog () =
          let rec watch () =
            match sc.state with
            | Cancel_requested r ->
                sc.state <- Finished;
                abort_with ("cancel: " ^ r) (Error (Cancelled r))
            | Running ->
                Sched.block sc.ws;
                watch ()
            | Finished ->
                (* unreachable: the branch that set [Finished] aborted in
                   the same slice, discarding this watchdog *)
                assert false
          in
          (* an injected crash delivered at the watchdog's park is a
             scope failure like any other *)
          try watch () with e -> crash e
        in
        ignore (Sched.pcall (main :: watchdog :: List.map (fun f -> f crash) extra));
        assert false)

  let run sc body = run_with sc [] body

  let with_scope ?parent body =
    let sc = make ?parent () in
    run sc (fun () -> body sc)
end

(* ------------------------------------------------------------------ *)
(* Timeouts.                                                           *)
(* ------------------------------------------------------------------ *)

(* A timeout is a scope with one extra branch: a timer that sleeps on
   the scheduler's virtual clock and, if the scope is still running at
   the deadline, aborts it.  Because quiescence jumps the clock to the
   earliest pending deadline, the timer fires even when every fiber in
   the system is blocked — the timeout doubles as a deadlock backstop. *)
let with_timeout ?parent d body =
  let sc = Scope.make ?parent () in
  Scope.run_with sc
    [
      (fun crash () ->
        try
          Sched.sleep d;
          match sc.Scope.state with
          | Scope.Running ->
              (match Sched.obs () with
              | None -> ()
              | Some o ->
                  Obs.emit o
                    (E.Timeout { pid = Sched.self_pid (); deadline = Sched.now () }));
              Scope.cancel sc ~reason:"timeout";
              (* the watchdog is parked on the scope's waitset; [cancel]
                 woke it, and it will abort the scope.  This timer then
                 just parks until that abort discards it. *)
              Sched.block (Sched.Waitset.create "resil.discard");
              assert false
          | Scope.Cancel_requested _ | Scope.Finished ->
              (* the scope is already on its way out; park until
                 whichever branch is aborting it discards this timer *)
              Sched.block (Sched.Waitset.create "resil.discard");
              assert false
        with e -> crash e);
    ]
    body

(* Same machinery, absolute deadline: the timer sleeps until virtual
   time [at] (no sleep at all if [at] has already passed — the request
   is dead on arrival and times out before the body runs a slice).
   This is the open-loop load generator's per-request deadline: the
   budget counts from the *scheduled arrival*, not from whenever the
   scope got around to starting, so admission lag eats into it. *)
let with_deadline ?parent ~at body =
  let sc = Scope.make ?parent () in
  Scope.run_with sc
    [
      (fun crash () ->
        try
          let d = at - Sched.now () in
          if d > 0 then Sched.sleep d;
          match sc.Scope.state with
          | Scope.Running ->
              (match Sched.obs () with
              | None -> ()
              | Some o ->
                  Obs.emit o
                    (E.Timeout { pid = Sched.self_pid (); deadline = Sched.now () }));
              Scope.cancel sc ~reason:"timeout";
              Sched.block (Sched.Waitset.create "resil.discard");
              assert false
          | Scope.Cancel_requested _ | Scope.Finished ->
              Sched.block (Sched.Waitset.create "resil.discard");
              assert false
        with e -> crash e);
    ]
    body

(* ------------------------------------------------------------------ *)
(* Supervision.                                                        *)
(* ------------------------------------------------------------------ *)

module Supervisor = struct
  type strategy = One_for_one | One_for_all

  type child = { name : string; body : unit -> unit }

  let child ~name body = { name; body }

  type slot = {
    spec : child;
    mutable pid : int;  (* root fiber pid of the current incarnation *)
    mutable scope : Scope.t;
    mutable result : unit outcome option;  (* None while running *)
    mutable restarts : int list;  (* virtual times of past restarts *)
  }

  (* Run the children under supervision, each in its own scope inside
     its own independent tree ([Sched.future]), so a child crash is
     contained by its scope and control operations never cross between
     siblings.  The supervisor parks on its waitset; children wake it
     when they deliver an outcome.

     Restart intensity: a child's restart log is pruned to the sliding
     [window] of virtual time; when a failure arrives with [max_restarts]
     restarts already in the window, the supervisor gives up — it cancels
     every live child, waits for all of them to deliver, and returns the
     triggering failure.  Otherwise it backs off exponentially in virtual
     time ([backoff * 2^(attempt-1)]) before restarting. *)
  let supervise ?(strategy = One_for_one) ?(max_restarts = 3) ?(window = 1000)
      ?(backoff = 10) specs =
    if specs = [] then invalid_arg "Supervisor.supervise: no children";
    let sup_ws = Sched.Waitset.create "resil.supervisor" in
    let slots =
      List.map
        (fun spec ->
          { spec; pid = -1; scope = Scope.make (); result = None; restarts = [] })
        specs
    in
    let start slot =
      slot.result <- None;
      let sc = Scope.make () in
      slot.scope <- sc;
      let _ : unit Sched.future =
        Sched.future (fun () ->
            slot.pid <- Sched.self_pid ();
            let r = Scope.run sc slot.spec.body in
            slot.result <- Some r;
            Sched.wake sup_ws)
      in
      ()
    in
    (* Park until [p] holds.  The waitset is woken by child deliveries;
       re-check on every wake. *)
    let rec await p =
      if not (p ()) then begin
        Sched.block sup_ws;
        await p
      end
    in
    let cancel_live reason =
      List.iter
        (fun s ->
          if s.result = None then Scope.cancel s.scope ~reason)
        slots
    in
    let all_delivered () = List.for_all (fun s -> s.result <> None) slots in
    let rec loop () =
      match
        List.find_opt
          (fun s -> match s.result with Some (Error _) -> true | _ -> false)
          slots
      with
      | Some failed -> (
          let f =
            match failed.result with Some (Error f) -> f | _ -> assert false
          in
          let now = Sched.now () in
          failed.restarts <-
            List.filter (fun t -> t > now - window) failed.restarts;
          let attempt = List.length failed.restarts + 1 in
          if attempt > max_restarts then begin
            (* intensity exceeded: shut the whole supervisor down.  The
               Crash marker makes any attached flight recorder dump its
               window — a supervisor giving up is exactly the post-mortem
               moment.  (Non-"inject:" faults are ignored by schedule
               extraction, so replay is unaffected.) *)
            (match Sched.obs () with
            | None -> ()
            | Some o ->
                Obs.emit o
                  (E.Crash
                     { pid = Sched.self_pid (); fault = "supervisor-give-up" }));
            cancel_live "supervisor-giving-up";
            await all_delivered;
            Error f
          end
          else begin
            let delay = backoff * (1 lsl (attempt - 1)) in
            (match strategy with
            | One_for_one -> ()
            | One_for_all ->
                (* stop the siblings before the backoff so nothing runs
                   on a half-failed configuration *)
                List.iter
                  (fun s ->
                    if s != failed && s.result = None then
                      Scope.cancel s.scope ~reason:"sibling-crash")
                  slots;
                await all_delivered);
            Sched.sleep delay;
            failed.restarts <- Sched.now () :: failed.restarts;
            (match Sched.obs () with
            | None -> ()
            | Some o ->
                Obs.emit o
                  (E.Restart
                     {
                       pid = Sched.self_pid ();
                       child = failed.pid;
                       attempt;
                       backoff = delay;
                       limit = max_restarts;
                     }));
            (match strategy with
            | One_for_one -> start failed
            | One_for_all -> List.iter start slots);
            loop ()
          end)
      | None ->
          if all_delivered () then Ok ()
          else begin
            Sched.block sup_ws;
            loop ()
          end
    in
    List.iter start slots;
    loop ()
end
