(** Fault tolerance over the native scheduler ({!Pcont_sched.Sched}):
    structured cancellation scopes, virtual-time timeouts, and
    supervision trees.

    Everything here is derived from the paper's control operations.  A
    scope is a [spawn] root, and every way it can end — completion,
    crash, cancellation, timeout — is an [abort]: the subtree is
    captured back to the root exactly as [control] would capture it,
    then discarded instead of reinstated.  Cancellation is {e declined
    reinstatement}; the scheduler releases the subtree's parked fibers,
    and the replacement body runs the scope's finalizers.

    Trace-wise, a scope exit emits a [Cancel] event listing every
    discarded pid; crashes emit [Crash], timeouts [Timeout], supervisor
    restarts [Restart] — the events checked by the
    [cancel-propagation-complete], [no-orphan-waiters] and
    [restart-intensity-bounded] invariants in {!Pcont_obs.Analysis}. *)

type failure =
  | Cancelled of string  (** the scope was cancelled (reason) *)
  | Crashed of string  (** an exception escaped the scope's body *)

val failure_to_string : failure -> string

type 'a outcome = ('a, failure) result

module Scope : sig
  type t
  (** A cancellation scope: a unit of work that can be cancelled as a
      whole, with finalizers that run on every exit path. *)

  val make : ?parent:t -> unit -> t
  (** A fresh scope.  With [parent], cancelling the parent also cancels
      this scope (cancellation flows down the scope tree). *)

  val run : t -> (unit -> 'a) -> 'a outcome
  (** Run the body under the scope, as a [spawn]-rooted subtree of the
      calling fiber.  Returns [Ok v] on completion, [Error (Crashed _)]
      if an exception escapes the body, [Error (Cancelled _)] if the
      scope is cancelled first — in every case after aborting the whole
      subtree (concurrent branches, parked fibers, sleepers included)
      and running the finalizers (newest first).  Must be called inside
      {!Pcont_sched.Sched.run}. *)

  val with_scope : ?parent:t -> (t -> 'a) -> 'a outcome
  (** [run] with the scope passed to the body (for self-cancellation or
      registering finalizers from inside). *)

  val cancel : t -> reason:string -> unit
  (** Request cancellation of the scope and every scope nested under
      it.  Asynchronous and idempotent: each scope's watchdog fiber
      performs the abort from inside the scope's own tree, so [cancel]
      is safe to call from anywhere — another tree, a supervisor, a
      timer — and at any time (a no-op on finished scopes). *)

  val cancelled : t -> bool
  (** A cancellation has been requested and not yet taken effect. *)

  val on_exit : t -> (unit -> unit) -> unit
  (** Register a finalizer.  Finalizers run exactly once, newest first,
      in the abort's replacement fiber, whatever the exit path; a
      raising finalizer is swallowed (it cannot mask the outcome). *)

  val own_channel : t -> 'a Pcont_sched.Channel.t -> unit
  (** The scope owns the channel: close it on exit, so fibers outside
      the scope that are blocked on it observe end-of-stream instead of
      deadlocking. *)
end

val with_timeout : ?parent:Scope.t -> int -> (unit -> 'a) -> 'a outcome
(** [with_timeout d body] runs [body] in a fresh scope that is
    cancelled (reason ["timeout"]) if it is still running when the
    scheduler's virtual clock has advanced [d] units.  Emits a
    [Timeout] event when the timer fires.  Because quiescence jumps the
    virtual clock to the earliest pending deadline, the timeout fires
    even when every fiber in the system is blocked — it doubles as a
    deadlock backstop. *)

val with_deadline : ?parent:Scope.t -> at:int -> (unit -> 'a) -> 'a outcome
(** [with_deadline ~at body] is {!with_timeout} with an {e absolute}
    virtual-time deadline: the scope is cancelled (reason ["timeout"])
    if it is still running when the clock reaches [at].  If [at] has
    already passed when the scope starts, the timer fires without
    sleeping — the body is cancelled before it can run a slice.  This
    is the deadline shape an open-loop load generator needs: the
    request's budget counts from its {e scheduled arrival}, so
    admission lag (the generator falling behind under load) eats into
    the budget instead of silently extending it. *)

module Supervisor : sig
  type strategy =
    | One_for_one  (** restart only the failed child *)
    | One_for_all  (** cancel the siblings, then restart all children *)

  type child

  val child : name:string -> (unit -> unit) -> child

  val supervise :
    ?strategy:strategy ->
    ?max_restarts:int ->
    ?window:int ->
    ?backoff:int ->
    child list ->
    unit outcome
  (** Run the children under supervision, each in its own scope inside
      its own independent tree ({!Pcont_sched.Sched.future}), so a
      child's crash is contained by its scope and control operations
      never cross between siblings.  A child that fails (crash or
      cancellation) is restarted per [strategy] after an exponential
      backoff in virtual time ([backoff * 2^(attempt-1)]); each restart
      emits a [Restart] event with the attempt number.

      Restart intensity is bounded by a sliding window: when a child
      fails with [max_restarts] restarts already inside the last
      [window] units of virtual time, the supervisor gives up — it
      cancels every live child, waits for them to deliver, and returns
      the triggering failure.  Returns [Ok ()] when every child has
      completed successfully. *)
end
