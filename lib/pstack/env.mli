(** Environments: chains of flat rib frames over a table of global cells.

    The lexical part of an environment is [Types.env = value array list]
    — one array ("rib") per binding form, innermost first.  The
    resolution pass ({!Resolve}) compiles every variable occurrence to a
    (depth, slot) address into this chain, so runtime access never
    compares a name.  Globals are mutable {!Types.gcell}s interned by
    name in a {!Types.genv} table shared by resolution and [define]. *)

val empty : unit -> Types.genv
(** A fresh, empty global table. *)

val intern : Types.genv -> string -> Types.gcell
(** The cell for [name], creating an unbound one if none exists.
    Resolution and [define] intern into the same table, so a reference
    compiled before the definition shares the cell bound later. *)

val define_global : Types.genv -> string -> Types.value -> unit
(** Top-level [define]: create or overwrite a global binding. *)

val lookup_global : Types.genv -> string -> Types.gcell option
(** The cell for [name] if it is currently bound. *)

val local : Types.env -> int -> int -> Types.value
(** [local env depth slot] reads a lexical address. *)

val set_local : Types.env -> int -> int -> Types.value -> unit

val bind_params :
  Types.closure -> Types.value list -> (Types.env, string) result
(** Build the activation rib for a closure call: fixed parameters in
    slots [0..nparams-1] and, for variadic procedures, the collected
    rest list in the final slot.  Checks arity. *)
