(** Lexical addressing: compile {!Ir.t} to the resolved IR executed by
    the machine.

    Every variable occurrence becomes either [Rlocal (depth, slot)] — an
    index into the chain of rib frames the machine maintains at runtime —
    or [Rglobal cell], a pre-interned mutable cell in the global table.
    References to names that are not (yet) defined intern an {e unbound}
    cell: the error ["unbound variable: x"] is still raised by name at
    use time, and a later top-level [define] of [x] bounds the same cell,
    so forward references among top-level definitions keep working.

    The pass is total (it never fails) and purely structural: each source
    node maps to exactly one resolved node, so the machine performs the
    same number of transitions and pushes the same frames per construct
    as it did on the unresolved IR — experiment counters are unchanged. *)

val toplevel : Types.genv -> Ir.t -> Types.rir
(** Resolve a top-level form: free variables are globals in [genv]. *)

val resolve : Types.genv -> (string * int) list list -> Ir.t -> Types.rir
(** Resolve under explicit compile-time scopes (innermost rib first);
    exposed for tests. *)

val const_value : Ir.const -> Types.value

val quoted_value : Ir.quoted -> Types.value
(** Build the (fresh, possibly mutable) value of a quoted literal. *)
