open Types

let empty () : genv = Hashtbl.create 64

let intern (genv : genv) name =
  match Hashtbl.find_opt genv name with
  | Some g -> g
  | None ->
      let g = { gname = name; gval = Undef; gbound = false } in
      Hashtbl.add genv name g;
      g

let define_global genv name v =
  let g = intern genv name in
  g.gval <- v;
  g.gbound <- true

let lookup_global (genv : genv) name =
  match Hashtbl.find_opt genv name with
  | Some g when g.gbound -> Some g
  | _ -> None

let rec rib_at (env : env) d =
  match env with
  | rib :: rest -> if d = 0 then rib else rib_at rest (d - 1)
  | [] -> invalid_arg "Env.rib_at: address beyond environment depth"

let local env d s = (rib_at env d).(s)

let set_local env d s v = (rib_at env d).(s) <- v

let bind_params closure args =
  let { nparams; has_rest; cenv; _ } = closure in
  let nargs = List.length args in
  if nargs < nparams then
    Error
      (Printf.sprintf "procedure expects %s%d arguments, got %d"
         (if has_rest then "at least " else "")
         nparams nargs)
  else if (not has_rest) && nargs > nparams then
    Error (Printf.sprintf "procedure expects %d arguments, got %d" nparams nargs)
  else begin
    let rib = Array.make (nparams + if has_rest then 1 else 0) Undef in
    let rec fill i args =
      if i < nparams then
        match args with
        | v :: rest ->
            Array.unsafe_set rib i v;
            fill (i + 1) rest
        | [] -> assert false
      else if has_rest then rib.(nparams) <- Value.values_to_list args
    in
    fill 0 args;
    Ok (rib :: cenv)
  end
