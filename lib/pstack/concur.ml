open Types
module Counters = Pcont_util.Counters
module Xorshift = Pcont_util.Xorshift
module Obs = Pcont_obs.Obs
module E = Pcont_obs.Obs.Event

type sched =
  | Round_robin
  | Randomized of int64
  | Driven of (int -> int)
      (* each scheduling decision steps exactly one runnable branch:
         [pick n] receives the number of runnable branches and returns the
         index of the one to step (reduced modulo the runnable count) —
         systematic schedule exploration *)
  | Driven_pids of (int array -> int)
      (* as Driven, but the decision function sees the runnable branches'
         node ids in queue order — the hook record/replay needs to pin a
         recorded schedule by pid rather than by position *)

type outcome =
  | Value of Types.value
  | Error of string
  | Out_of_fuel
  | Deadlock of string
      (* every remaining branch is parked on an unresolved future: the
         run queue is empty, so no branch can ever resolve one *)

let outcome_to_string = function
  | Value v -> "VALUE " ^ Value.to_string v
  | Error msg -> "ERROR " ^ msg
  | Out_of_fuel -> "OUT-OF-FUEL"
  | Deadlock msg -> "DEADLOCK " ^ msg

(* The live process tree.  A node is a leaf (a branch with its own local
   stack), a fork created by pcall, or done (its value delivered to the
   parent fork).  Captured subtrees are converted to the immutable
   [Types.ptree] form and their nodes discarded. *)
type node = { nid : int; mutable parent : parent; mutable body : body }

and parent = Ptop | Pfut of future_cell | Pchild of node * int

and body = Nleaf of state | Nfork of nfork | Nparked of parked | Ndone

and nfork = {
  trunk : segment list;
  children : node array;
  results : value option array;
  mutable pending : int;
}

(* A branch parked on a pending touch.  The branch keeps its machine
   state (re-enqueueing it re-applies the touch, which now finds the
   cell resolved); [pk_live] is cleared when the branch is woken or when
   a capture prunes it into a process continuation, so a stale wake
   thunk left on the cell does nothing.  [pk_round] is the scheduling
   round the branch parked in, for the park-latency histogram. *)
and parked = {
  pk_node : node;
  pk_st : state;
  mutable pk_live : bool;
  pk_round : int;
  pk_res : string;  (* resource class ("future", "timer") for diagnostics *)
}

let control_points ptree =
  let count_roots segs =
    List.length (List.filter (fun s -> match s.root with Rspawn _ -> true | _ -> false) segs)
  in
  let rec go = function
    | Pleaf st -> count_roots st.pstack
    | Phole segs -> count_roots segs
    | Pdone -> 0
    | Pfork pf ->
        1 + count_roots pf.pf_trunk + Array.fold_left (fun n t -> n + go t) 0 pf.pf_children
  in
  go ptree

(* Total segments in a captured subtree — the "size" reported by capture
   and reinstate events (what a copying implementation would touch). *)
let tree_segments ptree =
  let rec go = function
    | Pleaf st -> List.length st.pstack
    | Phole segs -> List.length segs
    | Pdone -> 0
    | Pfork pf ->
        List.length pf.pf_trunk
        + Array.fold_left (fun n t -> n + go t) 0 pf.pf_children
  in
  go ptree

let invalid_controller l =
  Printf.sprintf
    "invalid controller application: no process root labeled %d in the \
     current continuation"
    l

let run ?(fuel = 10_000_000) ?(quantum = 16) ?(sched = Round_robin)
    ?(drain_futures = true) ?obs ?cfg genv ir =
  let cfg = match cfg with Some c -> c | None -> Machine.config () in
  let counters = cfg.Machine.counters in
  (* Route the machine's per-operation size distributions into the
     handle's histograms for the duration of this run. *)
  let saved_metrics = cfg.Machine.metrics in
  (match obs with
  | None -> ()
  | Some o -> cfg.Machine.metrics <- Some (Obs.metrics o));
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  (* The current scheduling round, for the park-latency histogram. *)
  let rounds = ref 0 in
  (* Virtual time: advanced by the fuel each slice charges (at least 1),
     with or without a trace handle, so [sleep] never depends on whether
     the run is observed.  Kept in lockstep with [Obs.advance]. *)
  let vclock = ref 0 in
  (* Sleeping branches, sorted by deadline (FIFO among equal deadlines).
     Entries are ordinary [parked] records, so a capture that prunes a
     sleeper invalidates it here exactly as it would on a future's
     waitset — the grafted branch then resumes (early) from its sleep. *)
  let timers = ref [] in
  let insert_timer deadline p =
    let rec ins = function
      | [] -> [ (deadline, p) ]
      | (d, _) :: _ as l when deadline < d -> (deadline, p) :: l
      | e :: rest -> e :: ins rest
    in
    timers := ins !timers
  in
  (* Causal-span context.  [cur_span] is the span the branch being
     stepped is inside (-1 = none); it is loaded from [node_span] at
     slice begin and stored back at slice end, so a span follows its
     branch across slices.  Children inherit the spawning branch's span
     at fork/future/graft.  Span ids are program-visible ([span-begin]
     returns one), so without a trace handle they come from a local
     counter and the program behaves identically. *)
  let cur_span = ref (-1) in
  let node_span : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let span_parent : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let span_ctr = ref 0 in
  let inherit_span nid =
    if !cur_span >= 0 then Hashtbl.replace node_span nid !cur_span
  in
  (* Virtual time each branch was last woken, consumed at its next slice
     begin for the wake-to-run latency distribution. *)
  let wake_ts : (int, int) Hashtbl.t = Hashtbl.create 32 in
  (* Hot-path distributions, resolved to their views once per run; the
     throwaway table when unobserved is never fed (every observation
     site is guarded on [obs]). *)
  let smx =
    match obs with Some o -> Obs.metrics o | None -> Obs.Metrics.create ()
  in
  let s_fuel = Obs.Metrics.series smx "concur.slice.fuel" in
  let s_runq = Obs.Metrics.series smx "concur.runq.depth" in
  let s_park = Obs.Metrics.series smx "concur.park.rounds" in
  let s_wake_run = Obs.Metrics.series smx "concur.wake.run" in
  let root =
    {
      nid = 0;
      parent = Ptop;
      body = Nleaf (Machine.initial (Resolve.toplevel genv ir));
    }
  in
  (match obs with
  | None -> ()
  | Some o -> Obs.emit o (E.Spawn { pid = 0; parent = -1; kind = "root" }));
  (* The run queue: runnable leaves of the whole forest (Section 8's main
     tree plus one tree per future), maintained incrementally in tree
     order.  Entries go stale when a capture prunes them out of the live
     tree; they are dropped by the [attached] filter at the start of each
     round, so a round costs O(runnable), not O(forest). *)
  let queue = ref [ root ] in
  (* Newly runnable leaves produced by the step in progress, in tree
     order; spliced into the queue at the stepped node's position. *)
  let born = ref [] in
  (* Future trees planted this round; appended after all existing trees. *)
  let new_trees = ref [] in
  let live_futures = ref 0 in
  let final = ref None in
  let failure = ref None in
  let fuel_left = ref fuel in
  (* Every parked record ever created this run (live or invalidated),
     for the deadlock diagnosis; [n_parked] counts the live ones. *)
  let all_parked = ref [] in
  let n_parked = ref 0 in
  let rng =
    match sched with
    | Round_robin | Driven _ | Driven_pids _ -> None
    | Randomized seed -> Some (Xorshift.create seed)
  in

  (* A node is attached iff following parent links reaches the live root
     through matching child slots.  Nodes pruned into a process continuation
     fail this test and are skipped by the scheduler. *)
  let rec attached_walk n =
    match n.parent with
    | Ptop -> n == root
    | Pfut _ -> ( match n.body with Ndone -> false | _ -> true)
    | Pchild (p, i) -> (
        match p.body with
        | Nfork f -> i < Array.length f.children && f.children.(i) == n && attached_walk p
        | _ -> false)
  in

  (* Only captures ever detach a node from the live tree (grafts reuse
     captured, already-detached trees), so until one has happened every
     non-[Ndone] node is attached and the parent-chain walk can be skipped.  (A finished root reports detached
     here where the walk would not, but callers always guard with
     [is_leaf], which is false for [Ndone].) *)
  let prunes = ref 0 in
  let attached n =
    if !prunes = 0 then match n.body with Ndone -> false | _ -> true
    else attached_walk n
  in

  let rec collect_leaves acc n =
    match n.body with
    | Nleaf _ -> n :: acc
    | Nparked _ | Ndone -> acc
    | Nfork f -> Array.fold_left collect_leaves acc f.children
  in

  let fork_of n = match n.body with Nfork f -> f | _ -> assert false in

  (* Deliver a branch's final value to its parent fork; when the fork's last
     child completes, the fork resumes as a leaf applying the first value to
     the rest in the trunk. *)
  let deliver n v =
    (match obs with
    | None -> ()
    | Some o -> Obs.emit o (E.Exit { pid = n.nid }));
    n.body <- Ndone;
    match n.parent with
    | Ptop -> final := Some v
    | Pfut cell ->
        cell.fvalue <- Some v;
        decr live_futures;
        (* Wake the branches parked on this cell, in park (FIFO) order:
           [fwaiters] is newest-first and the thunks prepend to [born],
           so iterating in place leaves the oldest waiter first in the
           queue; the wake events are then emitted in that same park
           order, the order the branches will actually run in. *)
        (match cell.fwaiters with
        | [] -> ()
        | ws ->
            cell.fwaiters <- [];
            let pids = List.filter_map (fun wake -> wake ()) ws in
            (match obs with
            | None -> ()
            | Some o ->
                List.iter
                  (fun pid ->
                    Hashtbl.replace wake_ts pid !vclock;
                    Obs.emit o (E.Wake { pid; resource = "future" }))
                  (List.rev pids)))
    | Pchild (p, slot) ->
        let f = fork_of p in
        f.results.(slot) <- Some v;
        f.pending <- f.pending - 1;
        if f.pending = 0 then begin
          let vs = Array.to_list (Array.map Option.get f.results) in
          match vs with
          | op :: args ->
              p.body <- Nleaf { control = Capply (op, args); pstack = f.trunk };
              born := [ p ]
          | [] -> assert false
        end

  (* pcall: turn this leaf into a fork; every subexpression becomes a child
     branch with a fresh local stack. *)
  and do_fork n st exprs env' =
    Counters.incr counters "concur.fork";
    let k = List.length exprs in
    let f =
      {
        trunk = st.pstack;
        children = Array.make k n;
        results = Array.make k None;
        pending = k;
      }
    in
    n.body <- Nfork f;
    List.iteri
      (fun i e ->
        f.children.(i) <-
          {
            nid = fresh_id ();
            parent = Pchild (n, i);
            body = Nleaf { control = Ceval (e, env'); pstack = Machine.initial_pstack };
          })
      exprs;
    Array.iter (fun c -> inherit_span c.nid) f.children;
    (match obs with
    | None -> ()
    | Some o ->
        Array.iter
          (fun c -> Obs.emit o (E.Spawn { pid = c.nid; parent = n.nid; kind = "branch" }))
          f.children);
    born := Array.to_list f.children

  (* Controller application whose root is not in the invoking branch's local
     stack: climb the tree for the nearest trunk containing the root, prune
     the subtree of stacks it delimits, and apply the controller's argument
     to the packaged process continuation in the remaining trunk. *)
  and do_capture n st l body_fn =
    (* Every stack that ends up aliased by the packaged [Pktree] must be
       pinned: segments are mutable records and a multi-shot continuation
       can graft the same records back twice, so the machine has to
       copy-on-write rather than mutate them (and never pool them). *)
    let rec ptree_of m =
      if m == n then (
        Machine.pin_segments st.pstack;
        Phole st.pstack)
      else
        match m.body with
        | Nleaf s ->
            Machine.pin_segments s.pstack;
            Pleaf s
        | Nparked p ->
            (* Pruning a parked waiter: invalidate its wake thunk (the
               cell may resolve while the subtree is captured) and
               capture it as an ordinary suspended leaf; on graft the
               rebuilt branch re-applies its pending touch, which either
               finds the cell resolved or parks again. *)
            p.pk_live <- false;
            decr n_parked;
            Machine.pin_segments p.pk_st.pstack;
            Pleaf p.pk_st
        | Ndone -> Pdone
        | Nfork f ->
            Machine.pin_segments f.trunk;
            Pfork
              {
                pf_trunk = f.trunk;
                pf_children = Array.map ptree_of f.children;
                pf_results = Array.copy f.results;
              }
    in
    let rec climb cur =
      match cur.parent with
      | Ptop | Pfut _ -> None
      | Pchild (p, _) -> (
          let f = fork_of p in
          match Machine.split_at_spawn_label l f.trunk with
          | Some (above_incl, below) -> Some (p, f, above_incl, below)
          | None -> climb p)
    in
    match climb n with
    | None ->
        (match obs with
        | None -> ()
        | Some o -> Obs.emit o (E.Invalid_controller { pid = n.nid; label = l }));
        failure := Some (invalid_controller l)
    | Some (p, f, above_incl, below) ->
        incr prunes;
        Counters.incr counters "concur.capture";
        Counters.incr counters "sync.lock";
        Machine.pin_segments above_incl;
        let tree =
          Pfork
            {
              pf_trunk = above_incl;
              pf_children = Array.map ptree_of f.children;
              pf_results = Array.copy f.results;
            }
        in
        let cp = control_points tree in
        Counters.add counters "concur.capture.control-points" cp;
        (match obs with
        | None -> ()
        | Some o ->
            let size = tree_segments tree in
            Obs.observe o "concur.capture.control-points" cp;
            Obs.observe o "concur.capture.segments" size;
            Obs.emit o
              (E.Capture
                 { pid = n.nid; label = l; root_pid = p.nid; control_points = cp; size }));
        let pk = Pktree { pkt_label = l; pkt_tree = tree } in
        p.body <- Nleaf { control = Capply (body_fn, [ pk ]); pstack = below };
        born := [ p ]

  (* Invoke a tree-shaped process continuation: graft the saved subtree onto
     the invoking branch.  The saved trunk is spliced on top of the invoking
     branch's stack, every saved leaf is rebuilt as a fresh node, and the
     continuation's argument is returned at the saved hole. *)
  and do_graft n st pkt v =
    Counters.incr counters "concur.graft";
    (match obs with
    | None -> ()
    | Some o ->
        Obs.emit o
          (E.Reinstate
             { pid = n.nid; label = pkt.pkt_label; size = tree_segments pkt.pkt_tree }));
    let rec rebuild parent pt =
      let m = { nid = fresh_id (); parent; body = Ndone } in
      (* reinstated branches run under the reinstating fiber's span *)
      inherit_span m.nid;
      (match pt with
      | Phole segs -> m.body <- Nleaf { control = Creturn v; pstack = segs }
      | Pleaf s -> m.body <- Nleaf s
      | Pdone -> m.body <- Ndone
      | Pfork pf ->
          let k = Array.length pf.pf_children in
          let f =
            {
              trunk = pf.pf_trunk;
              children = Array.make k m;
              results = Array.copy pf.pf_results;
              pending = Array.fold_left (fun c r -> if r = None then c + 1 else c) 0 pf.pf_results;
            }
          in
          m.body <- Nfork f;
          Array.iteri (fun i child -> f.children.(i) <- rebuild (Pchild (m, i)) child) pf.pf_children);
      m
    in
    match pkt.pkt_tree with
    | Pfork pf ->
        let k = Array.length pf.pf_children in
        let f =
          {
            trunk = pf.pf_trunk @ st.pstack;
            children = Array.make k n;
            results = Array.copy pf.pf_results;
            pending = Array.fold_left (fun c r -> if r = None then c + 1 else c) 0 pf.pf_results;
          }
        in
        n.body <- Nfork f;
        Array.iteri (fun i child -> f.children.(i) <- rebuild (Pchild (n, i)) child) pf.pf_children;
        born := List.rev (collect_leaves [] n);
        (match obs with
        | None -> ()
        | Some o ->
            (* Announce every rebuilt node (forks included) in one batch
               event, parents before children, so trace consumers never
               see a pid whose spawn was skipped — one event instead of
               one per rebuilt node. *)
            let acc = ref [] in
            let rec collect parent m =
              acc := (m.nid, parent) :: !acc;
              match m.body with
              | Nfork f -> Array.iter (collect m.nid) f.children
              | Nleaf _ | Nparked _ | Ndone -> ()
            in
            Array.iter (collect n.nid) f.children;
            let nodes = Array.of_list (List.rev !acc) in
            Obs.emit o (E.Spawn_batch { pid = n.nid; kind = "graft"; nodes }))
    | Phole _ | Pleaf _ | Pdone ->
        (* Captures always package a fork at the top. *)
        assert false
  in

  (* Step one branch for up to [quantum] transitions, or until it blocks on
     a scheduler-level event. *)
  let step_leaf n =
    (* [failure] can only be set by this branch's own handlers, which all
       terminate the loop, so it is checked once at entry rather than per
       step.  Fork/future interceptions consume quantum but no fuel, as a
       fresh leaf takes their place. *)
    let rec go st q =
      if q = 0 || !fuel_left <= 0 then n.body <- Nleaf st
      else
        match Machine.step_exn_conc cfg st with
        | st' ->
            decr fuel_left;
            go st' (q - 1)
        | exception Machine.Stop s -> (
            match s with
            | Machine.Esc_fork (exprs, env') -> do_fork n st exprs env'
            | Machine.Esc_future (e, env') ->
                (* Plant an independent tree in the forest; the current
                   branch continues immediately with the (pending)
                   future. *)
                Counters.incr counters "concur.future";
                let cell = { fvalue = None; fwaiters = [] } in
                let fnode =
                  {
                    nid = fresh_id ();
                    parent = Pfut cell;
                    body =
                      Nleaf { control = Ceval (e, env'); pstack = Machine.initial_pstack };
                  }
                in
                inherit_span fnode.nid;
                (match obs with
                | None -> ()
                | Some o ->
                    Obs.emit o
                      (E.Spawn { pid = fnode.nid; parent = n.nid; kind = "future" }));
                new_trees := fnode :: !new_trees;
                incr live_futures;
                go { st with control = Creturn (Future cell) } (q - 1)
            | Machine.Esc_touch cell ->
                (* Still pending: park the branch on the cell's waitset
                   and take it out of the run queue.  Parking consumes no
                   fuel — a blocked branch takes no machine transitions —
                   and the branch keeps its state, so the wake-up re-step
                   re-applies the touch against the now-resolved cell.
                   (Before parked waiters this retried — and was charged —
                   every round: a spinning fuel leak.) *)
                Counters.incr counters "concur.park";
                (match obs with
                | None -> ()
                | Some o ->
                    Obs.emit o (E.Park { pid = n.nid; resource = "future" }));
                let p =
                  { pk_node = n; pk_st = st; pk_live = true; pk_round = !rounds;
                    pk_res = "future" }
                in
                n.body <- Nparked p;
                incr n_parked;
                all_parked := p :: !all_parked;
                cell.fwaiters <-
                  (fun () ->
                    if p.pk_live then begin
                      p.pk_live <- false;
                      decr n_parked;
                      Counters.incr counters "concur.wake";
                      (match obs with
                      | None -> ()
                      | Some _ ->
                          Obs.Metrics.observe_series s_park (!rounds - p.pk_round));
                      p.pk_node.body <- Nleaf p.pk_st;
                      born := p.pk_node :: !born;
                      Some p.pk_node.nid
                    end
                    else None)
                  :: cell.fwaiters
            | Machine.Esc_sleep d ->
                (* Park on the timer wheel until the virtual clock reaches
                   the deadline.  The saved state returns 0 from the sleep
                   call, so a woken — or captured-and-grafted — sleeper
                   resumes past it (a grafted sleeper wakes early, like
                   any pruned parked waiter).  No fuel: a sleeping branch
                   takes no machine transitions. *)
                Counters.incr counters "concur.park";
                (match obs with
                | None -> ()
                | Some o -> Obs.emit o (E.Park { pid = n.nid; resource = "timer" }));
                let p =
                  { pk_node = n;
                    pk_st = { st with control = Creturn (Int 0) };
                    pk_live = true; pk_round = !rounds; pk_res = "timer" }
                in
                n.body <- Nparked p;
                incr n_parked;
                all_parked := p :: !all_parked;
                insert_timer (!vclock + max d 0) p
            | Machine.Esc_span_begin name ->
                (* The id is program-visible, so it is allocated whether
                   or not a trace handle is attached (from the handle so
                   flight dumps and live traces agree, or from a local
                   counter).  No fuel: like fork/future, an interception
                   rather than a machine transition. *)
                let id =
                  match obs with
                  | Some o -> Obs.Span.begin_ o ~pid:n.nid ~parent:!cur_span name
                  | None ->
                      incr span_ctr;
                      !span_ctr
                in
                Hashtbl.replace span_parent id !cur_span;
                cur_span := id;
                go { st with control = Creturn (Int id) } (q - 1)
            | Machine.Esc_span_end id ->
                (match obs with
                | None -> ()
                | Some o -> Obs.Span.end_ o ~pid:n.nid id);
                if !cur_span = id then
                  cur_span :=
                    (match Hashtbl.find_opt span_parent id with
                    | Some parent -> parent
                    | None -> -1);
                Hashtbl.remove span_parent id;
                go { st with control = Creturn Unit } (q - 1)
            | _ -> (
                decr fuel_left;
                match s with
                | Machine.Final v -> deliver n v
                | Machine.Err msg -> failure := Some msg
                | Machine.Esc_control (l, body_fn) -> do_capture n st l body_fn
                | Machine.Esc_pktree (pkt, v) -> do_graft n st pkt v
                | Machine.Next _ | Machine.Esc_fork _ | Machine.Esc_future _
                | Machine.Esc_touch _ | Machine.Esc_sleep _
                | Machine.Esc_span_begin _ | Machine.Esc_span_end _ ->
                    assert false))
    in
    match n.body with
    | Nleaf st ->
        if !failure = None then begin
          (* A run slice: everything the branch does before the
             scheduler moves on.  The virtual clock advances by the
             fuel charged (at least 1, so zero-fuel interception
             slices still have visible extent) whether or not a trace
             handle is attached, which keeps timestamps — and timer
             behavior — deterministic and independent of observation,
             and makes Chrome-trace slice widths proportional to
             machine work. *)
          cur_span :=
            (match Hashtbl.find_opt node_span n.nid with Some s -> s | None -> -1);
          (match obs with
          | None -> ()
          | Some o -> (
              Obs.emit o (E.Slice_begin { pid = n.nid });
              match Hashtbl.find_opt wake_ts n.nid with
              | Some w ->
                  Hashtbl.remove wake_ts n.nid;
                  Obs.Metrics.observe_series s_wake_run (!vclock - w)
              | None -> ()));
          let fuel0 = !fuel_left in
          go st quantum;
          if !cur_span >= 0 then Hashtbl.replace node_span n.nid !cur_span
          else Hashtbl.remove node_span n.nid;
          let used = fuel0 - !fuel_left in
          vclock := !vclock + (if used > 0 then used else 1);
          match obs with
          | None -> ()
          | Some o ->
              Obs.advance o (if used > 0 then used else 1);
              Obs.Metrics.observe_series s_fuel used;
              Obs.emit o (E.Slice_end { pid = n.nid; fuel = used })
        end
    | Nfork _ | Nparked _ | Ndone -> ()
  in

  let is_leaf n = match n.body with Nleaf _ -> true | _ -> false in

  (* The nodes that take the stepped node's place in the queue: itself if
     it is still a runnable leaf, then whatever the step made runnable
     (fork children, a resumed parent, a grafted subtree's leaves).
     Because a subtree's leaves are contiguous in tree order, splicing
     them at the stepped node's position keeps the queue in the same
     order a full forest walk would produce. *)
  let successors n =
    match !born with
    | [] ->
        (* No fork, capture, graft or delivery happened, so the node's
           attachment is unchanged from the pre-step check; skip the
           parent-chain walk. *)
        if is_leaf n then [ n ] else []
    | b -> if is_leaf n && attached n then n :: b else b
  in

  (* One scheduling round over the compacted queue of live leaves.  Cost
     is O(runnable), not O(forest): stale entries (pruned by a capture,
     or no longer leaves) are dropped up front, and each processed
     position is replaced by its successors. *)
  let round () =
    incr rounds;
    (match obs with
    | None -> ()
    | Some _ ->
        (* Queue length may include entries gone stale since the last
           compaction; it is the work the round is about to look at. *)
        Obs.Metrics.observe_series s_runq (List.length !queue));
    new_trees := [];
    (match sched with
    | (Driven _ | Driven_pids _) as driven ->
        (* Systematic exploration: one decision, one branch, one quantum.
           The pick contract needs the exact live count, so compact the
           queue up front. *)
        let live = List.filter (fun n -> is_leaf n && attached n) !queue in
        let arr = Array.of_list live in
        let count = Array.length arr in
        if count = 0 then queue := []
        else begin
          let raw =
            match driven with
            | Driven pick -> pick count
            | Driven_pids pick -> pick (Array.map (fun n -> n.nid) arr)
            | Round_robin | Randomized _ -> assert false
          in
          (* Out-of-range picks are reduced modulo the runnable count
             (mirrors sched.ml) so a decision function written against
             one schedule stays total when the run diverges. *)
          let idx = ((raw mod count) + count) mod count in
          let n = arr.(idx) in
          born := [];
          if !failure = None && !fuel_left > 0 && attached n then step_leaf n;
          let before = Array.to_list (Array.sub arr 0 idx) in
          let after = Array.to_list (Array.sub arr (idx + 1) (count - idx - 1)) in
          queue := before @ successors n @ after
        end
    | Round_robin ->
        (* Single fused pass: compact lazily while stepping, replacing
           each stepped position by its successors in place.  One queue
           traversal and no intermediate arrays per round. *)
        let rec go acc = function
          | [] -> queue := List.rev acc
          | n :: rest ->
              if is_leaf n && attached n then
                if !failure = None && !fuel_left > 0 then begin
                  born := [];
                  step_leaf n;
                  (* [successors] inlined to avoid building the singleton
                     list on the common nothing-born path. *)
                  match !born with
                  | [] -> if is_leaf n then go (n :: acc) rest else go acc rest
                  | b ->
                      let acc =
                        if is_leaf n && attached n then List.rev_append b (n :: acc)
                        else List.rev_append b acc
                      in
                      go acc rest
                end
                else go (n :: acc) rest
              else go acc rest
        in
        go [] !queue
    | Randomized _ ->
        (* The shuffle must range over exactly the live leaves (the same
           permutation a fresh forest walk would be dealt), so compact
           first.  Only the processing order is shuffled; each node's
           successors still land in its tree-order bucket. *)
        let live = List.filter (fun n -> is_leaf n && attached n) !queue in
        let arr = Array.of_list live in
        let count = Array.length arr in
        let buckets = Array.make (max count 1) [] in
        let order = Array.init count (fun i -> i) in
        (match rng with None -> () | Some g -> Xorshift.shuffle g order);
        Array.iter
          (fun i ->
            let n = arr.(i) in
            born := [];
            if is_leaf n && attached n then
              if !failure = None && !fuel_left > 0 then begin
                step_leaf n;
                buckets.(i) <- successors n
              end
              else buckets.(i) <- [ n ]
            else
              (* Detached or resolved since the compaction at the top of
                 the round (a sibling's step pruned or completed it):
                 drop it, exactly as the Round_robin pass does. *)
              buckets.(i) <- [])
          order;
        queue := List.concat (Array.to_list buckets));
    if !new_trees <> [] then queue := !queue @ List.rev !new_trees
  in

  (* Quiescence = deadlock: the queue only ever loses a node without a
     delivery when the node parks, so an empty queue with no final value
     and no failure means every remaining branch is parked on a future
     that no runnable branch can resolve. *)
  let deadlock_msg () =
    let live = List.filter (fun p -> p.pk_live) (List.rev !all_parked) in
    match live with
    | [] -> "no runnable branches"
    | _ ->
        (* Root-to-leaf path through the process tree for each blocked
           branch, so the diagnostic names where in the computation it
           hangs, not just what it waits on. *)
        let path n =
          let rec climb acc m =
            match m.parent with
            | Ptop | Pfut _ -> m.nid :: acc
            | Pchild (p, _) -> climb (m.nid :: acc) p
          in
          climb [] n |> List.map string_of_int |> String.concat ">"
        in
        let tally = Hashtbl.create 7 in
        List.iter
          (fun p ->
            let ps = try Hashtbl.find tally p.pk_res with Not_found -> [] in
            Hashtbl.replace tally p.pk_res (path p.pk_node :: ps))
          live;
        let parts =
          Hashtbl.fold (fun res ps acc -> (res, List.rev ps) :: acc) tally []
          |> List.sort compare
          |> List.map (fun (res, ps) ->
                 Printf.sprintf "%d on %s (paths %s)" (List.length ps) res
                   (String.concat ", " ps))
        in
        Printf.sprintf "%d branch(es) parked: %s" (List.length live)
          (String.concat ", " parts)
  in

  (* Wake every live timer whose deadline has arrived.  Expiry happens
     between rounds, so appending to the queue is safe (the driven
     branch's queue snapshot has already been written back). *)
  let expire_due () =
    let rec split acc = function
      | (d, p) :: rest when d <= !vclock -> split (p :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let due, rest = split [] !timers in
    timers := rest;
    let woken = ref [] in
    List.iter
      (fun p ->
        if p.pk_live then begin
          p.pk_live <- false;
          decr n_parked;
          Counters.incr counters "concur.wake";
          (match obs with
          | None -> ()
          | Some o ->
              Obs.Metrics.observe_series s_park (!rounds - p.pk_round);
              Hashtbl.replace wake_ts p.pk_node.nid !vclock;
              Obs.emit o (E.Wake { pid = p.pk_node.nid; resource = "timer" }));
          p.pk_node.body <- Nleaf p.pk_st;
          woken := p.pk_node :: !woken
        end)
      due;
    if !woken <> [] then queue := !queue @ List.rev !woken
  in
  (* Quiescent with timers pending: jump the virtual clock to the
     earliest deadline instead of declaring deadlock, so timeouts stay a
     liveness backstop even when every branch is blocked. *)
  let jump_clock_to d =
    let delta = d - !vclock in
    vclock := d;
    match obs with
    | Some o when delta > 0 -> Obs.advance o delta
    | _ -> ()
  in
  let rec drive () =
    match (!final, !failure) with
    | _, Some msg -> Error msg
    | Some v, None ->
        (* Join-on-exit: finish the remaining independent trees so futures
           created by this program remain touchable afterwards (bounded by
           the remaining fuel).  Stop at quiescence: a future tree parked
           forever (e.g. on a cell nothing will resolve) empties the
           queue, and spinning on it would never terminate — but a tree
           that is merely sleeping is not quiescent: the clock jumps and
           the drain continues. *)
        if drain_futures && !live_futures > 0 && !fuel_left > 0 then begin
          expire_due ();
          if !queue <> [] then begin
            round ();
            drive ()
          end
          else begin
            timers := List.filter (fun (_, p) -> p.pk_live) !timers;
            match !timers with
            | (d, _) :: _ ->
                jump_clock_to d;
                drive ()
            | [] -> Value v
          end
        end
        else Value v
    | None, None ->
        if !fuel_left <= 0 then Out_of_fuel
        else begin
          expire_due ();
          if !queue = [] then begin
            timers := List.filter (fun (_, p) -> p.pk_live) !timers;
            match !timers with
            | (d, _) :: _ ->
                jump_clock_to d;
                drive ()
            | [] ->
                (match obs with
                | None -> ()
                | Some o -> Obs.emit o (E.Deadlock { parked = !n_parked }));
                Deadlock (deadlock_msg ())
          end
          else begin
            round ();
            drive ()
          end
        end
  in
  Fun.protect ~finally:(fun () -> cfg.Machine.metrics <- saved_metrics) drive
