open Types

(* Lexical addressing: compile Ir.t to the resolved IR of Types.rir.
   Compile-time scopes mirror the runtime rib chain exactly: one
   (name, slot) list per rib, innermost first.  Within a rib the list is
   ordered so that a head-first scan reproduces the shadowing of the old
   assoc-list environments — the last binding of a duplicated name wins,
   and a fixed parameter shadows a rest parameter of the same name. *)

let const_value : Ir.const -> value = function
  | Ir.Cint n -> Int n
  | Ir.Cbool b -> Bool b
  | Ir.Cstr s -> Str s
  | Ir.Csym s -> Sym s
  | Ir.Cchar c -> Char c
  | Ir.Cnil -> Nil
  | Ir.Cunit -> Unit

let rec quoted_value : Ir.quoted -> value = function
  | Ir.Qint n -> Int n
  | Ir.Qbool b -> Bool b
  | Ir.Qstr s -> Str s
  | Ir.Qsym s -> Sym s
  | Ir.Qchar c -> Char c
  | Ir.Qnil -> Nil
  | Ir.Qlist qs -> Value.values_to_list (List.map quoted_value qs)
  | Ir.Qdot (qs, tail) ->
      List.fold_right
        (fun q acc -> Value.cons (quoted_value q) acc)
        qs (quoted_value tail)

(* Slot i goes to name i; consing in order puts later bindings first, so
   the head-first scan below finds the winning (last) duplicate. *)
let scope_of_names ?rest names =
  let n = List.length names in
  let base = match rest with None -> [] | Some r -> [ (r, n) ] in
  let rec go i acc = function
    | [] -> acc
    | x :: xs -> go (i + 1) ((x, i) :: acc) xs
  in
  go 0 base names

let lookup_scopes scopes name =
  let rec scan_rib = function
    | [] -> None
    | (x, slot) :: rest ->
        if String.equal x name then Some slot else scan_rib rest
  in
  let rec go depth = function
    | [] -> None
    | rib :: outer -> (
        match scan_rib rib with
        | Some slot -> Some (depth, slot)
        | None -> go (depth + 1) outer)
  in
  go 0 scopes

let rec resolve genv scopes (ir : Ir.t) : rir =
  match ir with
  | Ir.Const c -> Ir.Rconst (const_value c)
  | Ir.Quoted ((Ir.Qlist _ | Ir.Qdot _) as q) ->
      (* Mutable structure: must be rebuilt fresh per evaluation. *)
      Ir.Rquoted q
  | Ir.Quoted q -> Ir.Rconst (quoted_value q)
  | Ir.Var x -> (
      match lookup_scopes scopes x with
      | Some (d, s) -> Ir.Rlocal (d, s)
      | None -> Ir.Rglobal (Env.intern genv x))
  | Ir.Lam { params; rest; body } ->
      let rib = scope_of_names ?rest params in
      Ir.Rlam
        {
          rnparams = List.length params;
          rhas_rest = rest <> None;
          rbody = resolve genv (rib :: scopes) body;
        }
  | Ir.App (f, args) ->
      Ir.Rapp (resolve genv scopes f, List.map (resolve genv scopes) args)
  | Ir.If (c, t, e) ->
      Ir.Rif (resolve genv scopes c, resolve genv scopes t, resolve genv scopes e)
  | Ir.Seq es -> Ir.Rseq (List.map (resolve genv scopes) es)
  | Ir.Let ([], body) ->
      (* No rib at runtime, so no scope at compile time. *)
      Ir.Rlet ([], resolve genv scopes body)
  | Ir.Let (bs, body) ->
      let inits = List.map (fun (_, e) -> resolve genv scopes e) bs in
      let rib = scope_of_names (List.map fst bs) in
      Ir.Rlet (inits, resolve genv (rib :: scopes) body)
  | Ir.Letrec ([], body) -> Ir.Rletrec ([], resolve genv scopes body)
  | Ir.Letrec (bs, body) ->
      let rib = scope_of_names (List.map fst bs) in
      let scopes' = rib :: scopes in
      Ir.Rletrec
        ( List.map (fun (_, e) -> resolve genv scopes' e) bs,
          resolve genv scopes' body )
  | Ir.Set (x, e) -> (
      match lookup_scopes scopes x with
      | Some (d, s) -> Ir.Rset_local (d, s, resolve genv scopes e)
      | None -> Ir.Rset_global (Env.intern genv x, resolve genv scopes e))
  | Ir.Future e -> Ir.Rfuture (resolve genv scopes e)
  | Ir.Pcall es -> Ir.Rpcall (List.map (resolve genv scopes) es)

let toplevel genv ir = resolve genv [] ir
