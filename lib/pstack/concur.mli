(** The concurrent implementation: a tree of stacks (Section 7).

    Each [pcall] turns the evaluating branch into a {e fork} whose trunk is
    the process stack below the fork point; every subexpression becomes a
    child branch with its own local stack.  A deterministic cooperative
    scheduler interleaves runnable branches (simulated processors), stepping
    each for a fixed quantum of machine transitions.

    Controller application from within a branch first searches the branch's
    local stack (handled by {!Machine.step}); failing that, the scheduler
    climbs the process tree looking for the nearest trunk segment carrying
    the controller's root.  The subtree of stacks rooted at that segment —
    including {e all} concurrently executing sibling branches, which are
    suspended at quantum boundaries — is pruned from the tree and packaged
    into a tree-shaped process continuation.  Invoking such a continuation
    grafts the saved subtree onto the invoking branch and resumes every
    saved leaf.  Pruning counts one simulated mutual-exclusion acquisition
    ("sync.lock"), per the paper's remark that concurrent removal requires
    cooperation between processors.

    Process continuations remain multi-shot: grafting rebuilds fresh tree
    nodes from the immutable captured structure each time.

    Limitation: [dynamic-wind] winders are honoured by captures within a
    single branch's stack; a cross-branch prune does not run winders in
    sibling branches or trunk segments (suspension of a branch is not an
    exit, and the 1994 Subcontinuations semantics is sequential). *)

type sched =
  | Round_robin  (** deterministic: branches step in tree order *)
  | Randomized of int64  (** seeded shuffle of the branch order each round *)
  | Driven of (int -> int)
      (** systematic schedule exploration: each scheduling decision steps
          exactly one runnable branch (for one quantum); [pick n] receives
          the number of runnable branches and chooses which.  The returned
          index is reduced modulo the runnable count ([((i mod n) + n) mod
          n]), so any integer is a valid decision and a decision function
          computed against one schedule stays total if the run diverges —
          the same contract as [Pcont_sched.Sched.Driven].  Combine with
          [~quantum:1] for the finest interleavings. *)
  | Driven_pids of (int array -> int)
      (** like {!Driven}, but the decision function receives the runnable
          branches' pids (node ids as they appear in the event stream) in
          queue order and returns the index of the one to step, reduced
          modulo the array length.  This is the record/replay hook: a
          schedule extracted from a trace is a pid sequence, and matching
          on pids rather than queue positions makes the replay robust to
          how the queue happens to be ordered. *)

type outcome =
  | Value of Types.value
  | Error of string
  | Out_of_fuel
  | Deadlock of string
      (** the run queue drained while branches remained parked on
          unresolved futures: no runnable branch can ever resolve them.
          (Before parked waiters this spun to {!Out_of_fuel}.) *)

val outcome_to_string : outcome -> string

val run :
  ?fuel:int ->
  ?quantum:int ->
  ?sched:sched ->
  ?drain_futures:bool ->
  ?obs:Pcont_obs.Obs.t ->
  ?cfg:Machine.config ->
  Types.genv ->
  Ir.t ->
  outcome
(** Resolve a program against the global table and evaluate it under the
    concurrent scheduler.  The scheduler keeps an incrementally
    maintained run queue of runnable leaves (lazily validated against
    the live tree), so a round costs O(runnable branches) rather than a
    walk of the whole process forest; the observable schedule of every
    policy is the same as a full tree-order walk.  [fuel] bounds the
    total number of machine transitions across all branches (default
    10_000_000); [quantum] is the number of transitions a branch may take
    before the scheduler moves on (default 16).

    [(future e)] plants an {e independent} tree in the process forest
    (Section 8): controllers cannot capture across its boundary, and
    pruning the creating subtree does not disturb it.  With [drain_futures]
    (default true) the scheduler keeps running remaining future trees after
    the main tree finishes, so futures stay touchable across top-level
    forms; with it off they are discarded, and touching one later is an
    error.

    A branch that touches a pending future {e parks} on the future's
    cell: it leaves the run queue (consuming no fuel while blocked) and
    is re-enqueued by the delivery of the cell's value, so a round costs
    O(runnable), not O(runnable + blocked).  When the queue drains while
    parked branches remain, the run terminates with {!Deadlock} instead
    of burning the remaining fuel.  A capture that prunes parked
    branches into a process continuation invalidates their wake thunks
    and captures them as ordinary suspended leaves: grafting the
    continuation re-applies their pending touches, which find the cell
    resolved or park again.

    [obs] attaches an observability handle (see {!Pcont_obs.Obs}): the
    scheduler emits the full process-lifecycle event stream —
    spawn/exit, run slices with fuel charged, park/wake,
    capture/reinstate with control-point counts and segment totals,
    deadlock — and records the [concur.*] histograms (fuel per slice,
    run-queue depth, capture size, park latency in rounds).  Events are
    stamped with a deterministic virtual clock (cumulative fuel), so a
    fixed seed yields a byte-stable trace.  With no handle the
    instrumentation reduces to one pattern match per site: no events
    are allocated and results, counters and schedules are bit-for-bit
    those of an uninstrumented run. *)

val control_points : Types.ptree -> int
(** Labels plus forks in a captured subtree — the quantity the paper's
    complexity claim is stated in terms of. *)
