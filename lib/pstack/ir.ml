type const =
  | Cint of int
  | Cbool of bool
  | Cstr of string
  | Csym of string
  | Cchar of char
  | Cnil
  | Cunit

type quoted =
  | Qint of int
  | Qbool of bool
  | Qstr of string
  | Qsym of string
  | Qchar of char
  | Qnil
  | Qlist of quoted list
  | Qdot of quoted list * quoted

type t =
  | Const of const
  | Quoted of quoted
  | Var of string
  | Lam of lambda
  | App of t * t list
  | If of t * t * t
  | Seq of t list
  | Let of (string * t) list * t
  | Letrec of (string * t) list * t
  | Set of string * t
  | Future of t
  | Pcall of t list

and lambda = { params : string list; rest : string option; body : t }

let int n = Const (Cint n)

let bool b = Const (Cbool b)

let str s = Const (Cstr s)

let sym s = Const (Csym s)

let var x = Var x

let lam params body = Lam { params; rest = None; body }

let lam_rest params rest body = Lam { params; rest = Some rest; body }

let app f args = App (f, args)

let if_ c t e = If (c, t, e)

let let_ bindings body = Let (bindings, body)

let seq es = Seq es

(* Resolved IR: the output of the lexical-addressing pass (Resolve).
   Every variable occurrence is compiled to either a lexical address —
   rib depth and slot within the rib — or a pre-interned global cell, so
   the machine never scans an environment by name.  The type is
   parametric in the runtime value ['v] and global-cell ['g] types so it
   can be defined here without depending on [Types] (which itself
   depends on this module). *)
type ('v, 'g) resolved =
  | Rconst of 'v
  | Rquoted of quoted
  | Rlocal of int * int  (* rib depth, slot *)
  | Rglobal of 'g
  | Rlam of ('v, 'g) rlambda
  | Rapp of ('v, 'g) resolved * ('v, 'g) resolved list
  | Rif of ('v, 'g) resolved * ('v, 'g) resolved * ('v, 'g) resolved
  | Rseq of ('v, 'g) resolved list
  | Rlet of ('v, 'g) resolved list * ('v, 'g) resolved
  | Rletrec of ('v, 'g) resolved list * ('v, 'g) resolved
  | Rset_local of int * int * ('v, 'g) resolved
  | Rset_global of 'g * ('v, 'g) resolved
  | Rfuture of ('v, 'g) resolved
  | Rpcall of ('v, 'g) resolved list

and ('v, 'g) rlambda = {
  rnparams : int;
  rhas_rest : bool;
  rbody : ('v, 'g) resolved;
}

let rec size = function
  | Const _ | Quoted _ | Var _ -> 1
  | Lam { body; _ } -> 1 + size body
  | App (f, args) -> List.fold_left (fun n a -> n + size a) (1 + size f) args
  | If (a, b, c) -> 1 + size a + size b + size c
  | Seq es | Pcall es -> List.fold_left (fun n e -> n + size e) 1 es
  | Let (bs, body) | Letrec (bs, body) ->
      List.fold_left (fun n (_, e) -> n + size e) (1 + size body) bs
  | Set (_, e) | Future e -> 1 + size e

let pp_const ppf = function
  | Cint n -> Format.fprintf ppf "%d" n
  | Cbool true -> Format.fprintf ppf "#t"
  | Cbool false -> Format.fprintf ppf "#f"
  | Cstr s -> Format.fprintf ppf "%S" s
  | Csym s -> Format.fprintf ppf "'%s" s
  | Cchar c -> Format.fprintf ppf "#\\%c" c
  | Cnil -> Format.fprintf ppf "'()"
  | Cunit -> Format.fprintf ppf "#!void"

let rec pp_quoted ppf = function
  | Qint n -> Format.fprintf ppf "%d" n
  | Qbool true -> Format.fprintf ppf "#t"
  | Qbool false -> Format.fprintf ppf "#f"
  | Qstr s -> Format.fprintf ppf "%S" s
  | Qsym s -> Format.fprintf ppf "%s" s
  | Qchar c -> Format.fprintf ppf "#\\%c" c
  | Qnil -> Format.fprintf ppf "()"
  | Qlist qs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_quoted)
        qs
  | Qdot (qs, tail) ->
      Format.fprintf ppf "(%a . %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_quoted)
        qs pp_quoted tail

let rec pp ppf = function
  | Const c -> pp_const ppf c
  | Quoted q -> Format.fprintf ppf "'%a" pp_quoted q
  | Var x -> Format.fprintf ppf "%s" x
  | Lam { params; rest; body } ->
      let pp_params ppf () =
        match rest with
        | None ->
            Format.fprintf ppf "(%a)"
              (Format.pp_print_list ~pp_sep:Format.pp_print_space
                 Format.pp_print_string)
              params
        | Some r ->
            if params = [] then Format.fprintf ppf "%s" r
            else
              Format.fprintf ppf "(%a . %s)"
                (Format.pp_print_list ~pp_sep:Format.pp_print_space
                   Format.pp_print_string)
                params r
      in
      Format.fprintf ppf "@[<hov 1>(lambda %a@ %a)@]" pp_params () pp body
  | App (f, args) ->
      Format.fprintf ppf "@[<hov 1>(%a%a)@]" pp f pp_tail args
  | If (a, b, c) ->
      Format.fprintf ppf "@[<hov 1>(if %a@ %a@ %a)@]" pp a pp b pp c
  | Seq es -> Format.fprintf ppf "@[<hov 1>(begin%a)@]" pp_tail es
  | Let (bs, body) ->
      Format.fprintf ppf "@[<hov 1>(let (%a)@ %a)@]" pp_bindings bs pp body
  | Letrec (bs, body) ->
      Format.fprintf ppf "@[<hov 1>(letrec (%a)@ %a)@]" pp_bindings bs pp body
  | Set (x, e) -> Format.fprintf ppf "@[<hov 1>(set! %s@ %a)@]" x pp e
  | Future e -> Format.fprintf ppf "@[<hov 1>(future@ %a)@]" pp e
  | Pcall es -> Format.fprintf ppf "@[<hov 1>(pcall%a)@]" pp_tail es

and pp_tail ppf = function
  | [] -> ()
  | e :: rest ->
      Format.fprintf ppf "@ %a" pp e;
      pp_tail ppf rest

and pp_bindings ppf bs =
  Format.pp_print_list ~pp_sep:Format.pp_print_space
    (fun ppf (x, e) -> Format.fprintf ppf "[%s %a]" x pp e)
    ppf bs

let to_string e = Format.asprintf "%a" pp e

let pp_resolved ~pp_value ~global_name ppf r =
  let rec go ppf = function
    | Rconst v -> pp_value ppf v
    | Rquoted q -> Format.fprintf ppf "'%a" pp_quoted q
    | Rlocal (d, s) -> Format.fprintf ppf "%%%d.%d" d s
    | Rglobal g -> Format.fprintf ppf "%s" (global_name g)
    | Rlam { rnparams; rhas_rest; rbody } ->
        Format.fprintf ppf "@[<hov 1>(lambda %d%s@ %a)@]" rnparams
          (if rhas_rest then "+rest" else "")
          go rbody
    | Rapp (f, args) -> Format.fprintf ppf "@[<hov 1>(%a%a)@]" go f tail args
    | Rif (a, b, c) ->
        Format.fprintf ppf "@[<hov 1>(if %a@ %a@ %a)@]" go a go b go c
    | Rseq es -> Format.fprintf ppf "@[<hov 1>(begin%a)@]" tail es
    | Rlet (inits, body) ->
        Format.fprintf ppf "@[<hov 1>(let (%a)@ %a)@]" inits_pp inits go body
    | Rletrec (inits, body) ->
        Format.fprintf ppf "@[<hov 1>(letrec (%a)@ %a)@]" inits_pp inits go body
    | Rset_local (d, s, e) ->
        Format.fprintf ppf "@[<hov 1>(set! %%%d.%d@ %a)@]" d s go e
    | Rset_global (g, e) ->
        Format.fprintf ppf "@[<hov 1>(set! %s@ %a)@]" (global_name g) go e
    | Rfuture e -> Format.fprintf ppf "@[<hov 1>(future@ %a)@]" go e
    | Rpcall es -> Format.fprintf ppf "@[<hov 1>(pcall%a)@]" tail es
  and tail ppf = function
    | [] -> ()
    | e :: rest ->
        Format.fprintf ppf "@ %a" go e;
        tail ppf rest
  and inits_pp ppf es =
    Format.pp_print_list ~pp_sep:Format.pp_print_space go ppf es
  in
  go ppf r

let resolved_to_string ~value_to_string ~global_name r =
  Format.asprintf "%a"
    (pp_resolved
       ~pp_value:(fun ppf v -> Format.pp_print_string ppf (value_to_string v))
       ~global_name)
    r
