open Types

let output = Buffer.create 256

let take_output () =
  let s = Buffer.contents output in
  Buffer.clear output;
  s

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let int_of name = function
  | Int n -> Ok n
  | v -> err "%s: expected an integer, got %s" name (Value.to_string v)

let rec int_fold name op acc = function
  | [] -> Ok (Int acc)
  | v :: rest -> (
      match int_of name v with
      | Ok n -> int_fold name op (op acc n) rest
      | Error e -> Error e)

let chain_compare name cmp args =
  let rec go = function
    | Int a :: (Int b :: _ as rest) -> if cmp a b then go rest else Ok (Bool false)
    | [ Int _ ] | [] -> Ok (Bool true)
    | v :: _ -> err "%s: expected an integer, got %s" name (Value.to_string v)
  in
  go args

let pure name pmin pmax fn = (name, { pname = name; pmin; pmax; pkind = Pure fn })

let ctl name arity op =
  (name, { pname = name; pmin = arity; pmax = Some arity; pkind = Ctl op })

let prim_list : (string * prim) list =
  [
    (* --- arithmetic --- *)
    pure "+" 0 None (fun args -> int_fold "+" ( + ) 0 args);
    pure "*" 0 None (fun args -> int_fold "*" ( * ) 1 args);
    pure "-" 1 None (fun args ->
        match args with
        | [ Int n ] -> Ok (Int (-n))
        | Int n :: rest -> int_fold "-" ( - ) n rest
        | v :: _ -> err "-: expected an integer, got %s" (Value.to_string v)
        | [] -> assert false);
    pure "quotient" 2 (Some 2) (fun args ->
        match args with
        | [ Int _; Int 0 ] -> err "quotient: division by zero"
        | [ Int a; Int b ] -> Ok (Int (a / b))
        | _ -> err "quotient: expected two integers");
    pure "remainder" 2 (Some 2) (fun args ->
        match args with
        | [ Int _; Int 0 ] -> err "remainder: division by zero"
        | [ Int a; Int b ] -> Ok (Int (a mod b))
        | _ -> err "remainder: expected two integers");
    pure "modulo" 2 (Some 2) (fun args ->
        match args with
        | [ Int _; Int 0 ] -> err "modulo: division by zero"
        | [ Int a; Int b ] ->
            let r = a mod b in
            Ok (Int (if (r < 0) <> (b < 0) && r <> 0 then r + b else r))
        | _ -> err "modulo: expected two integers");
    pure "abs" 1 (Some 1) (fun args ->
        match args with [ Int n ] -> Ok (Int (abs n)) | _ -> err "abs: expected an integer");
    pure "min" 1 None (fun args ->
        match args with
        | Int n :: rest -> int_fold "min" min n rest
        | _ -> err "min: expected integers");
    pure "max" 1 None (fun args ->
        match args with
        | Int n :: rest -> int_fold "max" max n rest
        | _ -> err "max: expected integers");
    pure "1+" 1 (Some 1) (fun args ->
        match args with [ Int n ] -> Ok (Int (n + 1)) | _ -> err "1+: expected an integer");
    pure "1-" 1 (Some 1) (fun args ->
        match args with [ Int n ] -> Ok (Int (n - 1)) | _ -> err "1-: expected an integer");
    pure "=" 2 None (chain_compare "=" ( = ));
    pure "<" 2 None (chain_compare "<" ( < ));
    pure "<=" 2 None (chain_compare "<=" ( <= ));
    pure ">" 2 None (chain_compare ">" ( > ));
    pure ">=" 2 None (chain_compare ">=" ( >= ));
    pure "zero?" 1 (Some 1) (fun args ->
        match args with
        | [ Int n ] -> Ok (Bool (n = 0))
        | [ v ] -> err "zero?: expected an integer, got %s" (Value.to_string v)
        | _ -> assert false);
    pure "even?" 1 (Some 1) (fun args ->
        match args with [ Int n ] -> Ok (Bool (n mod 2 = 0)) | _ -> err "even?: expected an integer");
    pure "odd?" 1 (Some 1) (fun args ->
        match args with [ Int n ] -> Ok (Bool (abs (n mod 2) = 1)) | _ -> err "odd?: expected an integer");
    (* --- predicates --- *)
    pure "not" 1 (Some 1) (fun args ->
        match args with [ v ] -> Ok (Bool (not (Value.is_truthy v))) | _ -> assert false);
    pure "null?" 1 (Some 1) (fun args ->
        match args with [ Nil ] -> Ok (Bool true) | [ _ ] -> Ok (Bool false) | _ -> assert false);
    pure "pair?" 1 (Some 1) (fun args ->
        match args with [ Pair _ ] -> Ok (Bool true) | [ _ ] -> Ok (Bool false) | _ -> assert false);
    pure "number?" 1 (Some 1) (fun args ->
        match args with [ Int _ ] -> Ok (Bool true) | [ _ ] -> Ok (Bool false) | _ -> assert false);
    pure "boolean?" 1 (Some 1) (fun args ->
        match args with [ Bool _ ] -> Ok (Bool true) | [ _ ] -> Ok (Bool false) | _ -> assert false);
    pure "symbol?" 1 (Some 1) (fun args ->
        match args with [ Sym _ ] -> Ok (Bool true) | [ _ ] -> Ok (Bool false) | _ -> assert false);
    pure "string?" 1 (Some 1) (fun args ->
        match args with [ Str _ ] -> Ok (Bool true) | [ _ ] -> Ok (Bool false) | _ -> assert false);
    pure "char?" 1 (Some 1) (fun args ->
        match args with [ Char _ ] -> Ok (Bool true) | [ _ ] -> Ok (Bool false) | _ -> assert false);
    pure "vector?" 1 (Some 1) (fun args ->
        match args with [ Vector _ ] -> Ok (Bool true) | [ _ ] -> Ok (Bool false) | _ -> assert false);
    pure "future?" 1 (Some 1) (fun args ->
        match args with [ Future _ ] -> Ok (Bool true) | [ _ ] -> Ok (Bool false) | _ -> assert false);
    pure "procedure?" 1 (Some 1) (fun args ->
        match args with
        | [ (Closure _ | Prim _ | Controller _ | Pk _ | Pktree _ | Cont _ | Fcont _) ] ->
            Ok (Bool true)
        | [ _ ] -> Ok (Bool false)
        | _ -> assert false);
    pure "eq?" 2 (Some 2) (fun args ->
        match args with [ a; b ] -> Ok (Bool (Value.eqv a b)) | _ -> assert false);
    pure "eqv?" 2 (Some 2) (fun args ->
        match args with [ a; b ] -> Ok (Bool (Value.eqv a b)) | _ -> assert false);
    pure "equal?" 2 (Some 2) (fun args ->
        match args with [ a; b ] -> Ok (Bool (Value.equal a b)) | _ -> assert false);
    (* --- pairs and lists --- *)
    pure "cons" 2 (Some 2) (fun args ->
        match args with [ a; d ] -> Ok (Value.cons a d) | _ -> assert false);
    pure "car" 1 (Some 1) (fun args ->
        match args with
        | [ Pair p ] -> Ok p.car
        | [ v ] -> err "car: not a pair: %s" (Value.to_string v)
        | _ -> assert false);
    pure "cdr" 1 (Some 1) (fun args ->
        match args with
        | [ Pair p ] -> Ok p.cdr
        | [ v ] -> err "cdr: not a pair: %s" (Value.to_string v)
        | _ -> assert false);
    pure "set-car!" 2 (Some 2) (fun args ->
        match args with
        | [ Pair p; v ] ->
            p.car <- v;
            Ok Unit
        | _ -> err "set-car!: expected a pair");
    pure "set-cdr!" 2 (Some 2) (fun args ->
        match args with
        | [ Pair p; v ] ->
            p.cdr <- v;
            Ok Unit
        | _ -> err "set-cdr!: expected a pair");
    pure "caar" 1 (Some 1) (fun args ->
        match args with
        | [ Pair { car = Pair p; _ } ] -> Ok p.car
        | _ -> err "caar: bad argument");
    pure "cadr" 1 (Some 1) (fun args ->
        match args with
        | [ Pair { cdr = Pair p; _ } ] -> Ok p.car
        | _ -> err "cadr: bad argument");
    pure "cddr" 1 (Some 1) (fun args ->
        match args with
        | [ Pair { cdr = Pair p; _ } ] -> Ok p.cdr
        | _ -> err "cddr: bad argument");
    pure "cdar" 1 (Some 1) (fun args ->
        match args with
        | [ Pair { car = Pair p; _ } ] -> Ok p.cdr
        | _ -> err "cdar: bad argument");
    pure "list" 0 None (fun args -> Ok (Value.values_to_list args));
    pure "length" 1 (Some 1) (fun args ->
        match args with
        | [ v ] -> (
            match Value.list_to_values v with
            | Some vs -> Ok (Int (List.length vs))
            | None -> err "length: not a proper list")
        | _ -> assert false);
    pure "append" 0 None (fun args ->
        let rec go = function
          | [] -> Ok Nil
          | [ last ] -> Ok last
          | v :: rest -> (
              match Value.list_to_values v with
              | None -> err "append: not a proper list"
              | Some vs -> (
                  match go rest with
                  | Ok tail -> Ok (List.fold_right Value.cons vs tail)
                  | Error e -> Error e))
        in
        go args);
    pure "reverse" 1 (Some 1) (fun args ->
        match args with
        | [ v ] -> (
            match Value.list_to_values v with
            | Some vs -> Ok (Value.values_to_list (List.rev vs))
            | None -> err "reverse: not a proper list")
        | _ -> assert false);
    pure "list-ref" 2 (Some 2) (fun args ->
        match args with
        | [ v; Int i ] -> (
            match Value.list_to_values v with
            | Some vs when i >= 0 && i < List.length vs -> Ok (List.nth vs i)
            | Some _ -> err "list-ref: index out of range"
            | None -> err "list-ref: not a proper list")
        | _ -> err "list-ref: expected a list and an integer");
    pure "memq" 2 (Some 2) (fun args ->
        match args with
        | [ x; l ] ->
            let rec go = function
              | Nil -> Ok (Bool false)
              | Pair p -> if Value.eqv x p.car then Ok (Pair p) else go p.cdr
              | _ -> err "memq: not a proper list"
            in
            go l
        | _ -> assert false);
    pure "member" 2 (Some 2) (fun args ->
        match args with
        | [ x; l ] ->
            let rec go = function
              | Nil -> Ok (Bool false)
              | Pair p -> if Value.equal x p.car then Ok (Pair p) else go p.cdr
              | _ -> err "member: not a proper list"
            in
            go l
        | _ -> assert false);
    pure "assq" 2 (Some 2) (fun args ->
        match args with
        | [ x; l ] ->
            let rec go = function
              | Nil -> Ok (Bool false)
              | Pair { car = Pair entry; cdr } ->
                  if Value.eqv x entry.car then Ok (Pair entry) else go cdr
              | _ -> err "assq: not an association list"
            in
            go l
        | _ -> assert false);
    pure "assoc" 2 (Some 2) (fun args ->
        match args with
        | [ x; l ] ->
            let rec go = function
              | Nil -> Ok (Bool false)
              | Pair { car = Pair entry; cdr } ->
                  if Value.equal x entry.car then Ok (Pair entry) else go cdr
              | _ -> err "assoc: not an association list"
            in
            go l
        | _ -> assert false);
    (* --- strings and symbols --- *)
    pure "string-length" 1 (Some 1) (fun args ->
        match args with
        | [ Str s ] -> Ok (Int (String.length s))
        | _ -> err "string-length: expected a string");
    pure "string-append" 0 None (fun args ->
        let buf = Buffer.create 16 in
        let rec go = function
          | [] -> Ok (Str (Buffer.contents buf))
          | Str s :: rest ->
              Buffer.add_string buf s;
              go rest
          | v :: _ -> err "string-append: expected a string, got %s" (Value.to_string v)
        in
        go args);
    pure "substring" 3 (Some 3) (fun args ->
        match args with
        | [ Str s; Int a; Int b ] ->
            if a >= 0 && b >= a && b <= String.length s then Ok (Str (String.sub s a (b - a)))
            else err "substring: index out of range"
        | _ -> err "substring: expected a string and two integers");
    pure "string=?" 2 (Some 2) (fun args ->
        match args with
        | [ Str a; Str b ] -> Ok (Bool (String.equal a b))
        | _ -> err "string=?: expected two strings");
    pure "number->string" 1 (Some 1) (fun args ->
        match args with
        | [ Int n ] -> Ok (Str (string_of_int n))
        | _ -> err "number->string: expected an integer");
    pure "string->number" 1 (Some 1) (fun args ->
        match args with
        | [ Str s ] -> (
            match int_of_string_opt s with Some n -> Ok (Int n) | None -> Ok (Bool false))
        | _ -> err "string->number: expected a string");
    pure "symbol->string" 1 (Some 1) (fun args ->
        match args with
        | [ Sym s ] -> Ok (Str s)
        | _ -> err "symbol->string: expected a symbol");
    pure "string->symbol" 1 (Some 1) (fun args ->
        match args with
        | [ Str s ] -> Ok (Sym s)
        | _ -> err "string->symbol: expected a string");
    (* --- vectors --- *)
    pure "vector" 0 None (fun args -> Ok (Vector (Array.of_list args)));
    pure "make-vector" 1 (Some 2) (fun args ->
        match args with
        | [ Int n ] when n >= 0 -> Ok (Vector (Array.make n (Int 0)))
        | [ Int n; fill ] when n >= 0 -> Ok (Vector (Array.make n fill))
        | _ -> err "make-vector: expected a non-negative size");
    pure "vector-ref" 2 (Some 2) (fun args ->
        match args with
        | [ Vector a; Int i ] ->
            if i >= 0 && i < Array.length a then Ok a.(i)
            else err "vector-ref: index out of range"
        | _ -> err "vector-ref: expected a vector and an integer");
    pure "vector-set!" 3 (Some 3) (fun args ->
        match args with
        | [ Vector a; Int i; v ] ->
            if i >= 0 && i < Array.length a then begin
              a.(i) <- v;
              Ok Unit
            end
            else err "vector-set!: index out of range"
        | _ -> err "vector-set!: expected a vector, an integer and a value");
    pure "vector-length" 1 (Some 1) (fun args ->
        match args with
        | [ Vector a ] -> Ok (Int (Array.length a))
        | _ -> err "vector-length: expected a vector");
    pure "vector->list" 1 (Some 1) (fun args ->
        match args with
        | [ Vector a ] -> Ok (Value.values_to_list (Array.to_list a))
        | _ -> err "vector->list: expected a vector");
    pure "list->vector" 1 (Some 1) (fun args ->
        match args with
        | [ v ] -> (
            match Value.list_to_values v with
            | Some vs -> Ok (Vector (Array.of_list vs))
            | None -> err "list->vector: not a proper list")
        | _ -> assert false);
    (* --- output --- *)
    pure "display" 1 (Some 1) (fun args ->
        match args with
        | [ v ] ->
            Buffer.add_string output (Value.display_string v);
            Ok Unit
        | _ -> assert false);
    pure "write" 1 (Some 1) (fun args ->
        match args with
        | [ v ] ->
            Buffer.add_string output (Value.to_string v);
            Ok Unit
        | _ -> assert false);
    pure "newline" 0 (Some 0) (fun _ ->
        Buffer.add_char output '\n';
        Ok Unit);
    pure "void" 0 (Some 0) (fun _ -> Ok Unit);
    pure "error" 1 None (fun args ->
        let msg = String.concat " " (List.map Value.display_string args) in
        Error ("error: " ^ msg));
    (* --- control --- *)
    ctl "spawn" 1 Op_spawn;
    ctl "call/cc" 1 Op_callcc;
    ctl "call-with-current-continuation" 1 Op_callcc;
    ctl "prompt" 1 Op_prompt;
    ctl "fcontrol" 1 Op_fcontrol;
    ctl "apply" 2 Op_apply;
    ctl "touch" 1 Op_touch;
    ctl "dynamic-wind" 3 Op_wind;
    ctl "sleep" 1 Op_sleep;
    ctl "span-begin" 1 Op_span_begin;
    ctl "span-end" 1 Op_span_end;
  ]

let find name =
  List.find_map
    (fun (n, p) -> if String.equal n name then Some (Prim p) else None)
    prim_list

let names () = List.sort String.compare (List.map fst prim_list)

let base_env () =
  let genv = Env.empty () in
  List.iter (fun (name, p) -> Env.define_global genv name (Prim p)) prim_list;
  genv
