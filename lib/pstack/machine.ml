open Types
module Counters = Pcont_util.Counters
module Id = Pcont_util.Id

type config = {
  strategy : strategy;
  counters : Counters.t;
  labels : Id.t;
  fastpath : bool;
      (* enables the segment pool and the one-shot move path; [false]
         reproduces the pre-optimization allocation behavior so benchmarks
         can measure both in one run *)
  pool : segment array;
      (* free-listed segment records, slots [0 .. pool_n-1] live.  A fixed
         array rather than a list so recycling allocates nothing. *)
  mutable pool_n : int;
  mutable pool_ops : int;
      (* recycles since the last pool flush.  Pooled records that survive
         a minor collection are promoted to the major heap, and every
         frame write on an old record pays the full write barrier — so a
         record that circulates through the pool indefinitely makes the
         whole interpreter slower, not faster.  Aging the pool out every
         [pool_age] recycles bounds any promoted record's circulation. *)
  pool_hit : int ref;  (* cached cells for the pool counters: the *)
  pool_miss : int ref; (* acquire/release sites skip the hash lookup *)
  pk_moved : int ref;
  mutable lin_cache : (rir * int) list;
      (* memoized one-shot classification, keyed by physical identity of
         the controller-body code node: the same (lambda (k) ...) site
         classifies identically on every capture, so the linearity walk
         runs once per site, not once per capture.  Bounded by the number
         of controller bodies in the program.  -1 encodes "not linear". *)
  mutable metrics : Pcont_obs.Obs.Metrics.t option;
      (* histogram half of the observability metrics; the drivers set it
         while a trace handle is attached, so the no-handle path stays a
         single pattern match *)
}

let pool_cap = 64
let pool_age = 16

(* Fills unused pool slots; [shared] so a leak through any bug is inert. *)
let dummy_segment = { root = Rbase; frames = []; winders = []; shared = true }

let config ?(strategy = Linked) ?(fastpath = true) () =
  let counters = Counters.create () in
  {
    strategy;
    counters;
    labels = Id.create ();
    fastpath;
    pool = Array.make pool_cap dummy_segment;
    pool_n = 0;
    pool_ops = 0;
    pool_hit = Counters.cell counters "machine.pool.hit";
    pool_miss = Counters.cell counters "machine.pool.miss";
    pk_moved = Counters.cell counters "machine.capture.moved";
    lin_cache = [];
    metrics = None;
  }

(* The one Rbase record is shared by every run and every forked branch, so
   it is permanently [shared]: the first frame push copies it. *)
let initial_pstack = [ { root = Rbase; frames = []; winders = []; shared = true } ]

(* ------------------------------------------------------------------ *)
(* Segment pool                                                        *)
(* ------------------------------------------------------------------ *)

(* Fresh segments are needed at exactly two rates: one per spawn and one
   per prompt.  Their records die at the matching return (the first branch
   of [return_value]), which recycles any record no continuation aliases —
   so spawn-heavy loops reuse a handful of records instead of allocating. *)
let fresh_segment cfg root =
  if cfg.fastpath && cfg.pool_n > 0 then begin
    let n = cfg.pool_n - 1 in
    cfg.pool_n <- n;
    let seg = Array.unsafe_get cfg.pool n in
    Array.unsafe_set cfg.pool n dummy_segment;
    incr cfg.pool_hit;
    seg.root <- root;
    seg
  end
  else begin
    if cfg.fastpath then incr cfg.pool_miss;
    { root; frames = []; winders = []; shared = false }
  end

let recycle_segment cfg seg =
  if cfg.fastpath && (not seg.shared) && cfg.pool_n < pool_cap then begin
    let ops = cfg.pool_ops + 1 in
    cfg.pool_ops <- ops;
    if ops land (pool_age - 1) = 0 then begin
      (* age out: drop every pooled record AND the incoming one (clearing
         the slots so the array does not keep them alive).  The incoming
         record must go too — a hot loop's record is back in the pool
         within an op or two of any flush, so sparing it would let a
         promoted record circulate forever. *)
      Array.fill cfg.pool 0 cfg.pool_n dummy_segment;
      cfg.pool_n <- 0
    end
    else begin
      seg.frames <- [];
      seg.winders <- [];
      Array.unsafe_set cfg.pool cfg.pool_n seg;
      cfg.pool_n <- cfg.pool_n + 1;
      match cfg.metrics with
      | None -> ()
      | Some m ->
          Pcont_obs.Obs.Metrics.observe m "machine.pool.occupancy" cfg.pool_n
    end
  end

let rec recycle_segments cfg = function
  | [] -> ()
  | seg :: more ->
      recycle_segment cfg seg;
      recycle_segments cfg more

(* Young replacements for a moved segment list.  Splicing the moved
   records themselves is a trap: one record reused across a whole
   capture loop is eventually promoted, and from then on every frame
   write on it pays the full write barrier — measurably slower than
   allocating.  Routing the replacements through the pool is the same
   trap at one remove (the hot record circulates pool -> live -> pool
   and two old-array writes are paid per capture), so the reinstate
   path simply allocates: a 4-word minor allocation is nearly free. *)
let rec renew_segments = function
  | [] -> []
  | s :: more ->
      { root = s.root; frames = s.frames; winders = s.winders; shared = false }
      :: renew_segments more

(* Mark records as aliased by a captured continuation: from here on they
   are copied before any field write and never pooled. *)
let pin_segments segs = List.iter (fun seg -> seg.shared <- true) segs

let initial ir = { control = Ceval (ir, []); pstack = initial_pstack }

type stepped =
  | Next of Types.state
  | Final of Types.value
  | Err of string
  | Esc_control of Types.label * Types.value
  | Esc_pktree of Types.pktree * Types.value
  | Esc_touch of Types.future_cell
  | Esc_fork of Types.rir list * Types.env
  | Esc_future of Types.rir * Types.env
  | Esc_sleep of int
  | Esc_span_begin of string
  | Esc_span_end of int

(* The hot path returns the successor state directly; everything that ends
   or escapes the step loop is raised, so the driver pays for one handler
   per run rather than one [Next] box per transition. *)
exception Stop of stepped

let err msg = raise (Stop (Err msg))

(* Frame push/pop mutates the top record in place when it is uniquely
   owned, so the steady-state machine transition allocates no segment
   record and no list cell.  Shared records (aliased by a continuation)
   get a fresh copy first — copy-on-write — which detaches the live stack
   from the capture without ever touching the captured fields. *)
let push_frame f pstack =
  match pstack with
  | seg :: rest ->
      if seg.shared then
        let winders =
          match f with Fwind (b, a) -> (b, a) :: seg.winders | _ -> seg.winders
        in
        { root = seg.root; frames = f :: seg.frames; winders; shared = false }
        :: rest
      else begin
        (match f with
        | Fwind (b, a) -> seg.winders <- (b, a) :: seg.winders
        | _ -> ());
        seg.frames <- f :: seg.frames;
        pstack
      end
  | [] -> assert false

(* Replace the top segment's frames ([pstack] must be [seg :: rest]). *)
let set_frames pstack seg fs rest =
  if seg.shared then
    { root = seg.root; frames = fs; winders = seg.winders; shared = false } :: rest
  else begin
    seg.frames <- fs;
    pstack
  end

(* Same, also replacing the winder list (the two winder transitions). *)
let set_top pstack seg fs ws rest =
  if seg.shared then { root = seg.root; frames = fs; winders = ws; shared = false } :: rest
  else begin
    seg.frames <- fs;
    seg.winders <- ws;
    pstack
  end

(* Run winder thunks one by one (discarding their values), then perform
   the target action. *)
let rec run_winders st thunks target =
  match thunks with
  | [] -> (
      match target with
      | Wreturn v -> { st with control = Creturn v }
      | Wapply (f, args) -> { st with control = Capply (f, args) }
      | Wenter (before, thunk, after) ->
          let pstack = push_frame (Fwind (before, after)) st.pstack in
          { control = Capply (thunk, []); pstack })
  | t :: rest ->
      let pstack = push_frame (Fwinding (rest, target)) st.pstack in
      { control = Capply (t, []); pstack }

(* [after] thunks of winders inside captured segments, innermost first —
   the order in which an abort exits their dynamic extents. *)
and afters_of segs = List.concat_map (fun seg -> List.map snd seg.winders) segs

(* [before] thunks, outermost first — re-entry order on reinstatement. *)
and befores_of segs = List.rev (befores_rev segs)

and befores_rev segs = List.concat_map (fun seg -> List.map fst seg.winders) segs

let find_spawn_label l pstack =
  List.exists (fun seg -> seg.root = Rspawn l) pstack

let split_at_spawn_label l pstack =
  let rec go captured = function
    | [] -> None
    | seg :: rest when seg.root = Rspawn l -> Some (List.rev (seg :: captured), rest)
    | seg :: rest -> go (seg :: captured) rest
  in
  go [] pstack

let count_frames segs =
  List.fold_left (fun n seg -> n + List.length seg.frames) 0 segs

let copy_segments segs =
  (* Rebuild every cons cell of every frame list: the per-frame work a
     stack-copying implementation performs.  Frames themselves are immutable
     and can be shared.  The copies are fresh records, owned by whoever
     asked for them, so they start unshared. *)
  List.map
    (fun seg ->
      {
        root = seg.root;
        frames = List.map Fun.id seg.frames;
        winders = seg.winders;
        shared = false;
      })
    segs

(* Record the cost of moving [segs] during a control operation named [op]
   ("capture" or "reinstate"), and return the representation to store:
   under [Copying] the frames are physically copied. *)
let charge cfg op segs =
  let nsegs = List.length segs in
  Counters.add cfg.counters (op ^ ".segments") nsegs;
  (match cfg.metrics with
  | None -> ()
  | Some m -> Pcont_obs.Obs.Metrics.observe m ("machine." ^ op ^ ".segments") nsegs);
  match cfg.strategy with
  | Linked -> segs
  | Copying ->
      Counters.add cfg.counters (op ^ ".frames") (count_frames segs);
      copy_segments segs

let prim_arity_ok p nargs =
  nargs >= p.pmin && match p.pmax with None -> true | Some m -> nargs <= m

(* ------------------------------------------------------------------ *)
(* One-shot (linear) controller bodies                                 *)
(* ------------------------------------------------------------------ *)

(* A controller body [(lambda (k) e)] uses its process continuation
   LINEARLY when no execution of [e] can apply [k] more than once and [k]
   cannot escape [e].  For such bodies the capture may MOVE the segments:
   no pinning, no copy-on-write downstream, and the records return to the
   pool when they die — the wasmfx-style one-shot optimization.

   The check is deliberately conservative.  [k] may appear only as the
   operator of a direct application whose arguments are "simple" (cannot
   capture or mention [k]); any other application anywhere in the body
   rejects, because a general call could invoke call/cc (or another
   controller) and capture the pending application of [k], re-entering it.
   Branches of an [if] may each use [k] once.  Zero uses also qualify:
   aborts like [(spawn (lambda (k) v))] never reinstate at all.

   A node budget bounds the walk so classification stays O(1) for the
   tiny bodies that dominate capture-heavy code. *)
exception Not_linear

(* The helpers live at module level and share one budget cell, reset at
   each classification: closing over a per-call ref would allocate four
   closures plus the ref per capture, visible in allocations/capture on
   generator loops.  The machine is single-threaded and the walk never
   re-enters the classifier, so the shared cell is safe. *)
let lin_budget = ref 0

let lin_spend () =
  decr lin_budget;
  if !lin_budget < 0 then raise Not_linear

(* Does [e] reference the continuation, bound at rib depth [d] slot 0? *)
let rec lin_mentions d e =
  lin_spend ();
  match e with
  | Ir.Rconst _ | Ir.Rquoted _ | Ir.Rglobal _ -> false
  | Ir.Rlocal (d', s) -> d' = d && s = 0
  | Ir.Rlam { rbody; _ } -> lin_mentions (d + 1) rbody
  | Ir.Rapp (f, args) -> lin_mentions d f || lin_mentions_any d args
  | Ir.Rif (c, t, e') ->
      lin_mentions d c || lin_mentions d t || lin_mentions d e'
  | Ir.Rseq es | Ir.Rpcall es -> lin_mentions_any d es
  | Ir.Rlet (inits, bd) -> lin_mentions_any d inits || lin_mentions (d + 1) bd
  | Ir.Rletrec (inits, bd) ->
      lin_mentions_any (d + 1) inits || lin_mentions (d + 1) bd
  | Ir.Rset_local (_, _, e') | Ir.Rset_global (_, e') | Ir.Rfuture e' ->
      lin_mentions d e'

and lin_mentions_any d = function
  | [] -> false
  | e :: rest -> lin_mentions d e || lin_mentions_any d rest

(* Arguments to the one [k]-application must not capture and must not
   smuggle [k] into a closure that could run after reinstatement. *)
let lin_simple d e =
  lin_spend ();
  match e with
  | Ir.Rconst _ | Ir.Rquoted _ | Ir.Rglobal _ -> true
  | Ir.Rlocal (d', s) -> not (d' = d && s = 0)
  | Ir.Rlam { rbody; _ } -> not (lin_mentions (d + 1) rbody)
  | _ -> false

let rec lin_all_simple d = function
  | [] -> true
  | e :: rest -> lin_simple d e && lin_all_simple d rest

(* Number of times [k] is applied along any execution of [e]. *)
let rec lin_uses d e =
  lin_spend ();
  match e with
  | Ir.Rconst _ | Ir.Rquoted _ | Ir.Rglobal _ -> 0
  | Ir.Rlocal (d', s) ->
      if d' = d && s = 0 then raise Not_linear (* bare k escapes *) else 0
  | Ir.Rapp (Ir.Rlocal (d', 0), args) when d' = d ->
      if lin_all_simple d args then 1 else raise Not_linear
  | Ir.Rapp _ | Ir.Rpcall _ | Ir.Rfuture _ ->
      (* even a k-free call can capture the context holding a pending
         use of k and replay it, so only leaf bodies qualify *)
      raise Not_linear
  | Ir.Rlam { rbody; _ } ->
      if lin_mentions (d + 1) rbody then raise Not_linear else 0
  | Ir.Rif (c, t, e') ->
      if lin_mentions d c then raise Not_linear
      else max (lin_uses d t) (lin_uses d e')
  | Ir.Rseq es -> lin_uses_sum d es
  | Ir.Rlet (inits, bd) -> lin_uses_sum d inits + lin_uses (d + 1) bd
  | Ir.Rletrec (inits, bd) -> lin_uses_sum (d + 1) inits + lin_uses (d + 1) bd
  | Ir.Rset_local (d', s, e') ->
      if d' = d && s = 0 then raise Not_linear else lin_uses d e'
  | Ir.Rset_global (_, e') -> lin_uses d e'

and lin_uses_sum d = function
  | [] -> 0
  | e :: rest -> lin_uses d e + lin_uses_sum d rest

(* [Some n] (n <= 1) when the body is a linear user of [k]; [Some 0] in
   particular means [k] occurs nowhere — an abort — so the captured
   extent is dead the moment the controller body is entered. *)
let pk_linear_uses body =
  lin_budget := 128;
  match lin_uses 0 body with
  | n -> if n <= 1 then Some n else None
  | exception Not_linear -> None

let linear_pk_use body = pk_linear_uses body <> None

(* The capture-site view of the classifier: int-encoded (-1 = not
   linear, n >= 0 = n uses) and memoized on the config so the hit path
   is a pointer-compare scan that allocates nothing. *)
let rec lin_assoc body = function
  | [] -> min_int
  | (b, n) :: more -> if b == body then n else lin_assoc body more

let pk_linear_uses_cached cfg body =
  match lin_assoc body cfg.lin_cache with
  | n when n <> min_int -> n
  | _ ->
      let n = match pk_linear_uses body with Some n -> n | None -> -1 in
      cfg.lin_cache <- (body, n) :: cfg.lin_cache;
      n

let no_winders segs = List.for_all (fun seg -> seg.winders = []) segs

(* Capture up to the nearest prompt for Felleisen's F: a flat frame list.
   Any spawn roots in between are erased (their segments' frames are
   concatenated), which is the §3 observation that F cannot respect process
   structure.  Returns (frames, remaining pstack). *)
let capture_to_prompt cfg pstack =
  let clear pstack seg rest =
    let frames = seg.frames in
    (frames, set_top pstack seg [] [] rest)
  in
  let rec go acc = function
    | [] -> (List.concat (List.rev acc), initial_pstack)
    | (seg :: rest) as ps when seg.root = Rprompt ->
        let frames, cleared = clear ps seg rest in
        (List.concat (List.rev (frames :: acc)), cleared)
    | (seg :: rest) as ps when seg.root = Rbase ->
        (* no prompt: F aborts the complete computation to the base *)
        let frames, cleared = clear ps seg rest in
        (List.concat (List.rev (frames :: acc)), cleared)
    | seg :: rest ->
        (* the erased spawn root's record dies here: F keeps only frames *)
        let frames = seg.frames in
        recycle_segment cfg seg;
        go (frames :: acc) rest
  in
  go [] pstack

(* Same message [Env.bind_params] produces for a fixed-arity mismatch. *)
let arity_error c args =
  err
    (Printf.sprintf "procedure expects %d arguments, got %d" c.nparams
       (List.length args))

(* [oneshot] permits classifying controller captures as linear.  The
   sequential driver enables it; the tree-of-stacks scheduler must not:
   a concurrent capture can package a sibling branch — including a pending
   application of its process continuation — into a multi-shot [Pktree],
   and grafting that tree twice would re-apply the "one-shot" pk. *)
let apply ?(oneshot = true) cfg st f args =
  match f with
  | Closure ({ nparams; has_rest = false; cbody; cenv } as c) ->
      (* Fast path for the common exact-arity call: fill the rib in a
         single pass over [args], with no separate length computation and
         no [result] box. *)
      let rib = Array.make nparams Undef in
      let rec fill i = function
        | [] ->
            if i = nparams then { st with control = Ceval (cbody, rib :: cenv) }
            else arity_error c args
        | v :: rest ->
            if i < nparams then begin
              Array.unsafe_set rib i v;
              fill (i + 1) rest
            end
            else arity_error c args
      in
      fill 0 args
  | Closure c -> (
      match Env.bind_params c args with
      | Ok env -> { st with control = Ceval (c.cbody, env) }
      | Error msg -> err msg)
  | Prim p -> (
      if not (prim_arity_ok p (List.length args)) then
        err
          (Printf.sprintf "%s: expects %s%d argument(s), got %d" p.pname
             (match p.pmax with
             | Some m when m = p.pmin -> ""
             | _ -> "at least ")
             p.pmin (List.length args))
      else
        match p.pkind with
        | Pure fn -> (
            match fn args with
            | Ok v -> { st with control = Creturn v }
            | Error msg -> err msg)
        | Ctl op -> (
            match (op, args) with
            | Op_spawn, [ proc ] ->
                let l = Id.fresh cfg.labels in
                Counters.incr cfg.counters "spawn";
                let pstack = fresh_segment cfg (Rspawn l) :: st.pstack in
                { control = Capply (proc, [ Controller l ]); pstack }
            | Op_callcc, [ proc ] ->
                (* call/cc aliases the entire live stack, so under Linked
                   every record in it becomes copy-on-write. *)
                if cfg.strategy = Linked then pin_segments st.pstack;
                let saved = charge cfg "capture" st.pstack in
                Counters.incr cfg.counters "callcc";
                { st with control = Capply (proc, [ Cont { ck_pstack = saved } ]) }
            | Op_prompt, [ thunk ] ->
                Counters.incr cfg.counters "prompt";
                let pstack = fresh_segment cfg Rprompt :: st.pstack in
                { control = Capply (thunk, []); pstack }
            | Op_fcontrol, [ proc ] ->
                Counters.incr cfg.counters "fcontrol";
                let frames, pstack = capture_to_prompt cfg st.pstack in
                Counters.add cfg.counters "capture.frames" (List.length frames);
                { control = Capply (proc, [ Fcont frames ]); pstack }
            | Op_wind, [ before; thunk; after ] ->
                run_winders st [ before ] (Wenter (before, thunk, after))
            | Op_touch, [ Future cell ] -> (
                match cell.fvalue with
                | Some v -> { st with control = Creturn v }
                | None -> raise (Stop (Esc_touch cell)))
            | Op_touch, [ v ] ->
                (* Multilisp: touching a non-future returns it. *)
                { st with control = Creturn v }
            | Op_sleep, [ Int n ] -> raise (Stop (Esc_sleep n))
            | Op_sleep, [ _ ] -> err "sleep: argument must be an integer"
            | Op_span_begin, [ Str s ] -> raise (Stop (Esc_span_begin s))
            | Op_span_begin, [ _ ] -> err "span-begin: argument must be a string"
            | Op_span_end, [ Int n ] -> raise (Stop (Esc_span_end n))
            | Op_span_end, [ _ ] -> err "span-end: argument must be an integer"
            | Op_apply, [ proc; arglist ] -> (
                match Value.list_to_values arglist with
                | Some vs -> { st with control = Capply (proc, vs) }
                | None -> err "apply: last argument must be a proper list")
            | _ -> err (p.pname ^ ": bad control-operator arguments")))
  | Controller l -> (
      match args with
      | [ body ] -> (
          match split_at_spawn_label l st.pstack with
          | Some (captured, rest) ->
              let captured = charge cfg "capture" captured in
              Counters.incr cfg.counters "controller";
              (* One-shot fast path: a linear body takes sole ownership of
                 the segments (the split already removed them from the live
                 stack), so they stay unshared — mutable in place after the
                 move, and pool-eligible when they die.  Winders disqualify:
                 an after thunk runs before the body and could itself
                 capture the pending body application. *)
              let uses =
                if
                  oneshot && cfg.fastpath
                  && cfg.strategy = Linked
                  && no_winders captured
                then
                  match body with
                  | Closure { nparams = 1; has_rest = false; cbody; _ } ->
                      pk_linear_uses_cached cfg cbody
                  | _ -> -1
                else -1
              in
              (match uses with
              | 0 ->
                  (* ABORT: [k] occurs nowhere in the body, so the captured
                     extent is dead on entry — recycle its records now
                     instead of packaging them.  The pk still exists (the
                     body is unary) but arrives pre-consumed, so an
                     application the analysis ruled out fails loudly.
                     [no_winders] holds, so there are no afters to run. *)
                  recycle_segments cfg captured;
                  incr cfg.pk_moved;
                  let pk =
                    Pk
                      {
                        pk_label = l;
                        pk_segments = [];
                        pk_once = true;
                        pk_consumed = true;
                      }
                  in
                  run_winders { st with pstack = rest } [] (Wapply (body, [ pk ]))
              | n when n > 0 ->
                  (* no winders by [no_winders], so no afters to run *)
                  let pk =
                    Pk
                      {
                        pk_label = l;
                        pk_segments = captured;
                        pk_once = true;
                        pk_consumed = false;
                      }
                  in
                  run_winders { st with pstack = rest } [] (Wapply (body, [ pk ]))
              | _ ->
                  if cfg.strategy = Linked then pin_segments captured;
                  let pk =
                    Pk
                      {
                        pk_label = l;
                        pk_segments = captured;
                        pk_once = false;
                        pk_consumed = false;
                      }
                  in
                  (* Exiting the captured extent runs its winders' afters,
                     innermost first, in the context outside the root,
                     before the controller's argument is applied. *)
                  run_winders { st with pstack = rest } (afters_of captured)
                    (Wapply (body, [ pk ])))
          | None -> raise (Stop (Esc_control (l, body))))
      | _ -> err "controller: expects exactly one argument")
  | Pk pk -> (
      match args with
      | [ v ] ->
          if pk.pk_once then begin
            (* MOVE: pointer transfer of the segments and invalidation of
               the source.  The linearity analysis makes a second
               application unreachable from the classified body; reaching
               this error means the pk escaped through a path the analysis
               should have rejected, so fail loudly rather than corrupt. *)
            if pk.pk_consumed then
              err "one-shot process continuation applied more than once";
            let segs = renew_segments (charge cfg "reinstate" pk.pk_segments) in
            pk.pk_consumed <- true;
            pk.pk_segments <- [];
            Counters.incr cfg.counters "pk-invoke";
            incr cfg.pk_moved;
            (* no winders by construction, so no befores to re-run *)
            { control = Creturn v; pstack = segs @ st.pstack }
          end
          else begin
            let segs = charge cfg "reinstate" pk.pk_segments in
            Counters.incr cfg.counters "pk-invoke";
            (* Re-entering the reinstated extent runs its winders' befores,
               outermost first, before the value reaches the capture point. *)
            run_winders
              { control = Creturn v; pstack = segs @ st.pstack }
              (befores_of segs) (Wreturn v)
          end
      | _ -> err "process continuation: expects exactly one argument")
  | Pktree pkt -> (
      match args with
      | [ v ] -> raise (Stop (Esc_pktree (pkt, v)))
      | _ -> err "process continuation: expects exactly one argument")
  | Cont c -> (
      match args with
      | [ v ] ->
          let segs = charge cfg "reinstate" c.ck_pstack in
          Counters.incr cfg.counters "cont-invoke";
          { control = Creturn v; pstack = segs }
      | _ -> err "continuation: expects exactly one argument")
  | Fcont frames -> (
      match args with
      | [ v ] ->
          Counters.add cfg.counters "reinstate.frames" (List.length frames);
          let pstack =
            match st.pstack with
            | seg :: rest ->
                let extra =
                  List.filter_map
                    (function Fwind (b, a) -> Some (b, a) | _ -> None)
                    frames
                in
                { seg with frames = frames @ seg.frames; winders = extra @ seg.winders }
                :: rest
            | [] -> assert false
          in
          { control = Creturn v; pstack }
      | _ -> err "functional continuation: expects exactly one argument")
  | v -> err ("application of a non-procedure: " ^ Value.to_string v)

(* Deliver a returned value to the topmost frame, or pop a segment.
   Each branch builds its successor's segment directly — popping the
   delivered-to frame and pushing any replacement in one record — so the
   common frame transition costs one segment and one state allocation,
   with no intermediate [Creturn] state.  The replacement frames are
   never [Fwind], so [winders] carries over except in the two winder
   branches, which handle it explicitly. *)
let return_value cfg st v =
  match st.pstack with
  | [] -> assert false
  | ({ frames = []; _ } as seg) :: rest -> (
      match seg.root with
      | Rbase ->
          if rest = [] then raise (Stop (Final v))
          else err "internal error: base segment above other segments"
      | Rspawn _ ->
          (* Normal return from a spawned process removes its root; the
             record is dead unless a continuation captured it. *)
          recycle_segment cfg seg;
          { control = Creturn v; pstack = rest }
      | Rprompt ->
          (* A value returning to a prompt falls through to the prompt
             application's continuation. *)
          recycle_segment cfg seg;
          { control = Creturn v; pstack = rest })
  | ({ frames = f :: fs; _ } as seg) :: rest -> (
      let ps = st.pstack in
      match f with
      (* Unary and binary applications, specialized: the generic case
         conses [v] on and reverses, costing k+2 fresh cells for a k-ary
         call where these need one or two. *)
      | Fapp ([ op ], [], _) ->
          { control = Capply (op, [ v ]); pstack = set_frames ps seg fs rest }
      | Fapp ([ a1; op ], [], _) ->
          { control = Capply (op, [ a1; v ]); pstack = set_frames ps seg fs rest }
      | Fapp (vals, [], _) ->
          let all = List.rev (v :: vals) in
          { control = Capply (List.hd all, List.tl all);
            pstack = set_frames ps seg fs rest }
      | Fapp (vals, e :: es, env) ->
          { control = Ceval (e, env);
            pstack = set_frames ps seg (Fapp (v :: vals, es, env) :: fs) rest }
      | Fpcall (vals, [], _) ->
          let all = List.rev (v :: vals) in
          { control = Capply (List.hd all, List.tl all);
            pstack = set_frames ps seg fs rest }
      | Fpcall (vals, e :: es, env) ->
          { control = Ceval (e, env);
            pstack = set_frames ps seg (Fpcall (v :: vals, es, env) :: fs) rest }
      | Fif (thn, els, env) ->
          { control = Ceval ((if Value.is_truthy v then thn else els), env);
            pstack = set_frames ps seg fs rest }
      | Fseq ([], _) -> { control = Creturn v; pstack = set_frames ps seg fs rest }
      | Fseq ([ e ], env) ->
          { control = Ceval (e, env); pstack = set_frames ps seg fs rest }
      | Fseq (e :: es, env) ->
          { control = Ceval (e, env);
            pstack = set_frames ps seg (Fseq (es, env) :: fs) rest }
      | Flet (done_, [], body, env) ->
          let rib = Array.of_list (List.rev (v :: done_)) in
          { control = Ceval (body, rib :: env); pstack = set_frames ps seg fs rest }
      | Flet (done_, e :: es, body, env) ->
          { control = Ceval (e, env);
            pstack = set_frames ps seg (Flet (v :: done_, es, body, env) :: fs) rest }
      | Fletrec (rib, i, [], body, env) ->
          rib.(i) <- v;
          { control = Ceval (body, env); pstack = set_frames ps seg fs rest }
      | Fletrec (rib, i, e :: es, body, env) ->
          rib.(i) <- v;
          { control = Ceval (e, env);
            pstack = set_frames ps seg (Fletrec (rib, i + 1, es, body, env) :: fs) rest }
      | Fset (rib, slot) ->
          rib.(slot) <- v;
          { control = Creturn Unit; pstack = set_frames ps seg fs rest }
      | Fsetg g ->
          g.gval <- v;
          { control = Creturn Unit; pstack = set_frames ps seg fs rest }
      | Ffuture fc ->
          fc.fvalue <- Some v;
          { control = Creturn (Future fc); pstack = set_frames ps seg fs rest }
      | Fwind (_, after) ->
          (* normal return exits the wind: run the after, then deliver v *)
          let pstack = set_top ps seg fs (List.tl seg.winders) rest in
          run_winders { control = Creturn v; pstack } [ after ] (Wreturn v)
      | Fwinding (pending, target) ->
          (* a winder thunk finished; its value is discarded *)
          run_winders
            { control = Creturn v; pstack = set_frames ps seg fs rest }
            pending target)

(* Read a lexical address.  Inlined here rather than via Env so the
   hot path is a tight loop over the rib chain. *)
let rec rib_at env d =
  match env with
  | rib :: rest -> if d = 0 then rib else rib_at rest (d - 1)
  | [] -> assert false

(* [conc] selects who owns pcall/future: the sequential fallback evaluates
   them in-line; the concurrent scheduler takes them as escapes, so its
   driver loop needs no per-step control inspection of its own. *)
let step_gen ~conc cfg st =
  match st.control with
  | Creturn v -> return_value cfg st v
  | Capply (f, args) -> apply ~oneshot:(not conc) cfg st f args
  | Ceval (ir, env) -> (
      match ir with
      | Ir.Rconst v -> { st with control = Creturn v }
      | Ir.Rquoted q -> { st with control = Creturn (Resolve.quoted_value q) }
      | Ir.Rlocal (d, s) ->
          { st with control = Creturn (Array.unsafe_get (rib_at env d) s) }
      | Ir.Rglobal g ->
          if g.gbound then { st with control = Creturn g.gval }
          else err ("unbound variable: " ^ g.gname)
      | Ir.Rlam { rnparams; rhas_rest; rbody } ->
          {
            st with
            control =
              Creturn
                (Closure
                   { nparams = rnparams; has_rest = rhas_rest; cbody = rbody; cenv = env });
          }
      | Ir.Rapp (f, args) ->
          let pstack = push_frame (Fapp ([], args, env)) st.pstack in
          { control = Ceval (f, env); pstack }
      | Ir.Rif (c, t, e) ->
          let pstack = push_frame (Fif (t, e, env)) st.pstack in
          { control = Ceval (c, env); pstack }
      | Ir.Rseq [] -> { st with control = Creturn Unit }
      | Ir.Rseq [ e ] -> { st with control = Ceval (e, env) }
      | Ir.Rseq (e :: es) ->
          let pstack = push_frame (Fseq (es, env)) st.pstack in
          { control = Ceval (e, env); pstack }
      | Ir.Rlet ([], body) -> { st with control = Ceval (body, env) }
      | Ir.Rlet (e :: es, body) ->
          let pstack = push_frame (Flet ([], es, body, env)) st.pstack in
          { control = Ceval (e, env); pstack }
      | Ir.Rletrec ([], body) -> { st with control = Ceval (body, env) }
      | Ir.Rletrec ((e0 :: es as inits), body) ->
          let rib = Array.make (List.length inits) Undef in
          let env' = rib :: env in
          let pstack = push_frame (Fletrec (rib, 0, es, body, env')) st.pstack in
          { control = Ceval (e0, env'); pstack }
      | Ir.Rset_local (d, s, e) ->
          let pstack = push_frame (Fset (rib_at env d, s)) st.pstack in
          { control = Ceval (e, env); pstack }
      | Ir.Rset_global (g, e) ->
          (* The unbound check happens before the right-hand side runs,
             matching the old by-name lookup at this point. *)
          if not g.gbound then err ("set!: unbound variable: " ^ g.gname)
          else
            let pstack = push_frame (Fsetg g) st.pstack in
            { control = Ceval (e, env); pstack }
      | Ir.Rfuture e ->
          if conc then raise (Stop (Esc_future (e, env)))
          else
            (* Sequential fallback: evaluate eagerly; the future is
               resolved by the time it is returned. *)
            let pstack = push_frame (Ffuture { fvalue = None; fwaiters = [] }) st.pstack in
            { control = Ceval (e, env); pstack }
      | Ir.Rpcall [] -> err "pcall: expects at least an operator expression"
      | Ir.Rpcall exprs ->
          if conc then raise (Stop (Esc_fork (exprs, env)))
          else
            (* Sequential fallback: evaluate left to right in this branch. *)
            let pstack =
              push_frame (Fpcall ([], List.tl exprs, env)) st.pstack
            in
            { control = Ceval (List.hd exprs, env); pstack })

let step_exn cfg st = step_gen ~conc:false cfg st

let step_exn_conc cfg st = step_gen ~conc:true cfg st

let step cfg st =
  match step_exn cfg st with st' -> Next st' | exception Stop s -> s
