open Types
module Counters = Pcont_util.Counters
module Id = Pcont_util.Id

type config = {
  strategy : strategy;
  counters : Counters.t;
  labels : Id.t;
  mutable metrics : Pcont_obs.Obs.Metrics.t option;
      (* histogram half of the observability metrics; the drivers set it
         while a trace handle is attached, so the no-handle path stays a
         single pattern match *)
}

let config ?(strategy = Linked) () =
  { strategy; counters = Counters.create (); labels = Id.create (); metrics = None }

let initial_pstack = [ { root = Rbase; frames = []; winders = [] } ]

let initial ir = { control = Ceval (ir, []); pstack = initial_pstack }

type stepped =
  | Next of Types.state
  | Final of Types.value
  | Err of string
  | Esc_control of Types.label * Types.value
  | Esc_pktree of Types.pktree * Types.value
  | Esc_touch of Types.future_cell
  | Esc_fork of Types.rir list * Types.env
  | Esc_future of Types.rir * Types.env

(* The hot path returns the successor state directly; everything that ends
   or escapes the step loop is raised, so the driver pays for one handler
   per run rather than one [Next] box per transition. *)
exception Stop of stepped

let err msg = raise (Stop (Err msg))

let push_frame f = function
  | seg :: rest ->
      let winders =
        match f with Fwind (b, a) -> (b, a) :: seg.winders | _ -> seg.winders
      in
      { seg with frames = f :: seg.frames; winders } :: rest
  | [] -> assert false

(* Run winder thunks one by one (discarding their values), then perform
   the target action. *)
let rec run_winders st thunks target =
  match thunks with
  | [] -> (
      match target with
      | Wreturn v -> { st with control = Creturn v }
      | Wapply (f, args) -> { st with control = Capply (f, args) }
      | Wenter (before, thunk, after) ->
          let pstack = push_frame (Fwind (before, after)) st.pstack in
          { control = Capply (thunk, []); pstack })
  | t :: rest ->
      let pstack = push_frame (Fwinding (rest, target)) st.pstack in
      { control = Capply (t, []); pstack }

(* [after] thunks of winders inside captured segments, innermost first —
   the order in which an abort exits their dynamic extents. *)
and afters_of segs = List.concat_map (fun seg -> List.map snd seg.winders) segs

(* [before] thunks, outermost first — re-entry order on reinstatement. *)
and befores_of segs = List.rev (befores_rev segs)

and befores_rev segs = List.concat_map (fun seg -> List.map fst seg.winders) segs

let find_spawn_label l pstack =
  List.exists (fun seg -> seg.root = Rspawn l) pstack

let split_at_spawn_label l pstack =
  let rec go captured = function
    | [] -> None
    | seg :: rest when seg.root = Rspawn l -> Some (List.rev (seg :: captured), rest)
    | seg :: rest -> go (seg :: captured) rest
  in
  go [] pstack

let count_frames segs =
  List.fold_left (fun n seg -> n + List.length seg.frames) 0 segs

let copy_segments segs =
  (* Rebuild every cons cell of every frame list: the per-frame work a
     stack-copying implementation performs.  Frames themselves are immutable
     and can be shared. *)
  List.map (fun seg -> { seg with frames = List.map Fun.id seg.frames }) segs

(* Record the cost of moving [segs] during a control operation named [op]
   ("capture" or "reinstate"), and return the representation to store:
   under [Copying] the frames are physically copied. *)
let charge cfg op segs =
  let nsegs = List.length segs in
  Counters.add cfg.counters (op ^ ".segments") nsegs;
  (match cfg.metrics with
  | None -> ()
  | Some m -> Pcont_obs.Obs.Metrics.observe m ("machine." ^ op ^ ".segments") nsegs);
  match cfg.strategy with
  | Linked -> segs
  | Copying ->
      Counters.add cfg.counters (op ^ ".frames") (count_frames segs);
      copy_segments segs

let prim_arity_ok p nargs =
  nargs >= p.pmin && match p.pmax with None -> true | Some m -> nargs <= m

(* Capture up to the nearest prompt for Felleisen's F: a flat frame list.
   Any spawn roots in between are erased (their segments' frames are
   concatenated), which is the §3 observation that F cannot respect process
   structure.  Returns (frames, remaining pstack). *)
let capture_to_prompt pstack =
  let rec go acc = function
    | [] -> (List.concat (List.rev acc), initial_pstack)
    | seg :: rest when seg.root = Rprompt ->
        ( List.concat (List.rev (seg.frames :: acc)),
          { seg with frames = []; winders = [] } :: rest )
    | seg :: rest when seg.root = Rbase ->
        (* no prompt: F aborts the complete computation to the base *)
        ( List.concat (List.rev (seg.frames :: acc)),
          { seg with frames = []; winders = [] } :: rest )
    | seg :: rest -> go (seg.frames :: acc) rest
  in
  go [] pstack

(* Same message [Env.bind_params] produces for a fixed-arity mismatch. *)
let arity_error c args =
  err
    (Printf.sprintf "procedure expects %d arguments, got %d" c.nparams
       (List.length args))

let apply cfg st f args =
  match f with
  | Closure ({ nparams; has_rest = false; cbody; cenv } as c) ->
      (* Fast path for the common exact-arity call: fill the rib in a
         single pass over [args], with no separate length computation and
         no [result] box. *)
      let rib = Array.make nparams Undef in
      let rec fill i = function
        | [] ->
            if i = nparams then { st with control = Ceval (cbody, rib :: cenv) }
            else arity_error c args
        | v :: rest ->
            if i < nparams then begin
              Array.unsafe_set rib i v;
              fill (i + 1) rest
            end
            else arity_error c args
      in
      fill 0 args
  | Closure c -> (
      match Env.bind_params c args with
      | Ok env -> { st with control = Ceval (c.cbody, env) }
      | Error msg -> err msg)
  | Prim p -> (
      if not (prim_arity_ok p (List.length args)) then
        err
          (Printf.sprintf "%s: expects %s%d argument(s), got %d" p.pname
             (match p.pmax with
             | Some m when m = p.pmin -> ""
             | _ -> "at least ")
             p.pmin (List.length args))
      else
        match p.pkind with
        | Pure fn -> (
            match fn args with
            | Ok v -> { st with control = Creturn v }
            | Error msg -> err msg)
        | Ctl op -> (
            match (op, args) with
            | Op_spawn, [ proc ] ->
                let l = Id.fresh cfg.labels in
                Counters.incr cfg.counters "spawn";
                let pstack = { root = Rspawn l; frames = []; winders = [] } :: st.pstack in
                { control = Capply (proc, [ Controller l ]); pstack }
            | Op_callcc, [ proc ] ->
                let saved = charge cfg "capture" st.pstack in
                Counters.incr cfg.counters "callcc";
                { st with control = Capply (proc, [ Cont { ck_pstack = saved } ]) }
            | Op_prompt, [ thunk ] ->
                Counters.incr cfg.counters "prompt";
                let pstack = { root = Rprompt; frames = []; winders = [] } :: st.pstack in
                { control = Capply (thunk, []); pstack }
            | Op_fcontrol, [ proc ] ->
                Counters.incr cfg.counters "fcontrol";
                let frames, pstack = capture_to_prompt st.pstack in
                Counters.add cfg.counters "capture.frames" (List.length frames);
                { control = Capply (proc, [ Fcont frames ]); pstack }
            | Op_wind, [ before; thunk; after ] ->
                run_winders st [ before ] (Wenter (before, thunk, after))
            | Op_touch, [ Future cell ] -> (
                match cell.fvalue with
                | Some v -> { st with control = Creturn v }
                | None -> raise (Stop (Esc_touch cell)))
            | Op_touch, [ v ] ->
                (* Multilisp: touching a non-future returns it. *)
                { st with control = Creturn v }
            | Op_apply, [ proc; arglist ] -> (
                match Value.list_to_values arglist with
                | Some vs -> { st with control = Capply (proc, vs) }
                | None -> err "apply: last argument must be a proper list")
            | _ -> err (p.pname ^ ": bad control-operator arguments")))
  | Controller l -> (
      match args with
      | [ body ] -> (
          match split_at_spawn_label l st.pstack with
          | Some (captured, rest) ->
              let captured = charge cfg "capture" captured in
              Counters.incr cfg.counters "controller";
              let pk = Pk { pk_label = l; pk_segments = captured } in
              (* Exiting the captured extent runs its winders' afters,
                 innermost first, in the context outside the root, before
                 the controller's argument is applied. *)
              run_winders { st with pstack = rest } (afters_of captured)
                (Wapply (body, [ pk ]))
          | None -> raise (Stop (Esc_control (l, body))))
      | _ -> err "controller: expects exactly one argument")
  | Pk pk -> (
      match args with
      | [ v ] ->
          let segs = charge cfg "reinstate" pk.pk_segments in
          Counters.incr cfg.counters "pk-invoke";
          (* Re-entering the reinstated extent runs its winders' befores,
             outermost first, before the value reaches the capture point. *)
          run_winders
            { control = Creturn v; pstack = segs @ st.pstack }
            (befores_of segs) (Wreturn v)
      | _ -> err "process continuation: expects exactly one argument")
  | Pktree pkt -> (
      match args with
      | [ v ] -> raise (Stop (Esc_pktree (pkt, v)))
      | _ -> err "process continuation: expects exactly one argument")
  | Cont c -> (
      match args with
      | [ v ] ->
          let segs = charge cfg "reinstate" c.ck_pstack in
          Counters.incr cfg.counters "cont-invoke";
          { control = Creturn v; pstack = segs }
      | _ -> err "continuation: expects exactly one argument")
  | Fcont frames -> (
      match args with
      | [ v ] ->
          Counters.add cfg.counters "reinstate.frames" (List.length frames);
          let pstack =
            match st.pstack with
            | seg :: rest ->
                let extra =
                  List.filter_map
                    (function Fwind (b, a) -> Some (b, a) | _ -> None)
                    frames
                in
                { seg with frames = frames @ seg.frames; winders = extra @ seg.winders }
                :: rest
            | [] -> assert false
          in
          { control = Creturn v; pstack }
      | _ -> err "functional continuation: expects exactly one argument")
  | v -> err ("application of a non-procedure: " ^ Value.to_string v)

(* Deliver a returned value to the topmost frame, or pop a segment.
   Each branch builds its successor's segment directly — popping the
   delivered-to frame and pushing any replacement in one record — so the
   common frame transition costs one segment and one state allocation,
   with no intermediate [Creturn] state.  The replacement frames are
   never [Fwind], so [winders] carries over except in the two winder
   branches, which handle it explicitly. *)
let return_value st v =
  match st.pstack with
  | [] -> assert false
  | { root; frames = []; _ } :: rest -> (
      match root with
      | Rbase ->
          if rest = [] then raise (Stop (Final v))
          else err "internal error: base segment above other segments"
      | Rspawn _ ->
          (* Normal return from a spawned process removes its root. *)
          { control = Creturn v; pstack = rest }
      | Rprompt ->
          (* A value returning to a prompt falls through to the prompt
             application's continuation. *)
          { control = Creturn v; pstack = rest })
  | ({ frames = f :: fs; _ } as seg) :: rest -> (
      match f with
      (* Unary and binary applications, specialized: the generic case
         conses [v] on and reverses, costing k+2 fresh cells for a k-ary
         call where these need one or two. *)
      | Fapp ([ op ], [], _) ->
          { control = Capply (op, [ v ]); pstack = { seg with frames = fs } :: rest }
      | Fapp ([ a1; op ], [], _) ->
          { control = Capply (op, [ a1; v ]);
            pstack = { seg with frames = fs } :: rest }
      | Fapp (vals, [], _) ->
          let all = List.rev (v :: vals) in
          { control = Capply (List.hd all, List.tl all);
            pstack = { seg with frames = fs } :: rest }
      | Fapp (vals, e :: es, env) ->
          { control = Ceval (e, env);
            pstack = { seg with frames = Fapp (v :: vals, es, env) :: fs } :: rest }
      | Fpcall (vals, [], _) ->
          let all = List.rev (v :: vals) in
          { control = Capply (List.hd all, List.tl all);
            pstack = { seg with frames = fs } :: rest }
      | Fpcall (vals, e :: es, env) ->
          { control = Ceval (e, env);
            pstack = { seg with frames = Fpcall (v :: vals, es, env) :: fs } :: rest }
      | Fif (thn, els, env) ->
          { control = Ceval ((if Value.is_truthy v then thn else els), env);
            pstack = { seg with frames = fs } :: rest }
      | Fseq ([], _) ->
          { control = Creturn v; pstack = { seg with frames = fs } :: rest }
      | Fseq ([ e ], env) ->
          { control = Ceval (e, env); pstack = { seg with frames = fs } :: rest }
      | Fseq (e :: es, env) ->
          { control = Ceval (e, env);
            pstack = { seg with frames = Fseq (es, env) :: fs } :: rest }
      | Flet (done_, [], body, env) ->
          let rib = Array.of_list (List.rev (v :: done_)) in
          { control = Ceval (body, rib :: env);
            pstack = { seg with frames = fs } :: rest }
      | Flet (done_, e :: es, body, env) ->
          { control = Ceval (e, env);
            pstack = { seg with frames = Flet (v :: done_, es, body, env) :: fs } :: rest }
      | Fletrec (rib, i, [], body, env) ->
          rib.(i) <- v;
          { control = Ceval (body, env); pstack = { seg with frames = fs } :: rest }
      | Fletrec (rib, i, e :: es, body, env) ->
          rib.(i) <- v;
          { control = Ceval (e, env);
            pstack = { seg with frames = Fletrec (rib, i + 1, es, body, env) :: fs } :: rest }
      | Fset (rib, slot) ->
          rib.(slot) <- v;
          { control = Creturn Unit; pstack = { seg with frames = fs } :: rest }
      | Fsetg g ->
          g.gval <- v;
          { control = Creturn Unit; pstack = { seg with frames = fs } :: rest }
      | Ffuture fc ->
          fc.fvalue <- Some v;
          { control = Creturn (Future fc); pstack = { seg with frames = fs } :: rest }
      | Fwind (_, after) ->
          (* normal return exits the wind: run the after, then deliver v *)
          let pstack =
            { seg with frames = fs; winders = List.tl seg.winders } :: rest
          in
          run_winders { control = Creturn v; pstack } [ after ] (Wreturn v)
      | Fwinding (pending, target) ->
          (* a winder thunk finished; its value is discarded *)
          run_winders
            { control = Creturn v; pstack = { seg with frames = fs } :: rest }
            pending target)

(* Read a lexical address.  Inlined here rather than via Env so the
   hot path is a tight loop over the rib chain. *)
let rec rib_at env d =
  match env with
  | rib :: rest -> if d = 0 then rib else rib_at rest (d - 1)
  | [] -> assert false

(* [conc] selects who owns pcall/future: the sequential fallback evaluates
   them in-line; the concurrent scheduler takes them as escapes, so its
   driver loop needs no per-step control inspection of its own. *)
let step_gen ~conc cfg st =
  match st.control with
  | Creturn v -> return_value st v
  | Capply (f, args) -> apply cfg st f args
  | Ceval (ir, env) -> (
      match ir with
      | Ir.Rconst v -> { st with control = Creturn v }
      | Ir.Rquoted q -> { st with control = Creturn (Resolve.quoted_value q) }
      | Ir.Rlocal (d, s) ->
          { st with control = Creturn (Array.unsafe_get (rib_at env d) s) }
      | Ir.Rglobal g ->
          if g.gbound then { st with control = Creturn g.gval }
          else err ("unbound variable: " ^ g.gname)
      | Ir.Rlam { rnparams; rhas_rest; rbody } ->
          {
            st with
            control =
              Creturn
                (Closure
                   { nparams = rnparams; has_rest = rhas_rest; cbody = rbody; cenv = env });
          }
      | Ir.Rapp (f, args) ->
          let pstack = push_frame (Fapp ([], args, env)) st.pstack in
          { control = Ceval (f, env); pstack }
      | Ir.Rif (c, t, e) ->
          let pstack = push_frame (Fif (t, e, env)) st.pstack in
          { control = Ceval (c, env); pstack }
      | Ir.Rseq [] -> { st with control = Creturn Unit }
      | Ir.Rseq [ e ] -> { st with control = Ceval (e, env) }
      | Ir.Rseq (e :: es) ->
          let pstack = push_frame (Fseq (es, env)) st.pstack in
          { control = Ceval (e, env); pstack }
      | Ir.Rlet ([], body) -> { st with control = Ceval (body, env) }
      | Ir.Rlet (e :: es, body) ->
          let pstack = push_frame (Flet ([], es, body, env)) st.pstack in
          { control = Ceval (e, env); pstack }
      | Ir.Rletrec ([], body) -> { st with control = Ceval (body, env) }
      | Ir.Rletrec ((e0 :: es as inits), body) ->
          let rib = Array.make (List.length inits) Undef in
          let env' = rib :: env in
          let pstack = push_frame (Fletrec (rib, 0, es, body, env')) st.pstack in
          { control = Ceval (e0, env'); pstack }
      | Ir.Rset_local (d, s, e) ->
          let pstack = push_frame (Fset (rib_at env d, s)) st.pstack in
          { control = Ceval (e, env); pstack }
      | Ir.Rset_global (g, e) ->
          (* The unbound check happens before the right-hand side runs,
             matching the old by-name lookup at this point. *)
          if not g.gbound then err ("set!: unbound variable: " ^ g.gname)
          else
            let pstack = push_frame (Fsetg g) st.pstack in
            { control = Ceval (e, env); pstack }
      | Ir.Rfuture e ->
          if conc then raise (Stop (Esc_future (e, env)))
          else
            (* Sequential fallback: evaluate eagerly; the future is
               resolved by the time it is returned. *)
            let pstack = push_frame (Ffuture { fvalue = None; fwaiters = [] }) st.pstack in
            { control = Ceval (e, env); pstack }
      | Ir.Rpcall [] -> err "pcall: expects at least an operator expression"
      | Ir.Rpcall exprs ->
          if conc then raise (Stop (Esc_fork (exprs, env)))
          else
            (* Sequential fallback: evaluate left to right in this branch. *)
            let pstack =
              push_frame (Fpcall ([], List.tl exprs, env)) st.pstack
            in
            { control = Ceval (List.hd exprs, env); pstack })

let step_exn cfg st = step_gen ~conc:false cfg st

let step_exn_conc cfg st = step_gen ~conc:true cfg st

let step cfg st =
  match step_exn cfg st with st' -> Next st' | exception Stop s -> s
