open Types

let frame_name = function
  | Fapp _ -> "Fapp"
  | Fpcall _ -> "Fpcall"
  | Fif _ -> "Fif"
  | Fseq _ -> "Fseq"
  | Flet _ -> "Flet"
  | Fletrec _ -> "Fletrec"
  | Fset _ -> "Fset"
  | Fsetg _ -> "Fsetg"
  | Ffuture _ -> "Ffuture"
  | Fwind _ -> "Fwind"
  | Fwinding _ -> "Fwinding"

let pp_root ppf = function
  | Rbase -> Format.fprintf ppf "base"
  | Rspawn l -> Format.fprintf ppf "spawn#%d" l
  | Rprompt -> Format.fprintf ppf "prompt"

let pp_segment ppf seg =
  Format.fprintf ppf "%a[%d]" pp_root seg.root (List.length seg.frames)

let pp_pstack ppf segs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
    pp_segment ppf segs

let pp_control ppf = function
  | Ceval (ir, _) ->
      let s =
        Ir.resolved_to_string ~value_to_string:Value.to_string
          ~global_name:(fun g -> g.gname)
          ir
      in
      let s = if String.length s > 40 then String.sub s 0 37 ^ "..." else s in
      Format.fprintf ppf "eval %s" s
  | Creturn v -> Format.fprintf ppf "return %s" (Value.to_string v)
  | Capply (f, args) ->
      Format.fprintf ppf "apply %s/%d" (Value.to_string f) (List.length args)

let pp_state ppf st =
  Format.fprintf ppf "@[<h><%a @@ %a>@]" pp_control st.control pp_pstack st.pstack

let rec pp_ptree ppf = function
  | Pleaf st -> Format.fprintf ppf "leaf%a" pp_bracket_stack st.pstack
  | Phole segs -> Format.fprintf ppf "HOLE%a" pp_bracket_stack segs
  | Pdone -> Format.fprintf ppf "done"
  | Pfork pf ->
      Format.fprintf ppf "fork%a(%a)" pp_bracket_stack pf.pf_trunk
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_ptree)
        (Array.to_list pf.pf_children)

and pp_bracket_stack ppf segs = Format.fprintf ppf "{%a}" pp_pstack segs

let state_summary st = Format.asprintf "%a" pp_state st

let ptree_summary t = Format.asprintf "%a" pp_ptree t
