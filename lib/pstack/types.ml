(* Runtime types of the process-stack machine (Section 7 of the paper).
   Everything here is mutually recursive — values contain closures over
   environments, continuations contain frames containing values — so the
   whole runtime representation lives in this single types-only module.
   No .mli: the definitions are the interface.

   The central structure is the PROCESS STACK: a stack of labeled stacks of
   activation records ("frames").  A call to spawn pushes an empty segment
   carrying a fresh label; invoking a process controller removes all
   segments down to and including the topmost segment with the matching
   label and packages them into a process continuation; invoking a process
   continuation pushes the saved segments back. *)

type label = int

(* How continuations are represented, for experiments E1/E2:
   [Linked] shares the segment spines (the paper's implementation: control
   operations are linear in the number of control points); [Copying] copies
   every frame, modeling stack-copying implementations whose control
   operations are linear in the size of the continuation. *)
type strategy = Linked | Copying

type value =
  | Int of int
  | Bool of bool
  | Str of string
  | Sym of string
  | Char of char
  | Nil
  | Unit
  | Undef  (* the value of uninitialized letrec bindings *)
  | Pair of pair
  | Vector of value array
  | Closure of closure
  | Prim of prim
  | Controller of label
      (* the process controller passed by spawn; applying it captures and
         aborts back to the topmost segment labeled [label] *)
  | Pk of pk_local
      (* a process continuation whose captured subtree is a pure stack of
         segments (no forks): the sequential case *)
  | Pktree of pktree
      (* a process continuation capturing a genuine subtree of the process
         tree, produced by the concurrent scheduler *)
  | Cont of cont  (* a call/cc continuation: the entire process stack *)
  | Future of future_cell
      (* a Multilisp-style future (Section 8): an independent tree of the
         process forest; [touch] waits for its value *)
  | Fcont of frame list
      (* a functional continuation captured by Felleisen's F: a flat list of
         frames up to the nearest prompt, with any intervening spawn roots
         erased — which is precisely why F cannot manage process trees *)

and pair = { mutable car : value; mutable cdr : value }

and future_cell = {
  mutable fvalue : value option;
  mutable fwaiters : (unit -> int option) list;
      (* wake thunks registered (newest first) by the concurrent
         scheduler for branches parked on a pending touch; run once,
         when the cell's value is delivered, returning the woken
         branch's node id ([None] when the entry was invalidated by a
         capture) so the scheduler can emit wake events in park order *)
}

(* The runtime environment is a chain of flat "rib" frames: one value
   array per binding form (lambda application, let, letrec).  The
   resolution pass (Resolve) compiles every variable occurrence to a
   lexical address — rib depth and slot — so access is two array
   indexings, never a string comparison.  Globals live in mutable cells
   interned in a per-interpreter table; unresolved references intern an
   unbound cell so errors are still reported by name at use time. *)
and env = value array list

and gcell = { gname : string; mutable gval : value; mutable gbound : bool }

and genv = (string, gcell) Hashtbl.t

and rir = (value, gcell) Ir.resolved

and rlambda = (value, gcell) Ir.rlambda

and closure = { nparams : int; has_rest : bool; cbody : rir; cenv : env }

and prim = { pname : string; pmin : int; pmax : int option; pkind : prim_kind }

and prim_kind =
  | Pure of (value list -> (value, string) result)
  | Ctl of ctl  (* operators that manipulate the process stack *)

and ctl =
  | Op_spawn
  | Op_callcc
  | Op_prompt
  | Op_fcontrol
  | Op_apply
  | Op_touch
  | Op_wind
  | Op_sleep  (* park until the scheduler's virtual clock advances *)
  | Op_span_begin  (* open a causal span; returns its id *)
  | Op_span_end  (* close a span by id *)

(* What established a segment.  [Rbase] is the bottom of a task's stack;
   [Rspawn l] is a process root; [Rprompt] is Felleisen's #. *)
and root = Rbase | Rspawn of label | Rprompt

and frame =
  | Fapp of value list * rir list * env
      (* evaluated values in reverse (operator first), remaining operands *)
  | Fpcall of value list * rir list * env
      (* sequential evaluation of a pcall: same protocol as Fapp *)
  | Fif of rir * rir * env
  | Fseq of rir list * env
  | Flet of value list * rir list * rir * env
      (* evaluated initialisers (reversed), remaining initialisers, body,
         the let form's own environment; the rib is built when the last
         initialiser returns *)
  | Fletrec of value array * int * rir list * rir * env
      (* the rib being filled, slot of the initialiser being evaluated,
         remaining initialisers, body; env already extended with the rib *)
  | Fset of value array * int
      (* destination rib and slot of a [set!] on a local *)
  | Fsetg of gcell  (* destination cell of a [set!] on a global *)
  | Ffuture of future_cell
      (* sequential evaluation of (future e): fill the cell on return *)
  | Fwind of value * value
      (* (dynamic-wind before thunk after): [before]/[after] thunks; the
         after runs on normal return AND when a controller captures across
         this frame; the before re-runs when a process continuation
         reinstates it (the Subcontinuations-1994 extension) *)
  | Fwinding of value list * wind_target
      (* winder thunks still to run, then the target action *)

and wind_target =
  | Wreturn of value  (* deliver this value *)
  | Wapply of value * value list  (* perform this application *)
  | Wenter of value * value * value  (* install Fwind(before, after), run thunk *)

and segment = {
  mutable root : root;
  mutable frames : frame list;
  mutable winders : (value * value) list;
      (* the (before, after) pairs of the Fwind frames in [frames],
         innermost first — maintained alongside the frames so control
         operations find winders in O(winders), never O(frames),
         preserving the O(control points) claim of Section 7 *)
  mutable shared : bool;
      (* true once the record is aliased by a captured continuation (a
         [Pk], [Pktree] or [Cont] under the Linked strategy).  The
         machine never field-mutates a shared record: it copies first
         (copy-on-write), and never returns one to the segment pool.
         Frame lists themselves stay immutable, so sharing a spine is
         always safe; only the records need the flag. *)
}

and control =
  | Ceval of rir * env
  | Creturn of value
  | Capply of value * value list

and state = { control : control; pstack : segment list }

and pk_local = {
  pk_label : label;
  mutable pk_segments : segment list;
  pk_once : bool;
      (* the controller body was statically recognised as using its
         process continuation linearly (at most once), so reinstatement
         may MOVE the segments — pointer transfer, no pinning, no copy —
         and invalidate the source *)
  mutable pk_consumed : bool;  (* a one-shot pk that has been applied *)
}

and cont = { ck_pstack : segment list }

(* A captured subtree of the process tree.  [pkt_tree] is always a [Pfork]
   whose trunk ends (at the bottom) with the segment labeled [pkt_label]. *)
and pktree = { pkt_label : label; pkt_tree : ptree }

and ptree =
  | Pleaf of state  (* a suspended sibling branch *)
  | Phole of segment list
      (* the branch that invoked the controller: its local segments; on
         reinstatement the process continuation's argument is returned here *)
  | Pdone  (* a branch that had already finished; its value is in results *)
  | Pfork of pfork

and pfork = {
  pf_trunk : segment list;  (* segments between this fork and its parent *)
  pf_children : ptree array;
  pf_results : value option array;
}
