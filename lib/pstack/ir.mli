(** Core intermediate representation executed by the process-stack machine.

    The Scheme front end ([Pcont_syntax]) compiles surface programs to this
    IR; tests and benchmarks may also build IR directly.  The IR is a
    conventional Scheme core: constants, variables, abstractions,
    applications, conditionals, sequencing, [let]/[letrec], assignment — plus
    [pcall], the paper's tree-structured fork form.  The control operators
    ([spawn], [call/cc], [prompt], [fcontrol]) are primitive {e procedures},
    not syntax, exactly as [call/cc] is in Scheme. *)

type const =
  | Cint of int
  | Cbool of bool
  | Cstr of string
  | Csym of string
  | Cchar of char
  | Cnil
  | Cunit

type quoted =
  | Qint of int
  | Qbool of bool
  | Qstr of string
  | Qsym of string
  | Qchar of char
  | Qnil
  | Qlist of quoted list
  | Qdot of quoted list * quoted  (** improper list *)

type t =
  | Const of const
  | Quoted of quoted
      (** a [quote]d literal; the machine builds the (fresh) value *)
  | Var of string
  | Lam of lambda
  | App of t * t list
  | If of t * t * t
  | Seq of t list  (** [begin]; empty sequence evaluates to the unit value *)
  | Let of (string * t) list * t
  | Letrec of (string * t) list * t
  | Set of string * t
  | Future of t
      (** [(future e)]: start [e] as an {e independent} tree of the process
          forest (Section 8) and immediately return a future; [touch]
          retrieves the value.  The sequential machine evaluates eagerly. *)
  | Pcall of t list
      (** [(pcall f e1 ... en)]: evaluate all subexpressions as parallel
          branches of the process tree, then apply the value of the first to
          the values of the rest.  The sequential machine evaluates them
          left to right; {!Concur} actually forks. *)

and lambda = { params : string list; rest : string option; body : t }

(** Resolved IR, the output of the lexical-addressing pass ({!Resolve}):
    every variable occurrence is a lexical address [Rlocal (depth, slot)]
    into the chain of rib frames, or a pre-interned global cell
    [Rglobal].  Parametric in the runtime value type ['v] (carried by
    pre-converted constants) and the global-cell type ['g], so that
    [Types] can instantiate it without a module cycle. *)
type ('v, 'g) resolved =
  | Rconst of 'v  (** constant, pre-converted to a runtime value *)
  | Rquoted of quoted
      (** structured [quote]d literal: a {e fresh} mutable value is built
          per evaluation, preserving [eq?] semantics *)
  | Rlocal of int * int  (** rib depth, slot within the rib *)
  | Rglobal of 'g
  | Rlam of ('v, 'g) rlambda
  | Rapp of ('v, 'g) resolved * ('v, 'g) resolved list
  | Rif of ('v, 'g) resolved * ('v, 'g) resolved * ('v, 'g) resolved
  | Rseq of ('v, 'g) resolved list
  | Rlet of ('v, 'g) resolved list * ('v, 'g) resolved
      (** binding initialisers in slot order; the body sees one new rib *)
  | Rletrec of ('v, 'g) resolved list * ('v, 'g) resolved
      (** initialisers evaluated inside the new rib, slots filled in order *)
  | Rset_local of int * int * ('v, 'g) resolved
  | Rset_global of 'g * ('v, 'g) resolved
  | Rfuture of ('v, 'g) resolved
  | Rpcall of ('v, 'g) resolved list

and ('v, 'g) rlambda = {
  rnparams : int;  (** number of fixed parameters *)
  rhas_rest : bool;  (** whether a rest slot follows the fixed slots *)
  rbody : ('v, 'g) resolved;
}

val int : int -> t

val bool : bool -> t

val str : string -> t

val sym : string -> t

val var : string -> t

val lam : string list -> t -> t

val lam_rest : string list -> string -> t -> t

val app : t -> t list -> t

val if_ : t -> t -> t -> t

val let_ : (string * t) list -> t -> t

val seq : t list -> t

val size : t -> int
(** Number of IR nodes, for generators and statistics. *)

val pp_quoted : Format.formatter -> quoted -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val pp_resolved :
  pp_value:(Format.formatter -> 'v -> unit) ->
  global_name:('g -> string) ->
  Format.formatter ->
  ('v, 'g) resolved ->
  unit
(** Print resolved IR; locals appear as [%depth.slot], globals by name. *)

val resolved_to_string :
  value_to_string:('v -> string) ->
  global_name:('g -> string) ->
  ('v, 'g) resolved ->
  string
