open Types

let list_to_values v =
  let rec go acc = function
    | Nil -> Some (List.rev acc)
    | Pair { car; cdr } -> go (car :: acc) cdr
    | _ -> None
  in
  go [] v

let cons a d = Pair { car = a; cdr = d }

let values_to_list vs = List.fold_right cons vs Nil

let is_truthy = function Bool false -> false | _ -> true

let eqv a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Sym x, Sym y -> String.equal x y
  | Char x, Char y -> x = y
  | Nil, Nil | Unit, Unit | Undef, Undef -> true
  | Str x, Str y -> x == y
  | Pair x, Pair y -> x == y
  | Vector x, Vector y -> x == y
  | _ -> a == b

let rec equal a b =
  match (a, b) with
  | Pair x, Pair y -> equal x.car y.car && equal x.cdr y.cdr
  | Vector x, Vector y ->
      Array.length x = Array.length y
      && begin
           let ok = ref true in
           Array.iteri (fun i xi -> if not (equal xi y.(i)) then ok := false) x;
           !ok
         end
  | Str x, Str y -> String.equal x y
  | _ -> eqv a b

let type_name = function
  | Int _ -> "integer"
  | Bool _ -> "boolean"
  | Str _ -> "string"
  | Sym _ -> "symbol"
  | Char _ -> "character"
  | Nil -> "null"
  | Unit -> "void"
  | Undef -> "undefined"
  | Pair _ -> "pair"
  | Vector _ -> "vector"
  | Closure _ -> "procedure"
  | Prim _ -> "procedure"
  | Controller _ -> "controller"
  | Pk _ | Pktree _ -> "process-continuation"
  | Cont _ -> "continuation"
  | Future _ -> "future"
  | Fcont _ -> "functional-continuation"

let rec pp_gen ~display ppf v =
  match v with
  | Int n -> Format.fprintf ppf "%d" n
  | Bool true -> Format.fprintf ppf "#t"
  | Bool false -> Format.fprintf ppf "#f"
  | Str s -> if display then Format.fprintf ppf "%s" s else Format.fprintf ppf "%S" s
  | Sym s -> Format.fprintf ppf "%s" s
  | Char c -> if display then Format.fprintf ppf "%c" c else Format.fprintf ppf "#\\%c" c
  | Nil -> Format.fprintf ppf "()"
  | Unit -> Format.fprintf ppf "#!void"
  | Undef -> Format.fprintf ppf "#!undefined"
  | Pair _ -> pp_list ~display ppf v
  | Vector a ->
      Format.fprintf ppf "#(";
      Array.iteri
        (fun i x ->
          if i > 0 then Format.fprintf ppf " ";
          pp_gen ~display ppf x)
        a;
      Format.fprintf ppf ")"
  | Closure _ -> Format.fprintf ppf "#<procedure>"
  | Prim p -> Format.fprintf ppf "#<procedure %s>" p.pname
  | Controller l -> Format.fprintf ppf "#<controller %d>" l
  | Pk pk -> Format.fprintf ppf "#<process-continuation %d>" pk.pk_label
  | Pktree pkt -> Format.fprintf ppf "#<process-continuation %d (tree)>" pkt.pkt_label
  | Cont _ -> Format.fprintf ppf "#<continuation>"
  | Future { fvalue = None; _ } -> Format.fprintf ppf "#<future (pending)>"
  | Future { fvalue = Some _; _ } -> Format.fprintf ppf "#<future (resolved)>"
  | Fcont _ -> Format.fprintf ppf "#<functional-continuation>"

and pp_list ~display ppf v =
  Format.fprintf ppf "(";
  let rec go first = function
    | Nil -> ()
    | Pair { car; cdr } ->
        if not first then Format.fprintf ppf " ";
        pp_gen ~display ppf car;
        go false cdr
    | other ->
        Format.fprintf ppf " . ";
        pp_gen ~display ppf other
  in
  go true v;
  Format.fprintf ppf ")"

let pp ppf v = pp_gen ~display:false ppf v

let pp_display ppf v = pp_gen ~display:true ppf v

let to_string v = Format.asprintf "%a" pp v

let display_string v = Format.asprintf "%a" pp_display v
