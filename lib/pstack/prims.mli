(** Primitive procedures and the base global environment.

    Pure primitives (arithmetic, pairs, strings, vectors, predicates, I/O to
    an internal buffer) plus the control operators of the paper and of the
    systems it compares against:

    - [spawn] — the paper's operator (Section 4);
    - [call/cc] / [call-with-current-continuation] — traditional abortive
      continuations (Section 3);
    - [prompt] and [fcontrol] — Felleisen's [#] and [F] (Section 3);
    - [apply].

    [display]/[write]/[newline] append to a per-call buffer drained with
    {!take_output}, so tests can assert on program output. *)

val base_env : unit -> Types.genv
(** A fresh global table with every primitive bound. *)

val take_output : unit -> string
(** Return and clear everything printed since the last call. *)

val find : string -> Types.value option
(** Look up a primitive by name (for tests). *)

val names : unit -> string list
(** All primitive names, sorted. *)
