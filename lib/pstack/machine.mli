(** The process-stack machine: one CESK-style transition per call.

    The machine state is a control (an expression under evaluation, a value
    being returned, or an application about to happen) plus the process
    stack.  Control operators transform the process stack exactly as
    Section 7 describes:

    - [spawn f] pushes an empty segment with a fresh label and applies [f]
      to the corresponding controller;
    - applying a controller removes all segments down to and including the
      topmost segment with its label, packages them into a process
      continuation, and applies the controller's argument to it {e outside}
      the removed root (it is an error if no such segment exists);
    - applying a process continuation pushes its saved segments back onto
      the current process stack and returns its argument to the reinstated
      top frame;
    - [call/cc] captures the entire process stack; invoking the resulting
      continuation replaces the entire process stack (abortive);
    - [prompt thunk] (Felleisen's [#]) pushes an unlabeled prompt segment;
      [fcontrol f] (Felleisen's [F]) captures a flat, composable
      continuation up to the nearest prompt and aborts to it.

    Instrumentation: every capture/reinstate records how many segments and
    frames it touched in the configuration's counters, so experiments E1/E2
    can compare the [Linked] strategy (touches segments only) with the
    [Copying] strategy (touches every frame). *)

type config = {
  strategy : Types.strategy;
  counters : Pcont_util.Counters.t;
  labels : Pcont_util.Id.t;  (** fresh-label source for [spawn] *)
  fastpath : bool;
      (** enables the segment pool and the one-shot move path (default);
          [false] reproduces the pre-optimization allocation behavior so
          benchmarks can measure both in one run *)
  pool : Types.segment array;
      (** recycled segment records, slots [0 .. pool_n-1] live; spawn and
          prompt draw from it, the matching returns refill it *)
  mutable pool_n : int;
  mutable pool_ops : int;
      (** recycles since the last pool flush; the pool is aged out
          periodically so promoted records cannot circulate forever *)
  pool_hit : int ref;
      (** cached cell of counter [machine.pool.hit]: spawn/prompt segments
          served from the pool *)
  pool_miss : int ref;
      (** cached cell of counter [machine.pool.miss]: freshly allocated *)
  pk_moved : int ref;
      (** cached cell of counter [machine.capture.moved]: one-shot process
          continuations whose segments were moved, not shared or copied *)
  mutable lin_cache : (Types.rir * int) list;
      (** memoized one-shot classification per controller-body code node
          (physical identity; [-1] = not linear) — the linearity walk runs
          once per code site, not once per capture *)
  mutable metrics : Pcont_obs.Obs.Metrics.t option;
      (** histogram half of the observability metrics ([machine.*]
          size distributions); the drivers install it while a trace
          handle is attached and the machine leaves it alone otherwise *)
}

val config : ?strategy:Types.strategy -> ?fastpath:bool -> unit -> config

val initial_pstack : Types.segment list
(** A single empty base segment. *)

val initial : Types.rir -> Types.state
(** Initial state for a resolved top-level form; top-level forms close
    over no ribs, so the lexical environment starts empty. *)

type stepped =
  | Next of Types.state
  | Final of Types.value
      (** the base segment was popped with this return value *)
  | Err of string
  | Esc_control of Types.label * Types.value
      (** a controller was applied whose label does not occur in the local
          process stack; the concurrent scheduler resolves it against the
          process tree, the sequential driver reports an invalid controller
          application.  Carries the label and the controller's argument. *)
  | Esc_pktree of Types.pktree * Types.value
      (** a tree-shaped process continuation was invoked with the given
          argument; only the concurrent scheduler can graft it *)
  | Esc_touch of Types.future_cell
      (** [touch] of a still-pending future: the concurrent scheduler
          retries the branch after other trees have progressed *)
  | Esc_fork of Types.rir list * Types.env
      (** [pcall] under {!step_exn_conc}: the scheduler forks one child
          per expression (operator included; the list is non-empty) *)
  | Esc_future of Types.rir * Types.env
      (** [future] under {!step_exn_conc}: the scheduler plants a new
          tree and continues the branch with a pending future *)
  | Esc_sleep of int
      (** [sleep] of a duration in virtual-time units: the concurrent
          scheduler parks the branch on its timer wheel; outside the
          scheduler there is no clock and the run errors *)
  | Esc_span_begin of string
      (** [span-begin] with the span's name: the concurrent scheduler
          opens a causal span and continues the branch with its id *)
  | Esc_span_end of int
      (** [span-end] of a span id previously returned by [span-begin]:
          the concurrent scheduler closes the span *)

exception Stop of stepped
(** Raised by {!step_exn} for every outcome other than a plain successor
    state.  The payload is never [Next]. *)

val step_exn : config -> Types.state -> Types.state
(** One transition on the hot path: returns the successor state directly
    and raises {!Stop} on termination, error or escape, so a driver loop
    pays for one exception handler per run instead of one [stepped]
    allocation per transition.  [pcall]/[future] evaluate via their
    sequential fallbacks; never raises [Esc_fork]/[Esc_future]. *)

val step_exn_conc : config -> Types.state -> Types.state
(** Like {!step_exn}, but [pcall] and [future] raise [Esc_fork] and
    [Esc_future] for the concurrent scheduler instead of taking the
    sequential fallback. *)

val step : config -> Types.state -> stepped
(** Allocation-boxed wrapper around {!step_exn}; never raises [Stop]. *)

val apply :
  ?oneshot:bool ->
  config ->
  Types.state ->
  Types.value ->
  Types.value list ->
  Types.state
(** Apply a procedure value to arguments in the given state's process
    stack.  Exposed for the drivers; raises {!Stop} like {!step_exn}.
    [oneshot] (default [true]) permits classifying controller captures as
    linear; the concurrent scheduler disables it because a sibling capture
    can package a pending pk application into a multi-shot [Pktree]. *)

val linear_pk_use : Types.rir -> bool
(** Is the body of a unary controller argument [(lambda (k) body)] a
    linear (at-most-once, non-escaping) user of [k]?  Conservative static
    check behind the one-shot move path; exposed for tests. *)

val pin_segments : Types.segment list -> unit
(** Mark every segment as shared: aliased by a captured continuation, so
    the machine must copy-on-write instead of mutating in place and must
    never recycle the record into the pool.  The concurrent scheduler
    pins every stack it packages into a [Pktree]. *)

val find_spawn_label : Types.label -> Types.segment list -> bool
(** Does the process stack contain a segment rooted at [Rspawn l]? *)

val split_at_spawn_label :
  Types.label ->
  Types.segment list ->
  (Types.segment list * Types.segment list) option
(** [(captured, rest)] where [captured] ends with the topmost segment rooted
    at the label. *)

val count_frames : Types.segment list -> int

val copy_segments : Types.segment list -> Types.segment list
(** Reconstruct every frame-list cell, modeling a stack-copying
    implementation; used by the [Copying] strategy. *)
