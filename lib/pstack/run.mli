(** Sequential driver: iterate the machine to completion.

    This driver realises the paper's {e sequential} implementation
    (Section 7's stack of labeled stacks).  [pcall] degenerates to
    left-to-right evaluation; escapes that require the process tree
    ([Esc_control] with no local root, tree-shaped process continuations)
    are reported as errors, exactly as an invalid controller application is
    an error in the paper. *)

type outcome =
  | Value of Types.value
  | Error of string
  | Out_of_fuel

val pp_outcome : Format.formatter -> outcome -> unit

val outcome_to_string : outcome -> string

val run : ?fuel:int -> Machine.config -> Types.state -> outcome
(** Default fuel: 10_000_000 machine transitions. *)

val eval_ir : ?fuel:int -> ?cfg:Machine.config -> Types.genv -> Ir.t -> outcome
(** Resolve an IR program against the global table ({!Resolve.toplevel})
    and evaluate it on a fresh process stack.  A fresh configuration
    (Linked strategy) is made if none given. *)

val eval_value : ?fuel:int -> ?cfg:Machine.config -> Types.genv -> Ir.t -> Types.value
(** Like {!eval_ir} but raises [Failure] unless a value is produced. *)
