type outcome = Value of Types.value | Error of string | Out_of_fuel

let pp_outcome ppf = function
  | Value v -> Format.fprintf ppf "VALUE %a" Value.pp v
  | Error msg -> Format.fprintf ppf "ERROR %s" msg
  | Out_of_fuel -> Format.fprintf ppf "OUT-OF-FUEL"

let outcome_to_string o = Format.asprintf "%a" pp_outcome o

let default_fuel = 10_000_000

let invalid_controller l =
  Printf.sprintf
    "invalid controller application: no process root labeled %d in the \
     current continuation"
    l

let run ?(fuel = default_fuel) cfg state =
  (* The exception handler lives outside the loop: the hot path is a tail
     call per transition with no [stepped] box. *)
  let rec loop fuel st =
    if fuel <= 0 then Out_of_fuel else loop (fuel - 1) (Machine.step_exn cfg st)
  in
  match loop fuel state with
  | outcome -> outcome
  | exception Machine.Stop s -> (
      match s with
      | Machine.Final v -> Value v
      | Machine.Err msg -> Error msg
      | Machine.Esc_control (l, _) -> Error (invalid_controller l)
      | Machine.Esc_pktree _ ->
          Error
            "process continuation spanning concurrent branches invoked \
             outside the concurrent scheduler"
      | Machine.Esc_touch _ ->
          Error "touch: unresolved future outside the concurrent scheduler"
      | Machine.Esc_sleep _ ->
          Error "sleep: no virtual clock outside the concurrent scheduler"
      | Machine.Esc_span_begin _ | Machine.Esc_span_end _ ->
          Error "span: no span context outside the concurrent scheduler"
      | Machine.Next _ | Machine.Esc_fork _ | Machine.Esc_future _ ->
          (* step_exn takes the sequential pcall/future fallbacks *)
          assert false)

let eval_ir ?fuel ?cfg genv ir =
  let cfg = match cfg with Some c -> c | None -> Machine.config () in
  run ?fuel cfg (Machine.initial (Resolve.toplevel genv ir))

let eval_value ?fuel ?cfg env ir =
  match eval_ir ?fuel ?cfg env ir with
  | Value v -> v
  | Error msg -> failwith ("evaluation error: " ^ msg)
  | Out_of_fuel -> failwith "evaluation ran out of fuel"
