(* Deterministic open-loop load generation.  See load.mli for the
   methodology; the short version: arrival times are a pure function of
   (profile, seed), requests are measured from their *scheduled*
   arrival, and the four latency components are clamped into a
   telescoping chain so they sum exactly to the end-to-end latency. *)

module Sched = Pcont_sched.Sched
module Channel = Pcont_sched.Channel
module Obs = Pcont_obs.Obs
module Resil = Pcont_resil.Resil
module Xorshift = Pcont_util.Xorshift
module E = Obs.Event
module Sketch = Obs.Metrics.Sketch

type profile = {
  requests : int;
  mean_iat : float;
  burst_on : int;
  burst_off : float;
  service_lo : int;
  service_cap : int;
  deadline : int;
  workers : int;
  hops : int;
  fanout : int;
  items : int;
}

let quick =
  {
    requests = 3_000;
    mean_iat = 2.0;
    burst_on = 64;
    burst_off = 256.0;
    service_lo = 20;
    service_cap = 2_000;
    deadline = 60_000;
    workers = 32;
    hops = 4;
    fanout = 3;
    items = 4;
  }

let full =
  {
    quick with
    requests = 24_000;
    burst_on = 256;
    burst_off = 1_024.0;
    service_lo = 50;
    service_cap = 5_000;
    deadline = 500_000;
    workers = 128;
  }

let default = quick

(* ------------------------------------------------------------------ *)
(* PRNG streams.                                                       *)
(* ------------------------------------------------------------------ *)

(* Uniform in (0, 1], 53 bits — the inverse-transform input for the
   exponential and bounded-Pareto draws (never 0, so log/div are safe). *)
let uniform g =
  (Int64.to_float (Int64.shift_right_logical (Xorshift.next g) 11) +. 1.)
  /. 9007199254740992.

let exponential g mean = -.mean *. log (uniform g)

(* Per-request generator, independent of every other request and of
   execution order: a splitmix stream keyed by (seed, index). *)
let req_rng seed i =
  Xorshift.create
    (Int64.logxor seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (i + 81))))

let service_draw p seed i =
  let u = uniform (req_rng seed i) in
  let s = int_of_float (float_of_int p.service_lo /. u) in
  max p.service_lo (min p.service_cap s)

let arrivals p ~seed =
  let g = Xorshift.create seed in
  let t = ref 0.0 in
  Array.init p.requests (fun i ->
      if i > 0 && p.burst_off > 0. && p.burst_on > 0 && i mod p.burst_on = 0
      then t := !t +. exponential g p.burst_off;
      t := !t +. exponential g p.mean_iat;
      int_of_float !t)

(* ------------------------------------------------------------------ *)
(* Scenarios.                                                          *)
(* ------------------------------------------------------------------ *)

type scenario = Pool | Ring | Pipeline | Stream

let scenarios = [ Pool; Ring; Pipeline; Stream ]

let scenario_name = function
  | Pool -> "pool"
  | Ring -> "ring"
  | Pipeline -> "pipeline"
  | Stream -> "stream"

let scenario_of_name = function
  | "pool" -> Some Pool
  | "ring" -> Some Ring
  | "pipeline" -> Some Pipeline
  | "stream" -> Some Stream
  | _ -> None

(* One in-flight request.  The stamps t1..t3 chain between arrival and
   completion; they start at the arrival tick so an unset stamp clamps
   away instead of poisoning the decomposition. *)
type req = {
  idx : int;
  t_arr : int;
  service : int;
  mutable t1 : int;  (* pickup: a handler first touched the request *)
  mutable t2 : int;  (* service done: the last unit of work finished *)
  mutable t3 : int;  (* client resumed after the reply/join *)
  mutable dead : bool;  (* deadline fired; laggard handlers shed the work *)
}

(* [setup] returns the per-request handler plus a teardown that closes
   the scenario's channels; long-lived or orphanable futures land in
   [leftovers] so the main fiber can drain them before the run ends
   (keeping end-of-trace state clean for the no-orphan-waiters rule). *)
let setup_pool p name leftovers =
  let jobs = Channel.create ~capacity:(max 16 p.requests) () in
  let svc = name ^ "/service" in
  let worker () =
    let rec loop () =
      match Channel.recv_opt jobs with
      | None -> ()
      | Some (req, reply) ->
          req.t1 <- Sched.now ();
          if not req.dead then
            Sched.Span.with_ svc (fun () -> Sched.sleep req.service);
          req.t2 <- Sched.now ();
          (try Channel.send reply () with Channel.Closed -> ());
          loop ()
    in
    loop ()
  in
  for _ = 1 to p.workers do
    leftovers := Sched.future worker :: !leftovers
  done;
  let handle req =
    let reply = Channel.create ~capacity:1 () in
    Channel.send jobs (req, reply);
    (match Channel.recv_opt reply with Some () | None -> ());
    req.t3 <- Sched.now ()
  in
  (handle, fun () -> Channel.close jobs)

let setup_ring p name leftovers =
  let k = max 1 p.workers in
  let mbs =
    Array.init k (fun _ -> Channel.create ~capacity:(max 16 p.requests) ())
  in
  let svc = name ^ "/service" in
  let actor i () =
    let rec loop () =
      match Channel.recv_opt mbs.(i) with
      | None -> ()
      | Some (req, hops, reply) ->
          if hops = p.hops then req.t1 <- Sched.now ();
          (if hops = 0 then begin
             if not req.dead then
               Sched.Span.with_ svc (fun () -> Sched.sleep req.service);
             req.t2 <- Sched.now ();
             try Channel.send reply () with Channel.Closed -> ()
           end
           else
             try Channel.send mbs.((i + 1) mod k) (req, hops - 1, reply)
             with Channel.Closed -> ());
          loop ()
    in
    loop ()
  in
  for i = 0 to k - 1 do
    leftovers := Sched.future (actor i) :: !leftovers
  done;
  let handle req =
    let reply = Channel.create ~capacity:1 () in
    Channel.send mbs.(req.idx mod k) (req, p.hops, reply);
    (match Channel.recv_opt reply with Some () | None -> ());
    req.t3 <- Sched.now ()
  in
  (handle, fun () -> Array.iter Channel.close mbs)

let setup_pipeline p name leftovers =
  let svc = name ^ "/service" in
  let f = max 1 p.fanout in
  let handle req =
    req.t1 <- Sched.now ();
    let futs =
      List.init f (fun j ->
          Sched.future (fun () ->
              (if not req.dead then
                 Sched.Span.with_ svc (fun () ->
                     Sched.sleep (max 1 ((req.service + j) / f))));
              req.t2 <- max req.t2 (Sched.now ())))
    in
    List.iter (fun fu -> leftovers := fu :: !leftovers) futs;
    List.iter Sched.touch futs;
    req.t3 <- Sched.now ()
  in
  (handle, fun () -> ())

let setup_stream p name leftovers =
  let svc = name ^ "/service" in
  let b = max 1 p.items in
  let handle req =
    (* capacity = items: the producer never parks on send, so it always
       terminates even when its consumer was cancelled mid-stream *)
    let ch = Channel.create ~capacity:b () in
    let chunk = max 1 (req.service / b) in
    let prod =
      Sched.future (fun () ->
          try
            Sched.Span.with_ svc (fun () ->
                for _ = 1 to b do
                  if not req.dead then Sched.sleep chunk;
                  Channel.send ch ()
                done;
                req.t2 <- Sched.now ());
            Channel.close ch
          with Channel.Closed -> ())
    in
    leftovers := prod :: !leftovers;
    let first = ref true in
    let rec consume () =
      match Channel.recv_opt ch with
      | Some () ->
          if !first then begin
            first := false;
            req.t1 <- Sched.now ()
          end;
          consume ()
      | None -> ()
    in
    consume ();
    req.t3 <- Sched.now ()
  in
  (handle, fun () -> ())

let setup p name leftovers = function
  | Pool -> setup_pool p name leftovers
  | Ring -> setup_ring p name leftovers
  | Pipeline -> setup_pipeline p name leftovers
  | Stream -> setup_stream p name leftovers

(* ------------------------------------------------------------------ *)
(* Measurement.                                                        *)
(* ------------------------------------------------------------------ *)

type stats = {
  st_scenario : string;
  st_requests : int;
  st_completed : int;
  st_timedout : int;
  st_cancelled : int;
  st_crashed : int;
  st_peak_live : int;
  st_duration : int;
  st_goodput : float;
  st_fairness : float;
  st_latency : Sketch.t;
  st_queue : Sketch.t;
  st_service : Sketch.t;
  st_wake : Sketch.t;
  st_join : Sketch.t;
  st_tlat : Sketch.t;
  st_attr_residual : int;
}

type acc = {
  mutable a_completed : int;
  mutable a_timedout : int;
  mutable a_cancelled : int;
  mutable a_crashed : int;
  a_lat : Sketch.t;
  a_q : Sketch.t;
  a_sv : Sketch.t;
  a_wk : Sketch.t;
  a_jn : Sketch.t;
  a_tl : Sketch.t;
  mutable a_jain_s : float;
  mutable a_jain_s2 : float;
  mutable a_resid : int;
  se_lat : Obs.Metrics.series;
  se_q : Obs.Metrics.series;
  se_sv : Obs.Metrics.series;
  se_wk : Obs.Metrics.series;
  se_jn : Obs.Metrics.series;
}

let contains_timeout r =
  let n = String.length r in
  let rec go i = i + 7 <= n && (String.sub r i 7 = "timeout" || go (i + 1)) in
  go 0

let record acc req t4 =
  let t1 = max req.t1 req.t_arr in
  let t2 = max req.t2 t1 in
  let t3 = max req.t3 t2 in
  let t4 = max t4 t3 in
  let q = t1 - req.t_arr
  and sv = t2 - t1
  and wk = t3 - t2
  and jn = t4 - t3 in
  let l = t4 - req.t_arr in
  acc.a_completed <- acc.a_completed + 1;
  Sketch.observe acc.a_lat l;
  Sketch.observe acc.a_q q;
  Sketch.observe acc.a_sv sv;
  Sketch.observe acc.a_wk wk;
  Sketch.observe acc.a_jn jn;
  Obs.Metrics.observe_series acc.se_lat l;
  Obs.Metrics.observe_series acc.se_q q;
  Obs.Metrics.observe_series acc.se_sv sv;
  Obs.Metrics.observe_series acc.se_wk wk;
  Obs.Metrics.observe_series acc.se_jn jn;
  let fl = float_of_int l in
  acc.a_jain_s <- acc.a_jain_s +. fl;
  acc.a_jain_s2 <- acc.a_jain_s2 +. (fl *. fl);
  let r = abs (q + sv + wk + jn - l) in
  if r > acc.a_resid then acc.a_resid <- r

let marker name suffix = Sched.Span.with_ (name ^ suffix) (fun () -> ())

let finish acc name req outcome t4 =
  match outcome with
  | Ok () -> record acc req t4
  | Error (Resil.Cancelled r) ->
      req.dead <- true;
      if contains_timeout r then begin
        acc.a_timedout <- acc.a_timedout + 1;
        Sketch.observe acc.a_tl (t4 - req.t_arr);
        marker name "/timedout"
      end
      else begin
        acc.a_cancelled <- acc.a_cancelled + 1;
        marker name "/cancelled"
      end
  | Error (Resil.Crashed _) ->
      acc.a_crashed <- acc.a_crashed + 1;
      marker name "/crashed"

let run ?obs ?(policy = Sched.Tree_order) p ~seed scen =
  let o = match obs with Some o -> o | None -> Obs.create () in
  (* Live process-tree node census: every spawn (individually or
     batched) adds a node, exits and cancel sweeps remove them.  The
     peak is the "concurrent fibers" figure the scenarios are sized
     by. *)
  let live = ref 0 and peak = ref 0 in
  Obs.attach o
    {
      Obs.sink_event =
        (fun ~seq:_ ~ts:_ ev ->
          (match ev with
          | E.Spawn _ -> incr live
          | E.Spawn_batch { nodes; _ } -> live := !live + Array.length nodes
          | E.Exit _ -> decr live
          | E.Cancel { pids; _ } -> live := !live - Array.length pids
          | _ -> ());
          if !live > !peak then peak := !live);
      Obs.sink_close = (fun () -> ());
    };
  let name = scenario_name scen in
  let m = Obs.metrics o in
  let series suffix = Obs.Metrics.series m ("load." ^ name ^ suffix) in
  let acc =
    {
      a_completed = 0;
      a_timedout = 0;
      a_cancelled = 0;
      a_crashed = 0;
      a_lat = Sketch.create ();
      a_q = Sketch.create ();
      a_sv = Sketch.create ();
      a_wk = Sketch.create ();
      a_jn = Sketch.create ();
      a_tl = Sketch.create ();
      a_jain_s = 0.;
      a_jain_s2 = 0.;
      a_resid = 0;
      se_lat = series ".latency";
      se_q = series ".queue";
      se_sv = series ".service";
      se_wk = series ".wake";
      se_jn = series ".join";
    }
  in
  let arr = arrivals p ~seed in
  let n = Array.length arr in
  let duration = ref 0 in
  Sched.run ~policy ~obs:o (fun () ->
      let leftovers : unit Sched.future list ref = ref [] in
      let handle, teardown = setup p name leftovers scen in
      (* Every client exists up front — one pcall creates all of them
         in a single suspension — and sleeps on the virtual clock until
         its own scheduled arrival: admission comes from the timer
         wheel in batches, never serialized through a generator fiber,
         so the arrival process cannot be slowed down by the system
         under test (the open-loop property).  A client that starts
         late anyway — run-queue backlog after its timer fired — is
         still measured from its scheduled tick; the lag is
         queue-wait.  The pcall doubles as the join: it returns when
         every request has completed, timed out or crashed. *)
      let client i t () =
        let req =
          {
            idx = i;
            t_arr = t;
            service = service_draw p seed i;
            t1 = t;
            t2 = t;
            t3 = t;
            dead = false;
          }
        in
        let d = t - Sched.now () in
        if d > 0 then Sched.sleep d;
        Sched.Span.with_ name (fun () ->
            let outcome =
              if p.deadline > 0 then
                Resil.with_deadline ~at:(t + p.deadline) (fun () -> handle req)
              else
                match handle req with
                | () -> Ok ()
                | exception e -> Error (Resil.Crashed (Printexc.to_string e))
            in
            finish acc name req outcome (Sched.now ()))
      in
      let thunks = Array.to_list (Array.mapi client arr) in
      if thunks <> [] then ignore (Sched.pcall thunks);
      teardown ();
      List.iter Sched.touch !leftovers;
      duration := Sched.now ());
  let jain =
    let c = float_of_int acc.a_completed in
    if acc.a_completed = 0 || acc.a_jain_s2 <= 0. then 1.
    else acc.a_jain_s *. acc.a_jain_s /. (c *. acc.a_jain_s2)
  in
  {
    st_scenario = name;
    st_requests = n;
    st_completed = acc.a_completed;
    st_timedout = acc.a_timedout;
    st_cancelled = acc.a_cancelled;
    st_crashed = acc.a_crashed;
    st_peak_live = !peak;
    st_duration = !duration;
    st_goodput =
      (if !duration > 0 then
         float_of_int acc.a_completed *. 1000. /. float_of_int !duration
       else 0.);
    st_fairness = jain;
    st_latency = acc.a_lat;
    st_queue = acc.a_q;
    st_service = acc.a_sv;
    st_wake = acc.a_wk;
    st_join = acc.a_jn;
    st_tlat = acc.a_tl;
    st_attr_residual = acc.a_resid;
  }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)
(* ------------------------------------------------------------------ *)

let sketch_json s =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Num (float_of_int (Sketch.count s)));
      ("p50", Obs.Json.Num (Sketch.quantile s 0.5));
      ("p99", Obs.Json.Num (Sketch.quantile s 0.99));
      ("p999", Obs.Json.Num (Sketch.quantile s 0.999));
      ("mean", Obs.Json.Num (Sketch.mean s));
      ("max", Obs.Json.Num (float_of_int (Sketch.max s)));
    ]

let stats_to_json st =
  Obs.Json.Obj
    [
      ("scenario", Obs.Json.Str st.st_scenario);
      ("requests", Obs.Json.Num (float_of_int st.st_requests));
      ("completed", Obs.Json.Num (float_of_int st.st_completed));
      ("timedout", Obs.Json.Num (float_of_int st.st_timedout));
      ("cancelled", Obs.Json.Num (float_of_int st.st_cancelled));
      ("crashed", Obs.Json.Num (float_of_int st.st_crashed));
      ("peak_fibers", Obs.Json.Num (float_of_int st.st_peak_live));
      ("duration", Obs.Json.Num (float_of_int st.st_duration));
      ("goodput_per_ktick", Obs.Json.Num st.st_goodput);
      ("fairness", Obs.Json.Num st.st_fairness);
      ("attr_residual", Obs.Json.Num (float_of_int st.st_attr_residual));
      ("latency", sketch_json st.st_latency);
      ("queue", sketch_json st.st_queue);
      ("service", sketch_json st.st_service);
      ("wake", sketch_json st.st_wake);
      ("join", sketch_json st.st_join);
      ("timedout_latency", sketch_json st.st_tlat);
    ]

let pp_stats ppf st =
  let q s p = Sketch.quantile s p in
  Format.fprintf ppf "@[<v>%-9s %d requests: %d ok, %d timed-out" st.st_scenario
    st.st_requests st.st_completed st.st_timedout;
  if st.st_cancelled > 0 then Format.fprintf ppf ", %d cancelled" st.st_cancelled;
  if st.st_crashed > 0 then Format.fprintf ppf ", %d crashed" st.st_crashed;
  Format.fprintf ppf "@,  peak %d fibers, %d vticks, %.2f req/ktick, fairness %.3f"
    st.st_peak_live st.st_duration st.st_goodput st.st_fairness;
  Format.fprintf ppf "@,  %-8s %10s %10s %10s %10s" "phase" "p50" "p99" "p999"
    "mean";
  List.iter
    (fun (label, s) ->
      Format.fprintf ppf "@,  %-8s %10.0f %10.0f %10.0f %10.1f" label (q s 0.5)
        (q s 0.99) (q s 0.999) (Sketch.mean s))
    [
      ("e2e", st.st_latency);
      ("queue", st.st_queue);
      ("service", st.st_service);
      ("wake", st.st_wake);
      ("join", st.st_join);
    ];
  Format.fprintf ppf "@]"
