(** Deterministic open-loop load generation over the process-tree
    scheduler.

    The repo's workloads were all microbenchmarks; this module points
    the telemetry at server-shaped traffic.  A load run schedules
    request arrivals on the {e virtual clock} from a seeded PRNG —
    Poisson inter-arrivals modulated by on/off bursts — and measures
    every request from its {e scheduled} arrival time, not from
    admission.  That is the open-loop discipline: when the system falls
    behind, the lag lands in the measured queue-wait instead of
    silently slowing the arrival process down, so coordinated omission
    is impossible by construction.

    Each request runs one of four scenarios (the wasmfx Explainer's
    example catalogue as patterns over process continuations): a
    worker {e pool} fed through a shared channel, an {e actor
    mailbox ring}, an async/await fan-out {e pipeline} of futures, and
    a {e generator-backed stream} consumed to exhaustion.  Service
    demand is bounded-Pareto (heavy-tailed, clamped), deadlines are
    absolute virtual times enforced by
    {!Pcont_resil.Resil.with_deadline}, and every request is a causal
    {!Pcont_obs.Obs.Span} named after its scenario, with a
    [<scenario>/service] child span and zero-length
    [<scenario>/timedout] / [/cancelled] / [/crashed] markers — the
    conventions [Analysis.Slo] folds back out of a trace.

    Latency decomposes through four chained virtual timestamps
    [arrival <= t1 <= t2 <= t3 <= t4]:
    queue-wait [t1 - arrival] (admission lag + time to pickup),
    service [t2 - t1] (handler work, fan-out max),
    wake-to-run [t3 - t2] (reply delivered until the client actually
    ran again — per-request scheduler latency), and
    fan-in-join [t4 - t3] (joining and scope teardown).  The stamps
    are clamped monotone, so the four components sum {e exactly} to
    the end-to-end latency [t4 - arrival].

    Everything — arrivals, service times, scheduling — is a pure
    function of [(profile, seed, scenario)]: traces are byte-identical
    per seed and pass every [Analysis.Check] rule. *)

type profile = {
  requests : int;  (** arrivals to schedule *)
  mean_iat : float;  (** mean inter-arrival gap, virtual ticks *)
  burst_on : int;  (** arrivals per burst before an off-phase gap *)
  burst_off : float;  (** mean off-phase gap, virtual ticks (0 = no bursts) *)
  service_lo : int;  (** bounded-Pareto service floor, ticks *)
  service_cap : int;  (** bounded-Pareto clamp, ticks *)
  deadline : int;  (** per-request budget from scheduled arrival; 0 = none *)
  workers : int;  (** pool workers / ring actors *)
  hops : int;  (** ring forwarding hops per request *)
  fanout : int;  (** pipeline branches per request *)
  items : int;  (** stream items per request *)
}

val default : profile
(** The [quick] profile (CI-sized). *)

val quick : profile
(** ~10^4 peak concurrent fibers per scenario. *)

val full : profile
(** ~10^5 peak concurrent fibers per scenario (bench e16 full mode). *)

val arrivals : profile -> seed:int64 -> int array
(** The scheduled arrival ticks [T_0 <= T_1 <= ...], a pure function
    of [(profile, seed)] — independent of scenario choice and handler
    execution order.  Exponential inter-arrival gaps with mean
    [mean_iat]; after every [burst_on] arrivals an extra exponential
    gap with mean [burst_off] opens (the off-phase of the on/off
    modulation). *)

type scenario = Pool | Ring | Pipeline | Stream

val scenarios : scenario list
(** All four, in fixed order. *)

val scenario_name : scenario -> string
(** ["pool"], ["ring"], ["pipeline"], ["stream"] — also the request
    span names. *)

val scenario_of_name : string -> scenario option

type stats = {
  st_scenario : string;
  st_requests : int;
  st_completed : int;
  st_timedout : int;  (** deadline fired (cancel reason named a timeout) *)
  st_cancelled : int;  (** cancelled for any other reason *)
  st_crashed : int;
  st_peak_live : int;  (** peak concurrent process-tree nodes *)
  st_duration : int;  (** virtual clock at run end *)
  st_goodput : float;  (** completed requests per 1000 virtual ticks *)
  st_fairness : float;
      (** Jain's index over completed requests' end-to-end latencies:
          1 = every request saw the same latency *)
  st_latency : Pcont_obs.Obs.Metrics.Sketch.t;  (** completed, end-to-end *)
  st_queue : Pcont_obs.Obs.Metrics.Sketch.t;
  st_service : Pcont_obs.Obs.Metrics.Sketch.t;
  st_wake : Pcont_obs.Obs.Metrics.Sketch.t;
  st_join : Pcont_obs.Obs.Metrics.Sketch.t;
  st_tlat : Pcont_obs.Obs.Metrics.Sketch.t;
      (** timed-out requests: arrival to observed cancellation *)
  st_attr_residual : int;
      (** max |queue + service + wake + join - latency| over completed
          requests — 0 by construction (the stamps are clamped into a
          telescoping chain) *)
}

val run :
  ?obs:Pcont_obs.Obs.t ->
  ?policy:Pcont_sched.Sched.policy ->
  profile ->
  seed:int64 ->
  scenario ->
  stats
(** Run one scenario to completion (every request finished, timed out
    or crashed; handlers drained).  When [?obs] is given, the run's
    events flow to its sinks and the per-scenario series
    [load.<scenario>.{latency,queue,service,wake,join}] land in its
    metrics; otherwise a private handle is created (peak-fiber
    accounting needs one).  Default policy: [Tree_order]. *)

val stats_to_json : stats -> Pcont_obs.Obs.Json.t
(** Deterministic field order; quantiles rendered at p50/p99/p999. *)

val pp_stats : Format.formatter -> stats -> unit
(** One table row set per scenario: counts, fates, and the latency
    decomposition p50/p99/p999. *)
