module Pstack = Pcont_pstack

type mode = Sequential | Concurrent of Pstack.Concur.sched

type t = {
  ienv : Pstack.Types.genv;
  icfg : Pstack.Machine.config;
  imacros : Macro.table;
}

type result = Value of Pstack.Types.value | Defined of string | Error of string

let result_to_string = function
  | Value v -> Pstack.Value.to_string v
  | Defined x -> Printf.sprintf "#<defined %s>" x
  | Error msg -> "error: " ^ msg

let env t = t.ienv

let config t = t.icfg

let macros t = t.imacros

let eval_ir ?(mode = Sequential) ?fuel ?quantum ?obs t ir =
  match mode with
  | Sequential -> (
      (* No scheduler, so no event stream — but the machine's size
         histograms are still worth recording while a handle is given. *)
      t.icfg.Pstack.Machine.metrics <-
        Option.map Pcont_obs.Obs.metrics obs;
      match Pstack.Run.eval_ir ?fuel ~cfg:t.icfg t.ienv ir with
      | Pstack.Run.Value v -> Ok v
      | Pstack.Run.Error msg -> Stdlib.Error msg
      | Pstack.Run.Out_of_fuel -> Stdlib.Error "out of fuel")
  | Concurrent sched -> (
      match
        Pstack.Concur.run ?fuel ?quantum ?obs ~sched ~cfg:t.icfg t.ienv ir
      with
      | Pstack.Concur.Value v -> Ok v
      | Pstack.Concur.Error msg -> Stdlib.Error msg
      | Pstack.Concur.Out_of_fuel -> Stdlib.Error "out of fuel"
      | Pstack.Concur.Deadlock msg -> Stdlib.Error ("deadlock: " ^ msg))

let eval_top ?mode ?fuel ?quantum ?obs t top =
  match top with
  | Expand.Expr ir -> (
      match eval_ir ?mode ?fuel ?quantum ?obs t ir with
      | Ok v -> Value v
      | Stdlib.Error msg -> Error msg)
  | Expand.Defsyntax name -> Defined name
  | Expand.Define (x, ir) -> (
      match eval_ir ?mode ?fuel ?quantum ?obs t ir with
      | Ok v ->
          Pstack.Env.define_global t.ienv x v;
          Defined x
      | Stdlib.Error msg -> Error msg)

let eval_string ?mode ?fuel ?quantum ?obs t src =
  match Expand.parse_program ~macros:t.imacros src with
  | Stdlib.Error msg -> [ Error msg ]
  | Ok tops ->
      let rec go acc = function
        | [] -> List.rev acc
        | top :: rest -> (
            match eval_top ?mode ?fuel ?quantum ?obs t top with
            | Error _ as e -> List.rev (e :: acc)
            | r -> go (r :: acc) rest)
      in
      go [] tops

let eval_value ?mode ?fuel ?quantum ?obs t src =
  match eval_string ?mode ?fuel ?quantum ?obs t src with
  | [] -> failwith "empty program"
  | results -> (
      match List.rev results with
      | Value v :: _ -> v
      | Defined x :: _ -> failwith ("last form is a definition: " ^ x)
      | Error msg :: _ -> failwith msg
      | [] -> assert false)

let create ?(prelude = true) ?strategy ?fastpath () =
  let t =
    {
      ienv = Pstack.Prims.base_env ();
      icfg = Pstack.Machine.config ?strategy ?fastpath ();
      imacros = Macro.create ();
    }
  in
  if prelude then begin
    let results = eval_string t Prelude.source in
    List.iter
      (function
        | Error msg -> failwith ("prelude failed to load: " ^ msg)
        | Value _ | Defined _ -> ())
      results
  end;
  t

let take_output = Pstack.Prims.take_output
