(** A complete Scheme interpreter over the process-stack machine.

    Ties together the reader, the expander, the prelude and the two drivers
    (sequential {!Pcont_pstack.Run} and concurrent {!Pcont_pstack.Concur}).
    Top-level [define] forms evaluate their right-hand side and bind it
    globally; other forms evaluate for value. *)

type mode =
  | Sequential
      (** the stack-of-stacks implementation; [pcall] runs left to right *)
  | Concurrent of Pcont_pstack.Concur.sched
      (** the tree-of-stacks implementation with interleaved branches *)

type t

val create :
  ?prelude:bool -> ?strategy:Pcont_pstack.Types.strategy -> ?fastpath:bool -> unit -> t
(** A fresh interpreter.  [prelude] (default true) loads the Scheme-level
    prelude, including the paper's [spawn/exit] and [first-true].
    [fastpath] (default true) enables the machine's segment pool and
    one-shot continuation move; pass [false] to benchmark against the
    always-copy baseline. *)

val env : t -> Pcont_pstack.Types.genv
(** The interpreter's global table; each top-level form is resolved
    against it as it accumulates [define]s. *)

val config : t -> Pcont_pstack.Machine.config

val macros : t -> Macro.table
(** The interpreter's [extend-syntax] macro table. *)

type result =
  | Value of Pcont_pstack.Types.value
  | Defined of string
  | Error of string

val result_to_string : result -> string

val eval_top :
  ?mode:mode ->
  ?fuel:int ->
  ?quantum:int ->
  ?obs:Pcont_obs.Obs.t ->
  t ->
  Expand.top ->
  result

val eval_string :
  ?mode:mode ->
  ?fuel:int ->
  ?quantum:int ->
  ?obs:Pcont_obs.Obs.t ->
  t ->
  string ->
  result list
(** Read, expand and evaluate every form of a program.  Evaluation stops at
    the first error (which is included as the final result). *)

val eval_value :
  ?mode:mode ->
  ?fuel:int ->
  ?quantum:int ->
  ?obs:Pcont_obs.Obs.t ->
  t ->
  string ->
  Pcont_pstack.Types.value
(** Evaluate a program and return the value of its last form; raises
    [Failure] on read, expansion or evaluation errors, or if the last form
    is a definition. *)

val take_output : unit -> string
(** Drain everything the program printed via [display]/[write]/[newline]. *)
