(** Named instrumentation counters.

    The Section 7 complexity claims (experiments E1/E2) are about the number
    of activation records and control points touched by a control operation,
    independent of wall-clock noise.  The pstack machine increments these
    counters so tests can assert the claims exactly. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** [incr c name] adds 1 to counter [name], creating it at 0 if absent. *)

val cell : t -> string -> int ref
(** [cell c name] is the mutable cell behind counter [name], creating it at
    0 if absent.  Hot paths cache the cell to skip the hash lookup; [reset]
    zeroes cells in place, so cached cells stay valid. *)

val add : t -> string -> int -> unit
(** [add c name n] adds [n] to counter [name]. *)

val get : t -> string -> int
(** [get c name] is the current value of [name] (0 if never touched). *)

val reset : t -> unit
(** [reset c] zeroes every counter. *)

val to_list : t -> (string * int) list
(** [to_list c] lists counters sorted by name. *)

val pp : Format.formatter -> t -> unit
