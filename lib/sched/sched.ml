open Effect
open Effect.Deep
module Univ = Pcont_util.Univ
module Xorshift = Pcont_util.Xorshift
module Obs = Pcont_obs.Obs
module E = Pcont_obs.Obs.Event

exception Dead_controller

exception Expired_pk

exception Not_in_scheduler

exception Deadlock of string

exception Injected_crash
(* delivered at a fiber's suspension point by the [Fcrash] fault *)

type policy =
  | Tree_order
  | Randomized of int64
  | Driven of (int -> int)
      (* systematic exploration: each decision steps exactly one fiber;
         the index is reduced modulo the runnable count *)
  | Driven_pids of (int array -> int)
      (* as Driven, but the decision function sees the runnable fibers'
         node ids in queue order — the hook record/replay needs to pin a
         recorded schedule by pid rather than by position *)

(* Deterministic fault injection: [run ?inject] consults the hook with
   the global slice index before every slice.  Faults are scheduler
   decisions — same schedule + same fault plan = byte-identical trace —
   and each one emits an [E.Crash "inject:..."] marker so the plan can
   be re-extracted from the trace. *)
type fault =
  | Fcrash  (* raise [Injected_crash] at the target fiber's suspension point *)
  | Fwake of string  (* spurious wake: wake everything parked on the resource *)
  | Fdrop of int  (* silently drop one buffered element from the channel *)

(* ------------------------------------------------------------------ *)
(* Untyped scheduler core: every fiber computes a Univ.t.              *)
(* ------------------------------------------------------------------ *)

type step_result = Sdone of Univ.t | Ssuspended

type fiber_step = unit -> step_result

type fiber_k = (Univ.t, step_result) continuation

type request =
  | Rspawn of int * (unit -> Univ.t)  (* root label, process body *)
  | Rcontrol of int * (upk -> Univ.t)  (* root label, controller argument *)
  | Rgraft of upk * Univ.t
  | Rpcall of (unit -> Univ.t) list * (Univ.t array -> Univ.t)
  | Rfuture of (unit -> Univ.t) * Univ.t option ref * waitset
      (* an INDEPENDENT process tree (Section 8's forest): its result is
         stored in the cell; control operations cannot cross into it *)
  | Ryield
  | Rsleep of int
      (* park the fiber until the run's virtual clock reaches now+d; the
         timer wheel wakes due sleepers in deadline order, and quiescence
         jumps the clock to the earliest pending deadline instead of
         declaring deadlock *)
  | Rabort of int * string * (unit -> Univ.t)
      (* cancellation as declined reinstatement: capture the subtree
         delimited by the labeled root — releasing parked entries — and
         discard it (the invoking fiber included), running the
         replacement body in the root's place.  The string is the
         cancel reason recorded in the trace. *)
  | Rblock of waitset
      (* park the fiber on the waitset until a matching Rwake (or the
         delivery of the owning future); parked fibers leave the run
         queue entirely, so rounds cost O(runnable), not O(blocked) *)
  | Rwake of waitset  (* make every fiber parked on the waitset runnable *)

(* A captured subtree.  [PHole] marks the fiber that invoked the
   controller; it receives the process continuation's argument on graft. *)
and upk = { upk_label : int; upk_tree : ptree; mutable upk_taken : bool }

and ptree =
  | PLeaf of fiber_step
  | PHole of fiber_k
  | PDone
  | PWait of pwait

and pwait = {
  pw_kind : wkind;
  pw_children : ptree array;
  pw_results : Univ.t option array;
  pw_resume : fiber_k;
  pw_join : Univ.t array -> Univ.t;
}

(* What a suspended fiber waits for: the return of a spawned process
   (a labeled root), the completion of pcall branches, or the value of a
   controller body evaluated after a capture. *)
and wkind = Wroot of int | Wfork | Wbody

(* ------------------------------------------------------------------ *)
(* The live process tree.                                              *)
(* ------------------------------------------------------------------ *)

and node = { nid : int; mutable parent : parent; mutable body : body }

and parent = Ptop | Pfuture of Univ.t option ref * waitset | Pchild of node * int

and body =
  | Nleaf of fiber_step
  | Nwait of nwait
  | Nparked of wentry  (* blocked on a waitset; not runnable, not stepped *)
  | Ndone

and nwait = {
  wk : wkind;
  children : node array;
  results : Univ.t option array;
  mutable pending : int;
  resume : fiber_k;
  join : Univ.t array -> Univ.t;
}

(* A waitset owns the fibers parked on one blocking resource (a future
   cell, a channel's senders, a channel's receivers).  Entries are
   invalidated — never removed eagerly — when a capture prunes the
   parked node into a process continuation; the wake sweep skips dead
   entries. *)
and waitset = { ws_name : string; mutable ws_parked : wentry list }

and wentry = {
  we_ws : waitset;
  we_node : node;
  we_k : fiber_k;
  mutable we_live : bool;
  we_round : int;  (* scheduling round at park, for the latency histogram *)
}

type _ Effect.t += Sched : request -> Univ.t Effect.t

let inj_unit, _ = Univ.embed ()

let u_unit = inj_unit ()

let label_counter = ref 0

(* ------------------------------------------------------------------ *)
(* Observability context.                                              *)
(*                                                                     *)
(* The scheduler is cooperative and single-threaded, so the handle of  *)
(* the innermost running [run] can live in globals that [run] saves    *)
(* and restores.  User-level code running inside a fiber (channels,    *)
(* user blocking abstractions) reads them to tag its events with the   *)
(* stepping fiber's id.                                                *)
(* ------------------------------------------------------------------ *)

let cur_obs : Obs.t option ref = ref None

let cur_pid = ref 0

(* The stepping fiber's innermost open span (-1 = none): user-level
   code (channels) reads it to propagate request context across sends;
   the scheduler saves/loads it around every slice so each fiber keeps
   its own context. *)
let cur_span = ref (-1)

(* The innermost run's virtual clock: slices since the run started, plus
   any quiescence jumps to pending timer deadlines.  Advances whether or
   not an obs handle is installed, so timer behavior never depends on
   tracing. *)
let cur_clock = ref 0

(* Channel (and other user-resource) ids: allocated per run so traces
   of identical runs are identical. *)
let chan_ids = ref 0

(* Channel-drop fault hooks: channels register how to discard one
   buffered element (returning the waitset to wake, since dropping frees
   capacity).  Per run, like [chan_ids]. *)
let droppers : (int * (unit -> waitset option)) list ref = ref []

let obs () = !cur_obs

let self_pid () = !cur_pid

let now () = !cur_clock

let fresh_chan_id () =
  incr chan_ids;
  !chan_ids

let register_dropper id f = droppers := (id, f) :: !droppers

(* Control points (labels and forks) and node count of a captured
   subtree — the quantities the paper's complexity claim is stated in. *)
let rec ptree_control_points = function
  | PLeaf _ | PHole _ | PDone -> 0
  | PWait w ->
      (match w.pw_kind with Wroot _ -> 2 | Wfork | Wbody -> 1)
      + Array.fold_left (fun n t -> n + ptree_control_points t) 0 w.pw_children

let rec ptree_size = function
  | PLeaf _ | PHole _ | PDone -> 1
  | PWait w -> 1 + Array.fold_left (fun n t -> n + ptree_size t) 0 w.pw_children

let run ?(policy = Tree_order) ?obs:obs_arg ?inject (type a) (main : unit -> a) : a
    =
  let obs = obs_arg in
  (* Install the observability context; restored on every exit path so
     nested runs and exceptions leave the outer context intact.  Labels
     and channel ids restart per run, which keeps traces of identical
     runs byte-identical. *)
  let saved_obs = !cur_obs and saved_pid = !cur_pid in
  let saved_chans = !chan_ids and saved_labels = !label_counter in
  let saved_clock = !cur_clock and saved_droppers = !droppers in
  let saved_span = !cur_span in
  cur_obs := obs;
  chan_ids := 0;
  label_counter := 0;
  cur_clock := 0;
  cur_span := -1;
  droppers := [];
  let restore () =
    cur_obs := saved_obs;
    cur_pid := saved_pid;
    chan_ids := saved_chans;
    label_counter := saved_labels;
    cur_clock := saved_clock;
    cur_span := saved_span;
    droppers := saved_droppers
  in
  let inj_a, prj_a = Univ.embed () in
  let pending_request : (request * fiber_k) option ref = ref None in
  (* An injected crash for the fiber about to step: consumed by the
     step wrappers below, so the exception materializes at the fiber's
     suspension point (catchable by its own try/with); a fiber that has
     never run yet crashes before its body — spawn-failure semantics. *)
  let pending_crash : exn option ref = ref None in
  let make_step (body : unit -> Univ.t) : fiber_step =
   fun () ->
    match_with
      (fun () ->
        (match !pending_crash with
        | Some e ->
            pending_crash := None;
            raise e
        | None -> ());
        body ())
      ()
      {
        retc = (fun v -> Sdone v);
        exnc = raise;
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Sched req ->
                Some
                  (fun (k : (b, step_result) continuation) ->
                    pending_request := Some (req, k);
                    Ssuspended)
            | _ -> None);
      }
  in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  let root =
    { nid = 0; parent = Ptop; body = Nleaf (make_step (fun () -> inj_a (main ()))) }
  in
  (match obs with
  | None -> ()
  | Some o -> Obs.emit o (E.Spawn { pid = 0; parent = -1; kind = "root" }));
  (* The run queue: runnable leaves of the whole forest (the main tree
     plus one independent tree per future), in tree order.  Maintained
     incrementally: nodes are enqueued when they become leaves and
     lazily validated against [attached] at the start of each round, so
     a round is O(runnable fibers) rather than a walk of the forest. *)
  let queue = ref [ root ] in
  (* Newly runnable leaves produced by the step in progress, in tree
     order; spliced into the queue at the stepped node's position. *)
  let born = ref [] in
  (* Future trees planted this round; appended after all existing trees. *)
  let new_trees = ref [] in
  let final = ref None in
  let failure = ref None in
  (* Every entry ever parked this run (live or invalidated), for the
     deadlock diagnosis; [n_parked] counts the live ones. *)
  let all_parked = ref [] in
  let n_parked = ref 0 in
  let rounds = ref 0 in
  (* Global slice index, the unit fault placements are expressed in. *)
  let nslices = ref 0 in
  (* The timer wheel: sleeping fibers ordered by (deadline, park order).
     Entries are ordinary waitset entries (on a dedicated "timer" set
     that is never woken collectively), so capture invalidation works on
     sleepers unchanged: a pruned sleeper is re-captured as a runnable
     leaf and its remaining delay is forgotten on graft.

     Stored as a binary min-heap keyed (deadline, insertion seq) — the
     seq tiebreak reproduces the sorted-list FIFO order among equal
     deadlines, so wake order and hence traces are unchanged, while
     insert/pop drop from O(n) to O(log n).  The load scenarios park
     ~10^5 concurrent sleepers; a sorted-list insert is quadratic
     there. *)
  let timer_ws = { ws_name = "timer"; ws_parked = [] } in
  let theap : (int * int * wentry) option array ref = ref (Array.make 64 None) in
  let theap_n = ref 0 in
  let theap_seq = ref 0 in
  (* Per-node span context and wake stamps (for causal spans and the
     wake-to-run latency metric).  Entries appear only for fibers with
     an open span / a pending wake, so the no-handle, no-span path does
     not touch these tables. *)
  let node_span : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let wake_ts : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let inherit_span nid =
    if !cur_span >= 0 then Hashtbl.replace node_span nid !cur_span
  in
  let th_less a i j =
    match (a.(i), a.(j)) with
    | Some (di, si, _), Some (dj, sj, _) -> di < dj || (di = dj && si < sj)
    | _ -> assert false
  in
  let th_swap a i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let insert_timer deadline e =
    let n = !theap_n in
    if n = Array.length !theap then begin
      let b = Array.make (2 * n) None in
      Array.blit !theap 0 b 0 n;
      theap := b
    end;
    let a = !theap in
    a.(n) <- Some (deadline, !theap_seq, e);
    incr theap_seq;
    theap_n := n + 1;
    let i = ref n in
    while !i > 0 && th_less a !i ((!i - 1) / 2) do
      th_swap a !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let th_peek () =
    match !theap.(0) with Some (d, _, e) -> (d, e) | None -> assert false
  in
  let th_pop () =
    let a = !theap in
    let r = match a.(0) with Some (_, _, e) -> e | None -> assert false in
    let n = !theap_n - 1 in
    theap_n := n;
    a.(0) <- a.(n);
    a.(n) <- None;
    let i = ref 0 in
    let break = ref false in
    while not !break do
      let l = (2 * !i) + 1 and r_ = (2 * !i) + 2 in
      let m = ref !i in
      if l < n && th_less a l !m then m := l;
      if r_ < n && th_less a r_ !m then m := r_;
      if !m <> !i then begin
        th_swap a !i !m;
        i := !m
      end
      else break := true
    done;
    r
  in
  let rng =
    match policy with
    | Tree_order | Driven _ | Driven_pids _ -> None
    | Randomized seed -> Some (Xorshift.create seed)
  in

  let rec attached_walk n =
    match n.parent with
    | Ptop -> n == root
    | Pfuture _ -> ( match n.body with Ndone -> false | _ -> true)
    | Pchild (p, i) -> (
        match p.body with
        | Nwait w ->
            i < Array.length w.children && w.children.(i) == n && attached_walk p
        | _ -> false)
  in
  (* Only captures ever detach a node from the live forest (grafts reuse
     captured, already-detached trees), so until one has happened every
     non-[Ndone] node is attached and the parent-chain walk can be
     skipped.  (A finished root reports detached here where the walk
     would not, but callers always guard with [is_leaf], which is false
     for [Ndone].) *)
  let prunes = ref 0 in
  let attached n =
    if !prunes = 0 then match n.body with Ndone -> false | _ -> true
    else attached_walk n
  in

  let rec collect_leaves acc n =
    match n.body with
    | Nleaf _ -> n :: acc
    | Nparked _ | Ndone -> acc
    | Nwait w -> Array.fold_left collect_leaves acc w.children
  in

  let resume_step k v : fiber_step =
   fun () ->
    match !pending_crash with
    | None -> continue k v
    | Some e ->
        pending_crash := None;
        discontinue k e
  in
  let raise_step k exn : fiber_step = fun () -> discontinue k exn in

  (* Re-enqueue every live fiber parked on [ws], in park (FIFO) order:
     oldest waiter first both in the queue and in the emitted wake
     events, so the trace shows the order the fibers will actually run
     in.  [ws_parked] is newest-first, so walk it reversed and prepend
     the woken nodes to an accumulator, which reverses them back to
     park order before they are spliced into [born]. *)
  let wake_ws ws =
    match ws.ws_parked with
    | [] -> ()
    | entries ->
        ws.ws_parked <- [];
        let woken = ref [] in
        List.iter
          (fun e ->
            if e.we_live then begin
              e.we_live <- false;
              decr n_parked;
              e.we_node.body <- Nleaf (resume_step e.we_k u_unit);
              woken := e.we_node :: !woken;
              match obs with
              | None -> ()
              | Some o ->
                  Obs.observe o "sched.park.rounds" (!rounds - e.we_round);
                  Hashtbl.replace wake_ts e.we_node.nid !cur_clock;
                  Obs.emit o
                    (E.Wake { pid = e.we_node.nid; resource = e.we_ws.ws_name })
            end)
          (List.rev entries);
        born := List.rev_append !woken !born
  in

  let deliver n v =
    n.body <- Ndone;
    (match obs with
    | None -> ()
    | Some o -> Obs.emit o (E.Exit { pid = n.nid }));
    match n.parent with
    | Ptop -> final := Some v
    | Pfuture (cell, ws) ->
        cell := Some v;
        wake_ws ws
    | Pchild (p, slot) -> (
        match p.body with
        | Nwait w ->
            w.results.(slot) <- Some v;
            w.pending <- w.pending - 1;
            if w.pending = 0 then begin
              let vs = Array.map Option.get w.results in
              p.body <- Nleaf (resume_step w.resume (w.join vs));
              born := [ p ]
            end
        | _ -> assert false)
  in

  (* Suspend [n]'s fiber as a wait node over freshly spawned children. *)
  let make_wait n k wk bodies join =
    let count = List.length bodies in
    let w =
      {
        wk;
        children = Array.make count n;
        results = Array.make count None;
        pending = count;
        resume = k;
        join;
      }
    in
    n.body <- Nwait w;
    let kind =
      match wk with Wroot _ -> "process" | Wfork -> "branch" | Wbody -> "controller"
    in
    List.iteri
      (fun i body ->
        let child =
          { nid = fresh_id (); parent = Pchild (n, i); body = Nleaf (make_step body) }
        in
        inherit_span child.nid;
        w.children.(i) <- child;
        match obs with
        | None -> ()
        | Some o ->
            Obs.emit o (E.Spawn { pid = child.nid; parent = n.nid; kind }))
      bodies;
    if count = 0 then n.body <- Nleaf (resume_step k (join [||]))
    else born := Array.to_list w.children
  in

  (* Prune the subtree delimited by the nearest root labeled [label] above
     the invoking fiber and hand it, as a process continuation, to the
     controller's body, which runs in the root's former position. *)
  let do_capture n k label body_fn =
    let rec ptree_of m =
      if m == n then PHole k
      else
        match m.body with
        | Nleaf s -> PLeaf s
        | Nparked e ->
            (* Pruning a parked waiter: invalidate its waitset entry (the
               resource may be woken while the subtree is captured) and
               capture it as a runnable leaf, so that on graft it resumes
               and re-checks its blocking condition — parking is always a
               re-check loop, so a spurious wake-up is harmless. *)
            e.we_live <- false;
            decr n_parked;
            PLeaf (resume_step e.we_k u_unit)
        | Ndone -> PDone
        | Nwait w ->
            PWait
              {
                pw_kind = w.wk;
                pw_children = Array.map ptree_of w.children;
                pw_results = Array.copy w.results;
                pw_resume = w.resume;
                pw_join = w.join;
              }
    in
    let rec climb cur =
      match cur.parent with
      | Ptop | Pfuture _ -> None
      | Pchild (p, _) -> (
          match p.body with
          | Nwait w when w.wk = Wroot label -> Some (p, w)
          | _ -> climb p)
    in
    match climb n with
    | None ->
        (* Raise inside the invoking fiber so user code can observe
           Dead_controller, mirroring the direct-style embedding. *)
        (match obs with
        | None -> ()
        | Some o -> Obs.emit o (E.Invalid_controller { pid = n.nid; label }));
        n.body <- Nleaf (raise_step k Dead_controller)
    | Some (p, w) ->
        incr prunes;
        let tree = ptree_of w.children.(0) in
        (match obs with
        | None -> ()
        | Some o ->
            let cp = ptree_control_points tree in
            let size = ptree_size tree in
            Obs.observe o "sched.capture.control-points" cp;
            Obs.observe o "sched.capture.size" size;
            Obs.emit o
              (E.Capture
                 { pid = n.nid; label; root_pid = p.nid; control_points = cp; size }));
        let upk = { upk_label = label; upk_tree = tree; upk_taken = false } in
        let body = make_step (fun () -> body_fn upk) in
        let w' =
          {
            wk = Wbody;
            children = [||];
            results = [| None |];
            pending = 1;
            resume = w.resume;
            join = (fun vs -> vs.(0));
          }
        in
        let child =
          { nid = fresh_id (); parent = Pchild (p, 0); body = Nleaf body }
        in
        inherit_span child.nid;
        p.body <- Nwait { w' with children = [| child |] };
        (match obs with
        | None -> ()
        | Some o ->
            Obs.emit o
              (E.Spawn { pid = child.nid; parent = p.nid; kind = "controller" }));
        born := [ child ]
  in

  (* Cancellation as declined reinstatement: capture the subtree under
     the nearest root labeled [label] exactly as [do_capture] would —
     invalidating parked entries — but discard it instead of handing it
     to a controller body.  The invoking fiber is part of the discarded
     subtree (its continuation is dropped; [abort] never returns); the
     replacement body runs in the root's former position and its value
     becomes the root's. *)
  let do_abort n k label reason replacement =
    let rec climb cur =
      match cur.parent with
      | Ptop | Pfuture _ -> None
      | Pchild (p, _) -> (
          match p.body with
          | Nwait w when w.wk = Wroot label -> Some (p, w)
          | _ -> climb p)
    in
    match climb n with
    | None ->
        (match obs with
        | None -> ()
        | Some o -> Obs.emit o (E.Invalid_controller { pid = n.nid; label }));
        n.body <- Nleaf (raise_step k Dead_controller)
    | Some (p, w) ->
        ignore k;
        incr prunes;
        (* Pre-order sweep of the discarded subtree: collect live pids
           (the Cancel event's payload — exactly what an invariant
           checker must mark dead) and release parked entries.  The
           invoking fiber's body is its already-consumed leaf step, so
           the Nleaf case covers it. *)
        let cancelled = ref [] in
        let rec sweep m =
          match m.body with
          | Ndone -> ()
          | Nleaf _ -> cancelled := m.nid :: !cancelled
          | Nparked e ->
              e.we_live <- false;
              decr n_parked;
              cancelled := m.nid :: !cancelled
          | Nwait wc ->
              cancelled := m.nid :: !cancelled;
              Array.iter sweep wc.children
        in
        sweep w.children.(0);
        let pids = Array.of_list (List.rev !cancelled) in
        (match obs with
        | None -> ()
        | Some o ->
            Obs.observe o "sched.cancel.pids" (Array.length pids);
            Obs.emit o (E.Cancel { pid = n.nid; scope = p.nid; reason; pids }));
        let body = make_step replacement in
        let w' =
          {
            wk = Wbody;
            children = [||];
            results = [| None |];
            pending = 1;
            resume = w.resume;
            join = (fun vs -> vs.(0));
          }
        in
        let child =
          { nid = fresh_id (); parent = Pchild (p, 0); body = Nleaf body }
        in
        inherit_span child.nid;
        p.body <- Nwait { w' with children = [| child |] };
        (match obs with
        | None -> ()
        | Some o ->
            Obs.emit o (E.Spawn { pid = child.nid; parent = p.nid; kind = "cancel" }));
        born := [ child ]
  in

  (* Graft a captured subtree onto the invoking fiber: the fiber waits (as
     a reinstated root) for the subtree's result; the capture point inside
     receives [v]; every captured branch becomes runnable. *)
  let do_graft n k upk v =
    if upk.upk_taken then n.body <- Nleaf (raise_step k Expired_pk)
    else begin
      upk.upk_taken <- true;
      (match obs with
      | None -> ()
      | Some o ->
          Obs.emit o
            (E.Reinstate
               { pid = n.nid; label = upk.upk_label; size = ptree_size upk.upk_tree }));
      let rec rebuild parent pt =
        let m = { nid = fresh_id (); parent; body = Ndone } in
        (* rebuilt fibers adopt the reinstating fiber's span: the graft
           is what made them runnable again, so their work is causally
           part of the reinstating request *)
        inherit_span m.nid;
        (match pt with
        | PHole hole_k -> m.body <- Nleaf (resume_step hole_k v)
        | PLeaf s -> m.body <- Nleaf s
        | PDone -> m.body <- Ndone
        | PWait pw ->
            let count = Array.length pw.pw_children in
            let w =
              {
                wk = pw.pw_kind;
                children = Array.make count m;
                results = Array.copy pw.pw_results;
                pending =
                  Array.fold_left (fun c r -> if r = None then c + 1 else c) 0 pw.pw_results;
                resume = pw.pw_resume;
                join = pw.pw_join;
              }
            in
            m.body <- Nwait w;
            Array.iteri
              (fun i child -> w.children.(i) <- rebuild (Pchild (m, i)) child)
              pw.pw_children);
        m
      in
      let w =
        {
          wk = Wroot upk.upk_label;
          children = [||];
          results = [| None |];
          pending = 1;
          resume = k;
          join = (fun vs -> vs.(0));
        }
      in
      let child_holder = { w with children = [| root (* placeholder *) |] } in
      n.body <- Nwait child_holder;
      child_holder.children.(0) <- rebuild (Pchild (n, 0)) upk.upk_tree;
      born := List.rev (collect_leaves [] n);
      match obs with
      | None -> ()
      | Some o ->
          (* Announce every rebuilt node (waits included) in one batch
             event, parents before children, so trace consumers never see
             a pid whose spawn was skipped — one event instead of one per
             rebuilt node. *)
          let acc = ref [] in
          let rec collect parent m =
            acc := (m.nid, parent) :: !acc;
            match m.body with
            | Nwait w -> Array.iter (collect m.nid) w.children
            | Nleaf _ | Nparked _ | Ndone -> ()
          in
          collect n.nid child_holder.children.(0);
          let nodes = Array.of_list (List.rev !acc) in
          Obs.emit o (E.Spawn_batch { pid = n.nid; kind = "graft"; nodes })
    end
  in

  (* Apply one injected fault just before the slice it targets.  The
     marker event precedes the slice's begin event, so a schedule
     re-extracted from the trace re-injects at the same slice index. *)
  let apply_fault n fault =
    match fault with
    | Fcrash ->
        (match obs with
        | None -> ()
        | Some o -> Obs.emit o (E.Crash { pid = n.nid; fault = "inject:crash" }));
        pending_crash := Some Injected_crash
    | Fwake res ->
        (match obs with
        | None -> ()
        | Some o -> Obs.emit o (E.Crash { pid = -1; fault = "inject:wake:" ^ res }));
        (* spurious wake: every live fiber parked on the named resource
           becomes runnable, in park order.  Parking is a re-check loop,
           so correct waiters re-park; anything that stays woken revealed
           a missing re-check. *)
        let woken = ref [] in
        List.iter
          (fun e ->
            if e.we_live && e.we_ws.ws_name = res then begin
              e.we_live <- false;
              decr n_parked;
              e.we_node.body <- Nleaf (resume_step e.we_k u_unit);
              woken := e.we_node :: !woken;
              match obs with
              | None -> ()
              | Some o ->
                  Hashtbl.replace wake_ts e.we_node.nid !cur_clock;
                  Obs.emit o (E.Wake { pid = e.we_node.nid; resource = res })
            end)
          (List.rev !all_parked);
        born := List.rev_append !woken !born
    | Fdrop chan -> (
        (match obs with
        | None -> ()
        | Some o ->
            Obs.emit o
              (E.Crash { pid = -1; fault = "inject:drop:" ^ string_of_int chan }));
        match List.assoc_opt chan !droppers with
        | None -> ()
        | Some drop -> (
            match drop () with
            | None -> ()
            | Some ws -> wake_ws ws))
  in
  let step_leaf n step =
    pending_request := None;
    cur_pid := n.nid;
    cur_span :=
      (match Hashtbl.find_opt node_span n.nid with Some s -> s | None -> -1);
    (match inject with
    | None -> ()
    | Some f -> (
        match f !nslices with None -> () | Some fault -> apply_fault n fault));
    incr nslices;
    (match obs with
    | None -> ()
    | Some o ->
        Obs.emit o (E.Slice_begin { pid = n.nid });
        (* latency from the wake that made this fiber runnable to the
           slice that actually runs it — the runqueue delay *)
        match Hashtbl.find_opt wake_ts n.nid with
        | Some w ->
            Hashtbl.remove wake_ts n.nid;
            Obs.observe o "sched.wake.run" (!cur_clock - w)
        | None -> ());
    let finish_slice () =
      (* The native scheduler does not meter fiber work: a slice runs
         the fiber to its next request and is charged one unit of
         virtual time (advanced with or without a trace handle, so the
         timer wheel never depends on tracing). *)
      incr cur_clock;
      (* an unconsumed crash (the target delivered or raised before its
         suspension point was resumed) must not leak to the next slice *)
      pending_crash := None;
      match obs with
      | None -> ()
      | Some o ->
          Obs.advance o 1;
          Obs.observe o "sched.slice.fuel" 1;
          Obs.emit o (E.Slice_end { pid = n.nid; fuel = 1 })
    in
    (match step () with
    | Sdone v -> deliver n v
    | Ssuspended -> (
        match !pending_request with
        | None -> assert false
        | Some (req, k) -> (
            match req with
            | Ryield -> n.body <- Nleaf (resume_step k u_unit)
            | Rsleep d ->
                (* Park on the timer wheel.  The entry joins [all_parked]
                   and the deadline list but NOT [timer_ws.ws_parked]:
                   timers are never woken collectively, only by expiry
                   (or discarded by capture/cancel, which flips
                   [we_live] like any other park). *)
                let e =
                  { we_ws = timer_ws; we_node = n; we_k = k; we_live = true;
                    we_round = !rounds }
                in
                all_parked := e :: !all_parked;
                incr n_parked;
                n.body <- Nparked e;
                insert_timer (!cur_clock + max d 0) e;
                (match obs with
                | None -> ()
                | Some o -> Obs.emit o (E.Park { pid = n.nid; resource = "timer" }))
            | Rabort (label, reason, replacement) ->
                do_abort n k label reason replacement
            | Rspawn (label, body) ->
                make_wait n k (Wroot label) [ body ] (fun vs -> vs.(0))
            | Rpcall (thunks, join) -> make_wait n k Wfork thunks join
            | Rblock ws ->
                let e =
                  { we_ws = ws; we_node = n; we_k = k; we_live = true;
                    we_round = !rounds }
                in
                ws.ws_parked <- e :: ws.ws_parked;
                all_parked := e :: !all_parked;
                incr n_parked;
                n.body <- Nparked e;
                (match obs with
                | None -> ()
                | Some o ->
                    Obs.emit o (E.Park { pid = n.nid; resource = ws.ws_name }))
            | Rwake ws ->
                wake_ws ws;
                n.body <- Nleaf (resume_step k u_unit)
            | Rfuture (body, cell, ws) ->
                let fnode =
                  {
                    nid = fresh_id ();
                    parent = Pfuture (cell, ws);
                    body = Nleaf (make_step body);
                  }
                in
                (* Prepended here, reversed at round end: future trees
                   keep their creation order at the back of the forest
                   without an O(n) append per registration. *)
                new_trees := fnode :: !new_trees;
                inherit_span fnode.nid;
                n.body <- Nleaf (resume_step k u_unit);
                (match obs with
                | None -> ()
                | Some o ->
                    Obs.emit o
                      (E.Spawn { pid = fnode.nid; parent = n.nid; kind = "future" }))
            | Rcontrol (label, body_fn) -> do_capture n k label body_fn
            | Rgraft (upk, v) -> do_graft n k upk v))
    | exception e -> failure := Some e);
    (* store back whatever span context the slice left open *)
    if !cur_span >= 0 then Hashtbl.replace node_span n.nid !cur_span
    else Hashtbl.remove node_span n.nid;
    finish_slice ()
  in

  let is_leaf n = match n.body with Nleaf _ -> true | _ -> false in

  (* The nodes that take the stepped node's place in the queue: itself if
     it is still a runnable leaf, then whatever the step made runnable
     (pcall children, a resumed parent, a grafted subtree's leaves).
     A subtree's leaves are contiguous in tree order, so splicing them at
     the stepped node's position keeps the queue in exactly the order a
     full forest walk would produce next round. *)
  let successors n =
    match !born with
    | [] ->
        (* No spawn, capture, graft or delivery happened, so the node's
           attachment is unchanged from the pre-step check; skip the
           parent-chain walk. *)
        if is_leaf n then [ n ] else []
    | b -> if is_leaf n && attached n then n :: b else b
  in

  (* One scheduling round over the compacted queue of live leaves; stale
     entries (pruned into a process continuation, or no longer leaves)
     are dropped by the filter, so the round is O(runnable). *)
  let round () =
    incr rounds;
    (match obs with
    | None -> ()
    | Some o -> Obs.observe o "sched.runq.depth" (List.length !queue));
    new_trees := [];
    (match policy with
    | (Driven _ | Driven_pids _) as driven ->
        (* The pick contract needs the exact live count, so compact the
           queue up front. *)
        let live = List.filter (fun n -> is_leaf n && attached n) !queue in
        let arr = Array.of_list live in
        let count = Array.length arr in
        if count = 0 then queue := []
        else begin
          let raw =
            match driven with
            | Driven pick -> pick count
            | Driven_pids pick -> pick (Array.map (fun n -> n.nid) arr)
            | Tree_order | Randomized _ -> assert false
          in
          (* Out-of-range picks are reduced modulo the runnable count
             (mirrors concur.ml) so a decision function written against
             one schedule stays total when the run diverges. *)
          let idx = ((raw mod count) + count) mod count in
          let n = arr.(idx) in
          born := [];
          (if !final = None && !failure = None && attached n then
             match n.body with
             | Nleaf s -> step_leaf n s
             | Nwait _ | Nparked _ | Ndone -> ());
          let before = Array.to_list (Array.sub arr 0 idx) in
          let after = Array.to_list (Array.sub arr (idx + 1) (count - idx - 1)) in
          queue := before @ successors n @ after
        end
    | Tree_order ->
        (* Single fused pass: compact lazily while stepping, replacing
           each stepped position by its successors in place.  One queue
           traversal and no intermediate arrays per round. *)
        let rec go acc = function
          | [] -> queue := List.rev acc
          | n :: rest -> (
              match n.body with
              | Nleaf s when attached n ->
                  if !final = None && !failure = None then begin
                    born := [];
                    step_leaf n s;
                    (* [successors] inlined to avoid building the singleton
                       list on the common nothing-born path. *)
                    match !born with
                    | [] -> if is_leaf n then go (n :: acc) rest else go acc rest
                    | b ->
                        let acc =
                          if is_leaf n && attached n then List.rev_append b (n :: acc)
                          else List.rev_append b acc
                        in
                        go acc rest
                  end
                  else go (n :: acc) rest
              | _ -> go acc rest)
        in
        go [] !queue
    | Randomized _ ->
        (* The shuffle must range over exactly the live leaves (the same
           permutation a fresh forest walk would be dealt), so compact
           first.  Only the processing order is shuffled; each node's
           successors still land in its tree-order bucket. *)
        let live = List.filter (fun n -> is_leaf n && attached n) !queue in
        let arr = Array.of_list live in
        let count = Array.length arr in
        let buckets = Array.make (max count 1) [] in
        let order = Array.init count (fun i -> i) in
        (match rng with None -> () | Some g -> Xorshift.shuffle g order);
        Array.iter
          (fun i ->
            let n = arr.(i) in
            born := [];
            match n.body with
            | Nleaf s when attached n ->
                if !final = None && !failure = None then begin
                  step_leaf n s;
                  buckets.(i) <- successors n
                end
                else buckets.(i) <- [ n ]
            | _ ->
                (* Detached or resolved since the compaction at the top of
                   the round (a sibling's step pruned or completed it):
                   drop it, exactly as the Tree_order pass does. *)
                buckets.(i) <- [])
          order;
        queue := List.concat (Array.to_list buckets));
    if !new_trees <> [] then queue := !queue @ List.rev !new_trees
  in

  (* Quiescence = deadlock: the queue only ever loses a node without a
     delivery when the node parks, so an empty queue with no final value
     and no failure means every remaining fiber is parked on a resource
     nobody left can signal. *)
  let deadlock_msg () =
    let live = List.filter (fun e -> e.we_live) (List.rev !all_parked) in
    match live with
    | [] -> "deadlock: no runnable fibers"
    | _ ->
        (* Root-to-fiber path through the process tree, so the diagnostic
           names not just the resource but where in the computation each
           blocked fiber hangs. *)
        let path n =
          let rec climb acc m =
            match m.parent with
            | Ptop -> m.nid :: acc
            | Pfuture _ -> m.nid :: acc
            | Pchild (p, _) -> climb (m.nid :: acc) p
          in
          climb [] n
          |> List.map string_of_int
          |> String.concat ">"
        in
        let tally = Hashtbl.create 7 in
        List.iter
          (fun e ->
            let name = e.we_ws.ws_name in
            let ps = try Hashtbl.find tally name with Not_found -> [] in
            Hashtbl.replace tally name (path e.we_node :: ps))
          live;
        let parts =
          Hashtbl.fold (fun name ps acc -> (name, List.rev ps) :: acc) tally []
          |> List.sort compare
          |> List.map (fun (name, ps) ->
                 Printf.sprintf "%d on %s (paths %s)" (List.length ps) name
                   (String.concat ", " ps))
        in
        Printf.sprintf "deadlock: %d fiber(s) parked: %s" (List.length live)
          (String.concat ", " parts)
  in

  (* Wake every live timer whose deadline has been reached.  Expiry
     happens between rounds (never inside [step_leaf]), so appending to
     the queue is safe: the driven branch's queue snapshot has already
     been written back. *)
  let expire_due () =
    let woken = ref [] in
    while !theap_n > 0 && fst (th_peek ()) <= !cur_clock do
      let e = th_pop () in
      if e.we_live then begin
        e.we_live <- false;
        decr n_parked;
        e.we_node.body <- Nleaf (resume_step e.we_k u_unit);
        woken := e.we_node :: !woken;
        match obs with
        | None -> ()
        | Some o ->
            Obs.observe o "sched.park.rounds" (!rounds - e.we_round);
            Hashtbl.replace wake_ts e.we_node.nid !cur_clock;
            Obs.emit o (E.Wake { pid = e.we_node.nid; resource = "timer" })
      end
    done;
    if !woken <> [] then queue := !queue @ List.rev !woken
  in
  let rec drive () =
    match (!final, !failure) with
    | Some v, _ -> (
        match prj_a v with Some a -> a | None -> assert false)
    | None, Some e -> raise e
    | None, None ->
        expire_due ();
        if !queue = [] then begin
          (* Discard dead (captured/cancelled) sleepers at the top of
             the heap so the peek below sees the earliest *live*
             deadline; dead entries deeper down are dropped lazily when
             they surface. *)
          while
            !theap_n > 0 && not (let _, e = th_peek () in e.we_live)
          do
            ignore (th_pop ())
          done;
          if !theap_n > 0 then begin
            (* Quiescent but a timer is pending: jump the virtual clock
               to the earliest deadline instead of declaring deadlock.
               This is what makes timeouts usable as a liveness
               backstop — a fully blocked system still makes progress
               in virtual time. *)
            let d, _ = th_peek () in
            let delta = d - !cur_clock in
            cur_clock := d;
            (match obs with
            | None -> ()
            | Some o -> if delta > 0 then Obs.advance o delta);
            drive ()
          end
          else begin
            (match obs with
            | None -> ()
            | Some o -> Obs.emit o (E.Deadlock { parked = !n_parked }));
            raise (Deadlock (deadlock_msg ()))
          end
        end
        else begin
          round ();
          drive ()
        end
  in
  Fun.protect ~finally:restore drive

(* ------------------------------------------------------------------ *)
(* Typed front end.                                                    *)
(* ------------------------------------------------------------------ *)

type 'r controller = {
  c_label : int;
  c_inj : 'r -> Univ.t;
  c_prj : Univ.t -> 'r option;
}

type ('a, 'r) pk = {
  p_upk : upk;
  p_inj_a : 'a -> Univ.t;
  p_prj_r : Univ.t -> 'r option;
}

let perform_sched req =
  try perform (Sched req)
  with Effect.Unhandled (Sched _) -> raise Not_in_scheduler

let get_exn prj u = match prj u with Some v -> v | None -> assert false

let spawn (type r) (f : r controller -> r) : r =
  let c_inj, c_prj = Univ.embed () in
  incr label_counter;
  let c = { c_label = !label_counter; c_inj; c_prj } in
  get_exn c_prj (perform_sched (Rspawn (c.c_label, fun () -> c_inj (f c))))

let control (type a) c (body : (a, _) pk -> _) : a =
  let p_inj_a, prj_a = Univ.embed () in
  let body_u upk = c.c_inj (body { p_upk = upk; p_inj_a; p_prj_r = c.c_prj }) in
  get_exn prj_a (perform_sched (Rcontrol (c.c_label, body_u)))

let resume pk v =
  get_exn pk.p_prj_r (perform_sched (Rgraft (pk.p_upk, pk.p_inj_a v)))

let pcall (type a) (thunks : (unit -> a) list) : a list =
  match thunks with
  | [] -> []
  | _ ->
      let inj, prj = Univ.embed () in
      let inj_l, prj_l = Univ.embed () in
      let bodies = List.map (fun t () -> inj (t ())) thunks in
      let join vs = inj_l (List.map (get_exn prj) (Array.to_list vs)) in
      get_exn prj_l (perform_sched (Rpcall (bodies, join)))

let pcall2 (type a b) (ta : unit -> a) (tb : unit -> b) : a * b =
  let inj_a, prj_a = Univ.embed () in
  let inj_b, prj_b = Univ.embed () in
  let inj_p, prj_p = Univ.embed () in
  let join vs = inj_p (get_exn prj_a vs.(0), get_exn prj_b vs.(1)) in
  get_exn prj_p
    (perform_sched (Rpcall ([ (fun () -> inj_a (ta ())); (fun () -> inj_b (tb ())) ], join)))

let yield () = ignore (perform_sched Ryield)

let sleep d = ignore (perform_sched (Rsleep d))

let abort (type r) (c : r controller) ~reason (f : unit -> r) : 'a =
  ignore (perform_sched (Rabort (c.c_label, reason, fun () -> c.c_inj (f ()))));
  (* The scheduler discards this fiber's continuation: the replacement
     body runs at the controller root instead, so control never returns
     here.  (A dead controller label raises via [discontinue] above.) *)
  assert false

(* ------------------------------------------------------------------ *)
(* Causal spans.                                                       *)
(* ------------------------------------------------------------------ *)

module Span = struct
  let current () = !cur_span

  let adopt s = if s >= 0 then cur_span := s

  let with_ name f =
    match !cur_obs with
    | None -> f ()
    | Some o ->
        let parent = !cur_span in
        let id = Obs.Span.begin_ o ~pid:!cur_pid ~parent name in
        cur_span := id;
        Fun.protect
          ~finally:(fun () ->
            (* runs on exception unwind too, so a crashing fiber still
               closes its span before the crash propagates *)
            Obs.Span.end_ o ~pid:!cur_pid id;
            cur_span := parent)
          f
end

(* ------------------------------------------------------------------ *)
(* Parked waiters.                                                     *)
(* ------------------------------------------------------------------ *)

module Waitset = struct
  type t = waitset

  let create name = { ws_name = name; ws_parked = [] }

  let name ws = ws.ws_name

  let parked ws = List.length (List.filter (fun e -> e.we_live) ws.ws_parked)
end

let block ws = ignore (perform_sched (Rblock ws))

let wake ws =
  (* Performing the effect costs a suspension, so skip it when nothing is
     parked — the common uncontended case stays effect-free. *)
  if ws.ws_parked <> [] then ignore (perform_sched (Rwake ws))

(* ------------------------------------------------------------------ *)
(* Futures: independent trees in the forest (Section 8).               *)
(* ------------------------------------------------------------------ *)

type 'a future = {
  f_cell : Univ.t option ref;
  f_prj : Univ.t -> 'a option;
  f_ws : waitset;
}

let future (type a) (thunk : unit -> a) : a future =
  let inj, prj = Univ.embed () in
  let cell = ref None in
  let ws = Waitset.create "future" in
  ignore (perform_sched (Rfuture ((fun () -> inj (thunk ())), cell, ws)));
  { f_cell = cell; f_prj = prj; f_ws = ws }

let poll fut =
  match !(fut.f_cell) with
  | None -> None
  | Some u -> Some (get_exn fut.f_prj u)

(* Touch parks on the future's waitset; the scheduler wakes the parked
   fibers when the future's tree delivers its value.  A parked toucher is
   still capturable: pruning it into a process continuation invalidates
   its waitset entry and re-captures it as a runnable leaf, so on graft
   it resumes here and re-checks the cell. *)
let rec touch fut =
  match poll fut with
  | Some v -> v
  | None ->
      block fut.f_ws;
      touch fut
