(** Tree-structured concurrency with process continuations, in native OCaml.

    A cooperative scheduler maintains the process tree of the paper's
    concurrent implementation (Section 7), with fibers — one-shot
    effect-handler continuations — at the leaves:

    - {!pcall} forks the calling fiber into concurrently scheduled
      branches and resumes it when all branches have returned, which is
      exactly the paper's tree-structured (fork-and-return) concurrency;
    - {!spawn} adds a labeled root above a new fiber; the calling fiber
      waits for the process's result;
    - {!control} prunes the subtree delimited by a controller's root —
      including concurrently executing sibling branches, suspended at their
      last yield point — and packages it as a process continuation;
    - {!resume} grafts a captured subtree onto the invoking fiber and
      resumes every suspended branch in it.

    Scheduling is cooperative: a fiber runs until it performs a scheduler
    operation ([pcall], [spawn], [control], [resume] or {!yield}).  Compute
    loops that should be interruptible by sibling capture must call
    {!yield}.  Scheduling order is deterministic (tree order) by default, or
    seeded-random with {!Randomized}.

    Everything here is one-shot (see {!Pcont.Spawn}): the multi-shot
    variants live in the machine implementations. *)

exception Dead_controller
(** The controller's root is not in the current continuation. *)

exception Expired_pk
(** A process continuation was resumed a second time. *)

exception Not_in_scheduler
(** A scheduler operation was performed outside {!run}. *)

exception Deadlock of string
(** Raised by {!run} when the run queue is empty while fibers remain
    parked on waitsets (see {!block}): every remaining fiber is blocked
    on a resource that no runnable fiber can signal.  The message names
    the blocked resources and, for each blocked fiber, its root-to-leaf
    path through the process tree, e.g.
    ["deadlock: 2 fiber(s) parked: 2 on channel.recv (paths 0>2>5,
    0>3>6)"].  Pending {!sleep} timers avert deadlock: a quiescent run
    jumps the virtual clock to the earliest deadline instead (see
    {!run}). *)

exception Injected_crash
(** Delivered into a fiber by an injected {!Fcrash} fault (see {!run}'s
    [inject] argument).  It is an ordinary exception: a fiber that
    catches it survives; one that does not aborts the whole run like any
    escaped exception — unless a supervisor ({!Pcont_resil}) converts it
    into a restart. *)

type policy =
  | Tree_order  (** deterministic: branches run in process-tree order *)
  | Randomized of int64  (** seeded shuffle of branch order each round *)
  | Driven of (int -> int)
      (** systematic schedule exploration: each scheduling decision runs
          exactly one fiber until its next suspension; [pick n] receives
          the number of runnable fibers and chooses which.  The returned
          index is reduced modulo the runnable count ([((i mod n) + n) mod
          n]), so any integer is a valid decision and a decision function
          computed against one schedule stays total if the run diverges —
          the same contract as [Pcont_pstack.Concur.Driven]. *)
  | Driven_pids of (int array -> int)
      (** like {!Driven}, but the decision function receives the runnable
          fibers' pids (node ids as they appear in the event stream) in
          queue order and returns the index of the one to step, reduced
          modulo the array length.  This is the record/replay hook: a
          schedule extracted from a trace is a pid sequence, and matching
          on pids rather than queue positions makes the replay robust to
          how the queue happens to be ordered. *)

type fault =
  | Fcrash
      (** raise {!Injected_crash} inside the fiber about to be stepped:
          delivered at its suspension point (catchable by the fiber's
          own [try]) or, for a fiber that has not started, before its
          body runs *)
  | Fwake of string
      (** spuriously wake every fiber parked on the named resource
          (e.g. ["channel.recv"]).  Correct waiters re-check and re-park;
          a waiter that proceeds exposed a missing re-check loop. *)
  | Fdrop of int
      (** silently drop one buffered message from the channel with this
          id (see {!fresh_chan_id}), waking its senders as a real
          consumer would.  A no-op for unknown or empty channels. *)

type 'r controller

type ('a, 'r) pk

val run :
  ?policy:policy ->
  ?obs:Pcont_obs.Obs.t ->
  ?inject:(int -> fault option) ->
  (unit -> 'a) ->
  'a
(** Run a computation under the scheduler.  Exceptions escaping any fiber
    abort the whole computation and re-raise here.

    [obs] attaches an observability handle (see {!Pcont_obs.Obs}): the
    scheduler emits the process-lifecycle event stream — spawn/exit,
    run slices (each slice runs a fiber to its next suspension and is
    charged one fuel unit), park/wake, capture/reinstate with
    control-point counts and subtree sizes, deadlock — and records the
    [sched.*] histograms (slice fuel, run-queue depth, capture size,
    park latency in rounds).  Timestamps are a deterministic virtual
    clock (cumulative slices), so a fixed policy yields a byte-stable
    trace.  Controller labels and channel ids are allocated per run
    (saved and restored around nested runs) for the same reason.  With
    no handle the instrumentation reduces to one pattern match per
    site: no events are allocated and behavior is bit-for-bit that of
    an uninstrumented run.

    [inject] is the deterministic fault hook: it is consulted once per
    scheduling slice with the global slice index (0-based count of
    slices begun so far) and may return a {!fault} to apply just before
    that slice runs.  Faults are part of the schedule, not the program:
    the same [policy] and [inject] reproduce the same run byte for
    byte, and each applied fault is recorded in the trace as a
    [Crash] marker event (fault string ["inject:..."], emitted before
    the target slice's begin event) so a schedule re-extracted from the
    trace re-injects identically. *)

val spawn : ('r controller -> 'r) -> 'r
(** Create a process with a fresh root; see {!Pcont.Spawn.spawn}. *)

val control : 'r controller -> (('a, 'r) pk -> 'r) -> 'a
(** Capture and abort the subtree back to the controller's root; apply the
    body to the process continuation outside the root.  Suspended sibling
    branches are captured inside the [pk].

    @raise Dead_controller if the root is not above the calling fiber. *)

val resume : ('a, 'r) pk -> 'a -> 'r
(** Graft the captured subtree here: the capture point returns ['a], all
    captured branches become runnable again, and [resume] returns the
    process's eventual result.

    @raise Expired_pk on a second resumption. *)

val pcall : (unit -> 'a) list -> 'a list
(** Evaluate the thunks as parallel branches of the process tree; return
    their values (in position order) once all have returned. *)

val pcall2 : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Heterogeneous binary [pcall]. *)

val yield : unit -> unit
(** Let other branches run; also the points at which a fiber can be
    suspended into a captured subtree. *)

(** {1 Virtual time}

    The scheduler keeps a virtual clock that advances one unit per
    scheduling slice, with or without a trace handle attached, so timer
    behavior never depends on whether a run is being observed.  Sleeping
    fibers park on an internal timer wheel; when the run queue drains
    while timers are pending, the clock jumps to the earliest deadline
    instead of declaring deadlock, so timeouts remain a liveness
    backstop for fully blocked systems. *)

val now : unit -> int
(** The current virtual time (slices elapsed in the innermost run). *)

val sleep : int -> unit
(** Park the calling fiber until the virtual clock reaches
    [now () + d] (a non-positive [d] sleeps to the next round).  Like
    any parked fiber, a sleeper captured into a process continuation is
    removed from the timer wheel and resumes — early — when the
    continuation is grafted. *)

val abort : 'r controller -> reason:string -> (unit -> 'r) -> 'a
(** Capture the subtree delimited by the controller's root — exactly as
    {!control} would — and discard it: parked descendants are released,
    and the root instead waits on a fresh fiber running the replacement
    thunk.  This is cancellation as declined reinstatement (the
    continuation is never grafted back), the primitive under
    {!Pcont_resil}'s scopes and timeouts.  Emits a [Cancel] event
    carrying every discarded pid.  Never returns to the caller.

    @raise Dead_controller if the root is not above the calling fiber. *)

(** {1 Parked waiters}

    A blocked operation must not busy-poll: a fiber that cannot make
    progress parks on the {e waitset} of the resource it is waiting for
    and leaves the run queue entirely, so scheduling rounds cost
    O(runnable fibers), not O(runnable + blocked).  The waker side calls
    {!wake} after changing the resource's state; woken fibers re-check
    their condition (parking is always a re-check loop, so spurious
    wake-ups are harmless).  {!touch} and the {!Channel} operations are
    built on this; user-level blocking abstractions can use it too.

    A parked fiber is still part of the process tree: capturing it into
    a process continuation invalidates its waitset entry and re-captures
    it as a runnable leaf, so grafting the continuation resumes it and
    it re-checks its condition wherever it lands.

    When the run queue drains while parked fibers remain, {!run} raises
    {!Deadlock} naming the blocked resources. *)

module Waitset : sig
  type t

  val create : string -> t
  (** A fresh, empty waitset.  The name identifies the resource class in
      {!Deadlock} diagnoses (e.g. ["future"], ["channel.send"]). *)

  val name : t -> string

  val parked : t -> int
  (** Fibers currently parked (live entries only). *)
end

val block : Waitset.t -> unit
(** Park the calling fiber on the waitset until a {!wake} (or, for a
    future's waitset, the delivery of its value).  Always re-check the
    blocking condition after [block] returns. *)

val wake : Waitset.t -> unit
(** Make every fiber parked on the waitset runnable.  A no-op when the
    waitset is empty (and effect-free, so safe on the uncontended fast
    path). *)

(** {1 Observability hooks for user-level abstractions}

    The scheduler is cooperative and single-threaded, so the innermost
    running {!run} exposes its observability context through globals.
    Blocking abstractions built on {!block}/{!wake} (e.g. {!Channel})
    use these to tag their own events with the stepping fiber's id.
    All three are meaningful only while a [run] is in progress. *)

val obs : unit -> Pcont_obs.Obs.t option
(** The handle passed to the innermost running {!run}, if any.  Guard
    event construction on the [Some] case to keep the no-handle path
    allocation-free. *)

val self_pid : unit -> int
(** The node id of the fiber currently being stepped. *)

val fresh_chan_id : unit -> int
(** Allocate a resource id (used by {!Channel}).  Ids restart at 1 in
    each {!run} so traces of identical runs are identical. *)

val register_dropper : int -> (unit -> Waitset.t option) -> unit
(** Register the {!Fdrop} hook for a channel id: the thunk drops one
    buffered message if any and returns the waitset to wake (senders
    parked on a full buffer), or [None] when there was nothing to drop.
    Called by {!Channel.create}; registrations are per-run. *)

(** {1 Causal spans}

    A span is a named interval of a logical request, propagated through
    the concurrency operators: children spawned inside a span inherit
    it ([spawn], [pcall], [future], controller bodies, grafted
    subtrees), and {!Channel.send} stamps each message with the
    sender's span so the receiver adopts it.  Span begin/end events are
    emitted on the {!obs} stream ({!Pcont_obs.Obs.Span}); with no
    handle installed [with_] just runs its thunk. *)

module Span : sig
  val current : unit -> int
  (** The stepping fiber's innermost open span, [-1] when none. *)

  val adopt : int -> unit
  (** Make the given span the fiber's current context (no-op for
      negative ids).  Used by {!Channel.recv} to continue the sender's
      span; user code rarely needs it directly. *)

  val with_ : string -> (unit -> 'a) -> 'a
  (** [with_ name f] opens a span, runs [f], and closes the span —
      also on exception unwind, so a crashing fiber's span still ends
      (the [span-end] precedes the crash's effects in the trace).
      Nested spans record their parent. *)
end

(** {1 Futures: independent concurrency (Section 8)}

    The paper closes by noting that tree-structured and independent
    concurrency can coexist as a {e forest of trees}, "in which control
    operations affect only the tree in which they occur".  A {!future}
    plants a new independent tree in the forest: its branches are scheduled
    alongside everything else, but a controller inside it cannot capture
    across the tree boundary (it is {!Dead_controller} there), and pruning
    the touching tree never disturbs the future's tree. *)

type 'a future

val future : (unit -> 'a) -> 'a future
(** Start an independent process tree computing the value.  Unlike
    [pcall], the caller continues immediately.  If {!run}'s main tree
    finishes first, unfinished futures are discarded. *)

val touch : 'a future -> 'a
(** Wait for the future's value, parked on the future's waitset (no
    busy-polling); the scheduler wakes the toucher when the future's
    tree delivers. *)

val poll : 'a future -> 'a option
(** The value if already available. *)
