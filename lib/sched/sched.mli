(** Tree-structured concurrency with process continuations, in native OCaml.

    A cooperative scheduler maintains the process tree of the paper's
    concurrent implementation (Section 7), with fibers — one-shot
    effect-handler continuations — at the leaves:

    - {!pcall} forks the calling fiber into concurrently scheduled
      branches and resumes it when all branches have returned, which is
      exactly the paper's tree-structured (fork-and-return) concurrency;
    - {!spawn} adds a labeled root above a new fiber; the calling fiber
      waits for the process's result;
    - {!control} prunes the subtree delimited by a controller's root —
      including concurrently executing sibling branches, suspended at their
      last yield point — and packages it as a process continuation;
    - {!resume} grafts a captured subtree onto the invoking fiber and
      resumes every suspended branch in it.

    Scheduling is cooperative: a fiber runs until it performs a scheduler
    operation ([pcall], [spawn], [control], [resume] or {!yield}).  Compute
    loops that should be interruptible by sibling capture must call
    {!yield}.  Scheduling order is deterministic (tree order) by default, or
    seeded-random with {!Randomized}.

    Everything here is one-shot (see {!Pcont.Spawn}): the multi-shot
    variants live in the machine implementations. *)

exception Dead_controller
(** The controller's root is not in the current continuation. *)

exception Expired_pk
(** A process continuation was resumed a second time. *)

exception Not_in_scheduler
(** A scheduler operation was performed outside {!run}. *)

exception Deadlock of string
(** Raised by {!run} when the run queue is empty while fibers remain
    parked on waitsets (see {!block}): every remaining fiber is blocked
    on a resource that no runnable fiber can signal.  The message names
    the blocked resources, e.g.
    ["deadlock: 2 fiber(s) parked: 1 on channel.recv, 1 on future"]. *)

type policy =
  | Tree_order  (** deterministic: branches run in process-tree order *)
  | Randomized of int64  (** seeded shuffle of branch order each round *)
  | Driven of (int -> int)
      (** systematic schedule exploration: each scheduling decision runs
          exactly one fiber until its next suspension; [pick n] receives
          the number of runnable fibers and chooses which.  The returned
          index is reduced modulo the runnable count ([((i mod n) + n) mod
          n]), so any integer is a valid decision and a decision function
          computed against one schedule stays total if the run diverges —
          the same contract as [Pcont_pstack.Concur.Driven]. *)
  | Driven_pids of (int array -> int)
      (** like {!Driven}, but the decision function receives the runnable
          fibers' pids (node ids as they appear in the event stream) in
          queue order and returns the index of the one to step, reduced
          modulo the array length.  This is the record/replay hook: a
          schedule extracted from a trace is a pid sequence, and matching
          on pids rather than queue positions makes the replay robust to
          how the queue happens to be ordered. *)

type 'r controller

type ('a, 'r) pk

val run : ?policy:policy -> ?obs:Pcont_obs.Obs.t -> (unit -> 'a) -> 'a
(** Run a computation under the scheduler.  Exceptions escaping any fiber
    abort the whole computation and re-raise here.

    [obs] attaches an observability handle (see {!Pcont_obs.Obs}): the
    scheduler emits the process-lifecycle event stream — spawn/exit,
    run slices (each slice runs a fiber to its next suspension and is
    charged one fuel unit), park/wake, capture/reinstate with
    control-point counts and subtree sizes, deadlock — and records the
    [sched.*] histograms (slice fuel, run-queue depth, capture size,
    park latency in rounds).  Timestamps are a deterministic virtual
    clock (cumulative slices), so a fixed policy yields a byte-stable
    trace.  Controller labels and channel ids are allocated per run
    (saved and restored around nested runs) for the same reason.  With
    no handle the instrumentation reduces to one pattern match per
    site: no events are allocated and behavior is bit-for-bit that of
    an uninstrumented run. *)

val spawn : ('r controller -> 'r) -> 'r
(** Create a process with a fresh root; see {!Pcont.Spawn.spawn}. *)

val control : 'r controller -> (('a, 'r) pk -> 'r) -> 'a
(** Capture and abort the subtree back to the controller's root; apply the
    body to the process continuation outside the root.  Suspended sibling
    branches are captured inside the [pk].

    @raise Dead_controller if the root is not above the calling fiber. *)

val resume : ('a, 'r) pk -> 'a -> 'r
(** Graft the captured subtree here: the capture point returns ['a], all
    captured branches become runnable again, and [resume] returns the
    process's eventual result.

    @raise Expired_pk on a second resumption. *)

val pcall : (unit -> 'a) list -> 'a list
(** Evaluate the thunks as parallel branches of the process tree; return
    their values (in position order) once all have returned. *)

val pcall2 : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Heterogeneous binary [pcall]. *)

val yield : unit -> unit
(** Let other branches run; also the points at which a fiber can be
    suspended into a captured subtree. *)

(** {1 Parked waiters}

    A blocked operation must not busy-poll: a fiber that cannot make
    progress parks on the {e waitset} of the resource it is waiting for
    and leaves the run queue entirely, so scheduling rounds cost
    O(runnable fibers), not O(runnable + blocked).  The waker side calls
    {!wake} after changing the resource's state; woken fibers re-check
    their condition (parking is always a re-check loop, so spurious
    wake-ups are harmless).  {!touch} and the {!Channel} operations are
    built on this; user-level blocking abstractions can use it too.

    A parked fiber is still part of the process tree: capturing it into
    a process continuation invalidates its waitset entry and re-captures
    it as a runnable leaf, so grafting the continuation resumes it and
    it re-checks its condition wherever it lands.

    When the run queue drains while parked fibers remain, {!run} raises
    {!Deadlock} naming the blocked resources. *)

module Waitset : sig
  type t

  val create : string -> t
  (** A fresh, empty waitset.  The name identifies the resource class in
      {!Deadlock} diagnoses (e.g. ["future"], ["channel.send"]). *)

  val name : t -> string

  val parked : t -> int
  (** Fibers currently parked (live entries only). *)
end

val block : Waitset.t -> unit
(** Park the calling fiber on the waitset until a {!wake} (or, for a
    future's waitset, the delivery of its value).  Always re-check the
    blocking condition after [block] returns. *)

val wake : Waitset.t -> unit
(** Make every fiber parked on the waitset runnable.  A no-op when the
    waitset is empty (and effect-free, so safe on the uncontended fast
    path). *)

(** {1 Observability hooks for user-level abstractions}

    The scheduler is cooperative and single-threaded, so the innermost
    running {!run} exposes its observability context through globals.
    Blocking abstractions built on {!block}/{!wake} (e.g. {!Channel})
    use these to tag their own events with the stepping fiber's id.
    All three are meaningful only while a [run] is in progress. *)

val obs : unit -> Pcont_obs.Obs.t option
(** The handle passed to the innermost running {!run}, if any.  Guard
    event construction on the [Some] case to keep the no-handle path
    allocation-free. *)

val self_pid : unit -> int
(** The node id of the fiber currently being stepped. *)

val fresh_chan_id : unit -> int
(** Allocate a resource id (used by {!Channel}).  Ids restart at 1 in
    each {!run} so traces of identical runs are identical. *)

(** {1 Futures: independent concurrency (Section 8)}

    The paper closes by noting that tree-structured and independent
    concurrency can coexist as a {e forest of trees}, "in which control
    operations affect only the tree in which they occur".  A {!future}
    plants a new independent tree in the forest: its branches are scheduled
    alongside everything else, but a controller inside it cannot capture
    across the tree boundary (it is {!Dead_controller} there), and pruning
    the touching tree never disturbs the future's tree. *)

type 'a future

val future : (unit -> 'a) -> 'a future
(** Start an independent process tree computing the value.  Unlike
    [pcall], the caller continues immediately.  If {!run}'s main tree
    finishes first, unfinished futures are discarded. *)

val touch : 'a future -> 'a
(** Wait for the future's value, parked on the future's waitset (no
    busy-polling); the scheduler wakes the toucher when the future's
    tree delivers. *)

val poll : 'a future -> 'a option
(** The value if already available. *)
