module Obs = Pcont_obs.Obs
module E = Pcont_obs.Obs.Event

exception Closed

type 'a t = {
  id : int;  (* per-run id tagging the channel's trace events *)
  buf : (int * 'a) Queue.t;  (* (sender's span, value): receivers adopt it *)
  capacity : int;
  mutable closed : bool;
  senders : Sched.Waitset.t;  (* parked on a full channel *)
  receivers : Sched.Waitset.t;  (* parked on an empty channel *)
}

let create ?(capacity = 16) () =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  let ch =
    {
      id = Sched.fresh_chan_id ();
      buf = Queue.create ();
      capacity;
      closed = false;
      senders = Sched.Waitset.create "channel.send";
      receivers = Sched.Waitset.create "channel.recv";
    }
  in
  (* Fault-injection hook (Fdrop): losing a buffered message frees a
     slot, so parked senders must be woken exactly as a real consumer
     would wake them. *)
  Sched.register_dropper ch.id (fun () ->
      match Queue.take_opt ch.buf with
      | Some _ -> Some ch.senders
      | None -> None);
  ch

(* Blocked operations park on the channel's waitsets and re-check on
   wake-up (the scheduler is cooperative, so there is no check-then-park
   race).  A sender parked on a full channel observes a close that
   happens under it: close wakes the senders, and the re-check raises
   Closed. *)
let rec send ch v =
  if ch.closed then raise Closed
  else if Queue.length ch.buf >= ch.capacity then begin
    Sched.block ch.senders;
    send ch v
  end
  else begin
    (* stamp the message with the sender's span so the receiver's work
       is attributed to the same request *)
    Queue.add (Sched.Span.current (), v) ch.buf;
    (match Sched.obs () with
    | None -> ()
    | Some o -> Obs.emit o (E.Send { pid = Sched.self_pid (); chan = ch.id }));
    Sched.wake ch.receivers
  end

let try_recv ch =
  match Queue.take_opt ch.buf with
  | Some (span, v) ->
      Sched.Span.adopt span;
      (match Sched.obs () with
      | None -> ()
      | Some o -> Obs.emit o (E.Recv { pid = Sched.self_pid (); chan = ch.id }));
      (* Even a non-blocking take frees a slot: wake parked senders or
         they would miss it and sit parked forever. *)
      Sched.wake ch.senders;
      Some v
  | None -> None

let rec recv_opt ch =
  match Queue.take_opt ch.buf with
  | Some (span, v) ->
      Sched.Span.adopt span;
      (match Sched.obs () with
      | None -> ()
      | Some o -> Obs.emit o (E.Recv { pid = Sched.self_pid (); chan = ch.id }));
      Sched.wake ch.senders;
      Some v
  | None ->
      if ch.closed then None
      else begin
        Sched.block ch.receivers;
        recv_opt ch
      end

let recv ch = match recv_opt ch with Some v -> v | None -> raise Closed

let close ch =
  if not ch.closed then begin
    ch.closed <- true;
    (* Parked senders re-check and raise Closed; parked receivers
       re-check, drain what is buffered, then observe end-of-stream. *)
    Sched.wake ch.senders;
    Sched.wake ch.receivers
  end

let is_closed ch = ch.closed

let length ch = Queue.length ch.buf

let rec iter f ch =
  match recv_opt ch with
  | None -> ()
  | Some v ->
      f v;
      iter f ch

let of_producer ?capacity produce =
  let ch = create ?capacity () in
  let _ : unit Sched.future =
    Sched.future (fun () ->
        (* The channel must close on any exit — otherwise consumers
           blocked on it deadlock — and a producer failure must not
           escape the fiber (it would abort the whole run); consumers
           just see the stream end after the values sent so far. *)
        match produce ~send:(send ch) with
        | () -> close ch
        | exception _ -> close ch)
  in
  ch
