(** Bounded channels over the cooperative process-tree scheduler.

    The paper's concurrency is fork-and-return; pipelines of communicating
    branches are the natural idiom layered on top of it, and a channel is
    ordinary user-level code built on {!Sched.block}/{!Sched.wake}: a
    blocked sender or receiver parks on the channel's waitset (leaving
    the run queue — blocked fibers cost the scheduler nothing) and is
    woken exactly when the channel's state changes.  A branch blocked on
    a channel can still be captured into a process continuation and
    grafted elsewhere like any other branch: the capture invalidates its
    waitset entry and the grafted fiber re-checks the channel.

    A program in which every fiber is blocked on a channel no longer
    spins: {!Sched.run} raises {!Sched.Deadlock} naming the channel
    waitsets (["channel.send"] / ["channel.recv"]).

    When {!Sched.run} was given an observability handle, every enqueue
    and dequeue emits a [send]/[recv] event tagged with the acting
    fiber's pid and the channel's per-run id (see {!Pcont_obs.Obs});
    blocked senders and receivers show up as park/wake pairs on the
    channel's waitsets. *)

type 'a t

exception Closed
(** Raised by {!send} on a closed channel, and by {!recv} on a closed,
    drained channel. *)

val create : ?capacity:int -> unit -> 'a t
(** A channel buffering at most [capacity] elements (default 16; must be
    positive). *)

val send : 'a t -> 'a -> unit
(** Enqueue; parks while the channel is full.

    @raise Closed if the channel is closed — including when {!close}
    happens {e while the sender is parked} on a full channel: close
    wakes parked senders and their re-check raises, so no sender is
    left blocked forever (and no value is silently enqueued onto a
    closed channel). *)

val recv : 'a t -> 'a
(** Dequeue; parks while the channel is empty.
    @raise Closed once the channel is closed and drained. *)

val recv_opt : 'a t -> 'a option
(** Like {!recv} but returns [None] instead of raising once the channel is
    closed and drained — the idiomatic consumer loop condition. *)

val try_recv : 'a t -> 'a option
(** Non-blocking dequeue (still wakes parked senders when it frees a
    slot). *)

val close : 'a t -> unit
(** No further sends; pending elements can still be received.  Wakes
    every parked sender (which raises {!Closed}) and receiver (which
    drains the buffer, then observes end-of-stream).  Idempotent. *)

val is_closed : 'a t -> bool

val length : 'a t -> int

val iter : ('a -> unit) -> 'a t -> unit
(** Consume elements until the channel closes. *)

val of_producer : ?capacity:int -> (send:('a -> unit) -> unit) -> 'a t
(** Start a {!Sched.future} running the producer and return the channel.
    The channel is closed when the producer returns {e or raises}: a
    producer failure is confined to its fiber (it does not abort the
    whole run) and consumers simply see the stream end after the values
    sent so far. *)
